// Figure 13: NAK activity in the 100 Mbps memory-to-memory tests, with
// the buffer sweep extended beyond 1024K.
// Expected shape: essentially zero NAKs (and zero rate requests) up to
// 1024K; with multi-megabyte buffers the send window so far exceeds the
// bandwidth-delay product that the sender sustains per-jiffy bursts the
// card cannot cleanly absorb — local tx drops appear and with them NAKs
// (the paper's hypothesis for the same observation on its testbed).
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

Scenario cell(std::uint64_t file_bytes, std::size_t buf, int n) {
  Workload wl;
  wl.file_bytes = file_bytes;
  wl.sink_read_rate_bps = 0.0;  // always-ready application
  return lan_scenario(n, 100e6, buf, wl,
                      kBenchSeed + static_cast<std::uint64_t>(n));
}

void panel(const char* title, std::uint64_t file_bytes) {
  std::cout << title << '\n';
  Table t({"buffer", "NAKs (1 rcvr)", "NAKs (2)", "NAKs (3)",
           "tx drops (1 rcvr)"});
  for (std::size_t buf : buffer_sweep_extended()) {
    std::vector<std::string> row{buf_label(buf)};
    std::uint64_t drops_one = 0;
    for (int n = 1; n <= 3; ++n) {
      RunResult r = run_transfer(cell(file_bytes, buf, n));
      row.push_back(std::to_string(r.sender.naks_received));
      if (n == 1) drops_one = r.sender_nic_tx_drops;
    }
    row.push_back(std::to_string(drops_one));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  banner("Figure 13: NAK activity on the 100 Mbps network",
         "memory-to-memory; note the change past 1024K buffers");
  Sweep sweep("fig13");
  panel("(a) NAK activity, 10 MB file", 10 * kMiB);
  panel("(b) NAK activity, 40 MB file", 40 * kMiB);

  // NAK-over-time curve for the largest-buffer cell — the regime where
  // local tx drops (and hence NAKs) actually appear.
  traced_cell(sweep, "traced_10MB_4096K_1rcv",
              cell(10 * kMiB, 4096 * 1024, 1));
  return 0;
}
