// Figure 15: simulation study on a 10 Mbps network.
//   (a) throughput, Tests 1-5 (Fig 14b receiver mixes), 10 receivers
//   (b) rate-reduce requests for the same runs
//   (c) throughput with 100 receivers
// Expected shape: Test 1 (all LAN) > Test 2 (all MAN) > Test 3 (all
// WAN); Tests 4 and 5 (B/C mixes) land near the WAN case — the protocol
// adapts to the least capable receiver. Rate requests grow with loss
// and shrink with buffer size. 100 receivers costs only a little
// throughput (more updates to process), recovered by bigger buffers.
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

Scenario cell(int test_case, int receivers, std::size_t buf) {
  Workload wl;
  wl.file_bytes = 10 * kMiB;
  wl.sink_read_rate_bps = kSimAppReadBps;
  Scenario sc = test_case_scenario(test_case, receivers, 10e6, buf, wl,
                                   kBenchSeed + test_case);
  sc.time_limit = sim::seconds(3600);
  return sc;
}

void panel(Sweep& sweep, int receivers, bool rate_requests) {
  std::vector<Scenario> cells;
  for (std::size_t buf : buffer_sweep()) {
    for (int tc = 1; tc <= 5; ++tc) cells.push_back(cell(tc, receivers, buf));
  }
  const std::vector<RunResult> results = sweep.run(cells);
  Table t({"buffer", "Test 1 (A)", "Test 2 (B)", "Test 3 (C)",
           "Test 4 (80B/20C)", "Test 5 (20B/80C)"});
  std::size_t i = 0;
  for (std::size_t buf : buffer_sweep()) {
    std::vector<std::string> row{buf_label(buf)};
    for (int tc = 1; tc <= 5; ++tc) {
      const RunResult& r = results[i++];
      if (rate_requests) {
        row.push_back(std::to_string(r.sender.rate_requests_received));
      } else {
        row.push_back(r.completed ? fmt(r.throughput_mbps, 2) : "DNF");
      }
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  banner("Figure 15: H-RMC on a 10 Mbps network (simulated)",
         "10 MB transfer across the Fig-14 receiver mixes");
  Sweep sweep("fig15");
  std::cout << "(a) throughput, 10 receivers (Mbps)\n";
  panel(sweep, 10, false);
  std::cout << "(b) rate reduce requests, 10 receivers (count)\n";
  panel(sweep, 10, true);
  std::cout << "(c) throughput, 100 receivers (Mbps)\n";
  panel(sweep, 100, false);
  return 0;
}
