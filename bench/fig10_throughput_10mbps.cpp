// Figure 10: experimental throughput of H-RMC on a 10 Mbps network.
//   (a) memory-to-memory, 10 MB   (b) memory-to-memory, 40 MB
//   (c) disk-to-disk, 10 MB       (d) disk-to-disk, 40 MB
// 1-3 receivers on one LAN, kernel buffers 64K-1024K.
// Expected shape: throughput rises with buffer size and is flat from
// ~512K; receiver count barely matters; disk tests track memory tests.
#include "bench_util.hpp"
#include "trace/verify.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

void panel(Sweep& sweep, const char* title, std::uint64_t file_bytes,
           bool disk) {
  std::cout << title << '\n';
  std::vector<Scenario> cells;
  for (std::size_t buf : buffer_sweep()) {
    for (int n = 1; n <= 3; ++n) {
      Workload wl;
      wl.file_bytes = file_bytes;
      wl.disk_source = disk;
      wl.disk_sink = disk;
      cells.push_back(lan_scenario(n, 10e6, buf, wl,
                                   kBenchSeed + static_cast<std::uint64_t>(n)));
    }
  }
  const std::vector<RunResult> results = sweep.run(cells);
  Table t({"buffer", "1 receiver", "2 receivers", "3 receivers"});
  std::size_t i = 0;
  for (std::size_t buf : buffer_sweep()) {
    std::vector<std::string> row{buf_label(buf)};
    for (int n = 1; n <= 3; ++n) {
      const RunResult& r = results[i++];
      row.push_back(r.completed ? fmt(r.throughput_mbps, 2) : "DNF");
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  banner("Figure 10: H-RMC throughput on a 10 Mbps network (Mbps)",
         "LAN testbed reproduction; five buffer sizes, 1-3 receivers");
  Sweep sweep("fig10");
  panel(sweep, "(a) memory to memory, 10 MB", 10 * kMiB, false);
  panel(sweep, "(b) memory to memory, 40 MB", 40 * kMiB, false);
  panel(sweep, "(c) disk to disk, 10 MB", 10 * kMiB, true);
  panel(sweep, "(d) disk to disk, 40 MB", 40 * kMiB, true);

  // Traced reference run over panel (a)'s 256K / 3-receiver cell:
  // emits the per-interval curves into BENCH_fig10.json and replays the
  // full event trace through the invariant checker. A violation here is
  // a protocol bug, not a perf regression — fail loudly.
  Workload wl;
  wl.file_bytes = 10 * kMiB;
  RunResult traced =
      traced_cell(sweep, "traced_mem_256K_3rcv",
                  lan_scenario(3, 10e6, 256 * 1024, wl, kBenchSeed + 3));
  const trace::VerifyResult v = trace::verify(traced.trace_records);
  std::cout << "trace verify: " << traced.trace_records.size()
            << " records, " << v.releases_checked << " releases / "
            << v.naks_checked << " naks / " << v.sends_checked
            << " sends checked, " << v.violation_count << " violations\n";
  if (!v.ok) {
    for (const std::string& s : v.violations) {
      std::cerr << "trace violation: " << s << '\n';
    }
    return 1;
  }
  return 0;
}
