// Figure 12: experimental memory-to-memory throughput on the 100 Mbps
// network, 10 MB and 40 MB transfers, 1-3 receivers, buffers 64K-1024K.
// Expected shape: throughput rises steeply with kernel buffer (small
// buffers degenerate toward stop-and-wait on a fast network), receiver
// count barely matters, and the 40 MB transfers run faster than the
// 10 MB ones (the rate window has longer to grow).
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

void panel(Sweep& sweep, const char* title, std::uint64_t file_bytes) {
  std::cout << title << '\n';
  std::vector<Scenario> cells;
  for (std::size_t buf : buffer_sweep()) {
    for (int n = 1; n <= 3; ++n) {
      Workload wl;
      wl.file_bytes = file_bytes;
      // Experimental memory tests: the application is always ready.
      wl.sink_read_rate_bps = 0.0;
      cells.push_back(lan_scenario(n, 100e6, buf, wl,
                                   kBenchSeed + static_cast<std::uint64_t>(n)));
    }
  }
  const std::vector<RunResult> results = sweep.run(cells);
  Table t({"buffer", "1 receiver", "2 receivers", "3 receivers"});
  std::size_t i = 0;
  for (std::size_t buf : buffer_sweep()) {
    std::vector<std::string> row{buf_label(buf)};
    for (int n = 1; n <= 3; ++n) {
      const RunResult& r = results[i++];
      row.push_back(r.completed ? fmt(r.throughput_mbps, 2) : "DNF");
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  banner("Figure 12: H-RMC throughput on a 100 Mbps network (Mbps)",
         "memory-to-memory; five buffer sizes, 1-3 receivers");
  Sweep sweep("fig12");
  panel(sweep, "(a) memory to memory, 10 MB", 10 * kMiB);
  panel(sweep, "(b) memory to memory, 40 MB", 40 * kMiB);
  return 0;
}
