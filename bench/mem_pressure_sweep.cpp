// Memory-pressure robustness sweep (DESIGN.md §16): goodput as the
// per-host memory budget tightens from unlimited to starved, plus one
// shrinker-squeeze window and one GFP_ATOMIC-style alloc-failure
// window at a generous budget.
//
// The scenario is the FEC bench's 4-receiver 10 Mbps LAN with 20 ms
// paths (BDP ~50 KB, so budgets below ~64 KB genuinely throttle the
// send window below the link rate) and 1% random loss (so reassembly
// holes accumulate and the receiver-side eviction / re-NAK path runs).
//
// Acceptance (full run, enforced by exit code):
//   - every cell completes: pressure degrades goodput, it never
//     deadlocks or livelocks the transfer;
//   - budget safety: no budgeted cell's ledger peak exceeds its budget;
//   - graceful degradation: each halving of the budget keeps at least
//     kAdjacentFloor of the previous cell's throughput (no cliff), and
//     the starved cell keeps at least kStarvedFloor of unlimited (no
//     collapse to zero);
//   - the starved cell actually exercised the machinery (alloc
//     failures or evictions observed).
//
// `--smoke` runs a 2 MB subset for the CI bench gate; metrics land in
// BENCH_mem.json for check_bench.py --suite mem.
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

/// Budget axis, bytes per host. 0 = unlimited (accountant-free
/// baseline). The tail is deliberately below the 256 KiB socket
/// buffers: the sender's window and the receivers' reassembly must
/// shrink to fit, trading goodput for footprint.
constexpr std::uint64_t kBudgetsFull[] = {
    0, 512u << 10, 256u << 10, 128u << 10, 64u << 10, 32u << 10};
constexpr std::uint64_t kBudgetsSmoke[] = {0, 256u << 10, 64u << 10};

std::string budget_label(std::uint64_t b) {
  if (b == 0) return "mem_b0";
  return "mem_b" + std::to_string(b >> 10) + "k";
}

Scenario cell(std::uint64_t budget, std::uint64_t file_bytes,
              const std::string& name) {
  Workload wl;
  wl.file_bytes = file_bytes;
  Scenario sc = lan_scenario(4, 10e6, 256 << 10, wl, kBenchSeed);
  sc.name = name;
  sc.topo.groups[0].loss_rate = 0.01;
  sc.topo.groups[0].delay = sim::milliseconds(20);
  sc.mem_budget = budget;
  sc.time_limit = sim::seconds(3600);
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t file_bytes = smoke ? 2 * kMiB : 8 * kMiB;

  banner("Memory-pressure sweep: goodput vs per-host budget",
         (smoke ? std::string("smoke: 2 MB")
                : std::string("full: 8 MB")) +
             " to 4 receivers, 10 Mbps / 20 ms / 1% loss; budget "
             "unlimited -> 32K,\nplus squeeze and alloc-fail windows; "
             "acceptance enforced on the full run");

  std::vector<std::uint64_t> budgets;
  if (smoke) {
    budgets.assign(std::begin(kBudgetsSmoke), std::end(kBudgetsSmoke));
  } else {
    budgets.assign(std::begin(kBudgetsFull), std::end(kBudgetsFull));
  }

  Sweep sweep("mem");
  std::vector<Scenario> cells;
  for (std::uint64_t b : budgets) {
    cells.push_back(cell(b, file_bytes, budget_label(b)));
  }
  // Shrinker squeeze: a generous 1 MiB budget whose *effective* value
  // drops 80% for a one-second window mid-transfer — consumers must
  // evict down to the squeezed watermark and recover afterwards.
  {
    Scenario sc = cell(1u << 20, file_bytes, "mem_squeeze");
    sc.faults.mem_pressure(0, sim::milliseconds(500), 0.8);
    sc.faults.mem_pressure_stop(0, sim::milliseconds(1500));
    cells.push_back(sc);
  }
  // GFP_ATOMIC-style probabilistic allocation failure: every charge and
  // rx admission flips a seeded 5% coin for one second.
  {
    Scenario sc = cell(1u << 20, file_bytes, "mem_allocfail");
    sc.faults.alloc_fail(0, sim::milliseconds(500), 0.05);
    sc.faults.alloc_fail_stop(0, sim::milliseconds(1500));
    cells.push_back(sc);
  }
  const std::vector<RunResult> results = sweep.run(cells);

  Table t({"cell", "done", "thr Mbps", "elapsed s", "mem peak", "fails",
           "evictions", "stalls", "skb peak"});
  bool all_completed = true;
  bool budget_safe = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const RunResult& r = results[i];
    const std::uint64_t budget =
        i < budgets.size() ? budgets[i] : (1u << 20);
    all_completed = all_completed && r.completed;
    if (budget > 0 && r.mem_peak_bytes > budget) budget_safe = false;
    t.add_row({cells[i].name, r.completed ? "yes" : "NO",
               fmt(r.throughput_mbps, 2), fmt(sim::to_seconds(r.elapsed), 1),
               std::to_string(r.mem_peak_bytes),
               std::to_string(r.mem_alloc_fails),
               std::to_string(r.mem_cache_evictions),
               std::to_string(r.sender.alloc_stalls),
               std::to_string(r.skb_peak_bytes)});

    const std::string& name = cells[i].name;
    sweep.metric(name, "completed", r.completed ? 1.0 : 0.0);
    sweep.metric(name, "elapsed_s", sim::to_seconds(r.elapsed));
    sweep.metric(name, "throughput_mbps", r.throughput_mbps);
    sweep.metric(name, "budget_bytes", static_cast<double>(budget));
    sweep.metric(name, "mem_peak_bytes",
                 static_cast<double>(r.mem_peak_bytes));
    sweep.metric(name, "mem_alloc_fails",
                 static_cast<double>(r.mem_alloc_fails));
    sweep.metric(name, "mem_cache_evictions",
                 static_cast<double>(r.mem_cache_evictions));
    sweep.metric(name, "sender_alloc_stalls",
                 static_cast<double>(r.sender.alloc_stalls));
    sweep.metric(name, "naks_sent",
                 static_cast<double>(r.receivers_total.naks_sent));
    sweep.metric(name, "retransmissions",
                 static_cast<double>(r.sender.retransmissions));
    sweep.metric(name, "skb_peak_bytes",
                 static_cast<double>(r.skb_peak_bytes));
    sweep.metric(name, "skb_live_bytes_end",
                 static_cast<double>(r.skb_live_bytes_end));
  }
  t.print(std::cout);
  std::cout << '\n';

  // Degradation curve over the budget axis (cells [0, budgets.size()),
  // loosest first).
  const double unlimited = results[0].throughput_mbps;
  const double starved = results[budgets.size() - 1].throughput_mbps;
  double worst_adjacent = 1.0;
  for (std::size_t i = 1; i < budgets.size(); ++i) {
    const double prev = results[i - 1].throughput_mbps;
    const double cur = results[i].throughput_mbps;
    if (prev > 0.0) worst_adjacent = std::min(worst_adjacent, cur / prev);
  }
  const double starved_ratio = unlimited > 0.0 ? starved / unlimited : 0.0;
  const std::uint64_t starved_pressure =
      results[budgets.size() - 1].mem_alloc_fails +
      results[budgets.size() - 1].mem_cache_evictions +
      results[budgets.size() - 1].sender.alloc_stalls;
  std::cout << "goodput: unlimited " << fmt(unlimited, 2) << " Mbps -> "
            << "starved " << fmt(starved, 2) << " Mbps ("
            << fmt(100.0 * starved_ratio, 1) << "% kept); worst "
            << "adjacent step keeps " << fmt(100.0 * worst_adjacent, 1)
            << "%\n";
  sweep.metric("mem_accept", "starved_ratio_x100", starved_ratio * 100.0);
  sweep.metric("mem_accept", "worst_adjacent_x100",
               worst_adjacent * 100.0);
  sweep.metric("mem_accept", "budget_safe", budget_safe ? 1.0 : 0.0);

  bool ok = true;
  if (!all_completed) {
    std::cout << "FAIL: a cell did not complete its transfer "
                 "(deadlock/livelock under pressure)\n";
    ok = false;
  }
  if (!budget_safe) {
    std::cout << "FAIL: a cell's ledger peak exceeded its budget\n";
    ok = false;
  }
  if (smoke) return ok ? 0 : 1;

  // No collapse to zero: the starved cell keeps a usable fraction.
  constexpr double kStarvedFloor = 0.15;
  // No cliff: each budget halving keeps a bounded fraction.
  constexpr double kAdjacentFloor = 0.30;
  if (starved_ratio < kStarvedFloor) {
    std::cout << "FAIL: starved goodput collapsed below "
              << 100.0 * kStarvedFloor << "% of unlimited\n";
    ok = false;
  }
  if (worst_adjacent < kAdjacentFloor) {
    std::cout << "FAIL: goodput cliff — an adjacent budget step lost "
                 "more than "
              << 100.0 * (1.0 - kAdjacentFloor) << "%\n";
    ok = false;
  }
  if (starved_pressure == 0) {
    std::cout << "FAIL: starved cell recorded no alloc failures, "
                 "evictions, or stalls — pressure not exercised\n";
    ok = false;
  }
  std::cout << (ok ? "\nmem acceptance passed\n"
                   : "\nmem acceptance FAILED\n");
  return ok ? 0 : 1;
}
