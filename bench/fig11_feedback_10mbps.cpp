// Figure 11: feedback activity (rate requests and NAKs arriving at the
// sender) during the 10 Mbps disk-to-disk tests of Figure 10.
// Expected shape: rate requests fall as the kernel buffer grows (fewer
// excursions into the warning/critical regions); NAK counts stay small
// and buffer-insensitive; the 40 MB runs are noisier (I/O stalls).
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

void panel(const char* title, std::uint64_t file_bytes, bool rate_requests) {
  std::cout << title << '\n';
  Table t({"buffer", "1 receiver", "2 receivers", "3 receivers"});
  for (std::size_t buf : buffer_sweep()) {
    std::vector<std::string> row{buf_label(buf)};
    for (int n = 1; n <= 3; ++n) {
      Workload wl;
      wl.file_bytes = file_bytes;
      wl.disk_source = true;
      wl.disk_sink = true;
      Scenario sc = lan_scenario(n, 10e6, buf, wl,
                                 kBenchSeed + static_cast<std::uint64_t>(n));
      RunResult r = run_transfer(sc);
      const std::uint64_t v = rate_requests
                                  ? r.sender.rate_requests_received
                                  : r.sender.naks_received;
      row.push_back(std::to_string(v));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  banner("Figure 11: feedback activity, 10 Mbps disk-to-disk (counts)",
         "total NAKs / rate requests arriving at the sender per test");
  panel("(a) rate requests, 10 MB", 10 * kMiB, true);
  panel("(b) NAKs, 10 MB", 10 * kMiB, false);
  panel("(c) rate requests, 40 MB", 40 * kMiB, true);
  panel("(d) NAKs, 40 MB", 40 * kMiB, false);
  return 0;
}
