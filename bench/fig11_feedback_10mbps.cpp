// Figure 11: feedback activity (rate requests and NAKs arriving at the
// sender) during the 10 Mbps disk-to-disk tests of Figure 10.
// Expected shape: rate requests fall as the kernel buffer grows (fewer
// excursions into the warning/critical regions); NAK counts stay small
// and buffer-insensitive; the 40 MB runs are noisier (I/O stalls).
//
// The printed tables are the paper's per-test totals. On top of that,
// one traced cell per file size runs with the time-series sampler so
// BENCH_fig11.json carries the actual feedback-over-time curves
// (rate_requests_per_interval, naks_per_interval, recv_region, ...) —
// the panel the paper plots, not just its integral.
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

Scenario cell(std::uint64_t file_bytes, std::size_t buf, int n) {
  Workload wl;
  wl.file_bytes = file_bytes;
  wl.disk_source = true;
  wl.disk_sink = true;
  return lan_scenario(n, 10e6, buf, wl,
                      kBenchSeed + static_cast<std::uint64_t>(n));
}

void panels(Sweep& sweep, const char* title, std::uint64_t file_bytes) {
  std::vector<Scenario> cells;
  for (std::size_t buf : buffer_sweep()) {
    for (int n = 1; n <= 3; ++n) cells.push_back(cell(file_bytes, buf, n));
  }
  const std::vector<RunResult> results = sweep.run(cells);

  for (bool rate_requests : {true, false}) {
    std::cout << title << (rate_requests ? " rate requests" : " NAKs")
              << '\n';
    Table t({"buffer", "1 receiver", "2 receivers", "3 receivers"});
    std::size_t i = 0;
    for (std::size_t buf : buffer_sweep()) {
      std::vector<std::string> row{buf_label(buf)};
      for (int n = 1; n <= 3; ++n) {
        const RunResult& r = results[i++];
        const std::uint64_t v = rate_requests
                                    ? r.sender.rate_requests_received
                                    : r.sender.naks_received;
        row.push_back(std::to_string(v));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  banner("Figure 11: feedback activity, 10 Mbps disk-to-disk (counts)",
         "total NAKs / rate requests arriving at the sender per test");
  Sweep sweep("fig11");
  panels(sweep, "(a/b) 10 MB,", 10 * kMiB);
  panels(sweep, "(c/d) 40 MB,", 40 * kMiB);

  // Feedback-over-time curves for the smallest-buffer, 3-receiver cell
  // of each file size — the configuration with the most feedback
  // traffic, hence the most interesting curve.
  traced_cell(sweep, "traced_10MB_64K_3rcv", cell(10 * kMiB, 64 * 1024, 3));
  traced_cell(sweep, "traced_40MB_64K_3rcv", cell(40 * kMiB, 64 * 1024, 3));
  return 0;
}
