#include "bench_json.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

namespace hrmc::bench {

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers (counts) print exactly; everything else keeps enough
  // digits to round-trip.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

BenchReport::Entry& BenchReport::entry(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return e;
  }
  entries_.push_back({name, {}, {}});
  return entries_.back();
}

void BenchReport::metric(const std::string& name, const std::string& key,
                         double value) {
  entry(name).metrics.emplace_back(key, value);
}

void BenchReport::series(const std::string& name, const std::string& key,
                         std::vector<double> values) {
  entry(name).series.emplace_back(key, std::move(values));
}

std::string BenchReport::to_json() const {
  std::string out = "{\n  \"suite\": \"" + json_escape(suite_) +
                    "\",\n  \"schema\": 1,\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += "    {\"name\": \"" + json_escape(e.name) + "\", \"metrics\": {";
    for (std::size_t m = 0; m < e.metrics.size(); ++m) {
      out += "\"" + json_escape(e.metrics[m].first) +
             "\": " + json_number(e.metrics[m].second);
      if (m + 1 < e.metrics.size()) out += ", ";
    }
    out += "}";
    if (!e.series.empty()) {
      out += ", \"series\": {";
      for (std::size_t s = 0; s < e.series.size(); ++s) {
        out += "\"" + json_escape(e.series[s].first) + "\": [";
        const std::vector<double>& vals = e.series[s].second;
        for (std::size_t v = 0; v < vals.size(); ++v) {
          out += json_number(vals[v]);
          if (v + 1 < vals.size()) out += ", ";
        }
        out += "]";
        if (s + 1 < e.series.size()) out += ", ";
      }
      out += "}";
    }
    out += "}";
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool BenchReport::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "bench_json: cannot open " << path << " for writing\n";
    return false;
  }
  f << to_json();
  return static_cast<bool>(f);
}

std::string bench_json_path(const std::string& filename) {
  if (const char* dir = std::getenv("HRMC_BENCH_JSON_DIR")) {
    std::string d(dir);
    if (!d.empty() && d.back() != '/') d.push_back('/');
    return d + filename;
  }
  return filename;
}

double wall_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace hrmc::bench
