// Ablation for §3 "Dynamic Update Timers": dynamic versus fixed update
// period across LAN / MAN / WAN environments. The dynamic timer should
// shrink the period (more updates) where the sender is otherwise starved
// for information — cutting probe traffic — and stretch it where NAKs
// already keep the sender informed.
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

RunResult run_one(int test_case, std::size_t buf, bool dynamic) {
  Workload wl;
  wl.file_bytes = 8 * kMiB;
  wl.sink_read_rate_bps = kSimAppReadBps;
  Scenario sc = test_case_scenario(test_case, 10, 10e6, buf, wl,
                                   kBenchSeed + test_case);
  sc.proto.dynamic_update_timer = dynamic;
  sc.time_limit = sim::seconds(3600);
  return run_transfer(sc);
}

}  // namespace

int main() {
  banner("Ablation: dynamic vs fixed update timer",
         "10 receivers, 10 Mbps, 8 MB; probes = sender starved for info,\n"
         "updates = receiver feedback volume");
  for (bool dynamic : {false, true}) {
    std::cout << (dynamic ? "dynamic update period (H-RMC)\n"
                          : "fixed update period (0.5 s)\n");
    Table t({"env/buffer", "thr Mbps", "probes", "updates", "complete-info %"});
    for (int tc : {1, 3}) {
      for (std::size_t buf : {64u << 10, 512u << 10}) {
        RunResult r = run_one(tc, buf, dynamic);
        t.add_row({std::string(tc == 1 ? "LAN/" : "WAN/") + buf_label(buf),
                   fmt(r.throughput_mbps, 2),
                   std::to_string(r.sender.probes_sent),
                   std::to_string(r.receivers_total.updates_sent),
                   fmt(r.complete_info_pct(), 1)});
      }
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
