// Shared plumbing for the fig* reproduction binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace hrmc::bench {

inline void banner(const std::string& title, const std::string& detail) {
  std::cout << "\n=== " << title << " ===\n" << detail << "\n\n";
}

/// Every run in the bench suite derives from this seed unless a binary
/// takes one on the command line.
inline constexpr std::uint64_t kBenchSeed = 20260706;

inline constexpr std::uint64_t kMiB = 1024 * 1024;

/// Paper's simulated application consumption rate (does not scale with
/// the network; see DESIGN.md).
inline constexpr double kSimAppReadBps = 64e6;

}  // namespace hrmc::bench
