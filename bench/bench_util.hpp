// Shared plumbing for the fig* reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "harness/parallel.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace hrmc::bench {

inline void banner(const std::string& title, const std::string& detail) {
  std::cout << "\n=== " << title << " ===\n" << detail << "\n\n";
}

/// Every run in the bench suite derives from this seed unless a binary
/// takes one on the command line.
inline constexpr std::uint64_t kBenchSeed = 20260706;

inline constexpr std::uint64_t kMiB = 1024 * 1024;

/// Paper's simulated application consumption rate (does not scale with
/// the network; see DESIGN.md).
inline constexpr double kSimAppReadBps = 64e6;

/// Sweep driver for the figure binaries: batches a panel's independent
/// (Scenario, seed) cells through the ParallelRunner — results come
/// back in input order and each cell is bit-for-bit the run the serial
/// loop would have produced, so the printed tables are unchanged. On
/// destruction, records the figure's wall time to BENCH_<suite>.json
/// when HRMC_BENCH_JSON_DIR is set (the perf-trajectory artifact).
class Sweep {
 public:
  explicit Sweep(std::string suite)
      : suite_(std::move(suite)), report_(suite_), t0_(wall_seconds()) {}

  Sweep(const Sweep&) = delete;
  Sweep& operator=(const Sweep&) = delete;

  ~Sweep() {
    if (std::getenv("HRMC_BENCH_JSON_DIR") == nullptr) return;
    report_.metric("figure", "wall_s", wall_seconds() - t0_);
    report_.metric("figure", "cells", static_cast<double>(cells_));
    report_.metric("figure", "threads", runner_.threads());
    report_.write_file(bench_json_path("BENCH_" + suite_ + ".json"));
  }

  [[nodiscard]] std::vector<harness::RunResult> run(
      const std::vector<harness::Scenario>& cells) {
    cells_ += cells.size();
    return runner_.run_all(cells);
  }

  /// Passthroughs so figure binaries can attach their own numbers and
  /// per-interval curves next to the wall-time metrics.
  void metric(const std::string& name, const std::string& key, double v) {
    report_.metric(name, key, v);
  }
  void series(const std::string& name, const std::string& key,
              std::vector<double> vals) {
    report_.series(name, key, std::move(vals));
  }

 private:
  std::string suite_;
  BenchReport report_;
  double t0_;
  std::size_t cells_ = 0;
  harness::ParallelRunner runner_;
};

/// Runs one scenario with the tracer and time-series sampler switched
/// on and attaches the sampled curves to `sweep` under entry `name`:
/// sample times, advertised rate, send-window occupancy, worst receiver
/// occupancy / flow-control region / update period, total NAK backlog,
/// and per-interval feedback deltas (NAKs, rate requests,
/// retransmissions arriving at the sender). The traced run is an extra
/// cell — it never replaces a table cell, so printed tables are
/// unchanged. Returns the RunResult (trace_records included) so callers
/// can feed trace::verify.
inline harness::RunResult traced_cell(
    Sweep& sweep, const std::string& name, harness::Scenario sc,
    sim::SimTime sample_period = sim::milliseconds(100)) {
  sc.trace.enabled = true;
  sc.trace.sample_period = sample_period;
  harness::RunResult r = harness::run_transfer(sc);

  std::vector<double> t_s, rate_mbps, wnd, occ, region, backlog, period;
  std::vector<double> naks, reqs, retx;
  double p_naks = 0.0, p_reqs = 0.0, p_retx = 0.0;
  for (const trace::SamplePoint& p : r.samples) {
    t_s.push_back(sim::to_seconds(p.t));
    rate_mbps.push_back(p.rate_bps * 8.0 / 1e6);  // bytes/s -> Mbit/s
    wnd.push_back(p.send_window_bytes);
    occ.push_back(p.recv_occupancy_bytes);
    region.push_back(p.recv_region);
    backlog.push_back(p.nak_list_ranges);
    period.push_back(p.update_period_jiffies);
    naks.push_back(p.naks_received - p_naks);
    reqs.push_back(p.rate_requests_received - p_reqs);
    retx.push_back(p.retransmissions - p_retx);
    p_naks = p.naks_received;
    p_reqs = p.rate_requests_received;
    p_retx = p.retransmissions;
  }
  sweep.series(name, "t_s", std::move(t_s));
  sweep.series(name, "rate_mbps", std::move(rate_mbps));
  sweep.series(name, "send_window_bytes", std::move(wnd));
  sweep.series(name, "recv_occupancy_bytes", std::move(occ));
  sweep.series(name, "recv_region", std::move(region));
  sweep.series(name, "nak_backlog_ranges", std::move(backlog));
  sweep.series(name, "update_period_jiffies", std::move(period));
  sweep.series(name, "naks_per_interval", std::move(naks));
  sweep.series(name, "rate_requests_per_interval", std::move(reqs));
  sweep.series(name, "retransmissions_per_interval", std::move(retx));
  sweep.metric(name, "sample_period_s", sim::to_seconds(sample_period));
  sweep.metric(name, "trace_records",
               static_cast<double>(r.trace_records.size()));
  sweep.metric(name, "trace_dropped", static_cast<double>(r.trace_dropped));
  return r;
}

}  // namespace hrmc::bench
