// Shared plumbing for the fig* reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "harness/parallel.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace hrmc::bench {

inline void banner(const std::string& title, const std::string& detail) {
  std::cout << "\n=== " << title << " ===\n" << detail << "\n\n";
}

/// Every run in the bench suite derives from this seed unless a binary
/// takes one on the command line.
inline constexpr std::uint64_t kBenchSeed = 20260706;

inline constexpr std::uint64_t kMiB = 1024 * 1024;

/// Paper's simulated application consumption rate (does not scale with
/// the network; see DESIGN.md).
inline constexpr double kSimAppReadBps = 64e6;

/// Sweep driver for the figure binaries: batches a panel's independent
/// (Scenario, seed) cells through the ParallelRunner — results come
/// back in input order and each cell is bit-for-bit the run the serial
/// loop would have produced, so the printed tables are unchanged. On
/// destruction, records the figure's wall time to BENCH_<suite>.json
/// when HRMC_BENCH_JSON_DIR is set (the perf-trajectory artifact).
class Sweep {
 public:
  explicit Sweep(std::string suite)
      : suite_(std::move(suite)), t0_(wall_seconds()) {}

  Sweep(const Sweep&) = delete;
  Sweep& operator=(const Sweep&) = delete;

  ~Sweep() {
    if (std::getenv("HRMC_BENCH_JSON_DIR") == nullptr) return;
    BenchReport report(suite_);
    report.metric("figure", "wall_s", wall_seconds() - t0_);
    report.metric("figure", "cells", static_cast<double>(cells_));
    report.metric("figure", "threads", runner_.threads());
    report.write_file(bench_json_path("BENCH_" + suite_ + ".json"));
  }

  [[nodiscard]] std::vector<harness::RunResult> run(
      const std::vector<harness::Scenario>& cells) {
    cells_ += cells.size();
    return runner_.run_all(cells);
  }

 private:
  std::string suite_;
  double t0_;
  std::size_t cells_ = 0;
  harness::ParallelRunner runner_;
};

}  // namespace hrmc::bench
