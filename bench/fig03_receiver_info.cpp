// Figure 3: percentage of buffer-release decisions for which the sender
// already holds complete receiver information, 10 receivers, loss rates
// 0.005% (LAN) / 0.5% (MAN) / 2% (WAN), kernel buffers 64K-1024K.
//   (a) original RMC: feedback only from NAKs and rate requests;
//   (b) H-RMC: periodic UPDATEs added.
// Expected shape: (a) low in low-loss networks and rising with loss
// (more NAKs = more information); (b) near-complete everywhere, further
// helped by larger buffers (data is buffered longer, so updates have
// time to arrive).
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

RunResult run_one(int test_case, std::size_t buf, proto::Mode mode) {
  Workload wl;
  wl.file_bytes = 4 * kMiB;
  wl.sink_read_rate_bps = kSimAppReadBps;
  Scenario sc = test_case_scenario(test_case, 10, 10e6, buf, wl,
                                   kBenchSeed + test_case);
  sc.proto.mode = mode;
  sc.time_limit = sim::seconds(3600);
  return run_transfer(sc);
}

}  // namespace

int main() {
  banner("Figure 3: complete receiver information at buffer release",
         "10 receivers, 10 Mbps, 4 MB transfer; cell = % of release\n"
         "decisions taken with state from every receiver in hand");

  const struct {
    const char* label;
    int test_case;
  } envs[] = {{"LAN (0.005%)", 1}, {"MAN (0.5%)", 2}, {"WAN (2%)", 3}};

  for (proto::Mode mode : {proto::Mode::kRmc, proto::Mode::kHrmc}) {
    std::cout << (mode == proto::Mode::kRmc
                      ? "(a) without updates (original RMC)\n"
                      : "(b) with updates (H-RMC)\n");
    Table t({"buffer", "LAN (0.005%)", "MAN (0.5%)", "WAN (2%)"});
    for (std::size_t buf : buffer_sweep()) {
      std::vector<std::string> row{buf_label(buf)};
      for (const auto& env : envs) {
        RunResult r = run_one(env.test_case, buf, mode);
        row.push_back(fmt(r.complete_info_pct(), 1));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
