// BENCH_*.json emitter: the machine-readable side of the bench suite.
//
// Every perf claim in the repository from this PR forward is backed by
// a BENCH_*.json artifact (events/sec, ns/event, clone rates, wall time
// per figure) so the trajectory is tracked in CI rather than asserted
// in prose. The format is deliberately small and flat — name → numeric
// metrics — so the CI gate can be a ten-line stdlib script.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hrmc::bench {

class BenchReport {
 public:
  /// `suite` names the producing binary ("core", "fig10", ...).
  explicit BenchReport(std::string suite) : suite_(std::move(suite)) {}

  /// Appends one metric to entry `name`, creating the entry on first
  /// use. Entries and metrics render in insertion order.
  void metric(const std::string& name, const std::string& key, double value);

  /// Attaches a time-series curve to entry `name` (rendered as a
  /// `"series"` object next to `"metrics"`). The gate script only reads
  /// `"metrics"`, so series are plot fodder, never gated.
  void series(const std::string& name, const std::string& key,
              std::vector<double> values);

  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; returns false (and prints to stderr)
  /// on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, std::vector<double>>> series;
  };
  Entry& entry(const std::string& name);
  std::string suite_;
  std::vector<Entry> entries_;
};

/// Output path for a BENCH_*.json file: $HRMC_BENCH_JSON_DIR/<filename>
/// when the variable is set, else ./<filename>.
std::string bench_json_path(const std::string& filename);

/// Seconds elapsed on the wall clock since an arbitrary epoch
/// (steady_clock); subtract two samples around the measured region.
double wall_seconds();

}  // namespace hrmc::bench
