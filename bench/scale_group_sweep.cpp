// Group-size sweep: 1k -> 1M receivers (million-receiver scaling).
//
// Each cell models N leaves as ceil(N/1000) ModeledReceiver slots of
// ~1000 leaves each, spread over router subtrees of at most 250 slots:
// event count scales with packets and subtrees, not with members, which
// is what makes the 10^6 cell runnable at all. The sweep checks the
// three scaling properties the hierarchy + sharded-MemberTable work
// claims:
//
//   1. Release-check cost is O(subtrees): member_min_rescan_work per
//      release decision tracks the slot count, never the leaf count.
//   2. PROBE traffic is sublinear in the member count (probes per leaf
//      falls as N grows; the per-round cap bounds any one burst).
//   3. Feedback stays aggregated: feedback packets per delivered
//      leaf-gigabyte at 1M within ~2x of the 1k value.
//
// `--smoke` runs only the 1k and 10k cells (the CI bench gate);
// the full sweep adds 100k and 1M and enforces the acceptance
// comparisons above, exiting non-zero when one fails.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

/// Leaves represented by one ModeledReceiver slot.
constexpr std::uint32_t kLeavesPerSlot = 1000;
/// Slots per router subtree (group router fan-out stays bounded).
constexpr std::size_t kSlotsPerGroup = 250;
/// Independent per-leaf tail loss on top of the simulated network's own
/// drops. Small enough that a 1000-leaf slot sees a handful of holes
/// per stream, large enough that every cell exercises NAK -> repair.
constexpr double kLeafLoss = 1e-5;

struct CellResult {
  std::uint64_t leaves = 0;
  std::size_t slots = 0;
  RunResult run;
  double wall_s = 0.0;
  double feedback_pkts = 0.0;
  double feedback_per_leaf_gb = 0.0;
  double rescan_work_per_release = 0.0;
  double probes_per_leaf = 0.0;
};

Scenario cell(std::uint64_t leaves) {
  const std::size_t slots =
      static_cast<std::size_t>((leaves + kLeavesPerSlot - 1) /
                               kLeavesPerSlot);
  Scenario sc;
  sc.name = "scale_" + std::to_string(leaves);
  sc.topo.network_bps = 100e6;
  sc.topo.seed = sim::substream_seed(kBenchSeed, sc.name + ":topo");
  for (std::size_t left = slots; left > 0;) {
    const auto g = static_cast<int>(std::min(left, kSlotsPerGroup));
    sc.topo.groups.push_back(net::group_a(g));
    left -= static_cast<std::size_t>(g);
  }
  sc.proto.sndbuf = 512 * 1024;
  sc.proto.rcvbuf = 512 * 1024;
  // The knobs a real million-member deployment would run with: batched
  // flash-crowd admission and the per-round probe cap (its default).
  sc.proto.join_batch_threshold = 64;
  sc.proto.feedback_seed = kBenchSeed;
  sc.workload.file_bytes = 2 * kMiB;
  sc.workload.sink_read_rate_bps = 0.0;
  sc.seed = kBenchSeed + leaves;
  // Leaves split as evenly as the slot count allows (remainder spread
  // over the first slots), so Σ population == leaves exactly.
  const std::uint64_t base = leaves / slots;
  const std::uint64_t extra = leaves % slots;
  for (std::size_t i = 0; i < slots; ++i) {
    ModeledGroup mg;
    mg.receiver = i;
    mg.population =
        static_cast<std::uint32_t>(base + (i < extra ? 1 : 0));
    mg.leaf_loss = kLeafLoss;
    sc.modeled.push_back(mg);
  }
  return sc;
}

CellResult run_cell(Sweep& sweep, std::uint64_t leaves) {
  CellResult c;
  c.leaves = leaves;
  const Scenario sc = cell(leaves);
  c.slots = sc.modeled.size();
  const double t0 = wall_seconds();
  c.run = run_transfer(sc);
  c.wall_s = wall_seconds() - t0;

  const proto::SenderStats& s = c.run.sender;
  c.feedback_pkts = static_cast<double>(
      s.naks_received + s.updates_received + s.agg_updates_received +
      s.rate_requests_received + s.urgent_requests_received +
      s.joins_received + s.leaves_received);
  const double leaf_gb = static_cast<double>(leaves) *
                         static_cast<double>(sc.workload.file_bytes) / 1e9;
  c.feedback_per_leaf_gb = c.feedback_pkts / leaf_gb;
  c.rescan_work_per_release =
      static_cast<double>(c.run.member_min_rescan_work) /
      static_cast<double>(std::max<std::uint64_t>(s.release_decisions, 1));
  c.probes_per_leaf =
      static_cast<double>(s.probes_sent) / static_cast<double>(leaves);

  const std::string name = sc.name;
  sweep.metric(name, "completed", c.run.completed ? 1.0 : 0.0);
  sweep.metric(name, "leaves", static_cast<double>(leaves));
  sweep.metric(name, "slots", static_cast<double>(c.slots));
  sweep.metric(name, "wall_s", c.wall_s);
  sweep.metric(name, "elapsed_s", sim::to_seconds(c.run.elapsed));
  sweep.metric(name, "probes_sent",
               static_cast<double>(s.probes_sent));
  sweep.metric(name, "probes_deferred",
               static_cast<double>(s.probes_deferred));
  sweep.metric(name, "feedback_pkts", c.feedback_pkts);
  sweep.metric(name, "feedback_per_leaf_gb", c.feedback_per_leaf_gb);
  sweep.metric(name, "rescan_work_per_release", c.rescan_work_per_release);
  sweep.metric(name, "releases",
               static_cast<double>(s.release_decisions));
  sweep.metric(name, "naks_rx", static_cast<double>(s.naks_received));
  sweep.metric(name, "retransmissions",
               static_cast<double>(s.retransmissions));
  sweep.metric(name, "stall_s", sim::to_seconds(c.run.stall_time));
  return c;
}

std::string f2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  banner("Group-size sweep: 1k -> 1M modeled receivers",
         smoke ? "smoke: 1k / 10k cells only"
               : "full sweep; acceptance comparisons enforced at 1M");

  std::vector<std::uint64_t> sizes{1'000, 10'000};
  if (!smoke) {
    sizes.push_back(100'000);
    sizes.push_back(1'000'000);
  }

  Sweep sweep("scale");
  std::vector<CellResult> cells;
  Table t({"leaves", "slots", "done", "sim s", "wall s", "probes",
           "feedback", "fb/leaf-GB", "rescan/rel"});
  bool all_completed = true;
  for (std::uint64_t n : sizes) {
    CellResult c = run_cell(sweep, n);
    all_completed = all_completed && c.run.completed;
    t.add_row({std::to_string(c.leaves), std::to_string(c.slots),
               c.run.completed ? "yes" : "NO",
               f2(sim::to_seconds(c.run.elapsed)), f2(c.wall_s),
               std::to_string(c.run.sender.probes_sent),
               std::to_string(static_cast<std::uint64_t>(c.feedback_pkts)),
               f2(c.feedback_per_leaf_gb),
               f2(c.rescan_work_per_release)});
    cells.push_back(std::move(c));
  }
  t.print(std::cout);
  std::cout << '\n';

  if (!all_completed) {
    std::cout << "FAIL: a cell did not complete its transfer\n";
    return 1;
  }
  if (smoke) return 0;

  // Acceptance comparisons (full sweep): the 1M cell against the 1k
  // baseline cell.
  const CellResult& lo = cells.front();
  const CellResult& hi = cells.back();
  bool ok = true;

  // 1. Release-check cost O(subtrees): members walked per release stays
  //    within a small multiple of the slot count — and nowhere near the
  //    leaf count.
  const double rescan_ratio =
      hi.rescan_work_per_release / static_cast<double>(hi.slots);
  std::cout << "release-check work per release @1M: "
            << f2(hi.rescan_work_per_release) << " ("
            << f2(rescan_ratio) << "x slots)\n";
  if (hi.rescan_work_per_release >
      4.0 * static_cast<double>(hi.slots)) {
    std::cout << "FAIL: release-check work is not O(subtrees)\n";
    ok = false;
  }

  // 2. PROBE count sublinear: probes per leaf must fall as the group
  //    grows (a flat design probes every member, holding this constant).
  std::cout << "probes per leaf: " << f2(lo.probes_per_leaf) << " @1k -> "
            << f2(hi.probes_per_leaf) << " @1M\n";
  if (hi.probes_per_leaf >= lo.probes_per_leaf) {
    std::cout << "FAIL: probe traffic is not sublinear in members\n";
    ok = false;
  }

  // 3. Feedback stays aggregated: per delivered leaf-gigabyte, the 1M
  //    cell costs at most ~2x the 1k cell.
  std::cout << "feedback per leaf-GB: " << f2(lo.feedback_per_leaf_gb)
            << " @1k -> " << f2(hi.feedback_per_leaf_gb) << " @1M\n";
  if (hi.feedback_per_leaf_gb > 2.0 * lo.feedback_per_leaf_gb) {
    std::cout << "FAIL: feedback per delivered byte grew past 2x\n";
    ok = false;
  }

  std::cout << (ok ? "\nscale acceptance passed\n"
                   : "\nscale acceptance FAILED\n");
  return ok ? 0 : 1;
}
