// Conclusions claim: "the throughput we obtained was comparable to that
// of TCP". Like-for-like check: H-RMC with one receiver versus the
// mini-TCP baseline, same simulated hosts and network, same buffers.
#include "baseline/minitcp.hpp"
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

double tcp_throughput(double network_bps, std::size_t buf,
                      std::uint64_t bytes, std::uint64_t seed) {
  sim::Scheduler sched;
  net::TopologyConfig tcfg;
  tcfg.network_bps = network_bps;
  tcfg.seed = sim::substream_seed(seed, "topo");
  tcfg.groups = {net::group_a(1)};
  net::Topology topo(sched, tcfg);

  baseline::MiniTcpConfig cfg;
  cfg.sndbuf = buf;
  cfg.rcvbuf = buf;
  baseline::MiniTcpReceiver rcv(topo.receiver(0), cfg, 9000);
  baseline::MiniTcpSender snd(topo.sender(), cfg, 9000,
                              net::Endpoint{topo.receiver(0).addr(), 9000});

  std::uint64_t offered = 0;
  std::vector<std::uint8_t> chunk(64 * 1024), rbuf(64 * 1024);
  auto offer = [&] {
    while (offered < bytes) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(chunk.size(), bytes - offered));
      const std::size_t n = snd.send({chunk.data(), want});
      offered += n;
      if (n < want) return;
    }
    snd.close();
  };
  snd.on_writable = offer;
  rcv.on_readable = [&] {
    while (rcv.recv(rbuf) > 0) {
    }
  };
  const sim::SimTime start = sched.now();
  offer();
  sched.run_while([&] { return !rcv.complete(); }, sim::seconds(3600));
  snd.stop();
  if (!rcv.complete()) return 0.0;
  return static_cast<double>(bytes) * 8.0 /
         sim::to_seconds(sched.now() - start) / 1e6;
}

double hrmc_throughput(double network_bps, std::size_t buf,
                       std::uint64_t bytes, std::uint64_t seed) {
  Workload wl;
  wl.file_bytes = bytes;
  Scenario sc = lan_scenario(1, network_bps, buf, wl, seed);
  RunResult r = run_transfer(sc);
  return r.completed ? r.throughput_mbps : 0.0;
}

}  // namespace

int main() {
  banner("Ablation: H-RMC (1 receiver) vs mini-TCP",
         "10 MB transfer on a clean LAN; comparable is the claim");
  for (double bps : {10e6, 100e6}) {
    std::cout << (bps == 10e6 ? "10 Mbps network\n" : "100 Mbps network\n");
    harness::Table t({"buffer", "H-RMC (Mbps)", "mini-TCP (Mbps)", "ratio"});
    for (std::size_t buf : buffer_sweep()) {
      const double h = hrmc_throughput(bps, buf, 10 * kMiB, kBenchSeed);
      const double tcp = tcp_throughput(bps, buf, 10 * kMiB, kBenchSeed);
      t.add_row({buf_label(buf), fmt(h, 2), fmt(tcp, 2),
                 tcp > 0 ? fmt(h / tcp, 2) : "n/a"});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
