// §6 future work (4): forward error correction "particularly for
// wireless environments". Sweep uncorrelated (wireless-like) loss with
// parity off / every 16 / every 8 packets: FEC converts most single
// losses into local reconstructions, trading +1/k bandwidth for far
// fewer NAK round trips and retransmissions.
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

RunResult run_one(double loss, std::size_t fec_group) {
  Workload wl;
  wl.file_bytes = 8 * kMiB;
  Scenario sc = lan_scenario(4, 10e6, 256 << 10, wl, kBenchSeed);
  sc.topo.groups[0].loss_rate = loss;
  sc.topo.correlated_share = 0.0;  // independent per-receiver loss
  sc.topo.groups[0].delay = sim::milliseconds(20);  // recovery RTT matters
  sc.proto.fec_group = fec_group;
  sc.time_limit = sim::seconds(3600);
  return run_transfer(sc);
}

}  // namespace

int main() {
  banner("Ablation: forward error correction (future work #4)",
         "8 MB to 4 receivers, 20 ms paths, independent loss;\n"
         "recoveries happen at the receiver with no round trip");
  Table t({"loss", "fec", "thr Mbps", "NAKs", "retrans", "recoveries",
           "parity pkts"});
  for (double loss : {0.005, 0.02, 0.05}) {
    for (std::size_t g : {std::size_t{0}, std::size_t{16}, std::size_t{8}}) {
      RunResult r = run_one(loss, g);
      t.add_row({fmt(loss * 100, 1) + "%",
                 g == 0 ? "off" : ("1/" + std::to_string(g)),
                 fmt(r.throughput_mbps, 2),
                 std::to_string(r.receivers_total.naks_sent),
                 std::to_string(r.sender.retransmissions),
                 std::to_string(r.receivers_total.fec_recoveries),
                 std::to_string(r.sender.fec_packets_sent)});
    }
  }
  t.print(std::cout);
  return 0;
}
