// §6 future work (4): forward error correction "particularly for
// wireless environments". Three recovery disciplines under
// Gilbert–Elliott burst loss on the multicast tree:
//
//   nak : pure selective-repeat (fec_group = 0) — every hole costs a
//         NAK round trip and a retransmission.
//   xor : fixed single-parity XOR, 1 row per 8-packet group — the seed
//         protocol's FEC; bursts inside one group defeat it.
//   rs  : adaptive Reed–Solomon — 1..4 Cauchy parity rows per 8-packet
//         group, the rate tracking observed NAK volume per epoch, with
//         selective-repeat fallback when a group's losses exceed its
//         parity budget.
//
// Acceptance (full run, enforced by exit code): at the ~5% burst-loss
// operating point the adaptive RS arm completes the 8 MB transfer with
//   - at least 2x fewer repair events (NAKs sent + retransmissions)
//     than pure NAK, and
//   - at most 1.3x the pure-NAK wire bytes (data + retransmissions +
//     parity: the FEC premium stays bounded).
//
// `--smoke` runs a 2 MB variant of the same three arms (the CI bench
// gate: metrics land in BENCH_fec.json for check_bench.py --suite fec).
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/loss.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

/// ~5% mean loss: stationary bad-state share 0.024/(0.024+0.5) = 4.6%
/// at loss_bad = 1, plus 0.5% residual good-state loss. Mean burst
/// length 1/0.5 = 2 packets — bursts routinely defeat one parity row
/// but stay inside the adaptive 4-row budget for an 8-packet group.
constexpr net::GilbertElliottConfig kBurst5{0.024, 0.5, 0.005, 1.0};
/// ~2% mean loss, same 2-packet burst geometry.
constexpr net::GilbertElliottConfig kBurst2{0.009, 0.5, 0.002, 1.0};

struct Arm {
  const char* name;
  std::size_t fec_group;
  std::uint32_t parity_min;
  std::uint32_t parity_max;
  bool adaptive;
};

constexpr Arm kArms[] = {
    {"nak", 0, 1, 1, false},
    {"xor", 8, 1, 1, false},
    {"rs", 8, 1, 4, true},
};

Scenario cell(const Arm& arm, const net::GilbertElliottConfig& ge,
              const std::string& tag, std::uint64_t file_bytes) {
  Workload wl;
  wl.file_bytes = file_bytes;
  Scenario sc = lan_scenario(4, 10e6, 256 << 10, wl, kBenchSeed);
  sc.name = std::string("fec_") + tag + "_" + arm.name;
  sc.topo.groups[0].loss_rate = 0.0;  // all loss comes from the GE chain
  sc.topo.groups[0].delay = sim::milliseconds(20);  // recovery RTT matters
  sc.faults.burst_loss(0, 0, ge);
  sc.proto.fec_group = arm.fec_group;
  sc.proto.fec_parity_min = arm.parity_min;
  sc.proto.fec_parity_max = arm.parity_max;
  sc.proto.fec_adapt_interval =
      arm.adaptive ? sim::milliseconds(100) : sim::SimTime{0};
  sc.time_limit = sim::seconds(3600);
  return sc;
}

/// NAKs sent by receivers plus retransmissions: every unit is one
/// round-trip-bound repair action FEC is supposed to pre-empt.
std::uint64_t repair_events(const RunResult& r) {
  return r.receivers_total.naks_sent + r.sender.retransmissions;
}

/// Sender wire bytes: first transmissions + retransmissions + parity.
std::uint64_t wire_bytes(const RunResult& r) {
  return r.sender.data_bytes_sent + r.sender.retrans_bytes +
         r.sender.fec_parity_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t file_bytes = smoke ? 2 * kMiB : 8 * kMiB;

  banner("Ablation: adaptive RS-FEC vs fixed XOR vs pure NAK",
         (smoke ? std::string("smoke: 2 MB")
                : std::string("full: 8 MB")) +
             " to 4 receivers, 20 ms paths, Gilbert-Elliott burst "
             "loss\n(mean burst 2 packets); acceptance enforced at the "
             "~5% point on the full run");

  struct Point {
    const char* tag;
    net::GilbertElliottConfig ge;
  };
  const std::vector<Point> points = smoke
      ? std::vector<Point>{{"b5", kBurst5}}
      : std::vector<Point>{{"b2", kBurst2}, {"b5", kBurst5}};

  Sweep sweep("fec");
  std::vector<Scenario> cells;
  for (const Point& p : points) {
    for (const Arm& arm : kArms) {
      cells.push_back(cell(arm, p.ge, p.tag, file_bytes));
    }
  }
  const std::vector<RunResult> results = sweep.run(cells);

  Table t({"loss", "arm", "done", "thr Mbps", "NAKs", "retrans",
           "repairs", "recoveries", "decode fail", "parity rate",
           "wire MB"});
  bool all_completed = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const RunResult& r = results[i];
    const Arm& arm = kArms[i % std::size(kArms)];
    all_completed = all_completed && r.completed;
    t.add_row({points[i / std::size(kArms)].tag, arm.name,
               r.completed ? "yes" : "NO", fmt(r.throughput_mbps, 2),
               std::to_string(r.receivers_total.naks_sent),
               std::to_string(r.sender.retransmissions),
               std::to_string(repair_events(r)),
               std::to_string(r.receivers_total.fec_recoveries),
               std::to_string(r.receivers_total.fec_decode_failures),
               std::to_string(r.sender.fec_parity_rate),
               fmt(static_cast<double>(wire_bytes(r)) / 1e6, 2)});

    const std::string& name = cells[i].name;
    sweep.metric(name, "completed", r.completed ? 1.0 : 0.0);
    sweep.metric(name, "elapsed_s", sim::to_seconds(r.elapsed));
    sweep.metric(name, "naks_sent",
                 static_cast<double>(r.receivers_total.naks_sent));
    sweep.metric(name, "retransmissions",
                 static_cast<double>(r.sender.retransmissions));
    sweep.metric(name, "repair_events",
                 static_cast<double>(repair_events(r)));
    sweep.metric(name, "fec_recoveries",
                 static_cast<double>(r.receivers_total.fec_recoveries));
    sweep.metric(name, "fec_decode_failures",
                 static_cast<double>(r.receivers_total.fec_decode_failures));
    sweep.metric(name, "fec_packets_sent",
                 static_cast<double>(r.sender.fec_packets_sent));
    sweep.metric(name, "fec_parity_bytes",
                 static_cast<double>(r.sender.fec_parity_bytes));
    sweep.metric(name, "fec_parity_rate",
                 static_cast<double>(r.sender.fec_parity_rate));
    sweep.metric(name, "wire_bytes",
                 static_cast<double>(wire_bytes(r)));
    // Repair bytes on the wire (retransmissions + parity) and NAKs per
    // delivered gigabyte across the 4 receivers — the ROADMAP's ablation
    // axes alongside time-to-complete (elapsed_s).
    sweep.metric(name, "repair_bytes",
                 static_cast<double>(r.sender.retrans_bytes +
                                     r.sender.fec_parity_bytes));
    const double delivered_gb =
        4.0 * static_cast<double>(file_bytes) / 1e9;
    sweep.metric(name, "naks_per_gb",
                 static_cast<double>(r.receivers_total.naks_sent) /
                     delivered_gb);
  }
  t.print(std::cout);
  std::cout << '\n';

  // Acceptance at the ~5% burst point: arms are laid out nak/xor/rs,
  // with the b5 point last (full) or only (smoke).
  const std::size_t base = cells.size() - std::size(kArms);
  const RunResult& nak = results[base + 0];
  const RunResult& rs = results[base + 2];
  const double repair_ratio =
      static_cast<double>(repair_events(nak)) /
      static_cast<double>(std::max<std::uint64_t>(repair_events(rs), 1));
  const double wire_ratio = static_cast<double>(wire_bytes(rs)) /
                            static_cast<double>(wire_bytes(nak));
  std::cout << "repair events (NAKs + retransmissions): nak="
            << repair_events(nak) << " rs=" << repair_events(rs) << " ("
            << fmt(repair_ratio, 2) << "x fewer)\n"
            << "wire bytes: rs/nak = " << fmt(wire_ratio, 3) << "\n";
  sweep.metric("fec_accept", "repair_ratio", repair_ratio);
  sweep.metric("fec_accept", "wire_ratio_x100", wire_ratio * 100.0);

  if (!all_completed) {
    std::cout << "\nFAIL: an arm did not complete its transfer\n";
    return 1;
  }
  if (smoke) return 0;

  bool ok = true;
  if (repair_ratio < 2.0) {
    std::cout << "FAIL: adaptive RS repair traffic is not 2x below "
                 "pure NAK\n";
    ok = false;
  }
  if (wire_ratio > 1.3) {
    std::cout << "FAIL: adaptive RS wire bytes exceed 1.3x pure NAK\n";
    ok = false;
  }
  std::cout << (ok ? "\nfec acceptance passed\n"
                   : "\nfec acceptance FAILED\n");
  return ok ? 0 : 1;
}
