// §6 future work (1): "probing receivers prior to buffer release time to
// avoid a stop-and-wait scenario for small buffers". The paper flags the
// 100 Mbps / small-buffer case as the motivating regime, where a full
// send window waits one probe round-trip per release cycle.
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

RunResult run_one(std::size_t buf, int early_rtts) {
  Workload wl;
  wl.file_bytes = 10 * kMiB;
  wl.sink_read_rate_bps = 0.0;
  Scenario sc = lan_scenario(2, 100e6, buf, wl, kBenchSeed);
  sc.proto.early_probe_rtts = early_rtts;
  return run_transfer(sc);
}

}  // namespace

int main() {
  banner("Ablation: early probes (future work #1)",
         "100 Mbps, 2 receivers, 10 MB memory-to-memory; early probes\n"
         "collect receiver state before the release hold expires");
  Table t({"buffer", "off: Mbps", "off: probes", "early(2 RTT): Mbps",
           "early: probes", "early(4 RTT): Mbps"});
  for (std::size_t buf : buffer_sweep()) {
    RunResult off = run_one(buf, 0);
    RunResult e2 = run_one(buf, 2);
    RunResult e4 = run_one(buf, 4);
    t.add_row({buf_label(buf), fmt(off.throughput_mbps, 2),
               std::to_string(off.sender.probes_sent),
               fmt(e2.throughput_mbps, 2),
               std::to_string(e2.sender.probes_sent),
               fmt(e4.throughput_mbps, 2)});
  }
  t.print(std::cout);
  return 0;
}
