// Microbenchmarks (google-benchmark) for the hot paths of the protocol
// implementation — header codec, checksum, member-table lookup, NAK list
// maintenance, sk_buff queues and the event scheduler — plus the "core
// workload", a fixed router-fan-out + timer-churn scenario whose
// events/sec is recorded to BENCH_core.json and gated in CI (the
// bench-smoke job fails on a >20% regression against the checked-in
// baseline).
//
// Usage:
//   micro_core                  core workload + all microbenchmarks
//   micro_core --core-only    core workload only (what CI runs)
//   micro_core --benchmark_filter=...   forwarded to google-benchmark
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string_view>
#include <vector>

#include "bench_json.hpp"
#include "hrmc/member.hpp"
#include "hrmc/nak_list.hpp"
#include "hrmc/wire.hpp"
#include "kern/checksum.hpp"
#include "kern/skbuff.hpp"
#include "net/router.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace hrmc;

// ---------------------------------------------------------------------
// Core workload: the two paths that dominate every simulation run.
//
// Fan-out: a router duplicating a 1460-byte data stream to N group
// members (the multicast hot path — one clone per egress). Each sink
// strips the header exactly like the receive path does.
//
// Timer churn: rearming timers in the mod_timer pattern every protocol
// socket uses — each tick cancels its previously armed event (a
// tombstone for the scheduler to absorb) and schedules two more.
// ---------------------------------------------------------------------

constexpr int kFanoutReceivers = 32;
constexpr int kFanoutPackets = 20000;
constexpr int kChurners = 128;
constexpr int kChurnTicks = 5000;  // per churner

class HeaderStripSink final : public net::PacketSink {
 public:
  void deliver(kern::SkBuffPtr skb) override {
    skb->pull(proto::Header::kSize);  // view-only, like the receive path
    bytes += skb->size();
    ++packets;
  }
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

struct Churner {
  sim::Scheduler* sched = nullptr;
  sim::SimTime period = 0;
  int remaining = 0;
  sim::EventHandle dummy;

  void tick() {
    // mod_timer pattern: the previously armed deadline is cancelled
    // (tombstone) and a new one armed further out; the tick itself
    // rearms.
    dummy.cancel();
    dummy = sched->schedule_after(period * 10, [] {});
    if (--remaining > 0) {
      sched->schedule_after(period, [this] { tick(); });
    }
  }
};

struct CoreResult {
  std::uint64_t events = 0;
  double wall_s = 0.0;
  std::uint64_t packets_delivered = 0;
  kern::SkBuffStats skb;
};

CoreResult run_core_workload(bool fanout, bool churn) {
  sim::Scheduler sched;

  net::RouterConfig cfg;
  cfg.speed_bps = 1e9;
  cfg.queue_limit = 4096;
  net::Router router(sched, "core", cfg, /*loss_seed=*/1);
  std::vector<HeaderStripSink> sinks(kFanoutReceivers);
  const net::Addr group = net::make_addr(224, 9, 9, 9);
  for (auto& s : sinks) router.join_group(group, &s);

  int packets_left = fanout ? kFanoutPackets : 0;
  std::function<void()> inject = [&] {
    auto skb = kern::SkBuff::alloc(1460, 64);
    skb->put(1460);
    proto::Header h;
    h.seq = static_cast<kern::Seq>(packets_left) * 1460;
    h.length = 1460;
    h.type = proto::PacketType::kData;
    proto::write_header(*skb, h);
    skb->daddr = group;
    router.deliver(std::move(skb));
    if (--packets_left > 0) sched.schedule_after(sim::microseconds(50), inject);
  };
  if (fanout) sched.schedule_at(0, inject);

  std::vector<Churner> churners(kChurners);
  if (churn) {
    for (int i = 0; i < kChurners; ++i) {
      churners[i].sched = &sched;
      churners[i].period = sim::microseconds(200);
      churners[i].remaining = kChurnTicks;
      sched.schedule_at(sim::microseconds(i), [c = &churners[i]] { c->tick(); });
    }
  }

  kern::skbuff_stats_reset();
  const double t0 = bench::wall_seconds();
  sched.run_until();
  const double t1 = bench::wall_seconds();

  CoreResult r;
  r.events = sched.executed();
  r.wall_s = t1 - t0;
  r.skb = kern::skbuff_stats();
  for (const auto& s : sinks) r.packets_delivered += s.packets;
  return r;
}

void record(bench::BenchReport& report, const std::string& name,
            const CoreResult& r) {
  const double evps = r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s
                                   : 0.0;
  report.metric(name, "events", static_cast<double>(r.events));
  report.metric(name, "wall_s", r.wall_s);
  report.metric(name, "events_per_sec", evps);
  report.metric(name, "ns_per_event",
                r.events > 0 ? r.wall_s * 1e9 / static_cast<double>(r.events)
                             : 0.0);
  report.metric(name, "packets_delivered",
                static_cast<double>(r.packets_delivered));
  report.metric(name, "clones", static_cast<double>(r.skb.clones));
  report.metric(name, "cow_copies", static_cast<double>(r.skb.cow_copies));
  report.metric(name, "pool_hits", static_cast<double>(r.skb.pool_hits));
  report.metric(name, "block_allocs", static_cast<double>(r.skb.block_allocs));
  if (r.packets_delivered > 0) {
    report.metric(name, "clones_per_packet",
                  static_cast<double>(r.skb.clones) /
                      static_cast<double>(r.packets_delivered));
  }
  std::cout << name << ": " << r.events << " events in " << r.wall_s
            << " s  (" << static_cast<std::uint64_t>(evps)
            << " events/sec; " << r.skb.clones << " clones, "
            << r.skb.cow_copies << " COW copies)\n";
}

int run_core_and_report() {
  bench::BenchReport report("core");
  record(report, "router_fanout", run_core_workload(true, false));
  record(report, "timer_churn", run_core_workload(false, true));
  record(report, "fanout_plus_timer_churn", run_core_workload(true, true));
  const std::string path = bench::bench_json_path("BENCH_core.json");
  if (!report.write_file(path)) return 1;
  std::cout << "wrote " << path << "\n\n";
  return 0;
}

// ---------------------------------------------------------------------
// Microbenchmarks
// ---------------------------------------------------------------------

void BM_HeaderWrite(benchmark::State& state) {
  auto skb = kern::SkBuff::alloc(1460, 64);
  skb->put(1460);
  proto::Header h;
  h.seq = 123456;
  h.rate = 1'000'000;
  h.length = 1460;
  h.type = proto::PacketType::kData;
  for (auto _ : state) {
    write_header(*skb, h);
    skb->pull(proto::Header::kSize);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1480);
}
BENCHMARK(BM_HeaderWrite);

void BM_HeaderRead(benchmark::State& state) {
  auto skb = kern::SkBuff::alloc(1460, 64);
  skb->put(1460);
  proto::Header h;
  h.length = 1460;
  h.type = proto::PacketType::kData;
  write_header(*skb, h);
  for (auto _ : state) {
    auto parsed = proto::read_header(*skb);
    benchmark::DoNotOptimize(parsed);
    skb->push(proto::Header::kSize);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1480);
}
BENCHMARK(BM_HeaderRead);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  sim::Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1460)->Arg(9000);

void BM_MemberLookup(benchmark::State& state) {
  proto::MemberTable table;
  const int n = static_cast<int>(state.range(0));
  std::vector<net::Addr> addrs;
  for (int i = 0; i < n; ++i) {
    const net::Addr a = net::make_addr(10, 1, static_cast<unsigned>(i / 250),
                                       static_cast<unsigned>(i % 250 + 1));
    table.add(a, 1);
    addrs.push_back(a);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(addrs[i++ % addrs.size()]));
  }
}
BENCHMARK(BM_MemberLookup)->Arg(10)->Arg(100)->Arg(1000);

void BM_MemberAllHave(benchmark::State& state) {
  proto::MemberTable table;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    table.add(net::make_addr(10, 1, static_cast<unsigned>(i / 250),
                             static_cast<unsigned>(i % 250 + 1)),
              1000000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.all_have(999999));
  }
}
BENCHMARK(BM_MemberAllHave)->Arg(10)->Arg(100)->Arg(1000);

void BM_NakListChurn(benchmark::State& state) {
  for (auto _ : state) {
    proto::NakList l;
    for (kern::Seq s = 0; s < 100; ++s) {
      l.add_gap(s * 3000, s * 3000 + 1500, 0);
    }
    for (kern::Seq s = 0; s < 100; ++s) {
      l.fill(s * 3000, s * 3000 + 1500);
    }
    benchmark::DoNotOptimize(l.empty());
  }
}
BENCHMARK(BM_NakListChurn);

void BM_SkBuffQueueFifo(benchmark::State& state) {
  for (auto _ : state) {
    kern::SkBuffQueue q;
    for (int i = 0; i < 64; ++i) {
      auto skb = kern::SkBuff::alloc(1460, 64);
      skb->put(1460);
      q.push_back(std::move(skb));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop_front());
  }
}
BENCHMARK(BM_SkBuffQueueFifo);

void BM_SkBuffAllocPooled(benchmark::State& state) {
  // Steady-state packet allocation: after the first lap every block
  // comes from the thread's free list.
  for (auto _ : state) {
    auto skb = kern::SkBuff::alloc(1460, 64);
    skb->put(1460);
    benchmark::DoNotOptimize(skb);
  }
}
BENCHMARK(BM_SkBuffAllocPooled);

void BM_SkBuffCloneFanout(benchmark::State& state) {
  // The router duplication pattern: one packet cloned to N egresses.
  const int n = static_cast<int>(state.range(0));
  auto skb = kern::SkBuff::alloc(1460, 64);
  skb->put(1460);
  std::vector<kern::SkBuffPtr> out;
  out.reserve(static_cast<std::size_t>(n));
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) out.push_back(skb->clone());
    benchmark::DoNotOptimize(out.data());
    out.clear();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * 1460);
}
BENCHMARK(BM_SkBuffCloneFanout)->Arg(2)->Arg(8)->Arg(32);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(sim::microseconds(i * 7 % 500), [&] { ++fired; });
    }
    sched.run_until();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SchedulerChurn);

void BM_SchedulerCancelChurn(benchmark::State& state) {
  // The mod_timer pattern: most scheduled events are cancelled and
  // rearmed before they fire. Exercises slot reuse and tombstone
  // compaction.
  for (auto _ : state) {
    sim::Scheduler sched;
    int fired = 0;
    sim::EventHandle pending;
    for (int i = 0; i < 1000; ++i) {
      pending.cancel();
      pending =
          sched.schedule_at(sim::microseconds(1000 + i), [&] { ++fired; });
      sched.schedule_at(sim::microseconds(i), [&] { ++fired; });
    }
    sched.run_until();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SchedulerCancelChurn);

void BM_RngU64(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngU64);

}  // namespace

int main(int argc, char** argv) {
  bool core_only = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--core-only") {
      core_only = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const int rc = run_core_and_report();
  if (rc != 0 || core_only) return rc;

  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
