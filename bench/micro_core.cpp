// Microbenchmarks (google-benchmark) for the hot paths of the protocol
// implementation: header codec, checksum, member-table lookup, NAK list
// maintenance, sk_buff queues and the event scheduler.
#include <benchmark/benchmark.h>

#include "hrmc/member.hpp"
#include "hrmc/nak_list.hpp"
#include "hrmc/wire.hpp"
#include "kern/checksum.hpp"
#include "kern/skbuff.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace hrmc;

void BM_HeaderWrite(benchmark::State& state) {
  auto skb = kern::SkBuff::alloc(1460, 64);
  skb->put(1460);
  proto::Header h;
  h.seq = 123456;
  h.rate = 1'000'000;
  h.length = 1460;
  h.type = proto::PacketType::kData;
  for (auto _ : state) {
    write_header(*skb, h);
    skb->pull(proto::Header::kSize);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1480);
}
BENCHMARK(BM_HeaderWrite);

void BM_HeaderRead(benchmark::State& state) {
  auto skb = kern::SkBuff::alloc(1460, 64);
  skb->put(1460);
  proto::Header h;
  h.length = 1460;
  h.type = proto::PacketType::kData;
  write_header(*skb, h);
  for (auto _ : state) {
    auto parsed = proto::read_header(*skb);
    benchmark::DoNotOptimize(parsed);
    skb->push(proto::Header::kSize);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1480);
}
BENCHMARK(BM_HeaderRead);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  sim::Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1460)->Arg(9000);

void BM_MemberLookup(benchmark::State& state) {
  proto::MemberTable table;
  const int n = static_cast<int>(state.range(0));
  std::vector<net::Addr> addrs;
  for (int i = 0; i < n; ++i) {
    const net::Addr a = net::make_addr(10, 1, static_cast<unsigned>(i / 250),
                                       static_cast<unsigned>(i % 250 + 1));
    table.add(a, 1);
    addrs.push_back(a);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(addrs[i++ % addrs.size()]));
  }
}
BENCHMARK(BM_MemberLookup)->Arg(10)->Arg(100)->Arg(1000);

void BM_MemberAllHave(benchmark::State& state) {
  proto::MemberTable table;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    table.add(net::make_addr(10, 1, static_cast<unsigned>(i / 250),
                             static_cast<unsigned>(i % 250 + 1)),
              1000000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.all_have(999999));
  }
}
BENCHMARK(BM_MemberAllHave)->Arg(10)->Arg(100)->Arg(1000);

void BM_NakListChurn(benchmark::State& state) {
  for (auto _ : state) {
    proto::NakList l;
    for (kern::Seq s = 0; s < 100; ++s) {
      l.add_gap(s * 3000, s * 3000 + 1500, 0);
    }
    for (kern::Seq s = 0; s < 100; ++s) {
      l.fill(s * 3000, s * 3000 + 1500);
    }
    benchmark::DoNotOptimize(l.empty());
  }
}
BENCHMARK(BM_NakListChurn);

void BM_SkBuffQueueFifo(benchmark::State& state) {
  for (auto _ : state) {
    kern::SkBuffQueue q;
    for (int i = 0; i < 64; ++i) {
      auto skb = kern::SkBuff::alloc(1460, 64);
      skb->put(1460);
      q.push_back(std::move(skb));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop_front());
  }
}
BENCHMARK(BM_SkBuffQueueFifo);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule_at(sim::microseconds(i * 7 % 500), [&] { ++fired; });
    }
    sched.run_until();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SchedulerChurn);

void BM_RngU64(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngU64);

}  // namespace

BENCHMARK_MAIN();
