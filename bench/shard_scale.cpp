// Sharded-engine scaling: the million-receiver scenario executed by
// the conservative-time ShardEngine at 1, 2, 4 and 8 worker threads.
//
// The cell is the 1M-leaf modeled-receiver build from the group-size
// sweep, respread over eight router subtrees (= eight shard domains
// plus the sender/backbone domain) and run on 10 Mbit trunks: the
// engine's lookahead is one minimum-wire-packet serialization time on
// the trunk, so slower trunks mean wider epoch windows and more events
// executed per barrier -- the regime conservative parallelism pays in.
//
// Two things are checked, with different teeth:
//
//   1. Bit-identity (always enforced, any core count): every thread
//      count must reproduce the 1-thread run exactly -- event count,
//      PRNG end-state digest, epoch/handoff/compaction accounting. A
//      divergence is a determinism bug, never a perf tradeoff, so the
//      binary exits non-zero even on a single-core box.
//   2. Throughput scaling (enforced only where the hardware can
//      deliver it): >=1.6x events/sec at 2 threads and >=2.8x at 4 in
//      the full run, skipped with a note when hardware_concurrency()
//      is below the thread count (the smoke gate re-enforces the
//      2-thread floor in CI via check_bench.py --suite shard).
//
// `--smoke` runs the same topology with a smaller file at 1/2 threads
// only; full mode adds 4/8 threads and the in-binary scaling floors.
// Emits BENCH_shard.json when HRMC_BENCH_JSON_DIR is set.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

/// Leaves represented by one ModeledReceiver slot.
constexpr std::uint32_t kLeavesPerSlot = 1000;
/// Router subtrees: one shard domain each, plus the sender domain.
constexpr std::size_t kGroups = 8;
/// Independent per-leaf tail loss (same knob as the group-size sweep):
/// enough that every subtree exercises NAK -> repair across the trunk.
constexpr double kLeafLoss = 1e-5;
constexpr std::uint64_t kLeaves = 1'000'000;

Scenario cell(std::uint64_t file_bytes) {
  const std::size_t slots =
      static_cast<std::size_t>((kLeaves + kLeavesPerSlot - 1) /
                               kLeavesPerSlot);
  Scenario sc;
  sc.name = "shard_" + std::to_string(kLeaves);
  sc.topo.network_bps = 10e6;
  sc.topo.seed = sim::substream_seed(kBenchSeed, sc.name + ":topo");
  for (std::size_t g = 0; g < kGroups; ++g) {
    const std::size_t lo = slots * g / kGroups;
    const std::size_t hi = slots * (g + 1) / kGroups;
    sc.topo.groups.push_back(net::group_a(static_cast<int>(hi - lo)));
  }
  sc.proto.sndbuf = 512 * 1024;
  sc.proto.rcvbuf = 512 * 1024;
  sc.proto.join_batch_threshold = 64;
  sc.proto.feedback_seed = kBenchSeed;
  sc.workload.file_bytes = file_bytes;
  sc.workload.sink_read_rate_bps = 0.0;
  sc.seed = kBenchSeed + kLeaves;
  const std::uint64_t base = kLeaves / slots;
  const std::uint64_t extra = kLeaves % slots;
  for (std::size_t i = 0; i < slots; ++i) {
    ModeledGroup mg;
    mg.receiver = i;
    mg.population = static_cast<std::uint32_t>(base + (i < extra ? 1 : 0));
    mg.leaf_loss = kLeafLoss;
    sc.modeled.push_back(mg);
  }
  sc.shard.enabled = true;
  return sc;
}

struct ThreadRun {
  unsigned threads = 0;
  double wall_s = 0.0;
  RunResult run;
};

/// Runs the cell `reps` times at `threads` workers and keeps the
/// fastest wall time (every rep is the same deterministic run, so the
/// min is pure measurement, not survivorship).
ThreadRun measure(const Scenario& base, unsigned threads, int reps) {
  ThreadRun best;
  best.threads = threads;
  best.wall_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    Scenario sc = base;
    sc.shard.threads = threads;
    const double t0 = wall_seconds();
    RunResult res = run_transfer(sc);
    const double w = wall_seconds() - t0;
    if (w < best.wall_s) {
      best.wall_s = w;
      best.run = std::move(res);
    }
  }
  return best;
}

/// The replay-identity tuple: if any of these differ between thread
/// counts, the engine's schedule depended on the worker count.
bool identical(const RunResult& a, const RunResult& b, std::string* why) {
  auto check = [why](const char* field, std::uint64_t x, std::uint64_t y) {
    if (x == y) return true;
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s: %" PRIu64 " vs %" PRIu64, field, x,
                  y);
    *why = buf;
    return false;
  };
  return check("events_executed", a.events_executed, b.events_executed) &&
         check("rng_digest", a.rng_digest, b.rng_digest) &&
         check("sched_compactions", a.sched_compactions,
               b.sched_compactions) &&
         check("shard_epochs", a.shard_epochs, b.shard_epochs) &&
         check("shard_handoffs", a.shard_handoffs, b.shard_handoffs) &&
         check("shard_handoff_bytes", a.shard_handoff_bytes,
               b.shard_handoff_bytes);
}

std::string f2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  banner("Sharded engine: 1M modeled receivers, 1/2/4/8 worker threads",
         smoke ? "smoke: 1/2 threads, small file; identity always enforced"
               : "full: scaling floors enforced where the hardware allows");

  const std::uint64_t file_bytes = smoke ? 256 * 1024 : kMiB;
  std::vector<unsigned> threads{1, 2};
  if (!smoke) {
    threads.push_back(4);
    threads.push_back(8);
  }
  const int reps = smoke ? 3 : 2;

  const Scenario sc = cell(file_bytes);
  Sweep sweep("shard");
  const std::string name = smoke ? "shard_smoke" : "shard_full";

  std::vector<ThreadRun> runs;
  for (unsigned t : threads) runs.push_back(measure(sc, t, reps));
  const ThreadRun& serial = runs.front();
  const double serial_eps =
      static_cast<double>(serial.run.events_executed) / serial.wall_s;

  bool ok = true;
  if (!serial.run.completed) {
    std::cout << "FAIL: the transfer did not complete\n";
    ok = false;
  }

  bool bit_identical = true;
  for (const ThreadRun& r : runs) {
    std::string why;
    if (!identical(serial.run, r.run, &why)) {
      std::cout << "FAIL: " << r.threads
                << "-thread run diverged from serial -- " << why << "\n";
      bit_identical = false;
      ok = false;
    }
  }

  Table t({"threads", "wall s", "events/s", "speedup", "efficiency",
           "epochs", "handoffs"});
  sweep.metric(name, "leaves", static_cast<double>(kLeaves));
  sweep.metric(name, "slots", static_cast<double>(sc.modeled.size()));
  sweep.metric(name, "file_bytes", static_cast<double>(file_bytes));
  sweep.metric(name, "domains",
               static_cast<double>(serial.run.shard_domains));
  sweep.metric(name, "completed", serial.run.completed ? 1.0 : 0.0);
  sweep.metric(name, "bit_identical", bit_identical ? 1.0 : 0.0);
  sweep.metric(name, "events",
               static_cast<double>(serial.run.events_executed));
  sweep.metric(name, "epochs", static_cast<double>(serial.run.shard_epochs));
  sweep.metric(name, "handoffs",
               static_cast<double>(serial.run.shard_handoffs));
  sweep.metric(name, "handoff_bytes",
               static_cast<double>(serial.run.shard_handoff_bytes));
  sweep.metric(name, "compactions",
               static_cast<double>(serial.run.sched_compactions));
  sweep.metric(name, "hardware_threads", static_cast<double>(hw));

  double speedup_2t = 0.0, speedup_4t = 0.0;
  for (const ThreadRun& r : runs) {
    const double eps = static_cast<double>(r.run.events_executed) / r.wall_s;
    const double speedup = r.threads == 1 ? 1.0 : serial.wall_s / r.wall_s;
    const double efficiency = speedup / static_cast<double>(r.threads);
    if (r.threads == 2) speedup_2t = speedup;
    if (r.threads == 4) speedup_4t = speedup;
    const std::string suffix = std::to_string(r.threads) + "t";
    sweep.metric(name, "wall_s_" + suffix, r.wall_s);
    sweep.metric(name, "events_per_sec_" + suffix, eps);
    if (r.threads > 1) {
      sweep.metric(name, "speedup_" + suffix, speedup);
      sweep.metric(name, "efficiency_" + suffix, efficiency);
    }
    t.add_row({std::to_string(r.threads), f2(r.wall_s),
               std::to_string(static_cast<std::uint64_t>(eps)), f2(speedup),
               f2(efficiency), std::to_string(serial.run.shard_epochs),
               std::to_string(serial.run.shard_handoffs)});
  }
  t.print(std::cout);
  std::cout << "\nserial: " << serial.run.events_executed << " events, "
            << serial.run.shard_domains << " domains, "
            << static_cast<std::uint64_t>(serial_eps) << " events/s\n";

  // Scaling floors: only meaningful where the hardware has the cores.
  // The 1-core container this repo develops in timeshares every worker
  // onto one CPU, so speedups there hover near (or below) 1.0 by
  // construction -- identity is the property that must hold anywhere.
  if (!smoke) {
    struct Floor {
      unsigned threads;
      double speedup;
      double floor;
    };
    for (const Floor& f : {Floor{2, speedup_2t, 1.6},
                           Floor{4, speedup_4t, 2.8}}) {
      if (hw < f.threads) {
        std::cout << "skip: " << f.threads << "-thread floor ("
                  << f2(f.floor) << "x) needs >= " << f.threads
                  << " hardware threads, have " << hw << "\n";
        continue;
      }
      if (f.speedup < f.floor) {
        std::cout << "FAIL: " << f.threads << "-thread speedup "
                  << f2(f.speedup) << "x is below the " << f2(f.floor)
                  << "x floor\n";
        ok = false;
      } else {
        std::cout << "ok: " << f.threads << "-thread speedup "
                  << f2(f.speedup) << "x >= " << f2(f.floor) << "x\n";
      }
    }
  }

  std::cout << (ok ? "\nshard scaling passed\n" : "\nshard scaling FAILED\n");
  return ok ? 0 : 1;
}
