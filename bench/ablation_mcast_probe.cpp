// §6 future work (2): "multicasting probes when the number of receivers
// to be probed is greater than some threshold". With many receivers in
// a low-loss network, the sender otherwise unicasts a probe storm at
// every release stall.
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

RunResult run_one(int receivers, std::size_t threshold) {
  Workload wl;
  wl.file_bytes = 4 * kMiB;
  wl.sink_read_rate_bps = kSimAppReadBps;
  Scenario sc = test_case_scenario(1, receivers, 10e6, 256 << 10, wl,
                                   kBenchSeed);
  sc.proto.mcast_probe_threshold = threshold;
  sc.time_limit = sim::seconds(3600);
  return run_transfer(sc);
}

}  // namespace

int main() {
  banner("Ablation: multicast probes (future work #2)",
         "LAN, 4 MB, 256K buffers; probes sent by the sender vs probes\n"
         "processed by receivers (multicast probes fan out in the net)");
  Table t({"receivers", "mode", "probes sent", "probes rcvd", "thr Mbps",
           "complete-info %"});
  for (int n : {10, 50, 100}) {
    for (std::size_t threshold : {std::size_t{0}, std::size_t{5}}) {
      RunResult r = run_one(n, threshold);
      t.add_row({std::to_string(n),
                 threshold == 0 ? "unicast" : "mcast>5",
                 std::to_string(r.sender.probes_sent),
                 std::to_string(r.receivers_total.probes_received),
                 fmt(r.throughput_mbps, 2), fmt(r.complete_info_pct(), 1)});
    }
  }
  t.print(std::cout);
  return 0;
}
