// Figure 16: simulation study on a 100 Mbps network, 10 receivers.
//   (a) throughput for Tests 1-5   (b) rate-reduce requests
// Expected shape: same ordering as Figure 15 (Test 1 > 2 > 3, the mixes
// near Test 3), but with markedly more rate requests than at 10 Mbps:
// the network got 10x faster while the application read rate did not,
// so receive windows run full (§5.2 of the paper).
#include "bench_util.hpp"

using namespace hrmc;
using namespace hrmc::harness;
using namespace hrmc::bench;

namespace {

void panel(Sweep& sweep, bool rate_requests) {
  std::vector<Scenario> cells;
  for (std::size_t buf : buffer_sweep()) {
    for (int tc = 1; tc <= 5; ++tc) {
      Workload wl;
      wl.file_bytes = 10 * kMiB;
      wl.sink_read_rate_bps = kSimAppReadBps;
      Scenario sc = test_case_scenario(tc, 10, 100e6, buf, wl,
                                       kBenchSeed + tc);
      sc.time_limit = sim::seconds(3600);
      cells.push_back(std::move(sc));
    }
  }
  const std::vector<RunResult> results = sweep.run(cells);
  Table t({"buffer", "Test 1 (A)", "Test 2 (B)", "Test 3 (C)",
           "Test 4 (80B/20C)", "Test 5 (20B/80C)"});
  std::size_t i = 0;
  for (std::size_t buf : buffer_sweep()) {
    std::vector<std::string> row{buf_label(buf)};
    for (int tc = 1; tc <= 5; ++tc) {
      const RunResult& r = results[i++];
      if (rate_requests) {
        row.push_back(std::to_string(r.sender.rate_requests_received));
      } else {
        row.push_back(r.completed ? fmt(r.throughput_mbps, 2) : "DNF");
      }
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  banner("Figure 16: H-RMC on a 100 Mbps network (simulated)",
         "10 MB transfer, 10 receivers, Fig-14 mixes; application reads\n"
         "at the same fixed rate as in the 10 Mbps study");
  Sweep sweep("fig16");
  std::cout << "(a) throughput (Mbps)\n";
  panel(sweep, false);
  std::cout << "(b) rate reduce requests (count)\n";
  panel(sweep, true);
  return 0;
}
