#!/usr/bin/env python3
"""Check a JSONL protocol trace against the H-RMC invariants.

Usage:
    trace_dump | check_trace.py [--bound SECONDS]
                                [--no-release] [--no-nak] [--no-rate]
                                [--no-progress] [--mem-budget BYTES]
    check_trace.py trace.jsonl

An independent (stdlib-only) implementation of the same three
invariants src/trace/verify.cpp checks, over the JSONL stream
trace_dump (or trace::write_jsonl) emits:

  1. Release safety: the sender never releases a byte some armed,
     live receiver has not reported holding.
  2. NAK liveness: every NAK range is answered by an overlapping
     retransmission / NAK_ERR (or mooted by the receiver's own
     progress) within --bound seconds of its first emission.
  3. Rate conformance: a token bucket fed at the advertised rate never
     goes negative past the pacing slack, and no new data is sent
     while an urgent stop is in force.
  4. Counter monotonicity: a receiver's reported stream position only
     moves forward between re-anchors (a "resync" after crash-restart
     resets the baseline; link flaps and stall re-JOINs do not), and
     the sender's release head never regresses at all.  Regression on
     either side is silent state drift — exactly the corruption a
     restart or a flap-window race would introduce.
  5. Budget safety (--mem-budget BYTES, DESIGN.md §16): every
     alloc_fail / cache_evict record carries the emitting host's memory
     ledger (live bytes) in its value field; none may exceed the
     per-host budget.  The accountant enforces this by construction, so
     a violation means some consumer bypassed try_charge or forgot an
     uncharge.  Off by default (budget 0).

Running both implementations over one trace in CI cross-checks them;
they were written from the record-semantics table in DESIGN.md, not
from each other.
"""

import argparse
import json
import sys

M = 1 << 32
HALF = 1 << 31
JIFFY_S = 0.01
RECEIVER_HOST_MAX = 900

# kJoined flag bit: the host joined a local repairer (trace.hpp's
# kFlagAggregated) — its feedback is aggregated into subtree AGG_UPDATEs.
FLAG_AGGREGATED = 2


def sdiff(a, b):
    """Signed modular distance a - b (kern::seq_diff)."""
    d = (a - b) % M
    return d - M if d >= HALF else d


def before(a, b):
    return sdiff(a, b) < 0


def before_eq(a, b):
    return sdiff(a, b) <= 0


def smin(a, b):
    return a if before(a, b) else b


def smax(a, b):
    return b if before(a, b) else a


class Checker:
    def __init__(self, bound_ns, check_release, check_nak, check_rate,
                 check_progress=True, mem_budget=0):
        self.bound_ns = bound_ns
        self.check_release = check_release
        self.check_nak = check_nak
        self.check_rate = check_rate
        self.check_progress = check_progress
        self.mem_budget = mem_budget
        self.violations = []
        self.releases = self.naks = self.sends = 0
        self.progress_checks = 0
        self.mem_checks = 0

        self.rcv = {}  # host -> [armed, exempt, high]
        self.addr_to_host = {}
        self.pending = []  # [host, from, to, first_emit]
        self.release_high = None  # sender release head (monotone forever)

        self.primed = False
        self.tokens = 0.0
        self.last_adv = 0.0
        self.last_send_t = 0
        self.stop_until = 0

    def violate(self, r, what):
        self.violations.append(
            "t={} host={} {}: {}".format(r["t"], r["host"], r["kind"], what))

    def state(self, host):
        # [armed, exempt, high, aggregated]; aggregated = joined a local
        # repairer, so release safety is carried by the repairer's
        # AGG_UPDATE subtree minimum, not this host's own reports.
        return self.rcv.setdefault(host, [False, False, 0, False])

    def note_coverage(self, r, reported):
        s = self.state(r["host"])
        if not s[0]:
            return
        if before(s[2], reported):
            s[2] = reported
        elif self.check_progress and before(reported, s[2]):
            # Receiver counters are monotone between re-anchors: only a
            # "resync" (crash-restart) may move the baseline, never a
            # link flap or a stall re-JOIN.
            self.violate(r, "reported position {} regressed behind the "
                         "high-water {}".format(reported, s[2]))
        if self.check_progress:
            self.progress_checks += 1
        self.clear_below(r["host"], reported)

    # --- invariant 2 ---

    def add_pending(self, r):
        frm, to, first = r["seq_begin"], r["seq_end"], r["t"]
        merged = []
        for p in self.pending:
            if p[0] == r["host"] and not (before(to, p[1]) or
                                          before(p[2], frm)):
                frm = smin(frm, p[1])
                to = smax(to, p[2])
                first = min(first, p[3])
            else:
                merged.append(p)
        merged.append([r["host"], frm, to, first])
        self.pending = merged
        self.naks += 1

    def answer(self, r, frm, to):
        keep = []
        for p in self.pending:
            if before_eq(to, p[1]) or before_eq(p[2], frm):
                keep.append(p)
                continue
            if r["t"] - p[3] > self.bound_ns:
                self.violate(r, "NAK from host {} for [{},{}) answered "
                             "{} ns after first emission".format(
                                 p[0], p[1], p[2], r["t"] - p[3]))
            if before(p[1], frm):
                keep.append([p[0], p[1], frm, p[3]])
            if before(to, p[2]):
                keep.append([p[0], to, p[2], p[3]])
        self.pending = keep

    def clear_below(self, host, reported):
        keep = []
        for p in self.pending:
            if p[0] == host and not before_eq(reported, p[1]):
                p[1] = smin(reported, p[2])
                if not before(p[1], p[2]):
                    continue
            keep.append(p)
        self.pending = keep

    def fill(self, host, frm, to):
        out = []
        for p in self.pending:
            if p[0] != host or before_eq(to, p[1]) or before_eq(p[2], frm):
                out.append(p)
                continue
            left = [p[0], p[1], smin(frm, p[2]), p[3]]
            right = [p[0], smax(to, p[1]), p[2], p[3]]
            if before(left[1], left[2]):
                out.append(left)
            if before(right[1], right[2]):
                out.append(right)
        self.pending = out

    def drop_host(self, host):
        self.pending = [p for p in self.pending if p[0] != host]

    # --- invariant 3 ---

    @staticmethod
    def burst_cap(rate):
        return 2.0 * rate * JIFFY_S + 8.0 * 1500.0

    def account_send(self, r):
        self.sends += 1
        adv = float(r["value"])
        nbytes = float(sdiff(r["seq_end"], r["seq_begin"]))
        if not self.primed:
            self.primed = True
            self.tokens = self.burst_cap(adv)
        else:
            dt = (r["t"] - self.last_send_t) / 1e9
            rate = max(self.last_adv, adv)
            self.tokens = min(self.tokens + rate * dt, self.burst_cap(rate))
        self.last_send_t = r["t"]
        self.last_adv = adv
        self.tokens -= nbytes
        if self.tokens < -1e-6:
            self.violate(r, "sent {:.0f} bytes with only {:.0f} byte-tokens "
                         "at advertised rate {:.0f}".format(
                             nbytes, self.tokens + nbytes, adv))
            self.tokens = 0.0
        if r["kind"] == "send" and r["t"] < self.stop_until:
            self.violate(r, "new data sent during urgent stop (until "
                         "{})".format(self.stop_until))

    # --- dispatch ---

    def step(self, r):
        k = r["kind"]
        host = r["host"]
        if k == "joined":
            s = self.state(host)
            s[0], s[1], s[2] = True, False, r["seq_begin"]
            s[3] = bool(r.get("flags", 0) & FLAG_AGGREGATED)
            self.addr_to_host[r["value"]] = host
        elif k == "resync":
            s = self.state(host)
            s[1], s[2] = False, r["seq_begin"]
            if self.check_nak:
                self.drop_host(host)
        elif k == "resync_join":
            self.state(host)[1] = True
        elif k in ("update", "rate_request", "nak_suppress",
                   "nak_peer_suppress"):
            self.note_coverage(r, r["seq_begin"])
        elif k == "agg_update":
            # Aggregated subtree UPDATE: seq_begin is the minimum over
            # the represented leaves, so it is raise-only coverage for
            # the emitter — a lower aggregate than the emitter's own
            # high-water is a laggard child registering, not counter
            # drift, so the monotonicity check does not apply.
            s = self.state(r["host"])
            if s[0] and before(s[2], r["seq_begin"]):
                s[2] = r["seq_begin"]
            self.clear_below(r["host"], r["seq_begin"])
        elif k in ("nak", "nak_forward"):
            # A forwarded child NAK binds the sender exactly like a leaf
            # NAK: the repairer could not serve it locally.
            self.note_coverage(r, r["value"] % M)
            if self.check_nak:
                self.add_pending(r)
        elif k == "ooo_insert":
            if self.check_nak:
                self.fill(host, r["seq_begin"], r["seq_end"])
        elif k == "fec_repair":
            # A parity reconstruction buffers the missing packet like an
            # arriving retransmission: pending NAKs it covers are moot,
            # and the position advance reaches release safety through
            # the receiver's ordinary coverage reports.
            if self.check_nak:
                self.fill(host, r["seq_begin"], r["seq_end"])
        elif k == "fec_decode_fail":
            # Informational: the group falls back to the NAK path.
            pass
        elif k == "down":
            if 1 <= host < RECEIVER_HOST_MAX:
                self.state(host)[1] = True
                if self.check_nak:
                    self.drop_host(host)
        elif k == "up":
            if 1 <= host < RECEIVER_HOST_MAX:
                self.state(host)[1] = False
        elif k == "rejoin":
            # Stalled-data re-JOIN: the receiver keeps its stream
            # position, so neither the coverage baseline nor the
            # pending-NAK set resets — monotonicity holds across it.
            pass
        elif k == "leave":
            # Clean departure: the host stops counting against release
            # safety and its outstanding NAKs are moot.
            self.state(host)[1] = True
            if self.check_nak:
                self.drop_host(host)
        elif k in ("evict", "dead_release"):
            h = self.addr_to_host.get(r["value"])
            if h is not None:
                self.state(h)[1] = True
        elif k == "retransmit":
            if self.check_nak:
                self.answer(r, r["seq_begin"], r["seq_end"])
            if self.check_rate:
                self.account_send(r)
        elif k == "repair_tx":
            # Local repair answers the child's NAK but spends no
            # sender-rate tokens (it never crosses the paced uplink).
            if self.check_nak:
                self.answer(r, r["seq_begin"], r["seq_end"])
        elif k == "nak_err":
            if self.check_nak:
                self.answer(r, r["seq_begin"], r["seq_end"])
        elif k == "send":
            if self.check_rate:
                self.account_send(r)
        elif k == "urgent_stop":
            self.stop_until = max(self.stop_until, r["value"])
        elif k in ("alloc_fail", "cache_evict"):
            # value = emitting host's ledger live bytes, aux = the
            # MemComponent charged/evicted.
            if self.mem_budget > 0:
                self.mem_checks += 1
                if r["value"] > self.mem_budget:
                    self.violate(r, "ledger live {} bytes exceeds the "
                                 "per-host budget {} (component {})".format(
                                     r["value"], self.mem_budget,
                                     r.get("aux", 0)))
        elif k == "release":
            if self.check_progress:
                # The sender never re-anchors: its release head is
                # monotone across every restart, flap, and churn event
                # in the trace — regression is counter drift.
                self.progress_checks += 1
                if (self.release_high is not None and
                        before(r["seq_end"], self.release_high)):
                    self.violate(r, "release head {} regressed behind "
                                 "{}".format(r["seq_end"],
                                             self.release_high))
                if (self.release_high is None or
                        before(self.release_high, r["seq_end"])):
                    self.release_high = r["seq_end"]
            if self.check_release:
                self.releases += 1
                for h, s in self.rcv.items():
                    if s[0] and not s[1] and not s[3] and \
                            before(s[2], r["seq_end"]):
                        self.violate(r, "released through {} but host {} "
                                     "only reported {}".format(
                                         r["seq_end"], h, s[2]))

    def finish(self, end_t):
        if not self.check_nak:
            return
        for p in self.pending:
            if end_t - p[3] > self.bound_ns:
                self.violations.append(
                    "trace end: NAK from host {} for [{},{}) first emitted "
                    "at t={} never answered".format(p[0], p[1], p[2], p[3]))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", nargs="?", help="JSONL trace (default stdin)")
    ap.add_argument("--bound", type=float, default=2.0,
                    help="NAK answer bound in seconds (default 2)")
    ap.add_argument("--no-release", action="store_true")
    ap.add_argument("--no-nak", action="store_true")
    ap.add_argument("--no-rate", action="store_true")
    ap.add_argument("--no-progress", action="store_true")
    ap.add_argument("--mem-budget", type=int, default=0,
                    help="per-host memory budget in bytes for invariant 5"
                         " (default 0 = skip)")
    args = ap.parse_args()

    c = Checker(int(args.bound * 1e9), not args.no_release,
                not args.no_nak, not args.no_rate,
                not args.no_progress, args.mem_budget)
    stream = open(args.trace, encoding="utf-8") if args.trace else sys.stdin
    n = 0
    last_t = 0
    with stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            r = json.loads(line)
            last_t = r["t"]
            c.step(r)
            n += 1
    if n:
        c.finish(last_t)

    print("check_trace: {} records, {} releases / {} naks / {} sends / "
          "{} progress / {} mem checked, {} violations".format(
              n, c.releases, c.naks, c.sends, c.progress_checks,
              c.mem_checks, len(c.violations)))
    for v in c.violations[:32]:
        print("violation: " + v, file=sys.stderr)
    return 1 if c.violations else 0


if __name__ == "__main__":
    sys.exit(main())
