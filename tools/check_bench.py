#!/usr/bin/env python3
"""Gate a BENCH_*.json report against a checked-in baseline.

Usage:
    check_bench.py CURRENT.json BASELINE.json [--max-regress 0.20]
                   [--suite NAME]

The baseline's entries may carry two kinds of gated metrics:

  "metrics":     floors — the current report must reach at least
                 (1 - max_regress) * baseline value (events/sec,
                 completed flags).
  "max_metrics": ceilings — the current report must stay at or below
                 (1 + max_regress) * baseline value (probe counts,
                 feedback packets, per-release scan work: numbers where
                 *growth* is the regression).

One baseline file serves several bench binaries: an entry tagged with a
"suite" field is gated only when --suite names it; untagged entries are
gated only when --suite is absent (the original single-suite behavior).
Metrics in the current report that the baseline does not mention are
ignored, so the baseline only needs to pin the metrics worth gating.
Exits non-zero, listing every violation, if any metric regresses.
Python stdlib only.
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def entry_map(report):
    return {e["name"]: e.get("metrics", {}) for e in report.get("entries", [])}


def numeric(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def fmt(v):
    """Compact numeric rendering: large values as grouped integers,
    small ones with enough digits that a 1.6x speedup floor does not
    print as '2'."""
    if float(v).is_integer() and abs(v) < 1e15:
        return f"{int(v):,}"
    if abs(v) >= 10000:
        return f"{v:,.0f}"
    return f"{v:.4g}"


def rel(delta, base):
    """delta as a percentage of base, guarded against zero bases."""
    if base == 0:
        return "n/a"
    return f"{delta / base:+.1%}"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--max-regress", type=float, default=0.20,
                    help="allowed fractional shortfall vs baseline")
    ap.add_argument("--suite", default=None,
                    help="gate only baseline entries tagged with this "
                         "suite (default: untagged entries)")
    args = ap.parse_args()

    current = entry_map(load(args.current))
    baseline_entries = load(args.baseline).get("entries", [])

    failures = []
    for entry in baseline_entries:
        if entry.get("suite") != args.suite:
            continue
        name = entry["name"]
        floors = entry.get("metrics", {})
        ceilings = entry.get("max_metrics", {})
        if name not in current:
            failures.append(f"{name}: missing from {args.current}")
            continue
        for key, want in floors.items():
            have = current[name].get(key)
            if have is None:
                failures.append(f"{name}.{key}: missing from {args.current}")
                continue
            if not numeric(have):
                # Reports may carry non-numeric extras (time-series
                # lists, labels); only numeric metrics are gateable.
                failures.append(f"{name}.{key}: non-numeric in "
                                f"{args.current}")
                continue
            floor = want * (1.0 - args.max_regress)
            status = "OK" if have >= floor else "FAIL"
            print(f"{status:4} {name}.{key}: {fmt(have)} "
                  f"(baseline {fmt(want)}, floor {fmt(floor)})")
            if have < floor:
                failures.append(
                    f"{name}.{key}: {fmt(have)} is below floor "
                    f"{fmt(floor)} by {(floor - have) / floor:.1%} "
                    f"({rel(have - want, want)} vs baseline {fmt(want)})")
        for key, want in ceilings.items():
            have = current[name].get(key)
            if have is None:
                failures.append(f"{name}.{key}: missing from {args.current}")
                continue
            if not numeric(have):
                failures.append(f"{name}.{key}: non-numeric in "
                                f"{args.current}")
                continue
            ceiling = want * (1.0 + args.max_regress)
            status = "OK" if have <= ceiling else "FAIL"
            print(f"{status:4} {name}.{key}: {fmt(have)} "
                  f"(baseline {fmt(want)}, ceiling {fmt(ceiling)})")
            if have > ceiling:
                failures.append(
                    f"{name}.{key}: {fmt(have)} is over ceiling "
                    f"{fmt(ceiling)} by {(have - ceiling) / ceiling:.1%} "
                    f"({rel(have - want, want)} vs baseline {fmt(want)})")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
