#!/usr/bin/env python3
"""Gate a BENCH_*.json report against a checked-in baseline.

Usage:
    check_bench.py CURRENT.json BASELINE.json [--max-regress 0.20]

For every entry/metric pair present in the baseline, the current report
must reach at least (1 - max_regress) * baseline value. Metrics in the
current report that the baseline does not mention are ignored, so the
baseline only needs to pin the metrics worth gating (events_per_sec).
Exits non-zero, listing every violation, if any metric regresses.
Python stdlib only.
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def entry_map(report):
    return {e["name"]: e.get("metrics", {}) for e in report.get("entries", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--max-regress", type=float, default=0.20,
                    help="allowed fractional shortfall vs baseline")
    args = ap.parse_args()

    current = entry_map(load(args.current))
    baseline = entry_map(load(args.baseline))

    failures = []
    for name, metrics in baseline.items():
        if name not in current:
            failures.append(f"{name}: missing from {args.current}")
            continue
        for key, want in metrics.items():
            have = current[name].get(key)
            if have is None:
                failures.append(f"{name}.{key}: missing from {args.current}")
                continue
            if not isinstance(have, (int, float)) or isinstance(have, bool):
                # Reports may carry non-numeric extras (time-series
                # lists, labels); only numeric metrics are gateable.
                failures.append(f"{name}.{key}: non-numeric in "
                                f"{args.current}")
                continue
            floor = want * (1.0 - args.max_regress)
            status = "OK" if have >= floor else "FAIL"
            print(f"{status:4} {name}.{key}: {have:.0f} "
                  f"(baseline {want:.0f}, floor {floor:.0f})")
            if have < floor:
                failures.append(
                    f"{name}.{key}: {have:.0f} < floor {floor:.0f} "
                    f"({args.max_regress:.0%} under baseline {want:.0f})")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
