// GF(256) Reed–Solomon codec battery (adaptive-FEC extension): field
// arithmetic, the normalized-Cauchy coefficient matrix, and erasure
// decode over every loss pattern within the parity budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "hrmc/fec.hpp"

namespace hrmc::proto::fec {
namespace {

// Deterministic pseudo-random byte (no RNG: tests must be replayable
// from the source alone).
std::uint8_t test_byte(std::size_t shard, std::size_t b) {
  return static_cast<std::uint8_t>((shard * 151 + b * 29 + 7) & 0xff);
}

std::vector<std::vector<std::uint8_t>> make_shards(std::size_t k,
                                                   std::size_t len) {
  std::vector<std::vector<std::uint8_t>> d(k);
  for (std::size_t i = 0; i < k; ++i) {
    d[i].resize(len);
    for (std::size_t b = 0; b < len; ++b) d[i][b] = test_byte(i, b);
  }
  return d;
}

/// Encodes parity rows 0..r-1 over `data` exactly as the sender does:
/// incremental accumulate() with coefficient(j, i).
std::vector<std::vector<std::uint8_t>> encode(
    const std::vector<std::vector<std::uint8_t>>& data, std::size_t r,
    std::size_t len) {
  std::vector<std::vector<std::uint8_t>> par(
      r, std::vector<std::uint8_t>(len, 0));
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      accumulate(par[j].data(), data[i].data(), data[i].size(),
                 coefficient(j, i));
    }
  }
  return par;
}

/// Enumerates every size-e subset of {0..n-1}, invoking fn(subset).
template <typename Fn>
void for_each_subset(std::size_t n, std::size_t e, Fn&& fn) {
  std::vector<std::size_t> idx(e);
  for (std::size_t i = 0; i < e; ++i) idx[i] = i;
  while (true) {
    fn(idx);
    // Advance to the next combination.
    std::size_t i = e;
    while (i > 0 && idx[i - 1] == n - e + i - 1) --i;
    if (i == 0) break;
    ++idx[i - 1];
    for (std::size_t j = i; j < e; ++j) idx[j] = idx[j - 1] + 1;
  }
}

TEST(GfArithmetic, InverseRoundTripsForEveryNonzeroElement) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(ua, gf_inv(ua)), 1) << "a=" << a;
  }
  EXPECT_EQ(gf_inv(0), 0);
  EXPECT_EQ(gf_mul(0, 77), 0);
  EXPECT_EQ(gf_mul(77, 0), 0);
}

TEST(GfArithmetic, MultiplicationMatchesCarrylessReference) {
  // Reference: Russian-peasant multiply with 0x11d reduction.
  const auto ref = [](std::uint8_t a, std::uint8_t b) {
    std::uint32_t r = 0;
    std::uint32_t aa = a;
    for (std::uint32_t bb = b; bb != 0; bb >>= 1) {
      if (bb & 1) r ^= aa;
      aa <<= 1;
      if (aa & 0x100) aa ^= 0x11d;
    }
    return static_cast<std::uint8_t>(r);
  };
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(gf_mul(static_cast<std::uint8_t>(a),
                       static_cast<std::uint8_t>(b)),
                ref(static_cast<std::uint8_t>(a),
                    static_cast<std::uint8_t>(b)))
          << a << "*" << b;
    }
  }
}

TEST(Coefficients, RowZeroIsAllOnesForXorCompatibility) {
  // Parity row 0 must be the plain XOR: an r=1 sender stays
  // bit-compatible with the seed protocol and the hand-built parities
  // in the pre-RS tests.
  for (std::size_t i = 0; i < kMaxGroup; ++i) {
    EXPECT_EQ(coefficient(0, i), 1) << "i=" << i;
  }
}

TEST(Coefficients, AllNonzeroAndRowsPairwiseIndependent) {
  for (std::size_t j = 0; j < kMaxParity; ++j) {
    for (std::size_t i = 0; i < kMaxGroup; ++i) {
      EXPECT_NE(coefficient(j, i), 0) << j << "," << i;
    }
  }
  // Any 2x2 submatrix is invertible (Cauchy superregularity): its
  // determinant never vanishes. Spot-check exhaustively for the first
  // columns every group actually uses.
  for (std::size_t j1 = 0; j1 < kMaxParity; ++j1) {
    for (std::size_t j2 = j1 + 1; j2 < kMaxParity; ++j2) {
      for (std::size_t i1 = 0; i1 < 16; ++i1) {
        for (std::size_t i2 = i1 + 1; i2 < 16; ++i2) {
          const std::uint8_t det =
              gf_mul(coefficient(j1, i1), coefficient(j2, i2)) ^
              gf_mul(coefficient(j1, i2), coefficient(j2, i1));
          EXPECT_NE(det, 0) << j1 << j2 << " " << i1 << "," << i2;
        }
      }
    }
  }
}

TEST(RsDecode, EveryLossPatternWithinBudgetDecodes) {
  // For k in {4, 8, 16} and r in {1..4}: every erasure pattern of size
  // e <= r must decode exactly, using the first e parity rows.
  constexpr std::size_t kLen = 64;
  for (const std::size_t k : {std::size_t{4}, std::size_t{8},
                              std::size_t{16}}) {
    const auto data = make_shards(k, kLen);
    for (std::size_t r = 1; r <= 4; ++r) {
      const auto par = encode(data, r, kLen);
      for (std::size_t e = 1; e <= r; ++e) {
        for_each_subset(k, e, [&](const std::vector<std::size_t>& lost) {
          std::vector<const std::uint8_t*> shards(k, nullptr);
          for (std::size_t i = 0; i < k; ++i) shards[i] = data[i].data();
          for (const std::size_t i : lost) shards[i] = nullptr;
          std::vector<ParityShard> avail;
          for (std::size_t j = 0; j < e; ++j) {
            avail.push_back(ParityShard{j, par[j].data()});
          }
          std::vector<std::vector<std::uint8_t>> out;
          ASSERT_TRUE(decode(k, kLen, shards, avail, out))
              << "k=" << k << " r=" << r << " e=" << e;
          ASSERT_EQ(out.size(), e);
          for (std::size_t a = 0; a < e; ++a) {
            EXPECT_EQ(out[a], data[lost[a]])
                << "k=" << k << " shard " << lost[a];
          }
        });
      }
    }
  }
}

TEST(RsDecode, AnySurvivingParitySubsetDecodes) {
  // The Cauchy construction promises decode from ANY e distinct rows,
  // not just rows 0..e-1 — the rows that survive loss are arbitrary.
  constexpr std::size_t kLen = 48;
  constexpr std::size_t k = 8;
  constexpr std::size_t r = 4;
  const auto data = make_shards(k, kLen);
  const auto par = encode(data, r, kLen);
  const std::vector<std::size_t> lost = {2, 5};
  for_each_subset(r, lost.size(), [&](const std::vector<std::size_t>& rows) {
    std::vector<const std::uint8_t*> shards(k, nullptr);
    for (std::size_t i = 0; i < k; ++i) shards[i] = data[i].data();
    for (const std::size_t i : lost) shards[i] = nullptr;
    std::vector<ParityShard> avail;
    for (const std::size_t j : rows) {
      avail.push_back(ParityShard{j, par[j].data()});
    }
    std::vector<std::vector<std::uint8_t>> out;
    ASSERT_TRUE(decode(k, kLen, shards, avail, out));
    EXPECT_EQ(out[0], data[2]);
    EXPECT_EQ(out[1], data[5]);
  });
}

TEST(RsDecode, LossBeyondBudgetIsDetectedNotMisdecoded) {
  constexpr std::size_t kLen = 32;
  for (std::size_t r = 1; r <= 3; ++r) {
    constexpr std::size_t k = 8;
    const auto data = make_shards(k, kLen);
    const auto par = encode(data, r, kLen);
    std::vector<const std::uint8_t*> shards(k, nullptr);
    for (std::size_t i = 0; i < k; ++i) shards[i] = data[i].data();
    for (std::size_t i = 0; i <= r; ++i) shards[i] = nullptr;  // r+1 gone
    std::vector<ParityShard> avail;
    for (std::size_t j = 0; j < r; ++j) {
      avail.push_back(ParityShard{j, par[j].data()});
    }
    std::vector<std::vector<std::uint8_t>> out;
    EXPECT_FALSE(decode(k, kLen, shards, avail, out)) << "r=" << r;
  }
}

TEST(RsDecode, DuplicateParityRowsAreRejected) {
  constexpr std::size_t kLen = 16;
  constexpr std::size_t k = 4;
  const auto data = make_shards(k, kLen);
  const auto par = encode(data, 2, kLen);
  std::vector<const std::uint8_t*> shards(k, nullptr);
  shards[2] = data[2].data();
  shards[3] = data[3].data();
  const std::vector<ParityShard> avail = {ParityShard{0, par[0].data()},
                                          ParityShard{0, par[0].data()}};
  std::vector<std::vector<std::uint8_t>> out;
  EXPECT_FALSE(decode(k, kLen, shards, avail, out));
}

TEST(RsDecode, TruncatedGroupWithZeroPaddedTailRoundTrips) {
  // A group cut short at a sub-MSS packet: the tail shard is partial
  // and both encoder and decoder treat it as zero-padded to shard_len.
  constexpr std::size_t kLen = 40;
  constexpr std::size_t kTail = 13;
  constexpr std::size_t k = 5;
  auto data = make_shards(k, kLen);
  std::memset(data[k - 1].data() + kTail, 0, kLen - kTail);
  for (std::size_t r = 1; r <= 3; ++r) {
    const auto par = encode(data, r, kLen);
    // Lose the tail shard plus (r-1) others.
    std::vector<const std::uint8_t*> shards(k, nullptr);
    for (std::size_t i = 0; i < k; ++i) shards[i] = data[i].data();
    shards[k - 1] = nullptr;
    for (std::size_t i = 0; i + 1 < r; ++i) shards[i] = nullptr;
    std::vector<ParityShard> avail;
    for (std::size_t j = 0; j < r; ++j) {
      avail.push_back(ParityShard{j, par[j].data()});
    }
    std::vector<std::vector<std::uint8_t>> out;
    ASSERT_TRUE(decode(k, kLen, shards, avail, out)) << "r=" << r;
    EXPECT_EQ(out.back(), data[k - 1]);
  }
}

TEST(RsDecode, EmptyErasureSetIsTriviallyTrue) {
  constexpr std::size_t kLen = 8;
  const auto data = make_shards(2, kLen);
  const std::vector<const std::uint8_t*> shards = {data[0].data(),
                                                   data[1].data()};
  std::vector<std::vector<std::uint8_t>> out;
  EXPECT_TRUE(decode(2, kLen, shards, {}, out));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace hrmc::proto::fec
