#include "hrmc/rtt.hpp"

#include <gtest/gtest.h>

namespace hrmc::proto {
namespace {

using sim::microseconds;
using sim::milliseconds;

TEST(RttEstimator, StartsAtInitialValue) {
  RttEstimator e(milliseconds(10), microseconds(200));
  EXPECT_EQ(e.srtt(), milliseconds(10));
  EXPECT_FALSE(e.seeded());
}

TEST(RttEstimator, FirstSampleReplacesInitial) {
  RttEstimator e(milliseconds(10), microseconds(200));
  e.sample(milliseconds(50));
  EXPECT_EQ(e.srtt(), milliseconds(50));
  EXPECT_EQ(e.rttvar(), milliseconds(25));
  EXPECT_TRUE(e.seeded());
}

TEST(RttEstimator, EwmaConvergesTowardSamples) {
  RttEstimator e(milliseconds(10), microseconds(200));
  e.sample(milliseconds(100));
  for (int i = 0; i < 60; ++i) e.sample(milliseconds(10));
  EXPECT_LT(e.srtt(), milliseconds(12));
  EXPECT_GT(e.srtt(), milliseconds(9));
}

TEST(RttEstimator, KarnRuleDiscardsRetransmitSamples) {
  RttEstimator e(milliseconds(10), microseconds(200));
  e.sample(milliseconds(20));
  const auto before = e.srtt();
  e.sample(milliseconds(500), /*from_retransmit=*/true);
  EXPECT_EQ(e.srtt(), before);
}

TEST(RttEstimator, MinClampEnforced) {
  RttEstimator e(milliseconds(10), microseconds(200));
  for (int i = 0; i < 50; ++i) e.sample(0);
  EXPECT_GE(e.srtt(), microseconds(200));
}

TEST(RttEstimator, RtoIncludesVariance) {
  RttEstimator e(milliseconds(10), microseconds(200));
  e.sample(milliseconds(10));
  // Oscillating samples build variance.
  for (int i = 0; i < 20; ++i) {
    e.sample(i % 2 == 0 ? milliseconds(5) : milliseconds(15));
  }
  EXPECT_GT(e.rto(), e.srtt());
  EXPECT_EQ(e.rto(), e.srtt() + 4 * e.rttvar());
}

TEST(RttEstimator, TracksIncreasesQuickly) {
  RttEstimator e(milliseconds(10), microseconds(200));
  e.sample(milliseconds(2));
  for (int i = 0; i < 30; ++i) e.sample(milliseconds(100));
  EXPECT_GT(e.srtt(), milliseconds(90));
}

}  // namespace
}  // namespace hrmc::proto
