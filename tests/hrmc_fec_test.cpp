// Forward-error-correction extension (§6 future work (4)): GF(256)
// Reed–Solomon parity every k packets; a receiver missing up to r
// packets of a group rebuilds them locally without a retransmission
// round trip. Parity row 0 is the plain XOR of the seed protocol.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "app/pattern.hpp"
#include "harness/scenario.hpp"
#include "hrmc/fec.hpp"
#include "hrmc/receiver.hpp"
#include "hrmc/sender.hpp"
#include "net/topology.hpp"

namespace hrmc::proto {
namespace {

constexpr net::Addr kGroup = net::make_addr(224, 7, 7, 7);
constexpr net::Port kPort = 7500;
constexpr std::size_t kMss = 1000;  // small MSS keeps test math readable

struct SenderTap final : net::Transport {
  void rx(kern::SkBuffPtr skb) override {
    auto h = read_header(*skb);
    if (h) headers.push_back(*h);
  }
  std::vector<Header> headers;
  [[nodiscard]] std::size_t count(PacketType t) const {
    std::size_t n = 0;
    for (const auto& h : headers) n += h.type == t ? 1 : 0;
    return n;
  }
};

class FecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::TopologyConfig tcfg;
    tcfg.seed = 31;
    tcfg.groups = {net::group_a(1)};
    tcfg.groups[0].loss_rate = 0.0;
    topo_ = std::make_unique<net::Topology>(sched_, tcfg);
    topo_->sender().register_transport(kIpProtoHrmc, &tap_);

    cfg_.mss = kMss;
    if (cfg_.fec_group == 0) cfg_.fec_group = 4;
    rcv_ = std::make_unique<HrmcReceiver>(topo_->receiver(0), cfg_,
                                          net::Endpoint{kGroup, kPort},
                                          topo_->sender().addr());
    rcv_->open();
    sched_.run_until(sim::milliseconds(50));
  }

  /// Sends one DATA packet of `len` pattern bytes at stream offset `off`.
  void send_data(std::uint64_t off, std::size_t len = kMss,
                 bool fin = false) {
    auto skb = kern::SkBuff::alloc(len, Header::kSize + 44);
    app::pattern_fill({skb->put(len), len}, off);
    Header h;
    h.sport = kPort;
    h.dport = kPort;
    h.seq = cfg_.initial_seq + static_cast<kern::Seq>(off);
    h.length = static_cast<std::uint32_t>(len);
    h.tries = 1;
    h.type = PacketType::kData;
    h.fin = fin;
    write_header(*skb, h);
    skb->daddr = kGroup;
    skb->protocol = kIpProtoHrmc;
    topo_->sender().send(std::move(skb));
  }

  /// Sends RS parity row `row` over the group of `span` pattern bytes
  /// starting at stream offset `off0`, encoded exactly as the sender
  /// does (tail shard zero-padded). Row 0 is the plain XOR.
  void send_fec_row(std::uint64_t off0, std::size_t span, std::size_t row) {
    const std::size_t plen = std::min(span, kMss);
    auto skb = kern::SkBuff::alloc(plen, Header::kSize + 44);
    std::uint8_t* p = skb->put(plen);
    std::memset(p, 0, plen);
    const std::size_t k = (span + plen - 1) / plen;
    for (std::size_t g = 0; g < k; ++g) {
      const std::size_t slen = g + 1 < k ? plen : span - (k - 1) * plen;
      std::vector<std::uint8_t> shard(plen, 0);
      for (std::size_t i = 0; i < slen; ++i) {
        shard[i] = app::pattern_byte(off0 + g * plen + i);
      }
      fec::accumulate(p, shard.data(), plen, fec::coefficient(row, g));
    }
    Header h;
    h.sport = kPort;
    h.dport = kPort;
    h.seq = cfg_.initial_seq + static_cast<kern::Seq>(off0);
    h.rate = static_cast<std::uint32_t>(span);
    h.length = static_cast<std::uint32_t>(plen);
    h.tries = static_cast<std::uint8_t>(row + 1);
    h.type = PacketType::kFec;
    write_header(*skb, h);
    skb->daddr = kGroup;
    skb->protocol = kIpProtoHrmc;
    topo_->sender().send(std::move(skb));
  }

  /// Sends the parity packet for the 4 packets starting at offset `off0`.
  void send_fec(std::uint64_t off0) { send_fec_row(off0, 4 * kMss, 0); }

  /// Sends a KEEPALIVE naming stream position `upto` (FIN when set).
  void send_keepalive(std::uint64_t upto, bool fin) {
    auto skb = kern::SkBuff::alloc(0, Header::kSize + 44);
    Header h;
    h.sport = kPort;
    h.dport = kPort;
    h.seq = cfg_.initial_seq + static_cast<kern::Seq>(upto);
    h.tries = 1;
    h.type = PacketType::kKeepalive;
    h.fin = fin;
    write_header(*skb, h);
    skb->daddr = kGroup;
    skb->protocol = kIpProtoHrmc;
    topo_->sender().send(std::move(skb));
  }

  void run_for(sim::SimTime dt) { sched_.run_until(sched_.now() + dt); }

  std::uint64_t drain_verify() {
    std::uint8_t buf[8192];
    std::uint64_t off = 0;
    std::size_t n;
    while ((n = rcv_->recv(buf)) > 0) {
      EXPECT_EQ(app::pattern_verify({buf, n}, off), n);
      off += n;
    }
    return off;
  }

  sim::Scheduler sched_;
  std::unique_ptr<net::Topology> topo_;
  SenderTap tap_;
  Config cfg_;
  std::unique_ptr<HrmcReceiver> rcv_;
};

TEST_F(FecTest, ReconstructsSingleMissingPacket) {
  // Packets 0,1,3 arrive; 2 is lost; parity recovers it — the stream is
  // complete with zero retransmissions.
  send_data(0 * kMss);
  send_data(1 * kMss);
  send_data(3 * kMss);
  send_fec(0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 1u);
  EXPECT_EQ(rcv_->available(), 4 * kMss);
  EXPECT_EQ(drain_verify(), 4 * kMss);
}

TEST_F(FecTest, ReconstructsInOrderHeadLoss) {
  // The FIRST packet of the group is the lost one.
  send_data(1 * kMss);
  send_data(2 * kMss);
  send_data(3 * kMss);
  send_fec(0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 1u);
  EXPECT_EQ(drain_verify(), 4 * kMss);
}

TEST_F(FecTest, TwoLossesAreBeyondParity) {
  send_data(0 * kMss);
  send_data(3 * kMss);
  send_fec(0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);
  EXPECT_EQ(rcv_->available(), kMss);  // only packet 0 in order
}

TEST_F(FecTest, CompleteGroupIgnoresParity) {
  for (int g = 0; g < 4; ++g) send_data(g * kMss);
  send_fec(0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);
  EXPECT_EQ(rcv_->stats().fec_packets_received, 1u);
  EXPECT_EQ(drain_verify(), 4 * kMss);
}

TEST_F(FecTest, RecoveryAfterConsumptionUsesCache) {
  // Packets 0 and 1 arrive and are consumed by the app before the
  // parity shows up; loss of packet 2 is still recoverable because the
  // payload cache retains consumed packets.
  send_data(0 * kMss);
  send_data(1 * kMss);
  run_for(sim::milliseconds(20));
  EXPECT_EQ(drain_verify(), 2 * kMss);  // app consumed them
  send_data(3 * kMss);
  send_fec(0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 1u);
  std::uint8_t buf[8192];
  std::uint64_t off = 2 * kMss;
  std::size_t n;
  while ((n = rcv_->recv(buf)) > 0) {
    EXPECT_EQ(app::pattern_verify({buf, n}, off), n);
    off += n;
  }
  EXPECT_EQ(off, 4 * kMss);
}

TEST_F(FecTest, MalformedParityIgnored) {
  send_data(0 * kMss);
  // Span not a multiple of length: must be rejected quietly.
  auto skb = kern::SkBuff::alloc(kMss, Header::kSize + 44);
  skb->put(kMss);
  Header h;
  h.sport = kPort;
  h.dport = kPort;
  h.seq = Config::kInitialSeq;
  h.rate = 4 * kMss + 17;
  h.length = kMss;
  h.tries = 1;
  h.type = PacketType::kFec;
  write_header(*skb, h);
  skb->daddr = kGroup;
  skb->protocol = kIpProtoHrmc;
  topo_->sender().send(std::move(skb));
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);
  EXPECT_EQ(rcv_->available(), kMss);
}

TEST_F(FecTest, ResyncDiscardsGroupsStraddlingTheAnchor) {
  // Crash-restart regression: the pre-crash FEC cache held a partial
  // group, and after the URG resync re-anchored the stream a parity
  // packet spanning the anchor could "recover" packets whose true
  // content died with the crash. The cache must be wiped at resync and
  // any group straddling the anchor discarded, while fully post-anchor
  // groups keep working.
  send_data(0 * kMss);
  send_data(1 * kMss);
  send_data(8 * kMss);  // out-of-order: seeds the [8K,12K) FEC group
  run_for(sim::milliseconds(20));
  EXPECT_EQ(drain_verify(), 2 * kMss);

  rcv_->crash();
  run_for(sim::milliseconds(10));
  rcv_->restart();
  run_for(sim::milliseconds(10));
  EXPECT_GE(tap_.count(PacketType::kJoin), 1u);

  // The sender's resync response anchors the stream at offset 10*kMss.
  const std::uint64_t anchor = 10 * kMss;
  auto skb = kern::SkBuff::alloc(0, Header::kSize + 44);
  Header h;
  h.sport = kPort;
  h.dport = kPort;
  h.seq = Config::kInitialSeq + static_cast<kern::Seq>(anchor);
  h.tries = 1;
  h.type = PacketType::kJoinResponse;
  write_header(*skb, h);
  skb->daddr = topo_->receiver(0).addr();
  skb->protocol = kIpProtoHrmc;
  topo_->sender().send(std::move(skb));
  run_for(sim::milliseconds(10));

  // Parity for [8K,12K) straddles the anchor: its pre-anchor packets
  // are gone for good, so the group must be dropped, not repaired.
  send_fec(8 * kMss);
  run_for(sim::milliseconds(20));
  EXPECT_EQ(rcv_->stats().fec_stale_groups, 1u);
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);

  // A fully post-anchor group still recovers a single loss.
  send_data(12 * kMss);
  send_data(13 * kMss);
  send_data(15 * kMss);
  send_fec(12 * kMss);
  run_for(sim::milliseconds(20));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 1u);

  // Fill the head and verify the whole post-anchor stream pattern.
  send_data(10 * kMss);
  send_data(11 * kMss);
  run_for(sim::milliseconds(20));
  std::uint8_t buf[8192];
  std::uint64_t off = anchor;
  std::size_t n;
  while ((n = rcv_->recv(buf)) > 0) {
    EXPECT_EQ(app::pattern_verify({buf, n}, off), n);
    off += n;
  }
  EXPECT_EQ(off, 16 * kMss);
}

TEST_F(FecTest, TruncatedGroupTailLossRecoveredWithoutNak) {
  // End-of-stream regression (the seed XOR path discarded the parity
  // accumulator at group interruption): a transfer of 2 full packets
  // plus a short 500-byte tail loses the FINAL packet; the truncated
  // group's parity (span 2*kMss + 500) must rebuild it with zero NAKs.
  const std::size_t tail = 500;
  send_data(0 * kMss);
  send_data(1 * kMss);
  // The 500-byte FIN packet at offset 2*kMss is lost.
  send_fec_row(0, 2 * kMss + tail, 0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 1u);
  EXPECT_EQ(rcv_->available(), 2 * kMss + tail);
  // FIN arrives via the keepalive the sender emits while draining.
  send_keepalive(2 * kMss + tail, /*fin=*/true);
  run_for(sim::milliseconds(200));
  EXPECT_TRUE(rcv_->complete());
  EXPECT_EQ(rcv_->stats().naks_sent, 0u);
  EXPECT_EQ(drain_verify(), 2 * kMss + tail);
}

TEST_F(FecTest, TwoLossesRecoveredWithTwoParityRows) {
  // r = 2: shards 1 and 2 of a 4-packet group are lost; rows 0 and 1
  // decode both (the seed protocol could never recover more than one).
  send_data(0 * kMss);
  send_data(3 * kMss);
  send_fec_row(0, 4 * kMss, 0);
  send_fec_row(0, 4 * kMss, 1);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 2u);
  EXPECT_EQ(rcv_->available(), 4 * kMss);
  EXPECT_EQ(drain_verify(), 4 * kMss);
}

TEST_F(FecTest, ThreeLossesRecoveredWithThreeParityRows) {
  send_data(2 * kMss);
  send_fec_row(0, 4 * kMss, 0);
  send_fec_row(0, 4 * kMss, 1);
  send_fec_row(0, 4 * kMss, 2);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 3u);
  EXPECT_EQ(drain_verify(), 4 * kMss);
}

TEST_F(FecTest, LossesBeyondParityBudgetFallBackToNak) {
  // Two losses, one parity row: decode is impossible — the receiver
  // notes the failure once and selective-repeat recovers on the normal
  // NAK clock.
  send_data(0 * kMss);
  send_data(3 * kMss);
  send_fec_row(0, 4 * kMss, 0);
  run_for(sim::milliseconds(400));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);
  EXPECT_EQ(rcv_->stats().fec_decode_failures, 1u);
  EXPECT_GE(rcv_->stats().naks_sent, 1u);
}

TEST_F(FecTest, AnchorStraddleDiscardsEveryParityRow) {
  // Multi-parity variant of the resync regression: BOTH rows of a group
  // straddling the anchor must be discarded, not just the first.
  rcv_->crash();
  run_for(sim::milliseconds(10));
  rcv_->restart();
  run_for(sim::milliseconds(10));
  const std::uint64_t anchor = 2 * kMss;
  auto skb = kern::SkBuff::alloc(0, Header::kSize + 44);
  Header h;
  h.sport = kPort;
  h.dport = kPort;
  h.seq = cfg_.initial_seq + static_cast<kern::Seq>(anchor);
  h.tries = 1;
  h.type = PacketType::kJoinResponse;
  write_header(*skb, h);
  skb->daddr = topo_->receiver(0).addr();
  skb->protocol = kIpProtoHrmc;
  topo_->sender().send(std::move(skb));
  run_for(sim::milliseconds(10));

  // Parity first (before post-anchor data can deliver the group): the
  // [0, 4K) group straddles the anchor at 2K, so BOTH rows are stale.
  send_fec_row(0, 4 * kMss, 0);
  send_fec_row(0, 4 * kMss, 1);
  run_for(sim::milliseconds(10));
  EXPECT_EQ(rcv_->stats().fec_stale_groups, 2u);
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);
  // Post-anchor data still delivers via the normal path.
  send_data(2 * kMss);
  send_data(3 * kMss);
  run_for(sim::milliseconds(10));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);
}

class FecSmallCacheTest : public FecTest {
 protected:
  void SetUp() override {
    cfg_.fec_cache_groups = 1;  // payload cache: 1 group = 4 entries
    FecTest::SetUp();
  }
};

TEST_F(FecSmallCacheTest, EvictedSiblingMidGroupFailsDecode) {
  // Shard 1 of group 0 is lost; its siblings arrive but a full second
  // group then evicts their payloads from the bounded cache. The late
  // parity finds the stream "holding" the siblings while their bytes
  // are gone: decode must fail cleanly (stat + no splice), and ARQ
  // remains responsible for the hole.
  send_data(0 * kMss);
  send_data(2 * kMss);
  send_data(3 * kMss);
  for (int g = 4; g < 8; ++g) send_data(g * kMss);  // evicts group 0
  send_fec_row(0, 4 * kMss, 0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);
  EXPECT_EQ(rcv_->stats().fec_decode_failures, 1u);
  EXPECT_EQ(rcv_->available(), kMss);  // only shard 0 in order
}

class FecWrapTest : public FecTest {
 protected:
  void SetUp() override {
    // The 4-packet group starts 2 packets before the 2^32 wrap.
    cfg_.initial_seq = static_cast<kern::Seq>(0) - 2 * kMss;
    FecTest::SetUp();
  }
};

TEST_F(FecWrapTest, GroupStraddlingSequenceWrapRecovers) {
  // Shard 2 (the first shard past the wrap point) is lost and rebuilt:
  // all group arithmetic is modular, none of it may compare raw seqs.
  send_data(0 * kMss);
  send_data(1 * kMss);
  send_data(3 * kMss);
  send_fec_row(0, 4 * kMss, 0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 1u);
  EXPECT_EQ(rcv_->available(), 4 * kMss);
  EXPECT_EQ(drain_verify(), 4 * kMss);
}

TEST_F(FecWrapTest, TwoRowWrapGroupRecoversTwoLosses) {
  send_data(1 * kMss);
  send_data(2 * kMss);
  send_fec_row(0, 4 * kMss, 0);
  send_fec_row(0, 4 * kMss, 1);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 2u);
  EXPECT_EQ(drain_verify(), 4 * kMss);
}

TEST(FecEndToEnd, SenderEmitsParityEveryKPackets) {
  harness::Workload wl;
  wl.file_bytes = 292 * 1024;  // 1460 * 8 * 25 = 200 full-MSS packets
  harness::Scenario sc = harness::lan_scenario(1, 10e6, 256 << 10, wl, 91);
  sc.topo.groups[0].loss_rate = 0.0;
  sc.proto.fec_group = 8;
  harness::RunResult r = harness::run_transfer(sc);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  // 292K / 1460 = 204.8 packets -> 25 full groups of 8 plus a tail
  // flush. Sub-MSS packets (stream tail, app-pacing gaps) now close
  // their group early with a truncated-span parity instead of
  // discarding the accumulator, so every byte is parity-covered and a
  // couple of extra flushes over the 26 floor are expected.
  EXPECT_GE(r.sender.fec_packets_sent, 26u);
  EXPECT_LE(r.sender.fec_packets_sent, 29u);
}

TEST(FecEndToEnd, FecCutsRetransmissionsUnderLoss) {
  harness::Workload wl;
  wl.file_bytes = 2 * 1024 * 1024;

  auto run_with = [&](std::size_t group) {
    harness::Scenario sc =
        harness::lan_scenario(2, 10e6, 256 << 10, wl, 92);
    sc.topo.groups[0].loss_rate = 0.02;
    sc.topo.correlated_share = 0.0;  // independent (wireless-like) loss
    sc.proto.fec_group = group;
    sc.time_limit = sim::seconds(1200);
    return harness::run_transfer(sc);
  };

  harness::RunResult off = run_with(0);
  harness::RunResult on = run_with(8);
  ASSERT_TRUE(off.completed);
  ASSERT_TRUE(on.completed);
  EXPECT_TRUE(on.verify_ok);
  EXPECT_GT(on.receivers_total.fec_recoveries, 0u);
  EXPECT_LT(on.sender.retransmissions, off.sender.retransmissions)
      << "FEC should absorb most single losses before they cost a NAK";
  EXPECT_LT(on.receivers_total.naks_sent, off.receivers_total.naks_sent);
}

TEST(FecEndToEnd, TailFlushEmitsParityForPartialGroup) {
  // Regression: the seed sender discarded the parity accumulator when a
  // sub-MSS packet or the stream end interrupted a group, leaving every
  // transfer tail unprotected. 10 full packets + one 700-byte FIN
  // packet with fec_group=8 must emit TWO parity packets: the full
  // group and the truncated [8..10.5) tail group flushed at FIN.
  harness::Workload wl;
  wl.file_bytes = 10 * 1460 + 700;
  harness::Scenario sc = harness::lan_scenario(1, 10e6, 256 << 10, wl, 93);
  sc.topo.groups[0].loss_rate = 0.0;
  sc.proto.fec_group = 8;
  harness::RunResult r = harness::run_transfer(sc);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_EQ(r.sender.fec_packets_sent, 2u);
  // Parity payload is min(mss, span): 1460 for both groups (the
  // truncated group still spans more than one MSS).
  EXPECT_EQ(r.sender.fec_parity_bytes, 2u * 1460u);
}

TEST(FecEndToEnd, AdaptiveRateRespondsToLossAndStaysBounded) {
  harness::Workload wl;
  wl.file_bytes = 2 * 1024 * 1024;

  auto run_with = [&](double loss) {
    harness::Scenario sc = harness::lan_scenario(2, 10e6, 256 << 10, wl, 94);
    sc.topo.groups[0].loss_rate = loss;
    sc.topo.correlated_share = 0.0;
    sc.proto.fec_group = 8;
    sc.proto.fec_parity_min = 1;
    sc.proto.fec_parity_max = 4;
    sc.proto.fec_adapt_interval = sim::milliseconds(100);
    sc.time_limit = sim::seconds(1200);
    return harness::run_transfer(sc);
  };

  harness::RunResult clean = run_with(0.0);
  ASSERT_TRUE(clean.completed);
  EXPECT_EQ(clean.sender.fec_rate_increases, 0u)
      << "no loss, no reason to spend parity bandwidth";
  EXPECT_EQ(clean.sender.fec_parity_rate, 1u);

  harness::RunResult lossy = run_with(0.05);
  ASSERT_TRUE(lossy.completed);
  EXPECT_TRUE(lossy.verify_ok);
  EXPECT_GE(lossy.sender.fec_rate_increases, 1u)
      << "5% loss must push the parity rate above the floor";
  EXPECT_GE(lossy.sender.fec_parity_rate, 1u);
  EXPECT_LE(lossy.sender.fec_parity_rate, 4u) << "clamped at fec_parity_max";
  EXPECT_GT(lossy.receivers_total.fec_recoveries, 0u);
}

TEST(FecEndToEnd, ModeledPopulationMirrorsFullReceiverFecBehavior) {
  // Modeled-vs-full differential (the modeled path used to count kFec
  // packets and then model pure ARQ): under the same loss, turning FEC
  // on must cut upstream NAKs for BOTH the full receiver and the
  // modeled population, and the modeled population must report local
  // parity repairs.
  harness::Workload wl;
  wl.file_bytes = 1 * 1024 * 1024;

  auto run_with = [&](std::size_t group, bool modeled) {
    harness::Scenario sc = harness::lan_scenario(2, 10e6, 256 << 10, wl, 95);
    sc.topo.groups[0].loss_rate = 0.02;
    sc.topo.correlated_share = 0.0;
    sc.proto.fec_group = group;
    sc.proto.fec_parity_min = 2;  // fixed r=2 (no adaptation): like for like
    sc.proto.fec_parity_max = 2;
    sc.time_limit = sim::seconds(1200);
    if (modeled) {
      sc.modeled = {harness::ModeledGroup{1, 200, 0.01}};
    }
    return harness::run_transfer(sc);
  };

  harness::RunResult full_off = run_with(0, false);
  harness::RunResult full_on = run_with(8, false);
  harness::RunResult model_off = run_with(0, true);
  harness::RunResult model_on = run_with(8, true);
  ASSERT_TRUE(full_off.completed);
  ASSERT_TRUE(full_on.completed);
  ASSERT_TRUE(model_off.completed);
  ASSERT_TRUE(model_on.completed);
  EXPECT_GT(full_on.receivers_total.fec_recoveries, 0u);
  EXPECT_GT(model_on.receivers_total.fec_recoveries, 0u)
      << "the population must model parity repair, not just count kFec";
  EXPECT_LT(full_on.receivers_total.naks_sent,
            full_off.receivers_total.naks_sent);
  EXPECT_LT(model_on.receivers_total.naks_sent,
            model_off.receivers_total.naks_sent)
      << "modeled holes must NAK only when losses exceed the parity budget";
}

}  // namespace
}  // namespace hrmc::proto
