// Forward-error-correction extension (§6 future work (4)): XOR parity
// every k packets; a receiver missing exactly one packet of a group
// rebuilds it locally without a retransmission round trip.
#include <gtest/gtest.h>

#include <memory>

#include "app/pattern.hpp"
#include "harness/scenario.hpp"
#include "hrmc/receiver.hpp"
#include "hrmc/sender.hpp"
#include "net/topology.hpp"

namespace hrmc::proto {
namespace {

constexpr net::Addr kGroup = net::make_addr(224, 7, 7, 7);
constexpr net::Port kPort = 7500;
constexpr std::size_t kMss = 1000;  // small MSS keeps test math readable

struct SenderTap final : net::Transport {
  void rx(kern::SkBuffPtr skb) override {
    auto h = read_header(*skb);
    if (h) headers.push_back(*h);
  }
  std::vector<Header> headers;
  [[nodiscard]] std::size_t count(PacketType t) const {
    std::size_t n = 0;
    for (const auto& h : headers) n += h.type == t ? 1 : 0;
    return n;
  }
};

class FecTest : public ::testing::Test {
 protected:
  FecTest() {
    net::TopologyConfig tcfg;
    tcfg.seed = 31;
    tcfg.groups = {net::group_a(1)};
    tcfg.groups[0].loss_rate = 0.0;
    topo_ = std::make_unique<net::Topology>(sched_, tcfg);
    topo_->sender().register_transport(kIpProtoHrmc, &tap_);

    cfg_.mss = kMss;
    cfg_.fec_group = 4;
    rcv_ = std::make_unique<HrmcReceiver>(topo_->receiver(0), cfg_,
                                          net::Endpoint{kGroup, kPort},
                                          topo_->sender().addr());
    rcv_->open();
    sched_.run_until(sim::milliseconds(50));
  }

  /// Sends one DATA packet of kMss pattern bytes at stream offset `off`.
  void send_data(std::uint64_t off) {
    auto skb = kern::SkBuff::alloc(kMss, Header::kSize + 44);
    app::pattern_fill({skb->put(kMss), kMss}, off);
    Header h;
    h.sport = kPort;
    h.dport = kPort;
    h.seq = Config::kInitialSeq + static_cast<kern::Seq>(off);
    h.length = kMss;
    h.tries = 1;
    h.type = PacketType::kData;
    write_header(*skb, h);
    skb->daddr = kGroup;
    skb->protocol = kIpProtoHrmc;
    topo_->sender().send(std::move(skb));
  }

  /// Sends the parity packet for the 4 packets starting at offset `off0`.
  void send_fec(std::uint64_t off0) {
    auto skb = kern::SkBuff::alloc(kMss, Header::kSize + 44);
    std::uint8_t* p = skb->put(kMss);
    std::memset(p, 0, kMss);
    for (int g = 0; g < 4; ++g) {
      for (std::size_t i = 0; i < kMss; ++i) {
        p[i] ^= app::pattern_byte(off0 + g * kMss + i);
      }
    }
    Header h;
    h.sport = kPort;
    h.dport = kPort;
    h.seq = Config::kInitialSeq + static_cast<kern::Seq>(off0);
    h.rate = 4 * kMss;  // span
    h.length = kMss;
    h.tries = 1;
    h.type = PacketType::kFec;
    write_header(*skb, h);
    skb->daddr = kGroup;
    skb->protocol = kIpProtoHrmc;
    topo_->sender().send(std::move(skb));
  }

  void run_for(sim::SimTime dt) { sched_.run_until(sched_.now() + dt); }

  std::uint64_t drain_verify() {
    std::uint8_t buf[8192];
    std::uint64_t off = 0;
    std::size_t n;
    while ((n = rcv_->recv(buf)) > 0) {
      EXPECT_EQ(app::pattern_verify({buf, n}, off), n);
      off += n;
    }
    return off;
  }

  sim::Scheduler sched_;
  std::unique_ptr<net::Topology> topo_;
  SenderTap tap_;
  Config cfg_;
  std::unique_ptr<HrmcReceiver> rcv_;
};

TEST_F(FecTest, ReconstructsSingleMissingPacket) {
  // Packets 0,1,3 arrive; 2 is lost; parity recovers it — the stream is
  // complete with zero retransmissions.
  send_data(0 * kMss);
  send_data(1 * kMss);
  send_data(3 * kMss);
  send_fec(0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 1u);
  EXPECT_EQ(rcv_->available(), 4 * kMss);
  EXPECT_EQ(drain_verify(), 4 * kMss);
}

TEST_F(FecTest, ReconstructsInOrderHeadLoss) {
  // The FIRST packet of the group is the lost one.
  send_data(1 * kMss);
  send_data(2 * kMss);
  send_data(3 * kMss);
  send_fec(0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 1u);
  EXPECT_EQ(drain_verify(), 4 * kMss);
}

TEST_F(FecTest, TwoLossesAreBeyondParity) {
  send_data(0 * kMss);
  send_data(3 * kMss);
  send_fec(0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);
  EXPECT_EQ(rcv_->available(), kMss);  // only packet 0 in order
}

TEST_F(FecTest, CompleteGroupIgnoresParity) {
  for (int g = 0; g < 4; ++g) send_data(g * kMss);
  send_fec(0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);
  EXPECT_EQ(rcv_->stats().fec_packets_received, 1u);
  EXPECT_EQ(drain_verify(), 4 * kMss);
}

TEST_F(FecTest, RecoveryAfterConsumptionUsesCache) {
  // Packets 0 and 1 arrive and are consumed by the app before the
  // parity shows up; loss of packet 2 is still recoverable because the
  // payload cache retains consumed packets.
  send_data(0 * kMss);
  send_data(1 * kMss);
  run_for(sim::milliseconds(20));
  EXPECT_EQ(drain_verify(), 2 * kMss);  // app consumed them
  send_data(3 * kMss);
  send_fec(0);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 1u);
  std::uint8_t buf[8192];
  std::uint64_t off = 2 * kMss;
  std::size_t n;
  while ((n = rcv_->recv(buf)) > 0) {
    EXPECT_EQ(app::pattern_verify({buf, n}, off), n);
    off += n;
  }
  EXPECT_EQ(off, 4 * kMss);
}

TEST_F(FecTest, MalformedParityIgnored) {
  send_data(0 * kMss);
  // Span not a multiple of length: must be rejected quietly.
  auto skb = kern::SkBuff::alloc(kMss, Header::kSize + 44);
  skb->put(kMss);
  Header h;
  h.sport = kPort;
  h.dport = kPort;
  h.seq = Config::kInitialSeq;
  h.rate = 4 * kMss + 17;
  h.length = kMss;
  h.tries = 1;
  h.type = PacketType::kFec;
  write_header(*skb, h);
  skb->daddr = kGroup;
  skb->protocol = kIpProtoHrmc;
  topo_->sender().send(std::move(skb));
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);
  EXPECT_EQ(rcv_->available(), kMss);
}

TEST_F(FecTest, ResyncDiscardsGroupsStraddlingTheAnchor) {
  // Crash-restart regression: the pre-crash FEC cache held a partial
  // group, and after the URG resync re-anchored the stream a parity
  // packet spanning the anchor could "recover" packets whose true
  // content died with the crash. The cache must be wiped at resync and
  // any group straddling the anchor discarded, while fully post-anchor
  // groups keep working.
  send_data(0 * kMss);
  send_data(1 * kMss);
  send_data(8 * kMss);  // out-of-order: seeds the [8K,12K) FEC group
  run_for(sim::milliseconds(20));
  EXPECT_EQ(drain_verify(), 2 * kMss);

  rcv_->crash();
  run_for(sim::milliseconds(10));
  rcv_->restart();
  run_for(sim::milliseconds(10));
  EXPECT_GE(tap_.count(PacketType::kJoin), 1u);

  // The sender's resync response anchors the stream at offset 10*kMss.
  const std::uint64_t anchor = 10 * kMss;
  auto skb = kern::SkBuff::alloc(0, Header::kSize + 44);
  Header h;
  h.sport = kPort;
  h.dport = kPort;
  h.seq = Config::kInitialSeq + static_cast<kern::Seq>(anchor);
  h.tries = 1;
  h.type = PacketType::kJoinResponse;
  write_header(*skb, h);
  skb->daddr = topo_->receiver(0).addr();
  skb->protocol = kIpProtoHrmc;
  topo_->sender().send(std::move(skb));
  run_for(sim::milliseconds(10));

  // Parity for [8K,12K) straddles the anchor: its pre-anchor packets
  // are gone for good, so the group must be dropped, not repaired.
  send_fec(8 * kMss);
  run_for(sim::milliseconds(20));
  EXPECT_EQ(rcv_->stats().fec_stale_groups, 1u);
  EXPECT_EQ(rcv_->stats().fec_recoveries, 0u);

  // A fully post-anchor group still recovers a single loss.
  send_data(12 * kMss);
  send_data(13 * kMss);
  send_data(15 * kMss);
  send_fec(12 * kMss);
  run_for(sim::milliseconds(20));
  EXPECT_EQ(rcv_->stats().fec_recoveries, 1u);

  // Fill the head and verify the whole post-anchor stream pattern.
  send_data(10 * kMss);
  send_data(11 * kMss);
  run_for(sim::milliseconds(20));
  std::uint8_t buf[8192];
  std::uint64_t off = anchor;
  std::size_t n;
  while ((n = rcv_->recv(buf)) > 0) {
    EXPECT_EQ(app::pattern_verify({buf, n}, off), n);
    off += n;
  }
  EXPECT_EQ(off, 16 * kMss);
}

TEST(FecEndToEnd, SenderEmitsParityEveryKPackets) {
  harness::Workload wl;
  wl.file_bytes = 292 * 1024;  // 1460 * 8 * 25 = 200 full-MSS packets
  harness::Scenario sc = harness::lan_scenario(1, 10e6, 256 << 10, wl, 91);
  sc.topo.groups[0].loss_rate = 0.0;
  sc.proto.fec_group = 8;
  harness::RunResult r = harness::run_transfer(sc);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  // 292K / 1460 = 204.8 packets -> 25 full groups of 8.
  EXPECT_NEAR(static_cast<double>(r.sender.fec_packets_sent), 25.0, 1.0);
}

TEST(FecEndToEnd, FecCutsRetransmissionsUnderLoss) {
  harness::Workload wl;
  wl.file_bytes = 2 * 1024 * 1024;

  auto run_with = [&](std::size_t group) {
    harness::Scenario sc =
        harness::lan_scenario(2, 10e6, 256 << 10, wl, 92);
    sc.topo.groups[0].loss_rate = 0.02;
    sc.topo.correlated_share = 0.0;  // independent (wireless-like) loss
    sc.proto.fec_group = group;
    sc.time_limit = sim::seconds(1200);
    return harness::run_transfer(sc);
  };

  harness::RunResult off = run_with(0);
  harness::RunResult on = run_with(8);
  ASSERT_TRUE(off.completed);
  ASSERT_TRUE(on.completed);
  EXPECT_TRUE(on.verify_ok);
  EXPECT_GT(on.receivers_total.fec_recoveries, 0u);
  EXPECT_LT(on.sender.retransmissions, off.sender.retransmissions)
      << "FEC should absorb most single losses before they cost a NAK";
  EXPECT_LT(on.receivers_total.naks_sent, off.receivers_total.naks_sent);
}

}  // namespace
}  // namespace hrmc::proto
