#include "net/nic.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hrmc::net {
namespace {

/// Records everything delivered to it, with timestamps.
struct CaptureSink final : PacketSink {
  explicit CaptureSink(sim::Scheduler& s) : sched(&s) {}
  void deliver(kern::SkBuffPtr skb) override {
    packets.push_back(std::move(skb));
    times.push_back(sched->now());
  }
  sim::Scheduler* sched;
  std::vector<kern::SkBuffPtr> packets;
  std::vector<sim::SimTime> times;
};

kern::SkBuffPtr make_packet(std::size_t payload) {
  auto skb = kern::SkBuff::alloc(payload);
  skb->put(payload);
  return skb;
}

TEST(Nic, TransmitSerializesAtLinkRate) {
  sim::Scheduler sched;
  NicConfig cfg;
  cfg.link_bps = 10e6;
  Nic nic(sched, "n", cfg, 1);
  CaptureSink up(sched);
  nic.attach_uplink(&up);

  // 1212 payload + 38 framing = 1250 wire bytes = 1 ms at 10 Mbps.
  nic.transmit(make_packet(1212));
  nic.transmit(make_packet(1212));
  sched.run_until();
  ASSERT_EQ(up.packets.size(), 2u);
  EXPECT_NEAR(sim::to_milliseconds(up.times[0]), 1.0, 0.01);
  EXPECT_NEAR(sim::to_milliseconds(up.times[1]), 2.0, 0.01);
}

TEST(Nic, TxQueueOverflowDrops) {
  sim::Scheduler sched;
  NicConfig cfg;
  cfg.tx_ring = 4;
  Nic nic(sched, "n", cfg, 1);
  CaptureSink up(sched);
  nic.attach_uplink(&up);

  // One packet goes into serialization immediately; 4 queue; rest drop.
  for (int i = 0; i < 10; ++i) nic.transmit(make_packet(100));
  EXPECT_EQ(nic.counters().get("tx_ring_drops"), 5u);
  sched.run_until();
  EXPECT_EQ(up.packets.size(), 5u);
}

TEST(Nic, TxFreeReflectsOccupancy) {
  sim::Scheduler sched;
  NicConfig cfg;
  cfg.tx_ring = 8;
  Nic nic(sched, "n", cfg, 1);
  CaptureSink up(sched);
  nic.attach_uplink(&up);
  EXPECT_EQ(nic.tx_free(), 8u);
  nic.transmit(make_packet(100));  // dequeued into serialization
  nic.transmit(make_packet(100));
  nic.transmit(make_packet(100));
  EXPECT_EQ(nic.tx_free(), 8u - nic.tx_queue_len());
  sched.run_until();
  EXPECT_EQ(nic.tx_free(), 8u);
}

TEST(Nic, TxRingExactFillBoundary) {
  sim::Scheduler sched;
  NicConfig cfg;
  cfg.tx_ring = 4;
  Nic nic(sched, "n", cfg, 1);
  CaptureSink up(sched);
  nic.attach_uplink(&up);

  // Exactly fill: one serializing + tx_ring queued = 5 accepted.
  for (int i = 0; i < 5; ++i) nic.transmit(make_packet(100));
  EXPECT_EQ(nic.counters().get("tx_ring_drops"), 0u);
  EXPECT_EQ(nic.tx_free(), 0u);

  // One more is the first to overflow.
  nic.transmit(make_packet(100));
  EXPECT_EQ(nic.counters().get("tx_ring_drops"), 1u);
  EXPECT_EQ(nic.tx_free(), 0u);  // full stays full, never underflows

  sched.run_until();
  EXPECT_EQ(up.packets.size(), 5u);
  EXPECT_EQ(nic.tx_free(), 4u);
  // Accounting closes: everything offered either went out or dropped.
  EXPECT_EQ(nic.counters().get("tx_offered"),
            nic.counters().get("tx_packets") +
                nic.counters().get("tx_ring_drops"));
}

TEST(Nic, TxFreeRecoversAsRingDrains) {
  sim::Scheduler sched;
  NicConfig cfg;
  cfg.tx_ring = 2;
  cfg.link_bps = 10e6;  // 1212+38 bytes = 1 ms per packet
  Nic nic(sched, "n", cfg, 1);
  CaptureSink up(sched);
  nic.attach_uplink(&up);

  for (int i = 0; i < 3; ++i) nic.transmit(make_packet(1212));
  EXPECT_EQ(nic.tx_free(), 0u);
  // After the first serialization completes, one ring slot frees
  // (the second packet moves from the ring into serialization).
  sched.run_until(sim::microseconds(1500));
  EXPECT_EQ(nic.tx_free(), 1u);
  sched.run_until();
  EXPECT_EQ(nic.tx_free(), 2u);
  EXPECT_EQ(up.packets.size(), 3u);
}

TEST(Nic, LinkDownDropsTransmit) {
  sim::Scheduler sched;
  Nic nic(sched, "n", NicConfig{}, 1);
  CaptureSink up(sched);
  nic.attach_uplink(&up);

  nic.set_link_up(false);
  for (int i = 0; i < 5; ++i) nic.transmit(make_packet(100));
  sched.run_until();
  EXPECT_TRUE(up.packets.empty());
  EXPECT_EQ(nic.counters().get("link_down_drops"), 5u);
}

TEST(Nic, LinkDownDropsReceive) {
  sim::Scheduler sched;
  Nic nic(sched, "n", NicConfig{}, 1);
  CaptureSink host(sched);
  nic.attach_host(&host);

  nic.set_link_up(false);
  for (int i = 0; i < 5; ++i) nic.deliver(make_packet(100));
  sched.run_until();
  EXPECT_TRUE(host.packets.empty());
  EXPECT_EQ(nic.counters().get("link_down_drops"), 5u);
}

TEST(Nic, LinkUpResumesTraffic) {
  sim::Scheduler sched;
  Nic nic(sched, "n", NicConfig{}, 1);
  CaptureSink up(sched);
  nic.attach_uplink(&up);

  nic.set_link_up(false);
  nic.transmit(make_packet(100));
  nic.set_link_up(true);
  nic.transmit(make_packet(100));
  sched.run_until();
  EXPECT_EQ(up.packets.size(), 1u);
  EXPECT_EQ(nic.counters().get("link_down_drops"), 1u);
}

TEST(Nic, BurstLossDropsAtReceive) {
  sim::Scheduler sched;
  Nic nic(sched, "n", NicConfig{}, 1);
  CaptureSink host(sched);
  nic.attach_host(&host);

  GilbertElliottConfig ge;
  ge.p_good_bad = 1.0;  // immediately bad, stays bad
  ge.p_bad_good = 0.0;
  ge.loss_bad = 1.0;
  nic.set_burst_loss(ge, 7);
  for (int i = 0; i < 10; ++i) nic.deliver(make_packet(10));
  sched.run_until();
  EXPECT_TRUE(host.packets.empty());
  EXPECT_EQ(nic.counters().get("burst_loss_drops"), 10u);

  nic.clear_burst_loss();
  nic.deliver(make_packet(10));
  sched.run_until();
  EXPECT_EQ(host.packets.size(), 1u);
}

TEST(Nic, RxDelayApplied) {
  sim::Scheduler sched;
  NicConfig cfg;
  cfg.rx_delay = sim::milliseconds(20);
  Nic nic(sched, "n", cfg, 1);
  CaptureSink host(sched);
  nic.attach_host(&host);

  nic.deliver(make_packet(100));
  sched.run_until();
  ASSERT_EQ(host.packets.size(), 1u);
  EXPECT_EQ(host.times[0], sim::milliseconds(20));
}

TEST(Nic, RxLossIsApplied) {
  sim::Scheduler sched;
  NicConfig cfg;
  cfg.rx_loss_rate = 0.5;
  Nic nic(sched, "n", cfg, 42);
  CaptureSink host(sched);
  nic.attach_host(&host);

  for (int i = 0; i < 1000; ++i) nic.deliver(make_packet(10));
  sched.run_until();
  const auto dropped = nic.counters().get("rx_loss_drops");
  EXPECT_NEAR(static_cast<double>(dropped), 500.0, 60.0);
  EXPECT_EQ(host.packets.size() + dropped, 1000u);
}

TEST(Nic, NoLossWhenRateZero) {
  sim::Scheduler sched;
  Nic nic(sched, "n", NicConfig{}, 42);
  CaptureSink host(sched);
  nic.attach_host(&host);
  for (int i = 0; i < 100; ++i) nic.deliver(make_packet(10));
  sched.run_until();
  EXPECT_EQ(host.packets.size(), 100u);
}

TEST(Nic, SustainedOverBurstTriggersOverruns) {
  sim::Scheduler sched;
  NicConfig cfg;
  cfg.link_bps = 100e6;
  cfg.tx_ring = 100000;  // queue never the limit in this test
  cfg.overrun_burst = 10;
  cfg.overrun_prob = 1.0;  // deterministic for the test
  Nic nic(sched, "n", cfg, 7);
  CaptureSink up(sched);
  nic.attach_uplink(&up);

  // Jiffy 0: 20 enqueues (10 over, but no *previous* over-jiffy: clean).
  for (int i = 0; i < 20; ++i) nic.transmit(make_packet(100));
  EXPECT_EQ(nic.counters().get("tx_overrun_drops"), 0u);

  // Jiffy 1: sustained pressure; enqueues beyond 10 drop.
  sched.schedule_at(sim::milliseconds(10), [&] {
    for (int i = 0; i < 20; ++i) nic.transmit(make_packet(100));
  });
  sched.run_until(sim::milliseconds(11));
  EXPECT_EQ(nic.counters().get("tx_overrun_drops"), 10u);
}

TEST(Nic, IsolatedBurstsNeverOverrun) {
  sim::Scheduler sched;
  NicConfig cfg;
  cfg.tx_ring = 100000;
  cfg.overrun_burst = 10;
  cfg.overrun_prob = 1.0;
  Nic nic(sched, "n", cfg, 7);
  CaptureSink up(sched);
  nic.attach_uplink(&up);
  // Big bursts separated by quiet jiffies: all clean.
  for (int j = 0; j < 10; j += 2) {
    sched.schedule_at(sim::milliseconds(10 * j), [&] {
      for (int i = 0; i < 50; ++i) nic.transmit(make_packet(100));
    });
  }
  sched.run_until();
  EXPECT_EQ(nic.counters().get("tx_overrun_drops"), 0u);
}

}  // namespace
}  // namespace hrmc::net
