#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace hrmc::sim {
namespace {

// Per-domain execution logs: each domain appends only its own entries
// while the engine runs (the same single-writer discipline real
// components follow), so logging itself cannot race or perturb order.
using Log = std::vector<std::pair<SimTime, int>>;

struct PingWorld {
  explicit PingWorld(std::size_t domains, SimTime lookahead)
      : engine(domains, lookahead), logs(domains) {}

  /// Executes in domain `d`: log, do some local-only chatter, and if
  /// hops remain bounce a token to the next domain one lookahead out
  /// (the earliest legal cross-domain arrival).
  void hop(std::size_t d, int token, int hops_left) {
    Scheduler& sched = engine.domain(d);
    logs[d].emplace_back(sched.now(), token * 100 + hops_left);
    sched.schedule_after(engine.lookahead() / 4, [this, d, token] {
      logs[d].emplace_back(engine.domain(d).now(), token * 100 + 99);
    });
    if (hops_left == 0) return;
    const std::size_t nd = (d + 1) % engine.domain_count();
    engine.post(d, nd, sched.now() + engine.lookahead(), 64,
                [this, nd, token, hops_left] {
                  hop(nd, token, hops_left - 1);
                });
  }

  ShardEngine engine;
  std::vector<Log> logs;
};

struct PingOutcome {
  std::vector<Log> logs;
  std::uint64_t events = 0;
  ShardEngine::Stats stats;
};

PingOutcome run_ping(std::size_t domains, unsigned threads, int tokens,
                     int hops) {
  PingWorld w(domains, microseconds(50));
  for (int t = 0; t < tokens; ++t) {
    const std::size_t d = static_cast<std::size_t>(t) % domains;
    w.engine.domain(d).schedule_at(microseconds(t + 1), [&w, d, t, hops] {
      w.hop(d, t, hops);
    });
  }
  PingOutcome out;
  out.events = w.engine.run({}, kTimeInfinity, threads);
  out.logs = std::move(w.logs);
  out.stats = w.engine.stats();
  return out;
}

TEST(ShardEngine, RejectsEmptyOrZeroLookahead) {
  EXPECT_THROW(ShardEngine(0, microseconds(1)), std::invalid_argument);
  EXPECT_THROW(ShardEngine(2, 0), std::invalid_argument);
  EXPECT_THROW(ShardEngine(2, -5), std::invalid_argument);
}

TEST(ShardEngine, BitIdenticalAcrossThreadCounts) {
  // The tentpole invariant: per-domain event order, event counts, and
  // epoch structure are a pure function of the scenario — the worker
  // count must be unobservable.
  const PingOutcome serial = run_ping(4, 1, 8, 25);
  for (unsigned threads : {2u, 4u, 8u}) {
    const PingOutcome parallel = run_ping(4, threads, 8, 25);
    EXPECT_EQ(parallel.logs, serial.logs) << threads << " threads";
    EXPECT_EQ(parallel.events, serial.events);
    EXPECT_EQ(parallel.stats.epochs, serial.stats.epochs);
    EXPECT_EQ(parallel.stats.handoffs, serial.stats.handoffs);
    EXPECT_EQ(parallel.stats.handoff_bytes, serial.stats.handoff_bytes);
  }
  // 8 tokens x 25 hops cross a boundary once each.
  EXPECT_EQ(serial.stats.handoffs, 8u * 25u);
  EXPECT_EQ(serial.stats.handoff_bytes, 8u * 25u * 64u);
}

TEST(ShardEngine, EpochsSkipIdleGaps) {
  // Two event clusters a full second apart with a 50us lookahead: a
  // naive fixed-step engine would grind through ~20k windows; epochs
  // must instead jump to the next event anywhere.
  PingWorld w(2, microseconds(50));
  w.engine.domain(0).schedule_at(microseconds(1), [&w] { w.hop(0, 1, 2); });
  w.engine.domain(1).schedule_at(seconds(1), [&w] { w.hop(1, 2, 2); });
  w.engine.run({}, kTimeInfinity, 2);
  EXPECT_LT(w.engine.stats().epochs, 20u);
  EXPECT_EQ(w.engine.stats().handoffs, 4u);
}

TEST(ShardEngine, LookaheadViolationThrows) {
  // A post arriving inside the current window would break conservative
  // causality; the engine must refuse loudly, not corrupt the order.
  ShardEngine eng(2, microseconds(50));
  eng.domain(0).schedule_at(microseconds(10), [&eng] {
    eng.post(0, 1, eng.domain(0).now(), 10, [] {});  // zero latency: illegal
  });
  EXPECT_THROW(eng.run({}, kTimeInfinity, 2), std::logic_error);
}

TEST(ShardEngine, SetupPostsRunWithoutBarriers) {
  // Outside run() there is no window to violate: post() schedules
  // directly (single-threaded setup), post_control() applies inline.
  ShardEngine eng(2, microseconds(50));
  int ran = 0;
  eng.post(0, 1, microseconds(5), 32, [&ran] { ran += 1; });
  eng.post_control(1, [&ran] { ran += 10; });
  EXPECT_EQ(ran, 10);  // control applied immediately
  eng.run({}, kTimeInfinity, 1);
  EXPECT_EQ(ran, 11);
  EXPECT_EQ(eng.domain(1).executed(), 1u);
  EXPECT_GE(eng.domain(1).now(), microseconds(5));  // clock reached the event
}

TEST(ShardEngine, ControlPostsApplyInSourceOrderAtTheBarrier) {
  // Controls staged in the same window apply serially at its end:
  // source-domain ascending, FIFO within a source — regardless of
  // which worker ran which domain first.
  for (unsigned threads : {1u, 3u}) {
    ShardEngine eng(3, microseconds(50));
    std::vector<int> applied;
    for (std::size_t d : {2u, 1u, 0u}) {
      eng.domain(d).schedule_at(microseconds(1), [&eng, &applied, d] {
        eng.post_control(d, [&applied, d] {
          applied.push_back(static_cast<int>(d));
        });
        eng.post_control(d, [&applied, d] {
          applied.push_back(static_cast<int>(d) + 10);
        });
      });
    }
    eng.run({}, kTimeInfinity, threads);
    EXPECT_EQ(applied, (std::vector<int>{0, 10, 1, 11, 2, 12}))
        << threads << " threads";
    EXPECT_EQ(eng.stats().control_posts, 6u);
  }
}

TEST(ShardEngine, DonePredicateStopsAtABarrier) {
  // done() is sampled between windows only; a run stops at the first
  // barrier where it holds, leaving later events unexecuted.
  ShardEngine eng(2, microseconds(50));
  bool flag = false;
  int late = 0;
  eng.domain(0).schedule_at(microseconds(1), [&flag] { flag = true; });
  eng.domain(1).schedule_at(seconds(5), [&late] { late = 1; });
  eng.run([&flag] { return flag; }, kTimeInfinity, 2);
  EXPECT_EQ(late, 0);
  EXPECT_TRUE(eng.domain(1).next_event_time() < kTimeInfinity);
}

TEST(ShardEngine, HorizonBoundsEveryDomain) {
  // Events beyond the horizon stay queued; domain clocks advance to
  // the horizon like Scheduler::run_until's contract.
  ShardEngine eng(2, microseconds(50));
  int ran = 0;
  eng.domain(0).schedule_at(milliseconds(1), [&ran] { ++ran; });
  eng.domain(1).schedule_at(milliseconds(100), [&ran] { ++ran; });
  eng.run({}, milliseconds(10), 2);
  EXPECT_EQ(ran, 1);
}

TEST(ShardEngine, ExecutedAndCompactionsSumDomains) {
  ShardEngine eng(3, microseconds(50));
  for (std::size_t d = 0; d < 3; ++d) {
    eng.domain(d).schedule_at(microseconds(1 + d), [] {});
  }
  eng.run({}, kTimeInfinity, 1);
  EXPECT_EQ(eng.executed(), 3u);
  EXPECT_EQ(eng.compactions(), 0u);
}

}  // namespace
}  // namespace hrmc::sim
