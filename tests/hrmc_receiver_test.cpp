// Receiver-side protocol behaviour, tested with hand-crafted packets
// injected from the sender host (the capture transport plays the sender).
#include "hrmc/receiver.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/pattern.hpp"
#include "net/topology.hpp"

namespace hrmc::proto {
namespace {

constexpr net::Addr kGroup = net::make_addr(224, 7, 7, 7);
constexpr net::Port kPort = 7500;

struct CaptureTransport final : net::Transport {
  void rx(kern::SkBuffPtr skb) override {
    auto h = read_header(*skb);
    if (h) headers.push_back(*h);
  }
  std::vector<Header> headers;

  [[nodiscard]] std::vector<Header> of_type(PacketType t) const {
    std::vector<Header> out;
    for (const Header& h : headers) {
      if (h.type == t) out.push_back(h);
    }
    return out;
  }
};

class ReceiverTest : public ::testing::Test {
 protected:
  ReceiverTest() {
    net::TopologyConfig tcfg;
    tcfg.seed = 3;
    tcfg.groups = {net::group_a(1)};
    tcfg.groups[0].loss_rate = 0.0;
    topo_ = std::make_unique<net::Topology>(sched_, tcfg);
    topo_->sender().register_transport(kIpProtoHrmc, &at_sender_);
  }

  void make_receiver(const Config& cfg) {
    rcv_ = std::make_unique<HrmcReceiver>(topo_->receiver(0), cfg,
                                          net::Endpoint{kGroup, kPort},
                                          topo_->sender().addr());
    rcv_->open();
    run_for(sim::milliseconds(50));
  }

  /// Injects a packet from the sender host toward the group or receiver.
  void inject(PacketType type, kern::Seq seq, std::uint32_t length,
              std::uint32_t rate = 1'000'000, bool urg = false,
              bool fin = false, std::uint64_t pattern_base = 0,
              bool has_payload = false) {
    auto skb = kern::SkBuff::alloc(has_payload ? length : 0,
                                   Header::kSize + 44);
    if (has_payload) {
      app::pattern_fill({skb->put(length), length}, pattern_base);
    }
    Header h;
    h.sport = kPort;
    h.dport = kPort;
    h.seq = seq;
    h.rate = rate;
    h.length = length;
    h.tries = 1;
    h.type = type;
    h.urg = urg;
    h.fin = fin;
    write_header(*skb, h);
    skb->daddr = kGroup;
    skb->protocol = kIpProtoHrmc;
    topo_->sender().send(std::move(skb));
  }

  /// DATA packet with pattern payload; stream offset = seq - initial.
  void send_data(kern::Seq seq, std::uint32_t len, bool fin = false,
                 std::uint32_t rate = 1'000'000) {
    inject(PacketType::kData, seq, len, rate, false, fin,
           seq - Config::kInitialSeq, true);
  }

  void run_for(sim::SimTime dt) { sched_.run_until(sched_.now() + dt); }

  sim::Scheduler sched_;
  std::unique_ptr<net::Topology> topo_;
  CaptureTransport at_sender_;
  std::unique_ptr<HrmcReceiver> rcv_;
};

TEST_F(ReceiverTest, SendsJoinOnOpenWithHint) {
  make_receiver(Config{});
  EXPECT_EQ(at_sender_.of_type(PacketType::kJoin).size(), 1u);
  EXPECT_FALSE(rcv_->joined());  // no JOIN_RESPONSE yet
  inject(PacketType::kJoinResponse, Config::kInitialSeq, 0);
  run_for(sim::milliseconds(50));
  EXPECT_TRUE(rcv_->joined());
}

TEST_F(ReceiverTest, RetriesJoinUntilResponse) {
  make_receiver(Config{});
  run_for(sim::seconds(2));
  EXPECT_GE(at_sender_.of_type(PacketType::kJoin).size(), 3u);
}

TEST_F(ReceiverTest, InOrderDataIsDelivered) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  send_data(Config::kInitialSeq + 1000, 500);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->available(), 1500u);
  std::vector<std::uint8_t> buf(2000);
  const std::size_t n = rcv_->recv(buf);
  EXPECT_EQ(n, 1500u);
  EXPECT_EQ(app::pattern_verify({buf.data(), n}, 0), n);
  EXPECT_EQ(rcv_->stats().data_packets_received, 2u);
}

TEST_F(ReceiverTest, PartialRecvConsumesFront) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  run_for(sim::milliseconds(50));
  std::vector<std::uint8_t> buf(300);
  EXPECT_EQ(rcv_->recv(buf), 300u);
  EXPECT_EQ(app::pattern_verify({buf.data(), 300}, 0), 300u);
  EXPECT_EQ(rcv_->recv(buf), 300u);
  EXPECT_EQ(app::pattern_verify({buf.data(), 300}, 300), 300u);
  EXPECT_EQ(rcv_->available(), 400u);
  EXPECT_EQ(rcv_->rcv_wnd(), Config::kInitialSeq + 600);
}

TEST_F(ReceiverTest, GapTriggersImmediateNak) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  send_data(Config::kInitialSeq + 2000, 1000);  // skip [1000, 2000)
  // Short window: long enough for delivery, shorter than the NAK
  // Manager's 1.5-RTT re-send interval.
  run_for(sim::milliseconds(10));
  auto naks = at_sender_.of_type(PacketType::kNak);
  ASSERT_EQ(naks.size(), 1u);
  EXPECT_EQ(naks[0].rate, Config::kInitialSeq + 1000);  // range start
  EXPECT_EQ(naks[0].length, 1000u);
  EXPECT_EQ(naks[0].seq, Config::kInitialSeq + 1000);  // next expected
  EXPECT_EQ(rcv_->stats().out_of_order_packets, 1u);
}

TEST_F(ReceiverTest, NakSuppressionAvoidsDuplicates) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  send_data(Config::kInitialSeq + 2000, 1000);
  send_data(Config::kInitialSeq + 3000, 1000);  // same gap still open
  run_for(sim::milliseconds(10));
  EXPECT_EQ(at_sender_.of_type(PacketType::kNak).size(), 1u);
  EXPECT_GE(rcv_->stats().naks_suppressed, 1u);
}

TEST_F(ReceiverTest, NakManagerResendsAfterInterval) {
  Config cfg;
  cfg.nak_resend_rtts = 1.5;
  make_receiver(cfg);
  send_data(Config::kInitialSeq, 1000);
  send_data(Config::kInitialSeq + 2000, 1000);
  run_for(sim::seconds(1));  // far beyond 1.5 RTTs
  EXPECT_GE(at_sender_.of_type(PacketType::kNak).size(), 2u);
}

TEST_F(ReceiverTest, RetransmissionFillsGapAndDelivers) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  send_data(Config::kInitialSeq + 2000, 1000);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->available(), 1000u);
  send_data(Config::kInitialSeq + 1000, 1000);  // the missing piece
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->available(), 3000u);
  std::vector<std::uint8_t> buf(3000);
  EXPECT_EQ(rcv_->recv(buf), 3000u);
  EXPECT_EQ(app::pattern_verify({buf.data(), 3000}, 0), 3000u);
}

TEST_F(ReceiverTest, OutOfOrderInsertAcrossSequenceWrap) {
  // Regression net for the OOO insert path near the 2^32 boundary: the
  // middle packet straddles the wrap, arrives first, and must be held
  // out of order (not mistaken for old data by a raw seq comparison).
  // send_data() bakes Config::kInitialSeq into the pattern offset, so
  // this test injects directly with explicit pattern bases.
  Config cfg;
  cfg.initial_seq = static_cast<kern::Seq>(0) - 1500;
  make_receiver(cfg);
  const kern::Seq s0 = cfg.initial_seq;          // [-1500, -500)
  const kern::Seq s1 = cfg.initial_seq + 1000;   // [-500, 500): wraps
  const kern::Seq s2 = cfg.initial_seq + 2000;   // [500, 1500)

  inject(PacketType::kData, s1, 1000, 1'000'000, false, false,
         /*pattern_base=*/1000, /*has_payload=*/true);
  run_for(sim::milliseconds(10));
  EXPECT_EQ(rcv_->stats().out_of_order_packets, 1u);
  EXPECT_EQ(rcv_->available(), 0u);
  auto naks = at_sender_.of_type(PacketType::kNak);
  ASSERT_EQ(naks.size(), 1u);
  EXPECT_EQ(naks[0].rate, s0);  // missing range starts at the anchor
  EXPECT_EQ(naks[0].length, 1000u);
  EXPECT_EQ(naks[0].seq, s0);  // next expected

  inject(PacketType::kData, s0, 1000, 1'000'000, false, false, 0, true);
  run_for(sim::milliseconds(10));
  EXPECT_EQ(rcv_->available(), 2000u);  // drained across the wrap
  inject(PacketType::kData, s2, 1000, 1'000'000, false, true, 2000, true);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->available(), 3000u);

  std::vector<std::uint8_t> buf(3000);
  ASSERT_EQ(rcv_->recv(buf), 3000u);
  EXPECT_EQ(app::pattern_verify({buf.data(), 3000}, 0), 3000u);
  EXPECT_EQ(rcv_->stats().data_packets_received, 3u);
}

TEST_F(ReceiverTest, DuplicateDataCounted) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  send_data(Config::kInitialSeq, 1000);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().duplicate_packets, 1u);
  EXPECT_EQ(rcv_->available(), 1000u);
}

TEST_F(ReceiverTest, ProbeAnsweredWithUpdateWhenDataHeld) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  run_for(sim::milliseconds(20));
  const auto updates_before = at_sender_.of_type(PacketType::kUpdate).size();
  inject(PacketType::kProbe, Config::kInitialSeq + 1000, 0);
  run_for(sim::milliseconds(20));
  auto updates = at_sender_.of_type(PacketType::kUpdate);
  ASSERT_EQ(updates.size(), updates_before + 1);
  EXPECT_EQ(updates.back().seq, Config::kInitialSeq + 1000);
  EXPECT_EQ(rcv_->stats().probes_received, 1u);
}

TEST_F(ReceiverTest, ProbeAnsweredWithNakWhenDataMissing) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  run_for(sim::milliseconds(20));
  inject(PacketType::kProbe, Config::kInitialSeq + 5000, 0);
  run_for(sim::milliseconds(20));
  auto naks = at_sender_.of_type(PacketType::kNak);
  ASSERT_EQ(naks.size(), 1u);
  EXPECT_EQ(naks[0].rate, Config::kInitialSeq + 1000);
  EXPECT_EQ(naks[0].length, 4000u);
}

TEST_F(ReceiverTest, KeepaliveRevealsLostTail) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  run_for(sim::milliseconds(20));
  // Keepalive names bytes beyond what we saw: the burst tail was lost.
  inject(PacketType::kKeepalive, Config::kInitialSeq + 3000, 0);
  run_for(sim::milliseconds(20));
  auto naks = at_sender_.of_type(PacketType::kNak);
  ASSERT_EQ(naks.size(), 1u);
  EXPECT_EQ(naks[0].rate, Config::kInitialSeq + 1000);
  EXPECT_EQ(naks[0].length, 2000u);
}

TEST_F(ReceiverTest, FinViaDataMarksComplete) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  send_data(Config::kInitialSeq + 1000, 500, /*fin=*/true);
  run_for(sim::milliseconds(50));
  EXPECT_TRUE(rcv_->complete());
  EXPECT_FALSE(rcv_->eof());  // app has not consumed yet
  std::vector<std::uint8_t> buf(1500);
  rcv_->recv(buf);
  EXPECT_TRUE(rcv_->eof());
}

TEST_F(ReceiverTest, FinViaKeepalive) {
  make_receiver(Config{});
  send_data(Config::kInitialSeq, 1000);
  inject(PacketType::kKeepalive, Config::kInitialSeq + 1000, 0,
         1'000'000, false, /*fin=*/true);
  run_for(sim::milliseconds(50));
  EXPECT_TRUE(rcv_->complete());
}

TEST_F(ReceiverTest, UpdateGeneratorRunsAfterJoin) {
  make_receiver(Config{});
  inject(PacketType::kJoinResponse, Config::kInitialSeq, 0);
  run_for(sim::seconds(3));
  // Initial period 50 jiffies = 0.5 s: several updates in 3 s.
  EXPECT_GE(at_sender_.of_type(PacketType::kUpdate).size(), 4u);
}

TEST_F(ReceiverTest, NoUpdatesInRmcMode) {
  Config cfg;
  cfg.mode = Mode::kRmc;
  make_receiver(cfg);
  inject(PacketType::kJoinResponse, Config::kInitialSeq, 0);
  send_data(Config::kInitialSeq, 1000);
  run_for(sim::seconds(3));
  EXPECT_EQ(at_sender_.of_type(PacketType::kUpdate).size(), 0u);
}

TEST_F(ReceiverTest, UpdatePeriodShrinksUnderProbes) {
  make_receiver(Config{});
  inject(PacketType::kJoinResponse, Config::kInitialSeq, 0);
  run_for(sim::milliseconds(100));
  const kern::Jiffies before = rcv_->update_period();
  // A probe in (almost) every update period drives the period down.
  for (int i = 0; i < 10; ++i) {
    inject(PacketType::kProbe, Config::kInitialSeq, 0);
    run_for(kern::from_jiffies(before));
  }
  EXPECT_LT(rcv_->update_period(), before);
}

TEST_F(ReceiverTest, UpdatePeriodGrowsWithoutProbes) {
  make_receiver(Config{});
  inject(PacketType::kJoinResponse, Config::kInitialSeq, 0);
  run_for(sim::milliseconds(100));
  const kern::Jiffies before = rcv_->update_period();
  run_for(sim::seconds(5));  // several quiet periods
  EXPECT_GT(rcv_->update_period(), before);
}

TEST_F(ReceiverTest, FixedUpdatePeriodWhenDynamicDisabled) {
  Config cfg;
  cfg.dynamic_update_timer = false;
  make_receiver(cfg);
  inject(PacketType::kJoinResponse, Config::kInitialSeq, 0);
  run_for(sim::seconds(5));
  EXPECT_EQ(rcv_->update_period(), cfg.update_period_init);
}

TEST_F(ReceiverTest, WarningRegionSendsRateRequest) {
  Config cfg;
  cfg.rcvbuf = 16 * 1024;
  make_receiver(cfg);
  // Fill to ~60% (warning region, default threshold 50%), advertised
  // rate huge so the WARNBUF rule fires.
  std::uint32_t filled = 0;
  while (filled < 10 * 1024) {
    send_data(Config::kInitialSeq + filled, 1024, false,
              /*rate=*/50'000'000);
    filled += 1024;
  }
  run_for(sim::milliseconds(50));
  auto ctrl = at_sender_.of_type(PacketType::kControl);
  ASSERT_GE(ctrl.size(), 1u);
  EXPECT_FALSE(ctrl.back().urg);
  EXPECT_GT(ctrl.back().rate, 0u);
}

TEST_F(ReceiverTest, NoRateRequestInSafeRegionOrLowRate) {
  Config cfg;
  cfg.rcvbuf = 64 * 1024;
  make_receiver(cfg);
  // 10% full, tiny advertised rate: rule 1/2 take no action.
  send_data(Config::kInitialSeq, 1024, false, /*rate=*/1000);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(at_sender_.of_type(PacketType::kControl).size(), 0u);
}

TEST_F(ReceiverTest, CriticalRegionSendsUrgent) {
  Config cfg;
  cfg.rcvbuf = 16 * 1024;
  make_receiver(cfg);
  std::uint32_t filled = 0;
  while (filled < 15 * 1024) {  // > 90%
    send_data(Config::kInitialSeq + filled, 1024, false, 50'000'000);
    filled += 1024;
  }
  run_for(sim::milliseconds(50));
  auto ctrl = at_sender_.of_type(PacketType::kControl);
  ASSERT_GE(ctrl.size(), 1u);
  EXPECT_TRUE(ctrl.back().urg);
  EXPECT_GE(rcv_->stats().urgent_requests_sent, 1u);
}

TEST_F(ReceiverTest, BufferOverflowDropsAndRecovers) {
  Config cfg;
  cfg.rcvbuf = 4 * 1024;
  make_receiver(cfg);
  std::uint32_t off = 0;
  for (int i = 0; i < 8; ++i) {  // 8 KB offered into a 4 KB buffer
    send_data(Config::kInitialSeq + off, 1024);
    off += 1024;
  }
  run_for(sim::milliseconds(50));
  EXPECT_GT(rcv_->stats().window_overflow_drops, 0u);
  // Application drains; retransmission of the dropped byte range lands.
  std::vector<std::uint8_t> buf(8 * 1024);
  const std::size_t got = rcv_->recv(buf);
  EXPECT_EQ(app::pattern_verify({buf.data(), got}, 0), got);
}

TEST_F(ReceiverTest, NakErrSkipsHoleAndFlagsError) {
  Config cfg;
  cfg.mode = Mode::kRmc;
  make_receiver(cfg);
  send_data(Config::kInitialSeq, 1000);
  send_data(Config::kInitialSeq + 2000, 1000);
  run_for(sim::milliseconds(50));
  inject(PacketType::kNakErr, Config::kInitialSeq + 1000, 1000);
  run_for(sim::milliseconds(50));
  EXPECT_TRUE(rcv_->stream_error());
  EXPECT_EQ(rcv_->bytes_skipped(), 1000u);
  EXPECT_EQ(rcv_->available(), 2000u);  // first packet + post-hole data
}

TEST_F(ReceiverTest, CorruptPacketCounted) {
  make_receiver(Config{});
  auto skb = kern::SkBuff::alloc(100, Header::kSize + 44);
  skb->put(100);
  Header h;
  h.sport = kPort;
  h.dport = kPort;
  h.seq = Config::kInitialSeq;
  h.length = 100;
  h.type = PacketType::kData;
  write_header(*skb, h);
  skb->mutable_bytes()[25] ^= 0xff;  // corrupt payload after checksum
  skb->daddr = kGroup;
  skb->protocol = kIpProtoHrmc;
  topo_->sender().send(std::move(skb));
  run_for(sim::milliseconds(50));
  EXPECT_EQ(rcv_->stats().bad_packets, 1u);
  EXPECT_EQ(rcv_->stats().data_packets_received, 0u);
}

}  // namespace
}  // namespace hrmc::proto
