// Memory-pressure robustness (DESIGN.md §16): the accountant's ledger
// semantics, graceful degradation at every consumer (alloc failure
// during a URG-JOIN resync, repairer death with a byte-bound cache,
// FEC under OOM), budgeted-run determinism, the trace budget
// invariant, and a pinned slice of the mem-pressure chaos block.
#include "kern/mem.hpp"

#include <gtest/gtest.h>

#include "harness/chaos.hpp"
#include "harness/scenario.hpp"
#include "trace/verify.hpp"

namespace hrmc {
namespace {

using harness::RunResult;
using harness::Scenario;
using kern::MemAccountant;
using kern::MemComponent;

// --- accountant unit semantics ---------------------------------------

TEST(MemAccountant, BudgetRefusesAndLedgerNeverExceeds) {
  MemAccountant mem(1000, 7);
  EXPECT_TRUE(mem.try_charge(1, MemComponent::kSendWindow, 600));
  EXPECT_TRUE(mem.try_charge(1, MemComponent::kReassembly, 400));
  // Exactly at the budget: the next byte is refused, nothing charged.
  EXPECT_FALSE(mem.try_charge(1, MemComponent::kReassembly, 1));
  EXPECT_EQ(mem.live(1), 1000u);
  EXPECT_EQ(mem.counters().budget_denials, 1u);
  // Per-host ledgers are independent.
  EXPECT_TRUE(mem.try_charge(2, MemComponent::kReassembly, 1000));
  EXPECT_EQ(mem.peak_any_host(), 1000u);
  // Uncharge frees exactly what it names, per component.
  mem.uncharge(1, MemComponent::kSendWindow, 600);
  EXPECT_EQ(mem.live(1), 400u);
  EXPECT_EQ(mem.component(1, MemComponent::kReassembly), 400u);
  EXPECT_TRUE(mem.try_charge(1, MemComponent::kFecData, 600));
  // The invariant bound: live never exceeded the budget at any point.
  EXPECT_LE(mem.peak_any_host(), 1000u);
}

TEST(MemAccountant, SqueezeLowersEffectiveBudgetAndReportsOverage) {
  MemAccountant mem(1000, 7);
  ASSERT_TRUE(mem.try_charge(1, MemComponent::kFecParity, 800));
  EXPECT_EQ(mem.overage(1), 0u);
  mem.set_squeeze(0.5);
  EXPECT_EQ(mem.effective_budget(), 500u);
  // The squeeze pushes the ledger past the *effective* line without any
  // new charge; the consumer sees the overage and must evict it.
  EXPECT_EQ(mem.overage(1), 300u);
  EXPECT_FALSE(mem.try_charge(1, MemComponent::kFecParity, 1));
  mem.uncharge(1, MemComponent::kFecParity, 300);
  EXPECT_EQ(mem.overage(1), 0u);
  mem.set_squeeze(0.0);
  EXPECT_TRUE(mem.try_charge(1, MemComponent::kFecParity, 400));
  // The full budget still held throughout the squeeze.
  EXPECT_LE(mem.peak_any_host(), 1000u);
}

TEST(MemAccountant, ZeroBudgetZeroProbRefusesNothingAndDrawsNothing) {
  MemAccountant mem(0, 7);
  const std::uint64_t digest0 = mem.rng_digest();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(mem.try_charge(3, MemComponent::kReassembly, 10000));
    EXPECT_TRUE(mem.admit(3, 1 << 20));
  }
  EXPECT_EQ(mem.counters().alloc_fails, 0u);
  // The determinism contract: no fault window armed, no RNG consumed.
  EXPECT_EQ(mem.rng_digest(), digest0);
}

TEST(MemAccountant, AllocFailProbIsSeededAndDeterministic) {
  const auto refusals = [] {
    MemAccountant mem(0, 99);
    mem.set_alloc_fail_prob(0.3);
    std::uint64_t n = 0;
    for (int i = 0; i < 1000; ++i) n += mem.admit(5, 100) ? 0 : 1;
    return n;
  };
  const std::uint64_t a = refusals();
  EXPECT_EQ(a, refusals());
  EXPECT_GT(a, 200u);
  EXPECT_LT(a, 400u);
}

// --- harness-level degradation scenarios ------------------------------

Scenario mem_scenario(int receivers, std::uint64_t file_bytes,
                      std::uint64_t budget, std::uint64_t seed) {
  harness::Workload wl;
  wl.file_bytes = file_bytes;
  Scenario sc = harness::lan_scenario(receivers, 10e6, 256 << 10, wl, seed);
  sc.mem_budget = budget;
  sc.time_limit = sim::seconds(600);
  return sc;
}

TEST(MemPressure, BudgetedRunIsDeterministicAndBudgetSafe) {
  Scenario sc = mem_scenario(2, 128 * 1024, 96 * 1024, 11);
  sc.topo.groups[0].loss_rate = 0.02;
  const RunResult a = harness::run_transfer(sc);
  const RunResult b = harness::run_transfer(sc);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.rng_digest, b.rng_digest);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.mem_peak_bytes, b.mem_peak_bytes);
  EXPECT_EQ(a.mem_alloc_fails, b.mem_alloc_fails);
  // The by-construction bound the chaos oracle also asserts.
  EXPECT_LE(a.mem_peak_bytes, sc.mem_budget);
  EXPECT_GT(a.mem_peak_bytes, 0u);
}

TEST(MemPressure, AllocFailDuringUrgJoinResync) {
  // A receiver late-joins the live stream (URG resync path) while a
  // GFP_ATOMIC-style alloc-failure window is refusing a fifth of all
  // charges and rx admissions. Refusals degrade to drops and re-NAKs;
  // the joiner must still anchor and complete the tail.
  Scenario sc = mem_scenario(2, 256 * 1024, 0, 21);
  sc.churn.push_back(
      harness::ChurnEvent{sim::milliseconds(150), 1, /*join=*/true});
  sc.faults.alloc_fail(0, sim::milliseconds(120), 0.2);
  sc.faults.alloc_fail_stop(0, sim::milliseconds(450));
  const RunResult r = harness::run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_GT(r.mem_alloc_fails, 0u);
}

TEST(MemPressure, RepairerDeathFailoverWithByteBoundCache) {
  // Hierarchical repair with the payload cache bounded by *bytes* far
  // below the stream size: the repairer serves children from an LRU it
  // is constantly evicting, then dies mid-stream. Children fail over
  // to the sender and the subtree still delivers.
  Scenario sc = mem_scenario(3, 256 * 1024, 0, 31);
  sc.topo.groups[0].loss_rate = 0.02;
  sc.hierarchy.enabled = true;
  sc.proto.repair_cache_bytes = 16 * 1024;
  sc.faults.crash(0, sim::milliseconds(250));
  sc.faults.restart(0, sim::milliseconds(500));
  const RunResult r = harness::run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.any_stream_error);
  // The byte cap actually evicted (the packet-count cap alone would
  // never trip at this stream size).
  EXPECT_GT(r.receivers_total.repair_cache_evictions, 0u);
}

TEST(MemPressure, FecGroupsFallBackToSelectiveRepeatUnderOom) {
  // FEC enabled under a starved budget: cache charges for data shards
  // and parity rows get refused, decode becomes impossible for some
  // groups, and recovery must fall back to plain selective repeat —
  // degraded, never wrong.
  Scenario sc = mem_scenario(2, 256 * 1024, 24 * 1024, 41);
  sc.topo.groups[0].loss_rate = 0.03;
  sc.proto.fec_group = 8;
  sc.proto.fec_parity_min = 1;
  sc.proto.fec_parity_max = 1;
  const RunResult r = harness::run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.any_stream_error);
  // The degradation signal: under this budget the sender's own ledger
  // refuses parity charges, so FEC visibly gave way (skipped rows at
  // the sender, or starved groups at receivers that still got some).
  EXPECT_GT(r.sender.fec_parity_skipped +
                r.receivers_total.fec_decode_failures +
                r.receivers_total.fec_evictions,
            0u);
  EXPECT_GT(r.mem_alloc_fails, 0u);
  EXPECT_LE(r.mem_peak_bytes, sc.mem_budget);
}

TEST(MemPressure, SqueezeWindowEvictsAndRecovers) {
  // A shrinker squeeze drops the effective budget 90% mid-stream: the
  // receivers' caches must drain to the squeezed watermark (evictions,
  // re-NAKs) and refill after the window closes, completing the run.
  Scenario sc = mem_scenario(2, 256 * 1024, 128 * 1024, 51);
  sc.topo.groups[0].loss_rate = 0.03;
  sc.proto.fec_group = 8;
  sc.proto.fec_parity_min = 1;
  sc.proto.fec_parity_max = 1;
  sc.faults.mem_pressure(0, sim::milliseconds(150), 0.9);
  sc.faults.mem_pressure_stop(0, sim::milliseconds(600));
  const RunResult r = harness::run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_GT(r.mem_alloc_fails + r.mem_cache_evictions, 0u);
  EXPECT_LE(r.mem_peak_bytes, sc.mem_budget);
}

TEST(MemPressure, TraceBudgetInvariantHolds) {
  // Invariant 4: every kAllocFail / kCacheEvict record carries the
  // emitting host's ledger live bytes, and none may exceed the budget.
  Scenario sc = mem_scenario(2, 128 * 1024, 48 * 1024, 61);
  sc.topo.groups[0].loss_rate = 0.02;
  sc.trace.enabled = true;
  const RunResult r = harness::run_transfer(sc);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.trace_dropped, 0u);
  trace::VerifyOptions opt;
  opt.mem_budget = sc.mem_budget;
  const trace::VerifyResult v = trace::verify(r.trace_records, opt);
  EXPECT_TRUE(v.ok) << (v.violations.empty() ? std::string()
                                             : v.violations.front());
  // The pass actually checked something: pressure emitted records.
  EXPECT_GT(v.mem_checked, 0u);
}

// --- chaos integration -------------------------------------------------

TEST(MemPressure, MemSpecSerializeParseRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const harness::ChaosSpec s = harness::generate_mem_spec(seed);
    EXPECT_GT(s.mem_budget, 0u) << "seed=" << seed;
    const std::string text = harness::serialize_spec(s);
    const auto back = harness::parse_spec(text);
    ASSERT_TRUE(back.has_value()) << "seed=" << seed;
    EXPECT_EQ(back->mem_budget, s.mem_budget) << "seed=" << seed;
    EXPECT_EQ(harness::serialize_spec(*back), text) << "seed=" << seed;
  }
}

TEST(MemPressure, PinnedMemChaosSeedBlockPassesOracle) {
  // A slice of the CI mem-chaos block (chaos --mem): every seed runs
  // with a per-host budget plus squeeze / alloc-fail windows, and the
  // oracle adds the budget invariant to its usual reliability checks.
  const auto outcomes = harness::sweep(1, 60, 0, /*mem=*/true);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.verdict.ok)
        << "seed " << o.seed << ": " << o.verdict.failure;
  }
}

}  // namespace
}  // namespace hrmc
