#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hrmc::sim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanMinMax) {
  OnlineStats s;
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.8);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 14.0);
}

TEST(OnlineStats, VarianceMatchesTwoPass) {
  OnlineStats s;
  const double xs[] = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) s.add(x);
  // Sample variance of the classic dataset = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(OnlineStats, ResetClears) {
  OnlineStats s;
  s.add(10);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, CountsAndPercentiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(90), 90.0, 1.5);
  EXPECT_NEAR(h.percentile(0), 0.5, 1.0);
}

TEST(Histogram, UnderAndOverflowBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(15.0);
  h.add(5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(CounterSet, IncrementAndQuery) {
  CounterSet c;
  EXPECT_EQ(c.get("missing"), 0u);
  c.inc("a");
  c.inc("a", 4);
  c.inc("b");
  EXPECT_EQ(c.get("a"), 5u);
  EXPECT_EQ(c.get("b"), 1u);
  EXPECT_EQ(c.all().size(), 2u);
  c.reset();
  EXPECT_EQ(c.get("a"), 0u);
}

}  // namespace
}  // namespace hrmc::sim
