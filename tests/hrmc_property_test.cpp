// Randomized property tests: the reassembly machinery and the NAK list
// are checked against brute-force reference models under adversarial
// packet arrival orders (loss, duplication, reordering, fragmentation).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "app/pattern.hpp"
#include "hrmc/nak_list.hpp"
#include "hrmc/receiver.hpp"
#include "hrmc/wire.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"

namespace hrmc::proto {
namespace {

// ---------------------------------------------------------------------
// NakList vs. a brute-force set-of-bytes model
// ---------------------------------------------------------------------

class NakListModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NakListModelTest, MatchesSetModelUnderRandomOps) {
  sim::Rng rng(GetParam());
  NakList list;
  std::set<kern::Seq> missing;  // byte-granular reference model
  const kern::Seq base = 1000;
  const kern::Seq space = 3000;

  for (int step = 0; step < 400; ++step) {
    const kern::Seq a =
        base + static_cast<kern::Seq>(rng.uniform_int(0, space));
    const kern::Seq b =
        a + static_cast<kern::Seq>(rng.uniform_int(1, 200));
    switch (rng.uniform_int(0, 2)) {
      case 0: {  // a gap is discovered
        auto fresh = list.add_gap(a, b, sim::milliseconds(step));
        // Model: all bytes in [a,b) become missing; `fresh` must cover
        // exactly the bytes that were not already tracked.
        std::set<kern::Seq> fresh_bytes;
        for (const NakRange& r : fresh) {
          for (kern::Seq s = r.from; s != r.to; ++s) {
            EXPECT_TRUE(fresh_bytes.insert(s).second)
                << "fresh ranges overlap";
          }
        }
        for (kern::Seq s = a; s != b; ++s) {
          const bool was_missing = missing.count(s) > 0;
          EXPECT_EQ(fresh_bytes.count(s) > 0, !was_missing)
              << "byte " << s << " fresh-tracking mismatch";
          missing.insert(s);
        }
        break;
      }
      case 1: {  // data [a,b) arrives
        list.fill(a, b);
        for (kern::Seq s = a; s != b; ++s) missing.erase(s);
        break;
      }
      case 2: {  // cumulative progress through a
        list.ack_through(a);
        for (auto it = missing.begin(); it != missing.end();) {
          if (kern::seq_before(*it, a)) {
            it = missing.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
    }
    // Invariant: the list's ranges cover exactly the model's bytes.
    std::set<kern::Seq> listed;
    for (const NakRange& r : list.ranges()) {
      EXPECT_TRUE(kern::seq_before(r.from, r.to));
      for (kern::Seq s = r.from; s != r.to; ++s) {
        EXPECT_TRUE(listed.insert(s).second) << "ranges overlap";
      }
    }
    ASSERT_EQ(listed, missing) << "divergence at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NakListModelTest,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Receiver reassembly under adversarial delivery
// ---------------------------------------------------------------------

constexpr net::Addr kGroup = net::make_addr(224, 7, 7, 7);
constexpr net::Port kPort = 7500;

struct ReassemblyCase {
  std::uint64_t seed;
  double drop;       ///< probability a packet copy is withheld (1st pass)
  double duplicate;  ///< probability a packet is delivered twice
  bool shuffle;
};

class ReassemblyTest : public ::testing::TestWithParam<ReassemblyCase> {};

TEST_P(ReassemblyTest, StreamSurvivesReorderDuplicationAndRetransmit) {
  const ReassemblyCase& pc = GetParam();
  sim::Rng rng(pc.seed);

  sim::Scheduler sched;
  net::TopologyConfig tcfg;
  tcfg.seed = pc.seed;
  tcfg.groups = {net::group_a(1)};
  tcfg.groups[0].loss_rate = 0.0;
  net::Topology topo(sched, tcfg);

  Config cfg;
  cfg.rcvbuf = 1 << 20;
  HrmcReceiver rcv(topo.receiver(0), cfg, net::Endpoint{kGroup, kPort},
                   topo.sender().addr());
  rcv.open();

  // Build a stream of irregularly sized packets (1..1460 bytes).
  const std::uint64_t total = 96 * 1024;
  struct Pkt {
    kern::Seq seq;
    std::uint32_t len;
    bool fin;
  };
  std::vector<Pkt> pkts;
  std::uint64_t off = 0;
  while (off < total) {
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(rng.uniform_int(1, 1460), total - off));
    pkts.push_back(Pkt{Config::kInitialSeq + static_cast<kern::Seq>(off),
                       len, off + len == total});
    off += len;
  }

  auto deliver = [&](const Pkt& p) {
    auto skb = kern::SkBuff::alloc(p.len, Header::kSize + 44);
    app::pattern_fill({skb->put(p.len), p.len}, p.seq - Config::kInitialSeq);
    Header h;
    h.sport = kPort;
    h.dport = kPort;
    h.seq = p.seq;
    h.length = p.len;
    h.tries = 1;
    h.type = PacketType::kData;
    h.fin = p.fin;
    write_header(*skb, h);
    skb->daddr = kGroup;
    skb->protocol = kIpProtoHrmc;
    topo.sender().send(std::move(skb));
  };

  // First pass: shuffled, with drops and duplicates. Deliveries are
  // spaced out so the sender-side device queue (finite, as everywhere
  // in this repository) is not the thing under test.
  std::vector<Pkt> first = pkts;
  if (pc.shuffle) std::shuffle(first.begin(), first.end(), rng);
  std::vector<Pkt> withheld;
  sim::SimTime at = sim::milliseconds(1);
  for (const Pkt& p : first) {
    if (rng.chance(pc.drop)) {
      withheld.push_back(p);
      continue;
    }
    sched.schedule_at(at, [&deliver, p] { deliver(p); });
    at += sim::milliseconds(2);
    if (rng.chance(pc.duplicate)) {
      sched.schedule_at(at, [&deliver, p] { deliver(p); });
      at += sim::milliseconds(2);
    }
  }
  sched.run_until(at + sim::milliseconds(200));

  // Second pass ("retransmissions"): everything withheld, shuffled.
  std::shuffle(withheld.begin(), withheld.end(), rng);
  at = sched.now();
  for (const Pkt& p : withheld) {
    sched.schedule_at(at, [&deliver, p] { deliver(p); });
    at += sim::milliseconds(2);
  }
  sched.run_until(at + sim::milliseconds(200));

  ASSERT_TRUE(rcv.complete())
      << "rcv_nxt=" << rcv.rcv_nxt() << " of " << total;
  std::vector<std::uint8_t> out(total);
  ASSERT_EQ(rcv.recv(out), total);
  EXPECT_EQ(app::pattern_verify(out, 0), total);
  EXPECT_TRUE(rcv.eof());
  rcv.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Adversarial, ReassemblyTest,
    ::testing::Values(ReassemblyCase{11, 0.0, 0.0, false},
                      ReassemblyCase{12, 0.0, 0.0, true},
                      ReassemblyCase{13, 0.2, 0.0, true},
                      ReassemblyCase{14, 0.0, 0.3, true},
                      ReassemblyCase{15, 0.3, 0.3, true},
                      ReassemblyCase{16, 0.5, 0.1, true},
                      ReassemblyCase{17, 0.1, 0.5, false}),
    [](const ::testing::TestParamInfo<ReassemblyCase>& info) {
      const auto& p = info.param;
      return "seed" + std::to_string(p.seed) + "_drop" +
             std::to_string(static_cast<int>(p.drop * 100)) + "_dup" +
             std::to_string(static_cast<int>(p.duplicate * 100)) +
             (p.shuffle ? "_shuf" : "_ord");
    });

// ---------------------------------------------------------------------
// Fuzz: arbitrary bytes must never crash the receiver
// ---------------------------------------------------------------------

class RxFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RxFuzzTest, GarbageAndTruncatedPacketsAreRejectedSafely) {
  sim::Rng rng(GetParam());
  sim::Scheduler sched;
  net::TopologyConfig tcfg;
  tcfg.seed = GetParam();
  tcfg.groups = {net::group_a(1)};
  net::Topology topo(sched, tcfg);
  Config cfg;
  HrmcReceiver rcv(topo.receiver(0), cfg, net::Endpoint{kGroup, kPort},
                   topo.sender().addr());
  rcv.open();

  for (int i = 0; i < 500; ++i) {
    // Spaced out so the finite device queue forwards every packet.
    sched.schedule_at(sim::milliseconds(i), [&topo, &rng] {
      const std::size_t len =
          static_cast<std::size_t>(rng.uniform_int(0, 120));
      auto skb = kern::SkBuff::alloc(len, 64);
      std::uint8_t* p = skb->put(len);
      for (std::size_t j = 0; j < len; ++j) {
        p[j] = static_cast<std::uint8_t>(rng.next_u64());
      }
      skb->daddr = kGroup;
      skb->protocol = kIpProtoHrmc;
      topo.sender().send(std::move(skb));
    });
  }
  sched.run_until(sched.now() + sim::seconds(2));
  // Everything must have been counted and rejected (the odds that 500
  // random packets produce even one valid checksum are ~500/65536).
  EXPECT_GE(rcv.stats().bad_packets, 495u);
  EXPECT_EQ(rcv.stats().data_bytes_received, 0u);
  EXPECT_EQ(rcv.available(), 0u);
  rcv.stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RxFuzzTest,
                         ::testing::Range<std::uint64_t>(100, 104));

}  // namespace
}  // namespace hrmc::proto
