// Property-based reliability sweep: the core invariant of H-RMC — every
// receiver reconstructs exactly the transmitted byte stream, for any
// loss rate, buffer size, receiver population and seed — exercised as a
// parameterized matrix. RMC mode is additionally checked for its
// *documented* weaker property: either the stream arrives intact or the
// application is told about the hole (NAK_ERR), never silent corruption.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/scenario.hpp"

namespace hrmc::harness {
namespace {

struct Params {
  double loss_rate;
  std::size_t buf;
  int receivers;
  std::uint64_t seed;
};

class ReliabilitySweep : public ::testing::TestWithParam<Params> {};

TEST_P(ReliabilitySweep, StreamIntegrityUnderLoss) {
  const Params p = GetParam();
  Workload wl;
  wl.file_bytes = 192 * 1024;
  Scenario sc = lan_scenario(p.receivers, 10e6, p.buf, wl, p.seed);
  sc.topo.groups[0].loss_rate = p.loss_rate;
  sc.time_limit = sim::seconds(1200);
  RunResult r = run_transfer(sc);
  ASSERT_TRUE(r.completed)
      << "loss=" << p.loss_rate << " buf=" << p.buf << " n=" << p.receivers
      << " seed=" << p.seed;
  EXPECT_TRUE(r.sender_finished);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_EQ(r.receivers_total.bytes_delivered,
            wl.file_bytes * static_cast<std::uint64_t>(p.receivers));
  EXPECT_EQ(r.sender.nak_errs_sent, 0u)
      << "H-RMC must never release data a receiver still needs";
}

INSTANTIATE_TEST_SUITE_P(
    LossBufferMatrix, ReliabilitySweep,
    ::testing::Values(
        Params{0.0, 64 << 10, 1, 101}, Params{0.0, 256 << 10, 3, 102},
        Params{0.001, 64 << 10, 2, 103}, Params{0.001, 512 << 10, 3, 104},
        Params{0.01, 64 << 10, 1, 105}, Params{0.01, 128 << 10, 3, 106},
        Params{0.02, 256 << 10, 2, 107}, Params{0.05, 128 << 10, 2, 108},
        Params{0.02, 64 << 10, 3, 109}, Params{0.01, 1024 << 10, 2, 110}),
    [](const ::testing::TestParamInfo<Params>& info) {
      const Params& p = info.param;
      return "loss" + std::to_string(static_cast<int>(p.loss_rate * 1000)) +
             "_buf" + std::to_string(p.buf >> 10) + "k_n" +
             std::to_string(p.receivers) + "_s" + std::to_string(p.seed);
    });

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, WanMixReliableForAnySeed) {
  Workload wl;
  wl.file_bytes = 96 * 1024;
  Scenario sc = test_case_scenario(5, 5, 10e6, 128 << 10, wl, GetParam());
  sc.time_limit = sim::seconds(1200);
  RunResult r = run_transfer(sc);
  ASSERT_TRUE(r.completed) << "seed " << GetParam();
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

class RmcModeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RmcModeSweep, RmcNeverSilentlyCorrupts) {
  Workload wl;
  wl.file_bytes = 96 * 1024;
  Scenario sc = lan_scenario(2, 10e6, 64 << 10, wl, GetParam());
  sc.proto.mode = proto::Mode::kRmc;
  sc.topo.groups[0].loss_rate = 0.02;
  sc.time_limit = sim::seconds(600);
  RunResult r = run_transfer(sc);
  // RMC may or may not lose the race between NAKs and buffer release;
  // either way the data the application *did* get matches the pattern,
  // and any hole was explicitly reported.
  EXPECT_TRUE(r.verify_ok);
  if (!r.completed) {
    EXPECT_TRUE(r.any_stream_error || r.sender.nak_errs_sent > 0)
        << "incomplete RMC transfer must be accompanied by NAK_ERR";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmcModeSweep,
                         ::testing::Range<std::uint64_t>(40, 46));

class ExtensionSweep
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(ExtensionSweep, OptionalFeaturesPreserveReliability) {
  const auto [early_probe, mcast_probe, fixed_update] = GetParam();
  Workload wl;
  wl.file_bytes = 128 * 1024;
  Scenario sc = lan_scenario(3, 10e6, 128 << 10, wl, 77);
  sc.topo.groups[0].loss_rate = 0.01;
  if (early_probe) sc.proto.early_probe_rtts = 2;
  if (mcast_probe) sc.proto.mcast_probe_threshold = 1;
  if (fixed_update) sc.proto.dynamic_update_timer = false;
  sc.time_limit = sim::seconds(1200);
  RunResult r = run_transfer(sc);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
}

INSTANTIATE_TEST_SUITE_P(FeatureMatrix, ExtensionSweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

}  // namespace
}  // namespace hrmc::harness
