#include "kern/skbuff.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hrmc::kern {
namespace {

TEST(SkBuff, AllocReservesHeadroom) {
  auto skb = SkBuff::alloc(100, 32);
  EXPECT_EQ(skb->size(), 0u);
  EXPECT_EQ(skb->headroom(), 32u);
  EXPECT_EQ(skb->tailroom(), 100u);
}

TEST(SkBuff, PutExtendsTail) {
  auto skb = SkBuff::alloc(100);
  std::uint8_t* p = skb->put(10);
  std::iota(p, p + 10, 0);
  EXPECT_EQ(skb->size(), 10u);
  EXPECT_EQ(skb->data()[9], 9);
}

TEST(SkBuff, PushConsumesHeadroom) {
  auto skb = SkBuff::alloc(100, 20);
  skb->put(5);
  std::uint8_t* hdr = skb->push(8);
  EXPECT_EQ(hdr, skb->data());
  EXPECT_EQ(skb->size(), 13u);
  EXPECT_EQ(skb->headroom(), 12u);
}

TEST(SkBuff, PushBeyondHeadroomThrows) {
  auto skb = SkBuff::alloc(10, 4);
  EXPECT_THROW(skb->push(5), std::logic_error);
}

TEST(SkBuff, PullRemovesFront) {
  auto skb = SkBuff::alloc(100);
  std::uint8_t* p = skb->put(10);
  std::iota(p, p + 10, 0);
  skb->pull(4);
  EXPECT_EQ(skb->size(), 6u);
  EXPECT_EQ(skb->data()[0], 4);
}

TEST(SkBuff, PullPastEndThrows) {
  auto skb = SkBuff::alloc(10);
  skb->put(3);
  EXPECT_THROW(skb->pull(4), std::logic_error);
}

TEST(SkBuff, TrimShrinks) {
  auto skb = SkBuff::alloc(10);
  skb->put(8);
  skb->trim(5);
  EXPECT_EQ(skb->size(), 5u);
  EXPECT_THROW(skb->trim(9), std::logic_error);
}

TEST(SkBuff, CloneSharesUntilWritten) {
  auto skb = SkBuff::alloc(10);
  skb->put(4)[0] = 7;
  skb->saddr = 0x0a000001;
  auto copy = skb->clone();
  EXPECT_TRUE(skb->shared());
  EXPECT_TRUE(copy->shared());
  EXPECT_EQ(copy->data(), skb->data());  // same block: O(1) clone
  EXPECT_EQ(copy->saddr, 0x0a000001u);
  // First write through either view copies; the other is untouched.
  copy->mutable_bytes()[0] = 99;
  EXPECT_FALSE(copy->shared());
  EXPECT_FALSE(skb->shared());
  EXPECT_EQ(skb->data()[0], 7);
  EXPECT_EQ(copy->data()[0], 99);
}

TEST(SkBuff, CloneThenMutateOriginalLeavesCloneIntact) {
  auto skb = SkBuff::alloc(16);
  auto* p = skb->put(4);
  p[0] = 1; p[1] = 2; p[2] = 3; p[3] = 4;
  auto copy = skb->clone();
  skb->mutable_bytes()[2] = 77;  // COW triggers on the *original* too
  EXPECT_EQ(copy->data()[2], 3);
  EXPECT_EQ(skb->data()[2], 77);
}

TEST(SkBuff, HeadroomPushAfterCloneIsIsolated) {
  auto skb = SkBuff::alloc(10, 8);
  auto* p = skb->put(3);
  p[0] = 10; p[1] = 11; p[2] = 12;
  auto copy = skb->clone();
  // Pushing a header on the clone must not scribble on headroom bytes
  // the original's future push would also cover.
  std::uint8_t* hdr = copy->push(4);
  hdr[0] = 0xAA; hdr[1] = 0xBB; hdr[2] = 0xCC; hdr[3] = 0xDD;
  EXPECT_EQ(copy->size(), 7u);
  EXPECT_EQ(copy->headroom(), 4u);
  std::uint8_t* ohdr = skb->push(4);
  ohdr[0] = 1; ohdr[1] = 2; ohdr[2] = 3; ohdr[3] = 4;
  EXPECT_EQ(copy->data()[0], 0xAA);
  EXPECT_EQ(skb->data()[0], 1);
  // Payload bytes behind both headers survived the copy.
  EXPECT_EQ(copy->data()[4], 10);
  EXPECT_EQ(skb->data()[4], 10);
}

TEST(SkBuff, PullAndTrimAreViewOnlyOnClones) {
  skbuff_stats_reset();
  auto skb = SkBuff::alloc(100);
  skb->put(50);
  auto copy = skb->clone();
  copy->pull(10);  // skb_pull on a clone: offsets move, no copy
  copy->trim(20);
  EXPECT_EQ(skbuff_stats().cow_copies, 0u);
  EXPECT_TRUE(copy->shared());
  EXPECT_EQ(copy->size(), 20u);
  EXPECT_EQ(skb->size(), 50u);  // original view untouched
}

TEST(SkBuff, PutAfterCloneCopiesBeforeExtending) {
  auto skb = SkBuff::alloc(20);
  skb->put(4)[0] = 5;
  auto copy = skb->clone();
  std::uint8_t* tail = copy->put(4);
  tail[0] = 9;
  EXPECT_FALSE(copy->shared());
  EXPECT_EQ(copy->size(), 8u);
  EXPECT_EQ(skb->size(), 4u);
  EXPECT_EQ(copy->data()[0], 5);  // prefix survived the COW copy
}

TEST(SkBuff, PoolRecyclingDoesNotLeakMetadataOrBytes) {
  skbuff_pool_trim();
  skbuff_stats_reset();
  const std::uint8_t* old_block;
  {
    auto skb = SkBuff::alloc(64, 16);
    skb->put(8);
    skb->serial = 0xdeadbeef;
    skb->stamp = 12345;
    skb->saddr = 0x0a000001;
    skb->ttl = 3;
    old_block = skb->data() - skb->headroom();
  }
  // The block goes back to the pool and the next same-class alloc
  // recycles it — with pristine view state and metadata.
  auto fresh = SkBuff::alloc(64, 16);
  EXPECT_EQ(skbuff_stats().pool_hits, 1u);
  EXPECT_EQ(fresh->data() - fresh->headroom(), old_block);
  EXPECT_EQ(fresh->size(), 0u);
  EXPECT_EQ(fresh->headroom(), 16u);
  EXPECT_EQ(fresh->serial, 0u);
  EXPECT_EQ(fresh->stamp, 0);
  EXPECT_EQ(fresh->saddr, 0u);
  EXPECT_EQ(fresh->ttl, 64);
}

TEST(SkBuff, PoolClassRoundingIsInvisible) {
  // A 100-byte request is served from a larger class, but tailroom must
  // behave exactly as if 100 bytes had been allocated.
  auto skb = SkBuff::alloc(90, 10);
  EXPECT_EQ(skb->tailroom(), 90u);
  skb->put(90);
  EXPECT_EQ(skb->tailroom(), 0u);
  EXPECT_THROW(skb->put(1), std::logic_error);
}

TEST(SkBuff, OversizeAllocationsBypassThePool) {
  skbuff_pool_trim();
  skbuff_stats_reset();
  { auto big = SkBuff::alloc(64 * 1024); big->put(100); }
  EXPECT_EQ(skbuff_pool_cached(), 0u);  // not cached on release
  auto again = SkBuff::alloc(64 * 1024);
  EXPECT_EQ(skbuff_stats().pool_hits, 0u);
  EXPECT_EQ(skbuff_stats().block_allocs, 2u);
}

TEST(SkBuff, SharedBlockReleasesOnlyWhenLastViewDies) {
  skbuff_pool_trim();
  auto skb = SkBuff::alloc(32);
  skb->put(4);
  auto copy = skb->clone();
  skb.reset();
  EXPECT_EQ(skbuff_pool_cached(), 0u);  // copy still holds the block
  copy.reset();
  EXPECT_EQ(skbuff_pool_cached(), 1u);
}

TEST(SkBuff, WireSizeAddsFraming) {
  auto skb = SkBuff::alloc(100);
  skb->put(60);
  EXPECT_EQ(skb->wire_size(), 60u + SkBuff::kLowerLayerBytes);
}

TEST(SkBuffQueue, FifoOrderAndByteAccounting) {
  SkBuffQueue q;
  EXPECT_TRUE(q.empty());
  for (std::size_t n : {3u, 5u, 7u}) {
    auto skb = SkBuff::alloc(10);
    skb->put(n);
    q.push_back(std::move(skb));
  }
  EXPECT_EQ(q.packets(), 3u);
  EXPECT_EQ(q.bytes(), 15u);
  EXPECT_EQ(q.pop_front()->size(), 3u);
  EXPECT_EQ(q.bytes(), 12u);
  EXPECT_EQ(q.pop_front()->size(), 5u);
  EXPECT_EQ(q.pop_front()->size(), 7u);
  EXPECT_EQ(q.pop_front(), nullptr);
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(SkBuffQueue, PushFrontAndEraseMaintainBytes) {
  SkBuffQueue q;
  auto a = SkBuff::alloc(10); a->put(2);
  auto b = SkBuff::alloc(10); b->put(4);
  q.push_back(std::move(a));
  q.push_front(std::move(b));
  EXPECT_EQ(q.front()->size(), 4u);
  EXPECT_EQ(q.bytes(), 6u);
  q.erase(q.begin());
  EXPECT_EQ(q.bytes(), 2u);
  q.clear();
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(SkBuffQueue, InsertMidQueue) {
  SkBuffQueue q;
  auto a = SkBuff::alloc(10); a->put(1);
  auto c = SkBuff::alloc(10); c->put(3);
  q.push_back(std::move(a));
  q.push_back(std::move(c));
  auto b = SkBuff::alloc(10); b->put(2);
  q.insert(q.begin() + 1, std::move(b));
  EXPECT_EQ(q.bytes(), 6u);
  std::size_t expect = 1;
  for (const auto& skb : q) EXPECT_EQ(skb->size(), expect++);
}

}  // namespace
}  // namespace hrmc::kern
