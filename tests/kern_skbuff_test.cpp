#include "kern/skbuff.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hrmc::kern {
namespace {

TEST(SkBuff, AllocReservesHeadroom) {
  auto skb = SkBuff::alloc(100, 32);
  EXPECT_EQ(skb->size(), 0u);
  EXPECT_EQ(skb->headroom(), 32u);
  EXPECT_EQ(skb->tailroom(), 100u);
}

TEST(SkBuff, PutExtendsTail) {
  auto skb = SkBuff::alloc(100);
  std::uint8_t* p = skb->put(10);
  std::iota(p, p + 10, 0);
  EXPECT_EQ(skb->size(), 10u);
  EXPECT_EQ(skb->data()[9], 9);
}

TEST(SkBuff, PushConsumesHeadroom) {
  auto skb = SkBuff::alloc(100, 20);
  skb->put(5);
  std::uint8_t* hdr = skb->push(8);
  EXPECT_EQ(hdr, skb->data());
  EXPECT_EQ(skb->size(), 13u);
  EXPECT_EQ(skb->headroom(), 12u);
}

TEST(SkBuff, PushBeyondHeadroomThrows) {
  auto skb = SkBuff::alloc(10, 4);
  EXPECT_THROW(skb->push(5), std::logic_error);
}

TEST(SkBuff, PullRemovesFront) {
  auto skb = SkBuff::alloc(100);
  std::uint8_t* p = skb->put(10);
  std::iota(p, p + 10, 0);
  skb->pull(4);
  EXPECT_EQ(skb->size(), 6u);
  EXPECT_EQ(skb->data()[0], 4);
}

TEST(SkBuff, PullPastEndThrows) {
  auto skb = SkBuff::alloc(10);
  skb->put(3);
  EXPECT_THROW(skb->pull(4), std::logic_error);
}

TEST(SkBuff, TrimShrinks) {
  auto skb = SkBuff::alloc(10);
  skb->put(8);
  skb->trim(5);
  EXPECT_EQ(skb->size(), 5u);
  EXPECT_THROW(skb->trim(9), std::logic_error);
}

TEST(SkBuff, CloneIsDeep) {
  auto skb = SkBuff::alloc(10);
  skb->put(4)[0] = 7;
  skb->saddr = 0x0a000001;
  auto copy = skb->clone();
  copy->data()[0] = 99;
  EXPECT_EQ(skb->data()[0], 7);
  EXPECT_EQ(copy->saddr, 0x0a000001u);
}

TEST(SkBuff, WireSizeAddsFraming) {
  auto skb = SkBuff::alloc(100);
  skb->put(60);
  EXPECT_EQ(skb->wire_size(), 60u + SkBuff::kLowerLayerBytes);
}

TEST(SkBuffQueue, FifoOrderAndByteAccounting) {
  SkBuffQueue q;
  EXPECT_TRUE(q.empty());
  for (std::size_t n : {3u, 5u, 7u}) {
    auto skb = SkBuff::alloc(10);
    skb->put(n);
    q.push_back(std::move(skb));
  }
  EXPECT_EQ(q.packets(), 3u);
  EXPECT_EQ(q.bytes(), 15u);
  EXPECT_EQ(q.pop_front()->size(), 3u);
  EXPECT_EQ(q.bytes(), 12u);
  EXPECT_EQ(q.pop_front()->size(), 5u);
  EXPECT_EQ(q.pop_front()->size(), 7u);
  EXPECT_EQ(q.pop_front(), nullptr);
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(SkBuffQueue, PushFrontAndEraseMaintainBytes) {
  SkBuffQueue q;
  auto a = SkBuff::alloc(10); a->put(2);
  auto b = SkBuff::alloc(10); b->put(4);
  q.push_back(std::move(a));
  q.push_front(std::move(b));
  EXPECT_EQ(q.front()->size(), 4u);
  EXPECT_EQ(q.bytes(), 6u);
  q.erase(q.begin());
  EXPECT_EQ(q.bytes(), 2u);
  q.clear();
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(SkBuffQueue, InsertMidQueue) {
  SkBuffQueue q;
  auto a = SkBuff::alloc(10); a->put(1);
  auto c = SkBuff::alloc(10); c->put(3);
  q.push_back(std::move(a));
  q.push_back(std::move(c));
  auto b = SkBuff::alloc(10); b->put(2);
  q.insert(q.begin() + 1, std::move(b));
  EXPECT_EQ(q.bytes(), 6u);
  std::size_t expect = 1;
  for (const auto& skb : q) EXPECT_EQ(skb->size(), expect++);
}

}  // namespace
}  // namespace hrmc::kern
