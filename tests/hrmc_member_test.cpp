#include "hrmc/member.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/random.hpp"

namespace hrmc::proto {
namespace {

TEST(MemberTable, AddFindRemove) {
  MemberTable t;
  EXPECT_TRUE(t.empty());
  McMember* m = t.add(net::make_addr(10, 1, 0, 1), 100);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(net::make_addr(10, 1, 0, 1)), m);
  EXPECT_EQ(m->next_expected, 100u);
  EXPECT_TRUE(t.remove(net::make_addr(10, 1, 0, 1)));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(net::make_addr(10, 1, 0, 1)), nullptr);
}

TEST(MemberTable, DuplicateAddReturnsExisting) {
  MemberTable t;
  McMember* a = t.add(net::make_addr(10, 1, 0, 1), 100);
  McMember* b = t.add(net::make_addr(10, 1, 0, 1), 999);
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(a->next_expected, 100u);  // untouched
}

TEST(MemberTable, RemoveMissingReturnsFalse) {
  MemberTable t;
  EXPECT_FALSE(t.remove(net::make_addr(10, 9, 9, 9)));
}

TEST(MemberTable, ForEachVisitsAll) {
  MemberTable t;
  std::set<net::Addr> added;
  for (unsigned i = 1; i <= 200; ++i) {
    const net::Addr a = net::make_addr(10, 1, i / 250, i % 250 + 1);
    t.add(a, i);
    added.insert(a);
  }
  std::set<net::Addr> seen;
  t.for_each([&](McMember& m) { seen.insert(m.addr); });
  EXPECT_EQ(seen, added);
}

TEST(MemberTable, HashChainsSurviveCollisions) {
  // 200 members necessarily collide in 64 buckets; lookups must all work.
  MemberTable t;
  for (unsigned i = 1; i <= 200; ++i) {
    t.add(net::make_addr(10, 1, i / 250, i % 250 + 1), i);
  }
  for (unsigned i = 1; i <= 200; ++i) {
    McMember* m = t.find(net::make_addr(10, 1, i / 250, i % 250 + 1));
    ASSERT_NE(m, nullptr) << i;
    EXPECT_EQ(m->next_expected, i);
  }
  // Remove every third, rest still findable.
  for (unsigned i = 3; i <= 200; i += 3) {
    EXPECT_TRUE(t.remove(net::make_addr(10, 1, i / 250, i % 250 + 1)));
  }
  for (unsigned i = 1; i <= 200; ++i) {
    McMember* m = t.find(net::make_addr(10, 1, i / 250, i % 250 + 1));
    if (i % 3 == 0) {
      EXPECT_EQ(m, nullptr);
    } else {
      ASSERT_NE(m, nullptr);
    }
  }
}

TEST(MemberTable, MinNextExpected) {
  MemberTable t;
  EXPECT_EQ(t.min_next_expected(777), 777u);  // fallback when empty
  t.add(net::make_addr(10, 1, 0, 1), 500);
  t.add(net::make_addr(10, 1, 0, 2), 300);
  t.add(net::make_addr(10, 1, 0, 3), 900);
  EXPECT_EQ(t.min_next_expected(0), 300u);
}

TEST(MemberTable, AllHavePredicate) {
  MemberTable t;
  EXPECT_TRUE(t.all_have(123));  // vacuously true when empty
  t.add(net::make_addr(10, 1, 0, 1), 500);
  t.add(net::make_addr(10, 1, 0, 2), 300);
  EXPECT_TRUE(t.all_have(300));
  EXPECT_TRUE(t.all_have(299));
  EXPECT_FALSE(t.all_have(301));
  EXPECT_FALSE(t.all_have(501));
  // Slowest member catches up (through the sanctioned mutation path —
  // a direct field write would corrupt the cached minimum).
  t.advance(t.find(net::make_addr(10, 1, 0, 2)), 600);
  EXPECT_TRUE(t.all_have(500));
}

TEST(MemberTable, AllHaveAcrossWraparound) {
  MemberTable t;
  t.add(net::make_addr(10, 1, 0, 1), 0xfffffff0u);
  EXPECT_TRUE(t.all_have(0xffffffe0u));
  EXPECT_FALSE(t.all_have(0x00000010u));  // past the wrap, not yet there
}

// --- Cached release minimum (flash-crowd scaling) ---------------------

TEST(MemberTable, CachedMinMatchesBruteForceUnderRandomOps) {
  // Differential test: the cached (min, multiplicity) pair against a
  // multiset reference through a random add / remove / advance workload.
  MemberTable t;
  std::multiset<kern::Seq> ref;
  std::map<net::Addr, kern::Seq> pos;
  sim::Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    const int op = rng.uniform_int(0, 2);
    if (op == 0 || pos.empty()) {
      const net::Addr a =
          net::make_addr(10, 2, rng.uniform_int(0, 3), rng.uniform_int(1, 200));
      const kern::Seq s = static_cast<kern::Seq>(rng.uniform_int(0, 5000));
      if (pos.find(a) == pos.end()) {
        t.add(a, s);
        ref.insert(s);
        pos[a] = s;
      }
    } else if (op == 1) {
      auto it = pos.begin();
      std::advance(it, rng.uniform_int(0, static_cast<int>(pos.size()) - 1));
      ASSERT_TRUE(t.remove(it->first));
      ref.erase(ref.find(it->second));
      pos.erase(it);
    } else {
      auto it = pos.begin();
      std::advance(it, rng.uniform_int(0, static_cast<int>(pos.size()) - 1));
      const kern::Seq to =
          it->second + static_cast<kern::Seq>(rng.uniform_int(0, 100));
      t.advance(t.find(it->first), to);
      ref.erase(ref.find(it->second));
      ref.insert(to);
      it->second = to;
    }
    const kern::Seq expect = ref.empty() ? 999u : *ref.begin();
    ASSERT_EQ(t.min_next_expected(999), expect) << "step " << step;
  }
}

TEST(MemberTable, AdvanceAboveMinDoesNotRescan) {
  // Only the slowest member moving can change the minimum; feedback from
  // anyone else must be O(1) — this is what makes a feedback storm from
  // 10k receivers cost 10k table hits, not 10k full scans.
  MemberTable t;
  const net::Addr slow = net::make_addr(10, 1, 0, 1);
  t.add(slow, 100);
  for (unsigned i = 2; i <= 1000; ++i) {
    t.add(net::make_addr(10, 1, i / 250, i % 250 + 1), 500);
  }
  ASSERT_EQ(t.min_next_expected(0), 100u);  // may rescan once to seed
  const std::uint64_t rescans = t.min_rescans();
  for (unsigned i = 2; i <= 1000; ++i) {
    McMember* m = t.find(net::make_addr(10, 1, i / 250, i % 250 + 1));
    t.advance(m, 600 + i);
    ASSERT_EQ(t.min_next_expected(0), 100u);
  }
  EXPECT_EQ(t.min_rescans(), rescans);  // not one rescan in 999 advances
}

TEST(MemberTable, RescanWorkIsAmortizedAcrossCatchUpRounds) {
  // R full catch-up rounds over N members: the slowest member moves N
  // times per round, but a rescan only fires when the last member *at*
  // the minimum leaves it — so total visited work stays O(R * N), far
  // below the O(R * N^2) of recomputing the min per feedback packet.
  constexpr unsigned kN = 2000;
  constexpr unsigned kRounds = 5;
  MemberTable t;
  for (unsigned i = 1; i <= kN; ++i) {
    t.add(net::make_addr(10, 1, i / 250, i % 250 + 1), 0);
  }
  for (unsigned round = 1; round <= kRounds; ++round) {
    for (unsigned i = 1; i <= kN; ++i) {
      McMember* m = t.find(net::make_addr(10, 1, i / 250, i % 250 + 1));
      t.advance(m, round * 1000);
      // The release path consults the min after every feedback packet.
      ASSERT_EQ(t.min_next_expected(0),
                i == kN ? round * 1000 : (round - 1) * 1000);
    }
  }
  EXPECT_LE(t.min_rescan_work(), static_cast<std::uint64_t>(kRounds + 2) * kN);
  EXPECT_LE(t.min_rescans(), kRounds + 2u);
}

TEST(MemberTable, RemovalOfLastMemberAtMinAdvancesIt) {
  MemberTable t;
  t.add(net::make_addr(10, 1, 0, 1), 100);
  t.add(net::make_addr(10, 1, 0, 2), 100);
  t.add(net::make_addr(10, 1, 0, 3), 400);
  ASSERT_EQ(t.min_next_expected(0), 100u);
  t.remove(net::make_addr(10, 1, 0, 1));
  EXPECT_EQ(t.min_next_expected(0), 100u);  // one holdout remains
  t.remove(net::make_addr(10, 1, 0, 2));
  EXPECT_EQ(t.min_next_expected(0), 400u);
  t.remove(net::make_addr(10, 1, 0, 3));
  EXPECT_EQ(t.min_next_expected(777), 777u);  // empty again
}

TEST(MemberTable, VersionBumpsOnMembershipChangeOnly) {
  MemberTable t;
  const std::uint64_t v0 = t.version();
  McMember* m = t.add(net::make_addr(10, 1, 0, 1), 100);
  const std::uint64_t v1 = t.version();
  EXPECT_NE(v1, v0);
  t.advance(m, 200);  // feedback is not a membership change
  EXPECT_EQ(t.version(), v1);
  t.remove(net::make_addr(10, 1, 0, 1));
  EXPECT_NE(t.version(), v1);
}

}  // namespace
}  // namespace hrmc::proto
