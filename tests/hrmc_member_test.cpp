#include "hrmc/member.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hrmc::proto {
namespace {

TEST(MemberTable, AddFindRemove) {
  MemberTable t;
  EXPECT_TRUE(t.empty());
  McMember* m = t.add(net::make_addr(10, 1, 0, 1), 100);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(net::make_addr(10, 1, 0, 1)), m);
  EXPECT_EQ(m->next_expected, 100u);
  EXPECT_TRUE(t.remove(net::make_addr(10, 1, 0, 1)));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(net::make_addr(10, 1, 0, 1)), nullptr);
}

TEST(MemberTable, DuplicateAddReturnsExisting) {
  MemberTable t;
  McMember* a = t.add(net::make_addr(10, 1, 0, 1), 100);
  McMember* b = t.add(net::make_addr(10, 1, 0, 1), 999);
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(a->next_expected, 100u);  // untouched
}

TEST(MemberTable, RemoveMissingReturnsFalse) {
  MemberTable t;
  EXPECT_FALSE(t.remove(net::make_addr(10, 9, 9, 9)));
}

TEST(MemberTable, ForEachVisitsAll) {
  MemberTable t;
  std::set<net::Addr> added;
  for (unsigned i = 1; i <= 200; ++i) {
    const net::Addr a = net::make_addr(10, 1, i / 250, i % 250 + 1);
    t.add(a, i);
    added.insert(a);
  }
  std::set<net::Addr> seen;
  t.for_each([&](McMember& m) { seen.insert(m.addr); });
  EXPECT_EQ(seen, added);
}

TEST(MemberTable, HashChainsSurviveCollisions) {
  // 200 members necessarily collide in 64 buckets; lookups must all work.
  MemberTable t;
  for (unsigned i = 1; i <= 200; ++i) {
    t.add(net::make_addr(10, 1, i / 250, i % 250 + 1), i);
  }
  for (unsigned i = 1; i <= 200; ++i) {
    McMember* m = t.find(net::make_addr(10, 1, i / 250, i % 250 + 1));
    ASSERT_NE(m, nullptr) << i;
    EXPECT_EQ(m->next_expected, i);
  }
  // Remove every third, rest still findable.
  for (unsigned i = 3; i <= 200; i += 3) {
    EXPECT_TRUE(t.remove(net::make_addr(10, 1, i / 250, i % 250 + 1)));
  }
  for (unsigned i = 1; i <= 200; ++i) {
    McMember* m = t.find(net::make_addr(10, 1, i / 250, i % 250 + 1));
    if (i % 3 == 0) {
      EXPECT_EQ(m, nullptr);
    } else {
      ASSERT_NE(m, nullptr);
    }
  }
}

TEST(MemberTable, MinNextExpected) {
  MemberTable t;
  EXPECT_EQ(t.min_next_expected(777), 777u);  // fallback when empty
  t.add(net::make_addr(10, 1, 0, 1), 500);
  t.add(net::make_addr(10, 1, 0, 2), 300);
  t.add(net::make_addr(10, 1, 0, 3), 900);
  EXPECT_EQ(t.min_next_expected(0), 300u);
}

TEST(MemberTable, AllHavePredicate) {
  MemberTable t;
  EXPECT_TRUE(t.all_have(123));  // vacuously true when empty
  t.add(net::make_addr(10, 1, 0, 1), 500);
  t.add(net::make_addr(10, 1, 0, 2), 300);
  EXPECT_TRUE(t.all_have(300));
  EXPECT_TRUE(t.all_have(299));
  EXPECT_FALSE(t.all_have(301));
  EXPECT_FALSE(t.all_have(501));
  // Slowest member catches up.
  t.find(net::make_addr(10, 1, 0, 2))->next_expected = 600;
  EXPECT_TRUE(t.all_have(500));
}

TEST(MemberTable, AllHaveAcrossWraparound) {
  MemberTable t;
  t.add(net::make_addr(10, 1, 0, 1), 0xfffffff0u);
  EXPECT_TRUE(t.all_have(0xffffffe0u));
  EXPECT_FALSE(t.all_have(0x00000010u));  // past the wrap, not yet there
}

}  // namespace
}  // namespace hrmc::proto
