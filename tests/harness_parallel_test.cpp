#include "harness/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "harness/scenario.hpp"

namespace hrmc::harness {
namespace {

// Small, fast cells: 256 KB transfers over a 100 Mbps LAN finish in a
// few tens of milliseconds of simulated time each.
std::vector<Scenario> small_cells() {
  std::vector<Scenario> cells;
  for (int n = 1; n <= 3; ++n) {
    for (std::uint64_t seed : {7u, 8u, 9u}) {
      Workload wl;
      wl.file_bytes = 256 * 1024;
      cells.push_back(lan_scenario(n, 100e6, 256 << 10, wl, seed));
    }
  }
  return cells;
}

bool same_result(const RunResult& a, const RunResult& b) {
  return a.completed == b.completed && a.elapsed == b.elapsed &&
         a.throughput_mbps == b.throughput_mbps &&  // bit-exact, no epsilon
         a.verify_ok == b.verify_ok &&
         a.sender.data_packets_sent == b.sender.data_packets_sent &&
         a.sender.retransmissions == b.sender.retransmissions &&
         a.receivers_total.naks_sent == b.receivers_total.naks_sent;
}

TEST(ParallelRunner, MatchesSerialExecutionBitForBit) {
  const std::vector<Scenario> cells = small_cells();
  std::vector<RunResult> serial;
  serial.reserve(cells.size());
  for (const Scenario& sc : cells) serial.push_back(run_transfer(sc));

  ParallelRunner pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  const std::vector<RunResult> par = pool.run_all(cells);

  ASSERT_EQ(par.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(same_result(serial[i], par[i])) << "cell " << i << " diverged";
  }
}

TEST(ParallelRunner, ResultsComeBackInInputOrder) {
  // Cells with distinct receiver counts produce distinct per_receiver
  // sizes; order in the output must match the input regardless of
  // which worker finished first.
  std::vector<Scenario> cells;
  for (int n = 1; n <= 4; ++n) {
    Workload wl;
    wl.file_bytes = 128 * 1024;
    cells.push_back(lan_scenario(n, 100e6, 256 << 10, wl, 42));
  }
  const std::vector<RunResult> results = ParallelRunner(3).run_all(cells);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].per_receiver.size(), i + 1);
  }
}

TEST(ParallelRunner, SerialFallbackForSingleThread) {
  ParallelRunner one(1);
  EXPECT_EQ(one.threads(), 1u);
  Workload wl;
  wl.file_bytes = 128 * 1024;
  const std::vector<Scenario> cells{lan_scenario(1, 100e6, 256 << 10, wl, 3)};
  const std::vector<RunResult> results = one.run_all(cells);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].completed);
}

TEST(ParallelRunner, EnvOverrideSelectsThreadCount) {
  ::setenv("HRMC_BENCH_THREADS", "2", 1);
  EXPECT_EQ(ParallelRunner().threads(), 2u);
  ::setenv("HRMC_BENCH_THREADS", "0", 1);  // invalid -> fall through
  EXPECT_GE(ParallelRunner().threads(), 1u);
  ::unsetenv("HRMC_BENCH_THREADS");
  EXPECT_GE(ParallelRunner().threads(), 1u);
}

TEST(ParallelRunner, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(ParallelRunner(4).run_all({}).empty());
}

}  // namespace
}  // namespace hrmc::harness
