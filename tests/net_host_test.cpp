#include "net/host.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/cpu.hpp"
#include "net/nic.hpp"

namespace hrmc::net {
namespace {

TEST(Cpu, WorkSerializesFifo) {
  sim::Scheduler sched;
  Cpu cpu(sched);
  std::vector<int> order;
  std::vector<sim::SimTime> at;
  for (int i = 0; i < 3; ++i) {
    cpu.run(sim::microseconds(100), [&, i] {
      order.push_back(i);
      at.push_back(sched.now());
    });
  }
  sched.run_until();
  ASSERT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(at[0], sim::microseconds(100));
  EXPECT_EQ(at[1], sim::microseconds(200));
  EXPECT_EQ(at[2], sim::microseconds(300));
  EXPECT_EQ(cpu.total_busy(), sim::microseconds(300));
}

TEST(Cpu, IdleGapsDoNotAccumulate) {
  sim::Scheduler sched;
  Cpu cpu(sched);
  sim::SimTime done = 0;
  cpu.run(sim::microseconds(10), [] {});
  sched.run_until();
  // 1 ms of idle passes; new work starts from "now", not busy_until.
  sched.schedule_at(sim::milliseconds(1), [&] {
    cpu.run(sim::microseconds(10), [&] { done = sched.now(); });
  });
  sched.run_until();
  EXPECT_EQ(done, sim::milliseconds(1) + sim::microseconds(10));
}

TEST(Cpu, PaperCostModel) {
  // (10 + 0.025·l) µs protocol cost; 150 µs lower layer (§5.2).
  EXPECT_EQ(Cpu::hrmc_cost(0), sim::microseconds(10));
  EXPECT_EQ(Cpu::hrmc_cost(1000), sim::microseconds(35));
  EXPECT_EQ(Cpu::hrmc_cost(1460), sim::microseconds(10) +
                                       sim::from_seconds(0.025 * 1460 / 1e6));
  EXPECT_EQ(Cpu::lower_layer_cost(), sim::microseconds(150));
}

struct CountingTransport final : Transport {
  void rx(kern::SkBuffPtr skb) override {
    ++count;
    last_size = skb->size();
  }
  int count = 0;
  std::size_t last_size = 0;
};

TEST(Host, DemuxesByProtocol) {
  sim::Scheduler sched;
  Host host(sched, "h", make_addr(10, 0, 0, 1));
  CountingTransport a, b;
  host.register_transport(17, &a);
  host.register_transport(200, &b);

  auto pkt = kern::SkBuff::alloc(50);
  pkt->put(50);
  pkt->protocol = 200;
  host.deliver(std::move(pkt));
  auto pkt2 = kern::SkBuff::alloc(20);
  pkt2->put(20);
  pkt2->protocol = 99;  // unregistered: silently dropped
  host.deliver(std::move(pkt2));
  sched.run_until();
  EXPECT_EQ(a.count, 0);
  EXPECT_EQ(b.count, 1);
  EXPECT_EQ(b.last_size, 50u);
}

TEST(Host, UnregisterStopsDelivery) {
  sim::Scheduler sched;
  Host host(sched, "h", make_addr(10, 0, 0, 1));
  CountingTransport t;
  host.register_transport(200, &t);
  host.unregister_transport(200);
  auto pkt = kern::SkBuff::alloc(10);
  pkt->put(10);
  pkt->protocol = 200;
  host.deliver(std::move(pkt));
  sched.run_until();
  EXPECT_EQ(t.count, 0);
}

TEST(Host, SendStampsSourceAddressAndSerial) {
  sim::Scheduler sched;
  Host host(sched, "h", make_addr(10, 0, 0, 7));
  Nic nic(sched, "n", NicConfig{}, 1);
  host.attach_nic(&nic);

  struct Capture final : PacketSink {
    void deliver(kern::SkBuffPtr skb) override {
      packets.push_back(std::move(skb));
    }
    std::vector<kern::SkBuffPtr> packets;
  } uplink;
  nic.attach_uplink(&uplink);

  for (int i = 0; i < 2; ++i) {
    auto pkt = kern::SkBuff::alloc(10);
    pkt->put(10);
    pkt->daddr = make_addr(10, 0, 0, 9);
    host.send(std::move(pkt));
  }
  sched.run_until();
  ASSERT_EQ(uplink.packets.size(), 2u);
  EXPECT_EQ(uplink.packets[0]->saddr, make_addr(10, 0, 0, 7));
  EXPECT_EQ(uplink.packets[0]->serial + 1, uplink.packets[1]->serial);
}

TEST(Host, SendPathChargesCpuAndLatency) {
  sim::Scheduler sched;
  Host host(sched, "h", make_addr(10, 0, 0, 7));
  Nic nic(sched, "n", NicConfig{}, 1);
  host.attach_nic(&nic);
  auto pkt = kern::SkBuff::alloc(1000);
  pkt->put(1000);
  host.send(std::move(pkt));
  sched.run_until();
  // hrmc_cost(1000) = 35 µs occupancy + 150 µs pipelined latency before
  // the NIC sees it; NIC then serializes.
  EXPECT_GE(host.cpu().total_busy(), sim::microseconds(35));
  EXPECT_EQ(nic.counters().get("tx_packets"), 1u);
}

}  // namespace
}  // namespace hrmc::net
