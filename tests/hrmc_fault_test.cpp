// Fault-injection scenarios: receiver crashes mid-transfer under each
// eviction policy, crash-restart resync, access-link flap, group-router
// partition and heal, and Gilbert–Elliott burst loss — plus the
// determinism contract that the injector never perturbs fault-free RNG
// streams.
#include <gtest/gtest.h>

#include <vector>

#include "harness/scenario.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"

namespace hrmc::harness {
namespace {

Workload small_mem_workload(std::uint64_t bytes = 512 * 1024) {
  Workload wl;
  wl.file_bytes = bytes;
  return wl;
}

/// Three receivers on a clean LAN; receiver 2 crashes half a second in,
/// while the transfer is still running. Fast probe-retry settings so the
/// tests don't wait out the paper's conservative defaults.
Scenario crash_scenario(proto::EvictionPolicy policy, std::uint64_t seed) {
  Workload wl = small_mem_workload(2 * 1024 * 1024);
  Scenario sc = lan_scenario(3, 10e6, 256 << 10, wl, seed);
  sc.topo.groups[0].loss_rate = 0.0;
  sc.proto.eviction_policy = policy;
  sc.proto.max_probe_retries = 5;
  sc.proto.probe_backoff = 2.0;
  sc.time_limit = sim::seconds(60);
  sc.faults.crash(2, sim::milliseconds(500));
  return sc;
}

TEST(Fault, CrashUnderEvictCompletesForSurvivors) {
  Scenario sc = crash_scenario(proto::EvictionPolicy::kEvict, 60);
  RunResult r = run_transfer(sc);
  // The dead member is evicted, the window unblocks, and both
  // survivors get the whole file.
  EXPECT_TRUE(r.sender_finished);
  EXPECT_EQ(r.survivor_count, 2);
  EXPECT_EQ(r.survivors_completed, 2);
  EXPECT_EQ(r.evicted_count, 1u);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.completed);  // the crashed receiver never finished
  EXPECT_GT(r.sender.probe_retries, 0u);
  // The stall is bounded by the probe-retry schedule, not the time
  // limit: well under the 60 s budget.
  EXPECT_LT(r.stall_time, sim::seconds(30));
}

TEST(Fault, CrashUnderStallStallsForever) {
  Scenario sc = crash_scenario(proto::EvictionPolicy::kStall, 61);
  sc.time_limit = sim::seconds(30);
  RunResult r = run_transfer(sc);
  // Paper-faithful behavior: the window never releases past the dead
  // member's position, so the sender cannot finish.
  EXPECT_FALSE(r.sender_finished);
  EXPECT_EQ(r.evicted_count, 0u);
  EXPECT_EQ(r.sender.members_evicted, 0u);
  // The stall consumed essentially the whole run after the crash.
  EXPECT_GT(r.stall_time, sim::seconds(10));
}

TEST(Fault, OpenStallAtShutdownIsFoldedIntoStats) {
  // Regression: a run that ends mid-stall (kStall policy: the window
  // never unblocks after the crash) used to leave the open interval out
  // of SenderStats::window_stall_time — the accessor included it but
  // the stats struct harvested at end of run did not. stop() now closes
  // the interval before stats are read.
  Scenario sc = crash_scenario(proto::EvictionPolicy::kStall, 61);
  sc.time_limit = sim::seconds(30);
  RunResult r = run_transfer(sc);
  ASSERT_FALSE(r.sender_finished);  // still stalled at the time limit
  EXPECT_GT(r.sender.window_stall_time, sim::seconds(10));
  // The harvested counter and the closing accessor agree exactly.
  EXPECT_EQ(r.sender.window_stall_time, r.stall_time);
}

TEST(Fault, CrashUnderRmcFallbackCompletes) {
  Scenario sc = crash_scenario(proto::EvictionPolicy::kRmcFallback, 62);
  RunResult r = run_transfer(sc);
  // The head releases once every lacking member is dead; the member
  // stays in the table (late NAKs would earn NAK_ERR, like RMC).
  EXPECT_TRUE(r.sender_finished);
  EXPECT_EQ(r.survivors_completed, 2);
  EXPECT_EQ(r.sender.members_evicted, 0u);
  EXPECT_GT(r.sender.dead_member_releases, 0u);
  EXPECT_TRUE(r.verify_ok);
}

TEST(Fault, CrashRestartRejoinsAndResyncs) {
  Workload wl = small_mem_workload(2 * 1024 * 1024);
  Scenario sc = lan_scenario(2, 10e6, 256 << 10, wl, 63);
  sc.topo.groups[0].loss_rate = 0.0;
  sc.proto.eviction_policy = proto::EvictionPolicy::kEvict;
  sc.proto.max_probe_retries = 5;
  sc.proto.probe_backoff = 2.0;
  sc.time_limit = sim::seconds(60);
  sc.faults.crash(1, sim::milliseconds(500))
      .restart(1, sim::milliseconds(1500));
  RunResult r = run_transfer(sc);
  // The restarted receiver re-JOINed with the resync mark and was
  // re-anchored at the sender's current position; from there it
  // completes the tail of the stream like a late joiner.
  EXPECT_GE(r.sender.resync_joins_received, 1u);
  EXPECT_TRUE(r.sender_finished);
  EXPECT_EQ(r.survivor_count, 2);
  EXPECT_EQ(r.survivors_completed, 2);
}

TEST(Fault, LinkFlapRecovers) {
  Workload wl = small_mem_workload();
  Scenario sc = lan_scenario(2, 10e6, 256 << 10, wl, 64);
  sc.topo.groups[0].loss_rate = 0.0;
  sc.time_limit = sim::seconds(60);
  sc.faults.link_down(1, sim::milliseconds(300))
      .link_up(1, sim::milliseconds(800));
  RunResult r = run_transfer(sc);
  // Everything lost during the outage is NAKed and retransmitted.
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_GT(r.sender.retransmissions, 0u);
}

TEST(Fault, PartitionHealRecovers) {
  Workload wl = small_mem_workload();
  Scenario sc = lan_scenario(2, 10e6, 256 << 10, wl, 65);
  sc.topo.groups[0].loss_rate = 0.0;
  sc.time_limit = sim::seconds(60);
  sc.faults.partition(0, sim::milliseconds(300))
      .heal(0, sim::seconds(1));
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
}

TEST(Fault, GilbertElliottBurstLossRecovers) {
  Workload wl = small_mem_workload();
  Scenario sc = lan_scenario(2, 10e6, 128 << 10, wl, 66);
  sc.topo.groups[0].loss_rate = 0.0;  // all loss comes from the GE model
  sc.time_limit = sim::seconds(120);
  net::GilbertElliottConfig ge;
  ge.p_good_bad = 0.01;
  ge.p_bad_good = 0.30;
  ge.loss_bad = 0.8;
  sc.faults.burst_loss(0, 0, ge);
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_GT(r.receivers_total.naks_sent, 0u);
  EXPECT_GT(r.sender.retransmissions, 0u);
}

TEST(Fault, GeZeroLossDoesNotPerturb) {
  // The determinism contract: a plan whose GE model never drops (both
  // state loss probabilities zero) must leave the run bit-identical to
  // a plan-free run — the injector and its substreams add no draws to
  // any pre-existing RNG stream.
  Workload wl = small_mem_workload();
  Scenario base = lan_scenario(2, 10e6, 128 << 10, wl, 67);
  base.topo.groups[0].loss_rate = 0.005;  // exercise the Bernoulli stream

  Scenario with_ge = base;
  net::GilbertElliottConfig ge;
  ge.p_good_bad = 0.5;
  ge.p_bad_good = 0.5;
  ge.loss_good = 0.0;
  ge.loss_bad = 0.0;
  with_ge.faults.burst_loss(0, 0, ge);

  RunResult a = run_transfer(base);
  RunResult b = run_transfer(with_ge);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.sender.data_packets_sent, b.sender.data_packets_sent);
  EXPECT_EQ(a.sender.retransmissions, b.sender.retransmissions);
  EXPECT_EQ(a.receivers_total.naks_sent, b.receivers_total.naks_sent);
  EXPECT_EQ(a.router_loss_drops, b.router_loss_drops);
}

TEST(Fault, OutOfRangeTargetRejectedAtArmTime) {
  // A typo'd index in the plan must be a configuration error, not an
  // abort from deep inside the event loop mid-run.
  Workload wl = small_mem_workload(64 * 1024);
  Scenario sc = lan_scenario(2, 10e6, 128 << 10, wl, 69);
  sc.faults.crash(99, sim::milliseconds(100));
  EXPECT_THROW(run_transfer(sc), std::invalid_argument);

  Scenario sc2 = lan_scenario(2, 10e6, 128 << 10, wl, 69);
  sc2.faults.partition(7, sim::milliseconds(100));
  EXPECT_THROW(run_transfer(sc2), std::invalid_argument);
}

TEST(Fault, EmptyPlanMatchesNoPlan) {
  // An untouched Scenario carries an empty plan; make sure the two
  // construction paths (no injector vs. none armed) agree by value.
  Workload wl = small_mem_workload(256 * 1024);
  Scenario sc = lan_scenario(1, 10e6, 128 << 10, wl, 68);
  sc.topo.groups[0].loss_rate = 0.01;
  RunResult a = run_transfer(sc);
  RunResult b = run_transfer(sc);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.sender.data_packets_sent, b.sender.data_packets_sent);
  EXPECT_EQ(a.receivers_total.naks_sent, b.receivers_total.naks_sent);
}

// --- Event-ordering edge cases (chaos hardening) ----------------------
//
// Equal-time events fire in plan order (the scheduler breaks timestamp
// ties FIFO), and state-transition events are idempotent: a duplicate
// crash / restart / heal is a no-op — no counter, no trace mark, no
// protocol callback. Both contracts are what make generated and shrunk
// chaos plans well-defined.

struct InjectorRig {
  sim::Scheduler sched;
  net::Topology topo;
  explicit InjectorRig(int receivers = 2)
      : topo(sched, [&] {
          net::TopologyConfig tcfg;
          tcfg.seed = 11;
          tcfg.groups = {net::group_a(receivers)};
          return tcfg;
        }()) {}
};

TEST(Fault, PartitionThenHealAtSameInstantEndsHealed) {
  InjectorRig rig;
  net::FaultPlan plan;
  plan.partition(0, sim::milliseconds(100)).heal(0, sim::milliseconds(100));
  net::FaultInjector inj(rig.sched, rig.topo, plan, 9);
  inj.arm();
  rig.sched.run_until(sim::milliseconds(200));
  EXPECT_EQ(inj.counters().get("partitions"), 1u);
  EXPECT_EQ(inj.counters().get("heals"), 1u);
  EXPECT_FALSE(rig.topo.group_router(0).is_down());
}

TEST(Fault, HealThenPartitionAtSameInstantEndsPartitioned) {
  // Reversed plan order at the same timestamp: the heal fires first
  // against an unpartitioned router (a no-op), then the partition
  // applies. FIFO tie-break makes the outcome a function of the plan,
  // not of hash order.
  InjectorRig rig;
  net::FaultPlan plan;
  plan.heal(0, sim::milliseconds(100)).partition(0, sim::milliseconds(100));
  net::FaultInjector inj(rig.sched, rig.topo, plan, 9);
  inj.arm();
  rig.sched.run_until(sim::milliseconds(200));
  EXPECT_EQ(inj.counters().get("heals"), 0u);  // no-op: nothing to heal
  EXPECT_EQ(inj.counters().get("partitions"), 1u);
  EXPECT_TRUE(rig.topo.group_router(0).is_down());
}

TEST(Fault, DuplicateCrashAndRestartAreIdempotent) {
  InjectorRig rig;
  net::FaultPlan plan;
  plan.crash(0, sim::milliseconds(100))
      .crash(0, sim::milliseconds(110))
      .restart(0, sim::milliseconds(120))
      .restart(0, sim::milliseconds(130));
  net::FaultInjector inj(rig.sched, rig.topo, plan, 9);
  int crash_calls = 0;
  int restart_calls = 0;
  inj.on_receiver_crash = [&](std::size_t) { ++crash_calls; };
  inj.on_receiver_restart = [&](std::size_t) { ++restart_calls; };
  inj.arm();
  rig.sched.run_until(sim::milliseconds(200));
  // One real transition each way; the duplicates were no-ops all the
  // way down — counters, protocol callbacks, and host state agree.
  EXPECT_EQ(inj.counters().get("crashes"), 1u);
  EXPECT_EQ(inj.counters().get("restarts"), 1u);
  EXPECT_EQ(crash_calls, 1);
  EXPECT_EQ(restart_calls, 1);
  EXPECT_FALSE(rig.topo.receiver(0).is_down());
}

TEST(Fault, DuplicateLinkEventsAreIdempotent) {
  InjectorRig rig;
  net::FaultPlan plan;
  plan.link_down(1, sim::milliseconds(100))
      .link_down(1, sim::milliseconds(110))
      .link_up(1, sim::milliseconds(120))
      .link_up(1, sim::milliseconds(130));
  net::FaultInjector inj(rig.sched, rig.topo, plan, 9);
  inj.arm();
  rig.sched.run_until(sim::milliseconds(200));
  EXPECT_EQ(inj.counters().get("link_downs"), 1u);
  EXPECT_EQ(inj.counters().get("link_ups"), 1u);
  EXPECT_TRUE(rig.topo.receiver_nic(1).link_up());
}

TEST(Fault, OverlappingCrashRestartPairsCompleteAndVerify) {
  // Chaos seed 337 (found by the sweep): two crash/restart pairs for
  // the same receiver interleaved — crash, crash, restart, restart.
  // The redundant restart used to emit a bare "up" trace mark with no
  // resync behind it, re-arming the receiver in the release-safety
  // checker and flagging a perfectly legal release. Idempotent
  // transitions keep the trace truthful.
  Workload wl = small_mem_workload();
  Scenario sc = lan_scenario(3, 10e6, 256 << 10, wl, 90);
  sc.topo.groups[0].loss_rate = 0.0;
  sc.time_limit = sim::seconds(60);
  sc.faults.crash(1, sim::milliseconds(163))
      .crash(1, sim::milliseconds(171))
      .restart(1, sim::milliseconds(187))
      .restart(1, sim::milliseconds(228));
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.sender_finished);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_EQ(r.survivor_count, 3);
  EXPECT_EQ(r.survivors_completed, 3);
}

TEST(Fault, DuplicateTrunkEventsAreIdempotentAndReconverge) {
  // Double downs and double ups collapse to one transition each, and
  // the repair black-holes the router for the reconvergence window.
  InjectorRig rig;
  net::FaultPlan plan;
  plan.trunk_down(0, sim::milliseconds(100))
      .trunk_down(0, sim::milliseconds(110))
      .trunk_up(0, sim::milliseconds(200), sim::milliseconds(30))
      .trunk_up(0, sim::milliseconds(210));
  net::FaultInjector inj(rig.sched, rig.topo, plan, 9);
  inj.arm();
  rig.sched.run_until(sim::milliseconds(150));
  EXPECT_TRUE(rig.topo.group_router(0).is_down());
  rig.sched.run_until(sim::milliseconds(220));
  EXPECT_FALSE(rig.topo.group_router(0).is_down());
  EXPECT_TRUE(rig.topo.group_router(0).reconverging());  // until 230 ms
  rig.sched.run_until(sim::milliseconds(240));
  EXPECT_FALSE(rig.topo.group_router(0).reconverging());
  EXPECT_EQ(inj.counters().get("trunk_downs"), 1u);
  EXPECT_EQ(inj.counters().get("trunk_ups"), 1u);
}

TEST(Fault, WirelessWindowInstallsPerNicModelsAndStopClears) {
  // One wireless window arms every NIC behind the target group with its
  // own model — distinct SNR phases so the links do not fade in
  // lockstep — and the stop event removes them all.
  InjectorRig rig(3);
  net::WirelessLossConfig wl;
  wl.p_good_bad = 0.05;
  wl.snr_depth = 0.8;
  wl.snr_period = sim::seconds(1);
  net::FaultPlan plan;
  plan.wireless(0, sim::milliseconds(100), wl)
      .wireless_stop(0, sim::milliseconds(300));
  net::FaultInjector inj(rig.sched, rig.topo, plan, 9);
  inj.arm();

  rig.sched.run_until(sim::milliseconds(150));
  ASSERT_EQ(rig.topo.receiver_count(), 3u);
  std::vector<double> probs;
  for (std::size_t i = 0; i < 3; ++i) {
    const net::WirelessLoss* m = rig.topo.receiver_nic(i).wireless_loss();
    ASSERT_NE(m, nullptr) << "nic " << i;
    probs.push_back(m->entry_probability(sim::milliseconds(250)));
  }
  EXPECT_NE(probs[0], probs[1]);  // phase-offset decorrelation
  EXPECT_NE(probs[1], probs[2]);
  EXPECT_EQ(inj.counters().get("wireless_starts"), 1u);

  rig.sched.run_until(sim::milliseconds(350));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.topo.receiver_nic(i).wireless_loss(), nullptr) << i;
  }
  EXPECT_EQ(inj.counters().get("wireless_stops"), 1u);
}

}  // namespace
}  // namespace hrmc::harness
