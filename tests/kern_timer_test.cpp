#include "kern/timer.hpp"

#include <gtest/gtest.h>

#include "kern/jiffies.hpp"
#include "sim/scheduler.hpp"

namespace hrmc::kern {
namespace {

TEST(Jiffies, ConversionAndRounding) {
  EXPECT_EQ(kJiffy, sim::milliseconds(10));
  EXPECT_EQ(to_jiffies(sim::milliseconds(25)), 2);
  EXPECT_EQ(from_jiffies(3), sim::milliseconds(30));
  EXPECT_EQ(ceil_to_jiffy(sim::milliseconds(25)), sim::milliseconds(30));
  EXPECT_EQ(ceil_to_jiffy(sim::milliseconds(30)), sim::milliseconds(30));
  EXPECT_EQ(ceil_to_jiffy(0), 0);
}

TEST(TimerList, FiresOnJiffyBoundary) {
  sim::Scheduler sched;
  sim::SimTime fired = -1;
  TimerList t(sched, [&] { fired = sched.now(); });
  t.mod_timer_in(5);
  sched.run_until();
  EXPECT_EQ(fired, from_jiffies(5));
}

TEST(TimerList, ModTimerRearms) {
  sim::Scheduler sched;
  int count = 0;
  TimerList t(sched, [&] { ++count; });
  t.mod_timer_in(2);
  t.mod_timer_in(4);  // supersedes the first arming
  sched.run_until();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sched.now(), from_jiffies(4));
}

TEST(TimerList, DelTimerCancels) {
  sim::Scheduler sched;
  int count = 0;
  TimerList t(sched, [&] { ++count; });
  t.mod_timer_in(3);
  EXPECT_TRUE(t.pending());
  t.del_timer();
  EXPECT_FALSE(t.pending());
  sched.run_until();
  EXPECT_EQ(count, 0);
}

TEST(TimerList, ExpiredTargetFiresNextTick) {
  sim::Scheduler sched;
  sched.schedule_at(from_jiffies(10), [] {});
  sched.run_until();
  sim::SimTime fired = -1;
  TimerList t(sched, [&] { fired = sched.now(); });
  t.mod_timer(5);  // expiry in the past
  sched.run_until();
  EXPECT_GT(fired, from_jiffies(10));
  EXPECT_LE(fired, from_jiffies(11));
}

TEST(TimerList, RearmFromWithinCallback) {
  sim::Scheduler sched;
  int count = 0;
  TimerList t(sched, [&] {
    if (++count < 5) t.mod_timer_in(1);
  });
  t.mod_timer_in(1);
  sched.run_until();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now(), from_jiffies(5));
}

TEST(TimerList, DestructorCancels) {
  sim::Scheduler sched;
  int count = 0;
  {
    TimerList t(sched, [&] { ++count; });
    t.mod_timer_in(1);
  }
  sched.run_until();
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace hrmc::kern
