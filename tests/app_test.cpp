#include "app/apps.hpp"

#include <gtest/gtest.h>

#include "app/disk.hpp"
#include "app/pattern.hpp"
#include "net/topology.hpp"

namespace hrmc::app {
namespace {

TEST(Pattern, DeterministicAndPositionDependent) {
  EXPECT_EQ(pattern_byte(0), pattern_byte(0));
  int distinct = 0;
  for (int i = 1; i < 256; ++i) {
    if (pattern_byte(i) != pattern_byte(0)) ++distinct;
  }
  EXPECT_GT(distinct, 200);
}

TEST(Pattern, FillVerifyRoundTrip) {
  std::vector<std::uint8_t> buf(4096);
  pattern_fill(buf, 12345);
  EXPECT_EQ(pattern_verify(buf, 12345), buf.size());
  // Wrong offset fails early.
  EXPECT_LT(pattern_verify(buf, 12346), 8u);
  // Corruption detected at the right index.
  buf[100] ^= 0xff;
  EXPECT_EQ(pattern_verify(buf, 12345), 100u);
}

TEST(Disk, TransferTimeScalesWithSize) {
  DiskConfig cfg;
  cfg.jitter = 0.0;
  cfg.stall_every = 1 << 30;  // no stalls in this test
  DiskModel d(cfg, 1);
  const auto t1 = d.io_time(64 * 1024);
  const auto t2 = d.io_time(128 * 1024);
  EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1),
              static_cast<double>(t1) * 0.01);
}

TEST(Disk, StallAddedAtBoundary) {
  DiskConfig cfg;
  cfg.jitter = 0.0;
  cfg.stall_every = 100 * 1024;
  cfg.stall = sim::milliseconds(4);
  DiskModel d(cfg, 1);
  const auto plain = d.io_time(30 * 1024);   // pos 30K
  d.io_time(30 * 1024);                      // pos 60K
  const auto with_stall = d.io_time(50 * 1024);  // crosses 100K
  EXPECT_GT(with_stall, plain + sim::milliseconds(3));
}

TEST(Disk, JitterVariesTimes) {
  DiskConfig cfg;
  cfg.jitter = 0.3;
  cfg.stall_every = 1 << 30;
  DiskModel d(cfg, 7);
  const auto a = d.io_time(64 * 1024);
  const auto b = d.io_time(64 * 1024);
  const auto c = d.io_time(64 * 1024);
  EXPECT_TRUE(a != b || b != c);
}

class AppsTest : public ::testing::Test {
 protected:
  AppsTest() {
    net::TopologyConfig tcfg;
    tcfg.seed = 6;
    tcfg.groups = {net::group_a(1)};
    tcfg.groups[0].loss_rate = 0.0;
    topo_ = std::make_unique<net::Topology>(sched_, tcfg);
  }

  sim::Scheduler sched_;
  std::unique_ptr<net::Topology> topo_;
};

TEST_F(AppsTest, MemoryTransferDeliversEverything) {
  const net::Endpoint group{net::make_addr(224, 7, 7, 7), 7500};
  proto::Config cfg;
  proto::HrmcReceiver rcv(topo_->receiver(0), cfg, group,
                          topo_->sender().addr());
  SinkApp::Options so;
  SinkApp sink(rcv, sched_, so);
  rcv.open();

  proto::HrmcSender snd(topo_->sender(), cfg, 7500, group);
  SourceApp::Options srco;
  srco.total_bytes = 300 * 1024;
  SourceApp src(snd, sched_, srco);
  src.start();

  sched_.run_while([&] { return !sink.finished() || !snd.finished(); },
                   sim::seconds(120));
  EXPECT_TRUE(src.done());
  EXPECT_TRUE(sink.finished());
  EXPECT_EQ(sink.bytes_read(), srco.total_bytes);
  EXPECT_FALSE(sink.verify_failed());
  EXPECT_LE(sink.complete_at(), sink.finished_at());
  snd.stop();
  rcv.stop();
}

TEST_F(AppsTest, ReadRateCapSlowsConsumption) {
  const net::Endpoint group{net::make_addr(224, 7, 7, 7), 7500};
  proto::Config cfg;
  proto::HrmcReceiver rcv(topo_->receiver(0), cfg, group,
                          topo_->sender().addr());
  SinkApp::Options so;
  so.read_rate_bps = 1e6;  // 1 Mbit/s application
  SinkApp sink(rcv, sched_, so);
  rcv.open();

  proto::HrmcSender snd(topo_->sender(), cfg, 7500, group);
  SourceApp::Options srco;
  srco.total_bytes = 256 * 1024;
  SourceApp src(snd, sched_, srco);
  const sim::SimTime start = sched_.now();
  src.start();
  sched_.run_while([&] { return !sink.finished(); }, sim::seconds(120));
  ASSERT_TRUE(sink.finished());
  // 2 Mbit of payload at 1 Mbit/s: at least ~2 s wall clock.
  EXPECT_GT(sched_.now() - start, sim::milliseconds(1800));
  snd.stop();
  rcv.stop();
}

TEST_F(AppsTest, DiskSourceIsSlowerThanMemory) {
  const net::Endpoint group{net::make_addr(224, 7, 7, 7), 7500};

  auto run_once = [&](bool disk) {
    net::TopologyConfig tcfg;
    tcfg.seed = 6;
    tcfg.groups = {net::group_a(1)};
    tcfg.groups[0].loss_rate = 0.0;
    sim::Scheduler sched;
    net::Topology topo(sched, tcfg);
    proto::Config cfg;
    proto::HrmcReceiver rcv(topo.receiver(0), cfg, group,
                            topo.sender().addr());
    SinkApp::Options so;
    SinkApp sink(rcv, sched, so);
    rcv.open();
    proto::HrmcSender snd(topo.sender(), cfg, 7500, group);
    SourceApp::Options srco;
    srco.total_bytes = 512 * 1024;
    if (disk) {
      DiskConfig dc;
      dc.rate_bps = 2e6;  // deliberately slow disk
      srco.disk = dc;
    }
    SourceApp src(snd, sched, srco);
    src.start();
    sched.run_while([&] { return !sink.finished(); }, sim::seconds(300));
    EXPECT_TRUE(sink.finished());
    EXPECT_FALSE(sink.verify_failed());
    snd.stop();
    rcv.stop();
    return sched.now();
  };

  const auto mem_time = run_once(false);
  const auto disk_time = run_once(true);
  EXPECT_GT(disk_time, mem_time);
}

}  // namespace
}  // namespace hrmc::app
