#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace hrmc::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(3, 8);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 8);
    saw_lo |= v == 3;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  const double p = static_cast<double>(hits) / n;
  EXPECT_NEAR(p, 0.3, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  Rng r(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::shuffle(v.begin(), v.end(), r);  // must compile and not crash
  EXPECT_EQ(v.size(), 8u);
}

TEST(SubstreamSeed, LabelsGiveIndependentSeeds) {
  const auto a = substream_seed(1, "router:0");
  const auto b = substream_seed(1, "router:1");
  const auto c = substream_seed(2, "router:0");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, substream_seed(1, "router:0"));  // stable
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng r(0);
  // Must not get stuck in an all-zero state.
  std::uint64_t x = 0;
  for (int i = 0; i < 10; ++i) x |= r.next_u64();
  EXPECT_NE(x, 0u);
}

}  // namespace
}  // namespace hrmc::sim
