// Million-receiver scaling: the sharded MemberTable under 10k-member
// differential and churn workloads, the per-round probe cap, the
// local-repairer hierarchy end to end (including repairer crash
// failover and clean-leave re-homing), SRM-style NAK suppression, and
// the modeled-receiver fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "harness/scenario.hpp"
#include "hrmc/member.hpp"
#include "hrmc/wire.hpp"
#include "net/fault.hpp"
#include "sim/random.hpp"

namespace hrmc {
namespace {

using proto::McMember;
using proto::MemberTable;

/// Receiver address spread over 40 /16 subtree prefixes, mirroring the
/// topology's per-group address plan.
net::Addr subtree_addr(unsigned i) {
  return net::make_addr(10, 1 + i / 250, (i / 250) % 250, i % 250 + 1);
}

kern::Seq ref_min(const std::map<net::Addr, kern::Seq>& ref,
                  kern::Seq fallback) {
  kern::Seq mn = fallback;
  bool first = true;
  for (const auto& [a, s] : ref) {
    (void)a;
    if (first || kern::seq_before(s, mn)) mn = s;
    first = false;
  }
  return mn;
}

// ---------------------------------------------------------------------
// Sharded MemberTable
// ---------------------------------------------------------------------

TEST(ScaleMemberTable, DifferentialAgainstMapAt10k) {
  constexpr unsigned kMembers = 10'000;
  MemberTable t;
  std::map<net::Addr, kern::Seq> ref;
  for (unsigned i = 0; i < kMembers; ++i) {
    const net::Addr a = subtree_addr(i);
    t.add(a, 1);
    ref[a] = 1;
  }
  ASSERT_EQ(t.size(), kMembers);

  sim::Rng rng(20260808);
  kern::Seq front = 1;  // stream head the fast members advance toward
  constexpr unsigned kOps = 2'000;
  for (unsigned op = 0; op < kOps; ++op) {
    const net::Addr a = subtree_addr(
        static_cast<unsigned>(rng.uniform_int(0, kMembers - 1)));
    McMember* m = t.find(a);
    ASSERT_NE(m, nullptr);
    switch (rng.uniform_int(0, 9)) {
      case 0: {  // aggregated laggard registering: position drops
        const auto delta = static_cast<kern::Seq>(rng.uniform_int(0, 1999));
        const kern::Seq down = ref[a] > delta ? ref[a] - delta : 1;
        t.set_position(m, down);
        ref[a] = down;
        break;
      }
      case 1: {  // leave + re-JOIN at the stream head
        t.remove(a);
        ref.erase(a);
        McMember* back = t.add(a, front);
        ASSERT_NE(back, nullptr);
        ref[a] = front;
        break;
      }
      default: {  // ordinary feedback: monotone advance
        front += static_cast<kern::Seq>(rng.uniform_int(1, 1460));
        t.advance(m, front);
        ref[a] = std::max(ref[a], front);
        break;
      }
    }
    ASSERT_EQ(t.min_next_expected(front), ref_min(ref, front))
        << "after op " << op;
  }

  // The whole run queried the minimum after every op. The uncached scan
  // walks all 10k members per query (20M visits); the shard cache must
  // stay orders of magnitude below that.
  EXPECT_LT(t.min_rescan_work(), kOps * kMembers / 10)
      << "release-minimum cache is doing O(members) work per query";
}

TEST(ScaleMemberTable, MassEvictionReJoinInterleaved) {
  constexpr unsigned kMembers = 10'000;
  MemberTable t;
  std::map<net::Addr, kern::Seq> ref;
  for (unsigned i = 0; i < kMembers; ++i) {
    const net::Addr a = subtree_addr(i);
    t.add(a, 100 + i % 977);
    ref[a] = 100 + i % 977;
  }

  // Evict four whole /16 subtrees at once (a partitioned site), then
  // re-JOIN half of each at a later position, interleaving the waves.
  for (unsigned wave = 0; wave < 4; ++wave) {
    const unsigned lo = wave * 250 * 4;
    for (unsigned i = lo; i < lo + 250 * 4 && i < kMembers; ++i) {
      const net::Addr a = subtree_addr(i);
      EXPECT_TRUE(t.remove(a));
      ref.erase(a);
    }
    ASSERT_EQ(t.min_next_expected(1), ref_min(ref, 1));
    for (unsigned i = lo; i < lo + 250 * 2 && i < kMembers; ++i) {
      const net::Addr a = subtree_addr(i);
      t.add(a, 5'000'000 + i);
      ref[a] = 5'000'000 + i;
    }
    ASSERT_EQ(t.min_next_expected(1), ref_min(ref, 1));
    ASSERT_EQ(t.size(), ref.size());
  }

  // A second add of a live address is a no-op (the tombstone/refresh
  // path at the sender relies on this), and the min is unaffected.
  const net::Addr dup = subtree_addr(kMembers - 1);
  McMember* existing = t.find(dup);
  ASSERT_NE(existing, nullptr);
  const kern::Seq pos = existing->next_expected;
  EXPECT_EQ(t.add(dup, 1), existing);
  EXPECT_EQ(existing->next_expected, pos);
  EXPECT_EQ(t.min_next_expected(1), ref_min(ref, 1));
}

TEST(ScaleMemberTable, MultiplicityAndSetPosition) {
  MemberTable t;
  McMember* leaf = t.add(net::make_addr(10, 1, 0, 1), 1000);
  McMember* agg = t.add(net::make_addr(10, 2, 0, 1), 2000);
  EXPECT_EQ(t.total_weight(), 2u);

  t.set_multiplicity(agg, 1000);
  EXPECT_EQ(t.total_weight(), 1001u);
  t.set_multiplicity(agg, 250);
  EXPECT_EQ(t.total_weight(), 251u);

  // set_position moves both ways and keeps the cached minimum honest.
  EXPECT_EQ(t.min_next_expected(1), 1000u);
  EXPECT_TRUE(t.set_position(agg, 500));
  EXPECT_EQ(t.min_next_expected(1), 500u);
  EXPECT_TRUE(t.set_position(agg, 3000));
  EXPECT_EQ(t.min_next_expected(1), 1000u);
  EXPECT_FALSE(t.set_position(agg, 3000));  // no change
  EXPECT_TRUE(t.advance(leaf, 4000));
  EXPECT_EQ(t.min_next_expected(1), 3000u);
  EXPECT_TRUE(t.remove(agg->addr));
  EXPECT_EQ(t.total_weight(), 1u);
  EXPECT_EQ(t.min_next_expected(1), 4000u);
}

// ---------------------------------------------------------------------
// Wire
// ---------------------------------------------------------------------

TEST(ScaleWire, AggUpdateRoundTrip) {
  auto skb = kern::SkBuff::alloc(10, 64);
  proto::Header h;
  h.sport = 7500;
  h.dport = 7500;
  h.seq = 0xfffffff0u;  // near the wrap: subtree minima must survive it
  h.rate = 1'000'000;   // represented member count
  h.length = 0;
  h.tries = 1;
  h.type = proto::PacketType::kAggUpdate;
  h.urg = true;  // probe-solicited
  proto::write_header(*skb, h);
  auto parsed = proto::read_header(*skb);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, proto::PacketType::kAggUpdate);
  EXPECT_EQ(parsed->seq, 0xfffffff0u);
  EXPECT_EQ(parsed->rate, 1'000'000u);
  EXPECT_TRUE(parsed->urg);
}

// ---------------------------------------------------------------------
// End to end
// ---------------------------------------------------------------------

harness::Scenario base_scenario(int groups, int per_group,
                                double loss_rate, std::uint64_t seed) {
  harness::Scenario sc;
  sc.topo.network_bps = 100e6;
  sc.topo.seed = sim::substream_seed(seed, "topo");
  for (int g = 0; g < groups; ++g) {
    net::GroupSpec spec = net::group_a(per_group);
    spec.loss_rate = loss_rate;
    sc.topo.groups.push_back(spec);
  }
  sc.workload.file_bytes = 1024 * 1024;
  sc.seed = seed;
  return sc;
}

TEST(ScaleHierarchy, EndToEndLocalRepair) {
  harness::Scenario sc = base_scenario(3, 3, 0.02, 97001);
  sc.hierarchy.enabled = true;
  const harness::RunResult r = harness::run_transfer(sc);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  // The sender hears one aggregated report stream per subtree...
  EXPECT_GT(r.sender.agg_updates_received, 0u);
  // ...and with 2% path loss the repairers did local work: child NAKs
  // answered from cache or forwarded upstream as their own.
  EXPECT_GT(r.receivers_total.repairs_served +
                r.receivers_total.naks_forwarded,
            0u);
}

TEST(ScaleHierarchy, RepairerCrashFailsChildrenOver) {
  // Enough path loss that the dead window (250-1100 ms) is guaranteed
  // to produce child NAKs the crashed repairer cannot answer — the
  // failover trigger is repair_failover_naks unanswered resends.
  harness::Scenario sc = base_scenario(2, 3, 0.03, 97002);
  sc.hierarchy.enabled = true;  // repairers: slots 0 and 3
  net::FaultEvent crash;
  crash.kind = net::FaultKind::kReceiverCrash;
  crash.at = sim::milliseconds(250);
  crash.target = 0;
  net::FaultEvent restart;
  restart.kind = net::FaultKind::kReceiverRestart;
  restart.at = sim::milliseconds(1100);
  restart.target = 0;
  sc.faults.events = {crash, restart};
  const harness::RunResult r = harness::run_transfer(sc);
  ASSERT_EQ(r.survivors_completed, r.survivor_count);
  EXPECT_FALSE(r.any_stream_error);
  // The dead repairer's children re-homed to the sender (kStall policy:
  // nobody may be released past, so failover is the only way forward).
  EXPECT_GT(r.receivers_total.repair_failovers, 0u);
}

TEST(ScaleHierarchy, RepairerCleanLeaveRehomesSubtree) {
  harness::Scenario sc = base_scenario(2, 3, 0.005, 97003);
  sc.hierarchy.enabled = true;
  harness::ChurnEvent leave;
  leave.at = sim::milliseconds(300);
  leave.receiver = 0;  // the group-0 repairer departs mid-stream
  leave.join = false;
  sc.churn = {leave};
  const harness::RunResult r = harness::run_transfer(sc);
  ASSERT_EQ(r.survivors_completed, r.survivor_count);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_GT(r.receivers_total.repair_failovers, 0u);
  EXPECT_GT(r.sender.leaves_received, 0u);
}

TEST(ScaleSuppression, PeerNaksSuppressDuplicates) {
  harness::Scenario sc = base_scenario(1, 6, 0.03, 97004);
  sc.proto.nak_suppression = true;
  sc.proto.nak_backoff_rtts = 2.0;
  sc.proto.feedback_seed = 97004;
  const harness::RunResult r = harness::run_transfer(sc);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  // Correlated router loss hits all six receivers at once; overheard
  // NAK copies must cancel some of the redundant backoff timers.
  EXPECT_GT(r.receivers_total.naks_peer_suppressed, 0u);
}

TEST(ScaleProbes, PerRoundCapDefersColdBursts) {
  harness::Scenario sc = base_scenario(1, 1, 0.0, 97005);
  sc.topo.groups.clear();
  for (int g = 0; g < 5; ++g) {
    sc.topo.groups.push_back(net::group_a(10));
  }
  for (std::size_t i = 0; i < 50; ++i) {
    harness::ModeledGroup mg;
    mg.receiver = i;
    mg.population = 100;
    mg.leaf_loss = 0.0;
    sc.modeled.push_back(mg);
  }
  sc.proto.max_probes_per_round = 4;
  const harness::RunResult r = harness::run_transfer(sc);
  ASSERT_TRUE(r.completed);
  // 50 members can owe probes at once; with a 4-per-round cap the rest
  // must be pushed to later rounds, never emitted as one burst.
  EXPECT_GT(r.sender.probes_deferred, 0u);
  EXPECT_GT(r.sender.probes_sent, 0u);
}

TEST(ScaleModeled, PopulationCompletesDeterministically) {
  auto make = [] {
    harness::Scenario sc = base_scenario(1, 1, 0.0, 97006);
    sc.topo.groups.clear();
    sc.topo.groups.push_back(net::group_a(5));
    for (std::size_t i = 0; i < 5; ++i) {
      harness::ModeledGroup mg;
      mg.receiver = i;
      mg.population = 1000;
      mg.leaf_loss = 1e-4;
      sc.modeled.push_back(mg);
    }
    sc.proto.feedback_seed = 97006;
    return sc;
  };
  const harness::RunResult a = harness::run_transfer(make());
  const harness::RunResult b = harness::run_transfer(make());
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.modeled_leaves, 5000u);
  // Independent leaf-tail loss is absorbed inside the subtree: local
  // repairs happen, and the leaves they served are the suppressed NAKs.
  EXPECT_GT(a.receivers_total.repairs_served, 0u);
  EXPECT_GT(a.receivers_total.naks_suppressed, 0u);
  // Bit-for-bit repeatable.
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.receivers_total.repairs_served,
            b.receivers_total.repairs_served);
  EXPECT_EQ(a.receivers_total.naks_sent, b.receivers_total.naks_sent);
  EXPECT_EQ(a.sender.agg_updates_received, b.sender.agg_updates_received);
  EXPECT_EQ(a.sender.probes_sent, b.sender.probes_sent);
}

TEST(ScaleModeled, EvictionPoliciesCompleteAt10kLeaves) {
  using proto::EvictionPolicy;
  for (EvictionPolicy policy :
       {EvictionPolicy::kStall, EvictionPolicy::kEvict,
        EvictionPolicy::kRmcFallback}) {
    harness::Scenario sc = base_scenario(1, 1, 0.0, 97007);
    sc.topo.groups.clear();
    sc.topo.groups.push_back(net::group_a(10));
    for (std::size_t i = 0; i < 10; ++i) {
      harness::ModeledGroup mg;
      mg.receiver = i;
      mg.population = 1000;
      mg.leaf_loss = 1e-5;
      sc.modeled.push_back(mg);
    }
    sc.proto.eviction_policy = policy;
    const harness::RunResult r = harness::run_transfer(sc);
    EXPECT_TRUE(r.completed)
        << "policy " << static_cast<int>(policy);
    EXPECT_EQ(r.modeled_leaves, 10'000u);
  }
}

}  // namespace
}  // namespace hrmc
