// The 802.11-style wireless loss model: correlated fade lengths, the
// deterministic SNR-like modulation of the fade-entry probability, and
// the substream determinism the chaos engine's replayability rests on.
#include "net/loss.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hrmc::net {
namespace {

WirelessLossConfig fade_config() {
  WirelessLossConfig wl;
  wl.p_good_bad = 0.01;
  wl.mean_burst = 6.0;
  wl.loss_good = 0.0;
  wl.loss_bad = 1.0;
  return wl;
}

TEST(WirelessLoss, SameSeedSameDecisions) {
  WirelessLoss a(fade_config(), 42);
  WirelessLoss b(fade_config(), 42);
  for (int i = 0; i < 20000; ++i) {
    const sim::SimTime t = sim::microseconds(i * 120);
    ASSERT_EQ(a.drop(t), b.drop(t)) << "packet " << i;
  }
}

TEST(WirelessLoss, DifferentSeedsDiverge) {
  WirelessLoss a(fade_config(), 42);
  WirelessLoss b(fade_config(), 43);
  int differ = 0;
  for (int i = 0; i < 20000; ++i) {
    const sim::SimTime t = sim::microseconds(i * 120);
    differ += a.drop(t) != b.drop(t) ? 1 : 0;
  }
  EXPECT_GT(differ, 0);
}

TEST(WirelessLoss, ZeroConfigNeverDrops) {
  WirelessLossConfig wl;  // all probabilities at their zero defaults
  WirelessLoss m(wl, 7);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_FALSE(m.drop(sim::microseconds(i)));
  }
}

TEST(WirelessLoss, FadesHaveCorrelatedGeometricLength) {
  // With loss_bad = 1 and loss_good = 0, every drop run is exactly one
  // fade, so run lengths sample the burst-length distribution directly.
  // The mean must track mean_burst — the defining difference from plain
  // Gilbert–Elliott, whose per-packet exit coin this model replaces.
  WirelessLoss m(fade_config(), 11);
  std::vector<int> runs;
  int run = 0;
  for (int i = 0; i < 400000; ++i) {
    if (m.drop(sim::microseconds(i * 120))) {
      ++run;
    } else if (run > 0) {
      runs.push_back(run);
      run = 0;
    }
  }
  ASSERT_GT(runs.size(), 100u);
  double sum = 0;
  for (int r : runs) sum += r;
  const double mean = sum / static_cast<double>(runs.size());
  EXPECT_NEAR(mean, 6.0, 1.0);
  // Correlated bursts: multi-packet fades must dominate single drops
  // (memoryless exit at the same mean would still produce many 1s, but
  // the geometric draw guarantees runs well past the mean exist).
  int longest = 0;
  for (int r : runs) longest = std::max(longest, r);
  EXPECT_GT(longest, 12);
}

TEST(WirelessLoss, SnrModulationShapesEntryProbability) {
  WirelessLossConfig wl = fade_config();
  wl.snr_depth = 0.8;
  wl.snr_period = sim::seconds(1);
  WirelessLoss m(wl, 3);
  const double base = wl.p_good_bad;
  // Peak of sin at t = period/4, trough at 3*period/4.
  const double peak = m.entry_probability(sim::milliseconds(250));
  const double mid = m.entry_probability(0);
  const double trough = m.entry_probability(sim::milliseconds(750));
  EXPECT_NEAR(mid, base, 1e-12);
  EXPECT_NEAR(peak, base * 1.8, 1e-9);
  EXPECT_NEAR(trough, base * 0.2, 1e-9);
  EXPECT_GT(peak, trough);
}

TEST(WirelessLoss, EntryProbabilityClampsToUnitInterval) {
  WirelessLossConfig wl = fade_config();
  wl.p_good_bad = 0.9;
  wl.snr_depth = 1.0;  // modulation swings to 2x base = 1.8, clamp to 1
  wl.snr_period = sim::seconds(1);
  WirelessLoss m(wl, 3);
  for (int ms = 0; ms < 1000; ms += 10) {
    const double p = m.entry_probability(sim::milliseconds(ms));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_DOUBLE_EQ(m.entry_probability(sim::milliseconds(250)), 1.0);
}

TEST(WirelessLoss, PhaseOffsetDecorrelatesLinks) {
  // Two links with the same seed but different SNR phases must not fade
  // in lockstep — the phase, not just the RNG stream, separates them.
  WirelessLossConfig a_cfg = fade_config();
  a_cfg.snr_depth = 0.9;
  a_cfg.snr_period = sim::milliseconds(100);
  WirelessLossConfig b_cfg = a_cfg;
  b_cfg.snr_phase = 0.37;
  WirelessLoss a(a_cfg, 5);
  WirelessLoss b(b_cfg, 5);
  int differ = 0;
  for (int i = 0; i < 100000; ++i) {
    const sim::SimTime t = sim::microseconds(i * 120);
    differ += a.drop(t) != b.drop(t) ? 1 : 0;
  }
  EXPECT_GT(differ, 0);
}

}  // namespace
}  // namespace hrmc::net
