// Cross-module integration scenarios: membership churn, stream
// boundaries, sequence wraparound, and protocol lifecycle edge cases
// that no single-module unit test can reach.
#include <gtest/gtest.h>

#include <memory>

#include "app/apps.hpp"
#include "app/pattern.hpp"
#include "harness/scenario.hpp"
#include "hrmc/receiver.hpp"
#include "hrmc/sender.hpp"
#include "net/topology.hpp"

namespace hrmc {
namespace {

constexpr net::Addr kGroup = net::make_addr(224, 3, 2, 1);
constexpr net::Port kPort = 7500;

struct Session {
  explicit Session(int receivers, proto::Config cfg = {},
                   double loss = 0.0, std::uint64_t seed = 1234)
      : cfg_(cfg) {
    net::TopologyConfig tcfg;
    tcfg.seed = seed;
    tcfg.groups = {net::group_a(receivers)};
    tcfg.groups[0].loss_rate = loss;
    topo = std::make_unique<net::Topology>(sched, tcfg);
    snd = std::make_unique<proto::HrmcSender>(
        topo->sender(), cfg_, kPort, net::Endpoint{kGroup, kPort});
  }

  /// Adds a receiver whose application drains and pattern-verifies the
  /// stream as it arrives (verified bytes land in `verified`).
  proto::HrmcReceiver* add_receiver(std::size_t idx) {
    auto r = std::make_unique<proto::HrmcReceiver>(
        topo->receiver(idx), cfg_, net::Endpoint{kGroup, kPort},
        topo->sender().addr());
    proto::HrmcReceiver* rp = r.get();
    const std::size_t slot = verified.size();
    verified.push_back(0);
    ok.push_back(true);
    r->on_readable = [this, rp, slot] {
      std::uint8_t buf[16384];
      std::size_t n;
      while ((n = rp->recv(buf)) > 0) {
        if (app::pattern_verify({buf, n}, verified[slot]) != n) {
          ok[slot] = false;
        }
        verified[slot] += n;
      }
    };
    r->open();
    receivers.push_back(std::move(r));
    return rp;
  }

  /// Writes the whole pattern stream and closes.
  void write_all(std::uint64_t bytes) {
    auto feed = [this, bytes] {
      std::uint8_t buf[16384];
      while (written < bytes) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(sizeof buf, bytes - written));
        app::pattern_fill({buf, want}, written);
        const std::size_t n = snd->send({buf, want});
        written += n;
        if (n < want) return;
      }
      snd->close();
    };
    snd->on_writable = feed;
    feed();
  }

  /// Bytes delivered (and pattern-verified) to receiver slot `i`.
  std::uint64_t delivered(std::size_t i) const {
    EXPECT_TRUE(ok[i]) << "pattern verification failed on receiver " << i;
    return verified[i];
  }

  void run_for(sim::SimTime dt) { sched.run_until(sched.now() + dt); }

  ~Session() {
    snd->stop();
    for (auto& r : receivers) r->stop();
  }

  proto::Config cfg_;
  sim::Scheduler sched;
  std::unique_ptr<net::Topology> topo;
  std::unique_ptr<proto::HrmcSender> snd;
  std::vector<std::unique_ptr<proto::HrmcReceiver>> receivers;
  std::vector<std::uint64_t> verified;
  std::vector<bool> ok;
  std::uint64_t written = 0;
};

TEST(Integration, ZeroByteStreamCompletes) {
  Session s(1);
  auto* r = s.add_receiver(0);
  s.run_for(sim::milliseconds(100));
  s.snd->close();  // nothing ever written: FIN rides a keepalive
  s.run_for(sim::seconds(2));
  EXPECT_TRUE(s.snd->finished());
  EXPECT_TRUE(r->complete());
  EXPECT_TRUE(r->eof());
  EXPECT_EQ(r->stats().data_packets_received, 0u);
}

TEST(Integration, SingleByteStream) {
  Session s(2);
  auto* r0 = s.add_receiver(0);
  auto* r1 = s.add_receiver(1);
  s.run_for(sim::milliseconds(100));
  s.write_all(1);
  s.sched.run_while([&] { return !s.snd->finished(); }, sim::seconds(30));
  EXPECT_TRUE(s.snd->finished());
  EXPECT_EQ(s.delivered(0), 1u);
  EXPECT_EQ(s.delivered(1), 1u);
}

TEST(Integration, SequenceNumbersWrapAround) {
  // Start the stream 64 KB below 2^32; a 256 KB transfer crosses the
  // wrap. Every comparison in the window/reassembly machinery must be
  // modular for this to survive.
  proto::Config cfg;
  cfg.initial_seq = 0xffffffffu - 64 * 1024;
  Session s(2, cfg, /*loss=*/0.01);
  auto* r0 = s.add_receiver(0);
  auto* r1 = s.add_receiver(1);
  s.run_for(sim::milliseconds(100));
  s.write_all(256 * 1024);
  s.sched.run_while([&] { return !s.snd->finished(); }, sim::seconds(120));
  ASSERT_TRUE(s.snd->finished());
  EXPECT_TRUE(r0->complete());
  EXPECT_TRUE(r1->complete());
  EXPECT_EQ(s.delivered(0), 256u * 1024);
  EXPECT_EQ(s.delivered(1), 256u * 1024);
  EXPECT_FALSE(r0->stream_error());
}

TEST(Integration, ReceiverLeavesMidStream) {
  Session s(2);
  auto* r0 = s.add_receiver(0);
  auto* r1 = s.add_receiver(1);
  s.run_for(sim::milliseconds(100));
  s.write_all(512 * 1024);
  s.run_for(sim::milliseconds(300));
  // Receiver 1 walks away. The sender must stop waiting for it.
  r1->close();
  s.sched.run_while([&] { return !s.snd->finished(); }, sim::seconds(120));
  EXPECT_TRUE(s.snd->finished());
  EXPECT_TRUE(r0->complete());
  EXPECT_EQ(s.snd->members().size(), 1u);  // only receiver 0 remains
  EXPECT_EQ(s.snd->stats().leaves_received, 1u);
}

TEST(Integration, LateJoinerRecoversFromBufferedData) {
  // Receiver 1 joins 200 ms into the stream. Everything it missed is
  // still buffered (the buffer is big enough for the whole stream and
  // the MINBUF hold is stretched well past the join time), so it
  // recovers the entire stream via NAKs.
  proto::Config cfg;
  cfg.sndbuf = 2048 << 10;  // keep the whole stream buffered
  cfg.rcvbuf = 2048 << 10;
  cfg.minbuf_rtts = 200;  // hold >= 2 s: nothing releases before the join
  Session s(2, cfg);
  auto* r0 = s.add_receiver(0);
  s.run_for(sim::milliseconds(100));
  s.write_all(512 * 1024);
  s.run_for(sim::milliseconds(200));
  auto* r1 = s.add_receiver(1);  // late
  s.sched.run_while([&] { return !s.snd->finished(); }, sim::seconds(120));
  ASSERT_TRUE(s.snd->finished());
  EXPECT_TRUE(r0->complete());
  EXPECT_TRUE(r1->complete());
  EXPECT_EQ(s.delivered(1), 512u * 1024);
  EXPECT_GT(r1->stats().naks_sent, 0u);  // it had to ask for the past
}

TEST(Integration, SenderWaitsOnSilentReceiver) {
  // One receiver simply stops answering (we stop its timers and detach
  // its transport): the H-RMC sender must NOT finish — that is the
  // reliability guarantee — and keepalives/probes must keep flowing.
  Session s(2);
  auto* r0 = s.add_receiver(0);
  auto* r1 = s.add_receiver(1);
  s.run_for(sim::milliseconds(200));  // both JOINed
  ASSERT_EQ(s.snd->members().size(), 2u);
  // Silence receiver 1.
  r1->stop();
  s.topo->receiver(1).unregister_transport(proto::kIpProtoHrmc);
  s.write_all(128 * 1024);
  s.run_for(sim::seconds(20));
  EXPECT_FALSE(s.snd->finished());
  EXPECT_TRUE(r0->complete());
  EXPECT_GT(s.snd->stats().probes_sent, 0u);
  EXPECT_GT(s.snd->stats().keepalives_sent, 0u);
  (void)r0;
}

TEST(Integration, TwoSequentialTransfersOnFreshSockets) {
  // The same topology hosts two back-to-back sessions (sockets are
  // destroyed and recreated), checking clean teardown/re-registration.
  for (int round = 0; round < 2; ++round) {
    Session s(1, proto::Config{}, 0.0, 555 + round);
    auto* r = s.add_receiver(0);
    s.run_for(sim::milliseconds(100));
    s.write_all(64 * 1024);
    s.sched.run_while([&] { return !s.snd->finished(); }, sim::seconds(60));
    EXPECT_TRUE(s.snd->finished()) << "round " << round;
    EXPECT_EQ(s.delivered(0), 64u * 1024);
  }
}

TEST(Integration, UpdatePeriodConvergesInSteadyState) {
  // During a long transfer the dynamic update timer settles into a band
  // where updates mostly pre-empt probes (§3 / §4.3 of the paper).
  Session s(1);
  auto* r = s.add_receiver(0);
  s.run_for(sim::milliseconds(100));
  s.write_all(4 * 1024 * 1024);
  s.sched.run_while([&] { return !s.snd->finished(); }, sim::seconds(120));
  ASSERT_TRUE(s.snd->finished());
  // The period moved off its initial value and stayed within bounds.
  EXPECT_GE(r->update_period(), s.cfg_.update_period_min);
  EXPECT_LE(r->update_period(), s.cfg_.update_period_max);
  EXPECT_NE(r->update_period(), s.cfg_.update_period_init);
}

TEST(Integration, StatsConservation) {
  // Sender-side and receiver-side counters must reconcile on a clean
  // network: every data byte received was sent; updates received equal
  // updates sent; probes received equal probes sent.
  Session s(3);
  auto* r0 = s.add_receiver(0);
  auto* r1 = s.add_receiver(1);
  auto* r2 = s.add_receiver(2);
  s.run_for(sim::milliseconds(100));
  s.write_all(256 * 1024);
  s.sched.run_while([&] { return !s.snd->finished(); }, sim::seconds(120));
  ASSERT_TRUE(s.snd->finished());

  // Quiesce: stop every timer so no new control packets are generated,
  // then let in-flight packets drain before snapshotting the counters.
  s.snd->stop();
  for (auto& r : s.receivers) r->stop();
  s.run_for(sim::seconds(2));

  const auto& ss = s.snd->stats();
  std::uint64_t rcv_updates = 0, rcv_probes = 0;
  for (auto* r : {r0, r1, r2}) {
    rcv_updates += r->stats().updates_sent;
    rcv_probes += r->stats().probes_received;
  }
  EXPECT_EQ(ss.updates_received, rcv_updates);
  // Probes can tail-drop at the sender's own device queue when it is
  // full of data (unchecked control sends — as in the kernel), so
  // received <= sent.
  EXPECT_LE(rcv_probes, ss.probes_sent);
  EXPECT_GT(rcv_probes, 0u);
  // Multicast data: each of the 3 receivers sees every transmission.
  EXPECT_EQ(r0->stats().data_packets_received,
            ss.data_packets_sent + ss.retransmissions);
}

TEST(Integration, FlowControlledBySlowApplication) {
  // A receiver application that drains at 1 Mbit/s on a 10 Mbit/s
  // network must throttle the sender through rate requests without any
  // loss of data.
  net::TopologyConfig tcfg;
  tcfg.seed = 77;
  tcfg.groups = {net::group_a(1)};
  tcfg.groups[0].loss_rate = 0.0;
  sim::Scheduler sched;
  net::Topology topo(sched, tcfg);
  proto::Config cfg;
  cfg.rcvbuf = 64 << 10;
  cfg.sndbuf = 64 << 10;
  proto::HrmcReceiver rcv(topo.receiver(0), cfg,
                          net::Endpoint{kGroup, kPort},
                          topo.sender().addr());
  app::SinkApp::Options so;
  so.read_rate_bps = 1e6;
  app::SinkApp sink(rcv, sched, so);
  rcv.open();
  proto::HrmcSender snd(topo.sender(), cfg, kPort,
                        net::Endpoint{kGroup, kPort});
  app::SourceApp::Options srco;
  srco.total_bytes = 512 * 1024;
  app::SourceApp src(snd, sched, srco);
  sched.schedule_at(sim::milliseconds(100), [&] { src.start(); });
  sched.run_while([&] { return !snd.finished(); }, sim::seconds(60));
  ASSERT_TRUE(snd.finished());
  EXPECT_FALSE(sink.verify_failed());
  EXPECT_GT(rcv.stats().rate_requests_sent, 0u);
  // The transfer ran at roughly the application's pace: 4 Mbit of
  // payload at ~1 Mbit/s is at least ~3.5 s.
  EXPECT_GT(sched.now(), sim::milliseconds(3500));
  snd.stop();
  rcv.stop();
}

}  // namespace
}  // namespace hrmc
