// Churn storms at the sender: a 10k-JOIN flash crowd absorbed through
// batched admission at sublinear cost, and mass departures (every
// member dying at once) resolved under each eviction policy with a
// bounded event count — no O(members) scan per feedback packet, no
// NAK_ERR panic.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/pattern.hpp"
#include "hrmc/sender.hpp"
#include "net/topology.hpp"

namespace hrmc::proto {
namespace {

constexpr net::Addr kGroup = net::make_addr(224, 7, 7, 7);
constexpr net::Port kPort = 7500;

/// Distinct unicast address for synthetic receiver `i` (kept away from
/// the topology's real subnets so responses die at the routers).
net::Addr fake_addr(unsigned i) {
  return net::make_addr(10, 50 + i / (250 * 250), (i / 250) % 250,
                        i % 250 + 1);
}

struct CaptureTransport final : net::Transport {
  void rx(kern::SkBuffPtr skb) override {
    auto h = read_header(*skb);
    if (h) headers.push_back(*h);
  }
  std::vector<Header> headers;
  [[nodiscard]] std::size_t count(PacketType t) const {
    std::size_t n = 0;
    for (const Header& h : headers) n += h.type == t ? 1 : 0;
    return n;
  }
};

struct Rig {
  explicit Rig(const Config& cfg) {
    net::TopologyConfig tcfg;
    tcfg.seed = 12;
    tcfg.groups = {net::group_a(1)};
    tcfg.groups[0].loss_rate = 0.0;
    topo = std::make_unique<net::Topology>(sched, tcfg);
    topo->receiver(0).register_transport(kIpProtoHrmc, &tap);
    topo->receiver(0).join_group(kGroup);
    snd = std::make_unique<HrmcSender>(topo->sender(), cfg, kPort,
                                       net::Endpoint{kGroup, kPort});
  }

  /// Crafts a feedback packet from synthetic receiver address `from`
  /// and hands it straight to the sender's transport (the network trip
  /// is not what these tests measure).
  void inject(net::Addr from, PacketType type, kern::Seq seq) {
    auto skb = kern::SkBuff::alloc(0, Header::kSize + 44);
    Header h;
    h.sport = kPort;
    h.dport = kPort;
    h.seq = seq;
    h.tries = 1;
    h.type = type;
    write_header(*skb, h);
    skb->saddr = from;
    skb->daddr = topo->sender().addr();
    skb->protocol = kIpProtoHrmc;
    snd->rx(std::move(skb));
  }

  std::size_t offer(std::size_t bytes) {
    std::vector<std::uint8_t> data(bytes);
    app::pattern_fill(data, 0);
    return snd->send(data);
  }

  void run_for(sim::SimTime dt) { sched.run_until(sched.now() + dt); }

  sim::Scheduler sched;
  std::unique_ptr<net::Topology> topo;
  CaptureTransport tap;
  std::unique_ptr<HrmcSender> snd;
};

// --- Flash crowd ------------------------------------------------------

TEST(FlashCrowd, TenThousandJoinsInOneRttAreBatchedAndSublinear) {
  Config cfg;
  cfg.join_batch_threshold = 4;
  cfg.mcast_probe_threshold = 16;
  cfg.minbuf_rtts = 1;
  Rig rig(cfg);
  constexpr unsigned kN = 10000;

  // The whole crowd JOINs at one instant — far inside one RTT.
  for (unsigned i = 0; i < kN; ++i) {
    rig.inject(fake_addr(i), PacketType::kJoin, Config::kInitialSeq);
  }
  EXPECT_EQ(rig.snd->members().size(), kN);
  EXPECT_EQ(rig.snd->stats().joins_received, kN);

  rig.run_for(sim::milliseconds(100));
  // Admission cost is sublinear in crowd size: past the threshold the
  // per-JOIN unicast response is replaced by one multicast flush, so
  // the whole storm resolves in a handful of control packets (and a
  // handful of scheduler events — 10k unicast responses would cost
  // tens of thousands).
  EXPECT_GE(rig.snd->stats().join_batch_responses, 1u);
  EXPECT_LE(rig.snd->stats().join_batch_responses, 4u);
  const std::size_t responses = rig.tap.count(PacketType::kJoinResponse);
  EXPECT_GE(responses, 1u);
  EXPECT_LE(responses, 8u);
  EXPECT_LT(rig.sched.executed(), 5000u);

  // The crowd then confirms a short transfer: release needs the minimum
  // over 10k members after every feedback packet, which the cached
  // minimum serves with O(N) total rescan work instead of O(N^2).
  rig.offer(8192);
  rig.snd->close();
  rig.run_for(sim::seconds(1));
  const kern::Seq head = rig.snd->snd_nxt();
  for (unsigned i = 0; i < kN; ++i) {
    rig.inject(fake_addr(i), PacketType::kUpdate, head);
  }
  rig.run_for(sim::seconds(2));
  EXPECT_TRUE(rig.snd->finished());
  EXPECT_EQ(rig.snd->stats().nak_errs_sent, 0u);
  EXPECT_LT(rig.snd->members().min_rescan_work(), 8u * kN);
}

TEST(FlashCrowd, BelowThresholdStillAnswersPerJoin) {
  // Trickle joins must keep the interactive unicast handshake — the
  // batch path only engages on a genuine burst.
  Config cfg;
  cfg.join_batch_threshold = 50;
  Rig rig(cfg);
  for (unsigned i = 0; i < 3; ++i) {
    rig.inject(fake_addr(i), PacketType::kJoin, Config::kInitialSeq);
    rig.run_for(sim::milliseconds(30));  // separate jiffies
  }
  EXPECT_EQ(rig.snd->members().size(), 3u);
  EXPECT_EQ(rig.snd->stats().join_batch_responses, 0u);
}

// --- Mass departure ---------------------------------------------------

struct DepartureOutcome {
  std::uint64_t events = 0;
  SenderStats stats;
  bool finished = false;
  sim::SimTime stall = 0;
};

/// `n` members JOIN, the stream flows, and then every one of them goes
/// permanently silent (a site-wide power loss). Returns the sender's
/// fate under `policy`.
DepartureOutcome mass_departure(EvictionPolicy policy, unsigned n) {
  Config cfg;
  cfg.eviction_policy = policy;
  cfg.join_batch_threshold = 8;
  cfg.mcast_probe_threshold = 16;
  cfg.max_probe_retries = 3;
  cfg.probe_backoff = 2.0;
  cfg.minbuf_rtts = 1;
  Rig rig(cfg);
  for (unsigned i = 0; i < n; ++i) {
    rig.inject(fake_addr(i), PacketType::kJoin, Config::kInitialSeq);
  }
  rig.run_for(sim::milliseconds(50));
  rig.offer(64 * 1024);
  rig.snd->close();
  rig.run_for(sim::seconds(60));  // silence: nobody ever confirms

  DepartureOutcome out;
  out.events = rig.sched.executed();
  out.stats = rig.snd->stats();
  out.finished = rig.snd->finished();
  out.stall = rig.snd->window_stall_time();
  return out;
}

TEST(MassDeparture, EvictResolvesOneThousandDeathsWithBoundedEvents) {
  const DepartureOutcome big = mass_departure(EvictionPolicy::kEvict, 1000);
  EXPECT_TRUE(big.finished);
  EXPECT_EQ(big.stats.members_evicted, 1000u);
  EXPECT_EQ(big.stats.nak_errs_sent, 0u);

  // Event-count bound: resolving 4x the deaths must not cost anywhere
  // near 4x the scheduler events — probing collapses to multicast past
  // the threshold and eviction scans only the still-lacking cache, so
  // the event count is a function of the probe schedule, not the
  // member count. (An O(members) implementation fails this at 4x+.)
  const DepartureOutcome small = mass_departure(EvictionPolicy::kEvict, 250);
  ASSERT_TRUE(small.finished);
  EXPECT_EQ(small.stats.members_evicted, 250u);
  EXPECT_LT(static_cast<double>(big.events),
            2.0 * static_cast<double>(small.events));
}

TEST(MassDeparture, StallPolicyHoldsWindowWithoutNakErr) {
  // Paper-faithful kStall: the sender degrades to a window stall — it
  // must never finish, never evict, and never blast NAK_ERR.
  const DepartureOutcome out = mass_departure(EvictionPolicy::kStall, 1000);
  EXPECT_FALSE(out.finished);
  EXPECT_EQ(out.stats.members_evicted, 0u);
  EXPECT_EQ(out.stats.nak_errs_sent, 0u);
  EXPECT_GT(out.stall, sim::seconds(30));
}

TEST(MassDeparture, RmcFallbackReleasesPastTheDead) {
  const DepartureOutcome out =
      mass_departure(EvictionPolicy::kRmcFallback, 1000);
  EXPECT_TRUE(out.finished);
  EXPECT_EQ(out.stats.members_evicted, 0u);  // the dead stay in the table
  EXPECT_GT(out.stats.dead_member_releases, 0u);
  EXPECT_EQ(out.stats.nak_errs_sent, 0u);  // nobody asked for released data
}

}  // namespace
}  // namespace hrmc::proto
