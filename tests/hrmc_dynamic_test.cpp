// End-to-end dynamic-network resilience: trunk-flap trains with route
// reconvergence, wireless fade windows, stalled-receiver re-JOIN, and
// membership churn — plus the chaos engine's soak generator and the
// shrinker's fault-window minimization pass.
#include <gtest/gtest.h>

#include "harness/chaos.hpp"
#include "harness/scenario.hpp"

namespace hrmc::harness {
namespace {

Scenario dynamic_scenario(int receivers, std::uint64_t file_bytes,
                          std::uint64_t seed) {
  Workload wl;
  wl.file_bytes = file_bytes;
  Scenario sc = lan_scenario(receivers, 10e6, 256 * 1024, wl, seed);
  sc.time_limit = sim::seconds(60);
  return sc;
}

TEST(DynamicNetwork, TrunkFlapTrainRecovers) {
  // Three full down/up cycles on the group trunk, each repair followed
  // by a reconvergence blackhole. The stream must complete cleanly —
  // flaps cost retransmissions, never correctness.
  Scenario sc = dynamic_scenario(2, 2 * 1024 * 1024, 5);
  sc.faults.trunk_flaps(0, sim::milliseconds(400), sim::seconds(1),
                        sim::milliseconds(200), 3, sim::milliseconds(50));
  const RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_EQ(r.sender.nak_errs_sent, 0u);
}

TEST(DynamicNetwork, ReconvergenceDelaysRecoveryButNotCorrectness) {
  // Identical outage, two repair qualities: an instant repair and one
  // that black-holes for two more seconds while routes reconverge. The
  // slow repair must cost wall-clock time, not data integrity.
  Scenario fast = dynamic_scenario(2, 1024 * 1024, 17);
  fast.faults.trunk_down(0, sim::milliseconds(400))
      .trunk_up(0, sim::milliseconds(900));
  Scenario slow = dynamic_scenario(2, 1024 * 1024, 17);
  slow.faults.trunk_down(0, sim::milliseconds(400))
      .trunk_up(0, sim::milliseconds(900), sim::seconds(2));

  const RunResult rf = run_transfer(fast);
  const RunResult rs = run_transfer(slow);
  ASSERT_TRUE(rf.completed);
  ASSERT_TRUE(rs.completed);
  EXPECT_TRUE(rf.verify_ok);
  EXPECT_TRUE(rs.verify_ok);
  EXPECT_GT(rs.elapsed, rf.elapsed);
}

TEST(DynamicNetwork, WirelessFadeWindowRecovers) {
  // A heavy 802.11-style fade regime over most of the stream: bursty
  // correlated losses the NAK path must grind through.
  Scenario sc = dynamic_scenario(2, 2 * 1024 * 1024, 21);
  net::WirelessLossConfig fade;
  fade.p_good_bad = 0.02;
  fade.mean_burst = 5.0;
  fade.loss_good = 0.01;
  fade.loss_bad = 0.9;
  fade.snr_depth = 0.5;
  fade.snr_period = sim::milliseconds(400);
  sc.faults.wireless(0, sim::milliseconds(300), fade)
      .wireless_stop(0, sim::seconds(2));
  const RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_GE(r.receivers_total.naks_sent, 1u);
}

TEST(DynamicNetwork, ZeroLossWirelessWindowDoesNotPerturbTiming) {
  // Determinism contract: installing wireless models that never drop
  // must leave the run bit-identical to one with no fault plan at all —
  // the models draw from their own substreams and touch nothing else.
  Scenario base = dynamic_scenario(2, 512 * 1024, 33);
  Scenario instrumented = dynamic_scenario(2, 512 * 1024, 33);
  net::WirelessLossConfig quiet;  // all-zero loss probabilities
  quiet.p_good_bad = 0.0;
  quiet.loss_good = 0.0;
  quiet.loss_bad = 0.0;
  instrumented.faults.wireless(0, sim::milliseconds(200), quiet)
      .wireless_stop(0, sim::seconds(1));

  const RunResult rb = run_transfer(base);
  const RunResult ri = run_transfer(instrumented);
  ASSERT_TRUE(rb.completed);
  ASSERT_TRUE(ri.completed);
  EXPECT_EQ(rb.elapsed, ri.elapsed);
  EXPECT_EQ(rb.sender.data_packets_sent, ri.sender.data_packets_sent);
  EXPECT_EQ(rb.sender.retransmissions, ri.sender.retransmissions);
}

TEST(DynamicNetwork, StalledReceiverRejoinsAfterPathRepair) {
  // A long trunk outage mid-stream with the stalled-data watchdog
  // armed: receivers notice the silence and re-JOIN; once the path
  // heals (plus reconvergence) a rejoin lands and the stream completes.
  Scenario sc = dynamic_scenario(2, 2 * 1024 * 1024, 9);
  sc.proto.data_stall_timeout = sim::milliseconds(300);
  sc.faults.trunk_down(0, sim::milliseconds(500))
      .trunk_up(0, sim::seconds(3), sim::milliseconds(50));
  const RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_GE(r.receivers_total.stall_rejoins, 1u);
  EXPECT_EQ(r.sender.nak_errs_sent, 0u);
}

TEST(DynamicNetwork, ChurnLateJoinAndCleanLeave) {
  // Receiver 1 joins the running stream at 600 ms (URG resync, tail
  // only); receiver 2 leaves cleanly at 400 ms. Receiver 0 rides
  // through unaffected and the sender finishes for the survivors.
  Scenario sc = dynamic_scenario(3, 2 * 1024 * 1024, 13);
  sc.churn.push_back({sim::milliseconds(600), 1, true});
  sc.churn.push_back({sim::milliseconds(400), 2, false});
  const RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.sender_finished);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_GE(r.sender.resync_joins_received, 1u);
  ASSERT_EQ(r.per_receiver.size(), 3u);
  EXPECT_EQ(r.per_receiver[0].bytes_delivered, sc.workload.file_bytes);
  // Late joiner anchored mid-stream: got the tail, not the whole file.
  EXPECT_GT(r.per_receiver[1].bytes_delivered, 0u);
  EXPECT_LT(r.per_receiver[1].bytes_delivered, sc.workload.file_bytes);
  // Leaver departed early and is not counted against completion.
  EXPECT_LT(r.per_receiver[2].bytes_delivered, sc.workload.file_bytes);
}

// --- Chaos engine: soak generator and window shrinking ----------------

TEST(ChaosSoak, SoakSpecsRoundTripExactly) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ChaosSpec spec = generate_soak_spec(seed);
    const std::string text = serialize_spec(spec);
    const auto parsed = parse_spec(text);
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed;
    EXPECT_EQ(serialize_spec(*parsed), text) << "seed " << seed;
  }
}

TEST(ChaosSoak, SoakSpecsAreSurvivable) {
  // The soak generator promises survivable-by-construction segments;
  // two full segments through the oracle back that up.
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const ChaosVerdict v = judge(generate_soak_spec(seed));
    EXPECT_TRUE(v.ok) << "seed " << seed << ": " << v.failure;
  }
}

TEST(ChaosShrink, TightensFaultWindowsNotJustEventCount) {
  // An outage that fails only because of its *length*: the pair-drop
  // pass cannot remove it (the fault-free run passes), so the window
  // minimization pass must shorten it instead. 10 Mbps needs ~6.9 s
  // for 8 MiB, so an 11.4 s outage inside a 12 s limit fails, while
  // dropping the outage — or halving it — leaves time to finish.
  ChaosSpec spec;
  spec.seed = 77;
  spec.network_bps = 10e6;
  spec.file_bytes = 8 * 1024 * 1024;
  spec.time_limit = sim::seconds(12);
  spec.eviction = proto::EvictionPolicy::kStall;
  spec.group_kind = {0};
  spec.group_receivers = {2};
  net::FaultPlan plan;
  plan.link_down(1, sim::milliseconds(100))
      .link_up(1, sim::milliseconds(11500));
  spec.faults = plan.events;

  ASSERT_FALSE(judge(spec).ok);
  const ChaosSpec small = shrink(spec);
  // The pair survives (still two events), but the outage window must
  // have been at least halved from the original 11.4 s.
  ASSERT_EQ(small.faults.size(), 2u);
  const sim::SimTime window = small.faults[1].at - small.faults[0].at;
  EXPECT_LE(window, sim::seconds(6));
  EXPECT_GT(window, 0);
  EXPECT_FALSE(judge(small).ok);  // a shrunk repro still reproduces
}

}  // namespace
}  // namespace hrmc::harness
