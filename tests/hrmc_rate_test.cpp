#include "hrmc/rate.hpp"

#include <gtest/gtest.h>

namespace hrmc::proto {
namespace {

using sim::milliseconds;

Config cfg_with(std::uint32_t min_rate = 16 * 1024,
                std::uint32_t max_rate = 125'000'000) {
  Config c;
  c.min_rate = min_rate;
  c.max_rate = max_rate;
  return c;
}

TEST(RateController, StartsAtMinimumInSlowStart) {
  Config c = cfg_with();
  RateController r(c);
  EXPECT_EQ(r.rate(), c.min_rate);
  EXPECT_TRUE(r.in_slow_start());
}

TEST(RateController, BudgetMatchesRateTimesInterval) {
  Config c = cfg_with(100'000);
  RateController r(c);
  // 100 KB/s over 10 ms = 1000 bytes.
  EXPECT_EQ(r.budget(milliseconds(10)), 1000u);
}

TEST(RateController, BudgetCarriesSubByteResidue) {
  Config c = cfg_with(16'666);  // 166.66 bytes per 10 ms
  RateController r(c);
  std::uint64_t total = 0;
  for (int i = 0; i < 100; ++i) total += r.budget(milliseconds(10));
  EXPECT_NEAR(static_cast<double>(total), 16'666.0, 2.0);
}

TEST(RateController, SlowStartDoublesPerInterval) {
  Config c = cfg_with(16 * 1024);
  RateController r(c);
  const std::uint32_t before = r.rate();
  r.maybe_grow(milliseconds(0), milliseconds(20), true);   // baseline
  r.maybe_grow(milliseconds(20), milliseconds(20), true);  // one srtt later
  EXPECT_EQ(r.rate(), before * 2);
}

TEST(RateController, GrowthClockedAtJiffyFloor) {
  // With srtt far below a jiffy, growth still happens at most per jiffy.
  Config c = cfg_with(16 * 1024);
  RateController r(c);
  r.maybe_grow(milliseconds(0), milliseconds(1), true);
  r.maybe_grow(milliseconds(2), milliseconds(1), true);
  r.maybe_grow(milliseconds(4), milliseconds(1), true);
  EXPECT_EQ(r.rate(), c.min_rate);  // under one jiffy: no growth yet
  r.maybe_grow(milliseconds(10), milliseconds(1), true);
  EXPECT_EQ(r.rate(), c.min_rate * 2);
}

TEST(RateController, NoGrowthWhenIdle) {
  Config c = cfg_with();
  RateController r(c);
  r.maybe_grow(milliseconds(0), milliseconds(10), false);
  r.maybe_grow(milliseconds(100), milliseconds(10), false);
  EXPECT_EQ(r.rate(), c.min_rate);
}

TEST(RateController, NegativeFeedbackHalves) {
  Config c = cfg_with(1000, 1'000'000);
  RateController r(c);
  // Grow to a known value first.
  for (int i = 0; i <= 8; ++i) {
    r.maybe_grow(milliseconds(10 * i), milliseconds(10), true);
  }
  const std::uint32_t before = r.rate();
  ASSERT_GT(before, 2000u);
  EXPECT_TRUE(r.on_negative_feedback(milliseconds(200), milliseconds(10)));
  EXPECT_EQ(r.rate(), before / 2);
  EXPECT_FALSE(r.in_slow_start());  // ssthresh now equals the cut rate
}

TEST(RateController, CutHoldoffCollapsesBursts) {
  Config c = cfg_with(1000, 1'000'000);
  RateController r(c);
  for (int i = 0; i <= 8; ++i) {
    r.maybe_grow(milliseconds(10 * i), milliseconds(10), true);
  }
  const std::uint32_t before = r.rate();
  EXPECT_TRUE(r.on_negative_feedback(milliseconds(200), milliseconds(50)));
  // A second NAK within the holdoff is one loss event, not two.
  EXPECT_FALSE(r.on_negative_feedback(milliseconds(210), milliseconds(50)));
  EXPECT_EQ(r.rate(), before / 2);
}

TEST(RateController, RequestedRateCapsTheCut) {
  Config c = cfg_with(1000, 1'000'000);
  RateController r(c);
  for (int i = 0; i <= 9; ++i) {
    r.maybe_grow(milliseconds(10 * i), milliseconds(10), true);
  }
  ASSERT_GT(r.rate(), 8000u);
  r.on_negative_feedback(milliseconds(300), milliseconds(10), 2000);
  EXPECT_EQ(r.rate(), 2000u);
}

TEST(RateController, RateNeverBelowMinimum) {
  Config c = cfg_with(5000);
  RateController r(c);
  for (int i = 0; i < 20; ++i) {
    r.on_negative_feedback(milliseconds(100 * i), milliseconds(10), 1);
  }
  EXPECT_EQ(r.rate(), 5000u);
}

TEST(RateController, UrgentStopsForTwoRtts) {
  Config c = cfg_with(1000, 1'000'000);
  RateController r(c);
  for (int i = 0; i <= 6; ++i) {  // grow above the minimum first
    r.maybe_grow(milliseconds(10 * i), milliseconds(10), true);
  }
  ASSERT_GT(r.rate(), 2 * c.min_rate);
  r.on_urgent(milliseconds(100), milliseconds(30));
  EXPECT_TRUE(r.stopped(milliseconds(100)));
  EXPECT_TRUE(r.stopped(milliseconds(159)));  // 100 + 2*30 = 160 ms
  EXPECT_FALSE(r.stopped(milliseconds(160)));
  EXPECT_EQ(r.rate(), c.min_rate);  // restart from minimum, slow start
  EXPECT_TRUE(r.in_slow_start());
}

TEST(RateController, UrgentStopBitesEvenWithoutRttEstimate) {
  // Regression: with srtt still 0 (no sample yet), 2 * srtt is a
  // zero-length stop — an URGENT request that stopped nothing. The stop
  // must clamp to at least one jiffy.
  Config c = cfg_with();
  RateController r(c);
  r.on_urgent(milliseconds(100), /*srtt=*/0);
  EXPECT_TRUE(r.stopped(milliseconds(100)));
  EXPECT_TRUE(r.stopped(milliseconds(100) + kern::kJiffy - 1));
  EXPECT_FALSE(r.stopped(milliseconds(100) + kern::kJiffy));
}

TEST(RateController, UrgentStopClampsSubJiffySrtt) {
  // A sub-jiffy RTT estimate (LAN) is finer than the transmit pump can
  // observe; the stop still rounds up to a jiffy.
  Config c = cfg_with();
  RateController r(c);
  r.on_urgent(milliseconds(100), sim::microseconds(200));
  EXPECT_TRUE(r.stopped(milliseconds(100) + kern::kJiffy - 1));
  EXPECT_FALSE(r.stopped(milliseconds(100) + kern::kJiffy));
}

TEST(RateController, UrgentStopsDoNotShorten) {
  Config c = cfg_with();
  RateController r(c);
  r.on_urgent(milliseconds(100), milliseconds(50));  // until 200 ms
  r.on_urgent(milliseconds(110), milliseconds(10));  // would end at 130 ms
  EXPECT_TRUE(r.stopped(milliseconds(199)));
  EXPECT_FALSE(r.stopped(milliseconds(200)));
}

TEST(RateController, DeviceFullDecaysGently) {
  Config c = cfg_with(1000, 1'000'000);
  RateController r(c);
  for (int i = 0; i <= 9; ++i) {
    r.maybe_grow(milliseconds(10 * i), milliseconds(10), true);
  }
  const std::uint32_t before = r.rate();
  r.on_device_full(milliseconds(200));
  EXPECT_EQ(r.rate(), before * 7 / 8);
  EXPECT_FALSE(r.in_slow_start());
}

TEST(RateController, MaxRateCaps) {
  Config c = cfg_with(1000, 4000);
  RateController r(c);
  for (int i = 0; i < 10; ++i) {
    r.maybe_grow(milliseconds(10 * i), milliseconds(10), true);
  }
  EXPECT_EQ(r.rate(), 4000u);
}

TEST(RateController, RestartResetsToSlowStart) {
  Config c = cfg_with(1000, 1'000'000);
  RateController r(c);
  for (int i = 0; i <= 5; ++i) {
    r.maybe_grow(milliseconds(10 * i), milliseconds(10), true);
  }
  r.on_negative_feedback(milliseconds(100), milliseconds(1));
  r.restart();
  EXPECT_EQ(r.rate(), 1000u);
  EXPECT_TRUE(r.in_slow_start());
  EXPECT_EQ(r.ssthresh(), c.max_rate);
}

}  // namespace
}  // namespace hrmc::proto
