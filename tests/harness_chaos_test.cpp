// The chaos engine itself: deterministic generation, repro-file
// round-tripping, the pinned seed block the oracle must clear, and the
// full find → shrink → replay loop on an injected failure.
#include "harness/chaos.hpp"

#include <gtest/gtest.h>

#include "net/fault.hpp"

namespace hrmc::harness {
namespace {

TEST(Chaos, GenerateSpecIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 337ull, 496ull, 99999ull}) {
    const ChaosSpec a = generate_spec(seed);
    const ChaosSpec b = generate_spec(seed);
    // Serialized form is exact (doubles print round-trip), so string
    // equality is spec equality.
    EXPECT_EQ(serialize_spec(a), serialize_spec(b)) << "seed=" << seed;
  }
}

TEST(Chaos, GeneratedFaultsAlwaysCarryRecovery) {
  // Survivable-by-construction: every onset has its recovery partner in
  // the plan, targeting the same entity, at a later or equal time —
  // across both the chaos generator and the soak-segment generator.
  const auto check = [](const ChaosSpec& s, std::uint64_t seed) {
    for (const net::FaultEvent& ev : s.faults) {
      const bool onset = ev.kind == net::FaultKind::kReceiverCrash ||
                         ev.kind == net::FaultKind::kLinkDown ||
                         ev.kind == net::FaultKind::kPartition ||
                         ev.kind == net::FaultKind::kBurstLossStart ||
                         ev.kind == net::FaultKind::kReorderStart ||
                         ev.kind == net::FaultKind::kDuplicateStart ||
                         ev.kind == net::FaultKind::kCorruptStart ||
                         ev.kind == net::FaultKind::kControlLossStart ||
                         ev.kind == net::FaultKind::kJitterStart ||
                         ev.kind == net::FaultKind::kTrunkDown ||
                         ev.kind == net::FaultKind::kWirelessStart;
      if (!onset) continue;
      bool recovered = false;
      for (const net::FaultEvent& other : s.faults) {
        if (other.target == ev.target && other.at >= ev.at &&
            static_cast<int>(other.kind) == static_cast<int>(ev.kind) + 1) {
          recovered = true;
          break;
        }
      }
      EXPECT_TRUE(recovered)
          << "seed=" << seed << " kind=" << static_cast<int>(ev.kind);
    }
  };
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    check(generate_spec(seed), seed);
  }
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    check(generate_soak_spec(seed), seed);
  }
}

TEST(Chaos, SerializeParseRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const ChaosSpec s = generate_spec(seed);
    const std::string text = serialize_spec(s);
    const auto back = parse_spec(text);
    ASSERT_TRUE(back.has_value()) << "seed=" << seed;
    EXPECT_EQ(serialize_spec(*back), text) << "seed=" << seed;
  }
}

TEST(Chaos, ParseToleratesCommentsAndBlankLines) {
  const ChaosSpec s = generate_spec(7);
  std::string text = serialize_spec(s);
  text += "# trailing comment like the sweep driver writes\n\n";
  const auto back = parse_spec(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(serialize_spec(*back), serialize_spec(s));
}

TEST(Chaos, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_spec("").has_value());
  EXPECT_FALSE(parse_spec("not-a-repro\nseed 1\n").has_value());
  const std::string good = serialize_spec(generate_spec(3));
  EXPECT_FALSE(parse_spec(good + "mystery_key 42\n").has_value());
  EXPECT_FALSE(
      parse_spec("hrmc-chaos-repro v1\ngroup 2 1\neviction 9\n").has_value());
  EXPECT_FALSE(
      parse_spec("hrmc-chaos-repro v1\ngroup 2 1\nfault 99 0 0\n").has_value());
  // No topology at all: nothing to run.
  EXPECT_FALSE(parse_spec("hrmc-chaos-repro v1\nseed 5\n").has_value());
}

TEST(Chaos, PinnedSeedBlockPassesOracle) {
  // A slice of the CI chaos-smoke block. Any failure here is a protocol
  // regression (or a new oracle false positive — both need a human).
  const auto outcomes = sweep(1, 120);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.verdict.ok)
        << "seed " << o.seed << ": " << o.verdict.failure;
  }
}

TEST(Chaos, JudgeIsDeterministic) {
  const ChaosSpec s = generate_spec(17);
  const ChaosVerdict a = judge(s);
  const ChaosVerdict b = judge(s);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.failure, b.failure);
}

/// An unrecovered crash under kStall: the window stalls forever, the
/// sender cannot finish, and the oracle must say so. (The generator
/// never emits this — it is the injected failure for the shrinker.)
ChaosSpec unrecovered_crash_spec() {
  ChaosSpec s;
  s.seed = 424242;
  s.network_bps = 10e6;
  s.file_bytes = 128 * 1024;
  s.kernel_buf = 64 * 1024;
  s.eviction = proto::EvictionPolicy::kStall;
  s.time_limit = sim::seconds(10);
  s.group_kind = {0, 0};
  s.group_receivers = {2, 1};
  net::FaultPlan plan;
  plan.crash(1, sim::milliseconds(60));
  s.faults = plan.events;
  return s;
}

TEST(Chaos, InjectedFailureShrinksToDeterministicRepro) {
  const ChaosSpec failing = unrecovered_crash_spec();
  const ChaosVerdict v = judge(failing);
  ASSERT_FALSE(v.ok);

  const ChaosSpec small = shrink(failing, 60);
  // The crash is load-bearing, so the shrinker cannot drop it; the
  // stream and the topology both shrink to their floors.
  ASSERT_EQ(small.faults.size(), 1u);
  EXPECT_EQ(small.faults[0].kind, net::FaultKind::kReceiverCrash);
  EXPECT_EQ(small.file_bytes, 4096u);
  EXPECT_LT(small.receiver_count(), failing.receiver_count());

  // The shrunk spec still fails, for the same reason, every time.
  const ChaosVerdict s1 = judge(small);
  const ChaosVerdict s2 = judge(small);
  ASSERT_FALSE(s1.ok);
  EXPECT_EQ(s1.failure, s2.failure);
  EXPECT_EQ(s1.failure, v.failure);

  // And the written repro replays bit-identically after a round trip.
  const auto reparsed = parse_spec(serialize_spec(small));
  ASSERT_TRUE(reparsed.has_value());
  const ChaosVerdict s3 = judge(*reparsed);
  ASSERT_FALSE(s3.ok);
  EXPECT_EQ(s3.failure, s1.failure);
}

TEST(Chaos, ShrinkSanitizesFaultTargetsWhenDroppingReceivers) {
  // The crash targets the last receiver; dropping that receiver must
  // also drop the fault (a shrunk spec never trips arm-time validation)
  // — which makes the scenario pass, so the shrinker keeps the receiver
  // and the repro stays valid.
  ChaosSpec s = unrecovered_crash_spec();
  s.group_kind = {0};
  s.group_receivers = {3};
  net::FaultPlan plan;
  plan.crash(2, sim::milliseconds(60));
  s.faults = plan.events;
  const ChaosSpec small = shrink(s, 40);
  ASSERT_EQ(small.faults.size(), 1u);
  EXPECT_LT(small.faults[0].target, small.receiver_count());
  ASSERT_FALSE(judge(small).ok);
}

TEST(Chaos, JoinLossRaceRegression) {
  // Chaos seed 496 (found by the sweep): group-C baseline loss ate the
  // receiver's initial JOIN, the whole short transfer ran against an
  // empty member table, and the sender released everything RMC-style —
  // the receiver's late NAK then earned NAK_ERR and a stream error. The
  // receiver now re-JOINs after an RTO once DATA arrives while it is
  // still unjoined; this pins both the fix and the chaos spec shape.
  ChaosSpec s;
  s.seed = 496;
  s.network_bps = 100e6;
  s.file_bytes = 65536;
  s.kernel_buf = 131072;
  s.eviction = proto::EvictionPolicy::kEvict;
  s.group_kind = {2};
  s.group_receivers = {1};
  const RunResult r = run_transfer(to_scenario(s));
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_GE(r.receivers_total.join_fast_retries, 1u);
  const ChaosVerdict v = judge_result(s, r);
  EXPECT_TRUE(v.ok) << v.failure;
}

}  // namespace
}  // namespace hrmc::harness
