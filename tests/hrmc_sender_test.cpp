// Sender-side protocol behaviour, tested with hand-crafted feedback
// injected from a receiver host (a capture transport plays the receiver).
#include "hrmc/sender.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/pattern.hpp"
#include "net/topology.hpp"

namespace hrmc::proto {
namespace {

constexpr net::Addr kGroup = net::make_addr(224, 7, 7, 7);
constexpr net::Port kPort = 7500;

struct CaptureTransport final : net::Transport {
  void rx(kern::SkBuffPtr skb) override {
    auto h = read_header(*skb);
    if (h) {
      headers.push_back(*h);
      payload_bytes += skb->size();
    }
  }
  std::vector<Header> headers;
  std::size_t payload_bytes = 0;

  [[nodiscard]] std::vector<Header> of_type(PacketType t) const {
    std::vector<Header> out;
    for (const Header& h : headers) {
      if (h.type == t) out.push_back(h);
    }
    return out;
  }
};

class SenderTest : public ::testing::Test {
 protected:
  SenderTest() {
    net::TopologyConfig tcfg;
    tcfg.seed = 4;
    tcfg.groups = {net::group_a(2)};
    tcfg.groups[0].loss_rate = 0.0;
    topo_ = std::make_unique<net::Topology>(sched_, tcfg);
    for (int i = 0; i < 2; ++i) {
      topo_->receiver(i).register_transport(kIpProtoHrmc, &tap_[i]);
      topo_->receiver(i).join_group(kGroup);
    }
  }

  void make_sender(const Config& cfg) {
    snd_ = std::make_unique<HrmcSender>(topo_->sender(), cfg, kPort,
                                        net::Endpoint{kGroup, kPort});
  }

  /// Feedback packet from receiver `idx` to the sender.
  void inject_from(int idx, PacketType type, kern::Seq seq,
                   std::uint32_t rate = 0, std::uint32_t length = 0,
                   bool urg = false) {
    auto skb = kern::SkBuff::alloc(0, Header::kSize + 44);
    Header h;
    h.sport = kPort;
    h.dport = kPort;
    h.seq = seq;
    h.rate = rate;
    h.length = length;
    h.tries = 1;
    h.type = type;
    h.urg = urg;
    write_header(*skb, h);
    skb->daddr = topo_->sender().addr();
    skb->protocol = kIpProtoHrmc;
    topo_->receiver(idx).send(std::move(skb));
  }

  std::size_t offer(std::size_t bytes) {
    std::vector<std::uint8_t> data(bytes);
    app::pattern_fill(data, offered_);
    const std::size_t n = snd_->send(data);
    offered_ += n;
    return n;
  }

  void run_for(sim::SimTime dt) { sched_.run_until(sched_.now() + dt); }

  sim::Scheduler sched_;
  std::unique_ptr<net::Topology> topo_;
  CaptureTransport tap_[2];
  std::unique_ptr<HrmcSender> snd_;
  std::uint64_t offered_ = 0;
};

TEST_F(SenderTest, FragmentsStreamIntoMssPackets) {
  Config cfg;
  cfg.mss = 1000;
  make_sender(cfg);
  offer(3500);
  run_for(sim::seconds(2));
  auto data = tap_[0].of_type(PacketType::kData);
  ASSERT_GE(data.size(), 4u);
  EXPECT_EQ(data[0].length, 1000u);
  EXPECT_EQ(data[0].seq, Config::kInitialSeq);
  EXPECT_EQ(data[1].seq, Config::kInitialSeq + 1000);
  // Sequence numbers tile the stream.
  std::uint64_t total = 0;
  for (const auto& h : data) total += h.length;
  EXPECT_EQ(total, 3500u);
}

TEST_F(SenderTest, SendRespectsBufferLimit) {
  Config cfg;
  cfg.sndbuf = 8 * 1024;
  make_sender(cfg);
  EXPECT_EQ(offer(100 * 1024), 8 * 1024u);
  EXPECT_EQ(snd_->free_space(), 0u);
  EXPECT_EQ(offer(1), 0u);  // would block
}

TEST_F(SenderTest, JoinAddsMemberAndResponds) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(snd_->members().size(), 1u);
  EXPECT_EQ(tap_[0].of_type(PacketType::kJoinResponse).size(), 1u);
  EXPECT_EQ(snd_->stats().joins_received, 1u);
}

TEST_F(SenderTest, LeaveRemovesMemberAndResponds) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  inject_from(1, PacketType::kJoin, Config::kInitialSeq);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(snd_->members().size(), 2u);
  inject_from(0, PacketType::kLeave, Config::kInitialSeq);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(snd_->members().size(), 1u);
  EXPECT_EQ(tap_[0].of_type(PacketType::kLeaveResponse).size(), 1u);
}

TEST_F(SenderTest, NakTriggersRetransmissionAndRateCut) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(4096);
  // NAK promptly (a *fresh* loss signal): cuts only apply to data sent
  // within ~2 RTO — a NAK for old data (late joiner) must not cut. Wait
  // just until the first packet leaves (slow start paces it out).
  for (int i = 0; i < 100 && tap_[0].of_type(PacketType::kData).empty();
       ++i) {
    run_for(sim::milliseconds(10));
  }
  const auto rate_before = snd_->current_rate();
  const auto data_before = tap_[0].of_type(PacketType::kData).size();
  ASSERT_GT(data_before, 0u);
  inject_from(0, PacketType::kNak, Config::kInitialSeq,
              /*rate=range start*/ Config::kInitialSeq, /*len*/ 1460);
  run_for(sim::milliseconds(5));  // NAK arrives; growth hasn't resumed yet
  EXPECT_EQ(snd_->stats().naks_received, 1u);
  EXPECT_LE(snd_->current_rate(), rate_before);
  EXPECT_GE(snd_->stats().rate_cuts, 1u);
  run_for(sim::milliseconds(200));
  EXPECT_EQ(snd_->stats().retransmissions, 1u);
  EXPECT_GT(tap_[0].of_type(PacketType::kData).size(), data_before);
}

TEST_F(SenderTest, StaleNakDoesNotCutRate) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(4096);
  run_for(sim::seconds(2));  // data is now old news
  inject_from(0, PacketType::kNak, Config::kInitialSeq,
              Config::kInitialSeq, 1460);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(snd_->stats().naks_received, 1u);
  EXPECT_EQ(snd_->stats().rate_cuts, 0u);  // catch-up, not congestion
  EXPECT_GE(snd_->stats().retransmissions, 1u);  // but still retransmitted
}

TEST_F(SenderTest, DuplicateNaksCollapse) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  inject_from(1, PacketType::kJoin, Config::kInitialSeq);
  offer(4096);
  run_for(sim::seconds(1));
  // Both receivers NAK the same packet nearly simultaneously.
  inject_from(0, PacketType::kNak, Config::kInitialSeq,
              Config::kInitialSeq, 1460);
  inject_from(1, PacketType::kNak, Config::kInitialSeq,
              Config::kInitialSeq, 1460);
  run_for(sim::milliseconds(100));
  EXPECT_EQ(snd_->stats().naks_received, 2u);
  EXPECT_EQ(snd_->stats().retransmissions, 1u);  // collapsed
}

TEST_F(SenderTest, NakBelowWindowEarnsNakErr) {
  Config cfg;
  cfg.mode = Mode::kRmc;
  cfg.minbuf_rtts = 1;  // quick release for the test
  make_sender(cfg);
  offer(2048);
  snd_->close();
  run_for(sim::seconds(5));  // everything sent and released
  ASSERT_TRUE(snd_->finished());
  inject_from(0, PacketType::kNak, Config::kInitialSeq,
              Config::kInitialSeq, 1000);
  run_for(sim::milliseconds(100));
  EXPECT_EQ(snd_->stats().nak_errs_sent, 1u);
  ASSERT_EQ(tap_[0].of_type(PacketType::kNakErr).size(), 1u);
  EXPECT_EQ(tap_[0].of_type(PacketType::kNakErr)[0].seq,
            Config::kInitialSeq);
}

TEST_F(SenderTest, HrmcBlocksReleaseUntilAllMembersConfirm) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  inject_from(1, PacketType::kJoin, Config::kInitialSeq);
  offer(1024);
  snd_->close();
  run_for(sim::seconds(2));
  // Receiver 0 confirms; receiver 1 stays silent: no release, and from
  // here on probes go only to receiver 1.
  inject_from(0, PacketType::kUpdate, Config::kInitialSeq + 1024);
  run_for(sim::milliseconds(50));
  const auto probes_to_0 = tap_[0].of_type(PacketType::kProbe).size();
  const auto probes_to_1 = tap_[1].of_type(PacketType::kProbe).size();
  run_for(sim::seconds(3));
  EXPECT_FALSE(snd_->finished());
  EXPECT_GT(snd_->stats().probes_sent, 0u);
  EXPECT_GT(tap_[1].of_type(PacketType::kProbe).size(), probes_to_1);
  EXPECT_EQ(tap_[0].of_type(PacketType::kProbe).size(), probes_to_0);

  inject_from(1, PacketType::kUpdate, Config::kInitialSeq + 1024);
  run_for(sim::seconds(2));
  EXPECT_TRUE(snd_->finished());
}

TEST_F(SenderTest, RmcReleasesWithoutConfirmation) {
  Config cfg;
  cfg.mode = Mode::kRmc;
  make_sender(cfg);
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(1024);
  snd_->close();
  run_for(sim::seconds(5));
  EXPECT_TRUE(snd_->finished());
  EXPECT_EQ(snd_->stats().probes_sent, 0u);
}

TEST_F(SenderTest, CompleteInfoMetricCountsReleases) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(1024);
  snd_->close();
  inject_from(0, PacketType::kUpdate, Config::kInitialSeq + 1024);
  run_for(sim::seconds(3));
  ASSERT_TRUE(snd_->finished());
  EXPECT_EQ(snd_->stats().release_decisions, 1u);
  EXPECT_EQ(snd_->stats().releases_with_complete_info, 1u);
}

TEST_F(SenderTest, UrgentControlStopsTransmission) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  run_for(sim::milliseconds(100));
  offer(200 * 1024);
  run_for(sim::milliseconds(100));
  inject_from(0, PacketType::kControl, Config::kInitialSeq, 0, 0,
              /*urg=*/true);
  // Just long enough for the CONTROL to arrive, shorter than a jiffy so
  // the rate has not regrown.
  run_for(sim::milliseconds(5));
  EXPECT_EQ(snd_->stats().urgent_stops, 1u);
  EXPECT_EQ(snd_->current_rate(), snd_->config().min_rate);
}

TEST_F(SenderTest, WarningControlHalvesRate) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(200 * 1024);
  run_for(sim::milliseconds(500));
  const auto before = snd_->current_rate();
  inject_from(0, PacketType::kControl, Config::kInitialSeq, before / 4);
  run_for(sim::milliseconds(50));
  EXPECT_LE(snd_->current_rate(), before / 2);
  EXPECT_EQ(snd_->stats().rate_requests_received, 1u);
}

TEST_F(SenderTest, KeepalivesBackOffExponentially) {
  make_sender(Config{});
  offer(1024);
  snd_->close();
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  inject_from(0, PacketType::kUpdate, Config::kInitialSeq + 1024);
  run_for(sim::seconds(20));
  const auto kas = snd_->stats().keepalives_sent;
  EXPECT_GT(kas, 2u);
  // Exponential backoff to the 2 s cap: in 20 idle seconds there must be
  // far fewer keepalives than 20s / 20ms initial period.
  EXPECT_LT(kas, 30u);
  run_for(sim::seconds(4));
  // Still ticking at the cap (2 s).
  EXPECT_GE(snd_->stats().keepalives_sent, kas + 1);
}

TEST_F(SenderTest, FinKeepaliveAfterCloseOnEmptyQueue) {
  make_sender(Config{});
  offer(1024);
  run_for(sim::seconds(2));  // transmit everything first
  snd_->close();
  run_for(sim::seconds(1));
  auto kas = tap_[0].of_type(PacketType::kKeepalive);
  ASSERT_GE(kas.size(), 1u);
  EXPECT_TRUE(kas.back().fin);
  EXPECT_EQ(kas.back().seq, Config::kInitialSeq + 1024);
}

TEST_F(SenderTest, LastDataPacketCarriesFin) {
  make_sender(Config{});
  offer(2048);
  snd_->close();  // before transmission: FIN rides the final DATA packet
  run_for(sim::seconds(2));
  auto data = tap_[0].of_type(PacketType::kData);
  ASSERT_GE(data.size(), 2u);
  EXPECT_FALSE(data.front().fin);
  EXPECT_TRUE(data.back().fin);
}

TEST_F(SenderTest, OnWritableFiresAfterRelease) {
  Config cfg;
  cfg.sndbuf = 4 * 1024;
  cfg.mss = 1024;
  make_sender(cfg);
  bool fired = false;
  snd_->on_writable = [&] { fired = true; };
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(4 * 1024);
  EXPECT_EQ(snd_->free_space(), 0u);
  run_for(sim::milliseconds(300));
  inject_from(0, PacketType::kUpdate, Config::kInitialSeq + 4 * 1024);
  run_for(sim::seconds(2));
  EXPECT_TRUE(fired);
  EXPECT_GT(snd_->free_space(), 0u);
}

TEST_F(SenderTest, RateAdvertisedInDataHeaders) {
  make_sender(Config{});
  offer(1024);
  run_for(sim::seconds(1));
  auto data = tap_[0].of_type(PacketType::kData);
  ASSERT_GE(data.size(), 1u);
  EXPECT_GE(data[0].rate, snd_->config().min_rate);
}

TEST_F(SenderTest, TriesFieldCountsAttempts) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(1024);
  run_for(sim::seconds(1));
  inject_from(0, PacketType::kNak, Config::kInitialSeq,
              Config::kInitialSeq, 1024);
  run_for(sim::milliseconds(200));
  auto data = tap_[0].of_type(PacketType::kData);
  ASSERT_GE(data.size(), 2u);
  EXPECT_EQ(data.front().tries, 1);
  EXPECT_EQ(data.back().tries, 2);
}

TEST_F(SenderTest, SolicitedResponseClearsProbeAndSamplesRtt) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(1024);
  snd_->close();
  // Wait for the sender to probe receiver 0 (no update ever arrives).
  run_for(sim::seconds(1));
  const McMember* m = snd_->members().find(topo_->receiver(0).addr());
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(m->probe_pending);
  const sim::SimTime srtt_before = snd_->srtt();
  // Solicited (URG-marked) UPDATE: answers the probe and is timed.
  auto skb = kern::SkBuff::alloc(0, Header::kSize + 44);
  Header h;
  h.sport = kPort;
  h.dport = kPort;
  h.seq = Config::kInitialSeq + 1024;
  h.tries = 1;
  h.type = PacketType::kUpdate;
  h.urg = true;
  write_header(*skb, h);
  skb->daddr = topo_->sender().addr();
  skb->protocol = kIpProtoHrmc;
  topo_->receiver(0).send(std::move(skb));
  run_for(sim::milliseconds(50));
  EXPECT_FALSE(m->probe_pending);
  EXPECT_NE(snd_->srtt(), srtt_before);  // a sample was taken
}

TEST_F(SenderTest, UnsolicitedUpdateClearsProbeWithoutSampling) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(1024);
  snd_->close();
  run_for(sim::seconds(1));
  const McMember* m = snd_->members().find(topo_->receiver(0).addr());
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(m->probe_pending);
  const sim::SimTime srtt_before = snd_->srtt();
  // A periodic (unmarked) UPDATE confirming everything: probe resolved
  // but NOT timed — it may have crossed the probe in flight.
  inject_from(0, PacketType::kUpdate, Config::kInitialSeq + 1024);
  run_for(sim::milliseconds(50));
  EXPECT_FALSE(m->probe_pending);
  EXPECT_EQ(snd_->srtt(), srtt_before);  // no sample
}

TEST_F(SenderTest, ProbeBookkeepingSurvivesSequenceWrap) {
  // Regression: probe_seq == 0 doubled as "no probe outstanding", so a
  // probe for a release gate that lands exactly on sequence 0 (after
  // the 2^32 wrap) never counted its retries and the lacking member
  // could not be declared dead — the window stalled forever. The
  // explicit probe_pending flag decouples the two.
  Config cfg;
  cfg.initial_seq = static_cast<kern::Seq>(0) - 2000;  // wrap mid-stream
  cfg.mss = 1000;
  cfg.eviction_policy = EvictionPolicy::kEvict;
  cfg.max_probe_retries = 3;
  make_sender(cfg);
  inject_from(0, PacketType::kJoin, cfg.initial_seq);
  run_for(sim::milliseconds(50));
  // Acknowledge the first packet only, then go silent: the release gate
  // sticks at the head [-1000, 0), so every probe carries seq 0.
  inject_from(0, PacketType::kUpdate, static_cast<kern::Seq>(0) - 1000);
  offer(3000);
  snd_->close();
  run_for(sim::seconds(30));

  // Probes at gate 0 were actually sent...
  bool probed_at_zero = false;
  for (const Header& h : tap_[0].of_type(PacketType::kProbe)) {
    probed_at_zero |= h.seq == 0;
  }
  EXPECT_TRUE(probed_at_zero);
  // ...their retries counted, and the silent member was evicted, which
  // unblocks the window and lets the sender finish.
  EXPECT_GT(snd_->stats().probe_retries, 0u);
  EXPECT_EQ(snd_->stats().members_evicted, 1u);
  EXPECT_TRUE(snd_->finished());
}

TEST_F(SenderTest, UnknownFeedbackSenderIsAdopted) {
  make_sender(Config{});
  // UPDATE from a receiver whose JOIN never arrived: adopted as member.
  // It claims a position ahead of anything sent, so its next_expected is
  // clamped to snd_nxt — feedback cannot confirm bytes that don't exist.
  inject_from(1, PacketType::kUpdate, Config::kInitialSeq + 100);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(snd_->members().size(), 1u);
  const McMember* m = snd_->members().find(topo_->receiver(1).addr());
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->next_expected, snd_->snd_nxt());
  EXPECT_EQ(snd_->stats().feedback_clamped, 1u);
}

// --- Inbound NAK validation (chaos hardening) -------------------------
//
// A NAK is attacker-adjacent input: a corrupted or replayed range must
// be dropped and counted, never acted on. NAK_ERR stays reserved for
// genuine RMC-semantics gaps (request for data legitimately released).

TEST_F(SenderTest, NakBeyondHighestSentIsDroppedAndCounted) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(4096);
  run_for(sim::seconds(1));  // everything offered is on the wire
  const kern::Seq sent = snd_->snd_sent();
  // Range starts past the highest byte ever sent: no transmission this
  // could be a loss signal for. Retransmitting it would send garbage.
  inject_from(0, PacketType::kNak, Config::kInitialSeq, sent + 1000, 1460);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(snd_->stats().naks_invalid, 1u);
  EXPECT_EQ(snd_->stats().retransmissions, 0u);
  EXPECT_EQ(snd_->stats().nak_errs_sent, 0u);
}

TEST_F(SenderTest, NakRangeEndBeyondHighestSentIsDroppedAndCounted) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(4096);
  run_for(sim::seconds(1));
  const kern::Seq sent = snd_->snd_sent();
  // Starts inside the sent range but claims a gap running past it.
  inject_from(0, PacketType::kNak, Config::kInitialSeq, sent - 100,
              2000);
  run_for(sim::milliseconds(50));
  EXPECT_EQ(snd_->stats().naks_invalid, 1u);
  EXPECT_EQ(snd_->stats().retransmissions, 0u);
}

TEST_F(SenderTest, EmptyAndAbsurdNakRangesAreDropped) {
  make_sender(Config{});
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(4096);
  run_for(sim::seconds(1));
  inject_from(0, PacketType::kNak, Config::kInitialSeq,
              Config::kInitialSeq, 0);  // zero-length gap
  inject_from(0, PacketType::kNak, Config::kInitialSeq,
              Config::kInitialSeq, 0xC0000000u);  // > 2^30: wrapped junk
  run_for(sim::milliseconds(50));
  EXPECT_EQ(snd_->stats().naks_invalid, 2u);
  EXPECT_EQ(snd_->stats().retransmissions, 0u);
}

TEST_F(SenderTest, StaleNakForConfirmedDataIsDroppedNotErrored) {
  Config cfg;
  cfg.minbuf_rtts = 1;  // quick release for the test
  make_sender(cfg);
  inject_from(0, PacketType::kJoin, Config::kInitialSeq);
  offer(2048);
  snd_->close();
  run_for(sim::seconds(1));
  // The member confirms everything; the window releases fully.
  inject_from(0, PacketType::kUpdate, snd_->snd_nxt());
  run_for(sim::seconds(5));
  ASSERT_TRUE(snd_->finished());
  // A duplicate NAK for data this very member already confirmed (a
  // reordered leftover, not an RMC reliability gap): dropped and
  // counted — answering NAK_ERR would make the receiver declare a
  // bogus stream error.
  inject_from(0, PacketType::kNak, snd_->snd_nxt(), Config::kInitialSeq,
              1000);
  run_for(sim::milliseconds(100));
  EXPECT_EQ(snd_->stats().naks_stale, 1u);
  EXPECT_EQ(snd_->stats().nak_errs_sent, 0u);
  EXPECT_TRUE(tap_[0].of_type(PacketType::kNakErr).empty());
}

}  // namespace
}  // namespace hrmc::proto
