// End-to-end transfers over the simulated internetwork: the core
// correctness property — every receiver reassembles exactly the byte
// stream the sender's application wrote, under loss, heterogeneous
// delay, and buffer pressure.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace hrmc::harness {
namespace {

Workload small_mem_workload(std::uint64_t bytes = 512 * 1024) {
  Workload wl;
  wl.file_bytes = bytes;
  return wl;
}

TEST(EndToEnd, LosslessLanSingleReceiver) {
  Workload wl = small_mem_workload();
  Scenario sc = lan_scenario(1, 10e6, 256 << 10, wl, 42);
  sc.topo.groups[0].loss_rate = 0.0;  // perfectly clean network
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.sender_finished);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_EQ(r.receivers_total.bytes_delivered, wl.file_bytes);
  EXPECT_EQ(r.sender.nak_errs_sent, 0u);
  EXPECT_GT(r.throughput_mbps, 0.5);
}

TEST(EndToEnd, LosslessLanThreeReceivers) {
  Workload wl = small_mem_workload();
  Scenario sc = lan_scenario(3, 10e6, 256 << 10, wl, 43);
  sc.topo.groups[0].loss_rate = 0.0;
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_EQ(r.receivers_total.bytes_delivered, 3 * wl.file_bytes);
}

TEST(EndToEnd, LanWithLossStillReliable) {
  Workload wl = small_mem_workload();
  Scenario sc = lan_scenario(2, 10e6, 128 << 10, wl, 44);
  sc.topo.groups[0].loss_rate = 0.01;  // 1%: plenty of NAK traffic
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_GT(r.sender.retransmissions, 0u);
  EXPECT_GT(r.receivers_total.naks_sent, 0u);
}

TEST(EndToEnd, WanHighLossReliable) {
  Workload wl = small_mem_workload(256 * 1024);
  Scenario sc = test_case_scenario(3, 4, 10e6, 128 << 10, wl, 45);
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed) << "WAN transfer did not finish";
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
}

TEST(EndToEnd, MixedGroupsReliable) {
  Workload wl = small_mem_workload(256 * 1024);
  Scenario sc = test_case_scenario(4, 5, 10e6, 256 << 10, wl, 46);
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
}

TEST(EndToEnd, TinyBufferStillCompletes) {
  Workload wl = small_mem_workload(256 * 1024);
  Scenario sc = lan_scenario(2, 10e6, 64 << 10, wl, 47);
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
}

TEST(EndToEnd, DiskToDiskTransfer) {
  Workload wl = small_mem_workload(1024 * 1024);
  wl.disk_source = true;
  wl.disk_sink = true;
  Scenario sc = lan_scenario(2, 10e6, 256 << 10, wl, 48);
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
}

TEST(EndToEnd, HundredMbpsNetwork) {
  Workload wl = small_mem_workload(2 * 1024 * 1024);
  wl.sink_read_rate_bps = 64e6;
  Scenario sc = lan_scenario(2, 100e6, 512 << 10, wl, 49);
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_GT(r.throughput_mbps, 2.0);
}

TEST(EndToEnd, RmcModeCompletesOnCleanNetwork) {
  Workload wl = small_mem_workload();
  Scenario sc = lan_scenario(2, 10e6, 256 << 10, wl, 50);
  sc.proto.mode = proto::Mode::kRmc;
  sc.topo.groups[0].loss_rate = 0.0;
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  // RMC sends no updates and no probes (Table 1: H-RMC only).
  EXPECT_EQ(r.receivers_total.updates_sent, 0u);
  EXPECT_EQ(r.sender.probes_sent, 0u);
}

TEST(EndToEnd, HrmcSendsUpdatesAndRmcDoesNot) {
  Workload wl = small_mem_workload();
  Scenario hrmc_sc = lan_scenario(1, 10e6, 256 << 10, wl, 51);
  RunResult hrmc_r = run_transfer(hrmc_sc);
  EXPECT_GT(hrmc_r.receivers_total.updates_sent, 0u);
}

TEST(EndToEnd, ThroughputGrowsWithBufferSize) {
  // The headline qualitative result of Figs 10/12: more kernel buffer,
  // more throughput, saturating at large sizes.
  Workload wl = small_mem_workload(4 * 1024 * 1024);
  Scenario small = lan_scenario(1, 100e6, 64 << 10, wl, 52);
  Scenario large = lan_scenario(1, 100e6, 1024 << 10, wl, 52);
  RunResult rs = run_transfer(small);
  RunResult rl = run_transfer(large);
  ASSERT_TRUE(rs.completed);
  ASSERT_TRUE(rl.completed);
  EXPECT_GT(rl.throughput_mbps, rs.throughput_mbps * 1.5)
      << "64K: " << rs.throughput_mbps << " Mbps, 1024K: "
      << rl.throughput_mbps << " Mbps";
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  Workload wl = small_mem_workload();
  Scenario sc = lan_scenario(2, 10e6, 128 << 10, wl, 53);
  sc.topo.groups[0].loss_rate = 0.005;
  RunResult a = run_transfer(sc);
  RunResult b = run_transfer(sc);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.sender.data_packets_sent, b.sender.data_packets_sent);
  EXPECT_EQ(a.sender.retransmissions, b.sender.retransmissions);
  EXPECT_EQ(a.receivers_total.naks_sent, b.receivers_total.naks_sent);
}

}  // namespace
}  // namespace hrmc::harness
