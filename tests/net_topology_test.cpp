#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hrmc::net {
namespace {

/// Minimal transport that records arrivals.
struct CaptureTransport final : Transport {
  explicit CaptureTransport(sim::Scheduler& s) : sched(&s) {}
  void rx(kern::SkBuffPtr skb) override {
    packets.push_back(std::move(skb));
    times.push_back(sched->now());
  }
  sim::Scheduler* sched;
  std::vector<kern::SkBuffPtr> packets;
  std::vector<sim::SimTime> times;
};

constexpr std::uint8_t kProto = 200;
constexpr Addr kGroup = make_addr(224, 1, 2, 3);

TopologyConfig two_group_cfg() {
  TopologyConfig cfg;
  cfg.seed = 5;
  cfg.groups = {group_a(2), group_c(2)};
  return cfg;
}

kern::SkBuffPtr make_packet(Addr dst, std::size_t payload = 100) {
  auto skb = kern::SkBuff::alloc(payload);
  skb->put(payload);
  skb->daddr = dst;
  skb->protocol = kProto;
  return skb;
}

TEST(Topology, BuildsSenderAndReceivers) {
  sim::Scheduler sched;
  Topology topo(sched, two_group_cfg());
  EXPECT_EQ(topo.receiver_count(), 4u);
  EXPECT_EQ(topo.receiver_group(0), 0u);
  EXPECT_EQ(topo.receiver_group(2), 1u);
  EXPECT_NE(topo.sender().addr(), 0u);
  // Addresses unique.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(topo.receiver(i).addr(), topo.receiver(j).addr());
    }
  }
}

TEST(Topology, UnicastSenderToReceiverAndBack) {
  sim::Scheduler sched;
  Topology topo(sched, two_group_cfg());
  CaptureTransport at_rcv(sched), at_snd(sched);
  topo.receiver(0).register_transport(kProto, &at_rcv);
  topo.sender().register_transport(kProto, &at_snd);

  topo.sender().send(make_packet(topo.receiver(0).addr()));
  sched.run_until();
  ASSERT_EQ(at_rcv.packets.size(), 1u);
  EXPECT_EQ(at_rcv.packets[0]->saddr, topo.sender().addr());

  topo.receiver(0).send(make_packet(topo.sender().addr()));
  sched.run_until();
  ASSERT_EQ(at_snd.packets.size(), 1u);
  EXPECT_EQ(at_snd.packets[0]->saddr, topo.receiver(0).addr());
}

TEST(Topology, GroupDelayDifferentiatesGroups) {
  sim::Scheduler sched;
  Topology topo(sched, two_group_cfg());
  CaptureTransport fast(sched), slow(sched);
  topo.receiver(0).register_transport(kProto, &fast);  // group A: 2 ms
  topo.receiver(2).register_transport(kProto, &slow);  // group C: 100 ms

  topo.sender().send(make_packet(topo.receiver(0).addr()));
  topo.sender().send(make_packet(topo.receiver(2).addr()));
  sched.run_until();
  ASSERT_EQ(fast.packets.size(), 1u);
  ASSERT_EQ(slow.packets.size(), 1u);
  EXPECT_GT(slow.times[0], fast.times[0] + sim::milliseconds(90));
}

TEST(Topology, MulticastReachesOnlyJoinedReceivers) {
  sim::Scheduler sched;
  TopologyConfig cfg = two_group_cfg();
  cfg.groups[0].loss_rate = 0;
  cfg.groups[1].loss_rate = 0;
  Topology topo(sched, cfg);
  std::vector<CaptureTransport> taps;
  taps.reserve(4);
  for (std::size_t i = 0; i < 4; ++i) {
    taps.emplace_back(sched);
    topo.receiver(i).register_transport(kProto, &taps[i]);
  }
  topo.receiver(0).join_group(kGroup);
  topo.receiver(2).join_group(kGroup);

  topo.sender().send(make_packet(kGroup));
  sched.run_until();
  EXPECT_EQ(taps[0].packets.size(), 1u);
  EXPECT_EQ(taps[1].packets.size(), 0u);
  EXPECT_EQ(taps[2].packets.size(), 1u);
  EXPECT_EQ(taps[3].packets.size(), 0u);
}

TEST(Topology, LeavePrunesDelivery) {
  sim::Scheduler sched;
  TopologyConfig cfg = two_group_cfg();
  cfg.groups[0].loss_rate = 0;
  cfg.groups[1].loss_rate = 0;
  Topology topo(sched, cfg);
  CaptureTransport tap(sched);
  topo.receiver(0).register_transport(kProto, &tap);
  topo.receiver(0).join_group(kGroup);
  topo.sender().send(make_packet(kGroup));
  sched.run_until();
  ASSERT_EQ(tap.packets.size(), 1u);

  topo.receiver(0).leave_group(kGroup);
  topo.sender().send(make_packet(kGroup));
  sched.run_until();
  EXPECT_EQ(tap.packets.size(), 1u);  // nothing new
}

TEST(Topology, LossySimGroupLosesPackets) {
  sim::Scheduler sched;
  TopologyConfig cfg;
  cfg.seed = 11;
  cfg.groups = {group_c(1)};  // 2% loss
  Topology topo(sched, cfg);
  CaptureTransport tap(sched);
  topo.receiver(0).register_transport(kProto, &tap);
  topo.receiver(0).join_group(kGroup);
  // Pace the sends so only the loss models (not queue overflow or the
  // card-overrun model) act on them.
  for (int i = 0; i < 3000; ++i) {
    sched.schedule_at(sim::milliseconds(i), [&] {
      topo.sender().send(make_packet(kGroup, 10));
    });
  }
  sched.run_until();
  const double received = static_cast<double>(tap.packets.size());
  EXPECT_LT(received, 2990.0);
  EXPECT_NEAR(received, 3000.0 * 0.98, 40.0);
}

TEST(Topology, CorrelatedShareSplitsLoss) {
  sim::Scheduler sched;
  TopologyConfig cfg;
  cfg.seed = 13;
  cfg.groups = {group_c(2)};
  Topology topo(sched, cfg);
  CaptureTransport a(sched), b(sched);
  topo.receiver(0).register_transport(kProto, &a);
  topo.receiver(1).register_transport(kProto, &b);
  topo.receiver(0).join_group(kGroup);
  topo.receiver(1).join_group(kGroup);
  for (int i = 0; i < 5000; ++i) {
    sched.schedule_at(sim::milliseconds(i), [&] {
      topo.sender().send(make_packet(kGroup, 10));
    });
  }
  sched.run_until();
  const auto router_drops = topo.group_router(0).counters().get("loss_drops");
  std::uint64_t nic_drops = 0;
  // Receiver NICs are reachable via counters on the topology's NICs; use
  // the packet counts instead: arrivals differ between receivers exactly
  // by the uncorrelated component.
  EXPECT_GT(router_drops, 50u);  // ~5000 * 1.8%
  EXPECT_NE(a.packets.size(), b.packets.size());
  (void)nic_drops;
}

TEST(Topology, JoinFromNonMemberHostThrows) {
  sim::Scheduler sched;
  Topology topo_a(sched, two_group_cfg());
  Topology topo_b(sched, two_group_cfg());
  EXPECT_THROW(topo_a.join_group(kGroup, &topo_b.receiver(0)),
               std::logic_error);
  EXPECT_THROW(topo_a.join_group(topo_a.sender().addr(),
                                 &topo_a.receiver(0)),
               std::logic_error);
}

TEST(Topology, CharacteristicGroupsMatchFig14) {
  GroupSpec a = group_a(3), b = group_b(4), c = group_c(5);
  EXPECT_EQ(a.delay, sim::milliseconds(2));
  EXPECT_DOUBLE_EQ(a.loss_rate, 0.00005);
  EXPECT_EQ(a.receivers, 3);
  EXPECT_EQ(b.delay, sim::milliseconds(20));
  EXPECT_DOUBLE_EQ(b.loss_rate, 0.005);
  EXPECT_EQ(c.delay, sim::milliseconds(100));
  EXPECT_DOUBLE_EQ(c.loss_rate, 0.02);
}

}  // namespace
}  // namespace hrmc::net
