#include "harness/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/table.hpp"

namespace hrmc::harness {
namespace {

TEST(ScenarioBuilders, LanScenarioShape) {
  Workload wl;
  Scenario sc = lan_scenario(3, 100e6, 512 << 10, wl, 9);
  ASSERT_EQ(sc.topo.groups.size(), 1u);
  EXPECT_EQ(sc.topo.groups[0].receivers, 3);
  EXPECT_EQ(sc.topo.groups[0].label, "A");
  EXPECT_DOUBLE_EQ(sc.topo.network_bps, 100e6);
  EXPECT_EQ(sc.proto.sndbuf, 512u << 10);
  EXPECT_EQ(sc.proto.rcvbuf, 512u << 10);
}

TEST(ScenarioBuilders, TestCasesMatchFig14b) {
  Workload wl;
  // Test 1: all A. Test 2: all B. Test 3: all C.
  EXPECT_EQ(test_case_scenario(1, 10, 10e6, 64 << 10, wl, 1)
                .topo.groups[0].label,
            "A");
  EXPECT_EQ(test_case_scenario(2, 10, 10e6, 64 << 10, wl, 1)
                .topo.groups[0].label,
            "B");
  EXPECT_EQ(test_case_scenario(3, 10, 10e6, 64 << 10, wl, 1)
                .topo.groups[0].label,
            "C");
  // Test 4: 80% B, 20% C.
  Scenario t4 = test_case_scenario(4, 10, 10e6, 64 << 10, wl, 1);
  ASSERT_EQ(t4.topo.groups.size(), 2u);
  EXPECT_EQ(t4.topo.groups[0].receivers, 8);
  EXPECT_EQ(t4.topo.groups[1].receivers, 2);
  // Test 5: 20% B, 80% C.
  Scenario t5 = test_case_scenario(5, 10, 10e6, 64 << 10, wl, 1);
  EXPECT_EQ(t5.topo.groups[0].receivers, 2);
  EXPECT_EQ(t5.topo.groups[1].receivers, 8);
  EXPECT_THROW(test_case_scenario(6, 10, 10e6, 64 << 10, wl, 1),
               std::invalid_argument);
}

TEST(ScenarioBuilders, BufferSweeps) {
  EXPECT_EQ(buffer_sweep().size(), 5u);
  EXPECT_EQ(buffer_sweep().front(), 64u << 10);
  EXPECT_EQ(buffer_sweep().back(), 1024u << 10);
  EXPECT_EQ(buffer_sweep_extended().back(), 4096u << 10);
  EXPECT_EQ(buf_label(256 << 10), "256K");
}

TEST(RunResult, CompleteInfoPercent) {
  RunResult r;
  EXPECT_DOUBLE_EQ(r.complete_info_pct(), 100.0);  // no decisions yet
  r.sender.release_decisions = 200;
  r.sender.releases_with_complete_info = 50;
  EXPECT_DOUBLE_EQ(r.complete_info_pct(), 25.0);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"buffer", "Mbps"});
  t.add_row({"64K", "4.75"});
  t.add_row({"1024K", "9.49"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("buffer"), std::string::npos);
  EXPECT_NE(out.find("1024K"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, FormatsDoubles) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(RunTransfer, ReportsPerReceiverStats) {
  Workload wl;
  wl.file_bytes = 64 * 1024;
  Scenario sc = lan_scenario(3, 10e6, 128 << 10, wl, 12);
  RunResult r = run_transfer(sc);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.per_receiver.size(), 3u);
  std::uint64_t sum = 0;
  for (const auto& rs : r.per_receiver) sum += rs.bytes_delivered;
  EXPECT_EQ(sum, r.receivers_total.bytes_delivered);
}

TEST(RunTransfer, TimeLimitProducesIncompleteResult) {
  Workload wl;
  wl.file_bytes = 50 * 1024 * 1024;  // cannot finish in the limit below
  Scenario sc = lan_scenario(1, 10e6, 256 << 10, wl, 13);
  sc.time_limit = sim::milliseconds(500);
  RunResult r = run_transfer(sc);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.throughput_mbps, 0.0);
}

}  // namespace
}  // namespace hrmc::harness
