// Byte-level fuzzing of the wire parser (chaos hardening): truncated
// headers, impossible lengths, unknown types, bit flips, and plain
// random bytes must never crash the decoder — and anything it does
// accept must be internally consistent.
#include "hrmc/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "kern/skbuff.hpp"
#include "sim/random.hpp"

namespace hrmc::proto {
namespace {

kern::SkBuffPtr make_raw(const std::vector<std::uint8_t>& bytes) {
  auto skb = kern::SkBuff::alloc(bytes.size(), 64);
  std::uint8_t* p = skb->put(bytes.size());
  std::copy(bytes.begin(), bytes.end(), p);
  return skb;
}

/// A well-formed packet of type `t` carrying `payload` pattern bytes.
kern::SkBuffPtr make_valid(PacketType t, std::size_t payload) {
  auto skb = kern::SkBuff::alloc(payload, 64);
  std::uint8_t* p = skb->put(payload);
  for (std::size_t i = 0; i < payload; ++i) {
    p[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  Header h;
  h.sport = 7500;
  h.dport = 7500;
  h.seq = 1000;
  h.rate = 250000;
  h.length = static_cast<std::uint32_t>(
      t == PacketType::kData || t == PacketType::kFec ? payload : 0);
  h.tries = 1;
  h.type = t;
  write_header(*skb, h);
  return skb;
}

std::vector<std::uint8_t> frame_bytes(const kern::SkBuff& skb) {
  return {skb.data(), skb.data() + skb.size()};
}

TEST(WireFuzz, TruncatedHeadersRejected) {
  const auto full = frame_bytes(*make_valid(PacketType::kData, 32));
  for (std::size_t len = 0; len < Header::kSize; ++len) {
    std::vector<std::uint8_t> cut(full.begin(),
                                  full.begin() + static_cast<long>(len));
    auto skb = make_raw(cut);
    EXPECT_FALSE(peek_header(*skb).has_value()) << "len=" << len;
    EXPECT_FALSE(read_header(*skb).has_value()) << "len=" << len;
    EXPECT_EQ(skb->size(), len);  // a rejected packet is never stripped
  }
}

TEST(WireFuzz, UnknownTypeRejected) {
  for (int raw : {0, 14, 15}) {
    auto bytes = frame_bytes(*make_valid(PacketType::kData, 16));
    bytes[19] = static_cast<std::uint8_t>((bytes[19] & 0xf0) | raw);
    auto skb = make_raw(bytes);
    EXPECT_FALSE(peek_header(*skb).has_value()) << "type=" << raw;
    EXPECT_FALSE(read_header(*skb).has_value()) << "type=" << raw;
  }
}

TEST(WireFuzz, DataLengthBeyondPayloadRejected) {
  // A DATA header claiming more payload than the buffer holds would
  // deliver bytes that were never sent; the parser must refuse it.
  for (std::uint32_t claim : {33u, 1460u, 0x7fffffffu, 0xffffffffu}) {
    auto bytes = frame_bytes(*make_valid(PacketType::kData, 32));
    bytes[12] = static_cast<std::uint8_t>(claim >> 24);
    bytes[13] = static_cast<std::uint8_t>(claim >> 16);
    bytes[14] = static_cast<std::uint8_t>(claim >> 8);
    bytes[15] = static_cast<std::uint8_t>(claim);
    auto skb = make_raw(bytes);
    EXPECT_FALSE(peek_header(*skb).has_value()) << "claim=" << claim;
  }
  // Control types don't carry payload in `length`, so the bound does
  // not apply to them (a NAK's length is a gap size, not bytes here).
  auto bytes = frame_bytes(*make_valid(PacketType::kNak, 0));
  bytes[12] = 0x00;
  bytes[13] = 0x10;
  bytes[14] = 0x00;
  bytes[15] = 0x00;
  EXPECT_TRUE(peek_header(*make_raw(bytes)).has_value());
}

TEST(WireFuzz, EveryOneBitFlipCaughtByChecksum) {
  const auto good = frame_bytes(*make_valid(PacketType::kData, 44));
  {
    auto skb = make_raw(good);
    ASSERT_TRUE(read_header(*skb).has_value());
  }
  for (std::size_t bit = 0; bit < good.size() * 8; ++bit) {
    auto bytes = good;
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    auto skb = make_raw(bytes);
    EXPECT_FALSE(read_header(*skb).has_value()) << "bit=" << bit;
  }
}

TEST(WireFuzz, RandomBuffersNeverCrashAndAcceptedFramesAreConsistent) {
  sim::Rng rng(20260806);
  for (int iter = 0; iter < 20000; ++iter) {
    const auto len =
        static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    auto skb = make_raw(bytes);
    const auto peeked = peek_header(*skb);
    if (peeked) {
      const auto t = static_cast<std::uint8_t>(peeked->type);
      EXPECT_GE(t, static_cast<std::uint8_t>(PacketType::kData));
      EXPECT_LE(t, static_cast<std::uint8_t>(PacketType::kAggUpdate));
      if (peeked->type == PacketType::kData ||
          peeked->type == PacketType::kFec) {
        EXPECT_LE(peeked->length, skb->size() - Header::kSize);
      }
    }
    const std::size_t before = skb->size();
    const auto read = read_header(*skb);
    if (read) {
      EXPECT_EQ(skb->size(), before - Header::kSize);
    } else {
      EXPECT_EQ(skb->size(), before);
    }
  }
}

TEST(WireFuzz, CorruptedValidFramesNeverCrash) {
  // Start from a well-formed frame of every type and smash 1-4 random
  // bytes: the decoder either rejects it (almost always — the checksum
  // is in the way) or returns a header whose invariants still hold.
  sim::Rng rng(987654321);
  const PacketType kTypes[] = {
      PacketType::kData,    PacketType::kNak,         PacketType::kNakErr,
      PacketType::kJoin,    PacketType::kJoinResponse, PacketType::kLeave,
      PacketType::kLeaveResponse, PacketType::kControl, PacketType::kKeepalive,
      PacketType::kUpdate,  PacketType::kProbe,       PacketType::kFec};
  for (int iter = 0; iter < 5000; ++iter) {
    const PacketType t = kTypes[rng.uniform_int(0, 11)];
    const bool data_bearing =
        t == PacketType::kData || t == PacketType::kFec;
    auto bytes = frame_bytes(
        *make_valid(t, data_bearing
                           ? static_cast<std::size_t>(rng.uniform_int(0, 48))
                           : 0));
    const auto smashes = rng.uniform_int(1, 4);
    for (std::int64_t s = 0; s < smashes; ++s) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    auto skb = make_raw(bytes);
    const auto h = read_header(*skb);
    if (h && (h->type == PacketType::kData || h->type == PacketType::kFec)) {
      EXPECT_LE(h->length, skb->size());
    }
  }
}

}  // namespace
}  // namespace hrmc::proto
