// Adversarial disturbance kinds (chaos engine): reordering, duplication,
// bit corruption, control-plane-only loss, and delay jitter injected at
// the group router, end to end through the protocol. Each test pins the
// reliability contract: delivery is exact-once and in order no matter
// what the network re-sequences, clones, or mangles.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace hrmc::harness {
namespace {

Scenario clean_lan(int receivers, std::uint64_t seed,
                   std::uint64_t bytes = 512 * 1024) {
  Workload wl;
  wl.file_bytes = bytes;
  Scenario sc = lan_scenario(receivers, 10e6, 256 << 10, wl, seed);
  sc.topo.groups[0].loss_rate = 0.0;  // disturbances are the only adversity
  sc.time_limit = sim::seconds(60);
  return sc;
}

TEST(Disturb, ReorderPreservesDelivery) {
  Scenario sc = clean_lan(2, 81);
  sc.faults.reorder(0, sim::milliseconds(20), 0.3, sim::milliseconds(3))
      .reorder_stop(0, sim::milliseconds(600));
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  // The shuffle was real: receivers buffered out-of-order arrivals.
  EXPECT_GT(r.receivers_total.out_of_order_packets, 0u);
}

TEST(Disturb, DuplicationNeverDoubleDelivers) {
  Scenario sc = clean_lan(2, 82);
  sc.faults.duplicate(0, sim::milliseconds(20), 0.3)
      .duplicate_stop(0, sim::milliseconds(600));
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  // Clones arrived and were discarded as duplicates...
  EXPECT_GT(r.receivers_total.duplicate_packets, 0u);
  // ...and the application saw each byte exactly once.
  for (const auto& rs : r.per_receiver) {
    EXPECT_EQ(rs.bytes_delivered, sc.workload.file_bytes);
  }
}

TEST(Disturb, CorruptionAlwaysCaughtByChecksumAndCounted) {
  Scenario sc = clean_lan(2, 83);
  sc.faults.corrupt(0, sim::milliseconds(20), 0.15)
      .corrupt_stop(0, sim::milliseconds(600));
  RunResult r = run_transfer(sc);
  // A flipped bit is a lost packet, never a delivered wrong byte: the
  // checksum rejects it at the endpoint, the NAK path refetches it, and
  // the verified pattern check proves nothing mangled got through.
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
  EXPECT_GT(r.receivers_total.bad_packets + r.sender.bad_packets, 0u);
  EXPECT_GT(r.sender.retransmissions, 0u);
}

TEST(Disturb, ControlPlaneLossRecovers) {
  // Only control packets (JOIN/NAK/UPDATE/PROBE/...) are dropped; DATA
  // flows untouched. The protocol must survive a long window of nearly
  // blind feedback and finish once the control plane heals.
  Scenario sc = clean_lan(2, 84);
  sc.faults.control_loss(0, sim::milliseconds(20), 0.8)
      .control_loss_stop(0, sim::milliseconds(800));
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
}

TEST(Disturb, JitterPreservesCorrectness) {
  Scenario sc = clean_lan(2, 85);
  sc.faults.jitter(0, sim::milliseconds(20), sim::milliseconds(4))
      .jitter_stop(0, sim::milliseconds(600));
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
}

TEST(Disturb, AllDisturbancesTogetherStillDeliver) {
  Scenario sc = clean_lan(3, 86);
  sc.faults.reorder(0, sim::milliseconds(20), 0.2, sim::milliseconds(2))
      .duplicate(0, sim::milliseconds(30), 0.2)
      .corrupt(0, sim::milliseconds(40), 0.05)
      .jitter(0, sim::milliseconds(50), sim::milliseconds(2))
      .reorder_stop(0, sim::milliseconds(700))
      .duplicate_stop(0, sim::milliseconds(700))
      .corrupt_stop(0, sim::milliseconds(700))
      .jitter_stop(0, sim::milliseconds(700));
  RunResult r = run_transfer(sc);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verify_ok);
  EXPECT_FALSE(r.any_stream_error);
}

TEST(Disturb, DisturbedRunIsDeterministic) {
  // The disturber draws from its own named substream: the same scenario
  // replays bit-identically, which is what makes chaos repros replay.
  Scenario sc = clean_lan(2, 87, 256 * 1024);
  sc.faults.reorder(0, sim::milliseconds(20), 0.25, sim::milliseconds(3))
      .duplicate(0, sim::milliseconds(30), 0.2)
      .corrupt(0, sim::milliseconds(40), 0.1)
      .reorder_stop(0, sim::milliseconds(500))
      .duplicate_stop(0, sim::milliseconds(500))
      .corrupt_stop(0, sim::milliseconds(500));
  RunResult a = run_transfer(sc);
  RunResult b = run_transfer(sc);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.sender.data_packets_sent, b.sender.data_packets_sent);
  EXPECT_EQ(a.sender.retransmissions, b.sender.retransmissions);
  EXPECT_EQ(a.receivers_total.naks_sent, b.receivers_total.naks_sent);
  EXPECT_EQ(a.receivers_total.duplicate_packets,
            b.receivers_total.duplicate_packets);
  EXPECT_EQ(a.receivers_total.bad_packets, b.receivers_total.bad_packets);
}

TEST(Disturb, ZeroProbabilityDisturbDoesNotPerturb) {
  // Determinism contract (like GeZeroLossDoesNotPerturb): installing a
  // disturber whose every probability is zero must leave the run
  // bit-identical to a plan-free one — no draws leak into existing
  // streams, and a zeroed config short-circuits before any draw.
  Scenario base = clean_lan(2, 88, 256 * 1024);
  base.topo.groups[0].loss_rate = 0.005;  // exercise the Bernoulli stream

  Scenario with = base;
  with.faults.reorder(0, 0, 0.0, 0).duplicate(0, 0, 0.0).corrupt(0, 0, 0.0);

  RunResult a = run_transfer(base);
  RunResult b = run_transfer(with);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.sender.data_packets_sent, b.sender.data_packets_sent);
  EXPECT_EQ(a.sender.retransmissions, b.sender.retransmissions);
  EXPECT_EQ(a.receivers_total.naks_sent, b.receivers_total.naks_sent);
  EXPECT_EQ(a.router_loss_drops, b.router_loss_drops);
}

}  // namespace
}  // namespace hrmc::harness
