#include "hrmc/wire.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hrmc::proto {
namespace {

Header sample_header() {
  Header h;
  h.sport = 7500;
  h.dport = 7501;
  h.seq = 0xdeadbeef;
  h.rate = 1'250'000;
  h.length = 1460;
  h.tries = 3;
  h.type = PacketType::kData;
  h.urg = false;
  h.fin = true;
  return h;
}

TEST(Wire, HeaderIsTwentyBytes) {
  EXPECT_EQ(Header::kSize, 20u);
}

TEST(Wire, RoundTripAllFields) {
  auto skb = kern::SkBuff::alloc(100, 64);
  std::uint8_t* p = skb->put(10);
  std::iota(p, p + 10, 0);
  Header h = sample_header();
  h.length = 10;  // DATA length must match the payload (decode checks)
  write_header(*skb, h);
  EXPECT_EQ(skb->size(), 30u);

  auto parsed = read_header(*skb);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sport, h.sport);
  EXPECT_EQ(parsed->dport, h.dport);
  EXPECT_EQ(parsed->seq, h.seq);
  EXPECT_EQ(parsed->rate, h.rate);
  EXPECT_EQ(parsed->length, h.length);
  EXPECT_EQ(parsed->tries, h.tries);
  EXPECT_EQ(parsed->type, h.type);
  EXPECT_EQ(parsed->urg, h.urg);
  EXPECT_EQ(parsed->fin, h.fin);
  // Header stripped, payload intact.
  EXPECT_EQ(skb->size(), 10u);
  EXPECT_EQ(skb->data()[0], 0);
}

TEST(Wire, ChecksumCoversPayload) {
  auto skb = kern::SkBuff::alloc(100, 64);
  skb->put(8);
  write_header(*skb, sample_header());
  // Corrupt a payload byte: the checksum must catch it.
  skb->mutable_bytes()[Header::kSize + 3] ^= 0x80;
  EXPECT_FALSE(read_header(*skb).has_value());
}

TEST(Wire, ChecksumCoversHeader) {
  auto skb = kern::SkBuff::alloc(100, 64);
  skb->put(8);
  write_header(*skb, sample_header());
  skb->mutable_bytes()[4] ^= 0x01;  // sequence number bit flip
  EXPECT_FALSE(read_header(*skb).has_value());
}

TEST(Wire, ShortPacketRejected) {
  auto skb = kern::SkBuff::alloc(100, 64);
  skb->put(Header::kSize - 1);
  EXPECT_FALSE(read_header(*skb).has_value());
}

TEST(Wire, UnknownTypeRejected) {
  auto skb = kern::SkBuff::alloc(100, 64);
  write_header(*skb, sample_header());
  // Type nibble 0 is invalid; patch it and fix the checksum by peeking.
  auto bytes = skb->mutable_bytes();
  bytes[19] = (bytes[19] & 0xf0);  // type = 0
  EXPECT_FALSE(peek_header(*skb).has_value());
}

TEST(Wire, UrgAndFinIndependent) {
  for (bool urg : {false, true}) {
    for (bool fin : {false, true}) {
      auto skb = kern::SkBuff::alloc(10, 64);
      Header h = sample_header();
      h.length = 0;  // no payload in this buffer
      h.urg = urg;
      h.fin = fin;
      write_header(*skb, h);
      auto parsed = read_header(*skb);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(parsed->urg, urg);
      EXPECT_EQ(parsed->fin, fin);
    }
  }
}

TEST(Wire, AllElevenTypesRoundTrip) {
  for (int t = 1; t <= 11; ++t) {
    auto skb = kern::SkBuff::alloc(10, 64);
    Header h = sample_header();
    h.length = 0;  // no payload in this buffer
    h.type = static_cast<PacketType>(t);
    h.fin = false;
    write_header(*skb, h);
    auto parsed = read_header(*skb);
    ASSERT_TRUE(parsed.has_value()) << "type " << t;
    EXPECT_EQ(parsed->type, static_cast<PacketType>(t));
  }
}

TEST(Wire, PacketTypeNames) {
  EXPECT_EQ(packet_type_name(PacketType::kData), "DATA");
  EXPECT_EQ(packet_type_name(PacketType::kNak), "NAK");
  EXPECT_EQ(packet_type_name(PacketType::kUpdate), "UPDATE");
  EXPECT_EQ(packet_type_name(PacketType::kProbe), "PROBE");
  EXPECT_EQ(packet_type_name(PacketType::kKeepalive), "KEEPALIVE");
}

TEST(Wire, PeekDoesNotStrip) {
  auto skb = kern::SkBuff::alloc(10, 64);
  Header h0 = sample_header();
  h0.length = 0;  // no payload in this buffer
  write_header(*skb, h0);
  const auto size_before = skb->size();
  auto h = peek_header(*skb);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(skb->size(), size_before);
}

}  // namespace
}  // namespace hrmc::proto
