#include "baseline/minitcp.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "app/pattern.hpp"
#include "net/topology.hpp"

namespace hrmc::baseline {
namespace {

class MiniTcpTest : public ::testing::Test {
 protected:
  void build(double loss_rate, std::uint64_t seed = 21,
             const MiniTcpConfig& cfg = MiniTcpConfig{}) {
    net::TopologyConfig tcfg;
    tcfg.seed = seed;
    tcfg.groups = {net::group_a(1)};
    tcfg.groups[0].loss_rate = loss_rate;
    topo_ = std::make_unique<net::Topology>(sched_, tcfg);
    rcv_ = std::make_unique<MiniTcpReceiver>(topo_->receiver(0), cfg, 9000);
    snd_ = std::make_unique<MiniTcpSender>(
        topo_->sender(), cfg, 9000,
        net::Endpoint{topo_->receiver(0).addr(), 9000});
  }

  /// Streams `bytes` of pattern data and drains until completion.
  void transfer(std::uint64_t bytes) {
    std::uint64_t offered = 0;
    std::vector<std::uint8_t> chunk(16 * 1024);
    auto offer = [&] {
      while (offered < bytes) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk.size(), bytes - offered));
        app::pattern_fill({chunk.data(), want}, offered);
        const std::size_t n = snd_->send({chunk.data(), want});
        offered += n;
        if (n < want) return;
      }
      snd_->close();
    };
    snd_->on_writable = offer;

    std::vector<std::uint8_t> rbuf(16 * 1024);
    std::uint64_t read = 0;
    bool corrupt = false;
    rcv_->on_readable = [&] {
      for (;;) {
        const std::size_t n = rcv_->recv(rbuf);
        if (n == 0) break;
        if (app::pattern_verify({rbuf.data(), n}, read) != n) corrupt = true;
        read += n;
      }
    };
    offer();
    sched_.run_while([&] { return !(rcv_->eof() && snd_->finished()); },
                     sim::seconds(600));
    EXPECT_TRUE(snd_->finished());
    EXPECT_TRUE(rcv_->eof());
    EXPECT_EQ(read, bytes);
    EXPECT_FALSE(corrupt);
    snd_->stop();
  }

  sim::Scheduler sched_;
  std::unique_ptr<net::Topology> topo_;
  std::unique_ptr<MiniTcpReceiver> rcv_;
  std::unique_ptr<MiniTcpSender> snd_;
};

TEST_F(MiniTcpTest, CleanTransfer) {
  build(0.0);
  transfer(512 * 1024);
  // Even a loss-free network sees self-induced queue drops while slow
  // start discovers capacity, and Tahoe-style go-back-N resends whole
  // windows; the resend volume must stay below the useful volume.
  EXPECT_LT(snd_->stats().retransmissions, snd_->stats().data_packets_sent);
}

TEST_F(MiniTcpTest, LossyTransferRecovers) {
  build(0.02);
  transfer(512 * 1024);
  EXPECT_GT(snd_->stats().retransmissions, 0u);
}

TEST_F(MiniTcpTest, HeavyLossStillCompletes) {
  build(0.08, 33);
  transfer(128 * 1024);
  EXPECT_GT(snd_->stats().retransmissions, 3u);
}

TEST_F(MiniTcpTest, CwndGrowsFromSlowStart) {
  build(0.0);
  const std::size_t initial = snd_->cwnd();
  transfer(512 * 1024);
  EXPECT_GT(snd_->cwnd(), initial);
}

TEST_F(MiniTcpTest, FastRetransmitUsedUnderModerateLoss) {
  build(0.01, 55);
  transfer(1024 * 1024);
  EXPECT_GT(snd_->stats().fast_retransmits, 0u);
}

TEST_F(MiniTcpTest, ZeroByteStreamFinishesViaFinExchange) {
  build(0.0);
  snd_->close();
  sched_.run_while([&] { return !snd_->finished(); }, sim::seconds(30));
  EXPECT_TRUE(snd_->finished());
  EXPECT_TRUE(rcv_->complete());
  EXPECT_TRUE(rcv_->eof());
  snd_->stop();
}

TEST_F(MiniTcpTest, LossyTransferAcrossSequenceWrap) {
  // The stream starts 64 KiB short of 2^32, so the 256 KiB transfer
  // crosses the wrap while loss forces retransmits, fast-retransmit
  // dupACK counting, and cumulative-ACK comparisons on both sides of
  // the boundary. Any raw `<` on sequence numbers stalls or corrupts.
  MiniTcpConfig cfg;
  cfg.initial_seq = static_cast<kern::Seq>(0) - 64 * 1024;
  build(0.01, 77, cfg);
  transfer(256 * 1024);
  EXPECT_GT(snd_->stats().retransmissions, 0u);
  EXPECT_EQ(rcv_->rcv_nxt(),
            static_cast<kern::Seq>(cfg.initial_seq + 256 * 1024));
}

TEST_F(MiniTcpTest, AckCarriesCumulativeSequence) {
  build(0.0);
  transfer(64 * 1024);
  EXPECT_EQ(rcv_->rcv_nxt(), MiniTcpConfig::kInitialSeq + 64 * 1024);
  EXPECT_GT(rcv_->stats().acks_sent, 10u);
}

}  // namespace
}  // namespace hrmc::baseline
