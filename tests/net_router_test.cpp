#include "net/router.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hrmc::net {
namespace {

struct CaptureSink final : PacketSink {
  explicit CaptureSink(sim::Scheduler& s) : sched(&s) {}
  void deliver(kern::SkBuffPtr skb) override {
    packets.push_back(std::move(skb));
    times.push_back(sched->now());
  }
  sim::Scheduler* sched;
  std::vector<kern::SkBuffPtr> packets;
  std::vector<sim::SimTime> times;
};

kern::SkBuffPtr make_packet(Addr dst, std::size_t payload = 100) {
  auto skb = kern::SkBuff::alloc(payload);
  skb->put(payload);
  skb->daddr = dst;
  return skb;
}

TEST(Router, UnicastFollowsRoute) {
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  CaptureSink a(sched), b(sched);
  r.add_route(make_addr(10, 0, 0, 1), &a);
  r.add_route(make_addr(10, 0, 0, 2), &b);
  r.deliver(make_packet(make_addr(10, 0, 0, 2)));
  sched.run_until();
  EXPECT_EQ(a.packets.size(), 0u);
  EXPECT_EQ(b.packets.size(), 1u);
}

TEST(Router, DefaultRouteUsedWhenNoMatch) {
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  CaptureSink def(sched);
  r.set_default_route(&def);
  r.deliver(make_packet(make_addr(10, 9, 9, 9)));
  sched.run_until();
  EXPECT_EQ(def.packets.size(), 1u);
}

TEST(Router, NoRouteDropsAndCounts) {
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  r.deliver(make_packet(make_addr(10, 9, 9, 9)));
  sched.run_until();
  EXPECT_EQ(r.counters().get("no_route_drops"), 1u);
}

TEST(Router, ServiceTimeMatchesSpeed) {
  sim::Scheduler sched;
  RouterConfig cfg;
  cfg.speed_bps = 10e6;
  Router r(sched, "r", cfg, 1);
  CaptureSink sink(sched);
  r.add_route(make_addr(10, 0, 0, 1), &sink);
  // 1212 + 38 = 1250 wire bytes = 1 ms at 10 Mbps.
  r.deliver(make_packet(make_addr(10, 0, 0, 1), 1212));
  r.deliver(make_packet(make_addr(10, 0, 0, 1), 1212));
  sched.run_until();
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_NEAR(sim::to_milliseconds(sink.times[0]), 1.0, 0.01);
  EXPECT_NEAR(sim::to_milliseconds(sink.times[1]), 2.0, 0.01);
}

TEST(Router, QueueLimitDrops) {
  sim::Scheduler sched;
  RouterConfig cfg;
  cfg.queue_limit = 3;
  Router r(sched, "r", cfg, 1);
  CaptureSink sink(sched);
  r.add_route(make_addr(10, 0, 0, 1), &sink);
  for (int i = 0; i < 10; ++i) {
    r.deliver(make_packet(make_addr(10, 0, 0, 1)));
  }
  // One in service + 3 queued survive.
  EXPECT_EQ(r.counters().get("queue_drops"), 6u);
  sched.run_until();
  EXPECT_EQ(sink.packets.size(), 4u);
}

TEST(Router, MulticastDuplicatesToAllGroupMembers) {
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  CaptureSink a(sched), b(sched), c(sched);
  const Addr group = make_addr(224, 1, 1, 1);
  r.join_group(group, &a);
  r.join_group(group, &b);
  r.join_group(group, &c);
  auto pkt = make_packet(group, 64);
  pkt->put(0);
  pkt->data()[0] = 42;
  r.deliver(std::move(pkt));
  sched.run_until();
  ASSERT_EQ(a.packets.size(), 1u);
  ASSERT_EQ(b.packets.size(), 1u);
  ASSERT_EQ(c.packets.size(), 1u);
  // Fan-out clones share one data block until written; a write through
  // one copy must not be visible through the others (copy-on-write).
  a.packets[0]->mutable_bytes()[0] = 7;
  EXPECT_EQ(b.packets[0]->data()[0], 42);
  EXPECT_EQ(c.packets[0]->data()[0], 42);
}

TEST(Router, MulticastWithoutMembersDrops) {
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  r.deliver(make_packet(make_addr(224, 1, 1, 1)));
  sched.run_until();
  EXPECT_EQ(r.counters().get("no_group_drops"), 1u);
}

TEST(Router, LeaveGroupPrunes) {
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  CaptureSink a(sched), b(sched);
  const Addr group = make_addr(224, 1, 1, 1);
  r.join_group(group, &a);
  r.join_group(group, &b);
  r.leave_group(group, &a);
  EXPECT_TRUE(r.group_active(group));
  r.deliver(make_packet(group));
  sched.run_until();
  EXPECT_EQ(a.packets.size(), 0u);
  EXPECT_EQ(b.packets.size(), 1u);
  r.leave_group(group, &b);
  EXPECT_FALSE(r.group_active(group));
}

TEST(Router, JoinGroupIsIdempotent) {
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  CaptureSink a(sched);
  const Addr group = make_addr(224, 1, 1, 1);
  r.join_group(group, &a);
  r.join_group(group, &a);
  r.deliver(make_packet(group));
  sched.run_until();
  EXPECT_EQ(a.packets.size(), 1u);  // not duplicated
}

TEST(Router, CorrelatedLossIsPreFanout) {
  sim::Scheduler sched;
  RouterConfig cfg;
  cfg.loss_rate = 0.3;
  cfg.queue_limit = 10000;  // loss, not queueing, is under test
  Router r(sched, "r", cfg, 99);
  CaptureSink a(sched), b(sched);
  const Addr group = make_addr(224, 1, 1, 1);
  r.join_group(group, &a);
  r.join_group(group, &b);
  for (int i = 0; i < 2000; ++i) r.deliver(make_packet(group, 10));
  sched.run_until();
  // Loss is perfectly correlated: both receivers got exactly the same set.
  EXPECT_EQ(a.packets.size(), b.packets.size());
  EXPECT_NEAR(static_cast<double>(a.packets.size()), 1400.0, 100.0);
  EXPECT_NEAR(static_cast<double>(r.counters().get("loss_drops")), 600.0,
              100.0);
}

TEST(Router, ReconvergenceBlackholesUntilWindowExpires) {
  // After a trunk flap the router recomputes forwarding state; until
  // then every packet — unicast and multicast, both directions — is
  // black-holed with its own drop reason, then forwarding resumes with
  // no residue.
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  CaptureSink uni(sched), grp(sched);
  const Addr dst = make_addr(10, 0, 0, 1);
  const Addr group = make_addr(224, 1, 1, 1);
  r.add_route(dst, &uni);
  r.join_group(group, &grp);

  r.start_reconvergence(sim::milliseconds(50));
  EXPECT_TRUE(r.reconverging());
  r.deliver(make_packet(dst));
  r.deliver(make_packet(group));
  sched.run_until(sim::milliseconds(40));
  EXPECT_EQ(uni.packets.size(), 0u);
  EXPECT_EQ(grp.packets.size(), 0u);
  EXPECT_EQ(r.counters().get("reconverge_drops"), 2u);

  sched.run_until(sim::milliseconds(60));
  EXPECT_FALSE(r.reconverging());
  r.deliver(make_packet(dst));
  r.deliver(make_packet(group));
  sched.run_until();
  EXPECT_EQ(uni.packets.size(), 1u);
  EXPECT_EQ(grp.packets.size(), 1u);
  EXPECT_EQ(r.counters().get("reconverge_drops"), 2u);  // no new drops
}

TEST(Router, ReconvergenceWindowExtendsNeverShortens) {
  // Overlapping flaps: a second reconvergence start can push the window
  // out but a shorter one must not pull an in-progress window in.
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  r.start_reconvergence(sim::milliseconds(100));
  r.start_reconvergence(sim::milliseconds(10));  // no-op: earlier end
  sched.run_until(sim::milliseconds(50));
  EXPECT_TRUE(r.reconverging());
  r.start_reconvergence(sim::milliseconds(100));  // extends to t=150ms
  sched.run_until(sim::milliseconds(120));
  EXPECT_TRUE(r.reconverging());
  sched.run_until(sim::milliseconds(160));
  EXPECT_FALSE(r.reconverging());
}

TEST(Router, ZeroReconvergenceWindowIsNoOp) {
  // A zero window must leave the very next packet deliverable — chaos
  // plans with delay 0 are bit-identical to plans without the hook.
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  CaptureSink sink(sched);
  r.add_route(make_addr(10, 0, 0, 1), &sink);
  r.start_reconvergence(0);
  EXPECT_FALSE(r.reconverging());
  r.deliver(make_packet(make_addr(10, 0, 0, 1)));
  sched.run_until();
  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(r.counters().get("reconverge_drops"), 0u);
}

TEST(Router, TtlExpiredDrops) {
  sim::Scheduler sched;
  Router r(sched, "r", RouterConfig{}, 1);
  CaptureSink sink(sched);
  r.add_route(make_addr(10, 0, 0, 1), &sink);
  auto pkt = make_packet(make_addr(10, 0, 0, 1));
  pkt->ttl = 0;
  r.deliver(std::move(pkt));
  sched.run_until();
  EXPECT_EQ(sink.packets.size(), 0u);
  EXPECT_EQ(r.counters().get("ttl_drops"), 1u);
}

}  // namespace
}  // namespace hrmc::net
