// Tests for the observability subsystem: the trace ring, the sink,
// the sampler, the JSONL dump, and — most importantly — the invariant
// checker, including proof that it actually FAILS on corrupted traces
// (a checker that never fires is indistinguishable from no checker).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "trace/jsonl.hpp"
#include "trace/sampler.hpp"
#include "trace/trace.hpp"
#include "trace/verify.hpp"

using namespace hrmc;
using trace::EventKind;
using trace::TraceRecord;

namespace {

TraceRecord rec(sim::SimTime t, std::uint16_t host, EventKind k,
                kern::Seq begin, kern::Seq end, std::uint64_t value,
                std::uint32_t aux = 0) {
  TraceRecord r;
  r.t = t;
  r.host = host;
  r.kind = k;
  r.seq_begin = begin;
  r.seq_end = end;
  r.value = value;
  r.aux = aux;
  return r;
}

}  // namespace

// --- ring -------------------------------------------------------------

TEST(TraceRing, StoresInOrderBelowCapacity) {
  trace::TraceRing ring(8);
  for (int i = 0; i < 5; ++i) {
    ring.push(rec(i, 0, EventKind::kSend, 0, 0, 0));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto recs = ring.records();
  ASSERT_EQ(recs.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(recs[i].t, i);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  trace::TraceRing ring(4);
  for (int i = 0; i < 6; ++i) {
    ring.push(rec(i, 0, EventKind::kSend, 0, 0, 0));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto recs = ring.records();
  ASSERT_EQ(recs.size(), 4u);
  // Oldest surviving record first: 2, 3, 4, 5.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(recs[i].t, i + 2);
}

TEST(TraceRing, ClearResets) {
  trace::TraceRing ring(2);
  ring.push(rec(1, 0, EventKind::kSend, 0, 0, 0));
  ring.push(rec(2, 0, EventKind::kSend, 0, 0, 0));
  ring.push(rec(3, 0, EventKind::kSend, 0, 0, 0));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.records().empty());
}

// --- sink -------------------------------------------------------------

TEST(TraceSink, DefaultConstructedSinkIsInert) {
  trace::TraceSink sink;
  // Must not crash; with tracing off this is an empty inline anyway.
  sink.emit(EventKind::kSend, 0, 100, 1);
  sink.emit_as(7, EventKind::kDrop, 0, 0, 58);
  EXPECT_FALSE(sink.active());
}

TEST(TraceSink, StampsTimeHostAndFields) {
  if (!trace::kEnabled) GTEST_SKIP() << "tracing compiled out";
  sim::Scheduler sched;
  trace::TraceRing ring(16);
  trace::TraceSink sink(&ring, &sched, 42);
  sched.schedule_at(sim::milliseconds(5), [&] {
    sink.emit(EventKind::kNakEmit, 100, 200, 77, 3, trace::kFlagSolicited);
  });
  sched.run_while([] { return true; }, sim::seconds(1));
  const auto recs = ring.records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].t, sim::milliseconds(5));
  EXPECT_EQ(recs[0].host, 42);
  EXPECT_EQ(recs[0].kind, EventKind::kNakEmit);
  EXPECT_EQ(recs[0].seq_begin, 100u);
  EXPECT_EQ(recs[0].seq_end, 200u);
  EXPECT_EQ(recs[0].value, 77u);
  EXPECT_EQ(recs[0].aux, 3u);
  EXPECT_EQ(recs[0].flags, trace::kFlagSolicited);
}

// --- sampler ----------------------------------------------------------

TEST(Sampler, SamplesPeriodicallyUntilStopped) {
  sim::Scheduler sched;
  int calls = 0;
  trace::Sampler sampler(sched, sim::milliseconds(10), [&] {
    trace::SamplePoint p;
    p.rate_bps = ++calls;
    return p;
  });
  sampler.start();
  sched.run_while([&] { return sched.now() < sim::milliseconds(95); },
                  sim::milliseconds(95));
  sampler.stop();
  // Immediate sample at t=0 plus one every 10 ms.
  const auto& s = sampler.samples();
  ASSERT_GE(s.size(), 9u);
  EXPECT_EQ(s[0].t, 0);
  EXPECT_EQ(s[0].rate_bps, 1.0);
  EXPECT_EQ(s[1].t, sim::milliseconds(10));
  // Stopped: no more samples accrue.
  const std::size_t n = s.size();
  sched.run_while([&] { return sched.now() < sim::milliseconds(200); },
                  sim::milliseconds(200));
  EXPECT_EQ(sampler.samples().size(), n);
}

// --- JSONL ------------------------------------------------------------

TEST(TraceJsonl, OneObjectPerLine) {
  std::vector<TraceRecord> recs{
      rec(5, 0, EventKind::kSend, 1, 1461, 1000000),
      rec(9, 1, EventKind::kNakEmit, 100, 200, 100, 0),
  };
  std::ostringstream os;
  trace::write_jsonl(os, recs);
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("\"kind\":\"send\""), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"nak\""), std::string::npos);
  EXPECT_NE(out.find("\"seq_end\":1461"), std::string::npos);
}

// --- verifier: synthetic traces (run in both build modes) --------------

TEST(TraceVerify, CleanSyntheticTracePasses) {
  std::vector<TraceRecord> t;
  t.push_back(rec(0, 1, EventKind::kJoined, 1, 1, /*addr=*/42));
  t.push_back(rec(1000, 0, EventKind::kSend, 1, 1461, 1'000'000));
  t.push_back(rec(2000, 1, EventKind::kUpdate, 1461, 1461, 0));
  t.push_back(rec(3000, 0, EventKind::kRelease, 1, 1461, 0));
  const auto v = trace::verify(t);
  EXPECT_TRUE(v.ok) << (v.violations.empty() ? "" : v.violations[0]);
  EXPECT_EQ(v.releases_checked, 1u);
  EXPECT_EQ(v.sends_checked, 1u);
}

TEST(TraceVerify, FlagsReleaseBeyondReceiverReport) {
  std::vector<TraceRecord> t;
  t.push_back(rec(0, 1, EventKind::kJoined, 100, 100, 42));
  // The receiver never reported past 100, yet the sender releases 200.
  t.push_back(rec(1000, 0, EventKind::kRelease, 100, 200, 0));
  const auto v = trace::verify(t);
  EXPECT_FALSE(v.ok);
  EXPECT_GE(v.violation_count, 1u);
  ASSERT_FALSE(v.violations.empty());
  EXPECT_NE(v.violations[0].find("release"), std::string::npos);
}

TEST(TraceVerify, CrashExemptsReceiverFromReleaseGate) {
  std::vector<TraceRecord> t;
  t.push_back(rec(0, 1, EventKind::kJoined, 100, 100, 42));
  t.push_back(rec(500, 1, EventKind::kDown, 0, 0, 0));
  t.push_back(rec(1000, 0, EventKind::kRelease, 100, 200, 0));
  EXPECT_TRUE(trace::verify(t).ok);
}

TEST(TraceVerify, FlagsNakNeverAnswered) {
  std::vector<TraceRecord> t;
  t.push_back(rec(0, 1, EventKind::kJoined, 0, 0, 42));
  t.push_back(rec(1000, 1, EventKind::kNakEmit, 1000, 2000, /*rcv_nxt=*/1000));
  // Trace runs three simulated seconds with no retransmission.
  t.push_back(rec(sim::seconds(3), 1, EventKind::kUpdate, 1000, 1000, 0));
  const auto v = trace::verify(t);
  EXPECT_FALSE(v.ok);
  ASSERT_FALSE(v.violations.empty());
  EXPECT_NE(v.violations[0].find("never answered"), std::string::npos);
}

TEST(TraceVerify, NakAnsweredInTimePasses) {
  std::vector<TraceRecord> t;
  t.push_back(rec(0, 1, EventKind::kJoined, 0, 0, 42));
  t.push_back(rec(1000, 1, EventKind::kNakEmit, 1000, 2000, 1000));
  t.push_back(
      rec(sim::milliseconds(50), 0, EventKind::kRetransmit, 1000, 2000,
          1'000'000));
  t.push_back(rec(sim::seconds(3), 1, EventKind::kUpdate, 2000, 2000, 0));
  const auto v = trace::verify(t);
  EXPECT_TRUE(v.ok) << (v.violations.empty() ? "" : v.violations[0]);
  EXPECT_EQ(v.naks_checked, 1u);
}

TEST(TraceVerify, FlagsSendBurstAboveAdvertisedRate) {
  // One packet far larger than the token bucket at the advertised rate
  // (1 MB/s -> cap ~= 32 KB) — an impossible burst.
  std::vector<TraceRecord> t;
  t.push_back(rec(0, 0, EventKind::kSend, 0, 40000, 1'000'000));
  const auto v = trace::verify(t);
  EXPECT_FALSE(v.ok);
  ASSERT_FALSE(v.violations.empty());
  EXPECT_NE(v.violations[0].find("byte-tokens"), std::string::npos);
}

TEST(TraceVerify, FlagsNewDataDuringUrgentStop) {
  std::vector<TraceRecord> t;
  t.push_back(rec(0, 0, EventKind::kSend, 0, 1460, 1'000'000));
  t.push_back(rec(1000, 0, EventKind::kUrgentStop, 1460, 1460,
                  /*stop until=*/sim::seconds(5), 500'000));
  t.push_back(
      rec(sim::seconds(1), 0, EventKind::kSend, 1460, 2920, 1'000'000));
  const auto v = trace::verify(t);
  EXPECT_FALSE(v.ok);
  ASSERT_FALSE(v.violations.empty());
  EXPECT_NE(v.violations.back().find("urgent stop"), std::string::npos);
}

TEST(TraceVerify, RetransmissionDuringUrgentStopIsAllowed) {
  std::vector<TraceRecord> t;
  t.push_back(rec(0, 0, EventKind::kSend, 0, 1460, 1'000'000));
  t.push_back(rec(1000, 0, EventKind::kUrgentStop, 1460, 1460,
                  sim::seconds(5), 500'000));
  t.push_back(rec(sim::seconds(1), 0, EventKind::kRetransmit, 0, 1460,
                  1'000'000));
  EXPECT_TRUE(trace::verify(t).ok);
}

TEST(TraceVerify, OptionsDisableIndividualChecks) {
  std::vector<TraceRecord> t;
  t.push_back(rec(0, 1, EventKind::kJoined, 100, 100, 42));
  t.push_back(rec(1000, 0, EventKind::kRelease, 100, 200, 0));
  trace::VerifyOptions opt;
  opt.check_release = false;
  EXPECT_TRUE(trace::verify(t, opt).ok);
}

// --- verifier over real traces (need trace points compiled in) ---------

namespace {

harness::Scenario traced_lan(std::uint64_t seed) {
  harness::Workload wl;
  wl.file_bytes = 2 * 1024 * 1024;
  harness::Scenario sc =
      harness::lan_scenario(3, 10e6, 256 * 1024, wl, seed);
  sc.trace.enabled = true;
  sc.trace.sample_period = sim::milliseconds(100);
  return sc;
}

}  // namespace

TEST(TraceHarness, CleanRunProducesVerifiableTrace) {
  if (!trace::kEnabled) GTEST_SKIP() << "tracing compiled out";
  const harness::RunResult r = harness::run_transfer(traced_lan(101));
  ASSERT_TRUE(r.completed);
  EXPECT_FALSE(r.trace_records.empty());
  EXPECT_FALSE(r.samples.empty());
  EXPECT_EQ(r.trace_dropped, 0u);
  const auto v = trace::verify(r.trace_records);
  EXPECT_TRUE(v.ok) << (v.violations.empty() ? "" : v.violations[0]);
  EXPECT_GT(v.releases_checked, 0u);
  EXPECT_GT(v.sends_checked, 0u);
  // Samples carry real curves: the rate is nonzero mid-transfer.
  bool nonzero_rate = false;
  for (const auto& p : r.samples) nonzero_rate |= p.rate_bps > 0;
  EXPECT_TRUE(nonzero_rate);
}

TEST(TraceHarness, LossyFaultedRunStillVerifies) {
  if (!trace::kEnabled) GTEST_SKIP() << "tracing compiled out";
  harness::Scenario sc = traced_lan(202);
  net::GilbertElliottConfig ge;
  sc.faults.burst_loss(0, sim::milliseconds(500), ge)
      .burst_loss_stop(0, sim::milliseconds(1500))
      .link_down(1, sim::seconds(2))
      .link_up(1, sim::milliseconds(2300))
      .crash(2, sim::milliseconds(2600))
      .restart(2, sim::milliseconds(3600));
  const harness::RunResult r = harness::run_transfer(sc);
  ASSERT_TRUE(r.completed);
  const auto v = trace::verify(r.trace_records);
  EXPECT_TRUE(v.ok) << (v.violations.empty() ? "" : v.violations[0]);
  EXPECT_GT(v.releases_checked, 0u);
}

TEST(TraceHarness, CorruptedRealTraceFailsVerification) {
  if (!trace::kEnabled) GTEST_SKIP() << "tracing compiled out";
  harness::RunResult r = harness::run_transfer(traced_lan(303));
  ASSERT_TRUE(r.completed);
  // Strip every sender answer and inject a NAK for a hole far beyond
  // anything the run covers (so no real UPDATE moots it), then let the
  // trace run 10 simulated seconds past it: the doctored trace must NOT
  // verify — an unanswerable NAK aged past the bound.
  std::vector<TraceRecord> doctored;
  for (const TraceRecord& rr : r.trace_records) {
    if (rr.kind == EventKind::kRetransmit || rr.kind == EventKind::kNakErr) {
      continue;
    }
    doctored.push_back(rr);
  }
  ASSERT_FALSE(doctored.empty());
  TraceRecord nak = rec(doctored.front().t, 1, EventKind::kNakEmit,
                        0x40000000u, 0x40010000u, 0);
  doctored.insert(doctored.begin() + 1, nak);
  doctored.push_back(rec(doctored.back().t + sim::seconds(10), 1,
                         EventKind::kUpdate, 0, 0, 0));
  EXPECT_FALSE(trace::verify(doctored).ok);
}

TEST(TraceHarness, TracingOffByDefaultLeavesResultEmpty) {
  harness::Workload wl;
  wl.file_bytes = 512 * 1024;
  harness::Scenario sc = harness::lan_scenario(1, 10e6, 256 * 1024, wl, 7);
  const harness::RunResult r = harness::run_transfer(sc);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.trace_records.empty());
  EXPECT_TRUE(r.samples.empty());
}
