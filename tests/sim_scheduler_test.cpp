#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hrmc::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  s.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  s.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  s.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), milliseconds(30));
}

TEST(Scheduler, EqualTimestampsFireFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(milliseconds(5), [&, i] { order.push_back(i); });
  }
  s.run_until();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  SimTime fired = -1;
  s.schedule_at(milliseconds(10), [&] {
    s.schedule_after(milliseconds(5), [&] { fired = s.now(); });
  });
  s.run_until();
  EXPECT_EQ(fired, milliseconds(15));
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler s;
  s.schedule_at(milliseconds(10), [&] {
    EXPECT_THROW(s.schedule_at(milliseconds(5), [] {}), std::logic_error);
  });
  s.run_until();
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  EventHandle h = s.schedule_at(milliseconds(10), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run_until();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelAfterFiringIsNoop) {
  Scheduler s;
  int count = 0;
  EventHandle h = s.schedule_at(milliseconds(10), [&] { ++count; });
  s.run_until();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt anything
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, HorizonStopsExecutionWithoutPassingIt) {
  Scheduler s;
  int count = 0;
  s.schedule_at(milliseconds(10), [&] { ++count; });
  s.schedule_at(milliseconds(30), [&] { ++count; });
  s.run_until(milliseconds(20));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), milliseconds(20));  // idle time passes to horizon
  s.run_until(milliseconds(40));
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, RunWhilePredicateStopsEarly) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(milliseconds(i), [&] { ++count; });
  }
  s.run_while([&] { return count < 4; });
  EXPECT_EQ(count, 4);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule_after(microseconds(1), chain);
  };
  s.schedule_at(0, chain);
  s.run_until();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), microseconds(99));
}

TEST(Scheduler, ExecutedCountsOnlyFiredEvents) {
  Scheduler s;
  auto h = s.schedule_at(milliseconds(1), [] {});
  s.schedule_at(milliseconds(2), [] {});
  h.cancel();
  s.run_until();
  EXPECT_EQ(s.executed(), 1u);
}

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(seconds(2), 2 * kSecond);
  EXPECT_EQ(milliseconds(1500), from_seconds(1.5));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(250)), 250.0);
}

TEST(SimTime, TransmissionTimeRoundsUp) {
  // 1250 bytes at 10 Mbps = exactly 1 ms; the +1 ns guard keeps
  // back-to-back packets strictly ordered.
  const SimTime t = transmission_time(1250, 10e6);
  EXPECT_GE(t, milliseconds(1));
  EXPECT_LE(t, milliseconds(1) + 2);
}

TEST(SimTime, FormatTimePicksUnits) {
  EXPECT_EQ(format_time(nanoseconds(5)), "5ns");
  EXPECT_EQ(format_time(microseconds(5)), "5.000us");
  EXPECT_EQ(format_time(milliseconds(5)), "5.000ms");
  EXPECT_EQ(format_time(seconds(5)), "5.000000s");
  EXPECT_EQ(format_time(kTimeInfinity), "+inf");
}

}  // namespace
}  // namespace hrmc::sim
