#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

namespace hrmc::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  s.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  s.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  s.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), milliseconds(30));
}

TEST(Scheduler, EqualTimestampsFireFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(milliseconds(5), [&, i] { order.push_back(i); });
  }
  s.run_until();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  SimTime fired = -1;
  s.schedule_at(milliseconds(10), [&] {
    s.schedule_after(milliseconds(5), [&] { fired = s.now(); });
  });
  s.run_until();
  EXPECT_EQ(fired, milliseconds(15));
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler s;
  s.schedule_at(milliseconds(10), [&] {
    EXPECT_THROW(s.schedule_at(milliseconds(5), [] {}), std::logic_error);
  });
  s.run_until();
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  EventHandle h = s.schedule_at(milliseconds(10), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run_until();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelAfterFiringIsNoop) {
  Scheduler s;
  int count = 0;
  EventHandle h = s.schedule_at(milliseconds(10), [&] { ++count; });
  s.run_until();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt anything
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, HorizonStopsExecutionWithoutPassingIt) {
  Scheduler s;
  int count = 0;
  s.schedule_at(milliseconds(10), [&] { ++count; });
  s.schedule_at(milliseconds(30), [&] { ++count; });
  s.run_until(milliseconds(20));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), milliseconds(20));  // idle time passes to horizon
  s.run_until(milliseconds(40));
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, RunWhilePredicateStopsEarly) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(milliseconds(i), [&] { ++count; });
  }
  s.run_while([&] { return count < 4; });
  EXPECT_EQ(count, 4);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule_after(microseconds(1), chain);
  };
  s.schedule_at(0, chain);
  s.run_until();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), microseconds(99));
}

TEST(Scheduler, ExecutedCountsOnlyFiredEvents) {
  Scheduler s;
  auto h = s.schedule_at(milliseconds(1), [] {});
  s.schedule_at(milliseconds(2), [] {});
  h.cancel();
  s.run_until();
  EXPECT_EQ(s.executed(), 1u);
}

TEST(Scheduler, QueuedReportsLiveEventsNotTombstones) {
  Scheduler s;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(s.schedule_at(milliseconds(i + 1), [] {}));
  }
  EXPECT_EQ(s.queued(), 8u);
  EXPECT_EQ(s.tombstones(), 0u);
  // Cancel three: queued() must drop immediately even though the heap
  // entries linger as tombstones until compaction.
  handles[1].cancel();
  handles[3].cancel();
  handles[5].cancel();
  EXPECT_EQ(s.queued(), 5u);
  s.run_until();
  EXPECT_EQ(s.queued(), 0u);
  EXPECT_EQ(s.tombstones(), 0u);
  EXPECT_EQ(s.executed(), 5u);
}

TEST(Scheduler, CancellationHeavyWorkloadCompactsAndStaysOrdered) {
  // Regression test for the slab scheduler: schedule a large batch,
  // cancel most of it, and check that (a) lazy compaction keeps the
  // tombstone count bounded by the live heap size, and (b) the
  // survivors still fire in exact time order.
  Scheduler s;
  constexpr int kEvents = 2000;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  for (int i = 0; i < kEvents; ++i) {
    handles.push_back(
        s.schedule_at(milliseconds(i + 1), [&fired, i] { fired.push_back(i); }));
  }
  // Cancel 90% (everything not divisible by 10).
  for (int i = 0; i < kEvents; ++i) {
    if (i % 10 != 0) handles[i].cancel();
  }
  // Lazy compaction invariant: cancelled entries never exceed half the
  // heap, so the heap holds at most 2x the live events.
  EXPECT_EQ(s.queued(), static_cast<std::size_t>(kEvents / 10));
  EXPECT_LE(s.tombstones(), s.queued() + 1);
  s.run_until();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kEvents / 10));
  for (std::size_t j = 0; j < fired.size(); ++j) {
    EXPECT_EQ(fired[j], static_cast<int>(j) * 10);
  }
  EXPECT_EQ(s.tombstones(), 0u);
}

TEST(Scheduler, SmallQueuesStayBelowTheCompactionFloor) {
  // Tombstones may outnumber live entries in a small queue without
  // triggering a sweep: below kCompactMinTombstones the O(n) rebuild
  // would cost more than letting pops retire them for free.
  Scheduler s;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  for (int i = 0; i < 50; ++i) {
    handles.push_back(
        s.schedule_at(milliseconds(i + 1), [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 50; ++i) {
    if (i % 10 != 0) handles[i].cancel();  // 45 tombstones > 5 live
  }
  EXPECT_EQ(s.compactions(), 0u);
  EXPECT_EQ(s.tombstones(), 45u);
  EXPECT_EQ(s.queued(), 5u);
  s.run_until();
  EXPECT_EQ(s.compactions(), 0u);  // pops retired every tombstone
  EXPECT_EQ(fired, (std::vector<int>{0, 10, 20, 30, 40}));
}

TEST(Scheduler, CompactionsStatCountsSweeps) {
  // Above the floor the majority trigger still applies, and each sweep
  // is visible in compactions() (the bench's wasted-work counter).
  Scheduler s;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 400; ++i) {
    handles.push_back(s.schedule_at(milliseconds(i + 1), [] {}));
  }
  for (int i = 0; i < 400; ++i) {
    if (i % 4 != 0) handles[i].cancel();  // 300 cancels, 100 live
  }
  EXPECT_GE(s.compactions(), 1u);
  EXPECT_LE(s.tombstones(), s.queued() + 1);
  const std::uint64_t sweeps = s.compactions();
  s.run_until();
  EXPECT_EQ(s.executed(), 100u);
  EXPECT_EQ(s.compactions(), sweeps);  // draining never re-heapifies
}

TEST(Scheduler, NextEventTimePeeksWithoutRunning) {
  Scheduler s;
  EXPECT_EQ(s.next_event_time(), kTimeInfinity);
  auto early = s.schedule_at(milliseconds(5), [] {});
  s.schedule_at(milliseconds(9), [] {});
  EXPECT_EQ(s.next_event_time(), milliseconds(5));
  EXPECT_EQ(s.executed(), 0u);  // peeking runs nothing
  // Cancelling the head must expose the next live entry, popping the
  // tombstone exactly as step() would have.
  early.cancel();
  EXPECT_EQ(s.next_event_time(), milliseconds(9));
  s.run_until();
  EXPECT_EQ(s.next_event_time(), kTimeInfinity);
  EXPECT_EQ(s.executed(), 1u);
}

TEST(Scheduler, FifoTieBreakSurvivesSlotReuse) {
  // Slots freed by cancellation are recycled by later schedules. The
  // FIFO tie-break at equal timestamps must follow scheduling order
  // (the monotone sequence number), not slot index or slab layout.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 5; ++i) {
    doomed.push_back(s.schedule_at(milliseconds(10), [] {}));
  }
  s.schedule_at(milliseconds(10), [&] { order.push_back(0); });
  for (auto& h : doomed) h.cancel();  // frees low-index slots
  for (int i = 1; i <= 5; ++i) {
    // These reuse the freed slots (LIFO free list -> descending slot
    // indices) yet must fire after the survivor above and in this order.
    s.schedule_at(milliseconds(10), [&, i] { order.push_back(i); });
  }
  s.run_until();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Scheduler, CancelInsideCallbackOfSameTimestampBatch) {
  // An event may cancel a later event that shares its timestamp; the
  // tombstone is then popped (and skipped) in the same drain pass.
  Scheduler s;
  std::vector<int> order;
  EventHandle victim;
  s.schedule_at(milliseconds(1), [&] {
    order.push_back(1);
    victim.cancel();
  });
  victim = s.schedule_at(milliseconds(1), [&] { order.push_back(2); });
  s.schedule_at(milliseconds(1), [&] { order.push_back(3); });
  s.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Scheduler, LargeCapturesUseHeapFallbackIntact) {
  // EventFn stores callables up to 64 bytes inline; bigger captures go
  // through the heap fallback. Both paths must run and destroy cleanly.
  Scheduler s;
  std::array<std::uint64_t, 16> big{};  // 128 bytes, forces heap path
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  s.schedule_at(milliseconds(1), [big, &sum] {
    for (std::uint64_t v : big) sum += v;
  });
  s.run_until();
  std::uint64_t want = 0;
  for (std::size_t i = 0; i < big.size(); ++i) want += i * 3 + 1;
  EXPECT_EQ(sum, want);
}

TEST(Scheduler, HandleOutlivingSchedulerIsInert) {
  EventHandle h;
  {
    Scheduler s;
    h = s.schedule_at(milliseconds(1), [] {});
    EXPECT_TRUE(h.pending());
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash: core is gone, weak_ptr lock fails
}

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(seconds(2), 2 * kSecond);
  EXPECT_EQ(milliseconds(1500), from_seconds(1.5));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(250)), 250.0);
}

TEST(SimTime, TransmissionTimeRoundsUp) {
  // 1250 bytes at 10 Mbps = exactly 1 ms; the +1 ns guard keeps
  // back-to-back packets strictly ordered.
  const SimTime t = transmission_time(1250, 10e6);
  EXPECT_GE(t, milliseconds(1));
  EXPECT_LE(t, milliseconds(1) + 2);
}

TEST(SimTime, FormatTimePicksUnits) {
  EXPECT_EQ(format_time(nanoseconds(5)), "5ns");
  EXPECT_EQ(format_time(microseconds(5)), "5.000us");
  EXPECT_EQ(format_time(milliseconds(5)), "5.000ms");
  EXPECT_EQ(format_time(seconds(5)), "5.000000s");
  EXPECT_EQ(format_time(kTimeInfinity), "+inf");
}

}  // namespace
}  // namespace hrmc::sim
