#include "kern/checksum.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "kern/byteorder.hpp"

namespace hrmc::kern {
namespace {

TEST(Checksum, Rfc1071Example) {
  // RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2,
  // so the stored checksum is ~0xddf2 = 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, ZeroBlockChecksumsToAllOnes) {
  const std::uint8_t zeros[10] = {};
  EXPECT_EQ(internet_checksum(zeros), 0xffff);
}

TEST(Checksum, StoredChecksumVerifies) {
  std::vector<std::uint8_t> pkt = {0xde, 0xad, 0xbe, 0xef,
                                   0x00, 0x00,  // checksum field
                                   0x12, 0x34};
  const std::uint16_t c = internet_checksum(pkt);
  put_be16(pkt.data() + 4, c);
  EXPECT_TRUE(checksum_ok(pkt));
}

TEST(Checksum, CorruptionDetected) {
  std::vector<std::uint8_t> pkt = {0x01, 0x02, 0x03, 0x04, 0x00, 0x00};
  put_be16(pkt.data() + 4, internet_checksum(pkt));
  ASSERT_TRUE(checksum_ok(pkt));
  pkt[1] ^= 0x40;
  EXPECT_FALSE(checksum_ok(pkt));
}

TEST(Checksum, OddLengthHandled) {
  std::vector<std::uint8_t> pkt = {0xaa, 0xbb, 0x00, 0x00, 0xcc};
  put_be16(pkt.data() + 2, internet_checksum(pkt));
  EXPECT_TRUE(checksum_ok(pkt));
  pkt[4] ^= 0x01;
  EXPECT_FALSE(checksum_ok(pkt));
}

TEST(Checksum, EmptyBlock) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
  EXPECT_FALSE(checksum_ok({}));  // nothing sums to 0xffff
}

TEST(ByteOrder, RoundTrips) {
  std::uint8_t buf[4];
  put_be16(buf, 0xbeef);
  EXPECT_EQ(get_be16(buf), 0xbeef);
  EXPECT_EQ(buf[0], 0xbe);  // big end first
  put_be32(buf, 0x01020304u);
  EXPECT_EQ(get_be32(buf), 0x01020304u);
  EXPECT_EQ(buf[0], 0x01);
}

}  // namespace
}  // namespace hrmc::kern
