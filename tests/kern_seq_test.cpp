#include "kern/seq.hpp"

#include <gtest/gtest.h>

namespace hrmc::kern {
namespace {

TEST(Seq, BasicOrdering) {
  EXPECT_TRUE(seq_before(1, 2));
  EXPECT_FALSE(seq_before(2, 1));
  EXPECT_FALSE(seq_before(5, 5));
  EXPECT_TRUE(seq_after(9, 3));
  EXPECT_TRUE(seq_before_eq(5, 5));
  EXPECT_TRUE(seq_after_eq(5, 5));
}

TEST(Seq, WrapAroundOrdering) {
  const Seq near_max = 0xfffffff0u;
  const Seq wrapped = 0x00000010u;
  // wrapped is "after" near_max across the 2^32 boundary.
  EXPECT_TRUE(seq_before(near_max, wrapped));
  EXPECT_TRUE(seq_after(wrapped, near_max));
  EXPECT_EQ(seq_diff(near_max, wrapped), 0x20);
  EXPECT_EQ(seq_diff(wrapped, near_max), -0x20);
}

TEST(Seq, BetweenInclusive) {
  EXPECT_TRUE(seq_between(5, 1, 10));
  EXPECT_TRUE(seq_between(1, 1, 10));
  EXPECT_TRUE(seq_between(10, 1, 10));
  EXPECT_FALSE(seq_between(11, 1, 10));
  EXPECT_FALSE(seq_between(0, 1, 10));
}

TEST(Seq, BetweenAcrossWrap) {
  const Seq lo = 0xffffff00u;
  const Seq hi = 0x00000100u;
  EXPECT_TRUE(seq_between(0xffffffffu, lo, hi));
  EXPECT_TRUE(seq_between(0, lo, hi));
  EXPECT_FALSE(seq_between(0x00000200u, lo, hi));
}

TEST(Seq, MinMax) {
  EXPECT_EQ(seq_max(3u, 9u), 9u);
  EXPECT_EQ(seq_min(3u, 9u), 3u);
  // Across wrap: 0x10 is the later one.
  EXPECT_EQ(seq_max(0xfffffff0u, 0x10u), 0x10u);
  EXPECT_EQ(seq_min(0xfffffff0u, 0x10u), 0xfffffff0u);
}

TEST(Seq, DiffIsAdditive) {
  const Seq a = 100, b = 250;
  EXPECT_EQ(a + static_cast<Seq>(seq_diff(a, b)), b);
}

}  // namespace
}  // namespace hrmc::kern
