#include "hrmc/nak_list.hpp"

#include <gtest/gtest.h>

namespace hrmc::proto {
namespace {

using sim::milliseconds;

TEST(NakList, FirstGapIsFresh) {
  NakList l;
  auto fresh = l.add_gap(100, 200, milliseconds(1));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].from, 100u);
  EXPECT_EQ(fresh[0].to, 200u);
  EXPECT_EQ(l.size(), 1u);
}

TEST(NakList, RepeatedGapIsSuppressed) {
  NakList l;
  l.add_gap(100, 200, milliseconds(1));
  auto again = l.add_gap(100, 200, milliseconds(2));
  EXPECT_TRUE(again.empty());  // nothing new: locally suppressed
  EXPECT_EQ(l.size(), 1u);
}

TEST(NakList, PartialOverlapYieldsOnlyNewBytes) {
  NakList l;
  l.add_gap(100, 200, milliseconds(1));
  auto fresh = l.add_gap(150, 300, milliseconds(2));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].from, 200u);
  EXPECT_EQ(fresh[0].to, 300u);
}

TEST(NakList, GapSpanningTwoRangesEmitsMiddle) {
  NakList l;
  l.add_gap(100, 200, milliseconds(1));
  l.add_gap(400, 500, milliseconds(1));
  auto fresh = l.add_gap(100, 500, milliseconds(2));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].from, 200u);
  EXPECT_EQ(fresh[0].to, 400u);
  EXPECT_EQ(l.size(), 3u);
}

TEST(NakList, FillRemovesRange) {
  NakList l;
  l.add_gap(100, 200, milliseconds(1));
  l.fill(100, 200);
  EXPECT_TRUE(l.empty());
}

TEST(NakList, FillMiddleSplitsRange) {
  NakList l;
  l.add_gap(100, 400, milliseconds(1));
  l.fill(200, 300);
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l.ranges()[0].from, 100u);
  EXPECT_EQ(l.ranges()[0].to, 200u);
  EXPECT_EQ(l.ranges()[1].from, 300u);
  EXPECT_EQ(l.ranges()[1].to, 400u);
}

TEST(NakList, FillEdgesTrim) {
  NakList l;
  l.add_gap(100, 400, milliseconds(1));
  l.fill(50, 150);
  l.fill(350, 450);
  ASSERT_EQ(l.size(), 1u);
  EXPECT_EQ(l.ranges()[0].from, 150u);
  EXPECT_EQ(l.ranges()[0].to, 350u);
}

TEST(NakList, AckThroughDropsAndTrims) {
  NakList l;
  l.add_gap(100, 200, milliseconds(1));
  l.add_gap(300, 400, milliseconds(1));
  l.ack_through(350);
  ASSERT_EQ(l.size(), 1u);
  EXPECT_EQ(l.ranges()[0].from, 350u);
  EXPECT_EQ(l.ranges()[0].to, 400u);
}

TEST(NakList, DueRespectsSuppressInterval) {
  NakList l;
  l.add_gap(100, 200, milliseconds(0));
  // Not due before the interval passes.
  EXPECT_TRUE(l.due(milliseconds(5), milliseconds(10)).empty());
  // Due after it.
  auto due = l.due(milliseconds(12), milliseconds(10));
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].sends, 2);  // initial send + this re-send
  // Clock restarted: not due again immediately.
  EXPECT_TRUE(l.due(milliseconds(13), milliseconds(10)).empty());
}

TEST(NakList, NextDueIsEarliest) {
  NakList l;
  EXPECT_EQ(l.next_due(milliseconds(10)), sim::kTimeInfinity);
  l.add_gap(100, 200, milliseconds(5));
  l.add_gap(300, 400, milliseconds(2));
  EXPECT_EQ(l.next_due(milliseconds(10)), milliseconds(12));
}

TEST(NakList, EmptyGapIgnored) {
  NakList l;
  EXPECT_TRUE(l.add_gap(200, 200, milliseconds(1)).empty());
  EXPECT_TRUE(l.add_gap(200, 100, milliseconds(1)).empty());
  EXPECT_TRUE(l.empty());
}

TEST(NakList, AdjacentRangesKeepSeparateClocks) {
  // [100,200) and [200,300) abut but never merge: each keeps its own
  // suppression clock, so an old range's re-send schedule is not reset
  // by a neighbouring new gap.
  NakList l;
  l.add_gap(100, 200, milliseconds(1));
  auto fresh = l.add_gap(200, 300, milliseconds(7));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].from, 200u);
  EXPECT_EQ(fresh[0].to, 300u);
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l.ranges()[0].last_sent, milliseconds(1));
  EXPECT_EQ(l.ranges()[1].last_sent, milliseconds(7));
}

TEST(NakList, SpanningGapEmitsOnlyUntrackedPieces) {
  NakList l;
  l.add_gap(100, 200, milliseconds(1));
  l.add_gap(300, 400, milliseconds(2));
  // One big gap over both: only the three uncovered pieces are fresh.
  auto fresh = l.add_gap(50, 450, milliseconds(3));
  ASSERT_EQ(fresh.size(), 3u);
  EXPECT_EQ(fresh[0].from, 50u);
  EXPECT_EQ(fresh[0].to, 100u);
  EXPECT_EQ(fresh[1].from, 200u);
  EXPECT_EQ(fresh[1].to, 300u);
  EXPECT_EQ(fresh[2].from, 400u);
  EXPECT_EQ(fresh[2].to, 450u);
  ASSERT_EQ(l.size(), 5u);
  // The pre-existing ranges kept their suppression state.
  EXPECT_EQ(l.ranges()[1].last_sent, milliseconds(1));
  EXPECT_EQ(l.ranges()[3].last_sent, milliseconds(2));
}

TEST(NakList, FillSplitsSpanningRange) {
  NakList l;
  l.add_gap(100, 400, milliseconds(1));
  l.fill(200, 300);
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l.ranges()[0].from, 100u);
  EXPECT_EQ(l.ranges()[0].to, 200u);
  EXPECT_EQ(l.ranges()[1].from, 300u);
  EXPECT_EQ(l.ranges()[1].to, 400u);
  // Both halves inherit the original clock — a split is not a re-send.
  EXPECT_EQ(l.ranges()[0].last_sent, milliseconds(1));
  EXPECT_EQ(l.ranges()[1].last_sent, milliseconds(1));
}

TEST(NakList, WrapStraddlingGapAroundExistingRange) {
  // A gap crossing the 2^32 boundary, with a range already tracked in
  // the middle of it: only the two uncovered flanks are fresh.
  NakList l;
  l.add_gap(0xffffff80u, 0xffffffc0u, milliseconds(1));
  auto fresh = l.add_gap(0xffffff00u, 0x100u, milliseconds(2));
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0].from, 0xffffff00u);
  EXPECT_EQ(fresh[0].to, 0xffffff80u);
  EXPECT_EQ(fresh[1].from, 0xffffffc0u);
  EXPECT_EQ(fresh[1].to, 0x100u);
  ASSERT_EQ(l.size(), 3u);

  // Fill across the wrap: trims the first flank, consumes the middle
  // range entirely, and leaves the post-wrap tail.
  l.fill(0xffffff40u, 0x80u);
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l.ranges()[0].from, 0xffffff00u);
  EXPECT_EQ(l.ranges()[0].to, 0xffffff40u);
  EXPECT_EQ(l.ranges()[1].from, 0x80u);
  EXPECT_EQ(l.ranges()[1].to, 0x100u);
}

TEST(NakList, WraparoundRanges) {
  NakList l;
  const kern::Seq near_max = 0xffffff00u;
  auto fresh = l.add_gap(near_max, 0x100u, milliseconds(1));
  ASSERT_EQ(fresh.size(), 1u);
  l.fill(near_max, 0x80u);
  ASSERT_EQ(l.size(), 1u);
  EXPECT_EQ(l.ranges()[0].from, 0x80u);
  EXPECT_EQ(l.ranges()[0].to, 0x100u);
}

}  // namespace
}  // namespace hrmc::proto
