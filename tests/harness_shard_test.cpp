// Differential battery for sharded execution: the same scenario run on
// the ShardEngine at 1, 2 and 4 worker threads must be bit-identical —
// same final stats, same merged trace records, same PRNG end-state,
// same event count. The 1-thread execution is the serial reference;
// any thread-count-dependent divergence is a determinism bug in the
// engine's barrier or mailbox protocol.
//
// Coverage: 23 generator-built chaos scenarios (crashes, flaps,
// partitions, burst loss, disturbances, trunk flaps, wireless fades,
// churn, hierarchy — whatever the seeds draw) plus two hand-built
// scenarios pinning the cases the issue calls out by name: a repairer
// kill mid-stream and a membership-churn plan.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "harness/chaos.hpp"
#include "harness/scenario.hpp"
#include "harness/thread_budget.hpp"

namespace hrmc::harness {
namespace {

constexpr std::uint64_t kBatterySeedBase = 20260808000ULL;
constexpr int kBatterySpecs = 23;

void expect_identical(const RunResult& want, const RunResult& have,
                      unsigned threads) {
  SCOPED_TRACE(testing::Message() << "threads=" << threads);

  // Replay identity: these four pin the whole schedule.
  EXPECT_EQ(want.events_executed, have.events_executed);
  EXPECT_EQ(want.rng_digest, have.rng_digest);
  EXPECT_EQ(want.sched_compactions, have.sched_compactions);
  EXPECT_EQ(want.shard_epochs, have.shard_epochs);

  // Engine accounting.
  EXPECT_EQ(want.shard_domains, have.shard_domains);
  EXPECT_EQ(want.shard_handoffs, have.shard_handoffs);
  EXPECT_EQ(want.shard_handoff_bytes, have.shard_handoff_bytes);
  EXPECT_EQ(want.shard_control_posts, have.shard_control_posts);

  // Outcome.
  EXPECT_EQ(want.completed, have.completed);
  EXPECT_EQ(want.sender_finished, have.sender_finished);
  EXPECT_EQ(want.elapsed, have.elapsed);
  EXPECT_EQ(want.verify_ok, have.verify_ok);
  EXPECT_EQ(want.any_stream_error, have.any_stream_error);
  EXPECT_EQ(want.survivor_count, have.survivor_count);
  EXPECT_EQ(want.survivors_completed, have.survivors_completed);
  EXPECT_EQ(want.evicted_count, have.evicted_count);
  EXPECT_EQ(want.stall_time, have.stall_time);
  EXPECT_EQ(want.modeled_leaves, have.modeled_leaves);

  // Sender counters.
  EXPECT_EQ(want.sender.data_packets_sent, have.sender.data_packets_sent);
  EXPECT_EQ(want.sender.data_bytes_sent, have.sender.data_bytes_sent);
  EXPECT_EQ(want.sender.retransmissions, have.sender.retransmissions);
  EXPECT_EQ(want.sender.retrans_bytes, have.sender.retrans_bytes);
  EXPECT_EQ(want.sender.keepalives_sent, have.sender.keepalives_sent);
  EXPECT_EQ(want.sender.probes_sent, have.sender.probes_sent);
  EXPECT_EQ(want.sender.naks_received, have.sender.naks_received);
  EXPECT_EQ(want.sender.rate_requests_received,
            have.sender.rate_requests_received);
  EXPECT_EQ(want.sender.updates_received, have.sender.updates_received);
  EXPECT_EQ(want.sender.agg_updates_received,
            have.sender.agg_updates_received);
  EXPECT_EQ(want.sender.joins_received, have.sender.joins_received);
  EXPECT_EQ(want.sender.leaves_received, have.sender.leaves_received);
  EXPECT_EQ(want.sender.members_evicted, have.sender.members_evicted);
  EXPECT_EQ(want.sender.window_stall_time, have.sender.window_stall_time);
  EXPECT_EQ(want.sender.fec_packets_sent, have.sender.fec_packets_sent);
  EXPECT_EQ(want.sender.fec_parity_bytes, have.sender.fec_parity_bytes);
  EXPECT_EQ(want.sender.fec_parity_rate, have.sender.fec_parity_rate);
  EXPECT_EQ(want.sender.fec_rate_increases, have.sender.fec_rate_increases);
  EXPECT_EQ(want.sender.fec_rate_decreases, have.sender.fec_rate_decreases);

  // Per-receiver counters, every slot.
  ASSERT_EQ(want.per_receiver.size(), have.per_receiver.size());
  for (std::size_t i = 0; i < want.per_receiver.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "receiver=" << i);
    const auto& w = want.per_receiver[i];
    const auto& h = have.per_receiver[i];
    EXPECT_EQ(w.data_packets_received, h.data_packets_received);
    EXPECT_EQ(w.data_bytes_received, h.data_bytes_received);
    EXPECT_EQ(w.duplicate_packets, h.duplicate_packets);
    EXPECT_EQ(w.out_of_order_packets, h.out_of_order_packets);
    EXPECT_EQ(w.naks_sent, h.naks_sent);
    EXPECT_EQ(w.naks_suppressed, h.naks_suppressed);
    EXPECT_EQ(w.naks_peer_suppressed, h.naks_peer_suppressed);
    EXPECT_EQ(w.naks_forwarded, h.naks_forwarded);
    EXPECT_EQ(w.updates_sent, h.updates_sent);
    EXPECT_EQ(w.agg_updates_sent, h.agg_updates_sent);
    EXPECT_EQ(w.repairs_served, h.repairs_served);
    EXPECT_EQ(w.repair_failovers, h.repair_failovers);
    EXPECT_EQ(w.bytes_delivered, h.bytes_delivered);
    EXPECT_EQ(w.stall_rejoins, h.stall_rejoins);
  }

  // Merged trace streams, byte for byte (TraceRecord is packed 32-byte
  // POD, so memcmp sees every field).
  EXPECT_EQ(want.trace_dropped, have.trace_dropped);
  ASSERT_EQ(want.trace_records.size(), have.trace_records.size());
  if (!want.trace_records.empty()) {
    EXPECT_EQ(std::memcmp(want.trace_records.data(),
                          have.trace_records.data(),
                          want.trace_records.size() *
                              sizeof(trace::TraceRecord)),
              0);
  }
}

/// Runs `sc` sharded at 1/2/4 threads and checks bit-identity (and
/// that the engine actually sharded: >1 domain when the topology has
/// any group to split off).
RunResult run_battery_cell(Scenario sc) {
  sc.shard.enabled = true;
  sc.shard.threads = 1;
  const RunResult serial = run_transfer(sc);
  EXPECT_EQ(serial.shard_domains, sc.topo.groups.size() + 1);
  for (unsigned threads : {2u, 4u}) {
    sc.shard.threads = threads;
    expect_identical(serial, run_transfer(sc), threads);
  }
  return serial;
}

TEST(ShardDifferential, ChaosBatteryIsThreadCountInvariant) {
  for (int k = 0; k < kBatterySpecs; ++k) {
    const ChaosSpec spec = generate_spec(kBatterySeedBase + k);
    SCOPED_TRACE(testing::Message() << "spec seed " << spec.seed);
    Scenario sc = to_scenario(spec);
    const RunResult serial = run_battery_cell(sc);
    // The reliability oracle must hold under sharded execution too —
    // identical replay is worthless if the run it replays is broken.
    const ChaosVerdict v = judge_result(spec, serial);
    EXPECT_TRUE(v.ok) << v.failure;
  }
}

TEST(ShardDifferential, RepairerKillMidStream) {
  // Hierarchy on; the group-0 repairer (its first receiver) crashes
  // mid-transfer and restarts later, exercising child failover to the
  // sender and the repairer's resync — all of it across the trunk
  // boundary between domain 0 and the group domains.
  Workload wl;
  wl.file_bytes = 384 * 1024;
  Scenario sc = test_case_scenario(4, 12, 10e6, 256u << 10, wl, 20260808);
  sc.name = "shard-repairer-kill";
  sc.hierarchy.enabled = true;
  sc.proto.eviction_policy = proto::EvictionPolicy::kStall;
  sc.faults.crash(0, sim::seconds(2)).restart(0, sim::seconds(6));
  sc.trace.enabled = true;
  sc.time_limit = sim::seconds(600);
  const RunResult serial = run_battery_cell(sc);
  EXPECT_TRUE(serial.sender_finished);
  EXPECT_GT(serial.shard_handoffs, 0u);
}

TEST(ShardDifferential, MembershipChurnMidStream) {
  // A clean leave and a late join while the stream runs: the leave
  // prunes the backbone graft through a barrier control post, the late
  // join re-grafts — the zero-latency cross-domain edge the mailbox
  // protocol quantizes to epoch boundaries.
  Workload wl;
  wl.file_bytes = 256 * 1024;
  Scenario sc = test_case_scenario(5, 10, 10e6, 256u << 10, wl, 20260809);
  sc.name = "shard-churn";
  sc.churn.push_back({sim::seconds(1), 3, false});  // clean leave
  sc.churn.push_back({sim::seconds(2), 7, true});   // late join
  sc.trace.enabled = true;
  sc.time_limit = sim::seconds(600);
  const RunResult serial = run_battery_cell(sc);
  EXPECT_TRUE(serial.sender_finished);
  EXPECT_GT(serial.shard_control_posts, 0u);
}

TEST(ShardDifferential, AdaptiveFecUnderBurstLoss) {
  // Adaptive RS-FEC on, hierarchy on, Gilbert–Elliott burst loss on the
  // group-0 router: parity encode at the sender (domain 0), RS decode +
  // kFecRepair/kFecDecodeFail tracing at the receivers (group domains),
  // and the per-epoch rate adaptation must all be bit-identical at any
  // worker count — the codec and the adaptation law draw no RNG and
  // read no wall clock.
  Workload wl;
  wl.file_bytes = 384 * 1024;
  Scenario sc = test_case_scenario(4, 12, 10e6, 256u << 10, wl, 20260810);
  sc.name = "shard-adaptive-fec";
  sc.hierarchy.enabled = true;
  sc.proto.fec_group = 8;
  sc.proto.fec_parity_min = 1;
  sc.proto.fec_parity_max = 4;
  sc.proto.fec_adapt_interval = sim::milliseconds(100);
  net::GilbertElliottConfig ge;
  ge.p_good_bad = 0.01;
  ge.p_bad_good = 0.2;
  ge.loss_good = 0.005;
  ge.loss_bad = 1.0;
  sc.faults.burst_loss(0, 0, ge);
  sc.trace.enabled = true;
  sc.time_limit = sim::seconds(600);
  const RunResult serial = run_battery_cell(sc);
  EXPECT_TRUE(serial.sender_finished);
  EXPECT_GT(serial.sender.fec_packets_sent, 0u);
}

TEST(ShardDifferential, LegacyAndShardedAgreeOnOutcome) {
  // The legacy path is untouched and the sharded schedule may differ
  // from it only in same-timestamp cross-domain interleaving — the
  // protocol outcome must agree even where bit-identity isn't defined.
  Workload wl;
  wl.file_bytes = 128 * 1024;
  Scenario sc = test_case_scenario(4, 8, 10e6, 256u << 10, wl, 31337);
  const RunResult legacy = run_transfer(sc);
  sc.shard.enabled = true;
  sc.shard.threads = 2;
  const RunResult sharded = run_transfer(sc);
  EXPECT_EQ(legacy.completed, sharded.completed);
  EXPECT_EQ(legacy.sender_finished, sharded.sender_finished);
  EXPECT_EQ(legacy.verify_ok, sharded.verify_ok);
  EXPECT_EQ(legacy.receivers_total.bytes_delivered,
            sharded.receivers_total.bytes_delivered);
  EXPECT_EQ(legacy.shard_domains, 0u);  // legacy reports no domains
}

TEST(ShardDifferential, SamplerIsRejectedUnderSharding) {
  Workload wl;
  wl.file_bytes = 64 * 1024;
  Scenario sc = lan_scenario(2, 10e6, 256u << 10, wl, 1);
  sc.trace.enabled = true;
  sc.trace.sample_period = sim::milliseconds(10);
  sc.shard.enabled = true;
  EXPECT_THROW(run_transfer(sc), std::invalid_argument);
}

TEST(ShardDifferential, MaxDomainsCollapsesAndWrapsDeterministically) {
  // max_domains = 2 folds every group into one non-sender domain;
  // max_domains = 1 folds everything into domain 0. Both still run
  // through the engine and stay thread-count invariant.
  Workload wl;
  wl.file_bytes = 128 * 1024;
  for (std::size_t cap : {1u, 2u}) {
    Scenario sc = test_case_scenario(4, 8, 10e6, 256u << 10, wl, 90210);
    sc.trace.enabled = true;
    sc.shard.enabled = true;
    sc.shard.max_domains = cap;
    sc.shard.threads = 1;
    const RunResult serial = run_transfer(sc);
    EXPECT_EQ(serial.shard_domains, cap);
    sc.shard.threads = 4;
    expect_identical(serial, run_transfer(sc), 4);
  }
}

TEST(ThreadBudget, ExplicitLeaseIsGrantedExactly) {
  ThreadLease a(4);
  EXPECT_EQ(a.count(), 4u);
  ThreadLease b(7);
  EXPECT_EQ(b.count(), 7u);
}

TEST(ThreadBudget, LeftoverShareFloorsAtOne) {
  // Claim the whole budget explicitly; a flexible lease must still be
  // granted one thread so progress is always possible.
  ThreadLease hog(thread_budget());
  ThreadLease flexible(0);
  EXPECT_EQ(flexible.count(), 1u);
}

TEST(ThreadBudget, LeftoverShareSplitsTheBudget) {
  const unsigned budget = thread_budget();
  ThreadLease all(0);
  EXPECT_EQ(all.count(), budget);
  ThreadLease rest(0);
  EXPECT_EQ(rest.count(), 1u);  // nothing left over while `all` lives
}

}  // namespace
}  // namespace hrmc::harness
