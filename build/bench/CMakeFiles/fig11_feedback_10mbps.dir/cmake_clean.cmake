file(REMOVE_RECURSE
  "CMakeFiles/fig11_feedback_10mbps.dir/fig11_feedback_10mbps.cpp.o"
  "CMakeFiles/fig11_feedback_10mbps.dir/fig11_feedback_10mbps.cpp.o.d"
  "fig11_feedback_10mbps"
  "fig11_feedback_10mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_feedback_10mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
