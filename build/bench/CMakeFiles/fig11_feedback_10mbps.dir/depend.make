# Empty dependencies file for fig11_feedback_10mbps.
# This may be replaced when dependencies are built.
