# Empty compiler generated dependencies file for ablation_tcp_compare.
# This may be replaced when dependencies are built.
