file(REMOVE_RECURSE
  "CMakeFiles/ablation_tcp_compare.dir/ablation_tcp_compare.cpp.o"
  "CMakeFiles/ablation_tcp_compare.dir/ablation_tcp_compare.cpp.o.d"
  "ablation_tcp_compare"
  "ablation_tcp_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tcp_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
