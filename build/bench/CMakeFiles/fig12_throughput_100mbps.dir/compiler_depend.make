# Empty compiler generated dependencies file for fig12_throughput_100mbps.
# This may be replaced when dependencies are built.
