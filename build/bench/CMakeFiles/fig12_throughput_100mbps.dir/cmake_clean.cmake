file(REMOVE_RECURSE
  "CMakeFiles/fig12_throughput_100mbps.dir/fig12_throughput_100mbps.cpp.o"
  "CMakeFiles/fig12_throughput_100mbps.dir/fig12_throughput_100mbps.cpp.o.d"
  "fig12_throughput_100mbps"
  "fig12_throughput_100mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_throughput_100mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
