file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_timer.dir/ablation_update_timer.cpp.o"
  "CMakeFiles/ablation_update_timer.dir/ablation_update_timer.cpp.o.d"
  "ablation_update_timer"
  "ablation_update_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
