# Empty compiler generated dependencies file for ablation_update_timer.
# This may be replaced when dependencies are built.
