file(REMOVE_RECURSE
  "CMakeFiles/fig13_feedback_100mbps.dir/fig13_feedback_100mbps.cpp.o"
  "CMakeFiles/fig13_feedback_100mbps.dir/fig13_feedback_100mbps.cpp.o.d"
  "fig13_feedback_100mbps"
  "fig13_feedback_100mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_feedback_100mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
