# Empty compiler generated dependencies file for fig13_feedback_100mbps.
# This may be replaced when dependencies are built.
