# Empty compiler generated dependencies file for ablation_mcast_probe.
# This may be replaced when dependencies are built.
