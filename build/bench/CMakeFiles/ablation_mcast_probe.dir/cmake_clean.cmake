file(REMOVE_RECURSE
  "CMakeFiles/ablation_mcast_probe.dir/ablation_mcast_probe.cpp.o"
  "CMakeFiles/ablation_mcast_probe.dir/ablation_mcast_probe.cpp.o.d"
  "ablation_mcast_probe"
  "ablation_mcast_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mcast_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
