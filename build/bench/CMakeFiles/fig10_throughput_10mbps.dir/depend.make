# Empty dependencies file for fig10_throughput_10mbps.
# This may be replaced when dependencies are built.
