file(REMOVE_RECURSE
  "CMakeFiles/fig10_throughput_10mbps.dir/fig10_throughput_10mbps.cpp.o"
  "CMakeFiles/fig10_throughput_10mbps.dir/fig10_throughput_10mbps.cpp.o.d"
  "fig10_throughput_10mbps"
  "fig10_throughput_10mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_throughput_10mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
