file(REMOVE_RECURSE
  "CMakeFiles/ablation_early_probe.dir/ablation_early_probe.cpp.o"
  "CMakeFiles/ablation_early_probe.dir/ablation_early_probe.cpp.o.d"
  "ablation_early_probe"
  "ablation_early_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_early_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
