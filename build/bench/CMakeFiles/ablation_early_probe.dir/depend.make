# Empty dependencies file for ablation_early_probe.
# This may be replaced when dependencies are built.
