file(REMOVE_RECURSE
  "CMakeFiles/fig15_sim_10mbps.dir/fig15_sim_10mbps.cpp.o"
  "CMakeFiles/fig15_sim_10mbps.dir/fig15_sim_10mbps.cpp.o.d"
  "fig15_sim_10mbps"
  "fig15_sim_10mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sim_10mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
