# Empty dependencies file for fig15_sim_10mbps.
# This may be replaced when dependencies are built.
