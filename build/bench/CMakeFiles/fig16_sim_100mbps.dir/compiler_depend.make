# Empty compiler generated dependencies file for fig16_sim_100mbps.
# This may be replaced when dependencies are built.
