file(REMOVE_RECURSE
  "CMakeFiles/fig16_sim_100mbps.dir/fig16_sim_100mbps.cpp.o"
  "CMakeFiles/fig16_sim_100mbps.dir/fig16_sim_100mbps.cpp.o.d"
  "fig16_sim_100mbps"
  "fig16_sim_100mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_sim_100mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
