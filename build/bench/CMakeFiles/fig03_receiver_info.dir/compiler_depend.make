# Empty compiler generated dependencies file for fig03_receiver_info.
# This may be replaced when dependencies are built.
