file(REMOVE_RECURSE
  "CMakeFiles/fig03_receiver_info.dir/fig03_receiver_info.cpp.o"
  "CMakeFiles/fig03_receiver_info.dir/fig03_receiver_info.cpp.o.d"
  "fig03_receiver_info"
  "fig03_receiver_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_receiver_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
