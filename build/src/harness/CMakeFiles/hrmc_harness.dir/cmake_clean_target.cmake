file(REMOVE_RECURSE
  "libhrmc_harness.a"
)
