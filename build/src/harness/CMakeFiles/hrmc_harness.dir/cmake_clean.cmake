file(REMOVE_RECURSE
  "CMakeFiles/hrmc_harness.dir/scenario.cpp.o"
  "CMakeFiles/hrmc_harness.dir/scenario.cpp.o.d"
  "CMakeFiles/hrmc_harness.dir/table.cpp.o"
  "CMakeFiles/hrmc_harness.dir/table.cpp.o.d"
  "libhrmc_harness.a"
  "libhrmc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
