# Empty dependencies file for hrmc_harness.
# This may be replaced when dependencies are built.
