file(REMOVE_RECURSE
  "CMakeFiles/hrmc_kern.dir/checksum.cpp.o"
  "CMakeFiles/hrmc_kern.dir/checksum.cpp.o.d"
  "CMakeFiles/hrmc_kern.dir/skbuff.cpp.o"
  "CMakeFiles/hrmc_kern.dir/skbuff.cpp.o.d"
  "libhrmc_kern.a"
  "libhrmc_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
