
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kern/checksum.cpp" "src/kern/CMakeFiles/hrmc_kern.dir/checksum.cpp.o" "gcc" "src/kern/CMakeFiles/hrmc_kern.dir/checksum.cpp.o.d"
  "/root/repo/src/kern/skbuff.cpp" "src/kern/CMakeFiles/hrmc_kern.dir/skbuff.cpp.o" "gcc" "src/kern/CMakeFiles/hrmc_kern.dir/skbuff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hrmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
