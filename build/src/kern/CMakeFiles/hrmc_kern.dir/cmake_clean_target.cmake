file(REMOVE_RECURSE
  "libhrmc_kern.a"
)
