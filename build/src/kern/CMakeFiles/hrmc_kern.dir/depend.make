# Empty dependencies file for hrmc_kern.
# This may be replaced when dependencies are built.
