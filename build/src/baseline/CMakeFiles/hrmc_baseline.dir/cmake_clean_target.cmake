file(REMOVE_RECURSE
  "libhrmc_baseline.a"
)
