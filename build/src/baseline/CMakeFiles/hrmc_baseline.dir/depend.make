# Empty dependencies file for hrmc_baseline.
# This may be replaced when dependencies are built.
