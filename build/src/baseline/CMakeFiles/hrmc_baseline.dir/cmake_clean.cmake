file(REMOVE_RECURSE
  "CMakeFiles/hrmc_baseline.dir/minitcp.cpp.o"
  "CMakeFiles/hrmc_baseline.dir/minitcp.cpp.o.d"
  "libhrmc_baseline.a"
  "libhrmc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
