file(REMOVE_RECURSE
  "CMakeFiles/hrmc_proto.dir/member.cpp.o"
  "CMakeFiles/hrmc_proto.dir/member.cpp.o.d"
  "CMakeFiles/hrmc_proto.dir/nak_list.cpp.o"
  "CMakeFiles/hrmc_proto.dir/nak_list.cpp.o.d"
  "CMakeFiles/hrmc_proto.dir/receiver.cpp.o"
  "CMakeFiles/hrmc_proto.dir/receiver.cpp.o.d"
  "CMakeFiles/hrmc_proto.dir/sender.cpp.o"
  "CMakeFiles/hrmc_proto.dir/sender.cpp.o.d"
  "CMakeFiles/hrmc_proto.dir/wire.cpp.o"
  "CMakeFiles/hrmc_proto.dir/wire.cpp.o.d"
  "libhrmc_proto.a"
  "libhrmc_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
