
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hrmc/member.cpp" "src/hrmc/CMakeFiles/hrmc_proto.dir/member.cpp.o" "gcc" "src/hrmc/CMakeFiles/hrmc_proto.dir/member.cpp.o.d"
  "/root/repo/src/hrmc/nak_list.cpp" "src/hrmc/CMakeFiles/hrmc_proto.dir/nak_list.cpp.o" "gcc" "src/hrmc/CMakeFiles/hrmc_proto.dir/nak_list.cpp.o.d"
  "/root/repo/src/hrmc/receiver.cpp" "src/hrmc/CMakeFiles/hrmc_proto.dir/receiver.cpp.o" "gcc" "src/hrmc/CMakeFiles/hrmc_proto.dir/receiver.cpp.o.d"
  "/root/repo/src/hrmc/sender.cpp" "src/hrmc/CMakeFiles/hrmc_proto.dir/sender.cpp.o" "gcc" "src/hrmc/CMakeFiles/hrmc_proto.dir/sender.cpp.o.d"
  "/root/repo/src/hrmc/wire.cpp" "src/hrmc/CMakeFiles/hrmc_proto.dir/wire.cpp.o" "gcc" "src/hrmc/CMakeFiles/hrmc_proto.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hrmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/hrmc_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hrmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
