# Empty dependencies file for hrmc_proto.
# This may be replaced when dependencies are built.
