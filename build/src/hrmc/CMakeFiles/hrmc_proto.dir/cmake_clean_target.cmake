file(REMOVE_RECURSE
  "libhrmc_proto.a"
)
