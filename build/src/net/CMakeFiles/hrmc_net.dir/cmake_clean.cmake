file(REMOVE_RECURSE
  "CMakeFiles/hrmc_net.dir/addr.cpp.o"
  "CMakeFiles/hrmc_net.dir/addr.cpp.o.d"
  "CMakeFiles/hrmc_net.dir/host.cpp.o"
  "CMakeFiles/hrmc_net.dir/host.cpp.o.d"
  "CMakeFiles/hrmc_net.dir/nic.cpp.o"
  "CMakeFiles/hrmc_net.dir/nic.cpp.o.d"
  "CMakeFiles/hrmc_net.dir/router.cpp.o"
  "CMakeFiles/hrmc_net.dir/router.cpp.o.d"
  "CMakeFiles/hrmc_net.dir/topology.cpp.o"
  "CMakeFiles/hrmc_net.dir/topology.cpp.o.d"
  "libhrmc_net.a"
  "libhrmc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
