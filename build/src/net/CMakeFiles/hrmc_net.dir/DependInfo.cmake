
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/addr.cpp" "src/net/CMakeFiles/hrmc_net.dir/addr.cpp.o" "gcc" "src/net/CMakeFiles/hrmc_net.dir/addr.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/net/CMakeFiles/hrmc_net.dir/host.cpp.o" "gcc" "src/net/CMakeFiles/hrmc_net.dir/host.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/net/CMakeFiles/hrmc_net.dir/nic.cpp.o" "gcc" "src/net/CMakeFiles/hrmc_net.dir/nic.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/net/CMakeFiles/hrmc_net.dir/router.cpp.o" "gcc" "src/net/CMakeFiles/hrmc_net.dir/router.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/hrmc_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/hrmc_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kern/CMakeFiles/hrmc_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hrmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
