# Empty compiler generated dependencies file for hrmc_net.
# This may be replaced when dependencies are built.
