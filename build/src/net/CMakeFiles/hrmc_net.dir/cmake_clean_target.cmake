file(REMOVE_RECURSE
  "libhrmc_net.a"
)
