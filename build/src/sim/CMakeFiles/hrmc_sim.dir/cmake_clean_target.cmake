file(REMOVE_RECURSE
  "libhrmc_sim.a"
)
