# Empty compiler generated dependencies file for hrmc_sim.
# This may be replaced when dependencies are built.
