file(REMOVE_RECURSE
  "CMakeFiles/hrmc_sim.dir/random.cpp.o"
  "CMakeFiles/hrmc_sim.dir/random.cpp.o.d"
  "CMakeFiles/hrmc_sim.dir/scheduler.cpp.o"
  "CMakeFiles/hrmc_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/hrmc_sim.dir/stats.cpp.o"
  "CMakeFiles/hrmc_sim.dir/stats.cpp.o.d"
  "CMakeFiles/hrmc_sim.dir/time.cpp.o"
  "CMakeFiles/hrmc_sim.dir/time.cpp.o.d"
  "libhrmc_sim.a"
  "libhrmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
