file(REMOVE_RECURSE
  "CMakeFiles/hrmc_app.dir/apps.cpp.o"
  "CMakeFiles/hrmc_app.dir/apps.cpp.o.d"
  "libhrmc_app.a"
  "libhrmc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
