file(REMOVE_RECURSE
  "libhrmc_app.a"
)
