# Empty dependencies file for hrmc_app.
# This may be replaced when dependencies are built.
