# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/sim_random_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stats_test[1]_include.cmake")
include("/root/repo/build/tests/kern_skbuff_test[1]_include.cmake")
include("/root/repo/build/tests/kern_seq_test[1]_include.cmake")
include("/root/repo/build/tests/kern_checksum_test[1]_include.cmake")
include("/root/repo/build/tests/kern_timer_test[1]_include.cmake")
include("/root/repo/build/tests/net_nic_test[1]_include.cmake")
include("/root/repo/build/tests/net_router_test[1]_include.cmake")
include("/root/repo/build/tests/net_topology_test[1]_include.cmake")
include("/root/repo/build/tests/net_host_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_wire_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_member_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_nak_list_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_rate_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_rtt_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_endtoend_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_reliability_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_integration_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_fec_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_property_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_receiver_test[1]_include.cmake")
include("/root/repo/build/tests/hrmc_sender_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_minitcp_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
