file(REMOVE_RECURSE
  "CMakeFiles/hrmc_rtt_test.dir/hrmc_rtt_test.cpp.o"
  "CMakeFiles/hrmc_rtt_test.dir/hrmc_rtt_test.cpp.o.d"
  "hrmc_rtt_test"
  "hrmc_rtt_test.pdb"
  "hrmc_rtt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_rtt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
