# Empty compiler generated dependencies file for hrmc_rtt_test.
# This may be replaced when dependencies are built.
