# Empty dependencies file for hrmc_nak_list_test.
# This may be replaced when dependencies are built.
