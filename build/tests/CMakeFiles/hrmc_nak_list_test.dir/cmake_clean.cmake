file(REMOVE_RECURSE
  "CMakeFiles/hrmc_nak_list_test.dir/hrmc_nak_list_test.cpp.o"
  "CMakeFiles/hrmc_nak_list_test.dir/hrmc_nak_list_test.cpp.o.d"
  "hrmc_nak_list_test"
  "hrmc_nak_list_test.pdb"
  "hrmc_nak_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_nak_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
