file(REMOVE_RECURSE
  "CMakeFiles/hrmc_endtoend_test.dir/hrmc_endtoend_test.cpp.o"
  "CMakeFiles/hrmc_endtoend_test.dir/hrmc_endtoend_test.cpp.o.d"
  "hrmc_endtoend_test"
  "hrmc_endtoend_test.pdb"
  "hrmc_endtoend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_endtoend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
