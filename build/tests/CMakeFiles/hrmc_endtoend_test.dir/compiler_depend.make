# Empty compiler generated dependencies file for hrmc_endtoend_test.
# This may be replaced when dependencies are built.
