file(REMOVE_RECURSE
  "CMakeFiles/hrmc_integration_test.dir/hrmc_integration_test.cpp.o"
  "CMakeFiles/hrmc_integration_test.dir/hrmc_integration_test.cpp.o.d"
  "hrmc_integration_test"
  "hrmc_integration_test.pdb"
  "hrmc_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
