# Empty dependencies file for hrmc_integration_test.
# This may be replaced when dependencies are built.
