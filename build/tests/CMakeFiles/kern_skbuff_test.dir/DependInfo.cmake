
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kern_skbuff_test.cpp" "tests/CMakeFiles/kern_skbuff_test.dir/kern_skbuff_test.cpp.o" "gcc" "tests/CMakeFiles/kern_skbuff_test.dir/kern_skbuff_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/hrmc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hrmc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/hrmc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/hrmc/CMakeFiles/hrmc_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hrmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/hrmc_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hrmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
