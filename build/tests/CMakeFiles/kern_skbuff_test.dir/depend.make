# Empty dependencies file for kern_skbuff_test.
# This may be replaced when dependencies are built.
