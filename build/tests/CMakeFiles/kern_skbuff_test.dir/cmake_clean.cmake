file(REMOVE_RECURSE
  "CMakeFiles/kern_skbuff_test.dir/kern_skbuff_test.cpp.o"
  "CMakeFiles/kern_skbuff_test.dir/kern_skbuff_test.cpp.o.d"
  "kern_skbuff_test"
  "kern_skbuff_test.pdb"
  "kern_skbuff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_skbuff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
