# Empty compiler generated dependencies file for kern_seq_test.
# This may be replaced when dependencies are built.
