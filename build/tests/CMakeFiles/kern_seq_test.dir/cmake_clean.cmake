file(REMOVE_RECURSE
  "CMakeFiles/kern_seq_test.dir/kern_seq_test.cpp.o"
  "CMakeFiles/kern_seq_test.dir/kern_seq_test.cpp.o.d"
  "kern_seq_test"
  "kern_seq_test.pdb"
  "kern_seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
