file(REMOVE_RECURSE
  "CMakeFiles/hrmc_property_test.dir/hrmc_property_test.cpp.o"
  "CMakeFiles/hrmc_property_test.dir/hrmc_property_test.cpp.o.d"
  "hrmc_property_test"
  "hrmc_property_test.pdb"
  "hrmc_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
