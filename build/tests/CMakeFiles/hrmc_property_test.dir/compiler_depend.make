# Empty compiler generated dependencies file for hrmc_property_test.
# This may be replaced when dependencies are built.
