file(REMOVE_RECURSE
  "CMakeFiles/net_nic_test.dir/net_nic_test.cpp.o"
  "CMakeFiles/net_nic_test.dir/net_nic_test.cpp.o.d"
  "net_nic_test"
  "net_nic_test.pdb"
  "net_nic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
