file(REMOVE_RECURSE
  "CMakeFiles/kern_timer_test.dir/kern_timer_test.cpp.o"
  "CMakeFiles/kern_timer_test.dir/kern_timer_test.cpp.o.d"
  "kern_timer_test"
  "kern_timer_test.pdb"
  "kern_timer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
