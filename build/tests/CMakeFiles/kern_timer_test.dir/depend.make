# Empty dependencies file for kern_timer_test.
# This may be replaced when dependencies are built.
