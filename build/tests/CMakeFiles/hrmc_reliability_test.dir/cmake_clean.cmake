file(REMOVE_RECURSE
  "CMakeFiles/hrmc_reliability_test.dir/hrmc_reliability_test.cpp.o"
  "CMakeFiles/hrmc_reliability_test.dir/hrmc_reliability_test.cpp.o.d"
  "hrmc_reliability_test"
  "hrmc_reliability_test.pdb"
  "hrmc_reliability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
