# Empty dependencies file for hrmc_reliability_test.
# This may be replaced when dependencies are built.
