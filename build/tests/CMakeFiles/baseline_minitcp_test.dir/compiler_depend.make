# Empty compiler generated dependencies file for baseline_minitcp_test.
# This may be replaced when dependencies are built.
