file(REMOVE_RECURSE
  "CMakeFiles/baseline_minitcp_test.dir/baseline_minitcp_test.cpp.o"
  "CMakeFiles/baseline_minitcp_test.dir/baseline_minitcp_test.cpp.o.d"
  "baseline_minitcp_test"
  "baseline_minitcp_test.pdb"
  "baseline_minitcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_minitcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
