# Empty dependencies file for hrmc_sender_test.
# This may be replaced when dependencies are built.
