file(REMOVE_RECURSE
  "CMakeFiles/hrmc_sender_test.dir/hrmc_sender_test.cpp.o"
  "CMakeFiles/hrmc_sender_test.dir/hrmc_sender_test.cpp.o.d"
  "hrmc_sender_test"
  "hrmc_sender_test.pdb"
  "hrmc_sender_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_sender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
