file(REMOVE_RECURSE
  "CMakeFiles/hrmc_member_test.dir/hrmc_member_test.cpp.o"
  "CMakeFiles/hrmc_member_test.dir/hrmc_member_test.cpp.o.d"
  "hrmc_member_test"
  "hrmc_member_test.pdb"
  "hrmc_member_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_member_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
