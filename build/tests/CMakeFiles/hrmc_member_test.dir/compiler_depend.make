# Empty compiler generated dependencies file for hrmc_member_test.
# This may be replaced when dependencies are built.
