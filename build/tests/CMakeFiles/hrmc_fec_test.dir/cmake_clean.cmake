file(REMOVE_RECURSE
  "CMakeFiles/hrmc_fec_test.dir/hrmc_fec_test.cpp.o"
  "CMakeFiles/hrmc_fec_test.dir/hrmc_fec_test.cpp.o.d"
  "hrmc_fec_test"
  "hrmc_fec_test.pdb"
  "hrmc_fec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_fec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
