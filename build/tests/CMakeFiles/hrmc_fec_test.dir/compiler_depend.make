# Empty compiler generated dependencies file for hrmc_fec_test.
# This may be replaced when dependencies are built.
