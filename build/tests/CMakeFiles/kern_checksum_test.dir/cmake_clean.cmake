file(REMOVE_RECURSE
  "CMakeFiles/kern_checksum_test.dir/kern_checksum_test.cpp.o"
  "CMakeFiles/kern_checksum_test.dir/kern_checksum_test.cpp.o.d"
  "kern_checksum_test"
  "kern_checksum_test.pdb"
  "kern_checksum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_checksum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
