# Empty dependencies file for kern_checksum_test.
# This may be replaced when dependencies are built.
