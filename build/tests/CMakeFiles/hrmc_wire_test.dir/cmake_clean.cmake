file(REMOVE_RECURSE
  "CMakeFiles/hrmc_wire_test.dir/hrmc_wire_test.cpp.o"
  "CMakeFiles/hrmc_wire_test.dir/hrmc_wire_test.cpp.o.d"
  "hrmc_wire_test"
  "hrmc_wire_test.pdb"
  "hrmc_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
