# Empty dependencies file for hrmc_wire_test.
# This may be replaced when dependencies are built.
