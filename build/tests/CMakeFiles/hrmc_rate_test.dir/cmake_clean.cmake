file(REMOVE_RECURSE
  "CMakeFiles/hrmc_rate_test.dir/hrmc_rate_test.cpp.o"
  "CMakeFiles/hrmc_rate_test.dir/hrmc_rate_test.cpp.o.d"
  "hrmc_rate_test"
  "hrmc_rate_test.pdb"
  "hrmc_rate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_rate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
