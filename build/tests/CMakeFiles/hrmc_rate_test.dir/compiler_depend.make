# Empty compiler generated dependencies file for hrmc_rate_test.
# This may be replaced when dependencies are built.
