file(REMOVE_RECURSE
  "CMakeFiles/hrmc_receiver_test.dir/hrmc_receiver_test.cpp.o"
  "CMakeFiles/hrmc_receiver_test.dir/hrmc_receiver_test.cpp.o.d"
  "hrmc_receiver_test"
  "hrmc_receiver_test.pdb"
  "hrmc_receiver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrmc_receiver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
