# Empty compiler generated dependencies file for hrmc_receiver_test.
# This may be replaced when dependencies are built.
