file(REMOVE_RECURSE
  "CMakeFiles/net_host_test.dir/net_host_test.cpp.o"
  "CMakeFiles/net_host_test.dir/net_host_test.cpp.o.d"
  "net_host_test"
  "net_host_test.pdb"
  "net_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
