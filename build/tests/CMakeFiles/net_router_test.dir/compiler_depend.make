# Empty compiler generated dependencies file for net_router_test.
# This may be replaced when dependencies are built.
