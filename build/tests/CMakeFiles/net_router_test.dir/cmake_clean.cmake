file(REMOVE_RECURSE
  "CMakeFiles/net_router_test.dir/net_router_test.cpp.o"
  "CMakeFiles/net_router_test.dir/net_router_test.cpp.o.d"
  "net_router_test"
  "net_router_test.pdb"
  "net_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
