file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_wan.dir/heterogeneous_wan.cpp.o"
  "CMakeFiles/heterogeneous_wan.dir/heterogeneous_wan.cpp.o.d"
  "heterogeneous_wan"
  "heterogeneous_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
