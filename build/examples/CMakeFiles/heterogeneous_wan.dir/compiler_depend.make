# Empty compiler generated dependencies file for heterogeneous_wan.
# This may be replaced when dependencies are built.
