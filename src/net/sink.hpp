// The one interface every forwarding element implements.
#pragma once

#include "kern/skbuff.hpp"

namespace hrmc::net {

/// Anything a packet can be handed to: routers, NICs, host stacks.
class PacketSink {
 public:
  virtual ~PacketSink() = default;

  /// Takes ownership of the buffer. May drop, queue, or forward it.
  virtual void deliver(kern::SkBuffPtr skb) = 0;
};

}  // namespace hrmc::net
