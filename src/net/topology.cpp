#include "net/topology.hpp"

#include <stdexcept>

#include "sim/random.hpp"

namespace hrmc::net {

GroupSpec group_a(int receivers) {
  return GroupSpec{"A", sim::milliseconds(2), 0.00005, receivers};
}
GroupSpec group_b(int receivers) {
  return GroupSpec{"B", sim::milliseconds(20), 0.005, receivers};
}
GroupSpec group_c(int receivers) {
  return GroupSpec{"C", sim::milliseconds(100), 0.02, receivers};
}

Topology::Topology(sim::Scheduler& sched, const TopologyConfig& cfg)
    : sched_(&sched), cfg_(cfg) {
  build(sched, [&sched](std::size_t) -> sim::Scheduler& { return sched; });
}

Topology::Topology(sim::ShardEngine& engine, const TopologyConfig& cfg,
                   std::vector<std::size_t> group_domain)
    : sched_(&engine.domain(0)),
      cfg_(cfg),
      engine_(&engine),
      group_domain_(std::move(group_domain)) {
  if (group_domain_.size() != cfg.groups.size()) {
    throw std::invalid_argument(
        "Topology: group_domain needs one entry per configured group");
  }
  for (std::size_t d : group_domain_) {
    if (d >= engine.domain_count()) {
      throw std::invalid_argument("Topology: group domain out of range");
    }
  }
  build(engine.domain(0), [this](std::size_t g) -> sim::Scheduler& {
    return engine_->domain(group_domain_[g]);
  });
  // The only cross-domain edges: backbone -> group router (multicast
  // data and receiver-bound unicast) and group router -> backbone
  // (feedback via the default route). Queueing and service stay on the
  // owning router; delivery goes through the epoch mailboxes.
  for (std::size_t g = 0; g < group_routers_.size(); ++g) {
    const std::size_t d = group_domain_[g];
    if (d == 0) continue;  // whole subtree shares the sender's domain
    backbone_->set_remote_egress(group_routers_[g].get(), engine_, 0, d);
    group_routers_[g]->set_remote_egress(backbone_.get(), engine_, d, 0);
  }
}

void Topology::build(
    sim::Scheduler& backbone_sched,
    const std::function<sim::Scheduler&(std::size_t)>& group_sched) {
  const TopologyConfig& cfg = cfg_;
  sim::Scheduler& sched = backbone_sched;
  backbone_ = std::make_unique<Router>(
      sched, "backbone",
      RouterConfig{cfg.network_bps, cfg.router_queue, 0.0},
      sim::substream_seed(cfg.seed, "router:backbone"));

  // Sender: host 10.0.0.1 on a loss-free, zero-delay access link. (Its
  // feedback path delay is carried by each receiver group's own router
  // path, matching the paper's model where the NIC delay is assigned per
  // receiver.)
  const Addr sender_addr = make_addr(10, 0, 0, 1);
  nics_.push_back(std::make_unique<Nic>(
      sched, "nic:sender",
      NicConfig{cfg.network_bps, 0, 0.0, cfg.nic_tx_ring},
      sim::substream_seed(cfg.seed, "nic:sender")));
  sender_ = std::make_unique<Host>(sched, "sender", sender_addr);
  sender_->attach_nic(nics_[0].get());
  sender_->set_group_control(this);
  nics_[0]->attach_uplink(backbone_.get());
  nics_[0]->attach_host(sender_.get());
  backbone_->add_route(sender_addr, nics_[0].get());

  for (std::size_t g = 0; g < cfg.groups.size(); ++g) {
    const GroupSpec& spec = cfg.groups[g];
    sim::Scheduler& gsched = group_sched(g);
    const std::string rname = "router:" + spec.label;
    auto router = std::make_unique<Router>(
        gsched, rname,
        RouterConfig{cfg.network_bps, cfg.router_queue,
                     spec.loss_rate * cfg.correlated_share},
        sim::substream_seed(cfg.seed, rname));
    // Feedback from this group's receivers heads back up to the backbone.
    router->set_default_route(backbone_.get());

    for (int r = 0; r < spec.receivers; ++r) {
      const std::size_t idx = receivers_.size();
      const Addr addr = make_addr(10, static_cast<unsigned>(g + 1),
                                  static_cast<unsigned>(r / 250),
                                  static_cast<unsigned>(r % 250 + 1));
      const std::string nname =
          "nic:" + spec.label + std::to_string(r);
      auto nic = std::make_unique<Nic>(
          gsched, nname,
          NicConfig{cfg.network_bps, spec.delay,
                    spec.loss_rate * (1.0 - cfg.correlated_share),
                    cfg.nic_tx_ring},
          sim::substream_seed(cfg.seed, nname));
      auto host = std::make_unique<Host>(
          gsched, "rcvr:" + spec.label + std::to_string(r), addr);
      host->attach_nic(nic.get());
      host->set_group_control(this);
      nic->attach_uplink(router.get());
      nic->attach_host(host.get());
      router->add_route(addr, nic.get());
      backbone_->add_route(addr, router.get());

      nics_.push_back(std::move(nic));
      receivers_.push_back(std::move(host));
      receiver_ptrs_.push_back(receivers_.back().get());
      receiver_group_.push_back(g);
      (void)idx;
    }
    group_routers_.push_back(std::move(router));
  }
}

std::size_t Topology::host_index(const Host* host) const {
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    if (receivers_[i].get() == host) return i;
  }
  throw std::logic_error("Topology: host is not a receiver of this network");
}

void Topology::join_group(Addr group, Host* host) {
  if (!is_multicast(group)) {
    throw std::logic_error("Topology::join_group: not a multicast address");
  }
  if (host == sender_.get()) {
    // The sender transmits to the group but need not subscribe.
    return;
  }
  const std::size_t idx = host_index(host);
  const std::size_t g = receiver_group_[idx];
  // NIC index: sender occupies slot 0.
  Nic* nic = nics_[idx + 1].get();
  group_routers_[g]->join_group(group, nic);
  // The backbone graft crosses domains with no modeled latency, so
  // under sharding it must not touch domain 0's tables mid-window:
  // it is applied serially at the next epoch boundary (within one
  // lookahead — less than the trunk's own service time — of the IGMP
  // report that would carry it on a real network). During setup the
  // engine applies it inline, exactly like the legacy path.
  if (engine_ != nullptr && group_domain_[g] != 0) {
    Router* backbone = backbone_.get();
    Router* gr = group_routers_[g].get();
    engine_->post_control(group_domain_[g], [backbone, gr, group] {
      backbone->join_group(group, gr);
    });
  } else {
    backbone_->join_group(group, group_routers_[g].get());
  }
}

void Topology::leave_group(Addr group, Host* host) {
  if (host == sender_.get()) return;
  const std::size_t idx = host_index(host);
  const std::size_t g = receiver_group_[idx];
  Nic* nic = nics_[idx + 1].get();
  group_routers_[g]->leave_group(group, nic);
  if (!group_routers_[g]->group_active(group)) {
    if (engine_ != nullptr && group_domain_[g] != 0) {
      // Prune at the boundary. A join racing in the same window posts
      // its graft behind this prune in the same FIFO, so the boundary
      // replays the local decisions in order and converges to the same
      // membership the legacy path reaches.
      Router* backbone = backbone_.get();
      Router* gr = group_routers_[g].get();
      engine_->post_control(group_domain_[g], [backbone, gr, group] {
        backbone->leave_group(group, gr);
      });
    } else {
      backbone_->leave_group(group, group_routers_[g].get());
    }
  }
}

}  // namespace hrmc::net
