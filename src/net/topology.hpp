// Two-tier multicast internetwork, matching the paper's simulation study.
//
//                       sender host
//                           |  (access NIC)
//                     backbone router            (loss-free, fast)
//                    /               |
//              group router A   group router B   (90% of path loss:
//                 |      |        |      |        *correlated* drops)
//              NIC ...  NIC     NIC ...  NIC     (group delay + 10% of
//               |        |       |        |       path loss: uncorrelated)
//             rcvr ...  rcvr   rcvr ...  rcvr
//
// Receivers are partitioned into *characteristic groups* defined by a
// one-way delay and a loss rate (Fig 14a: A = 2 ms / 0.005%,
// B = 20 ms / 0.5%, C = 100 ms / 2%). The 90/10 correlated/uncorrelated
// split follows the paper's reading of [Towsley et al.]: most loss is in
// the tail links, shared by a site's receivers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "net/router.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard.hpp"

namespace hrmc::net {

/// One characteristic group of receivers (Fig 14a).
struct GroupSpec {
  std::string label = "A";
  sim::SimTime delay = sim::milliseconds(2);  ///< one-way path delay
  double loss_rate = 0.00005;                 ///< total path loss probability
  int receivers = 1;
};

struct TopologyConfig {
  double network_bps = 10e6;       ///< speed of every router and link
  std::size_t router_queue = 512;  ///< router FIFO capacity (packets)
  /// Host NIC transmit queue (device queue + descriptor ring), packets.
  std::size_t nic_tx_ring = 128;
  double correlated_share = 0.9;   ///< fraction of loss placed at the router
  std::uint64_t seed = 1;
  std::vector<GroupSpec> groups;
};

/// Builds and owns the whole network. Hosts are created by the topology;
/// protocol stacks and applications attach to them afterwards.
class Topology final : public GroupControl {
 public:
  Topology(sim::Scheduler& sched, const TopologyConfig& cfg);

  /// Sharded construction: the sender host and backbone router live in
  /// the engine's domain 0; group `g` (its router, NICs, hosts — one
  /// whole router subtree) lives in domain `group_domain[g]` (one entry
  /// per configured group, values in [0, engine.domain_count())). The
  /// only cross-domain edges this wiring creates are the backbone's
  /// egress ports toward non-domain-0 group routers and those routers'
  /// default routes back — both marked remote so deliveries travel
  /// through the engine's epoch mailboxes. Components pick up their
  /// domain's Scheduler through Host::scheduler(), so protocol stacks
  /// built on this topology land in the right domain automatically.
  Topology(sim::ShardEngine& engine, const TopologyConfig& cfg,
           std::vector<std::size_t> group_domain);

  [[nodiscard]] Host& sender() { return *sender_; }
  [[nodiscard]] std::vector<Host*>& receivers() { return receiver_ptrs_; }
  [[nodiscard]] Host& receiver(std::size_t i) { return *receiver_ptrs_.at(i); }
  [[nodiscard]] std::size_t receiver_count() const {
    return receiver_ptrs_.size();
  }

  /// Group index (into config().groups) a receiver belongs to.
  [[nodiscard]] std::size_t receiver_group(std::size_t i) const {
    return receiver_group_.at(i);
  }

  [[nodiscard]] Router& backbone() { return *backbone_; }
  [[nodiscard]] Router& group_router(std::size_t g) {
    return *group_routers_.at(g);
  }
  [[nodiscard]] std::size_t group_count() const {
    return group_routers_.size();
  }

  /// A receiver's access NIC (fault injection flaps links here).
  [[nodiscard]] Nic& receiver_nic(std::size_t i) { return *nics_.at(i + 1); }
  [[nodiscard]] Nic& sender_nic() { return *nics_.at(0); }

  [[nodiscard]] const TopologyConfig& config() const { return cfg_; }

  /// Sharded-construction introspection. Domain 0 on the legacy path.
  [[nodiscard]] bool sharded() const { return engine_ != nullptr; }
  [[nodiscard]] std::size_t group_domain(std::size_t g) const {
    return engine_ != nullptr ? group_domain_.at(g) : 0;
  }
  [[nodiscard]] std::size_t receiver_domain(std::size_t i) const {
    return group_domain(receiver_group_.at(i));
  }

  /// The engine lookahead this topology supports: the service time of a
  /// `min_wire_bytes` packet on the trunk links (the only cross-domain
  /// edges), which is the soonest any cross-domain effect can land.
  [[nodiscard]] sim::SimTime cross_domain_lookahead(
      std::size_t min_wire_bytes) const {
    return sim::transmission_time(static_cast<std::int64_t>(min_wire_bytes),
                                  cfg_.network_bps);
  }

  // GroupControl: IGMP-style subscription management. Joining grafts the
  // member's NIC onto its group router and the group router onto the
  // backbone; leaving prunes.
  void join_group(Addr group, Host* host) override;
  void leave_group(Addr group, Host* host) override;

 private:
  [[nodiscard]] std::size_t host_index(const Host* host) const;
  void build(sim::Scheduler& backbone_sched,
             const std::function<sim::Scheduler&(std::size_t)>& group_sched);

  sim::Scheduler* sched_;
  TopologyConfig cfg_;
  sim::ShardEngine* engine_ = nullptr;    ///< null on the legacy path
  std::vector<std::size_t> group_domain_;  ///< per group, sharded only

  std::unique_ptr<Router> backbone_;
  std::vector<std::unique_ptr<Router>> group_routers_;
  std::vector<std::unique_ptr<Nic>> nics_;  // [0] = sender's
  std::unique_ptr<Host> sender_;
  std::vector<std::unique_ptr<Host>> receivers_;
  std::vector<Host*> receiver_ptrs_;
  std::vector<std::size_t> receiver_group_;
};

/// The paper's three characteristic groups (Fig 14a).
GroupSpec group_a(int receivers);  ///< LAN-like: 2 ms, 0.005%
GroupSpec group_b(int receivers);  ///< MAN-like: 20 ms, 0.5%
GroupSpec group_c(int receivers);  ///< WAN-like: 100 ms, 2%

}  // namespace hrmc::net
