// Network interface process.
//
// Mirrors the paper's simulation model (§5.2): the NIC receives packets
// one at a time, holds each for its assigned delay, applies the
// *uncorrelated* share of the path loss rate, and passes it to the host.
// On the transmit side it owns a finite tx ring drained at link rate —
// the mechanism behind the NAKs the paper observed with >1024K buffers on
// the 100 Mbps network (Fig 13): a sender bursting more than the ring
// absorbs within a jiffy loses packets at its own card.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "kern/jiffies.hpp"
#include "net/disturb.hpp"
#include "net/loss.hpp"
#include "net/sink.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace hrmc::kern {
class MemAccountant;
}  // namespace hrmc::kern

namespace hrmc::net {

struct NicConfig {
  double link_bps = 10e6;        ///< access link rate (bits/second)
  sim::SimTime rx_delay = 0;     ///< one-way delay applied to arriving packets
  double rx_loss_rate = 0.0;     ///< uncorrelated loss probability on receive
  /// Transmit queue capacity in packets: device queue (Linux 2.1 default
  /// tx_queue_len ~100) plus the card's descriptor ring.
  std::size_t tx_ring = 128;
  /// Card FIFO overrun model (the authors' hypothesis for Fig 13: "the
  /// network card is not being able to accept data at these rates"):
  /// the card cleanly absorbs transient bursts, but when the enqueue
  /// rate stays above `overrun_burst` packets per jiffy for consecutive
  /// jiffies — sustained pressure only a window far beyond the
  /// bandwidth-delay product can generate — each excess enqueue is lost
  /// with probability `overrun_prob`. A 10 Mbps link drains only ~8
  /// packets per jiffy, so consecutive over-allowance jiffies cannot
  /// occur there; at 100 Mbps they occur exactly when the send window is
  /// in the multi-megabyte regime the paper flags.
  std::size_t overrun_burst = 78;  ///< per-jiffy clean enqueue allowance
  double overrun_prob = 0.05;
};

class Nic final : public PacketSink {
 public:
  Nic(sim::Scheduler& sched, std::string name, NicConfig cfg,
      std::uint64_t loss_seed);

  /// Downstream (toward the network). Set once during topology wiring.
  void attach_uplink(PacketSink* uplink) { uplink_ = uplink; }
  /// Upstream (toward the host protocol stack).
  void attach_host(PacketSink* host) { host_ = host; }

  /// Host-side entry point: queue a packet for transmission. Drops (and
  /// counts) the packet when the tx ring is full — exactly what a real
  /// card does when the driver outruns it.
  void transmit(kern::SkBuffPtr skb);

  /// Network-side entry point (PacketSink): a packet arriving for the
  /// host. Applies loss, then the configured delay, then serialization.
  void deliver(kern::SkBuffPtr skb) override;

  /// Link state (fault injection): a down link drops every packet in
  /// both directions at the card boundary, counted as
  /// "link_down_drops". Packets already serializing are not recalled.
  void set_link_up(bool up) { link_up_ = up; }
  [[nodiscard]] bool link_up() const { return link_up_; }

  /// Attaches a Gilbert–Elliott burst-loss model to the receive path,
  /// alongside (not replacing) the Bernoulli rx_loss_rate. The model
  /// owns its own RNG stream, so enabling it never perturbs the
  /// Bernoulli draws.
  void set_burst_loss(const GilbertElliottConfig& ge, std::uint64_t seed) {
    burst_loss_.emplace(ge, seed);
  }
  void clear_burst_loss() { burst_loss_.reset(); }

  /// Attaches the 802.11-style wireless loss model to the receive path
  /// (correlated fade lengths + SNR-like modulation; see loss.hpp).
  /// Coexists with both the Bernoulli rate and any burst-loss model,
  /// each on its own RNG stream.
  void set_wireless_loss(const WirelessLossConfig& wl, std::uint64_t seed) {
    wireless_loss_.emplace(wl, seed);
  }
  void clear_wireless_loss() { wireless_loss_.reset(); }
  [[nodiscard]] const WirelessLoss* wireless_loss() const {
    return wireless_loss_ ? &*wireless_loss_ : nullptr;
  }

  /// Adversarial behaviors on the receive path (reorder/duplicate/
  /// corrupt/control-loss/jitter), mirroring Router::ensure_disturb but
  /// *uncorrelated*: each NIC disturbs its own copy after fan-out.
  Disturber& ensure_disturb(std::uint64_t seed) {
    if (!disturb_) disturb_.emplace(seed);
    return *disturb_;
  }
  void clear_disturb() { disturb_.reset(); }
  [[nodiscard]] Disturber* disturb() {
    return disturb_ ? &*disturb_ : nullptr;
  }
  void set_control_classifier(ControlClassifier c) { classify_control_ = c; }

  [[nodiscard]] const sim::CounterSet& counters() const { return counters_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const NicConfig& config() const { return cfg_; }

  /// Packets currently waiting in the tx ring.
  [[nodiscard]] std::size_t tx_queue_len() const { return tx_queue_.size(); }

  /// Free transmit-queue slots — the protocol's transmitter consults
  /// this before bursting, the way the kernel driver checks the device
  /// queue (and requeues instead of flooding).
  [[nodiscard]] std::size_t tx_free() const {
    return cfg_.tx_ring > tx_queue_.size() ? cfg_.tx_ring - tx_queue_.size()
                                           : 0;
  }

  /// Attaches a trace sink reporting drops and tx-ring exhaustion.
  void set_trace(trace::TraceSink sink) { trace_ = sink; }

  /// Memory-pressure admission on the receive path: when an accountant
  /// is installed, every arriving packet models the driver's alloc_skb
  /// against `host_key`'s ledger and is dropped (DropReason::kNoMem) on
  /// refusal — a loss the protocol's NAK path already recovers from.
  void set_mem_admission(kern::MemAccountant* mem, std::uint32_t host_key) {
    mem_ = mem;
    mem_host_ = host_key;
  }

  /// Folded end-state of every RNG this NIC owns (Bernoulli loss, burst
  /// loss, wireless fade, disturber) — part of RunResult::rng_digest.
  [[nodiscard]] std::uint64_t rng_digest() const {
    std::uint64_t acc = loss_rng_.digest();
    if (burst_loss_) acc = sim::digest_mix(acc, burst_loss_->rng_digest());
    if (wireless_loss_) {
      acc = sim::digest_mix(acc, wireless_loss_->rng_digest());
    }
    if (disturb_) acc = sim::digest_mix(acc, disturb_->rng_digest());
    return acc;
  }

 private:
  void drain_tx();

  sim::Scheduler* sched_;
  std::string name_;
  NicConfig cfg_;
  sim::Rng loss_rng_;
  PacketSink* uplink_ = nullptr;
  PacketSink* host_ = nullptr;

  std::deque<kern::SkBuffPtr> tx_queue_;
  bool tx_busy_ = false;
  bool link_up_ = true;
  std::optional<GilbertElliott> burst_loss_;
  std::optional<WirelessLoss> wireless_loss_;
  std::optional<Disturber> disturb_;
  kern::MemAccountant* mem_ = nullptr;
  std::uint32_t mem_host_ = 0;
  ControlClassifier classify_control_ = nullptr;
  std::int64_t burst_jiffy_ = -1;
  std::size_t burst_count_ = 0;
  std::size_t burst_prev_ = 0;
  sim::CounterSet counters_;
  trace::TraceSink trace_;
};

}  // namespace hrmc::net
