// Host process: one simulated machine.
//
// Owns the serialized CPU model, demuxes arriving packets to registered
// transport protocols (the paper's Fig 4 stack: H-RMC lives beside TCP
// and UDP above IP), and charges the per-packet processing costs from
// §5.2 on both the send and receive paths.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/addr.hpp"
#include "net/cpu.hpp"
#include "net/nic.hpp"
#include "net/sink.hpp"
#include "sim/scheduler.hpp"

namespace hrmc::net {

/// A transport protocol instance bound to a host (H-RMC, mini-TCP, ...).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Called with each packet for this protocol, after the host has
  /// charged receive-path CPU costs.
  virtual void rx(kern::SkBuffPtr skb) = 0;
};

/// Lets hosts ask the network layer to (un)subscribe a multicast group,
/// playing the role IGMP plays below the real driver.
class GroupControl {
 public:
  virtual ~GroupControl() = default;
  virtual void join_group(Addr group, class Host* host) = 0;
  virtual void leave_group(Addr group, class Host* host) = 0;
};

class Host final : public PacketSink {
 public:
  Host(sim::Scheduler& sched, std::string name, Addr addr)
      : sched_(&sched), cpu_(sched), name_(std::move(name)), addr_(addr) {}

  void attach_nic(Nic* nic) { nic_ = nic; }
  void set_group_control(GroupControl* gc) { group_control_ = gc; }

  /// Registers `t` to receive packets whose protocol field equals `proto`.
  void register_transport(std::uint8_t proto, Transport* t) {
    transports_[proto] = t;
  }
  void unregister_transport(std::uint8_t proto) { transports_.erase(proto); }

  /// Transmit path: stamps the source address, charges protocol +
  /// lower-layer CPU cost, then hands the packet to the NIC.
  void send(kern::SkBuffPtr skb);

  /// PacketSink: packet arriving from the NIC. Charges receive-path CPU
  /// cost, then demuxes to the registered transport.
  void deliver(kern::SkBuffPtr skb) override;

  /// Crash state (fault injection): a down host is deaf and mute —
  /// everything it would send or receive vanishes at the host boundary.
  /// Protocol state is NOT touched here; a crashed protocol endpoint is
  /// reset by its own crash()/restart() hooks.
  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool is_down() const { return down_; }

  void join_group(Addr group) {
    if (group_control_ != nullptr) group_control_->join_group(group, this);
  }
  void leave_group(Addr group) {
    if (group_control_ != nullptr) group_control_->leave_group(group, this);
  }

  [[nodiscard]] Addr addr() const { return addr_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Cpu& cpu() { return cpu_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return *sched_; }
  [[nodiscard]] Nic* nic() { return nic_; }

  /// Cell-wide memory accountant, or nullptr (the default: allocation is
  /// infallible, exactly as before the accountant existed). Protocol
  /// code charges its buffer state against this host's addr() ledger.
  void set_mem_accountant(kern::MemAccountant* mem) { mem_ = mem; }
  [[nodiscard]] kern::MemAccountant* mem_accountant() const { return mem_; }

 private:
  kern::MemAccountant* mem_ = nullptr;
  sim::Scheduler* sched_;
  Cpu cpu_;
  std::string name_;
  Addr addr_;
  bool down_ = false;
  Nic* nic_ = nullptr;
  GroupControl* group_control_ = nullptr;
  std::unordered_map<std::uint8_t, Transport*> transports_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace hrmc::net
