#include "net/nic.hpp"

#include "kern/mem.hpp"

namespace hrmc::net {

Nic::Nic(sim::Scheduler& sched, std::string name, NicConfig cfg,
         std::uint64_t loss_seed)
    : sched_(&sched), name_(std::move(name)), cfg_(cfg), loss_rng_(loss_seed) {}

void Nic::transmit(kern::SkBuffPtr skb) {
  counters_.inc("tx_offered");
  if (!link_up_) {
    counters_.inc("link_down_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kLinkDown));
    return;
  }
  if (tx_queue_.size() >= cfg_.tx_ring) {
    counters_.inc("tx_ring_drops");
    trace_.emit(trace::EventKind::kDeviceFull, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(tx_queue_.size()));
    return;
  }
  // Card overrun model: sustained enqueue pressure above the per-jiffy
  // allowance — this jiffy AND the previous one — puts each excess
  // packet at risk (Fig 13's hypothesized mechanism).
  const kern::Jiffies j = kern::to_jiffies(sched_->now());
  if (j != burst_jiffy_) {
    burst_prev_ = (j == burst_jiffy_ + 1) ? burst_count_ : 0;
    burst_jiffy_ = j;
    burst_count_ = 0;
  }
  if (++burst_count_ > cfg_.overrun_burst &&
      burst_prev_ > cfg_.overrun_burst &&
      loss_rng_.chance(cfg_.overrun_prob)) {
    counters_.inc("tx_overrun_drops");
    counters_.inc("tx_ring_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kOverrun));
    return;
  }
  tx_queue_.push_back(std::move(skb));
  if (!tx_busy_) drain_tx();
}

void Nic::drain_tx() {
  if (tx_queue_.empty()) {
    tx_busy_ = false;
    return;
  }
  tx_busy_ = true;
  kern::SkBuffPtr skb = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  const sim::SimTime serialize =
      sim::transmission_time(static_cast<std::int64_t>(skb->wire_size()),
                             cfg_.link_bps);
  counters_.inc("tx_packets");
  counters_.inc("tx_bytes", skb->wire_size());
  // The packet leaves the wire after serialization; the ring keeps
  // draining back-to-back.
  sched_->schedule_after(
      serialize, [this, skb = std::move(skb)]() mutable {
        if (uplink_ != nullptr) {
          skb->stamp = sched_->now();
          uplink_->deliver(std::move(skb));
        }
        drain_tx();
      });
}

void Nic::deliver(kern::SkBuffPtr skb) {
  counters_.inc("rx_offered");
  if (!link_up_) {
    counters_.inc("link_down_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kLinkDown));
    return;
  }
  if (loss_rng_.chance(cfg_.rx_loss_rate)) {
    counters_.inc("rx_loss_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kLoss));
    return;
  }
  if (burst_loss_ && burst_loss_->drop()) {
    counters_.inc("burst_loss_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kBurstLoss));
    return;
  }
  if (wireless_loss_ && wireless_loss_->drop(sched_->now())) {
    counters_.inc("wireless_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kWireless));
    return;
  }
  // The frame survived the channel; now the driver must alloc_skb for
  // it. Under memory pressure that can fail — the packet is lost at the
  // card, indistinguishable from wire loss to the protocol above.
  // Control-sized frames allocate from the GFP_ATOMIC reserve and
  // always succeed (see kern::kMemRxReserveBytes): dropping the
  // feedback that frees memory would turn pressure into deadlock.
  if (mem_ != nullptr && skb->wire_size() > kern::kMemRxReserveBytes &&
      !mem_->admit(mem_host_, skb->wire_size())) {
    counters_.inc("mem_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kNoMem));
    return;
  }
  // Adversarial disturbances (chaos engine): applied after the loss
  // draws, per NIC, so they are *uncorrelated* across receivers —
  // the complement of the router's correlated ingress stage.
  sim::SimTime extra = 0;
  if (disturb_ && disturb_->config().any()) {
    if (disturb_->drop_control(*skb, classify_control_)) {
      counters_.inc("control_loss_drops");
      trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                  static_cast<std::uint32_t>(trace::DropReason::kControlLoss));
      return;
    }
    if (disturb_->corrupt(*skb)) {
      counters_.inc("corrupted");
      trace_.emit(trace::EventKind::kCorrupt, 0, 0, skb->wire_size());
    }
    if (disturb_->duplicate()) {
      counters_.inc("duplicated");
      kern::SkBuffPtr dup = skb->clone();
      sched_->schedule_after(cfg_.rx_delay,
                             [this, dup = std::move(dup)]() mutable {
                               if (host_ != nullptr) {
                                 dup->stamp = sched_->now();
                                 host_->deliver(std::move(dup));
                               }
                             });
    }
    extra = disturb_->extra_delay();
    if (extra > 0) counters_.inc("held");
  }
  counters_.inc("rx_packets");
  counters_.inc("rx_bytes", skb->wire_size());
  // Hold for the assigned path delay (the characteristic-group delay in
  // the paper's simulation), then hand to the host stack.
  sched_->schedule_after(cfg_.rx_delay + extra,
                         [this, skb = std::move(skb)]() mutable {
                           if (host_ != nullptr) {
                             skb->stamp = sched_->now();
                             host_->deliver(std::move(skb));
                           }
                         });
}

}  // namespace hrmc::net
