// Loss models beyond time-uniform Bernoulli.
//
// The Gilbert–Elliott model is a two-state Markov chain (Good / Bad)
// advanced once per packet, with an independent loss probability in each
// state. It produces the *bursty* loss of real paths — a router buffer
// overflowing, a wireless link fading — which Bernoulli loss at the same
// mean rate cannot: burstiness is exactly what stresses NAK suppression
// and the sender's retransmission collapsing.
//
// Determinism contract (sim/random.hpp): every GilbertElliott instance
// draws from its own named substream, so attaching one to a router or
// NIC never perturbs the draws of the existing Bernoulli loss streams —
// a fault-free run stays bit-identical whether or not the model is
// merely *available*.
#pragma once

#include <cstdint>

#include "sim/random.hpp"

namespace hrmc::net {

struct GilbertElliottConfig {
  double p_good_bad = 0.0;  ///< per-packet transition probability G -> B
  double p_bad_good = 0.0;  ///< per-packet transition probability B -> G
  double loss_good = 0.0;   ///< loss probability while in the Good state
  double loss_bad = 1.0;    ///< loss probability while in the Bad state
};

class GilbertElliott {
 public:
  GilbertElliott(const GilbertElliottConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  /// Advances the chain one packet and returns the loss decision.
  bool drop() {
    if (bad_) {
      if (rng_.chance(cfg_.p_bad_good)) bad_ = false;
    } else {
      if (rng_.chance(cfg_.p_good_bad)) bad_ = true;
    }
    return rng_.chance(bad_ ? cfg_.loss_bad : cfg_.loss_good);
  }

  [[nodiscard]] bool in_bad_state() const { return bad_; }
  [[nodiscard]] const GilbertElliottConfig& config() const { return cfg_; }

 private:
  GilbertElliottConfig cfg_;
  sim::Rng rng_;
  bool bad_ = false;  ///< chain starts in the Good state
};

}  // namespace hrmc::net
