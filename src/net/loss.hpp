// Loss models beyond time-uniform Bernoulli.
//
// The Gilbert–Elliott model is a two-state Markov chain (Good / Bad)
// advanced once per packet, with an independent loss probability in each
// state. It produces the *bursty* loss of real paths — a router buffer
// overflowing, a wireless link fading — which Bernoulli loss at the same
// mean rate cannot: burstiness is exactly what stresses NAK suppression
// and the sender's retransmission collapsing.
//
// Determinism contract (sim/random.hpp): every GilbertElliott instance
// draws from its own named substream, so attaching one to a router or
// NIC never perturbs the draws of the existing Bernoulli loss streams —
// a fault-free run stays bit-identical whether or not the model is
// merely *available*.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hrmc::net {

struct GilbertElliottConfig {
  double p_good_bad = 0.0;  ///< per-packet transition probability G -> B
  double p_bad_good = 0.0;  ///< per-packet transition probability B -> G
  double loss_good = 0.0;   ///< loss probability while in the Good state
  double loss_bad = 1.0;    ///< loss probability while in the Bad state
};

class GilbertElliott {
 public:
  GilbertElliott(const GilbertElliottConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  /// Advances the chain one packet and returns the loss decision.
  bool drop() {
    if (bad_) {
      if (rng_.chance(cfg_.p_bad_good)) bad_ = false;
    } else {
      if (rng_.chance(cfg_.p_good_bad)) bad_ = true;
    }
    return rng_.chance(bad_ ? cfg_.loss_bad : cfg_.loss_good);
  }

  [[nodiscard]] bool in_bad_state() const { return bad_; }
  [[nodiscard]] const GilbertElliottConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t rng_digest() const { return rng_.digest(); }

 private:
  GilbertElliottConfig cfg_;
  sim::Rng rng_;
  bool bad_ = false;  ///< chain starts in the Good state
};

/// 802.11-style wireless link loss: Gilbert–Elliott extended two ways.
///
/// First, burst lengths are *correlated*: entering the Bad state draws a
/// whole fade duration (geometric, `mean_burst` packets) instead of
/// re-flipping an exit coin per packet — matching the measured behavior
/// of wireless links where a fade, once begun, swallows a run of frames.
/// Second, the fade-entry probability is modulated by a deterministic
/// SNR-like slow cycle over simulation time (think a node moving through
/// a standing-wave pattern): p_enter(t) = p_good_bad * (1 + snr_depth *
/// sin(2π(t/snr_period + snr_phase))), clamped to [0,1]. Per-link
/// instances get distinct phases and RNG substreams, so fades across
/// links of one group are neither independent-memoryless nor lockstep.
struct WirelessLossConfig {
  double p_good_bad = 0.0;  ///< base per-packet fade-entry probability
  double mean_burst = 4.0;  ///< mean fade length in packets (geometric)
  double loss_good = 0.0;   ///< loss probability between fades
  double loss_bad = 1.0;    ///< loss probability inside a fade
  double snr_depth = 0.0;   ///< modulation depth of p_good_bad, 0..1
  sim::SimTime snr_period = sim::seconds(1);  ///< fade-cycle period
  double snr_phase = 0.0;   ///< per-link phase offset, cycles in [0,1)
};

class WirelessLoss {
 public:
  WirelessLoss(const WirelessLossConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  /// Advances the model one packet at simulation time `now` and returns
  /// the loss decision.
  bool drop(sim::SimTime now) {
    if (bad_) {
      if (--burst_left_ <= 0) bad_ = false;
    } else if (rng_.chance(entry_probability(now))) {
      bad_ = true;
      burst_left_ = draw_burst_length();
    }
    return rng_.chance(bad_ ? cfg_.loss_bad : cfg_.loss_good);
  }

  [[nodiscard]] bool in_fade() const { return bad_; }
  [[nodiscard]] const WirelessLossConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t rng_digest() const { return rng_.digest(); }

  /// The SNR-modulated fade-entry probability at time `now` (exposed for
  /// tests; drop() is the only caller inside the model).
  [[nodiscard]] double entry_probability(sim::SimTime now) const {
    double p = cfg_.p_good_bad;
    if (cfg_.snr_depth != 0.0 && cfg_.snr_period > 0) {
      const double cycles =
          static_cast<double>(now) / static_cast<double>(cfg_.snr_period) +
          cfg_.snr_phase;
      constexpr double kTau = 6.283185307179586476925286766559;
      p *= 1.0 + cfg_.snr_depth * std::sin(kTau * cycles);
    }
    return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  }

 private:
  [[nodiscard]] std::int64_t draw_burst_length() {
    if (cfg_.mean_burst <= 1.0) return 1;
    // Geometric with mean m: L = 1 + floor(ln(1-u) / ln(1-1/m)).
    const double u = rng_.next_double();
    const double l = std::log1p(-u) / std::log1p(-1.0 / cfg_.mean_burst);
    return 1 + static_cast<std::int64_t>(l);
  }

  WirelessLossConfig cfg_;
  sim::Rng rng_;
  bool bad_ = false;          ///< inside a fade
  std::int64_t burst_left_ = 0;  ///< packets left in the current fade
};

}  // namespace hrmc::net
