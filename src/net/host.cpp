#include "net/host.hpp"

namespace hrmc::net {

// Cost model (paper §5.2): each packet of length l costs (10 + 0.025·l) µs
// of H-RMC protocol processing and 150 µs of lower-layer (IP + driver)
// work. The protocol cost occupies the CPU (it serializes across packets
// and is what makes heavy feedback expensive at the sender); the
// lower-layer cost is treated as pipelined latency — DMA and wire handoff
// overlap with protocol processing of the next packet, so it delays each
// packet without consuming sender CPU. Treating it as occupancy instead
// would cap a host at ~59 Mbps of 1460-byte packets, below throughputs
// the paper reports on the 100 Mbps network.

void Host::send(kern::SkBuffPtr skb) {
  if (nic_ == nullptr || down_) return;
  skb->saddr = addr_;
  skb->serial = next_serial_++;
  const sim::SimTime cost = Cpu::hrmc_cost(skb->size());
  cpu_.run(cost, [this, skb = std::move(skb)]() mutable {
    sched_->schedule_after(Cpu::lower_layer_cost(),
                           [this, skb = std::move(skb)]() mutable {
                             nic_->transmit(std::move(skb));
                           });
  });
}

void Host::deliver(kern::SkBuffPtr skb) {
  if (down_) return;
  sched_->schedule_after(
      Cpu::lower_layer_cost(), [this, skb = std::move(skb)]() mutable {
        const sim::SimTime cost = Cpu::hrmc_cost(skb->size());
        cpu_.run(cost, [this, skb = std::move(skb)]() mutable {
          auto it = transports_.find(skb->protocol);
          if (it != transports_.end()) it->second->rx(std::move(skb));
        });
      });
}

}  // namespace hrmc::net
