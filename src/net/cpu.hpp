// Serialized host CPU model.
//
// The paper charges measured per-packet processing costs on its simulated
// 300 MHz hosts: (10 + 0.025·l) µs of H-RMC protocol work per packet of
// length l, plus 150 µs of lower-layer (IP + driver) work (§5.2). A host
// CPU executes one thing at a time, so costs serialize — this is what
// makes feedback processing at the sender a real bottleneck at 100
// receivers (Fig 15c) rather than free.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/scheduler.hpp"

namespace hrmc::net {

class Cpu {
 public:
  explicit Cpu(sim::Scheduler& sched) : sched_(&sched) {}

  /// Queues `cost` of CPU work, then runs `done` when it completes.
  /// Work requests are serviced FIFO.
  void run(sim::SimTime cost, std::function<void()> done) {
    const sim::SimTime start = std::max(sched_->now(), busy_until_);
    busy_until_ = start + cost;
    total_busy_ += cost;
    sched_->schedule_at(busy_until_, std::move(done));
  }

  /// Time at which all queued work completes.
  [[nodiscard]] sim::SimTime busy_until() const { return busy_until_; }

  /// Cumulative busy time (for utilization reporting).
  [[nodiscard]] sim::SimTime total_busy() const { return total_busy_; }

  /// Per-packet H-RMC protocol processing cost from §5.2 of the paper.
  static sim::SimTime hrmc_cost(std::size_t payload_len) {
    return sim::microseconds(10) +
           static_cast<sim::SimTime>(0.025 * static_cast<double>(payload_len) *
                                     static_cast<double>(sim::kMicrosecond));
  }

  /// Lower-layer (IP + device driver) cost from §5.2 of the paper.
  static sim::SimTime lower_layer_cost() { return sim::microseconds(150); }

 private:
  sim::Scheduler* sched_;
  sim::SimTime busy_until_ = 0;
  sim::SimTime total_busy_ = 0;
};

}  // namespace hrmc::net
