// Fault-injection layer: declarative failure scenarios on the scheduler.
//
// A FaultPlan is an ordered list of timed events — receiver crash and
// restart, access-link flap, group-router partition and heal, burst-loss
// onset — that the FaultInjector replays against a Topology while a
// transfer runs. The injector owns the *network-level* consequences
// (hosts going deaf, links dropping, routers black-holing); the
// *protocol-level* consequences (a crashed receiver losing its
// reassembly state, a restarted one rejoining) are delegated through
// callbacks so the net layer stays protocol-agnostic.
//
// Determinism: the injector draws no randomness of its own. Burst-loss
// events hand each router/NIC a Gilbert–Elliott model seeded from its
// own named substream ("fault/ge:..."), so a plan never perturbs the
// existing Bernoulli loss draws — runs with an empty plan are
// bit-identical to runs without an injector at all.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/disturb.hpp"
#include "net/loss.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace hrmc::kern {
class MemAccountant;
}  // namespace hrmc::kern

namespace hrmc::net {

enum class FaultKind {
  kReceiverCrash,    ///< target receiver's host goes deaf and mute
  kReceiverRestart,  ///< host comes back; protocol layer must rejoin
  kLinkDown,         ///< target receiver's access NIC drops everything
  kLinkUp,
  kPartition,        ///< target group's router black-holes (both ways)
  kHeal,
  kBurstLossStart,   ///< Gilbert–Elliott loss on the target group router
  kBurstLossStop,

  // Adversarial disturbances (chaos engine): each start patches one
  // behavior of the target group router's Disturber, each stop zeroes
  // it. The disturber (and its RNG substream) is created on first use
  // and survives stops, so re-arming a behavior never replays draws.
  kReorderStart,     ///< hold a random subset of packets back
  kReorderStop,
  kDuplicateStart,   ///< forward a random subset twice
  kDuplicateStop,
  kCorruptStart,     ///< flip one byte in a random subset
  kCorruptStop,
  kControlLossStart, ///< drop control-plane packets only
  kControlLossStop,
  kJitterStart,      ///< uniform extra delay on every packet
  kJitterStop,

  // Dynamic-network events. Appended (never reordered): the enum's
  // integer values are the chaos repro wire format.
  kTrunkDown,        ///< target group's trunk fails (router black-holes)
  kTrunkUp,          ///< trunk repaired; router reconverges for `delay`
  kWirelessStart,    ///< 802.11-style wireless loss on the group's NICs
  kWirelessStop,

  // Memory-pressure events (no-ops unless the harness installed a
  // kern::MemAccountant). Appended, like above: wire-format stable.
  kMemPressureStart, ///< squeeze effective budgets to (1 - mem_fraction)
  kMemPressureStop,
  kAllocFailStart,   ///< GFP_ATOMIC-style Bernoulli allocation failure
  kAllocFailStop,
};

struct FaultEvent {
  FaultKind kind = FaultKind::kReceiverCrash;
  sim::SimTime at = 0;
  /// Receiver index (crash/restart/link events) or group index
  /// (partition/heal/burst-loss/disturbance events).
  std::size_t target = 0;
  GilbertElliottConfig ge;  ///< kBurstLossStart only
  DisturbConfig disturb;    ///< k*Start disturbance events only
  /// kTrunkUp only: route-reconvergence window after the trunk returns.
  sim::SimTime delay = 0;
  WirelessLossConfig wireless;  ///< kWirelessStart only
  double mem_fraction = 0.0;      ///< kMemPressureStart: budget cut [0,0.95]
  double alloc_fail_prob = 0.0;   ///< kAllocFailStart: Bernoulli fail prob
};

/// Declarative event list. The chainable builders exist so scenarios
/// read as a timeline:
///   FaultPlan plan;
///   plan.crash(2, sim::seconds(1)).restart(2, sim::seconds(3));
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  FaultPlan& crash(std::size_t receiver, sim::SimTime at);
  FaultPlan& restart(std::size_t receiver, sim::SimTime at);
  FaultPlan& link_down(std::size_t receiver, sim::SimTime at);
  FaultPlan& link_up(std::size_t receiver, sim::SimTime at);
  FaultPlan& partition(std::size_t group, sim::SimTime at);
  FaultPlan& heal(std::size_t group, sim::SimTime at);
  FaultPlan& burst_loss(std::size_t group, sim::SimTime at,
                        const GilbertElliottConfig& ge);
  FaultPlan& burst_loss_stop(std::size_t group, sim::SimTime at);
  FaultPlan& reorder(std::size_t group, sim::SimTime at, double prob,
                     sim::SimTime hold);
  FaultPlan& reorder_stop(std::size_t group, sim::SimTime at);
  FaultPlan& duplicate(std::size_t group, sim::SimTime at, double prob);
  FaultPlan& duplicate_stop(std::size_t group, sim::SimTime at);
  FaultPlan& corrupt(std::size_t group, sim::SimTime at, double prob);
  FaultPlan& corrupt_stop(std::size_t group, sim::SimTime at);
  FaultPlan& control_loss(std::size_t group, sim::SimTime at, double prob);
  FaultPlan& control_loss_stop(std::size_t group, sim::SimTime at);
  FaultPlan& jitter(std::size_t group, sim::SimTime at, sim::SimTime max);
  FaultPlan& jitter_stop(std::size_t group, sim::SimTime at);
  FaultPlan& trunk_down(std::size_t group, sim::SimTime at);
  /// Trunk repair; the router black-holes for `reconverge` after `at`
  /// while it recomputes forwarding state.
  FaultPlan& trunk_up(std::size_t group, sim::SimTime at,
                      sim::SimTime reconverge = 0);
  FaultPlan& wireless(std::size_t group, sim::SimTime at,
                      const WirelessLossConfig& wl);
  FaultPlan& wireless_stop(std::size_t group, sim::SimTime at);
  /// Budget squeeze: effective per-host budgets become
  /// budget * (1 - fraction) until the matching stop. Group-targeted
  /// for plan validation; the accountant itself is cell-global.
  FaultPlan& mem_pressure(std::size_t group, sim::SimTime at,
                          double fraction);
  FaultPlan& mem_pressure_stop(std::size_t group, sim::SimTime at);
  FaultPlan& alloc_fail(std::size_t group, sim::SimTime at, double prob);
  FaultPlan& alloc_fail_stop(std::size_t group, sim::SimTime at);

  /// Flap schedules (per-link and per-trunk): `count` down/up pairs,
  /// the k-th going down at `start + k*period` and returning `down_time`
  /// later. Periods shorter than the down time produce overlapping
  /// pairs, which the injector's idempotent transitions absorb.
  FaultPlan& link_flaps(std::size_t receiver, sim::SimTime start,
                        sim::SimTime period, sim::SimTime down_time,
                        int count);
  FaultPlan& trunk_flaps(std::size_t group, sim::SimTime start,
                         sim::SimTime period, sim::SimTime down_time,
                         int count, sim::SimTime reconverge = 0);
};

class FaultInjector {
 public:
  /// `seed` is the scenario root seed; burst-loss substreams derive from
  /// it by name. The plan is replayed once `arm()` is called.
  FaultInjector(sim::Scheduler& sched, Topology& topo, FaultPlan plan,
                std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event of the plan. Call once, before (or at) t = 0
  /// of the experiment.
  void arm();

  /// Protocol-layer hooks, invoked with the receiver index *after* the
  /// network-level state change has been applied.
  std::function<void(std::size_t)> on_receiver_crash;
  std::function<void(std::size_t)> on_receiver_restart;

  /// Control-packet classifier for kControlLossStart, installed on the
  /// target router when the event fires. Supplied by the harness (which
  /// can parse protocol headers); net stays protocol-agnostic.
  ControlClassifier control_classifier = nullptr;

  [[nodiscard]] const sim::CounterSet& counters() const { return counters_; }

  /// Attaches a trace sink; down/up events are emitted on behalf of the
  /// affected entity using the shared host-id convention (receiver i →
  /// receiver_host(i), its NIC → nic_host(1+i), group router g →
  /// router_host(g)).
  void set_trace(trace::TraceSink sink) { trace_ = sink; }

  /// Attaches the cell's memory accountant; without one the mem-pressure
  /// and alloc-fail events are no-ops (counted, applying nothing).
  void set_mem_accountant(kern::MemAccountant* mem) { mem_ = mem; }

 private:
  void fire(const FaultEvent& ev);
  Disturber& disturber(std::size_t group);

  trace::TraceSink trace_;

  sim::Scheduler* sched_;
  Topology* topo_;
  kern::MemAccountant* mem_ = nullptr;
  FaultPlan plan_;
  std::uint64_t seed_;
  bool armed_ = false;
  sim::CounterSet counters_;
};

}  // namespace hrmc::net
