// Adversarial link behaviors beyond loss: the packet pathologies real
// networks produce and the chaos engine (harness/chaos.hpp) exercises.
//
//  - reordering: a fraction of packets is held for an extra delay and
//    re-injected, so later packets overtake them;
//  - duplication: a fraction of packets is forwarded twice;
//  - corruption: a fraction of packets has one byte flipped in place
//    (a single-byte change can never alias under the internet checksum,
//    so corrupted packets are always detectable end to end);
//  - control-plane loss: only packets a protocol-supplied classifier
//    marks as control (NAK/UPDATE/PROBE/...) are dropped, the failure
//    mode where the data plane is healthy but feedback starves;
//  - delay jitter: every packet gets a uniform extra delay, a softer
//    (and reordering-prone) cousin of the fixed path delay.
//
// Determinism contract (sim/random.hpp): a Disturber owns one named
// substream, created only when a fault plan arms a behavior, so runs
// without disturbances are bit-identical to runs predating this layer.
// Each decision draws only when its behavior is armed.
#pragma once

#include <cstdint>

#include "kern/skbuff.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hrmc::net {

/// Tells the (protocol-agnostic) net layer which packets are control
/// plane. Installed by the harness, which can parse the H-RMC header.
using ControlClassifier = bool (*)(const kern::SkBuff&);

struct DisturbConfig {
  double reorder_prob = 0.0;       ///< chance a packet is held back
  sim::SimTime reorder_hold = 0;   ///< max extra hold for a held packet
  double dup_prob = 0.0;           ///< chance a packet is forwarded twice
  double corrupt_prob = 0.0;       ///< chance of a one-byte flip
  double control_loss_prob = 0.0;  ///< drop chance, control packets only
  sim::SimTime jitter = 0;         ///< max uniform extra delay, all packets

  [[nodiscard]] bool any() const {
    return reorder_prob > 0.0 || dup_prob > 0.0 || corrupt_prob > 0.0 ||
           control_loss_prob > 0.0 || jitter > 0;
  }
};

class Disturber {
 public:
  explicit Disturber(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] DisturbConfig& config() { return cfg_; }
  [[nodiscard]] const DisturbConfig& config() const { return cfg_; }

  /// Control-plane-only loss decision for this packet.
  bool drop_control(const kern::SkBuff& skb, ControlClassifier classify) {
    if (cfg_.control_loss_prob <= 0.0 || classify == nullptr) return false;
    if (!classify(skb)) return false;
    return rng_.chance(cfg_.control_loss_prob);
  }

  /// Flips one random bit of one random byte in place. Returns true if
  /// the packet was corrupted. A single-byte change always perturbs the
  /// internet checksum (no 16-bit word can shift by a multiple of
  /// 0xffff through one byte), so corruption is detectable, never
  /// silent.
  bool corrupt(kern::SkBuff& skb) {
    if (cfg_.corrupt_prob <= 0.0 || skb.size() == 0) return false;
    if (!rng_.chance(cfg_.corrupt_prob)) return false;
    const auto off = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(skb.size()) - 1));
    const auto bit = static_cast<std::uint8_t>(1u << rng_.uniform_int(0, 7));
    skb.mutable_bytes()[off] ^= bit;
    return true;
  }

  /// Duplication decision for this packet.
  bool duplicate() {
    return cfg_.dup_prob > 0.0 && rng_.chance(cfg_.dup_prob);
  }

  /// Extra forwarding delay: jitter (every packet) plus a reorder hold
  /// (a random subset). Either alone is enough to reorder packets
  /// relative to undelayed neighbors.
  sim::SimTime extra_delay() {
    sim::SimTime d = 0;
    if (cfg_.jitter > 0) {
      d += static_cast<sim::SimTime>(
          rng_.uniform(0.0, static_cast<double>(cfg_.jitter)));
    }
    if (cfg_.reorder_prob > 0.0 && cfg_.reorder_hold > 0 &&
        rng_.chance(cfg_.reorder_prob)) {
      d += static_cast<sim::SimTime>(
          rng_.uniform(0.0, static_cast<double>(cfg_.reorder_hold)));
    }
    return d;
  }

  [[nodiscard]] std::uint64_t rng_digest() const { return rng_.digest(); }

 private:
  DisturbConfig cfg_;
  sim::Rng rng_;
};

}  // namespace hrmc::net
