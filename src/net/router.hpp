// Router process.
//
// Per the paper's simulation model: each router has a network speed, a
// queue size, and a loss rate. Packets are queued per *egress port*,
// given a service time according to the speed, and forwarded by
// destination; multicast packets are duplicated inside the router as
// necessary. The loss draw happens at ingress, *before* fan-out, so a
// loss here is correlated across every downstream receiver — the paper
// assigns 90% of each path's loss to the router for exactly this reason.
//
// Output queueing is per egress port (as in a real switch; links are
// full duplex): a data stream saturating the downstream ports must not
// delay or drop the receivers' feedback heading upstream.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.hpp"
#include "net/disturb.hpp"
#include "net/loss.hpp"
#include "net/sink.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace hrmc::net {

struct RouterConfig {
  double speed_bps = 10e6;       ///< service rate per egress port
  std::size_t queue_limit = 512; ///< per-port FIFO capacity in packets
  double loss_rate = 0.0;        ///< correlated loss probability
};

class Router final : public PacketSink {
 public:
  Router(sim::Scheduler& sched, std::string name, RouterConfig cfg,
         std::uint64_t loss_seed);

  /// Exact-match unicast route: packets for `dst` forward to `next`.
  void add_route(Addr dst, PacketSink* next);

  /// Fallback for destinations with no exact route.
  void set_default_route(PacketSink* next) { default_route_ = next; }

  /// Adds `next` to the fan-out set for multicast group `group`.
  void join_group(Addr group, PacketSink* next);

  /// Removes `next` from the group's fan-out set.
  void leave_group(Addr group, PacketSink* next);

  /// True if the group currently has any egress here.
  [[nodiscard]] bool group_active(Addr group) const;

  void deliver(kern::SkBuffPtr skb) override;

  /// Partition state (fault injection): a down router black-holes every
  /// packet in every direction — for a group router this partitions its
  /// whole site from the rest of the internetwork. Counted as
  /// "down_drops"; already-queued packets still drain.
  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool is_down() const { return down_; }

  /// Route reconvergence (topology change): after a trunk flap the
  /// router must recompute its forwarding state before packets flow
  /// again; until `now + window` everything offered is black-holed
  /// (counted "reconverge_drops", reason kReconverging). Real routers
  /// either black-hole or loop during this interval — we model the
  /// black-hole, which is the harder case for a NAK-based protocol
  /// because feedback dies with the data. A zero window is a no-op, so
  /// plans without flaps are bit-identical to builds without this hook.
  void start_reconvergence(sim::SimTime window);
  [[nodiscard]] bool reconverging() const;

  /// Attaches a Gilbert–Elliott burst-loss model at ingress, alongside
  /// (not replacing) the Bernoulli loss_rate. Like the Bernoulli draw it
  /// runs before multicast fan-out, so a burst loss is correlated across
  /// every downstream receiver. Owns its own RNG stream.
  void set_burst_loss(const GilbertElliottConfig& ge, std::uint64_t seed) {
    burst_loss_.emplace(ge, seed);
  }
  void clear_burst_loss() { burst_loss_.reset(); }

  /// Adversarial link behaviors (reorder/duplicate/corrupt/control-loss/
  /// jitter), applied at ingress after the loss draws and before fan-out
  /// so a disturbance is correlated across downstream receivers, like
  /// the loss models. Creates the disturber (with its own RNG substream)
  /// on first call; later calls return the same instance so a fault plan
  /// can patch individual behaviors without resetting the others' draws.
  Disturber& ensure_disturb(std::uint64_t seed) {
    if (!disturb_) disturb_.emplace(seed);
    return *disturb_;
  }
  void clear_disturb() { disturb_.reset(); }
  [[nodiscard]] Disturber* disturb() {
    return disturb_ ? &*disturb_ : nullptr;
  }

  /// Protocol-aware control-packet classifier for control-plane-only
  /// loss (net stays protocol-agnostic; the harness supplies this).
  void set_control_classifier(ControlClassifier c) { classify_control_ = c; }

  [[nodiscard]] const sim::CounterSet& counters() const { return counters_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Total packets queued across all egress ports.
  [[nodiscard]] std::size_t queue_len() const;

  /// Attaches a trace sink reporting enqueues and drops (with reason).
  void set_trace(trace::TraceSink sink) { trace_ = sink; }

  /// Sharded execution: marks `egress` as living in another domain.
  /// Queueing and the per-packet service time stay here (this router's
  /// port is still the bottleneck resource); only the *delivery* at the
  /// end of the service interval is posted through the engine's mailbox
  /// instead of called directly, which is what gives the engine its
  /// lookahead — the arrival lands at least one minimum service time
  /// after the instant the handoff is staged.
  void set_remote_egress(PacketSink* egress, sim::ShardEngine* engine,
                         std::size_t src_domain, std::size_t dst_domain) {
    Port& port = ports_[egress];
    port.remote_engine = engine;
    port.remote_src = src_domain;
    port.remote_dst = dst_domain;
  }

  /// Folded end-state of every RNG this router owns (Bernoulli loss,
  /// burst loss, disturber) — part of RunResult::rng_digest.
  [[nodiscard]] std::uint64_t rng_digest() const {
    std::uint64_t acc = loss_rng_.digest();
    if (burst_loss_) acc = sim::digest_mix(acc, burst_loss_->rng_digest());
    if (disturb_) acc = sim::digest_mix(acc, disturb_->rng_digest());
    return acc;
  }

 private:
  struct Port {
    std::deque<kern::SkBuffPtr> queue;
    bool busy = false;
    sim::ShardEngine* remote_engine = nullptr;  ///< set when egress is
    std::size_t remote_src = 0;                 ///< in another domain
    std::size_t remote_dst = 0;
  };

  void enqueue(PacketSink* egress, kern::SkBuffPtr skb);
  void service(PacketSink* egress, Port& port);
  /// Forwarding stage (multicast fan-out / unicast route lookup), split
  /// from deliver() so a disturbed packet can be re-injected here after
  /// its reorder hold without re-running the ingress loss draws.
  void route(kern::SkBuffPtr skb);

  sim::Scheduler* sched_;
  std::string name_;
  RouterConfig cfg_;
  sim::Rng loss_rng_;
  bool down_ = false;
  sim::SimTime reconverging_until_ = 0;
  std::optional<GilbertElliott> burst_loss_;
  std::optional<Disturber> disturb_;
  ControlClassifier classify_control_ = nullptr;

  std::unordered_map<Addr, PacketSink*> routes_;
  std::unordered_map<Addr, std::vector<PacketSink*>> groups_;
  PacketSink* default_route_ = nullptr;

  std::unordered_map<PacketSink*, Port> ports_;
  sim::CounterSet counters_;
  trace::TraceSink trace_;
};

}  // namespace hrmc::net
