#include "net/addr.hpp"

#include <cstdio>

namespace hrmc::net {

std::string addr_to_string(Addr a) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (a >> 24) & 0xff,
                (a >> 16) & 0xff, (a >> 8) & 0xff, a & 0xff);
  return buf;
}

std::string endpoint_to_string(const Endpoint& e) {
  return addr_to_string(e.addr) + ":" + std::to_string(e.port);
}

}  // namespace hrmc::net
