#include "net/router.hpp"

#include <algorithm>

namespace hrmc::net {

Router::Router(sim::Scheduler& sched, std::string name, RouterConfig cfg,
               std::uint64_t loss_seed)
    : sched_(&sched), name_(std::move(name)), cfg_(cfg), loss_rng_(loss_seed) {}

void Router::add_route(Addr dst, PacketSink* next) { routes_[dst] = next; }

void Router::join_group(Addr group, PacketSink* next) {
  auto& fanout = groups_[group];
  if (std::find(fanout.begin(), fanout.end(), next) == fanout.end()) {
    fanout.push_back(next);
  }
}

void Router::leave_group(Addr group, PacketSink* next) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  auto& fanout = it->second;
  fanout.erase(std::remove(fanout.begin(), fanout.end(), next), fanout.end());
  if (fanout.empty()) groups_.erase(it);
}

bool Router::group_active(Addr group) const {
  auto it = groups_.find(group);
  return it != groups_.end() && !it->second.empty();
}

void Router::deliver(kern::SkBuffPtr skb) {
  counters_.inc("offered");
  if (down_) {
    counters_.inc("down_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kDown));
    return;
  }
  if (skb->ttl == 0) {
    counters_.inc("ttl_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kTtl));
    return;
  }
  skb->ttl -= 1;
  // One loss draw per packet at ingress, before any duplication: a loss
  // here is correlated across every downstream receiver.
  if (loss_rng_.chance(cfg_.loss_rate)) {
    counters_.inc("loss_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kLoss));
    return;
  }
  if (burst_loss_ && burst_loss_->drop()) {
    counters_.inc("burst_loss_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kBurstLoss));
    return;
  }
  // Adversarial disturbances (chaos engine): decided at ingress, like
  // the loss draws, so every downstream receiver sees the same
  // corruption/duplicate/hold.
  if (disturb_ && disturb_->config().any()) {
    if (disturb_->drop_control(*skb, classify_control_)) {
      counters_.inc("control_loss_drops");
      trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                  static_cast<std::uint32_t>(trace::DropReason::kControlLoss));
      return;
    }
    if (disturb_->corrupt(*skb)) {
      counters_.inc("corrupted");
      trace_.emit(trace::EventKind::kCorrupt, 0, 0, skb->wire_size());
    }
    if (disturb_->duplicate()) {
      counters_.inc("duplicated");
      route(skb->clone());
    }
    const sim::SimTime hold = disturb_->extra_delay();
    if (hold > 0) {
      counters_.inc("held");
      sched_->schedule_after(hold, [this, skb = std::move(skb)]() mutable {
        route(std::move(skb));
      });
      return;
    }
  }
  route(std::move(skb));
}

void Router::start_reconvergence(sim::SimTime window) {
  const sim::SimTime until = sched_->now() + window;
  if (until > reconverging_until_) reconverging_until_ = until;
}

bool Router::reconverging() const {
  return sched_->now() < reconverging_until_;
}

void Router::route(kern::SkBuffPtr skb) {
  // All forwarding paths funnel through here (including disturbed
  // packets re-injected after a reorder hold), so the reconvergence
  // black-hole covers every packet the router would have moved.
  if (reconverging()) {
    counters_.inc("reconverge_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kReconverging));
    return;
  }
  if (is_multicast(skb->daddr)) {
    auto it = groups_.find(skb->daddr);
    if (it == groups_.end() || it->second.empty()) {
      counters_.inc("no_group_drops");
      trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                  static_cast<std::uint32_t>(trace::DropReason::kNoRoute));
      return;
    }
    counters_.inc("mcast_forwarded");
    // Fan-out duplication is O(1) per egress: clone() shares the data
    // block (skb_clone semantics) and receivers only pull/read, so no
    // copy ever materializes on the multicast data path.
    const auto& fanout = it->second;
    for (std::size_t i = 0; i + 1 < fanout.size(); ++i) {
      enqueue(fanout[i], skb->clone());
    }
    enqueue(fanout.back(), std::move(skb));
    return;
  }
  auto it = routes_.find(skb->daddr);
  PacketSink* next = it != routes_.end() ? it->second : default_route_;
  if (next == nullptr) {
    counters_.inc("no_route_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kNoRoute));
    return;
  }
  counters_.inc("forwarded");
  enqueue(next, std::move(skb));
}

void Router::enqueue(PacketSink* egress, kern::SkBuffPtr skb) {
  // Per-egress-port output queues: a saturated forward port must not
  // starve (or drop) traffic leaving through a different port — links
  // are full duplex and switch ports have independent queues.
  Port& port = ports_[egress];
  if (port.queue.size() >= cfg_.queue_limit) {
    counters_.inc("queue_drops");
    trace_.emit(trace::EventKind::kDrop, 0, 0, skb->wire_size(),
                static_cast<std::uint32_t>(trace::DropReason::kQueueFull));
    return;
  }
  trace_.emit(trace::EventKind::kEnqueue, 0, 0, skb->wire_size(),
              static_cast<std::uint32_t>(port.queue.size()));
  port.queue.push_back(std::move(skb));
  if (!port.busy) service(egress, port);
}

void Router::service(PacketSink* egress, Port& port) {
  if (port.queue.empty()) {
    port.busy = false;
    return;
  }
  port.busy = true;
  kern::SkBuffPtr skb = std::move(port.queue.front());
  port.queue.pop_front();
  const sim::SimTime service_time = sim::transmission_time(
      static_cast<std::int64_t>(skb->wire_size()), cfg_.speed_bps);
  if (port.remote_engine != nullptr) {
    // Cross-domain egress: the arrival is staged *now*, at service
    // start, to land at now + service_time — which is what bounds the
    // engine's lookahead from below (no packet serializes faster than
    // the minimum-size one). unshare() first: skb data blocks are
    // refcounted without atomics under the one-thread-per-domain
    // invariant, so a buffer must be exclusively owned before it
    // crosses; local multicast siblings keep the original block.
    skb->unshare();
    const std::size_t bytes = skb->wire_size();
    port.remote_engine->post(
        port.remote_src, port.remote_dst, sched_->now() + service_time,
        bytes, [egress, skb = std::move(skb)]() mutable {
          egress->deliver(std::move(skb));
        });
    // The port itself still serializes locally: next packet starts when
    // this one's service interval ends, exactly as in the local branch.
    sched_->schedule_after(service_time,
                           [this, egress, &port] { service(egress, port); });
    return;
  }
  // Capturing `port` by reference is safe — unordered_map never moves
  // its nodes and ports are never erased — and keeps the per-packet
  // completion off the hash table.
  sched_->schedule_after(service_time,
                         [this, egress, &port, skb = std::move(skb)]() mutable {
                           egress->deliver(std::move(skb));
                           service(egress, port);
                         });
}

std::size_t Router::queue_len() const {
  std::size_t total = 0;
  for (const auto& [sink, port] : ports_) total += port.queue.size();
  return total;
}

}  // namespace hrmc::net
