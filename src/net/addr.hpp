// IPv4-style addressing for the simulated internetwork.
#pragma once

#include <cstdint>
#include <string>

namespace hrmc::net {

/// Host-order IPv4 address.
using Addr = std::uint32_t;

using Port = std::uint16_t;

constexpr Addr make_addr(unsigned a, unsigned b, unsigned c, unsigned d) {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

/// Class-D (224.0.0.0/4) test, same as IN_MULTICAST.
constexpr bool is_multicast(Addr a) { return (a >> 28) == 0xe; }

inline constexpr Addr kAddrAny = 0;

std::string addr_to_string(Addr a);

/// Transport endpoint: address plus port.
struct Endpoint {
  Addr addr = 0;
  Port port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

std::string endpoint_to_string(const Endpoint& e);

}  // namespace hrmc::net
