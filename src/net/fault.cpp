#include "net/fault.hpp"

#include <stdexcept>
#include <string>

#include "sim/random.hpp"

namespace hrmc::net {

namespace {
FaultEvent make_event(FaultKind kind, sim::SimTime at, std::size_t target) {
  FaultEvent ev;
  ev.kind = kind;
  ev.at = at;
  ev.target = target;
  return ev;
}
}  // namespace

FaultPlan& FaultPlan::crash(std::size_t receiver, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kReceiverCrash, at, receiver));
  return *this;
}

FaultPlan& FaultPlan::restart(std::size_t receiver, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kReceiverRestart, at, receiver));
  return *this;
}

FaultPlan& FaultPlan::link_down(std::size_t receiver, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kLinkDown, at, receiver));
  return *this;
}

FaultPlan& FaultPlan::link_up(std::size_t receiver, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kLinkUp, at, receiver));
  return *this;
}

FaultPlan& FaultPlan::partition(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kPartition, at, group));
  return *this;
}

FaultPlan& FaultPlan::heal(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kHeal, at, group));
  return *this;
}

FaultPlan& FaultPlan::burst_loss(std::size_t group, sim::SimTime at,
                                 const GilbertElliottConfig& ge) {
  FaultEvent ev = make_event(FaultKind::kBurstLossStart, at, group);
  ev.ge = ge;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::burst_loss_stop(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kBurstLossStop, at, group));
  return *this;
}

FaultInjector::FaultInjector(sim::Scheduler& sched, Topology& topo,
                             FaultPlan plan, std::uint64_t seed)
    : sched_(&sched), topo_(&topo), plan_(std::move(plan)), seed_(seed) {}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  for (const FaultEvent& ev : plan_.events) {
    // Fail at arm time, not mid-run: a typo'd index in a declarative
    // plan should be a clear configuration error, not an abort from
    // deep inside the event loop.
    const bool group_scoped = ev.kind == FaultKind::kPartition ||
                              ev.kind == FaultKind::kHeal ||
                              ev.kind == FaultKind::kBurstLossStart ||
                              ev.kind == FaultKind::kBurstLossStop;
    const std::size_t limit =
        group_scoped ? topo_->group_count() : topo_->receiver_count();
    if (ev.target >= limit) {
      throw std::invalid_argument(
          "FaultPlan event targets " +
          std::string(group_scoped ? "group " : "receiver ") +
          std::to_string(ev.target) + " but the topology has only " +
          std::to_string(limit));
    }
    sched_->schedule_at(ev.at, [this, ev] { fire(ev); });
  }
}

void FaultInjector::fire(const FaultEvent& ev) {
  const auto mark = [&](std::uint16_t host, bool down) {
    trace_.emit_as(host, down ? trace::EventKind::kDown : trace::EventKind::kUp,
                   0, 0, 0, static_cast<std::uint32_t>(ev.kind));
  };
  switch (ev.kind) {
    case FaultKind::kReceiverCrash:
      topo_->receiver(ev.target).set_down(true);
      counters_.inc("crashes");
      mark(trace::receiver_host(ev.target), true);
      if (on_receiver_crash) on_receiver_crash(ev.target);
      break;
    case FaultKind::kReceiverRestart:
      topo_->receiver(ev.target).set_down(false);
      counters_.inc("restarts");
      mark(trace::receiver_host(ev.target), false);
      if (on_receiver_restart) on_receiver_restart(ev.target);
      break;
    case FaultKind::kLinkDown:
      topo_->receiver_nic(ev.target).set_link_up(false);
      counters_.inc("link_downs");
      // The receiver behind a dead access link is unreachable: for the
      // release-safety invariant this is indistinguishable from a crash.
      mark(trace::receiver_host(ev.target), true);
      mark(trace::nic_host(1 + ev.target), true);
      break;
    case FaultKind::kLinkUp:
      topo_->receiver_nic(ev.target).set_link_up(true);
      counters_.inc("link_ups");
      mark(trace::receiver_host(ev.target), false);
      mark(trace::nic_host(1 + ev.target), false);
      break;
    case FaultKind::kPartition:
      topo_->group_router(ev.target).set_down(true);
      counters_.inc("partitions");
      mark(trace::router_host(ev.target), true);
      break;
    case FaultKind::kHeal:
      topo_->group_router(ev.target).set_down(false);
      counters_.inc("heals");
      mark(trace::router_host(ev.target), false);
      break;
    case FaultKind::kBurstLossStart:
      topo_->group_router(ev.target).set_burst_loss(
          ev.ge, sim::substream_seed(
                     seed_, "fault/ge:router:" + std::to_string(ev.target)));
      counters_.inc("burst_loss_starts");
      break;
    case FaultKind::kBurstLossStop:
      topo_->group_router(ev.target).clear_burst_loss();
      counters_.inc("burst_loss_stops");
      break;
  }
}

}  // namespace hrmc::net
