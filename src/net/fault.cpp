#include "net/fault.hpp"

#include <stdexcept>
#include <string>

#include "kern/mem.hpp"
#include "sim/random.hpp"

namespace hrmc::net {

namespace {
FaultEvent make_event(FaultKind kind, sim::SimTime at, std::size_t target) {
  FaultEvent ev;
  ev.kind = kind;
  ev.at = at;
  ev.target = target;
  return ev;
}
}  // namespace

FaultPlan& FaultPlan::crash(std::size_t receiver, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kReceiverCrash, at, receiver));
  return *this;
}

FaultPlan& FaultPlan::restart(std::size_t receiver, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kReceiverRestart, at, receiver));
  return *this;
}

FaultPlan& FaultPlan::link_down(std::size_t receiver, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kLinkDown, at, receiver));
  return *this;
}

FaultPlan& FaultPlan::link_up(std::size_t receiver, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kLinkUp, at, receiver));
  return *this;
}

FaultPlan& FaultPlan::partition(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kPartition, at, group));
  return *this;
}

FaultPlan& FaultPlan::heal(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kHeal, at, group));
  return *this;
}

FaultPlan& FaultPlan::burst_loss(std::size_t group, sim::SimTime at,
                                 const GilbertElliottConfig& ge) {
  FaultEvent ev = make_event(FaultKind::kBurstLossStart, at, group);
  ev.ge = ge;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::burst_loss_stop(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kBurstLossStop, at, group));
  return *this;
}

FaultPlan& FaultPlan::reorder(std::size_t group, sim::SimTime at, double prob,
                              sim::SimTime hold) {
  FaultEvent ev = make_event(FaultKind::kReorderStart, at, group);
  ev.disturb.reorder_prob = prob;
  ev.disturb.reorder_hold = hold;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::reorder_stop(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kReorderStop, at, group));
  return *this;
}

FaultPlan& FaultPlan::duplicate(std::size_t group, sim::SimTime at,
                                double prob) {
  FaultEvent ev = make_event(FaultKind::kDuplicateStart, at, group);
  ev.disturb.dup_prob = prob;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::duplicate_stop(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kDuplicateStop, at, group));
  return *this;
}

FaultPlan& FaultPlan::corrupt(std::size_t group, sim::SimTime at,
                              double prob) {
  FaultEvent ev = make_event(FaultKind::kCorruptStart, at, group);
  ev.disturb.corrupt_prob = prob;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::corrupt_stop(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kCorruptStop, at, group));
  return *this;
}

FaultPlan& FaultPlan::control_loss(std::size_t group, sim::SimTime at,
                                   double prob) {
  FaultEvent ev = make_event(FaultKind::kControlLossStart, at, group);
  ev.disturb.control_loss_prob = prob;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::control_loss_stop(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kControlLossStop, at, group));
  return *this;
}

FaultPlan& FaultPlan::jitter(std::size_t group, sim::SimTime at,
                             sim::SimTime max) {
  FaultEvent ev = make_event(FaultKind::kJitterStart, at, group);
  ev.disturb.jitter = max;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::jitter_stop(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kJitterStop, at, group));
  return *this;
}

FaultPlan& FaultPlan::trunk_down(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kTrunkDown, at, group));
  return *this;
}

FaultPlan& FaultPlan::trunk_up(std::size_t group, sim::SimTime at,
                               sim::SimTime reconverge) {
  FaultEvent ev = make_event(FaultKind::kTrunkUp, at, group);
  ev.delay = reconverge;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::wireless(std::size_t group, sim::SimTime at,
                               const WirelessLossConfig& wl) {
  FaultEvent ev = make_event(FaultKind::kWirelessStart, at, group);
  ev.wireless = wl;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::wireless_stop(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kWirelessStop, at, group));
  return *this;
}

FaultPlan& FaultPlan::mem_pressure(std::size_t group, sim::SimTime at,
                                   double fraction) {
  FaultEvent ev = make_event(FaultKind::kMemPressureStart, at, group);
  ev.mem_fraction = fraction;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::mem_pressure_stop(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kMemPressureStop, at, group));
  return *this;
}

FaultPlan& FaultPlan::alloc_fail(std::size_t group, sim::SimTime at,
                                 double prob) {
  FaultEvent ev = make_event(FaultKind::kAllocFailStart, at, group);
  ev.alloc_fail_prob = prob;
  events.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::alloc_fail_stop(std::size_t group, sim::SimTime at) {
  events.push_back(make_event(FaultKind::kAllocFailStop, at, group));
  return *this;
}

FaultPlan& FaultPlan::link_flaps(std::size_t receiver, sim::SimTime start,
                                 sim::SimTime period, sim::SimTime down_time,
                                 int count) {
  for (int k = 0; k < count; ++k) {
    const sim::SimTime at = start + k * period;
    link_down(receiver, at);
    link_up(receiver, at + down_time);
  }
  return *this;
}

FaultPlan& FaultPlan::trunk_flaps(std::size_t group, sim::SimTime start,
                                  sim::SimTime period, sim::SimTime down_time,
                                  int count, sim::SimTime reconverge) {
  for (int k = 0; k < count; ++k) {
    const sim::SimTime at = start + k * period;
    trunk_down(group, at);
    trunk_up(group, at + down_time, reconverge);
  }
  return *this;
}

FaultInjector::FaultInjector(sim::Scheduler& sched, Topology& topo,
                             FaultPlan plan, std::uint64_t seed)
    : sched_(&sched), topo_(&topo), plan_(std::move(plan)), seed_(seed) {}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  for (const FaultEvent& ev : plan_.events) {
    // Fail at arm time, not mid-run: a typo'd index in a declarative
    // plan should be a clear configuration error, not an abort from
    // deep inside the event loop.
    const bool group_scoped = ev.kind == FaultKind::kPartition ||
                              ev.kind == FaultKind::kHeal ||
                              ev.kind == FaultKind::kBurstLossStart ||
                              ev.kind == FaultKind::kBurstLossStop ||
                              ev.kind >= FaultKind::kReorderStart;
    const std::size_t limit =
        group_scoped ? topo_->group_count() : topo_->receiver_count();
    if (ev.target >= limit) {
      throw std::invalid_argument(
          "FaultPlan event targets " +
          std::string(group_scoped ? "group " : "receiver ") +
          std::to_string(ev.target) + " but the topology has only " +
          std::to_string(limit));
    }
    sched_->schedule_at(ev.at, [this, ev] { fire(ev); });
  }
}

void FaultInjector::fire(const FaultEvent& ev) {
  const auto mark = [&](std::uint16_t host, bool down) {
    trace_.emit_as(host, down ? trace::EventKind::kDown : trace::EventKind::kUp,
                   0, 0, 0, static_cast<std::uint32_t>(ev.kind));
  };
  // State-transition events are idempotent: a duplicate crash for an
  // already-down host (or a restart for a live one, a heal for an
  // unpartitioned router) is a no-op — it applies no state change,
  // emits no trace mark, and invokes no protocol callback. This keeps
  // overlapping fault pairs well-defined: without it a redundant
  // restart would emit a bare kUp that re-arms the receiver in the
  // release-safety checker while its resync is still in flight.
  switch (ev.kind) {
    case FaultKind::kReceiverCrash:
      if (topo_->receiver(ev.target).is_down()) break;
      topo_->receiver(ev.target).set_down(true);
      counters_.inc("crashes");
      mark(trace::receiver_host(ev.target), true);
      if (on_receiver_crash) on_receiver_crash(ev.target);
      break;
    case FaultKind::kReceiverRestart:
      if (!topo_->receiver(ev.target).is_down()) break;
      topo_->receiver(ev.target).set_down(false);
      counters_.inc("restarts");
      mark(trace::receiver_host(ev.target), false);
      if (on_receiver_restart) on_receiver_restart(ev.target);
      break;
    case FaultKind::kLinkDown:
      if (!topo_->receiver_nic(ev.target).link_up()) break;
      topo_->receiver_nic(ev.target).set_link_up(false);
      counters_.inc("link_downs");
      // The receiver behind a dead access link is unreachable: for the
      // release-safety invariant this is indistinguishable from a crash.
      mark(trace::receiver_host(ev.target), true);
      mark(trace::nic_host(1 + ev.target), true);
      break;
    case FaultKind::kLinkUp:
      if (topo_->receiver_nic(ev.target).link_up()) break;
      topo_->receiver_nic(ev.target).set_link_up(true);
      counters_.inc("link_ups");
      mark(trace::receiver_host(ev.target), false);
      mark(trace::nic_host(1 + ev.target), false);
      break;
    case FaultKind::kPartition:
      if (topo_->group_router(ev.target).is_down()) break;
      topo_->group_router(ev.target).set_down(true);
      counters_.inc("partitions");
      mark(trace::router_host(ev.target), true);
      break;
    case FaultKind::kHeal:
      if (!topo_->group_router(ev.target).is_down()) break;
      topo_->group_router(ev.target).set_down(false);
      counters_.inc("heals");
      mark(trace::router_host(ev.target), false);
      break;
    case FaultKind::kBurstLossStart:
      topo_->group_router(ev.target).set_burst_loss(
          ev.ge, sim::substream_seed(
                     seed_, "fault/ge:router:" + std::to_string(ev.target)));
      counters_.inc("burst_loss_starts");
      break;
    case FaultKind::kBurstLossStop:
      topo_->group_router(ev.target).clear_burst_loss();
      counters_.inc("burst_loss_stops");
      break;
    case FaultKind::kReorderStart: {
      DisturbConfig& d = disturber(ev.target).config();
      d.reorder_prob = ev.disturb.reorder_prob;
      d.reorder_hold = ev.disturb.reorder_hold;
      counters_.inc("reorder_starts");
      break;
    }
    case FaultKind::kReorderStop: {
      DisturbConfig& d = disturber(ev.target).config();
      d.reorder_prob = 0.0;
      d.reorder_hold = 0;
      counters_.inc("reorder_stops");
      break;
    }
    case FaultKind::kDuplicateStart:
      disturber(ev.target).config().dup_prob = ev.disturb.dup_prob;
      counters_.inc("duplicate_starts");
      break;
    case FaultKind::kDuplicateStop:
      disturber(ev.target).config().dup_prob = 0.0;
      counters_.inc("duplicate_stops");
      break;
    case FaultKind::kCorruptStart:
      disturber(ev.target).config().corrupt_prob = ev.disturb.corrupt_prob;
      counters_.inc("corrupt_starts");
      break;
    case FaultKind::kCorruptStop:
      disturber(ev.target).config().corrupt_prob = 0.0;
      counters_.inc("corrupt_stops");
      break;
    case FaultKind::kControlLossStart:
      topo_->group_router(ev.target).set_control_classifier(
          control_classifier);
      disturber(ev.target).config().control_loss_prob =
          ev.disturb.control_loss_prob;
      counters_.inc("control_loss_starts");
      break;
    case FaultKind::kControlLossStop:
      disturber(ev.target).config().control_loss_prob = 0.0;
      counters_.inc("control_loss_stops");
      break;
    case FaultKind::kJitterStart:
      disturber(ev.target).config().jitter = ev.disturb.jitter;
      counters_.inc("jitter_starts");
      break;
    case FaultKind::kJitterStop:
      disturber(ev.target).config().jitter = 0;
      counters_.inc("jitter_stops");
      break;
    case FaultKind::kTrunkDown:
      if (topo_->group_router(ev.target).is_down()) break;
      topo_->group_router(ev.target).set_down(true);
      counters_.inc("trunk_downs");
      mark(trace::router_host(ev.target), true);
      break;
    case FaultKind::kTrunkUp:
      if (!topo_->group_router(ev.target).is_down()) break;
      topo_->group_router(ev.target).set_down(false);
      // The trunk is physically back but the router has not recomputed
      // forwarding state yet: black-hole for the reconvergence window.
      topo_->group_router(ev.target).start_reconvergence(ev.delay);
      counters_.inc("trunk_ups");
      mark(trace::router_host(ev.target), false);
      break;
    case FaultKind::kWirelessStart:
      // Per-link instances: every receiver NIC behind the target group
      // router gets its own model with a distinct RNG substream and a
      // distinct SNR phase, so fades are bursty per link without being
      // lockstep across the site.
      for (std::size_t i = 0; i < topo_->receiver_count(); ++i) {
        if (topo_->receiver_group(i) != ev.target) continue;
        WirelessLossConfig wl = ev.wireless;
        wl.snr_phase += 0.37 * static_cast<double>(i);
        wl.snr_phase -= static_cast<double>(static_cast<long>(wl.snr_phase));
        topo_->receiver_nic(i).set_wireless_loss(
            wl, sim::substream_seed(seed_,
                                    "fault/wl:nic:" + std::to_string(i)));
      }
      counters_.inc("wireless_starts");
      break;
    case FaultKind::kWirelessStop:
      for (std::size_t i = 0; i < topo_->receiver_count(); ++i) {
        if (topo_->receiver_group(i) != ev.target) continue;
        topo_->receiver_nic(i).clear_wireless_loss();
      }
      counters_.inc("wireless_stops");
      break;
    case FaultKind::kMemPressureStart:
      if (mem_ != nullptr) mem_->set_squeeze(ev.mem_fraction);
      counters_.inc("mem_pressure_starts");
      break;
    case FaultKind::kMemPressureStop:
      if (mem_ != nullptr) mem_->set_squeeze(0.0);
      counters_.inc("mem_pressure_stops");
      break;
    case FaultKind::kAllocFailStart:
      if (mem_ != nullptr) mem_->set_alloc_fail_prob(ev.alloc_fail_prob);
      counters_.inc("alloc_fail_starts");
      break;
    case FaultKind::kAllocFailStop:
      if (mem_ != nullptr) mem_->set_alloc_fail_prob(0.0);
      counters_.inc("alloc_fail_stops");
      break;
  }
}

Disturber& FaultInjector::disturber(std::size_t group) {
  // One disturber per group router, seeded from its own named substream
  // on first use; behaviors patch its config in place, so stop/start
  // pairs never reset the RNG position of other armed behaviors.
  return topo_->group_router(group).ensure_disturb(sim::substream_seed(
      seed_, "fault/disturb:router:" + std::to_string(group)));
}

}  // namespace hrmc::net
