// GF(256) Reed–Solomon erasure codec for the proactive-FEC extension.
//
// Systematic code over a normalized Cauchy matrix: parity row j applies
// coefficient(j, i) to data shard i of the group. The Cauchy
// construction — C[j][i] = 1/(x_j + y_i) with the x and y sets disjoint
// — makes every square submatrix invertible, so ANY e <= r erasures are
// decodable from ANY e distinct parity rows. The per-column
// normalization scales row 0 to all-ones, which makes parity 0
// byte-identical to the single-XOR parity the seed protocol shipped:
// an r = 1 sender is bit-compatible with every pre-RS receiver and
// every hand-built XOR parity in the existing tests.
//
// Coefficients depend only on (j, i), never on the group size k, so a
// group cut short at a sub-MSS packet or at end-of-stream uses the same
// coefficients for the shards it did accumulate — the absent tail
// shards are implicitly all-zero and contribute nothing.
//
// Shard safety: the codec is pure table arithmetic — no RNG, no clock,
// no global state beyond lazily built constant tables — so encode and
// decode are bit-identical at any sim::ShardEngine worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hrmc::proto::fec {

/// Largest data-shard count per parity group (mirrors the receiver's
/// long-standing k <= 64 wire-sanity guard).
inline constexpr std::size_t kMaxGroup = 64;
/// Largest parity count per group; the wire parity-index (header
/// `tries` = index + 1) and the Cauchy x-set are sized for this.
inline constexpr std::size_t kMaxParity = 8;

/// GF(256) multiply, polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d).
[[nodiscard]] std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);
/// Multiplicative inverse; gf_inv(0) is 0 (never queried by the codec).
[[nodiscard]] std::uint8_t gf_inv(std::uint8_t a);

/// Coefficient of data shard `i` (0-based position in the group) in
/// parity row `j`. Row 0 is all-ones: parity 0 is the plain XOR.
/// Requires j < kMaxParity and i < kMaxGroup.
[[nodiscard]] std::uint8_t coefficient(std::size_t j, std::size_t i);

/// dst[b] ^= coeff * src[b] for b in [0, len): the encoder's inner
/// loop, exposed so the sender can accumulate parity incrementally as
/// each data packet first transmits.
void accumulate(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
                std::uint8_t coeff);

/// One available parity shard: its row index and `shard_len` bytes.
struct ParityShard {
  std::size_t index = 0;
  const std::uint8_t* bytes = nullptr;
};

/// Erasure decode. `shards` holds the k data-shard pointers in group
/// order, nullptr marking an erasure; present shards must be
/// zero-padded to `shard_len`. `parities` lists the available parity
/// shards (distinct indices < kMaxParity). On success `out` holds one
/// reconstructed `shard_len`-byte buffer per erasure, in ascending
/// shard-position order, and the return is true. Returns false when
/// the erasure count exceeds the available parity count (the caller
/// falls back to NAK-driven repair).
[[nodiscard]] bool decode(std::size_t k, std::size_t shard_len,
                          const std::vector<const std::uint8_t*>& shards,
                          const std::vector<ParityShard>& parities,
                          std::vector<std::vector<std::uint8_t>>& out);

}  // namespace hrmc::proto::fec
