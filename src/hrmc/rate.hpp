// Rate-based flow-control component (§2, "Flow Control").
//
// The sender maintains a current transmission rate, advertised in every
// outgoing packet. The rate follows TCP-like dynamics (paper cites
// Jacobson/Karels):
//   - at connection start, and after any URGENT rate request: rate is set
//     to the minimum and grows through slow start (doubling per RTT) up
//     to ssthresh, then congestion avoidance (linear);
//   - an URGENT request additionally stops forward transmission entirely
//     for two RTTs, regardless of the advertised rate;
//   - a NAK or a warning rate request halves the rate and switches to
//     linear growth.
#pragma once

#include <algorithm>
#include <cstdint>

#include "hrmc/config.hpp"
#include "kern/jiffies.hpp"
#include "sim/time.hpp"

namespace hrmc::proto {

class RateController {
 public:
  explicit RateController(const Config& cfg)
      : cfg_(&cfg),
        rate_(cfg.min_rate),
        ssthresh_(cfg.max_rate) {}

  /// Current transmission rate in bytes per second (the value that goes
  /// into the Rate Advertisement header field).
  [[nodiscard]] std::uint32_t rate() const { return rate_; }

  /// True while an urgent stop is in force: no forward transmission.
  [[nodiscard]] bool stopped(sim::SimTime now) const {
    return now < stop_until_;
  }
  [[nodiscard]] sim::SimTime stopped_until() const { return stop_until_; }

  /// Bytes the sender may transmit during an interval of `dt` at the
  /// current rate, with sub-byte residue carried between jiffies so slow
  /// rates still make progress.
  std::uint64_t budget(sim::SimTime dt) {
    const double bytes = static_cast<double>(rate_) * sim::to_seconds(dt) +
                         residue_;
    const auto whole = static_cast<std::uint64_t>(bytes);
    residue_ = bytes - static_cast<double>(whole);
    return whole;
  }

  /// Periodic growth. Call from the transmit pump; grows the rate once
  /// per RTT of active transmission (slow start doubles, congestion
  /// avoidance adds one MSS-per-RTT's worth of rate).
  void maybe_grow(sim::SimTime now, sim::SimTime srtt, bool actively_sending) {
    if (!actively_sending || stopped(now)) {
      last_growth_ = now;
      return;
    }
    // Growth is clocked at no finer than jiffy granularity: the sender's
    // only congestion feedback (device-queue depth, NAKs) arrives on the
    // jiffy-timer scale, and sub-jiffy growth would outrun it.
    const sim::SimTime interval = std::max(srtt, kern::kJiffy);
    if (now - last_growth_ < interval) return;
    last_growth_ = now;
    if (rate_ < ssthresh_) {
      set_rate(static_cast<std::uint64_t>(rate_) * 2);
    } else {
      // Congestion avoidance: one MSS per interval of additional rate.
      const double mss_per_sec =
          static_cast<double>(cfg_->mss) / sim::to_seconds(interval);
      set_rate(static_cast<std::uint64_t>(rate_) +
               static_cast<std::uint64_t>(mss_per_sec));
    }
  }

  /// NAK or warning-region rate request: multiplicative decrease, at most
  /// once per `holdoff` (so a burst of NAKs from one loss event counts
  /// once), then linear growth. An explicit requested rate (from the
  /// CONTROL packet's rate field) caps the result.
  /// Returns true if a cut was applied.
  bool on_negative_feedback(sim::SimTime now, sim::SimTime holdoff,
                            std::uint32_t requested_rate = 0) {
    if (now - last_cut_ < holdoff) return false;
    last_cut_ = now;
    std::uint64_t next = rate_ / 2;
    if (requested_rate != 0) {
      next = std::min<std::uint64_t>(next, requested_rate);
    }
    set_rate(next);
    ssthresh_ = std::max(rate_, cfg_->min_rate);
    return true;
  }

  /// URGENT rate request: stop forward transmission for two RTTs, then
  /// restart from the minimum rate in slow start (§2 rule 3).
  void on_urgent(sim::SimTime now, sim::SimTime srtt) {
    // Early in a connection srtt can still be 0, which would make the
    // stop zero-length (an urgent request that stops nothing). The stop
    // must bite even without an RTT estimate: clamp to one jiffy, the
    // finest interval the transmit pump observes.
    const sim::SimTime stop_len = std::max<sim::SimTime>(
        static_cast<sim::SimTime>(cfg_->urgent_stop_rtts * srtt),
        kern::kJiffy);
    stop_until_ = std::max(stop_until_, now + stop_len);
    ssthresh_ = std::max(rate_ / 2, cfg_->min_rate);
    set_rate(cfg_->min_rate);
  }

  /// Device queue full at transmit time: the local card cannot drain at
  /// the current rate. The kernel surfaces this as a dev_queue_xmit
  /// failure / stopped queue; we treat it as a gentle congestion signal
  /// (multiplicative decay toward the drain rate) so the advertised rate
  /// converges near the link speed instead of running open-loop above it.
  void on_device_full(sim::SimTime now) {
    set_rate(static_cast<std::uint64_t>(rate_) * 7 / 8);
    ssthresh_ = std::max(rate_, cfg_->min_rate);
    last_growth_ = now;  // no growth off the back of a full queue
  }

  /// Restart after idle or at connection start: minimum rate, slow start.
  void restart() {
    set_rate(cfg_->min_rate);
    ssthresh_ = cfg_->max_rate;
  }

  [[nodiscard]] std::uint32_t ssthresh() const { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const { return rate_ < ssthresh_; }

 private:
  void set_rate(std::uint64_t r) {
    rate_ = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(r, cfg_->min_rate, cfg_->max_rate));
  }

  const Config* cfg_;
  std::uint32_t rate_;
  std::uint32_t ssthresh_;
  double residue_ = 0.0;
  sim::SimTime last_growth_ = 0;
  sim::SimTime last_cut_ = -(1LL << 60);
  sim::SimTime stop_until_ = 0;
};

}  // namespace hrmc::proto
