// Modeled receiver population (million-receiver scaling extension).
//
// A single transport that stands in for N leaf receivers behind one
// router subtree, simulated *statistically* instead of as N event
// actors: per arriving DATA packet one binomial draw decides how many
// of the N leaves lost it independently (leaf loss rate p), and the
// population's feedback collapses to what a subtree repairer would emit
// anyway. Independent tail loss never leaves the subtree — the packet
// reached the subtree head, so the implicit local repairer holds it in
// cache and serves the missing leaves after one local repair round trip
// (counted as repairs_served / naks_suppressed). Only *shared-path*
// loss, where the subtree itself never saw the bytes, NAKs upstream —
// one NAK per missing range — and steady-state reporting is one
// AGG_UPDATE carrying (population minimum, N). This is what makes a
// 10^6-member simulation runnable: event count scales with packets and
// subtrees, not with members.
//
// Fidelity limits (by design — see DESIGN.md §13): leaves inside one
// population share the simulated network path (only their *independent*
// tail loss is modeled), have no individual flow control or receive
// buffers, and cannot crash individually. Scenarios that need those
// behaviors use real receivers, possibly alongside modeled populations.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hrmc/config.hpp"
#include "hrmc/fec.hpp"
#include "hrmc/stats.hpp"
#include "hrmc/wire.hpp"
#include "kern/timer.hpp"
#include "net/host.hpp"
#include "sim/random.hpp"
#include "trace/trace.hpp"

namespace hrmc::proto {

class ModeledReceiver final : public net::Transport {
 public:
  /// `population` leaves, each independently losing any given packet
  /// with probability `leaf_loss` (on top of whatever the simulated
  /// network already dropped on the shared path).
  ModeledReceiver(net::Host& host, const Config& cfg, net::Endpoint group,
                  std::uint32_t population, double leaf_loss,
                  net::Addr sender_hint = 0);
  ~ModeledReceiver() override;

  ModeledReceiver(const ModeledReceiver&) = delete;
  ModeledReceiver& operator=(const ModeledReceiver&) = delete;

  void open();
  void stop();

  /// Every leaf of the population holds the complete stream (FIN seen,
  /// no outstanding holes).
  [[nodiscard]] bool complete() const;

  [[nodiscard]] const ReceiverStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t population() const { return population_; }
  /// Smallest next_expected over the modeled leaves.
  [[nodiscard]] kern::Seq population_min() const;
  [[nodiscard]] std::size_t hole_count() const { return holes_.size(); }
  [[nodiscard]] bool joined() const { return joined_; }

  void set_trace(trace::TraceSink sink) { trace_ = sink; }
  std::function<void()> on_complete;

  /// Folded end-state of the leaf-loss RNG — part of
  /// RunResult::rng_digest.
  [[nodiscard]] std::uint64_t rng_digest() const { return rng_.digest(); }

  // net::Transport
  void rx(kern::SkBuffPtr skb) override;

 private:
  /// A range of bytes some leaves are still missing. `shared` = the
  /// subtree head itself never received the bytes (shared-path loss), so
  /// repair needs the sender; a tail-loss hole (!shared) is served by
  /// the subtree's implicit local repairer at `repair_at` instead.
  struct Hole {
    kern::Seq begin = 0;
    kern::Seq end = 0;
    std::uint32_t leaves_missing = 0;
    bool shared = true;
    sim::SimTime repair_at = -1;
    sim::SimTime last_nak = -1;
    int sends = 0;
  };

  void process_data(const Header& h);
  void process_fec(const Header& h);
  void process_probe(const Header& h);
  void process_keepalive(const Header& h);
  /// Probability that a leaf which lost one packet of a parity group
  /// cannot decode it locally: >= r of the group's other k-1 packets
  /// were also lost on its tail (r = the sender's observed parity
  /// budget). Parity-packet tail loss is second-order and ignored.
  [[nodiscard]] double fec_unrepaired_prob() const;
  void note_tail(kern::Seq upto);
  /// Binomial(n, p) draw: how many of n leaves lose one packet.
  std::uint32_t draw_losses(std::uint64_t n, double p);
  void send_join();
  void send_aggregate(bool solicited);
  void nak_timer_fire();
  void update_timer_fire();
  void emit(PacketType type, kern::Seq seq, std::uint32_t rate,
            std::uint32_t length, bool urg = false);
  void maybe_complete();
  [[nodiscard]] sim::SimTime nak_interval() const;

  net::Host& host_;
  Config cfg_;
  net::Endpoint group_;
  net::Addr sender_addr_ = 0;
  std::uint32_t population_;
  double leaf_loss_;

  bool started_ = false;      ///< first DATA seen; baseline anchored
  bool joined_ = false;
  bool join_sent_ = false;
  sim::SimTime join_sent_at_ = 0;
  kern::Seq baseline_ = 0;    ///< position of the first packet seen
  kern::Seq rcv_high_ = 0;    ///< one past the highest byte seen
  std::optional<kern::Seq> fin_seq_;
  bool complete_reported_ = false;

  std::vector<Hole> holes_;   ///< sorted by begin; non-overlapping

  // FEC modeling state: the sender's parity budget as observed on the
  // wire (max row index + 1 of the current group's parities), and a
  // per-group decode-failure dedupe mirroring HrmcReceiver's.
  std::size_t fec_budget_ = 0;
  kern::Seq fec_group_begin_ = 0;
  bool fec_group_valid_ = false;
  kern::Seq fec_fail_group_ = 0;
  bool fec_fail_noted_ = false;

  ReceiverStats stats_;
  trace::TraceSink trace_;
  sim::Rng rng_;
  kern::TimerList nak_timer_;
  kern::TimerList update_timer_;
};

}  // namespace hrmc::proto
