#include "hrmc/modeled.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace hrmc::proto {

using kern::Seq;
using kern::seq_after;
using kern::seq_after_eq;
using kern::seq_before;
using kern::seq_before_eq;
using kern::seq_diff;
using kern::seq_max;
using kern::seq_min;

ModeledReceiver::ModeledReceiver(net::Host& host, const Config& cfg,
                                 net::Endpoint group,
                                 std::uint32_t population, double leaf_loss,
                                 net::Addr sender_hint)
    : host_(host),
      cfg_(cfg),
      group_(group),
      sender_addr_(sender_hint),
      population_(std::max<std::uint32_t>(population, 1)),
      leaf_loss_(std::clamp(leaf_loss, 0.0, 1.0)),
      rng_(sim::substream_seed(
          sim::substream_seed(cfg.feedback_seed, "modeled-rx"),
          std::to_string(host.addr()))),
      nak_timer_(host.scheduler(), [this] { nak_timer_fire(); }),
      update_timer_(host.scheduler(), [this] { update_timer_fire(); }) {
  baseline_ = rcv_high_ = cfg_.initial_seq;
}

ModeledReceiver::~ModeledReceiver() {
  host_.unregister_transport(kIpProtoHrmc);
}

void ModeledReceiver::open() {
  host_.register_transport(kIpProtoHrmc, this);
  host_.join_group(group_.addr);
}

void ModeledReceiver::stop() {
  nak_timer_.del_timer();
  update_timer_.del_timer();
}

bool ModeledReceiver::complete() const {
  return fin_seq_.has_value() && holes_.empty() &&
         seq_after_eq(rcv_high_, *fin_seq_);
}

Seq ModeledReceiver::population_min() const {
  // Holes are sorted and new ones only ever form above the old high
  // water, so the front hole is the population's slowest position.
  return holes_.empty() ? rcv_high_ : holes_.front().begin;
}

sim::SimTime ModeledReceiver::nak_interval() const {
  return std::max<sim::SimTime>(
      static_cast<sim::SimTime>(cfg_.nak_resend_rtts *
                                static_cast<double>(cfg_.initial_rtt)),
      2 * kern::kJiffy);
}

// --------------------------------------------------------------------
// Statistical loss model
// --------------------------------------------------------------------

std::uint32_t ModeledReceiver::draw_losses(std::uint64_t n, double p) {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return static_cast<std::uint32_t>(n);
  const double mean = static_cast<double>(n) * p;
  if (mean > 64.0) {
    // Normal approximation (n·p and n·(1-p) both large here), clamped
    // into [0, n]. Box–Muller from two uniforms.
    const double u1 = std::max(rng_.next_double(), 1e-12);
    const double u2 = rng_.next_double();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double x = mean + z * std::sqrt(mean * (1.0 - p));
    return static_cast<std::uint32_t>(
        std::clamp(x, 0.0, static_cast<double>(n)));
  }
  // Geometric skipping: expected O(n·p + 1) draws.
  const double log1mp = std::log1p(-p);
  std::uint64_t count = 0;
  std::uint64_t i = 0;
  while (true) {
    const double u = rng_.next_double();
    const auto skip = static_cast<std::uint64_t>(
        std::floor(std::log1p(-u) / log1mp));
    i += skip + 1;
    if (i > n) break;
    ++count;
  }
  return static_cast<std::uint32_t>(count);
}

// --------------------------------------------------------------------
// Packet reception
// --------------------------------------------------------------------

void ModeledReceiver::rx(kern::SkBuffPtr skb) {
  auto h = read_header(*skb);
  if (!h || h->dport != group_.port) {
    stats_.bad_packets++;
    return;
  }
  if (sender_addr_ == 0 && !net::is_multicast(skb->saddr) &&
      (h->type == PacketType::kData || h->type == PacketType::kFec ||
       h->type == PacketType::kProbe || h->type == PacketType::kKeepalive)) {
    sender_addr_ = skb->saddr;
  }
  switch (h->type) {
    case PacketType::kData: process_data(*h); break;
    case PacketType::kFec: process_fec(*h); break;
    case PacketType::kProbe: process_probe(*h); break;
    case PacketType::kKeepalive: process_keepalive(*h); break;
    case PacketType::kJoinResponse:
      if (!joined_) {
        joined_ = true;
        trace_.emit(trace::EventKind::kJoined, baseline_, baseline_,
                    host_.addr());
        if (cfg_.mode == Mode::kHrmc) {
          update_timer_.mod_timer_in(cfg_.update_period_init);
        }
        maybe_complete();
      }
      break;
    case PacketType::kNakErr: {
      // The sender gave up on the range: every leaf skips it.
      const Seq from = h->seq;
      const Seq to = h->seq + h->length;
      stats_.nak_errs_received++;
      std::erase_if(holes_, [&](const Hole& hole) {
        return seq_after_eq(hole.begin, from) && seq_before_eq(hole.end, to);
      });
      maybe_complete();
      break;
    }
    default:
      break;  // feedback types are not addressed to a population
  }
}

void ModeledReceiver::process_data(const Header& h) {
  if (h.length == 0) return;
  stats_.data_packets_received++;
  stats_.data_bytes_received += h.length;
  const Seq begin = h.seq;
  const Seq end = h.seq + h.length;
  if (h.fin) fin_seq_ = end;

  if (!started_) {
    // Late-join semantics, like a real receiver: the population's
    // stream starts at the first packet it sees.
    started_ = true;
    baseline_ = begin;
    rcv_high_ = begin;
    if (!join_sent_ && sender_addr_ != 0) send_join();
  } else if (!joined_ && sender_addr_ != 0 &&
             host_.scheduler().now() - join_sent_at_ >=
                 2 * cfg_.initial_rtt) {
    stats_.join_fast_retries++;
    send_join();  // lost JOIN / response: data flowing proves the path
  }

  if (seq_before_eq(end, rcv_high_)) {
    // Retransmission of something below the high water: each leaf still
    // missing an overlapping range receives it now, minus its own iid
    // loss on this delivery too. Whatever survives the draw is a pure
    // tail hole from here on — the bytes just entered the subtree, so
    // the local repairer can finish the job without the sender.
    const sim::SimTime now = host_.scheduler().now();
    bool changed = false;
    for (Hole& hole : holes_) {
      if (seq_before_eq(hole.end, begin) || seq_before_eq(end, hole.begin)) {
        continue;
      }
      const std::uint32_t still =
          draw_losses(hole.leaves_missing, leaf_loss_);
      if (still == 0) {
        hole.leaves_missing = 0;  // swept below
        changed = true;
      } else {
        hole.leaves_missing = still;
        if (hole.shared) {
          hole.shared = false;
          hole.repair_at = now + nak_interval();
        }
      }
    }
    if (changed) {
      std::erase_if(holes_,
                    [](const Hole& hole) { return hole.leaves_missing == 0; });
      maybe_complete();
    } else {
      stats_.duplicate_packets++;
    }
    return;
  }

  // Shared-path gap: bytes between the high water and this packet never
  // reached the subtree at all — every leaf is missing them and only
  // the sender can repair.
  if (seq_after(begin, rcv_high_)) {
    stats_.out_of_order_packets++;
    holes_.push_back(Hole{rcv_high_, begin, population_, true, -1, -1, 0});
  }
  // This packet: one binomial draw decides how many leaves lost it
  // independently on their own tails. The subtree head has the bytes,
  // so the implicit local repairer serves these leaves one local repair
  // round trip from now — no upstream NAK.
  std::uint32_t lost = draw_losses(population_, leaf_loss_);
  if (lost > 0 && cfg_.fec_group > 0) {
    // FEC thinning: a leaf that lost this packet decodes it from the
    // group's parity unless its own losses exceed the budget — only the
    // excess forms a hole. The extra draw is gated on fec_group so
    // FEC-free scenarios keep their rng digest bit-identical.
    const std::uint32_t unrepaired = draw_losses(lost, fec_unrepaired_prob());
    stats_.fec_recoveries += lost - unrepaired;
    lost = unrepaired;
  }
  if (lost > 0) {
    holes_.push_back(Hole{seq_max(begin, rcv_high_), end, lost, false,
                          host_.scheduler().now() + nak_interval(), -1, 0});
  }
  rcv_high_ = end;
  if (!holes_.empty()) nak_timer_.mod_timer_in(1);
  maybe_complete();
}

void ModeledReceiver::note_tail(Seq upto) {
  // PROBE/KEEPALIVE names data we never saw: the tail was lost on the
  // shared path — every leaf is missing it.
  if (seq_after(upto, rcv_high_)) {
    holes_.push_back(Hole{rcv_high_, upto, population_, true, -1, -1, 0});
    rcv_high_ = upto;
    nak_timer_.mod_timer_in(1);
  }
}

double ModeledReceiver::fec_unrepaired_prob() const {
  const std::size_t k = std::min(cfg_.fec_group, fec::kMaxGroup);
  std::size_t r = fec_budget_;
  if (r == 0) {
    // No parity observed yet: assume the sender's configured floor.
    r = std::clamp<std::size_t>(cfg_.fec_parity_min, 1, fec::kMaxParity);
  }
  const double p = leaf_loss_;
  if (p >= 1.0) return 1.0;
  if (k == 0) return 1.0;
  // P(Bin(k-1, p) >= r) via the complement of the pmf prefix sum.
  const std::size_t n = k - 1;
  double pmf = std::pow(1.0 - p, static_cast<double>(n));
  double cum = 0.0;
  for (std::size_t x = 0; x < r && x <= n; ++x) {
    cum += pmf;
    pmf *= static_cast<double>(n - x) / static_cast<double>(x + 1) * p /
           (1.0 - p);
  }
  return std::clamp(1.0 - cum, 0.0, 1.0);
}

void ModeledReceiver::process_fec(const Header& h) {
  stats_.fec_packets_received++;
  if (cfg_.fec_group == 0 || h.length == 0) return;
  const std::size_t k = (h.rate + h.length - 1) / h.length;
  if (k == 0 || k > fec::kMaxGroup) return;
  const std::size_t parity_index = h.tries == 0 ? 0 : h.tries - 1;
  if (parity_index >= fec::kMaxParity) return;
  // Track the sender's current parity budget from the rows on the wire;
  // it feeds fec_unrepaired_prob() as the adaptive rate moves.
  if (!fec_group_valid_ || fec_group_begin_ != h.seq) {
    fec_group_valid_ = true;
    fec_group_begin_ = h.seq;
    fec_budget_ = 0;
  }
  fec_budget_ = std::max(fec_budget_, parity_index + 1);

  const Seq span_end = h.seq + h.rate;
  // The parity names data through span_end: tail bytes the subtree
  // never saw were lost on the shared path (like a KEEPALIVE).
  note_tail(span_end);

  // Shared-path erasures inside the group span, in shard units. Tail
  // (!shared) holes are not erasures — the subtree head has those bytes.
  std::size_t erasures = 0;
  for (const Hole& hole : holes_) {
    if (!hole.shared) continue;
    const Seq b = seq_max(hole.begin, h.seq);
    const Seq e = seq_min(hole.end, span_end);
    if (!seq_before(b, e)) continue;
    erasures += (static_cast<std::uint32_t>(seq_diff(b, e)) + h.length - 1) /
                h.length;
  }
  if (erasures == 0) return;
  if (erasures > fec_budget_) {
    // More group losses than parity rows: the leaves fall back to ARQ
    // (the holes keep NAKing upstream). Report once per group.
    if (!fec_fail_noted_ || fec_fail_group_ != h.seq) {
      fec_fail_noted_ = true;
      fec_fail_group_ = h.seq;
      stats_.fec_decode_failures++;
      trace_.emit(trace::EventKind::kFecDecodeFail, h.seq, span_end, erasures,
                  static_cast<std::uint32_t>(fec_budget_));
    }
    return;
  }
  if (fec_fail_noted_ && fec_fail_group_ == h.seq) fec_fail_noted_ = false;

  // Every leaf holds the parity (modulo second-order tail loss) and at
  // most `budget` erasures: the whole population decodes locally and no
  // NAK ever goes upstream. Repair the shared holes' overlap.
  std::vector<Hole> kept;
  kept.reserve(holes_.size() + 1);
  for (Hole& hole : holes_) {
    const Seq b = seq_max(hole.begin, h.seq);
    const Seq e = seq_min(hole.end, span_end);
    if (!hole.shared || !seq_before(b, e)) {
      kept.push_back(std::move(hole));
      continue;
    }
    stats_.fec_recoveries +=
        (static_cast<std::uint32_t>(seq_diff(b, e)) + h.length - 1) /
        h.length;
    trace_.emit(trace::EventKind::kFecRepair, b, e, erasures);
    if (seq_before(hole.begin, b)) {
      kept.push_back(Hole{hole.begin, b, hole.leaves_missing, true, -1,
                          hole.last_nak, hole.sends});
    }
    if (seq_before(e, hole.end)) {
      kept.push_back(Hole{e, hole.end, hole.leaves_missing, true, -1,
                          hole.last_nak, hole.sends});
    }
  }
  holes_ = std::move(kept);
  maybe_complete();
}

void ModeledReceiver::process_probe(const Header& h) {
  stats_.probes_received++;
  note_tail(h.seq);
  send_aggregate(/*solicited=*/true);
  if (!holes_.empty()) nak_timer_fire();  // the sender is waiting
}

void ModeledReceiver::process_keepalive(const Header& h) {
  stats_.keepalives_received++;
  if (h.fin) fin_seq_ = h.seq;
  note_tail(h.seq);
  maybe_complete();
}

// --------------------------------------------------------------------
// Feedback
// --------------------------------------------------------------------

void ModeledReceiver::send_join() {
  join_sent_ = true;
  join_sent_at_ = host_.scheduler().now();
  emit(PacketType::kJoin, baseline_, 0, 0);
}

void ModeledReceiver::send_aggregate(bool solicited) {
  const Seq mn = population_min();
  stats_.agg_updates_sent++;
  trace_.emit(trace::EventKind::kAggUpdate, mn, mn, population_, 0,
              solicited ? trace::kFlagSolicited : 0);
  emit(PacketType::kAggUpdate, mn, population_, 0, solicited);
}

void ModeledReceiver::nak_timer_fire() {
  const sim::SimTime now = host_.scheduler().now();
  const sim::SimTime interval = nak_interval();
  bool repaired = false;
  for (Hole& hole : holes_) {
    if (!hole.shared) {
      // Tail-loss hole: the local repairer has had the bytes since the
      // hole formed; once the local repair round trip elapses, every
      // missing leaf has been served — nothing ever went upstream.
      if (now >= hole.repair_at) {
        stats_.repairs_served++;
        stats_.naks_suppressed += hole.leaves_missing;
        hole.leaves_missing = 0;
        repaired = true;
      }
      continue;
    }
    if (hole.last_nak >= 0 && now - hole.last_nak < interval) continue;
    hole.last_nak = now;
    ++hole.sends;
    // One NAK stands for every leaf missing the range; the rest are
    // what subtree suppression (or a local repairer) would have
    // absorbed, so they are accounted as suppressed.
    stats_.naks_sent++;
    if (hole.leaves_missing > 1) {
      stats_.naks_suppressed += hole.leaves_missing - 1;
    }
    const Seq mn = population_min();
    trace_.emit(trace::EventKind::kNakEmit, hole.begin, hole.end, mn);
    emit(PacketType::kNak, mn, hole.begin,
         static_cast<std::uint32_t>(seq_diff(hole.begin, hole.end)));
  }
  if (repaired) {
    std::erase_if(holes_,
                  [](const Hole& hole) { return hole.leaves_missing == 0; });
    maybe_complete();
  }
  if (!holes_.empty()) {
    nak_timer_.mod_timer_in(
        std::max<kern::Jiffies>(1, kern::to_jiffies(interval)));
  }
}

void ModeledReceiver::update_timer_fire() {
  send_aggregate(/*solicited=*/false);
  update_timer_.mod_timer_in(cfg_.update_period_init);
}

void ModeledReceiver::emit(PacketType type, Seq seq, std::uint32_t rate,
                           std::uint32_t length, bool urg) {
  if (sender_addr_ == 0) return;
  kern::SkBuffPtr skb = kern::SkBuff::alloc(0, Header::kSize + 44);
  Header h;
  h.sport = group_.port;
  h.dport = group_.port;
  h.seq = seq;
  h.rate = rate;
  h.length = length;
  h.tries = 1;
  h.type = type;
  h.urg = urg;
  write_header(*skb, h);
  skb->daddr = sender_addr_;
  skb->protocol = kIpProtoHrmc;
  host_.send(std::move(skb));
}

void ModeledReceiver::maybe_complete() {
  if (complete() && !complete_reported_) {
    complete_reported_ = true;
    // Final report so the sender's release gate learns the population
    // is done without waiting out an update period.
    send_aggregate(/*solicited=*/false);
    if (on_complete) on_complete();
  }
}

}  // namespace hrmc::proto
