// Protocol statistics, the raw material of every figure in §5.
#pragma once

#include <cstdint>

namespace hrmc::proto {

struct SenderStats {
  // Transmission
  std::uint64_t data_packets_sent = 0;
  std::uint64_t data_bytes_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t retrans_bytes = 0;
  std::uint64_t keepalives_sent = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_rounds = 0;  ///< release attempts that had to probe
  /// Probes pushed to a later round by the per-round cap (a cold 10k
  /// table must not emit one 10k-packet burst).
  std::uint64_t probes_deferred = 0;

  // Feedback arriving at the sender (Fig 11/13/15b/16b count these)
  std::uint64_t naks_received = 0;
  std::uint64_t rate_requests_received = 0;
  std::uint64_t urgent_requests_received = 0;
  std::uint64_t updates_received = 0;
  /// Aggregated subtree UPDATEs (hierarchical repair): each carries the
  /// subtree's min next_expected and the member count it stands for.
  std::uint64_t agg_updates_received = 0;
  std::uint64_t joins_received = 0;
  std::uint64_t leaves_received = 0;

  // Failure detection / recovery (robustness extension)
  std::uint64_t probe_retries = 0;     ///< probes re-sent while unanswered
  std::uint64_t members_evicted = 0;   ///< dead members dropped (kEvict)
  std::uint64_t dead_member_releases = 0;  ///< kRmcFallback forced releases
  std::uint64_t resync_joins_received = 0;  ///< crash-restart rejoins
  /// Straggler feedback from tombstoned (recently departed) addresses,
  /// dropped instead of resurrecting the membership record.
  std::uint64_t ghost_feedback_ignored = 0;
  std::uint64_t join_batch_responses = 0;  ///< multicast flash-crowd replies
  std::uint64_t lacking_rebuilds = 0;  ///< full lacking-set recomputations
  /// Total time (SimTime ticks) the send window sat blocked past its
  /// hold time waiting for member information.
  std::int64_t window_stall_time = 0;

  // Reliability bookkeeping
  std::uint64_t nak_errs_sent = 0;  ///< RMC mode only: request past buffer
  // Wire-level hardening (chaos engine): malformed or impossible
  // feedback dropped instead of acted on.
  std::uint64_t naks_invalid = 0;   ///< NAK range beyond snd_nxt / empty
  std::uint64_t naks_stale = 0;     ///< NAK for data the member confirmed
  std::uint64_t feedback_clamped = 0;  ///< next_expected beyond snd_nxt

  // Fig 3 metric: buffer-release decisions and how many were taken with
  // complete receiver information already in hand.
  std::uint64_t release_decisions = 0;
  std::uint64_t releases_with_complete_info = 0;

  // Rate controller activity
  std::uint64_t rate_cuts = 0;
  std::uint64_t urgent_stops = 0;
  std::uint64_t slow_start_entries = 0;

  std::uint64_t packets_released = 0;
  std::uint64_t bytes_released = 0;
  std::uint64_t bad_packets = 0;  ///< checksum / parse failures

  // FEC extension (§6 future work (4))
  std::uint64_t fec_packets_sent = 0;
  std::uint64_t fec_parity_bytes = 0;  ///< wire bytes spent on parity
  /// Adaptive parity-rate controller (DESIGN.md §15): current r and the
  /// number of epoch steps taken in each direction.
  std::uint64_t fec_parity_rate = 0;
  std::uint64_t fec_rate_increases = 0;
  std::uint64_t fec_rate_decreases = 0;

  // Memory-pressure robustness (DESIGN.md §16)
  std::uint64_t alloc_fails = 0;    ///< payload allocations refused
  std::uint64_t alloc_stalls = 0;   ///< backoff retry timers armed
  std::uint64_t fec_parity_skipped = 0;  ///< parity rows skipped under OOM
};

struct ReceiverStats {
  std::uint64_t data_packets_received = 0;
  std::uint64_t data_bytes_received = 0;
  std::uint64_t duplicate_packets = 0;
  std::uint64_t out_of_order_packets = 0;
  std::uint64_t window_overflow_drops = 0;

  std::uint64_t naks_sent = 0;
  std::uint64_t naks_suppressed = 0;
  /// SRM-style suppression: a backoff-delayed NAK cancelled (deferred)
  /// because another member's NAK for the same range was overheard.
  std::uint64_t naks_peer_suppressed = 0;
  std::uint64_t rate_requests_sent = 0;
  std::uint64_t urgent_requests_sent = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t probes_received = 0;
  std::uint64_t keepalives_received = 0;
  std::uint64_t nak_errs_received = 0;

  std::uint64_t bytes_delivered = 0;  ///< handed to the application
  std::uint64_t bad_packets = 0;
  /// JOINs re-sent early because DATA arrived while still unjoined
  /// (lost JOIN / JOIN_RESPONSE race, chaos hardening).
  std::uint64_t join_fast_retries = 0;

  // Dynamic-network resilience
  /// Stalled-data re-JOINs: mid-stream re-grafts after data silence
  /// (link flap / route reconvergence repaired the path around us).
  std::uint64_t stall_rejoins = 0;

  // Hierarchical repair (local repairer role / repairer children)
  std::uint64_t repairs_served = 0;     ///< child NAK ranges answered from cache
  std::uint64_t naks_forwarded = 0;     ///< child NAK ranges sent upstream
  std::uint64_t agg_updates_sent = 0;   ///< subtree UPDATEs emitted upward
  std::uint64_t repair_failovers = 0;   ///< children that fell back to the sender

  // FEC extension (§6 future work (4))
  std::uint64_t fec_packets_received = 0;
  std::uint64_t fec_recoveries = 0;  ///< packets rebuilt without a NAK
  /// Partial FEC groups discarded because they straddled a resync anchor
  /// (crash-restart mid-group must not XOR new payloads into stale state).
  std::uint64_t fec_stale_groups = 0;
  /// Groups where the losses exceeded the available parity budget (or a
  /// needed sibling had been evicted from the cache): recovery falls
  /// back to the NAK path.
  std::uint64_t fec_decode_failures = 0;

  // Memory-pressure robustness (DESIGN.md §16)
  std::uint64_t alloc_fails = 0;     ///< charges refused at this receiver
  std::uint64_t ooo_evictions = 0;   ///< reassembly segments evicted (re-NAKed)
  std::uint64_t fec_evictions = 0;   ///< FEC cache entries evicted early
  std::uint64_t repair_cache_evictions = 0;  ///< repairer LRU evictions
};

}  // namespace hrmc::proto
