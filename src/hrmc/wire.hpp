// RMC/H-RMC wire format: the 20-byte header of Figure 1 and the packet
// types of Table 1.
//
// Header layout (network byte order):
//
//     0               2               4
//     +---------------+---------------+
//     |  Source Port  |   Dest Port   |
//     +---------------+---------------+
//     |        Sequence Number        |
//     +-------------------------------+
//     |      Rate Advertisement       |
//     +-------------------------------+
//     |            Length             |
//     +---------------+-------+-------+
//     |   Checksum    | Tries | Type  |
//     +---------------+-------+-------+
//
// The paper's figure shows the URG and FIN flags in the final word; the
// layout it gives sums to exactly 20 bytes with one Type octet, so we
// keep the flags in the top bits of that octet (types need 4 bits).
//
// Field use by packet type (per §2/§3 of the paper; where the paper is
// silent we document the choice):
//  - DATA:      seq = first byte of payload, length = payload bytes,
//               rate = sender's advertised rate (bytes/s). FIN on last.
//  - NAK:       seq = receiver's next expected byte (member-state
//               update), rate = first missing byte of the requested gap,
//               length = gap length in bytes. URG set when the NAK was
//               solicited by a PROBE (see UPDATE).
//  - CONTROL:   seq = next expected byte, rate = requested send rate;
//               URG set for a critical-region (stop for 2 RTT) request.
//  - UPDATE:    seq = next expected byte (highest in-order + 1). URG set
//               when the update answers a PROBE (a *solicited* update):
//               only those are safe to time as probe round trips —
//               a periodic update crossing a probe in flight is not a
//               response to it.
//  - PROBE:     seq = byte the sender wants confirmed delivered, i.e.
//               "do you have everything before seq?".
//  - KEEPALIVE: seq = sender's snd_nxt (end of stream so far).
//  - JOIN/LEAVE and responses: seq carries the current stream position
//    (snd_nxt) in responses so late joiners can synchronize.
//  - NAK_ERR:   seq/rate/length echo the unsatisfiable request.
//  - FEC:       seq = first byte of the protected group, rate = the
//               group's span in bytes (k*mss for a full group; a group
//               cut short by a sub-MSS packet or end-of-stream carries
//               the exact byte span it covers, so the final shard may
//               be partial and is zero-padded for coding), length =
//               parity payload size, tries = parity row index + 1
//               (Reed–Solomon row; row 0 is the plain XOR, so tries=1
//               is bit-compatible with the original single-XOR parity);
//               payload = GF(256) combination of the k data payloads
//               with fec::coefficient(row, shard).
//  - AGG_UPDATE: hierarchical-repair extension. seq = the minimum next
//               expected byte across the subtree the emitter represents,
//               rate = the number of members it stands for (itself plus
//               registered children / modeled population). URG set when
//               the aggregate answers a PROBE (solicited, same timing
//               contract as UPDATE).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "kern/seq.hpp"
#include "kern/skbuff.hpp"

namespace hrmc::proto {

/// Transport protocol number H-RMC registers with the (simulated) IP
/// layer — IPPROTO_HRMC in the driver.
inline constexpr std::uint8_t kIpProtoHrmc = 200;

/// Packet types (Table 1). UPDATE and PROBE exist only in H-RMC mode.
/// FEC is this repository's implementation of the paper's §6 future-work
/// item (4) — "incorporation of forward error correction, particularly
/// for wireless environments" — and is off by default.
enum class PacketType : std::uint8_t {
  kData = 1,
  kNak = 2,
  kNakErr = 3,
  kJoin = 4,
  kJoinResponse = 5,
  kLeave = 6,
  kLeaveResponse = 7,
  kControl = 8,
  kKeepalive = 9,
  kUpdate = 10,  // H-RMC only
  kProbe = 11,   // H-RMC only
  kFec = 12,     // extension (§6 future work (4)); not in Table 1
  /// Aggregated subtree UPDATE (hierarchical repair extension): one
  /// message carries (min next_expected, member multiplicity) for a
  /// whole router subtree. Not in Table 1.
  kAggUpdate = 13,
};

std::string_view packet_type_name(PacketType t);

/// Decoded header.
struct Header {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  kern::Seq seq = 0;
  std::uint32_t rate = 0;    ///< rate advertisement / request, bytes per second
  std::uint32_t length = 0;  ///< payload length (DATA) or range length (NAK)
  std::uint8_t tries = 0;    ///< transmission attempt count (1 = first send)
  PacketType type = PacketType::kData;
  bool urg = false;
  bool fin = false;

  static constexpr std::size_t kSize = 20;
};

/// Serializes `h` in front of the buffer's current payload (consumes 20
/// bytes of headroom) and fills in the checksum over header + payload.
void write_header(kern::SkBuff& skb, const Header& h);

/// Parses and strips the header. Returns nullopt on short packets or
/// checksum failure (the caller counts and drops those).
std::optional<Header> read_header(kern::SkBuff& skb);

/// Parses without stripping or verifying (for taps and tests).
std::optional<Header> peek_header(const kern::SkBuff& skb);

}  // namespace hrmc::proto
