// H-RMC receiver (Figure 9 of the paper).
//
// Components, as in the driver:
//  - Main Packet Processor (hrmc_rcv_data): reassembles the stream,
//    detects gaps (generating immediate NAKs for newly missing bytes),
//    and applies the three flow-control rules of §2 on every new DATA
//    packet (safe / warning / critical receive-window regions).
//  - Out-of-Order Queue: segments that cannot yet be spliced into the
//    stream; they occupy receive-buffer space like any other data.
//  - Receive Queue: in-order data awaiting the application.
//  - NAK Manager (nak_timer): re-sends pending NAKs once the local
//    suppression interval has passed.
//  - Update Generator (update_timer, H-RMC mode only): periodic UPDATEs
//    carrying the highest in-order sequence; the period adapts ±1 jiffy
//    per period based on whether a PROBE arrived (§3).
//  - Application Interface (hrmc_recvmsg): copies in-order bytes out.
//
// (The driver's Backlog Queue exists to park packets while the socket is
// locked by a concurrent syscall; the simulation is single-threaded per
// host, so the lock can never be held and the queue would be dead code.)
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hrmc/config.hpp"
#include "hrmc/fec.hpp"
#include "hrmc/nak_list.hpp"
#include "hrmc/rtt.hpp"
#include "hrmc/stats.hpp"
#include "hrmc/wire.hpp"
#include "kern/mem.hpp"
#include "kern/timer.hpp"
#include "net/host.hpp"
#include "sim/random.hpp"
#include "trace/trace.hpp"

namespace hrmc::proto {

class RepairAgent;

class HrmcReceiver final : public net::Transport {
 public:
  /// `group` is the multicast session to listen to. `sender_hint` (may be
  /// 0) lets the receiver JOIN before the first data packet arrives;
  /// without it, the JOIN goes out in response to the first DATA packet,
  /// exactly as in the paper.
  HrmcReceiver(net::Host& host, const Config& cfg, net::Endpoint group,
               net::Addr sender_hint = 0);
  ~HrmcReceiver() override;

  HrmcReceiver(const HrmcReceiver&) = delete;
  HrmcReceiver& operator=(const HrmcReceiver&) = delete;

  /// Subscribes to the multicast group and (if the sender is known)
  /// sends the JOIN request.
  void open();

  /// Open for a receiver joining an already-running stream (membership
  /// churn): like open(), but the stream is anchored at the sender's
  /// *current* position via the URG resync path instead of assuming the
  /// configured initial sequence — a late joiner wants the live stream,
  /// not history the sender may have released long ago.
  void open_resync();

  /// Sends LEAVE and unsubscribes. Retries LEAVE until the response
  /// arrives (bounded).
  void close();

  /// Cancels every timer (see HrmcSender::stop).
  void stop();

  // --- Crash / restart (fault injection) ---

  /// Simulated host crash: every piece of volatile protocol state —
  /// reassembly queues, pending NAKs, FEC cache, timers, join state —
  /// is lost, exactly as a reboot would lose it. The socket keeps
  /// accumulating stats (they model the experiment's observer, not the
  /// host's memory).
  void crash();

  /// Host back up: rejoin the group and resync from the sender's
  /// *current* stream position (late-join semantics) via an URG-marked
  /// JOIN, instead of NAKing history that may already be released.
  void restart();

  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Completed crash-restart resyncs (JOIN_RESPONSE re-anchored us).
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }

  // --- Application interface (hrmc_recvmsg) ---

  /// Copies up to out.size() in-order bytes to the application.
  std::size_t recv(std::span<std::uint8_t> out);

  /// In-order bytes ready for recv().
  [[nodiscard]] std::size_t available() const {
    return receive_queue_.bytes();
  }

  /// True once the whole stream (through FIN) has been received,
  /// regardless of how much the application has consumed.
  [[nodiscard]] bool complete() const {
    return fin_seq_.has_value() && rcv_nxt_ == *fin_seq_;
  }

  /// True when complete() and the application has consumed everything.
  [[nodiscard]] bool eof() const { return complete() && available() == 0; }

  /// Set when the sender answered a retransmission request with NAK_ERR
  /// (possible only under Mode::kRmc): bytes were skipped.
  [[nodiscard]] bool stream_error() const { return stream_error_; }
  [[nodiscard]] std::uint64_t bytes_skipped() const { return bytes_skipped_; }

  std::function<void()> on_readable;  ///< new in-order data available
  std::function<void()> on_complete;  ///< entire stream received

  // --- Introspection ---
  [[nodiscard]] const ReceiverStats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] kern::Seq rcv_nxt() const { return rcv_nxt_; }
  [[nodiscard]] kern::Seq rcv_wnd() const { return rcv_wnd_; }
  [[nodiscard]] std::size_t occupancy() const {
    return receive_queue_.bytes() + ooo_bytes_;
  }
  [[nodiscard]] kern::Jiffies update_period() const { return update_period_; }
  [[nodiscard]] bool joined() const { return join_state_ == JoinState::kJoined; }
  [[nodiscard]] sim::SimTime srtt() const { return rtt_.srtt(); }
  /// Pending NAK ranges still awaiting repair (time-series sampling).
  [[nodiscard]] std::size_t nak_backlog() const { return nak_list_.size(); }
  /// Current flow-control region: 0 safe, 1 warning, 2 critical.
  [[nodiscard]] int flow_region() const { return fc_region_; }

  /// Attaches a trace sink (see HrmcSender::set_trace).
  void set_trace(trace::TraceSink sink) { trace_ = sink; }

  // --- Hierarchical repair (million-receiver scaling extension) ---

  /// Promotes this receiver to the designated local repairer of its
  /// router subtree: it accepts JOIN/UPDATE/NAK/CONTROL/LEAVE from
  /// child receivers, answers child NAKs from a bounded payload cache,
  /// aggregates child positions into one AGG_UPDATE per subtree toward
  /// the sender, and forwards only unrepairable NAKs upward.
  void enable_repairer();
  [[nodiscard]] bool is_repairer() const { return repair_ != nullptr; }

  /// Re-homes this receiver's feedback (JOIN, UPDATE, NAK, CONTROL,
  /// LEAVE) to a local repairer instead of the sender. Data still
  /// arrives via multicast. If the repairer stops making progress the
  /// receiver fails over to the sender (Config::repair_failover_naks).
  void set_repair_parent(net::Addr parent);
  [[nodiscard]] net::Addr repair_parent() const { return repair_parent_; }

  /// Folded end-state of the suppression-backoff RNG — part of
  /// RunResult::rng_digest.
  [[nodiscard]] std::uint64_t rng_digest() const {
    return feedback_rng_.digest();
  }

  // --- net::Transport ---
  void rx(kern::SkBuffPtr skb) override;

 private:
  enum class JoinState { kIdle, kJoining, kJoined, kLeaving, kLeft };

  /// Out-of-order segment: payload plus its place in sequence space.
  struct OooSeg {
    kern::Seq begin = 0;
    kern::Seq end = 0;
    kern::SkBuffPtr skb;  // payload only (header already stripped)
  };

  friend class RepairAgent;

  // Packet handlers.
  void process_data(const Header& h, kern::SkBuffPtr skb);
  void process_fec(const Header& h, kern::SkBuffPtr skb);
  void process_probe(const Header& h);
  void process_keepalive(const Header& h);
  void process_join_response(const Header& h);
  void process_leave_response(const Header& h);
  void process_nak_err(const Header& h);
  /// Another member's NAK, overheard on the subtree multicast (SRM
  /// suppression): defer our own overlapping pending NAKs.
  void process_peer_nak(const Header& h, net::Addr from);
  /// Random NAK delay in [0, nak_backoff_rtts * srtt) (SRM suppression).
  [[nodiscard]] sim::SimTime suppression_backoff();

  // Reassembly helpers.
  void insert_out_of_order(kern::Seq begin, kern::Seq end,
                           kern::SkBuffPtr skb);
  void insert_trimmed(kern::Seq begin, kern::Seq end, kern::SkBuffPtr skb,
                      std::vector<OooSeg>::iterator at);
  void drain_out_of_order();
  /// Finds the holes in [rcv_nxt_, upto) not covered by buffered
  /// segments, records them in the NAK list, and NAKs the new ones.
  void nak_holes_up_to(kern::Seq upto);
  void after_stream_advance();

  // Flow control (the three rules of §2).
  void check_flow_control(std::uint32_t advertised_rate);

  // Memory-pressure robustness (DESIGN.md §16). All four are no-ops /
  // infallible when the harness installed no kern::MemAccountant, so
  // accountant-free runs are bit-identical to the pre-§16 protocol.
  /// Charges `bytes` of component `c` against this host's ledger; a
  /// refusal counts stats_.alloc_fails and emits kAllocFail.
  bool mem_charge(kern::MemComponent c, std::size_t bytes);
  void mem_uncharge(kern::MemComponent c, std::size_t bytes);
  /// Returns every charged FEC cache byte to the ledger (crash/resync
  /// clear both caches wholesale).
  void mem_uncharge_fec_caches();
  /// Eviction policy while the ledger sits over the effective budget
  /// (a squeeze window shrinks the budget under bytes already held):
  /// shed FEC parity rows, then FEC data shards, then the farthest
  /// out-of-order segments — whose ranges go back on the NAK list, so
  /// eviction degrades to loss, never to silent data loss.
  void mem_relieve_pressure();

  // Feedback emission.
  void send_nak(const NakRange& r);
  void send_update();
  void send_control(std::uint32_t requested_rate, bool urgent);
  void send_join();
  void send_leave();
  void emit(PacketType type, kern::Seq seq, std::uint32_t rate,
            std::uint32_t length, bool urg = false);
  void emit_to(net::Addr daddr, PacketType type, kern::Seq seq,
               std::uint32_t rate, std::uint32_t length, bool urg = false);
  /// Where feedback goes: the repair parent while it is answering, the
  /// sender otherwise.
  [[nodiscard]] net::Addr feedback_target() const {
    if (repair_parent_ != 0 && !repair_failed_over_) return repair_parent_;
    return sender_addr_;
  }
  /// Stream position reported upward. A repairer reports its *subtree
  /// minimum*, never its own rcv_nxt_: the sender's membership record
  /// for a repairer stands for every leaf under it, so advancing it past
  /// a laggard child would release data that child still needs.
  [[nodiscard]] kern::Seq report_position() const;
  /// Repairer path: a child NAK range the payload cache could not serve
  /// goes upstream to the sender.
  void forward_child_nak(kern::Seq from, kern::Seq to);

  // Timers.
  void nak_timer_fire();
  void rearm_nak_timer();
  void update_timer_fire();
  void join_timer_fire();
  /// Stalled-data watchdog (piggybacked on the update timer, active when
  /// cfg_.data_stall_timeout > 0): prolonged sender silence mid-stream
  /// means a link flap or route reconvergence may have pruned our branch
  /// of the multicast tree — re-graft (IGMP re-join) and re-send a
  /// normal JOIN so the repaired path starts carrying data again.
  void maybe_stall_rejoin(sim::SimTime now);

  [[nodiscard]] sim::SimTime nak_interval() const {
    // Floor at two jiffies: the sender's retransmitter runs on the jiffy
    // timer, so a re-send any sooner is guaranteed to duplicate ("before
    // the sender has had ample opportunity to respond", §2).
    sim::SimTime iv = std::max<sim::SimTime>(
        static_cast<sim::SimTime>(cfg_.nak_resend_rtts *
                                  static_cast<double>(rtt_.srtt())),
        2 * kern::kJiffy);
    if (fec_wait_worthwhile()) iv = std::max(iv, fec_parity_eta());
    return iv;
  }

  /// Expected parity arrival: one group of packets at the measured
  /// inter-arrival spacing, plus margin.
  [[nodiscard]] sim::SimTime fec_parity_eta() const {
    return static_cast<sim::SimTime>(
        1.25 * static_cast<double>(cfg_.fec_group) *
        static_cast<double>(interarrival_));
  }

  /// Wait for the parity only when it is due soon — if it is far off
  /// (heavy loss collapsed the rate), ARQ recovers faster: the NAK goes
  /// out on the normal clock, and a parity that still wins the race
  /// saves the retransmission opportunistically.
  [[nodiscard]] bool fec_wait_worthwhile() const {
    if (cfg_.fec_group == 0 || interarrival_ <= 0) return false;
    const sim::SimTime base = static_cast<sim::SimTime>(
        cfg_.nak_resend_rtts * static_cast<double>(rtt_.srtt()));
    return fec_parity_eta() <=
           std::max<sim::SimTime>(2 * base, sim::milliseconds(60));
  }

  net::Host& host_;
  Config cfg_;
  net::Endpoint group_;
  net::Addr sender_addr_;

  // Receive sequence space (Figure 2).
  kern::Seq rcv_wnd_ = 0;  ///< next byte the app reads
  kern::Seq rcv_nxt_ = 0;  ///< next byte expected

  kern::SkBuffQueue receive_queue_;
  std::vector<OooSeg> out_of_order_queue_;  // sorted, non-overlapping
  std::size_t ooo_bytes_ = 0;

  NakList nak_list_;
  RttEstimator rtt_;
  ReceiverStats stats_;
  trace::TraceSink trace_;
  int fc_region_ = 0;  ///< last flow-control region (0/1/2)

  // FEC extension: cache of recent data payloads (any length — the tail
  // shard of a truncated group is sub-MSS), used to reconstruct up to r
  // missing packets of a parity group via fec::decode. Bounded by
  // cfg_.fec_cache_groups * cfg_.fec_group entries.
  struct FecCacheEntry {
    kern::Seq begin = 0;
    std::vector<std::uint8_t> bytes;
  };
  void fec_cache_store(kern::Seq begin,
                       std::span<const std::uint8_t> payload);
  [[nodiscard]] const FecCacheEntry* fec_cache_find(kern::Seq begin) const;
  [[nodiscard]] bool holds_bytes(kern::Seq begin, kern::Seq end) const;
  void splice_reconstructed(kern::Seq begin, kern::SkBuffPtr skb);
  std::deque<FecCacheEntry> fec_cache_;
  /// Parity shards held per group, keyed by (group begin, row index):
  /// with r > 1 the first parity of a group may arrive while decode
  /// still needs a sibling row, so rows are cached until the group
  /// decodes, completes via ARQ, or ages out. Bounded by
  /// cfg_.fec_cache_groups * fec::kMaxParity entries.
  struct FecParityEntry {
    kern::Seq begin = 0;       ///< first byte of the protected group
    std::uint32_t span = 0;    ///< exact byte span covered (wire `rate`)
    std::uint8_t index = 0;    ///< parity row (wire `tries` - 1)
    std::vector<std::uint8_t> bytes;
  };
  void fec_parity_store(kern::Seq begin, std::uint32_t span,
                        std::uint8_t index,
                        std::span<const std::uint8_t> payload);
  /// Attempts an erasure decode of the group [begin, begin + span) with
  /// shard size shard_len, using every parity row held for it.
  void fec_try_decode(kern::Seq begin, std::uint32_t span,
                      std::uint32_t shard_len);
  /// Records a decode failure (losses exceed the parities held, or a
  /// needed sibling was evicted) once per group: kFecDecodeFail + stat.
  void fec_note_decode_fail(kern::Seq begin, kern::Seq span_end,
                            std::size_t erasures, std::size_t held);
  std::deque<FecParityEntry> fec_parity_cache_;
  /// Decode-failure dedupe: a group with more erasures than parities
  /// sees every later parity arrival fail the same way; report it once.
  kern::Seq fec_fail_group_ = 0;
  bool fec_fail_noted_ = false;
  /// Stream position of the most recent (re)anchor: initial_seq, moved
  /// forward by a crash-restart / late-join resync. A parity group that
  /// straddles it mixes pre-crash history with post-resync data and is
  /// discarded (see process_fec) — holds_bytes() vacuously reports the
  /// pre-anchor portion as held, so reconstruction from such a group
  /// could splice garbage into the stream.
  kern::Seq fec_anchor_ = 0;

  std::optional<kern::Seq> fin_seq_;
  bool complete_reported_ = false;
  bool stream_error_ = false;
  std::uint64_t bytes_skipped_ = 0;

  // Crash / restart state. While resync_pending_, rcv_nxt_/rcv_wnd_ are
  // stale (pre-crash) and every packet except the re-anchoring
  // JOIN_RESPONSE is ignored.
  bool crashed_ = false;
  bool resync_pending_ = false;
  std::uint64_t resyncs_ = 0;

  JoinState join_state_ = JoinState::kIdle;
  sim::SimTime join_sent_at_ = 0;
  int join_tries_ = 0;
  int leave_tries_ = 0;
  /// Multicast re-home rounds sent before a repairer's own LEAVE
  /// (close() defers departure until the subtree detaches).
  int rehome_tries_ = 0;

  kern::TimerList nak_timer_;
  kern::TimerList update_timer_;
  kern::TimerList join_timer_;
  kern::Jiffies update_period_;
  bool probe_seen_this_period_ = false;
  std::uint32_t last_adv_rate_ = 0;  ///< rate field of the latest DATA
  sim::SimTime last_data_at_ = -1;   ///< arrival time of the latest DATA
  /// Arrival time of the latest valid packet of any kind (stall watchdog).
  sim::SimTime last_activity_at_ = -1;
  sim::SimTime last_stall_rejoin_ = -1;
  sim::SimTime interarrival_ = 0;    ///< EWMA of DATA inter-arrival time
  /// True while handling a PROBE: feedback emitted now is solicited and
  /// carries the URG mark so the sender may time it as a round trip.
  bool answering_probe_ = false;

  // --- Million-receiver scaling ---
  /// Repairer role state (hierarchical repair); null unless
  /// enable_repairer() was called.
  std::unique_ptr<RepairAgent> repair_;
  /// Local repairer this receiver's feedback is homed to (0 = sender).
  net::Addr repair_parent_ = 0;
  /// Sticky failover to the sender after the repairer stopped answering.
  bool repair_failed_over_ = false;
  /// Suppression backoff draws (SRM). Dedicated per-receiver substream:
  /// consuming it never perturbs any other randomness in the run, and it
  /// is only drawn while cfg_.nak_suppression is on.
  sim::Rng feedback_rng_;
};

}  // namespace hrmc::proto
