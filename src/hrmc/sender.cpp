#include "hrmc/sender.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "kern/mem.hpp"

namespace hrmc::proto {

using kern::Seq;
using kern::seq_after;
using kern::seq_after_eq;
using kern::seq_before;
using kern::seq_before_eq;
using kern::seq_diff;
using kern::seq_max;
using kern::seq_min;

HrmcSender::HrmcSender(net::Host& host, const Config& cfg,
                       net::Port local_port, net::Endpoint group)
    : host_(host),
      cfg_(cfg),
      local_port_(local_port),
      group_(group),
      rate_(cfg_),
      rtt_(cfg_.initial_rtt, cfg_.min_rtt_clamp),
      transmit_timer_(host.scheduler(), [this] { transmit_pump(); }),
      retrans_timer_(host.scheduler(), [this] { transmit_pump(); }),
      ka_timer_(host.scheduler(), [this] { keepalive_fire(); }),
      join_batch_timer_(host.scheduler(), [this] { join_batch_flush(); }),
      fec_adapt_timer_(host.scheduler(), [this] { fec_adapt_fire(); }),
      alloc_retry_timer_(host.scheduler(), [this] { alloc_retry_fire(); }),
      ka_period_(cfg.keepalive_init),
      last_forward_send_(host.scheduler().now()) {
  snd_wnd_ = snd_nxt_ = snd_sent_ = cfg_.initial_seq;
  host_.register_transport(kIpProtoHrmc, this);
  rate_.restart();
  last_pump_ = host_.scheduler().now();
  ka_timer_.mod_timer_in(ka_period_);
  if (cfg_.fec_group > 0) {
    fec_rate_r_ = std::clamp<std::size_t>(cfg_.fec_parity_min, 1,
                                          fec::kMaxParity);
    stats_.fec_parity_rate = fec_rate_r_;
    if (cfg_.fec_adapt_interval > 0) {
      fec_adapt_timer_.mod_timer_in(fec_adapt_jiffies());
    }
  }
}

kern::Jiffies HrmcSender::fec_adapt_jiffies() const {
  return std::max<kern::Jiffies>(
      1, static_cast<kern::Jiffies>(cfg_.fec_adapt_interval / kern::kJiffy));
}

HrmcSender::~HrmcSender() {
  host_.unregister_transport(kIpProtoHrmc);
}

void HrmcSender::stop() {
  // A run can end mid-stall; close the open interval so the stats
  // counter does not under-report (the accessor already included it).
  if (stall_since_ >= 0) {
    const sim::SimTime now = host_.scheduler().now();
    stats_.window_stall_time += now - stall_since_;
    trace_.emit(trace::EventKind::kStallClose, snd_wnd_, snd_wnd_,
                static_cast<std::uint64_t>(now - stall_since_));
    stall_since_ = -1;
  }
  transmit_timer_.del_timer();
  retrans_timer_.del_timer();
  ka_timer_.del_timer();
  join_batch_timer_.del_timer();
  fec_adapt_timer_.del_timer();
  alloc_retry_timer_.del_timer();
}

// --------------------------------------------------------------------
// Application interface (hrmc_sendmsg)
// --------------------------------------------------------------------

std::size_t HrmcSender::send(std::span<const std::uint8_t> data) {
  if (fin_closed_) return 0;
  std::size_t accepted = 0;
  while (accepted < data.size() && queued_bytes_ < cfg_.sndbuf) {
    const std::size_t room_in_buf = cfg_.sndbuf - queued_bytes_;

    // Coalesce into the last record if it is still unsent and short.
    if (!write_queue_.empty() && first_unsent_ < write_queue_.size()) {
      TxRecord& last = write_queue_.back();
      const std::size_t cur = payload_len(last);
      if (!last.sent && cur < cfg_.mss) {
        const std::size_t take = std::min(
            {data.size() - accepted, cfg_.mss - cur, room_in_buf});
        std::memcpy(last.payload->put(take), data.data() + accepted, take);
        last.seq_end += static_cast<Seq>(take);
        snd_nxt_ += static_cast<Seq>(take);
        queued_bytes_ += take;
        accepted += take;
        continue;
      }
    }

    const std::size_t take =
        std::min({data.size() - accepted, cfg_.mss, room_in_buf});
    if (take == 0) break;
    // Fallible allocation: under memory pressure the new window block is
    // refused and the application blocks exactly as on a full sndbuf —
    // the backoff timer (or the next release) re-kicks it.
    if (!charge_send_window()) break;
    TxRecord rec;
    rec.seq_begin = snd_nxt_;
    rec.seq_end = snd_nxt_ + static_cast<Seq>(take);
    rec.payload = kern::SkBuff::alloc(cfg_.mss, Header::kSize + 44);
    std::memcpy(rec.payload->put(take), data.data() + accepted, take);
    write_queue_.push_back(std::move(rec));
    snd_nxt_ += static_cast<Seq>(take);
    queued_bytes_ += take;
    accepted += take;
  }
  if (accepted > 0) arm_transmit_timer();
  return accepted;
}

bool HrmcSender::charge_send_window() {
  kern::MemAccountant* mem = host_.mem_accountant();
  if (mem == nullptr) return true;
  const net::Addr self = host_.addr();
  if (mem->try_charge(self, kern::MemComponent::kSendWindow,
                      window_block_bytes())) {
    alloc_retry_period_ = 0;
    return true;
  }
  stats_.alloc_fails++;
  trace_.emit(trace::EventKind::kAllocFail, snd_nxt_, snd_nxt_,
              mem->live(self),
              static_cast<std::uint32_t>(kern::MemComponent::kSendWindow));
  if (!alloc_retry_timer_.pending()) {
    alloc_retry_period_ =
        alloc_retry_period_ == 0
            ? cfg_.alloc_retry_init
            : std::min<kern::Jiffies>(alloc_retry_period_ * 2,
                                      cfg_.alloc_retry_max);
    alloc_retry_timer_.mod_timer_in(alloc_retry_period_);
    stats_.alloc_stalls++;
  }
  return false;
}

void HrmcSender::alloc_retry_fire() {
  // Pressure may have lifted (a fault window closed, a release freed
  // ledger space): let the application try again. If the next charge is
  // refused too, send() re-arms this timer with a doubled period.
  if (on_writable) on_writable();
}

void HrmcSender::close() {
  if (fin_closed_) return;
  fin_closed_ = true;
  if (first_unsent_ < write_queue_.size()) {
    // The last backlogged packet will carry FIN (fec_accumulate flushes
    // the open parity group when it transmits).
    write_queue_.back().fin = true;
  } else {
    // Everything already transmitted (or nothing to send): flush any
    // open parity group — the stream tail must not go unprotected —
    // then announce the end of stream via a FIN-flagged KEEPALIVE.
    if (cfg_.fec_group > 0) fec_flush();
    emit_control_packet(PacketType::kKeepalive, group_.addr, snd_sent_,
                        rate_.rate(), 0, /*urg=*/false, /*fin=*/true);
    stats_.keepalives_sent++;
  }
  arm_transmit_timer();
  maybe_report_finished();
}

bool HrmcSender::finished() const {
  return fin_closed_ && write_queue_.empty();
}

void HrmcSender::maybe_report_finished() {
  if (!finished_reported_ && finished()) {
    finished_reported_ = true;
    if (on_finished) on_finished();
  }
}

// --------------------------------------------------------------------
// Transmitter (transmit_timer)
// --------------------------------------------------------------------

void HrmcSender::arm_transmit_timer() {
  const bool work = !write_queue_.empty() || !retrans_queue_.empty();
  if (work && !transmit_timer_.pending()) {
    transmit_timer_.mod_timer_in(1);
  }
}

void HrmcSender::transmit_pump() {
  const sim::SimTime now = host_.scheduler().now();

  const bool actively_sending =
      first_unsent_ < write_queue_.size() || !retrans_queue_.empty();
  rate_.maybe_grow(now, rtt_.srtt(), actively_sending);

  // Device check: like the kernel driver, the transmitter consults the
  // device queue and requeues instead of flooding a full card. This is
  // why the paper sees no local loss at 10 Mbps — the rate window can
  // grow far past the link without the card eating the difference.
  dev_credit_ = host_.nic() != nullptr
                    ? host_.nic()->tx_free()
                    : std::numeric_limits<std::size_t>::max();
  // Standing queue at the device means the rate window is running above
  // the drain rate; decay toward it (threshold: a quarter of the queue).
  const bool backlogged = first_unsent_ < write_queue_.size();
  if (backlogged && host_.nic() != nullptr &&
      host_.nic()->tx_queue_len() > host_.nic()->config().tx_ring / 4) {
    rate_.on_device_full(now);
  }

  // Budget over the elapsed interval, capped at one jiffy so an idle
  // stretch does not bank into a burst. Computed only after the
  // device-full decay above: the packets sent this jiffy advertise the
  // post-decay rate, and a budget drawn at the pre-decay rate would let
  // the sender spend above its own advertisement — a rule 3 violation
  // the trace checker flags.
  sim::SimTime dt = std::min<sim::SimTime>(now - last_pump_, kern::kJiffy);
  last_pump_ = now;
  std::uint64_t budget = rate_.budget(dt) + budget_carry_;

  budget = service_retransmissions(budget);
  if (!rate_.stopped(now)) {
    budget = send_new_data(budget);
  }
  budget_carry_ = std::min<std::uint64_t>(budget, cfg_.mss);

  try_advance_window();
  arm_transmit_timer();
}

std::uint64_t HrmcSender::send_new_data(std::uint64_t budget) {
  const sim::SimTime now = host_.scheduler().now();
  while (first_unsent_ < write_queue_.size()) {
    TxRecord& rec = write_queue_[first_unsent_];
    const std::size_t plen = payload_len(rec);
    if (budget < plen) break;
    if (dev_credit_ == 0) break;  // device queue full: requeue for next jiffy
    --dev_credit_;
    transmit_record(rec, /*retransmission=*/false);
    rec.first_sent = now;
    snd_sent_ = seq_max(snd_sent_, rec.seq_end);
    ++first_unsent_;
    budget -= plen;
    stats_.data_packets_sent++;
    stats_.data_bytes_sent += plen;
    if (cfg_.fec_group > 0) {
      // Parity bytes come out of the same pacing budget as data: the
      // wire stays conformant to the advertised rate with FEC on
      // (trace invariant 3 "including parity bytes").
      const std::uint64_t parity = fec_accumulate(rec);
      budget -= std::min(budget, parity);
    }
  }
  return budget;
}

std::uint64_t HrmcSender::fec_accumulate(const TxRecord& rec) {
  // Parity protects groups of contiguous first transmissions. A short
  // (sub-MSS) packet or the stream FIN closes the group early and the
  // parity flushes over the bytes it actually covers — the seed XOR
  // path discarded the accumulator here, leaving every transfer tail
  // (and every transfer shorter than fec_group packets) unprotected.
  const std::size_t plen = payload_len(rec);
  if (fec_count_ == 0) {
    fec_begin_ = rec.seq_begin;
    fec_parity_.assign(fec_parity_rows(),
                       std::vector<std::uint8_t>(cfg_.mss, 0));
    fec_bytes_ = 0;
  }
  const std::uint8_t* p = rec.payload->data();
  for (std::size_t j = 0; j < fec_parity_.size(); ++j) {
    // Only plen bytes are combined; the shard's tail past plen is
    // implicitly zero (zero-padded coding), contributing nothing.
    fec::accumulate(fec_parity_[j].data(), p, plen,
                    fec::coefficient(j, fec_count_));
  }
  fec_bytes_ += plen;
  ++fec_count_;
  if (fec_count_ >= fec_effective_group() || plen != cfg_.mss || rec.fin) {
    return fec_flush();
  }
  return 0;
}

std::uint64_t HrmcSender::fec_flush() {
  if (fec_count_ == 0) return 0;
  // Parity payload length = the longest shard in the group: mss unless
  // the group is a single sub-MSS packet.
  const std::size_t plen =
      std::min<std::size_t>(cfg_.mss, static_cast<std::size_t>(fec_bytes_));
  std::uint64_t wire = 0;
  kern::MemAccountant* mem = host_.mem_accountant();
  for (std::size_t j = 0; j < fec_parity_.size(); ++j) {
    // Parity is an optimization, not a reliability obligation: a parity
    // row whose transmit buffer cannot be allocated is skipped (along
    // with the rest of the group's rows — pressure rarely lifts within
    // one flush) and the ARQ path covers whatever it would have repaired.
    if (mem != nullptr &&
        !mem->admit(host_.addr(), plen + Header::kSize + 44)) {
      stats_.fec_parity_skipped += fec_parity_.size() - j;
      stats_.alloc_fails++;
      trace_.emit(trace::EventKind::kAllocFail, fec_begin_,
                  fec_begin_ + static_cast<Seq>(fec_bytes_),
                  mem->live(host_.addr()),
                  static_cast<std::uint32_t>(kern::MemComponent::kFecParity));
      break;
    }
    kern::SkBuffPtr skb = kern::SkBuff::alloc(plen, Header::kSize + 44);
    std::memcpy(skb->put(plen), fec_parity_[j].data(), plen);
    Header h;
    h.sport = local_port_;
    h.dport = group_.port;
    h.seq = fec_begin_;
    // Exact byte span covered (k*mss for a full group; less when the
    // group was cut short), so the receiver can size the tail shard.
    h.rate = static_cast<std::uint32_t>(fec_bytes_);
    h.length = static_cast<std::uint32_t>(plen);
    h.tries = static_cast<std::uint8_t>(j + 1);  // parity row index + 1
    h.type = PacketType::kFec;
    write_header(*skb, h);
    skb->daddr = group_.addr;
    skb->protocol = kIpProtoHrmc;
    stats_.fec_packets_sent++;
    stats_.fec_parity_bytes += plen;
    wire += plen;
    if (dev_credit_ > 0) --dev_credit_;
    host_.send(std::move(skb));
  }
  fec_reset();
  return wire;
}

std::size_t HrmcSender::fec_parity_rows() const {
  const std::size_t r_min =
      std::clamp<std::size_t>(cfg_.fec_parity_min, 1, fec::kMaxParity);
  if (cfg_.fec_adapt_interval <= 0) return r_min;
  return std::clamp<std::size_t>(fec_rate_r_, r_min, fec::kMaxParity);
}

void HrmcSender::fec_adapt_fire() {
  if (cfg_.fec_group == 0 || cfg_.fec_adapt_interval <= 0) return;
  const std::size_t r_min =
      std::clamp<std::size_t>(cfg_.fec_parity_min, 1, fec::kMaxParity);
  const std::size_t r_max = std::clamp<std::size_t>(
      std::max(cfg_.fec_parity_max, cfg_.fec_parity_min), r_min,
      fec::kMaxParity);

  const std::uint64_t naks = stats_.naks_received;
  const std::uint64_t pkts =
      stats_.data_packets_sent + stats_.retransmissions;
  const std::uint64_t d_naks = naks - fec_epoch_naks_;
  const std::uint64_t d_pkts = pkts - fec_epoch_packets_;
  fec_epoch_naks_ = naks;
  fec_epoch_packets_ = pkts;

  // Target from the loss rate the feedback channel reports: NAK ranges
  // per transmitted packet this epoch, scaled to expected losses per
  // group, plus one row of burst headroom whenever loss was seen at all.
  std::size_t target = r_min;
  if (d_pkts > 0 && d_naks > 0) {
    const double loss =
        static_cast<double>(d_naks) / static_cast<double>(d_pkts);
    const double per_group =
        loss * static_cast<double>(fec_effective_group());
    target = std::max<std::size_t>(
        target, static_cast<std::size_t>(std::ceil(per_group)) + 1);
  }
  // AGG_UPDATE subtree minima: a subtree minimum that is far behind the
  // send head AND has stopped advancing for consecutive epochs while
  // data keeps moving means some subtree is losing more than its NAK
  // volume (suppressed / aggregated below us) admits. Lag alone is not
  // a signal — in-flight data lags the send head even on a clean path.
  if (d_pkts > 0 && !members_.empty()) {
    Seq mn = snd_sent_;
    members_.for_each(
        [&](McMember& m) { mn = seq_min(mn, m.next_expected); });
    const std::uint64_t lag =
        static_cast<std::uint64_t>(seq_diff(mn, snd_sent_));
    const std::uint64_t group_bytes =
        static_cast<std::uint64_t>(fec_effective_group()) * cfg_.mss;
    if (group_bytes > 0 && lag > 8 * group_bytes && fec_min_valid_ &&
        mn == fec_epoch_min_) {
      if (++fec_min_stalled_ >= 2) ++target;
    } else {
      fec_min_stalled_ = 0;
    }
    fec_epoch_min_ = mn;
    fec_min_valid_ = true;
  }
  target = std::clamp(target, r_min, r_max);

  // Damped moves: one step per epoch; decreases additionally wait for
  // fec_hysteresis_epochs of consecutive under-target epochs so one
  // quiet epoch inside a loss burst does not shed the protection.
  if (target > fec_rate_r_) {
    ++fec_rate_r_;
    fec_low_epochs_ = 0;
    stats_.fec_rate_increases++;
  } else if (target < fec_rate_r_) {
    if (++fec_low_epochs_ >= std::max(1, cfg_.fec_hysteresis_epochs)) {
      --fec_rate_r_;
      fec_low_epochs_ = 0;
      stats_.fec_rate_decreases++;
    }
  } else {
    fec_low_epochs_ = 0;
  }
  stats_.fec_parity_rate = fec_rate_r_;
  fec_adapt_timer_.mod_timer_in(fec_adapt_jiffies());
}

std::uint64_t HrmcSender::service_retransmissions(std::uint64_t budget) {
  const sim::SimTime now = host_.scheduler().now();
  const sim::SimTime dedup = static_cast<sim::SimTime>(
      cfg_.retrans_dedup_rtts * static_cast<double>(rtt_.srtt()));

  std::vector<RetransRange> remaining;
  bool out_of_budget = false;
  for (std::size_t r = 0; r < retrans_queue_.size(); ++r) {
    RetransRange range = retrans_queue_[r];
    if (out_of_budget) {
      // Budget or device exhausted: every unserviced request survives
      // to the next jiffy.
      remaining.push_back(range);
      continue;
    }
    // Data already released cannot be retransmitted (the NAK_ERR for it
    // was produced at feedback-processing time).
    if (seq_before(range.from, snd_wnd_)) range.from = snd_wnd_;
    for (std::size_t i = 0; i < first_unsent_; ++i) {
      TxRecord& rec = write_queue_[i];
      if (seq_before_eq(rec.seq_end, range.from)) continue;
      if (seq_before_eq(range.to, rec.seq_begin)) break;
      if (!rec.sent) break;  // backlog will flow in order anyway
      if (now - rec.last_retrans < dedup) continue;  // collapsed duplicate
      const std::size_t plen = payload_len(rec);
      if (budget < plen || dev_credit_ == 0) {
        // Keep the unserviced tail of the range for the next jiffy.
        remaining.push_back(RetransRange{rec.seq_begin, range.to});
        out_of_budget = true;
        break;
      }
      --dev_credit_;
      transmit_record(rec, /*retransmission=*/true);
      budget -= plen;
      stats_.retransmissions++;
      stats_.retrans_bytes += plen;
    }
  }
  retrans_queue_ = std::move(remaining);
  return budget;
}

void HrmcSender::transmit_record(TxRecord& rec, bool retransmission) {
  const sim::SimTime now = host_.scheduler().now();
  // The stored payload stays header-free so retransmissions can stamp a
  // fresh header (tries/rate change per attempt): clone shares the data
  // block, and write_header()'s push copy-on-writes only this
  // transmission's copy.
  kern::SkBuffPtr skb = rec.payload->clone();
  Header h;
  h.sport = local_port_;
  h.dport = group_.port;
  h.seq = rec.seq_begin;
  h.rate = rate_.rate();
  h.length = static_cast<std::uint32_t>(payload_len(rec));
  if (rec.tries < 255) ++rec.tries;
  h.tries = rec.tries;
  h.type = PacketType::kData;
  h.fin = rec.fin;
  write_header(*skb, h);
  skb->daddr = group_.addr;
  skb->protocol = kIpProtoHrmc;
  rec.sent = true;
  rec.last_sent = now;
  if (retransmission) rec.last_retrans = now;
  trace_.emit(retransmission ? trace::EventKind::kRetransmit
                             : trace::EventKind::kSend,
              rec.seq_begin, rec.seq_end, h.rate);
  note_forward_activity();
  host_.send(std::move(skb));
}

void HrmcSender::try_advance_window() {
  const sim::SimTime now = host_.scheduler().now();
  const sim::SimTime hold =
      cfg_.minbuf_rtts * std::max<sim::SimTime>(rtt_.srtt(), kern::kJiffy);

  bool freed = false;
  while (!write_queue_.empty()) {
    TxRecord& head = write_queue_.front();
    if (!head.sent) break;
    if (now - head.last_sent < hold) {
      // Optional early probing (§6 future work (1)): start collecting
      // receiver state before the hold expires so small-buffer runs do
      // not degenerate into stop-and-wait.
      if (cfg_.mode == Mode::kHrmc && cfg_.early_probe_rtts > 0 &&
          now - head.last_sent >=
              hold - cfg_.early_probe_rtts * rtt_.srtt() &&
          !members_.empty() && !members_.all_have(head.seq_end)) {
        probe_lacking_members(head.seq_end);
      }
      break;
    }

    const bool complete = members_.all_have(head.seq_end);
    if (!head.release_counted) {
      head.release_counted = true;
      stats_.release_decisions++;
      if (complete) stats_.releases_with_complete_info++;
    }

    if (cfg_.mode == Mode::kHrmc && !members_.empty() && !complete) {
      probe_lacking_members(head.seq_end);
      if (!resolve_dead_members(head.seq_end)) {
        // The window does not advance until every *live* member has the
        // data; from here until release the sender is stalled.
        if (stall_since_ < 0) {
          stall_since_ = now;
          trace_.emit(trace::EventKind::kStallOpen, head.seq_begin,
                      head.seq_end, 0);
        }
        break;
      }
    }

    // Safe (H-RMC) or unconditional (RMC) release.
    if (stall_since_ >= 0) {
      stats_.window_stall_time += now - stall_since_;
      trace_.emit(trace::EventKind::kStallClose, head.seq_begin, head.seq_end,
                  static_cast<std::uint64_t>(now - stall_since_));
      stall_since_ = -1;
    }
    const std::size_t plen = payload_len(head);
    queued_bytes_ -= plen;
    if (kern::MemAccountant* mem = host_.mem_accountant()) {
      mem->uncharge(host_.addr(), kern::MemComponent::kSendWindow,
                    window_block_bytes());
    }
    snd_wnd_ = head.seq_end;
    trace_.emit(trace::EventKind::kRelease, head.seq_begin, head.seq_end,
                queued_bytes_);
    stats_.packets_released++;
    stats_.bytes_released += plen;
    sent_log_.push_back(SentLogEntry{head.seq_begin, head.seq_end,
                                     head.last_sent, head.tries});
    if (sent_log_.size() > kSentLogCap) sent_log_.pop_front();
    write_queue_.pop_front();
    if (first_unsent_ > 0) --first_unsent_;
    freed = true;
  }

  if (freed) {
    maybe_report_finished();
    if (on_writable) on_writable();
  }
}

sim::SimTime HrmcSender::probe_spacing(const McMember& m) const {
  // Probe spacing floored at one jiffy: below that, re-probes could not
  // possibly have been answered yet, and with many receivers the storm
  // of control packets starves the data path at the device queue.
  const sim::SimTime base = std::max<sim::SimTime>(
      static_cast<sim::SimTime>(cfg_.probe_interval_rtts *
                                static_cast<double>(rtt_.srtt())),
      kern::kJiffy);
  if (cfg_.probe_backoff <= 1.0 || m.probe_retries == 0) return base;
  const int exp = std::min(m.probe_retries, cfg_.probe_backoff_cap);
  return static_cast<sim::SimTime>(static_cast<double>(base) *
                                   std::pow(cfg_.probe_backoff, exp));
}

void HrmcSender::refresh_lacking(Seq release_seq) {
  if (lacking_valid_ && lacking_gate_ == release_seq &&
      lacking_version_ == members_.version()) {
    return;
  }
  lacking_cache_.clear();
  members_.for_each([&](McMember& m) {
    if (seq_before(m.next_expected, release_seq)) {
      lacking_cache_.push_back(m.addr);
    }
  });
  lacking_gate_ = release_seq;
  lacking_version_ = members_.version();
  lacking_valid_ = true;
  stats_.lacking_rebuilds++;
}

void HrmcSender::probe_lacking_members(Seq release_seq) {
  const sim::SimTime now = host_.scheduler().now();

  refresh_lacking(release_seq);
  std::vector<McMember*> lacking;
  std::size_t keep = 0;
  for (net::Addr addr : lacking_cache_) {
    McMember* m = members_.find(addr);
    if (m == nullptr || !seq_before(m->next_expected, release_seq)) {
      continue;  // caught up (or gone) since the cache was built: compact
    }
    lacking_cache_[keep++] = addr;
    if (now - m->last_probed >= probe_spacing(*m)) lacking.push_back(m);
  }
  lacking_cache_.resize(keep);
  if (lacking.empty()) return;
  trace_.emit(trace::EventKind::kProbe, release_seq, release_seq,
              lacking.size());

  const auto mark_probed = [&](McMember& m) {
    if (m.probe_pending) {
      // Re-probing while the previous probe is unanswered: one step
      // closer to declaring the member dead.
      if (m.probe_retries < std::numeric_limits<int>::max()) {
        ++m.probe_retries;
      }
      stats_.probe_retries++;
    }
    m.last_probed = now;
    m.probe_pending = true;
    m.probe_seq = release_seq;
  };

  stats_.probe_rounds++;
  if (cfg_.mcast_probe_threshold > 0 &&
      lacking.size() > cfg_.mcast_probe_threshold) {
    // §6 future work (2): one multicast probe instead of a unicast storm.
    emit_control_packet(PacketType::kProbe, group_.addr, release_seq,
                        rate_.rate(), 0);
    stats_.probes_sent++;
    for (McMember* m : lacking) mark_probed(*m);
    return;
  }
  // Per-round cap: a cold 10k-member table must not burst 10k unicast
  // probes into one jiffy. The rotating cursor puts deferred members
  // first in line next round; their last_probed is untouched, so the
  // spacing check re-selects them immediately.
  std::size_t count = lacking.size();
  std::size_t start = 0;
  if (cfg_.max_probes_per_round > 0 &&
      lacking.size() > cfg_.max_probes_per_round) {
    stats_.probes_deferred += lacking.size() - cfg_.max_probes_per_round;
    start = probe_cursor_ % lacking.size();
    count = cfg_.max_probes_per_round;
    probe_cursor_ = (start + count) % lacking.size();
  }
  for (std::size_t i = 0; i < count; ++i) {
    McMember* m = lacking[(start + i) % lacking.size()];
    emit_control_packet(PacketType::kProbe, m->addr, release_seq,
                        rate_.rate(), 0);
    stats_.probes_sent++;
    mark_probed(*m);
  }
}

bool HrmcSender::resolve_dead_members(Seq release_seq) {
  if (cfg_.eviction_policy == EvictionPolicy::kStall) return false;

  bool any_dead = false;
  bool live_member_lacking = false;
  std::vector<net::Addr> dead;
  refresh_lacking(release_seq);
  for (net::Addr addr : lacking_cache_) {
    McMember* m = members_.find(addr);
    if (m == nullptr || !seq_before(m->next_expected, release_seq)) continue;
    if (member_dead(*m)) {
      any_dead = true;
      dead.push_back(m->addr);
    } else {
      live_member_lacking = true;
    }
  }
  if (!any_dead) return false;

  if (cfg_.eviction_policy == EvictionPolicy::kEvict) {
    for (net::Addr addr : dead) {
      members_.remove(addr);
      stats_.members_evicted++;
      trace_.emit(trace::EventKind::kEvict, release_seq, release_seq, addr);
    }
    // Release only if no live member is still owed the data (the gate
    // keeps holding for stragglers that do answer probes).
    return !live_member_lacking;
  }

  // kRmcFallback: the member stays in the table (its feedback keeps
  // refreshing state, and a NAK for released data earns a NAK_ERR just
  // as in baseline RMC), but it no longer holds the window.
  if (!live_member_lacking) {
    stats_.dead_member_releases++;
    for (net::Addr addr : dead) {
      trace_.emit(trace::EventKind::kDeadRelease, release_seq, release_seq,
                  addr);
    }
    return true;
  }
  return false;
}

sim::SimTime HrmcSender::window_stall_time() const {
  sim::SimTime total = stats_.window_stall_time;
  if (stall_since_ >= 0) total += host_.scheduler().now() - stall_since_;
  return total;
}

// --------------------------------------------------------------------
// Feedback processor (hrmc_master_rcv)
// --------------------------------------------------------------------

void HrmcSender::rx(kern::SkBuffPtr skb) {
  auto h = read_header(*skb);
  if (!h || h->dport != local_port_) {
    stats_.bad_packets++;
    return;
  }
  const net::Addr from = skb->saddr;
  switch (h->type) {
    case PacketType::kNak: process_nak(*h, from); break;
    case PacketType::kControl: process_control(*h, from); break;
    case PacketType::kUpdate: process_update(*h, from); break;
    case PacketType::kAggUpdate: process_agg_update(*h, from); break;
    case PacketType::kJoin: process_join(*h, from); break;
    case PacketType::kLeave: process_leave(*h, from); break;
    default:
      stats_.bad_packets++;
      break;
  }
  try_advance_window();
  arm_transmit_timer();
}

// How long a departed address stays unadoptable. Long enough to outlive
// any straggler feedback still in flight (queueing + a blackout window),
// short enough that a silent rejoin-by-feedback eventually works again.
constexpr sim::SimTime kLeaveTombstone = sim::seconds(5);

McMember* HrmcSender::refresh_member(net::Addr addr, Seq next_expected,
                                     bool solicited) {
  // A receiver cannot expect bytes the sender never assigned: feedback
  // claiming a position beyond snd_nxt (stale resync echo, hostile or
  // mangled packet) must not release window the receivers never earned.
  if (seq_after(next_expected, snd_nxt_)) {
    stats_.feedback_clamped++;
    next_expected = snd_nxt_;
  }
  McMember* m = members_.find(addr);
  if (m == nullptr) {
    const auto tomb = recently_left_.find(addr);
    if (tomb != recently_left_.end()) {
      if (host_.scheduler().now() - tomb->second < kLeaveTombstone) {
        // Straggler feedback from a receiver that already left (its
        // LEAVE raced this packet, or the half-closed peer answered a
        // probe). Re-admitting it would stall the window on a member
        // that will never advance again.
        stats_.ghost_feedback_ignored++;
        return nullptr;
      }
      recently_left_.erase(tomb);
    }
    // Feedback from a receiver whose JOIN we never saw; adopt it rather
    // than lose reliability.
    m = members_.add(addr, next_expected);
  }
  const sim::SimTime now = host_.scheduler().now();
  members_.advance(m, next_expected);
  m->heard_from = true;
  m->last_heard = now;
  if (m->probe_pending) {
    if (solicited) {
      // A marked probe response: an unambiguous RTT sample. (Unsolicited
      // feedback crossing the probe in flight must NOT be timed — with
      // many receivers those crossings are constant and would collapse
      // the estimate toward zero.)
      rtt_.sample(now - m->last_probed);
      m->probe_pending = false;
      m->probe_retries = 0;
    } else if (seq_after_eq(next_expected, m->probe_seq)) {
      // Unsolicited, but it confirms everything the probe asked about.
      m->probe_pending = false;
      m->probe_retries = 0;
    }
  }
  return m;
}

bool HrmcSender::take_rtt_sample_for(Seq seq, sim::SimTime now) {
  const auto offer = [&](sim::SimTime sent_at, std::uint8_t tries) {
    const sim::SimTime sample = now - sent_at;
    // Karn's rule: retransmitted data gives ambiguous samples. Beyond
    // that, feedback can reference data sent arbitrarily long ago (a
    // PROBE- or KEEPALIVE-triggered NAK names an old loss); such a
    // delay is not a round trip — but staleness only ever inflates a
    // sample, so a sample *below* the current estimate is always real
    // evidence and is accepted. Upward movement is accepted only while
    // feedback timing is the estimator's source (RMC mode / bootstrap),
    // bounded by 2x RTO; in steady H-RMC the upward direction belongs
    // to solicited probe responses.
    const bool downward = sample < rtt_.srtt();
    const bool upward_ok =
        !rtt_.seeded() ||  // bootstrap: the first coarse sample is what
                           // unsticks a wrong initial estimate
        (feedback_timing_wanted() && sample <= 2 * rtt_.rto());
    rtt_.sample(sample,
                /*from_retransmit=*/tries > 1 || !(downward || upward_ok));
  };
  for (std::size_t i = 0; i < first_unsent_; ++i) {
    const TxRecord& rec = write_queue_[i];
    if (seq_before_eq(rec.seq_end, seq)) continue;
    if (seq_before(seq, rec.seq_begin)) break;
    offer(rec.last_sent, rec.tries);
    return true;
  }
  // Fall back to the released-data log (most recent first).
  for (auto it = sent_log_.rbegin(); it != sent_log_.rend(); ++it) {
    if (seq_before(seq, it->begin)) continue;
    if (seq_before_eq(it->end, seq)) break;  // older than anything logged
    offer(it->last_sent, it->tries);
    return true;
  }
  return false;
}

sim::SimTime HrmcSender::send_time_of(Seq seq) const {
  for (std::size_t i = 0; i < first_unsent_; ++i) {
    const TxRecord& rec = write_queue_[i];
    if (seq_before_eq(rec.seq_end, seq)) continue;
    if (seq_before(seq, rec.seq_begin)) break;
    return rec.last_sent;
  }
  for (auto it = sent_log_.rbegin(); it != sent_log_.rend(); ++it) {
    if (seq_before(seq, it->begin)) continue;
    if (seq_before_eq(it->end, seq)) break;
    return it->last_sent;
  }
  return -1;
}

void HrmcSender::queue_retransmission(Seq from, Seq to) {
  if (!seq_before(from, to)) return;
  retrans_queue_.push_back(RetransRange{from, to});
  if (!retrans_timer_.pending()) retrans_timer_.mod_timer_in(1);
}

void HrmcSender::process_nak(const Header& h, net::Addr from) {
  stats_.naks_received++;

  const Seq range_from = h.rate;  // NAK reuses the rate field (wire.hpp)
  const Seq range_to = range_from + h.length;
  // Validate the request against the send window before acting on it: a
  // correct receiver can only NAK a gap below data it has already seen,
  // so every byte of the range lies below snd_sent. An empty range, a
  // range longer than any window could be, or one naming bytes never
  // sent is garbage — retransmitting from it would emit bytes that do
  // not exist, and feeding it to the rate controller punishes the whole
  // group for a forged loss.
  if (h.length == 0 || h.length > (1u << 30) ||
      seq_after_eq(range_from, snd_sent_) ||
      seq_after(range_to, snd_sent_)) {
    stats_.naks_invalid++;
    return;
  }

  // A probe-solicited NAK (URG mark) answers that probe; refresh_member
  // times it cleanly against the probe's send time, and a data-based
  // sample would mis-attribute the old loss as a round trip.
  const bool answers_probe = h.urg;
  McMember* member = refresh_member(from, h.seq, h.urg);
  if (member == nullptr) return;  // tombstoned ghost: its loss is moot
  // Freshness is judged against the RTO as it stood *before* this NAK's
  // own timing feeds the estimator (a stale bootstrap sample would
  // otherwise inflate the RTO enough to call itself fresh).
  const sim::SimTime fresh_bound = 2 * rtt_.rto() + kern::kJiffy;
  if (!answers_probe) {
    // RTT from the NAK'd data's send time (window first, then the
    // released-data log). This is a sound sample source: a NAK cannot
    // arrive earlier than one detection delay plus one round trip after
    // the missing data was sent. (RMC "estimates the worst RTT based on
    // incoming NAKs and rate-reduce requests"; rate requests reference
    // rcv_nxt, whose packet may be freshly in flight, so only the NAK's
    // missing-range timing is used here.)
    take_rtt_sample_for(range_from, host_.scheduler().now());
  }

  if (seq_before_eq(range_to, snd_wnd_)) {
    // Entire request is below the window: the data is gone. But the
    // sender only releases bytes every member confirmed — so if *this*
    // member's own reports already cover the range, the NAK is a stale
    // duplicate (reordered or duplicated feedback arriving after its
    // retransmission was received and acknowledged), not a reliability
    // gap. Answering it with NAK_ERR would declare an error the
    // receiver never experienced.
    if (member != nullptr && seq_after_eq(member->next_expected, range_to)) {
      stats_.naks_stale++;
      return;
    }
    // Genuinely unsatisfiable (RMC mode released unconfirmed data, or
    // the member was evicted): inform the receiver — the RMC
    // reliability gap, surfaced.
    emit_control_packet(PacketType::kNakErr, from, range_from, 0, h.length);
    stats_.nak_errs_sent++;
    trace_.emit(trace::EventKind::kNakErr, range_from, range_to, from);
  } else {
    if (seq_before(range_from, snd_wnd_)) {
      // Front of the request is gone; the rest is retransmittable.
      emit_control_packet(PacketType::kNakErr, from, range_from, 0,
                          static_cast<std::uint32_t>(
                              seq_diff(range_from, snd_wnd_)));
      stats_.nak_errs_sent++;
      trace_.emit(trace::EventKind::kNakErr, range_from, snd_wnd_, from);
    }
    queue_retransmission(seq_max(range_from, snd_wnd_), range_to);
  }

  // The multiplicative decrease applies only to *fresh* loss — a NAK
  // referencing data sent long ago (a late joiner catching up, a probed
  // straggler) says nothing about current congestion, and reacting to a
  // catch-up NAK stream would pin the rate at the minimum.
  const sim::SimTime sent_at = send_time_of(range_from);
  const sim::SimTime now = host_.scheduler().now();
  const bool fresh = sent_at >= 0 && now - sent_at <= fresh_bound;
  const std::uint32_t rate_before = rate_.rate();
  if (fresh &&
      rate_.on_negative_feedback(
          now, static_cast<sim::SimTime>(cfg_.rate_cut_holdoff_rtts *
                                         static_cast<double>(rtt_.srtt())))) {
    stats_.rate_cuts++;
    trace_.emit(trace::EventKind::kRateCut, range_from, range_to,
                rate_.rate(), rate_before);
  }
}

void HrmcSender::process_control(const Header& h, net::Addr from) {
  stats_.rate_requests_received++;
  if (refresh_member(from, h.seq, /*solicited=*/false) == nullptr) {
    return;  // tombstoned ghost: its rate demands no longer bind the group
  }
  const sim::SimTime now = host_.scheduler().now();
  const std::uint32_t rate_before = rate_.rate();
  if (h.urg) {
    stats_.urgent_requests_received++;
    stats_.urgent_stops++;
    stats_.slow_start_entries++;
    rate_.on_urgent(now, rtt_.srtt());
    trace_.emit(trace::EventKind::kUrgentStop, h.seq, h.seq,
                static_cast<std::uint64_t>(rate_.stopped_until()),
                rate_.rate());
  } else {
    if (rate_.on_negative_feedback(
            now,
            static_cast<sim::SimTime>(cfg_.rate_cut_holdoff_rtts *
                                      static_cast<double>(rtt_.srtt())),
            h.rate)) {
      stats_.rate_cuts++;
      trace_.emit(trace::EventKind::kRateCut, h.seq, h.seq, rate_.rate(),
                  rate_before);
    }
  }
}

void HrmcSender::process_update(const Header& h, net::Addr from) {
  stats_.updates_received++;
  refresh_member(from, h.seq, /*solicited=*/h.urg);
}

void HrmcSender::process_agg_update(const Header& h, net::Addr from) {
  stats_.agg_updates_received++;
  // The aggregate is the minimum over the repairer's subtree, so it may
  // legitimately move *backward* (a laggard child registered under the
  // repairer after its last report). refresh_member's monotone
  // advance() would ignore that and release data the new child still
  // needs — this is the one feedback path that sets the position in
  // either direction. Clamp into [snd_wnd_, snd_nxt_]: beyond the head
  // would release window the subtree never earned; below the window
  // names bytes already gone, which gating on would wedge the release
  // head forever.
  Seq pos = h.seq;
  if (seq_after(pos, snd_nxt_)) {
    stats_.feedback_clamped++;
    pos = snd_nxt_;
  }
  if (seq_before(pos, snd_wnd_)) pos = snd_wnd_;

  McMember* m = members_.find(from);
  if (m == nullptr) {
    const auto tomb = recently_left_.find(from);
    if (tomb != recently_left_.end()) {
      if (host_.scheduler().now() - tomb->second < kLeaveTombstone) {
        stats_.ghost_feedback_ignored++;
        return;
      }
      recently_left_.erase(tomb);
    }
    // Adoption, as for any feedback: after a sender restart (or a lost
    // JOIN) the repairer's periodic aggregates rebuild its record.
    m = members_.add(from, pos);
  }
  const sim::SimTime now = host_.scheduler().now();
  members_.set_position(m, pos);
  members_.set_multiplicity(m, std::max<std::uint32_t>(h.rate, 1));
  m->heard_from = true;
  m->last_heard = now;
  if (m->probe_pending) {
    if (h.urg) {
      // Solicited (probe-answering) aggregate: clean RTT sample, same
      // rule as refresh_member.
      rtt_.sample(now - m->last_probed);
      m->probe_pending = false;
      m->probe_retries = 0;
    } else if (seq_after_eq(pos, m->probe_seq)) {
      m->probe_pending = false;
      m->probe_retries = 0;
    }
  }
}

void HrmcSender::process_join(const Header& h, net::Addr from) {
  stats_.joins_received++;
  // An explicit (re-)JOIN always clears the departure tombstone: the
  // receiver is unambiguously announcing itself, not straggling.
  recently_left_.erase(from);
  if (h.urg) {
    // Resync JOIN from a crash-restarted receiver: it abandons whatever
    // history it held, so its membership record must NOT anchor at its
    // stale h.seq (that would re-stall the window on data the receiver
    // will never NAK). The handshake must also be *idempotent*: a
    // retried URG JOIN (first response lost or merely delayed) must
    // earn the SAME anchor, or the receiver could adopt a late first
    // response while the sender gates on a newer one — a release-safety
    // split that lets the window sail past the receiver's position. So
    // a member the sender still holds keeps its recorded anchor (that
    // data is still buffered and NAKable under the release gate); only
    // a genuinely unknown record anchors at the current head.
    stats_.resync_joins_received++;
    McMember* m = members_.find(from);
    if (m == nullptr) m = members_.add(from, snd_nxt_);
    m->heard_from = true;
    m->last_heard = host_.scheduler().now();
    m->probe_pending = false;
    m->probe_retries = 0;
    emit_control_packet(PacketType::kJoinResponse, from, m->next_expected,
                        rate_.rate(), 0, /*urg=*/false, /*fin=*/false);
    return;
  }
  // Anchor new members at the first data position they reported, never
  // beyond the stream head (a forged future position would corrupt the
  // cached release minimum).
  const Seq anchor = seq_min(seq_max(h.seq, cfg_.initial_seq), snd_nxt_);

  if (cfg_.join_batch_threshold > 0) {
    // Batched admission: per JOIN we do the O(1) table insert only.
    // Once a burst exceeds the threshold, the per-JOIN unicast response
    // (and the O(window) RTT lookup) is replaced by one multicast
    // JOIN_RESPONSE on the next jiffy — receivers in kJoining accept it
    // regardless of addressing, so a flash crowd of 10k JOINs inside
    // one RTT costs 10k inserts plus a single control packet.
    const sim::SimTime now = host_.scheduler().now();
    if (now - last_join_at_ > kern::kJiffy) joins_since_flush_ = 0;
    last_join_at_ = now;
    ++joins_since_flush_;
    members_.add(from, anchor);
    if (join_batch_pending_) return;
    if (joins_since_flush_ >= cfg_.join_batch_threshold) {
      join_batch_pending_ = true;
      join_batch_timer_.mod_timer_in(1);
      return;
    }
  } else {
    // A JOIN answers the first data packet the receiver saw: it carries
    // the only RTT evidence the sender gets from loss-free receivers in
    // RMC mode (worst-RTT estimation starts here).
    take_rtt_sample_for(h.seq, host_.scheduler().now());
    members_.add(from, anchor);
  }
  emit_control_packet(PacketType::kJoinResponse, from, snd_nxt_,
                      rate_.rate(), 0, /*urg=*/false, /*fin=*/false);
}

void HrmcSender::join_batch_flush() {
  join_batch_pending_ = false;
  joins_since_flush_ = 0;
  emit_control_packet(PacketType::kJoinResponse, group_.addr, snd_nxt_,
                      rate_.rate(), 0, /*urg=*/false, /*fin=*/false);
  stats_.join_batch_responses++;
}

void HrmcSender::process_leave(const Header& h, net::Addr from) {
  (void)h;
  stats_.leaves_received++;
  members_.remove(from);
  recently_left_[from] = host_.scheduler().now();
  if (recently_left_.size() >= 4096) {
    // Keep the tombstone map bounded through a mass-departure storm.
    const sim::SimTime now = host_.scheduler().now();
    std::erase_if(recently_left_, [&](const auto& e) {
      return now - e.second >= kLeaveTombstone;
    });
  }
  emit_control_packet(PacketType::kLeaveResponse, from, snd_nxt_, 0, 0);
}

// --------------------------------------------------------------------
// Keepalive controller (ka_timer)
// --------------------------------------------------------------------

void HrmcSender::note_forward_activity() {
  last_forward_send_ = host_.scheduler().now();
  ka_period_ = cfg_.keepalive_init;
  ka_timer_.mod_timer_in(ka_period_);
}

void HrmcSender::keepalive_fire() {
  const sim::SimTime now = host_.scheduler().now();
  const sim::SimTime idle = now - last_forward_send_;
  if (idle >= kern::from_jiffies(ka_period_)) {
    // KEEPALIVE carries the last *transmitted* sequence so receivers can
    // detect a lost tail; after close() it also carries FIN.
    const bool all_sent = first_unsent_ >= write_queue_.size();
    emit_control_packet(PacketType::kKeepalive, group_.addr, snd_sent_,
                        rate_.rate(), 0, /*urg=*/false,
                        /*fin=*/fin_closed_ && all_sent);
    stats_.keepalives_sent++;
    ka_period_ = std::min<kern::Jiffies>(ka_period_ * 2, cfg_.keepalive_max);
  }
  ka_timer_.mod_timer_in(ka_period_);
}

// --------------------------------------------------------------------
// Packet construction
// --------------------------------------------------------------------

void HrmcSender::emit_control_packet(PacketType type, net::Addr dst_addr,
                                     Seq seq, std::uint32_t rate,
                                     std::uint32_t length, bool urg,
                                     bool fin) {
  kern::SkBuffPtr skb = kern::SkBuff::alloc(0, Header::kSize + 44);
  Header h;
  h.sport = local_port_;
  h.dport = group_.port;
  h.seq = seq;
  h.rate = rate;
  h.length = length;
  h.tries = 1;
  h.type = type;
  h.urg = urg;
  h.fin = fin;
  write_header(*skb, h);
  skb->daddr = dst_addr;
  skb->protocol = kIpProtoHrmc;
  host_.send(std::move(skb));
}

}  // namespace hrmc::proto
