// Designated local repairer (million-receiver scaling extension).
//
// One receiver per router subtree is promoted to answer its siblings'
// feedback locally: child NAKs are served out of a bounded cache of
// recently received DATA payloads (O(1) copy-on-write clones), child
// UPDATEs are folded into a single AGG_UPDATE — (subtree minimum
// next_expected, represented member count) — toward the sender, and
// only ranges the cache cannot cover are forwarded upward. The sender
// then holds one membership record per subtree instead of one per leaf,
// its release check is O(subtrees), and the feedback volume crossing
// the backbone is O(subtrees) rather than O(receivers).
//
// Correctness hinges on one rule, enforced by the owning receiver's
// report_position(): everything a repairer reports upward carries the
// subtree *minimum*, never its own position — the sender's record for
// the repairer stands in for every leaf beneath it.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "hrmc/config.hpp"
#include "hrmc/wire.hpp"
#include "kern/skbuff.hpp"
#include "kern/timer.hpp"
#include "net/host.hpp"

namespace hrmc::proto {

class HrmcReceiver;

class RepairAgent {
 public:
  explicit RepairAgent(HrmcReceiver& owner);

  // Child feedback, unicast to the repairer's address (routed here by
  // the owner's rx dispatch).
  void handle_join(const Header& h, net::Addr from);
  void handle_leave(const Header& h, net::Addr from);
  void handle_update(const Header& h, net::Addr from, bool aggregated);
  void handle_control(const Header& h, net::Addr from);
  void handle_nak(const Header& h, net::Addr from);

  /// Data path: every multicast DATA packet the owner receives is
  /// cached so child NAKs can be answered without a sender round trip.
  void cache_data(const Header& h, const kern::SkBuffPtr& skb);

  /// Subtree minimum: the owner's own position folded with every
  /// registered child's last report.
  [[nodiscard]] kern::Seq subtree_min(kern::Seq own) const;
  /// Leaves represented: 1 for the repairer itself plus each child's
  /// multiplicity (a nested repairer child counts its whole subtree).
  [[nodiscard]] std::uint64_t subtree_weight() const;

  /// Emits one AGG_UPDATE (subtree min, weight) toward the sender.
  void send_aggregate(bool solicited);

  /// Owner crash: children, cache, and the flush timer are volatile
  /// (children re-register through their own recovery paths).
  void clear();
  /// Owner teardown: stop the flush timer, keep state.
  void stop();

  [[nodiscard]] std::size_t child_count() const { return children_.size(); }
  [[nodiscard]] std::size_t cache_packets() const { return cache_.size(); }
  /// Payload bytes held by the repair cache (bounded by
  /// Config::repair_cache_bytes when nonzero, on top of the packet cap).
  [[nodiscard]] std::size_t cache_bytes() const { return cache_bytes_; }

 private:
  struct Child {
    kern::Seq next_expected = 0;
    std::uint32_t multiplicity = 1;
    sim::SimTime last_heard = 0;
  };
  struct CacheEntry {
    kern::Seq begin = 0;
    kern::Seq end = 0;
    bool fin = false;
    kern::SkBuffPtr payload;  // payload bytes only (header stripped)
  };

  /// Records a child report. mult == 0 keeps the existing multiplicity.
  void touch_child(net::Addr from, kern::Seq seq, std::uint32_t mult,
                   sim::SimTime now);
  /// Drops silent children — but never under kStall, where a silent
  /// member must hold the subtree minimum exactly as it would hold the
  /// sender's window (the paper's stall semantics, one level down).
  void expire_children(sim::SimTime now);
  /// Drops the oldest cache entry (LRU front), returning its bytes to
  /// the owner's memory ledger. `traced` marks byte-bound / pressure
  /// evictions (kCacheEvict + stat); packet-cap pops stay silent, as
  /// they always were.
  void evict_front(bool traced);
  void send_repair(net::Addr child, const CacheEntry& e);
  /// Coalescing: child reports mark the aggregate dirty; at most one
  /// unsolicited AGG_UPDATE per jiffy goes upstream.
  void mark_dirty();
  void flush_timer_fire();

  HrmcReceiver& owner_;
  std::unordered_map<net::Addr, Child> children_;
  std::deque<CacheEntry> cache_;
  std::size_t cache_bytes_ = 0;
  kern::TimerList flush_timer_;
  bool dirty_ = false;
  /// Rate-limit for forwarded (non-urgent) child rate requests.
  sim::SimTime last_control_forward_ = -1;
};

}  // namespace hrmc::proto
