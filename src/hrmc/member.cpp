#include "hrmc/member.hpp"

namespace hrmc::proto {

MemberTable::~MemberTable() {
  McMember* m = head_;
  while (m != nullptr) {
    McMember* next = m->next;
    delete m;
    m = next;
  }
}

McMember* MemberTable::add(net::Addr addr, kern::Seq initial_expected) {
  if (McMember* existing = find(addr)) return existing;
  auto* m = new McMember;
  m->addr = addr;
  m->next_expected = initial_expected;

  // Push onto the global doubly linked list.
  m->next = head_;
  if (head_ != nullptr) head_->prev = m;
  head_ = m;

  // Push onto the hash chain.
  const std::size_t b = bucket(addr);
  m->hash_next = hash_[b];
  hash_[b] = m;

  // Push onto the subtree shard and maintain its cached minimum.
  m->shard = static_cast<std::uint8_t>(shard_of(addr));
  Shard& s = shards_[m->shard];
  m->shard_next = s.head;
  if (s.head != nullptr) s.head->shard_prev = m;
  s.head = m;
  ++s.size;
  if (s.size == 1) {
    s.cached_min = initial_expected;
    s.min_count = 1;
    s.min_valid = true;
  } else if (s.min_valid) {
    if (initial_expected == s.cached_min) {
      ++s.min_count;
    } else if (kern::seq_before(initial_expected, s.cached_min)) {
      s.cached_min = initial_expected;
      s.min_count = 1;
    }
  }

  ++size_;
  total_weight_ += m->multiplicity;
  ++version_;
  return m;
}

bool MemberTable::remove(net::Addr addr) {
  const std::size_t b = bucket(addr);
  McMember** link = &hash_[b];
  McMember* m = nullptr;
  while (*link != nullptr) {
    if ((*link)->addr == addr) {
      m = *link;
      *link = m->hash_next;
      break;
    }
    link = &(*link)->hash_next;
  }
  if (m == nullptr) return false;

  if (m->prev != nullptr) m->prev->next = m->next;
  if (m->next != nullptr) m->next->prev = m->prev;
  if (head_ == m) head_ = m->next;

  Shard& s = shards_[m->shard];
  if (m->shard_prev != nullptr) m->shard_prev->shard_next = m->shard_next;
  if (m->shard_next != nullptr) m->shard_next->shard_prev = m->shard_prev;
  if (s.head == m) s.head = m->shard_next;
  --s.size;
  if (s.min_valid && m->next_expected == s.cached_min && --s.min_count == 0) {
    s.min_valid = false;  // the shard's slowest member left; rescan lazily
  }

  total_weight_ -= m->multiplicity;
  delete m;
  --size_;
  ++version_;
  return true;
}

McMember* MemberTable::find(net::Addr addr) {
  for (McMember* m = hash_[bucket(addr)]; m != nullptr; m = m->hash_next) {
    if (m->addr == addr) return m;
  }
  return nullptr;
}

const McMember* MemberTable::find(net::Addr addr) const {
  return const_cast<MemberTable*>(this)->find(addr);
}

void MemberTable::for_each(const std::function<void(McMember&)>& fn) {
  for (McMember* m = head_; m != nullptr; m = m->next) fn(*m);
}

void MemberTable::for_each(
    const std::function<void(const McMember&)>& fn) const {
  for (const McMember* m = head_; m != nullptr; m = m->next) fn(*m);
}

bool MemberTable::advance(McMember* m, kern::Seq reported) {
  if (!kern::seq_before(m->next_expected, reported)) return false;
  return set_position(m, reported);
}

bool MemberTable::set_position(McMember* m, kern::Seq seq) {
  if (m->next_expected == seq) return false;
  Shard& s = shards_[m->shard];
  const kern::Seq old = m->next_expected;
  if (kern::seq_before(seq, old)) {
    // Regression (an aggregated record absorbing a laggard child): any
    // membership-derived cache built against the old position — the
    // sender's lacking set — is now stale, so count it as a membership
    // change.
    ++version_;
  }
  m->next_expected = seq;
  if (!s.min_valid) return true;
  if (old == s.cached_min) {
    if (s.min_count == 1) {
      if (kern::seq_before(seq, old)) {
        s.cached_min = seq;  // still the unique shard minimum, just lower
      } else {
        s.min_valid = false;  // the shard's slowest member moved; rescan lazily
      }
      return true;
    }
    --s.min_count;
  }
  if (kern::seq_before(seq, s.cached_min)) {
    s.cached_min = seq;
    s.min_count = 1;
  } else if (seq == s.cached_min) {
    ++s.min_count;
  }
  return true;
}

void MemberTable::set_multiplicity(McMember* m, std::uint32_t multiplicity) {
  if (multiplicity == 0) multiplicity = 1;
  total_weight_ += multiplicity;
  total_weight_ -= m->multiplicity;
  m->multiplicity = multiplicity;
}

void MemberTable::rescan_shard(const Shard& s) const {
  ++min_rescans_;
  min_rescan_work_ += s.size;
  kern::Seq lo = s.head->next_expected;
  std::size_t count = 1;
  for (const McMember* m = s.head->shard_next; m != nullptr;
       m = m->shard_next) {
    if (m->next_expected == lo) {
      ++count;
    } else if (kern::seq_before(m->next_expected, lo)) {
      lo = m->next_expected;
      count = 1;
    }
  }
  s.cached_min = lo;
  s.min_count = count;
  s.min_valid = true;
}

kern::Seq MemberTable::min_next_expected(kern::Seq fallback) const {
  if (head_ == nullptr) return fallback;
  bool any = false;
  kern::Seq lo = 0;
  for (const Shard& s : shards_) {
    if (s.head == nullptr) continue;
    if (!s.min_valid) rescan_shard(s);
    if (!any || kern::seq_before(s.cached_min, lo)) {
      lo = s.cached_min;
      any = true;
    }
  }
  return lo;
}

bool MemberTable::all_have(kern::Seq seq) const {
  if (head_ == nullptr) return true;
  return !kern::seq_before(min_next_expected(0), seq);
}

}  // namespace hrmc::proto
