#include "hrmc/member.hpp"

namespace hrmc::proto {

MemberTable::~MemberTable() {
  McMember* m = head_;
  while (m != nullptr) {
    McMember* next = m->next;
    delete m;
    m = next;
  }
}

McMember* MemberTable::add(net::Addr addr, kern::Seq initial_expected) {
  if (McMember* existing = find(addr)) return existing;
  auto* m = new McMember;
  m->addr = addr;
  m->next_expected = initial_expected;

  // Push onto the global doubly linked list.
  m->next = head_;
  if (head_ != nullptr) head_->prev = m;
  head_ = m;

  // Push onto the hash chain.
  const std::size_t b = bucket(addr);
  m->hash_next = hash_[b];
  hash_[b] = m;

  ++size_;
  return m;
}

bool MemberTable::remove(net::Addr addr) {
  const std::size_t b = bucket(addr);
  McMember** link = &hash_[b];
  McMember* m = nullptr;
  while (*link != nullptr) {
    if ((*link)->addr == addr) {
      m = *link;
      *link = m->hash_next;
      break;
    }
    link = &(*link)->hash_next;
  }
  if (m == nullptr) return false;

  if (m->prev != nullptr) m->prev->next = m->next;
  if (m->next != nullptr) m->next->prev = m->prev;
  if (head_ == m) head_ = m->next;

  delete m;
  --size_;
  return true;
}

McMember* MemberTable::find(net::Addr addr) {
  for (McMember* m = hash_[bucket(addr)]; m != nullptr; m = m->hash_next) {
    if (m->addr == addr) return m;
  }
  return nullptr;
}

const McMember* MemberTable::find(net::Addr addr) const {
  return const_cast<MemberTable*>(this)->find(addr);
}

void MemberTable::for_each(const std::function<void(McMember&)>& fn) {
  for (McMember* m = head_; m != nullptr; m = m->next) fn(*m);
}

void MemberTable::for_each(
    const std::function<void(const McMember&)>& fn) const {
  for (const McMember* m = head_; m != nullptr; m = m->next) fn(*m);
}

kern::Seq MemberTable::min_next_expected(kern::Seq fallback) const {
  if (head_ == nullptr) return fallback;
  kern::Seq lo = head_->next_expected;
  for (const McMember* m = head_->next; m != nullptr; m = m->next) {
    lo = kern::seq_min(lo, m->next_expected);
  }
  return lo;
}

bool MemberTable::all_have(kern::Seq seq) const {
  for (const McMember* m = head_; m != nullptr; m = m->next) {
    if (kern::seq_before(m->next_expected, seq)) return false;
  }
  return true;
}

}  // namespace hrmc::proto
