#include "hrmc/member.hpp"

namespace hrmc::proto {

MemberTable::~MemberTable() {
  McMember* m = head_;
  while (m != nullptr) {
    McMember* next = m->next;
    delete m;
    m = next;
  }
}

McMember* MemberTable::add(net::Addr addr, kern::Seq initial_expected) {
  if (McMember* existing = find(addr)) return existing;
  auto* m = new McMember;
  m->addr = addr;
  m->next_expected = initial_expected;

  // Push onto the global doubly linked list.
  m->next = head_;
  if (head_ != nullptr) head_->prev = m;
  head_ = m;

  // Push onto the hash chain.
  const std::size_t b = bucket(addr);
  m->hash_next = hash_[b];
  hash_[b] = m;

  ++size_;
  ++version_;
  if (size_ == 1) {
    cached_min_ = initial_expected;
    min_count_ = 1;
    min_valid_ = true;
  } else if (min_valid_) {
    if (initial_expected == cached_min_) {
      ++min_count_;
    } else if (kern::seq_before(initial_expected, cached_min_)) {
      cached_min_ = initial_expected;
      min_count_ = 1;
    }
  }
  return m;
}

bool MemberTable::remove(net::Addr addr) {
  const std::size_t b = bucket(addr);
  McMember** link = &hash_[b];
  McMember* m = nullptr;
  while (*link != nullptr) {
    if ((*link)->addr == addr) {
      m = *link;
      *link = m->hash_next;
      break;
    }
    link = &(*link)->hash_next;
  }
  if (m == nullptr) return false;

  if (m->prev != nullptr) m->prev->next = m->next;
  if (m->next != nullptr) m->next->prev = m->prev;
  if (head_ == m) head_ = m->next;

  if (min_valid_ && m->next_expected == cached_min_ && --min_count_ == 0) {
    min_valid_ = false;  // the last slowest member left; rescan lazily
  }
  delete m;
  --size_;
  ++version_;
  return true;
}

McMember* MemberTable::find(net::Addr addr) {
  for (McMember* m = hash_[bucket(addr)]; m != nullptr; m = m->hash_next) {
    if (m->addr == addr) return m;
  }
  return nullptr;
}

const McMember* MemberTable::find(net::Addr addr) const {
  return const_cast<MemberTable*>(this)->find(addr);
}

void MemberTable::for_each(const std::function<void(McMember&)>& fn) {
  for (McMember* m = head_; m != nullptr; m = m->next) fn(*m);
}

void MemberTable::for_each(
    const std::function<void(const McMember&)>& fn) const {
  for (const McMember* m = head_; m != nullptr; m = m->next) fn(*m);
}

bool MemberTable::advance(McMember* m, kern::Seq reported) {
  if (!kern::seq_before(m->next_expected, reported)) return false;
  if (min_valid_ && m->next_expected == cached_min_ && --min_count_ == 0) {
    min_valid_ = false;  // the slowest member moved; rescan lazily
  }
  m->next_expected = reported;
  return true;
}

void MemberTable::rescan_min() const {
  ++min_rescans_;
  min_rescan_work_ += size_;
  kern::Seq lo = head_->next_expected;
  std::size_t count = 1;
  for (const McMember* m = head_->next; m != nullptr; m = m->next) {
    if (m->next_expected == lo) {
      ++count;
    } else if (kern::seq_before(m->next_expected, lo)) {
      lo = m->next_expected;
      count = 1;
    }
  }
  cached_min_ = lo;
  min_count_ = count;
  min_valid_ = true;
}

kern::Seq MemberTable::min_next_expected(kern::Seq fallback) const {
  if (head_ == nullptr) return fallback;
  if (!min_valid_) rescan_min();
  return cached_min_;
}

bool MemberTable::all_have(kern::Seq seq) const {
  if (head_ == nullptr) return true;
  return !kern::seq_before(min_next_expected(0), seq);
}

}  // namespace hrmc::proto
