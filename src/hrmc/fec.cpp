#include "hrmc/fec.hpp"

#include <array>

namespace hrmc::proto::fec {
namespace {

// exp/log tables for GF(256) with primitive polynomial 0x11d and
// generator alpha = 2. exp_ is doubled so gf_mul needs no modular
// reduction of the log sum.
struct Tables {
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint8_t, 256> log_{};

  Tables() {
    std::uint32_t x = 1;
    for (std::size_t i = 0; i < 255; ++i) {
      exp_[i] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (std::size_t i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // never consulted: gf_mul/gf_inv special-case zero
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(t.log_[a]) + t.log_[b]];
}

std::uint8_t gf_inv(std::uint8_t a) {
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp_[255 - t.log_[a]];
}

std::uint8_t coefficient(std::size_t j, std::size_t i) {
  // Cauchy: C[j][i] = 1 / (x_j ^ y_i) with x_j = j (j < kMaxParity) and
  // y_i = kMaxParity + i — the sets are disjoint, so the denominator is
  // never zero and every square submatrix is invertible. Scaling
  // column i by y_i = C[0][i]^-1 turns row 0 into all-ones without
  // disturbing submatrix invertibility.
  const std::uint8_t y = static_cast<std::uint8_t>(kMaxParity + i);
  const std::uint8_t denom = static_cast<std::uint8_t>(j) ^ y;
  return gf_mul(gf_inv(denom), y);
}

void accumulate(std::uint8_t* dst, const std::uint8_t* src, std::size_t len,
                std::uint8_t coeff) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t b = 0; b < len; ++b) dst[b] ^= src[b];
    return;
  }
  const Tables& t = tables();
  const std::size_t lc = t.log_[coeff];
  for (std::size_t b = 0; b < len; ++b) {
    const std::uint8_t s = src[b];
    if (s != 0) dst[b] ^= t.exp_[lc + t.log_[s]];
  }
}

bool decode(std::size_t k, std::size_t shard_len,
            const std::vector<const std::uint8_t*>& shards,
            const std::vector<ParityShard>& parities,
            std::vector<std::vector<std::uint8_t>>& out) {
  out.clear();
  if (k == 0 || k > kMaxGroup || shards.size() != k) return false;

  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < k; ++i) {
    if (shards[i] == nullptr) missing.push_back(i);
  }
  const std::size_t e = missing.size();
  if (e == 0) return true;
  if (parities.size() < e) return false;

  // Syndromes: s_a = parity_a ^ sum_{present i} coeff(j_a, i) * d_i =
  // sum_{missing i} coeff(j_a, i) * d_i. The first e available parity
  // rows suffice — any e rows of the normalized Cauchy matrix do.
  std::vector<std::vector<std::uint8_t>> synd(e);
  std::vector<std::vector<std::uint8_t>> m(e,
                                           std::vector<std::uint8_t>(e, 0));
  for (std::size_t a = 0; a < e; ++a) {
    const ParityShard& p = parities[a];
    if (p.index >= kMaxParity || p.bytes == nullptr) return false;
    synd[a].assign(p.bytes, p.bytes + shard_len);
    for (std::size_t i = 0; i < k; ++i) {
      if (shards[i] != nullptr) {
        accumulate(synd[a].data(), shards[i], shard_len,
                   coefficient(p.index, i));
      }
    }
    for (std::size_t b = 0; b < e; ++b) {
      m[a][b] = coefficient(p.index, missing[b]);
    }
  }

  // Gaussian elimination on the e x e system, the syndrome buffers as
  // the (byte-vector) right-hand side. The matrix is a column-scaled
  // Cauchy submatrix, so a zero pivot column cannot occur unless the
  // caller passed duplicate parity indices.
  for (std::size_t col = 0; col < e; ++col) {
    std::size_t pivot = col;
    while (pivot < e && m[pivot][col] == 0) ++pivot;
    if (pivot == e) return false;  // duplicate parity row
    if (pivot != col) {
      std::swap(m[pivot], m[col]);
      std::swap(synd[pivot], synd[col]);
    }
    const std::uint8_t inv = gf_inv(m[col][col]);
    for (std::size_t b = col; b < e; ++b) m[col][b] = gf_mul(m[col][b], inv);
    for (std::size_t b = 0; b < shard_len; ++b) {
      synd[col][b] = gf_mul(synd[col][b], inv);
    }
    for (std::size_t row = 0; row < e; ++row) {
      if (row == col || m[row][col] == 0) continue;
      const std::uint8_t f = m[row][col];
      for (std::size_t b = col; b < e; ++b) {
        m[row][b] ^= gf_mul(f, m[col][b]);
      }
      accumulate(synd[row].data(), synd[col].data(), shard_len, f);
    }
  }

  out = std::move(synd);
  return true;
}

}  // namespace hrmc::proto::fec
