// Pending-NAK list with local suppression (receiver side).
//
// When the Main Packet Processor detects a gap it records the missing
// range here; a NAK goes out immediately for newly discovered bytes, but
// re-sends for a still-missing range are suppressed until the NAK Manager
// (nak_timer) decides the sender has had "ample opportunity to respond"
// (§2, "NAK-Based Reliability").
#pragma once

#include <cstdint>
#include <vector>

#include "kern/seq.hpp"
#include "sim/time.hpp"

namespace hrmc::proto {

struct NakRange {
  kern::Seq from = 0;  ///< first missing byte
  kern::Seq to = 0;    ///< one past the last missing byte
  sim::SimTime last_sent = 0;
  int sends = 0;
  /// SRM suppression: the range must not be (re-)sent before this
  /// instant. 0 (the default) means no deferral — exactly the
  /// pre-suppression behavior.
  sim::SimTime not_before = 0;
};

class NakList {
 public:
  /// Records that [from, to) is missing. Ranges already tracked are left
  /// with their suppression clock intact; genuinely new bytes are
  /// returned (possibly split across several ranges) so the caller can
  /// NAK them immediately.
  std::vector<NakRange> add_gap(kern::Seq from, kern::Seq to,
                                sim::SimTime now);

  /// Data [from, to) arrived: trims or removes overlapping ranges.
  void fill(kern::Seq from, kern::Seq to);

  /// Everything before `seq` is in hand: drops satisfied ranges.
  void ack_through(kern::Seq seq);

  /// SRM-style suppression: pushes the next send of any range
  /// overlapping [from, to) out to at least `until` (a later existing
  /// deadline is kept). Returns the number of ranges deferred.
  std::size_t defer(kern::Seq from, kern::Seq to, sim::SimTime until);

  /// Marks ranges overlapping [from, to) as never sent and deferred to
  /// `until`: used right after add_gap() when the first NAK of a fresh
  /// hole is delayed by a suppression backoff instead of sent. An unsent
  /// range becomes due exactly at its deferral deadline (the re-send
  /// interval does not apply until a first send actually happens).
  void defer_unsent(kern::Seq from, kern::Seq to, sim::SimTime until);

  /// Ranges whose suppression interval has expired; their clocks are
  /// restarted. The NAK Manager re-sends these.
  std::vector<NakRange> due(sim::SimTime now, sim::SimTime interval);

  /// Drops every pending range (receiver crash: the reassembly state
  /// the ranges describe is gone).
  void clear() { ranges_.clear(); }

  [[nodiscard]] bool empty() const { return ranges_.empty(); }
  [[nodiscard]] std::size_t size() const { return ranges_.size(); }
  [[nodiscard]] const std::vector<NakRange>& ranges() const { return ranges_; }

  /// Earliest instant any range becomes due again (for timer arming);
  /// kTimeInfinity when empty.
  [[nodiscard]] sim::SimTime next_due(sim::SimTime interval) const;

 private:
  // Kept sorted by `from`; ranges never overlap.
  std::vector<NakRange> ranges_;
};

}  // namespace hrmc::proto
