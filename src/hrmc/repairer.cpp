#include "hrmc/repairer.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "hrmc/receiver.hpp"
#include "trace/trace.hpp"

namespace hrmc::proto {

using kern::Seq;
using kern::seq_before;
using kern::seq_before_eq;
using kern::seq_diff;
using kern::seq_max;
using kern::seq_min;

RepairAgent::RepairAgent(HrmcReceiver& owner)
    : owner_(owner),
      flush_timer_(owner.host_.scheduler(), [this] { flush_timer_fire(); }) {}

// --------------------------------------------------------------------
// Child membership
// --------------------------------------------------------------------

void RepairAgent::touch_child(net::Addr from, Seq seq, std::uint32_t mult,
                              sim::SimTime now) {
  auto [it, inserted] = children_.try_emplace(from);
  Child& c = it->second;
  if (inserted || c.next_expected != seq ||
      (mult > 0 && c.multiplicity != mult)) {
    mark_dirty();
  }
  c.next_expected = seq;
  if (mult > 0) c.multiplicity = mult;
  c.last_heard = now;
}

void RepairAgent::expire_children(sim::SimTime now) {
  if (owner_.cfg_.eviction_policy == EvictionPolicy::kStall) return;
  if (owner_.cfg_.repair_child_timeout <= 0) return;
  for (auto it = children_.begin(); it != children_.end();) {
    if (now - it->second.last_heard > owner_.cfg_.repair_child_timeout) {
      it = children_.erase(it);
    } else {
      ++it;
    }
  }
}

void RepairAgent::handle_join(const Header& h, net::Addr from) {
  const sim::SimTime now = owner_.host_.scheduler().now();
  // URG marks a crash-restart resync: anchor the child at our own
  // position (mirroring the sender's JOIN handling) so its stale
  // pre-crash rcv_nxt never re-enters the aggregate. A normal JOIN is
  // clamped into [initial_seq, our position]: claiming bytes we have
  // not seen ourselves would let a bogus far-future anchor hide the
  // child from the subtree minimum.
  //
  // Like the sender, the URG handshake must be *idempotent*: a retried
  // resync JOIN (first response lost or still crossing a slow subtree
  // link) must earn the SAME anchor, or the child could adopt the
  // first response while our entry — and through the aggregate, the
  // sender's release gate — sails ahead on a re-anchor from the retry.
  const auto it = children_.find(from);
  const Seq anchor =
      h.urg ? (it != children_.end() ? it->second.next_expected
                                     : owner_.rcv_nxt_)
            : seq_min(seq_max(h.seq, owner_.cfg_.initial_seq),
                      owner_.rcv_nxt_);
  // Register the child at the granted anchor *now*, before the
  // response is even on the wire: the anchor is bounded by our own
  // rcv_nxt_, and our subtree-min report is what gates the sender's
  // release — so from this instant the release head can never pass the
  // anchor, and the child cannot be orphaned while the response (or
  // its first report) is still in flight. A half-open handshake
  // (response lost, child fails over to the sender) does not freeze
  // the aggregate: the failed-over child mirrors its periodic UPDATEs
  // to us (send_update), so the entry keeps advancing with its true
  // position.
  touch_child(from, anchor, 0, now);
  owner_.emit_to(from, PacketType::kJoinResponse, anchor, 0, 0, h.urg);
}

void RepairAgent::handle_leave(const Header& h, net::Addr from) {
  if (children_.erase(from) > 0) mark_dirty();
  owner_.emit_to(from, PacketType::kLeaveResponse, h.seq, 0, 0);
}

void RepairAgent::handle_update(const Header& h, net::Addr from,
                                bool aggregated) {
  const sim::SimTime now = owner_.host_.scheduler().now();
  // AGG_UPDATE from a nested repairer: rate carries its subtree weight,
  // so this child stands in for that many leaves. A plain UPDATE is one
  // leaf. Unknown children are adopted — after our own crash-restart
  // the table is empty and the children's periodic reports rebuild it.
  const std::uint32_t mult =
      aggregated ? std::max<std::uint32_t>(h.rate, 1) : 1;
  touch_child(from, h.seq, aggregated ? mult : 0, now);
}

void RepairAgent::handle_control(const Header& h, net::Addr from) {
  const sim::SimTime now = owner_.host_.scheduler().now();
  touch_child(from, h.seq, 0, now);
  // A child's rate request is about the shared multicast stream, so it
  // must reach the sender — forward it as our own. Urgent stops always
  // go; routine warnings are coalesced to one per jiffy so a congested
  // subtree does not turn into a control-packet storm upstream.
  if (!h.urg && last_control_forward_ >= 0 &&
      now - last_control_forward_ < kern::kJiffy) {
    return;
  }
  last_control_forward_ = now;
  owner_.send_control(h.rate, h.urg);
}

// --------------------------------------------------------------------
// Local repair
// --------------------------------------------------------------------

void RepairAgent::cache_data(const Header& h, const kern::SkBuffPtr& skb) {
  if (owner_.cfg_.repair_cache_packets == 0 || h.length == 0) return;
  const Seq begin = h.seq;
  // Arrival ~= sequence order: a new packet almost always sorts after
  // the newest cached one, so the duplicate check is O(1) in the common
  // case; a retransmission that sorts earlier gets a bounded backward
  // scan (missing a rare duplicate only wastes one cache slot).
  if (!cache_.empty() && !kern::seq_after(begin, cache_.back().begin)) {
    for (auto it = cache_.rbegin(); it != cache_.rend(); ++it) {
      if (it->begin == begin) return;
      if (seq_before(it->begin, begin)) break;
    }
  }
  // Fallible allocation (DESIGN.md §16): an uncached packet only means
  // a child NAK for it forwards upstream — the pre-repairer path.
  if (!owner_.mem_charge(kern::MemComponent::kRepairCache, h.length)) {
    return;
  }
  cache_.push_back(
      CacheEntry{begin, begin + h.length, h.fin, skb->clone()});
  cache_bytes_ += h.length;
  while (cache_.size() > owner_.cfg_.repair_cache_packets) {
    evict_front(/*traced=*/false);
  }
  const std::size_t byte_cap = owner_.cfg_.repair_cache_bytes;
  while (byte_cap > 0 && cache_bytes_ > byte_cap && !cache_.empty()) {
    evict_front(/*traced=*/true);
  }
  // Budget squeeze: the ledger itself may sit over the effective line
  // even though this charge fit under the full budget — shed LRU
  // entries until the owner's ledger is back under (or the cache is
  // empty and other components must give instead).
  if (kern::MemAccountant* mem = owner_.host_.mem_accountant()) {
    while (mem->overage(owner_.host_.addr(), kern::kMemEvictHeadroomBytes) >
               0 &&
           !cache_.empty()) {
      evict_front(/*traced=*/true);
    }
  }
}

void RepairAgent::evict_front(bool traced) {
  const CacheEntry& e = cache_.front();
  const auto len = static_cast<std::size_t>(seq_diff(e.begin, e.end));
  owner_.mem_uncharge(kern::MemComponent::kRepairCache, len);
  cache_bytes_ -= std::min(cache_bytes_, len);
  if (traced) {
    owner_.stats_.repair_cache_evictions++;
    owner_.trace_.emit(
        trace::EventKind::kCacheEvict, e.begin, e.end,
        owner_.host_.mem_accountant() != nullptr
            ? owner_.host_.mem_accountant()->live(owner_.host_.addr())
            : 0,
        static_cast<std::uint32_t>(kern::MemComponent::kRepairCache));
  }
  cache_.pop_front();
}

void RepairAgent::send_repair(net::Addr child, const CacheEntry& e) {
  // Re-frame the cached payload as a retransmitted DATA packet. The
  // clone shares the data block; push()/write_header() copy-on-write
  // only the header area.
  kern::SkBuffPtr out = e.payload->clone();
  Header dh;
  dh.sport = owner_.group_.port;
  dh.dport = owner_.group_.port;
  dh.seq = e.begin;
  dh.rate = owner_.last_adv_rate_;
  dh.length = static_cast<std::uint32_t>(out->size());
  dh.tries = 2;
  dh.type = PacketType::kData;
  dh.fin = e.fin;
  write_header(*out, dh);
  out->daddr = child;
  out->protocol = kIpProtoHrmc;
  owner_.stats_.repairs_served++;
  owner_.trace_.emit(trace::EventKind::kRepairTx, e.begin, e.end, child);
  owner_.host_.send(std::move(out));
}

void RepairAgent::handle_nak(const Header& h, net::Addr from) {
  const sim::SimTime now = owner_.host_.scheduler().now();
  // NAK seq = the child's next_expected: a membership refresh exactly
  // like at the sender.
  touch_child(from, h.seq, 0, now);
  if (h.length == 0) return;
  const Seq want_from = h.rate;
  const Seq want_to = h.rate + h.length;
  if (!seq_before(want_from, want_to)) return;

  // Serve every cached packet overlapping the range, then forward the
  // uncovered remainder upstream as our own NAK.
  std::vector<std::pair<Seq, Seq>> covered;
  for (const CacheEntry& e : cache_) {
    if (seq_before_eq(e.end, want_from) || seq_before_eq(want_to, e.begin)) {
      continue;
    }
    send_repair(from, e);
    covered.emplace_back(e.begin, e.end);
  }
  std::sort(covered.begin(), covered.end(),
            [](const auto& a, const auto& b) {
              return seq_before(a.first, b.first);
            });
  Seq cursor = want_from;
  for (const auto& [b, e] : covered) {
    if (seq_before(cursor, b)) owner_.forward_child_nak(cursor, b);
    cursor = seq_max(cursor, e);
  }
  if (seq_before(cursor, want_to)) {
    owner_.forward_child_nak(cursor, want_to);
  }
}

// --------------------------------------------------------------------
// Aggregation
// --------------------------------------------------------------------

Seq RepairAgent::subtree_min(Seq own) const {
  Seq mn = own;
  for (const auto& [addr, c] : children_) {
    (void)addr;
    mn = seq_min(mn, c.next_expected);
  }
  return mn;
}

std::uint64_t RepairAgent::subtree_weight() const {
  std::uint64_t w = 1;  // the repairer itself
  for (const auto& [addr, c] : children_) {
    (void)addr;
    w += c.multiplicity;
  }
  return w;
}

void RepairAgent::send_aggregate(bool solicited) {
  expire_children(owner_.host_.scheduler().now());
  const Seq mn = subtree_min(owner_.rcv_nxt_);
  const std::uint64_t w = subtree_weight();
  owner_.stats_.agg_updates_sent++;
  owner_.trace_.emit(trace::EventKind::kAggUpdate, mn, mn, w, 0,
                     solicited ? trace::kFlagSolicited : 0);
  // AGG_UPDATE: seq = subtree minimum, rate = represented member count
  // (wire.hpp). URG marks a probe-solicited answer.
  owner_.emit(PacketType::kAggUpdate, mn,
              static_cast<std::uint32_t>(
                  std::min<std::uint64_t>(w, 0xffffffffULL)),
              0, solicited);
  dirty_ = false;
}

void RepairAgent::mark_dirty() {
  if (dirty_) return;
  dirty_ = true;
  flush_timer_.mod_timer_in(1);
}

void RepairAgent::flush_timer_fire() {
  if (!dirty_ || owner_.crashed_ || owner_.resync_pending_) return;
  send_aggregate(/*solicited=*/false);
}

void RepairAgent::clear() {
  children_.clear();
  for (const CacheEntry& e : cache_) {
    owner_.mem_uncharge(kern::MemComponent::kRepairCache,
                        static_cast<std::size_t>(seq_diff(e.begin, e.end)));
  }
  cache_.clear();
  cache_bytes_ = 0;
  dirty_ = false;
  last_control_forward_ = -1;
  flush_timer_.del_timer();
}

void RepairAgent::stop() { flush_timer_.del_timer(); }

}  // namespace hrmc::proto
