#include "hrmc/wire.hpp"

#include "kern/byteorder.hpp"
#include "kern/checksum.hpp"

namespace hrmc::proto {
namespace {

constexpr std::uint8_t kTypeMask = 0x0f;
constexpr std::uint8_t kUrgBit = 0x40;
constexpr std::uint8_t kFinBit = 0x80;

}  // namespace

std::string_view packet_type_name(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kNak: return "NAK";
    case PacketType::kNakErr: return "NAK_ERR";
    case PacketType::kJoin: return "JOIN";
    case PacketType::kJoinResponse: return "JOIN_RESPONSE";
    case PacketType::kLeave: return "LEAVE";
    case PacketType::kLeaveResponse: return "LEAVE_RESPONSE";
    case PacketType::kControl: return "CONTROL";
    case PacketType::kKeepalive: return "KEEPALIVE";
    case PacketType::kUpdate: return "UPDATE";
    case PacketType::kProbe: return "PROBE";
    case PacketType::kFec: return "FEC";
    case PacketType::kAggUpdate: return "AGG_UPDATE";
  }
  return "UNKNOWN";
}

void write_header(kern::SkBuff& skb, const Header& h) {
  std::uint8_t* p = skb.push(Header::kSize);
  kern::put_be16(p + 0, h.sport);
  kern::put_be16(p + 2, h.dport);
  kern::put_be32(p + 4, h.seq);
  kern::put_be32(p + 8, h.rate);
  kern::put_be32(p + 12, h.length);
  kern::put_be16(p + 16, 0);  // checksum placeholder
  p[18] = h.tries;
  p[19] = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(h.type) & kTypeMask) |
      (h.urg ? kUrgBit : 0) | (h.fin ? kFinBit : 0));
  const std::uint16_t csum = kern::internet_checksum(skb.bytes());
  kern::put_be16(p + 16, csum);
}

std::optional<Header> peek_header(const kern::SkBuff& skb) {
  if (skb.size() < Header::kSize) return std::nullopt;
  const std::uint8_t* p = skb.data();
  Header h;
  h.sport = kern::get_be16(p + 0);
  h.dport = kern::get_be16(p + 2);
  h.seq = kern::get_be32(p + 4);
  h.rate = kern::get_be32(p + 8);
  h.length = kern::get_be32(p + 12);
  h.tries = p[18];
  const std::uint8_t tf = p[19];
  const std::uint8_t raw_type = tf & kTypeMask;
  if (raw_type < static_cast<std::uint8_t>(PacketType::kData) ||
      raw_type > static_cast<std::uint8_t>(PacketType::kAggUpdate)) {
    return std::nullopt;
  }
  h.type = static_cast<PacketType>(raw_type);
  h.urg = (tf & kUrgBit) != 0;
  h.fin = (tf & kFinBit) != 0;
  // Payload-bearing types must not claim more payload than the buffer
  // holds: a truncated DATA/FEC packet acted on at face value would
  // deliver bytes that were never sent.
  if ((h.type == PacketType::kData || h.type == PacketType::kFec) &&
      h.length > skb.size() - Header::kSize) {
    return std::nullopt;
  }
  return h;
}

std::optional<Header> read_header(kern::SkBuff& skb) {
  if (skb.size() < Header::kSize) return std::nullopt;
  if (!kern::checksum_ok(skb.bytes())) return std::nullopt;
  auto h = peek_header(skb);
  if (!h) return std::nullopt;
  skb.pull(Header::kSize);
  return h;
}

}  // namespace hrmc::proto
