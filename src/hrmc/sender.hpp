// H-RMC sender (Figure 8 of the paper).
//
// Five cooperating tasks, as in the driver:
//  - Application Interface (hrmc_sendmsg): fragments the byte stream into
//    DATA packets and inserts them into the send window (write_queue);
//    packets beyond the rate window simply wait unsent in the queue (the
//    paper's "backlog").
//  - Transmitter (transmit_timer, every jiffy): paces DATA out of the
//    window under the rate budget, checks whether the window can be
//    advanced, and unicasts PROBEs to receivers the sender lacks
//    information about before releasing buffer space.
//  - Feedback Processor (hrmc_master_rcv): NAKs, CONTROL (rate requests)
//    and UPDATEs; every one refreshes the per-receiver membership state.
//  - Retransmitter (retrans_timer): services the retransmission request
//    list, with duplicate-request collapsing.
//  - Keepalive Controller (ka_timer): KEEPALIVEs with exponential backoff
//    during idle periods and window stalls.
//
// Mode::kRmc disables membership gating: buffers release unconditionally
// after MINBUF RTTs and unsatisfiable NAKs earn a NAK_ERR — the original
// RMC protocol, used as the baseline throughout the evaluation.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "hrmc/config.hpp"
#include "hrmc/fec.hpp"
#include "hrmc/member.hpp"
#include "hrmc/rate.hpp"
#include "hrmc/rtt.hpp"
#include "hrmc/stats.hpp"
#include "hrmc/wire.hpp"
#include "kern/timer.hpp"
#include "net/host.hpp"
#include "trace/trace.hpp"

namespace hrmc::proto {

class HrmcSender final : public net::Transport {
 public:
  /// Binds to `local.port` on `host` and targets multicast `group`.
  HrmcSender(net::Host& host, const Config& cfg, net::Port local_port,
             net::Endpoint group);
  ~HrmcSender() override;

  HrmcSender(const HrmcSender&) = delete;
  HrmcSender& operator=(const HrmcSender&) = delete;

  // --- Application interface (hrmc_sendmsg / close) ---

  /// Appends bytes to the outgoing stream. Accepts at most the free send
  /// buffer space; returns the number of bytes taken (0 = would block).
  /// `on_writable` fires when space frees up.
  std::size_t send(std::span<const std::uint8_t> data);

  /// No more data. The final DATA packet carries FIN; if everything was
  /// already transmitted, KEEPALIVEs carry FIN so receivers still learn
  /// the end of stream.
  void close();

  /// Cancels all timers. The keepalive controller otherwise runs for the
  /// life of the socket (as in the driver), which would keep an
  /// open-ended simulation from draining its event queue.
  void stop();

  /// All data (and FIN) accepted, transmitted, and released from the
  /// send buffer. Under Mode::kHrmc release implies every member
  /// confirmed reception, so this is "everyone has everything".
  [[nodiscard]] bool finished() const;

  [[nodiscard]] std::size_t free_space() const {
    return cfg_.sndbuf - queued_bytes_;
  }
  [[nodiscard]] std::size_t queued_bytes() const { return queued_bytes_; }

  /// Space-available callback (edge-triggered: fires when a release
  /// creates room in a previously full buffer).
  std::function<void()> on_writable;
  /// Fires once when finished() first becomes true.
  std::function<void()> on_finished;

  // --- Introspection for tests, benches and examples ---
  [[nodiscard]] const SenderStats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const MemberTable& members() const { return members_; }
  [[nodiscard]] std::uint32_t current_rate() const { return rate_.rate(); }
  [[nodiscard]] sim::SimTime srtt() const { return rtt_.srtt(); }
  [[nodiscard]] kern::Seq snd_wnd() const { return snd_wnd_; }
  [[nodiscard]] kern::Seq snd_nxt() const { return snd_nxt_; }
  [[nodiscard]] kern::Seq snd_sent() const { return snd_sent_; }
  [[nodiscard]] bool fin_queued() const { return fin_closed_; }

  /// Total time the send window has sat blocked past its hold time
  /// waiting on member information, including a stall still open now.
  /// stop() folds any open stall into SenderStats::window_stall_time,
  /// so after shutdown the counter and this accessor agree.
  [[nodiscard]] sim::SimTime window_stall_time() const;
  [[nodiscard]] bool window_stalled() const { return stall_since_ >= 0; }

  /// Attaches a trace sink; every protocol event of interest (send,
  /// retransmit, release, probe, rate change, stall, eviction) is
  /// emitted through it. A default sink is inert.
  void set_trace(trace::TraceSink sink) { trace_ = sink; }

  // --- net::Transport (hrmc_master_rcv entry) ---
  void rx(kern::SkBuffPtr skb) override;

 private:
  /// One DATA packet in the send window.
  struct TxRecord {
    kern::Seq seq_begin = 0;
    kern::Seq seq_end = 0;  ///< one past the last byte
    kern::SkBuffPtr payload;
    sim::SimTime first_sent = 0;
    sim::SimTime last_sent = 0;
    sim::SimTime last_retrans = kNever;
    std::uint8_t tries = 0;
    bool sent = false;
    bool fin = false;
    bool release_counted = false;  ///< Fig 3 metric: count each packet once
  };
  static constexpr sim::SimTime kNever = -(1LL << 60);

  struct RetransRange {
    kern::Seq from = 0;
    kern::Seq to = 0;
  };

  /// Send-time bookkeeping retained past buffer release, so feedback
  /// that references already-released data can still produce an RTT
  /// sample (crucial for RMC mode on long paths: without it the very
  /// feedback that proves the hold time too short carries no timing).
  struct SentLogEntry {
    kern::Seq begin = 0;
    kern::Seq end = 0;
    sim::SimTime last_sent = 0;
    std::uint8_t tries = 0;
  };

  [[nodiscard]] std::size_t payload_len(const TxRecord& r) const {
    return static_cast<std::size_t>(kern::seq_diff(r.seq_begin, r.seq_end));
  }

  // Transmitter machinery.
  void arm_transmit_timer();
  void transmit_pump();
  std::uint64_t service_retransmissions(std::uint64_t budget);
  std::uint64_t send_new_data(std::uint64_t budget);
  void try_advance_window();
  void probe_lacking_members(kern::Seq release_seq);
  /// Rebuilds the cached lacking set when the release gate moved or the
  /// membership changed; otherwise the cache (compacted incrementally as
  /// members advance past the gate) is reused, so a probe or eviction
  /// round over a mostly-caught-up group costs O(still-lacking), not
  /// O(members) — the "no O(members) scan per event" churn requirement.
  void refresh_lacking(kern::Seq release_seq);
  /// Dead-member handling at the release gate. Returns true when the
  /// head may release despite incomplete information (members evicted
  /// under kEvict, or every lacking member dead under kRmcFallback).
  bool resolve_dead_members(kern::Seq release_seq);
  [[nodiscard]] bool member_dead(const McMember& m) const {
    return m.probe_pending && m.probe_retries >= cfg_.max_probe_retries;
  }
  /// Per-member probe spacing: the base interval grown by the
  /// configured backoff for each unanswered retry.
  [[nodiscard]] sim::SimTime probe_spacing(const McMember& m) const;
  void transmit_record(TxRecord& rec, bool retransmission);

  // Feedback processing.
  void process_nak(const Header& h, net::Addr from);
  void process_control(const Header& h, net::Addr from);
  void process_update(const Header& h, net::Addr from);
  /// AGG_UPDATE from a subtree repairer or a modeled population: seq is
  /// the subtree *minimum*, rate the represented leaf count. The only
  /// feedback path allowed to regress a membership record.
  void process_agg_update(const Header& h, net::Addr from);
  void process_join(const Header& h, net::Addr from);
  void process_leave(const Header& h, net::Addr from);
  McMember* refresh_member(net::Addr addr, kern::Seq next_expected,
                           bool solicited);
  /// Returns false if no window record covers `seq` (nothing to time).
  bool take_rtt_sample_for(kern::Seq seq, sim::SimTime now);
  /// Most recent transmission time of the packet containing `seq`
  /// (window first, then the released-data log); -1 if unknown.
  [[nodiscard]] sim::SimTime send_time_of(kern::Seq seq) const;

  /// Whether RTT should be estimated from data-referencing feedback
  /// (NAK / CONTROL / JOIN send-time lookups). In H-RMC mode, solicited
  /// PROBE responses are the authoritative, unambiguous RTT source, so
  /// feedback timing is used only to bootstrap the estimator; a
  /// receiver catching up on old data would otherwise feed arbitrarily
  /// stale "samples". RMC mode has no probes and must rely on feedback
  /// timing throughout, as the paper describes.
  [[nodiscard]] bool feedback_timing_wanted() const {
    return cfg_.mode == Mode::kRmc || !rtt_.seeded();
  }
  void queue_retransmission(kern::Seq from, kern::Seq to);

  // Keepalive controller.
  void keepalive_fire();
  void note_forward_activity();
  void maybe_report_finished();

  // Memory-pressure degradation (DESIGN.md §16). A refused payload
  // allocation is treated like a full send buffer — the application
  // blocks and is re-kicked from a capped exponential-backoff timer
  // (releases also fire on_writable, so recovery takes whichever
  // happens first).
  [[nodiscard]] std::size_t window_block_bytes() const {
    return cfg_.mss + Header::kSize + 44;
  }
  bool charge_send_window();
  void alloc_retry_fire();

  // Batched membership admission (flash crowds).
  void join_batch_flush();

  // Packet construction.
  void emit_control_packet(PacketType type, net::Addr dst_addr,
                           kern::Seq seq, std::uint32_t rate,
                           std::uint32_t length, bool urg = false,
                           bool fin = false);

  net::Host& host_;
  Config cfg_;
  net::Port local_port_;
  net::Endpoint group_;

  // Send window (write_queue): records [0, first_unsent_) are in flight
  // or released-pending; [first_unsent_, size) are the backlog.
  std::deque<TxRecord> write_queue_;
  std::size_t first_unsent_ = 0;
  std::size_t queued_bytes_ = 0;

  kern::Seq snd_wnd_ = 0;   ///< first byte still buffered
  kern::Seq snd_nxt_ = 0;   ///< next byte to assign
  kern::Seq snd_sent_ = 0;  ///< end of highest byte sent
  bool fin_closed_ = false;
  bool finished_reported_ = false;

  MemberTable members_;
  // Departure tombstones: a LEAVE removes the member, but its feedback
  // already in flight (or a probe answer from the half-closed peer)
  // would re-admit it through refresh_member's adoption path — and a
  // resurrected ghost never advances, stalling the window forever
  // under kStall. Addresses stay unadoptable for a grace window; an
  // explicit re-JOIN clears the tombstone immediately.
  std::unordered_map<net::Addr, sim::SimTime> recently_left_;
  RateController rate_;
  RttEstimator rtt_;
  SenderStats stats_;
  trace::TraceSink trace_;

  // FEC accumulation (extension; active when cfg_.fec_group > 0):
  // GF(256) Reed–Solomon parity rows (fec.hpp; row 0 is the plain XOR)
  // over the current group of first transmissions. A sub-MSS packet or
  // the stream FIN flushes the open group over the bytes it actually
  // covers — absent tail shards are implicitly zero — so transfer
  // tails and short transfers are protected too. Both return the
  // parity bytes put on the wire so the pump charges them against the
  // pacing budget (rate conformance including parity, invariant 3).
  std::uint64_t fec_accumulate(const TxRecord& rec);
  std::uint64_t fec_flush();
  void fec_reset() { fec_count_ = 0; }
  /// Data shards per group, clamped to the codec's table bound.
  [[nodiscard]] std::size_t fec_effective_group() const {
    return std::min(cfg_.fec_group, fec::kMaxGroup);
  }
  /// Parity rows for the next group: the adaptive rate when the
  /// controller runs, the configured floor otherwise.
  [[nodiscard]] std::size_t fec_parity_rows() const;
  /// Per-epoch adaptive parity-rate controller (DESIGN.md §15): driven
  /// by the loss the feedback channel already reports — NAK volume per
  /// data packet plus the AGG_UPDATE subtree-minimum lag — clamped to
  /// [fec_parity_min, fec_parity_max], damped to one step per epoch,
  /// decreases additionally held for fec_hysteresis_epochs.
  void fec_adapt_fire();
  [[nodiscard]] kern::Jiffies fec_adapt_jiffies() const;
  std::vector<std::vector<std::uint8_t>> fec_parity_;
  std::size_t fec_count_ = 0;
  kern::Seq fec_begin_ = 0;
  std::uint64_t fec_bytes_ = 0;     ///< bytes covered by the open group
  std::size_t fec_rate_r_ = 1;      ///< current adaptive parity count
  std::uint64_t fec_epoch_naks_ = 0;
  std::uint64_t fec_epoch_packets_ = 0;
  int fec_low_epochs_ = 0;          ///< consecutive under-target epochs
  kern::Seq fec_epoch_min_ = 0;     ///< subtree minimum at last epoch
  bool fec_min_valid_ = false;      ///< fec_epoch_min_ has been sampled
  int fec_min_stalled_ = 0;         ///< consecutive epochs min not moving

  /// Start of the current release-gate stall (-1 = not stalled): set
  /// when the head's hold has expired but member information is
  /// incomplete, cleared (and accumulated into stats) when it releases.
  sim::SimTime stall_since_ = -1;

  // Lacking-set cache (see refresh_lacking): member addresses still
  // below lacking_gate_, valid for one (gate, membership version) pair.
  std::vector<net::Addr> lacking_cache_;
  kern::Seq lacking_gate_ = 0;
  std::uint64_t lacking_version_ = 0;
  bool lacking_valid_ = false;
  /// Rotating start index for capped probe rounds, so members deferred
  /// by Config::max_probes_per_round are first in line next round.
  std::size_t probe_cursor_ = 0;

  // Join-batching state (active when cfg_.join_batch_threshold > 0):
  // JOINs arriving in one burst beyond the threshold are answered with
  // a single multicast JOIN_RESPONSE on the next jiffy instead of a
  // per-JOIN unicast — a 10k-JOIN flash crowd costs one table insert
  // per JOIN plus one control packet total, and cannot melt the tx ring.
  std::size_t joins_since_flush_ = 0;
  sim::SimTime last_join_at_ = kNever;
  bool join_batch_pending_ = false;

  std::vector<RetransRange> retrans_queue_;
  std::deque<SentLogEntry> sent_log_;
  std::uint64_t budget_carry_ = 0;
  sim::SimTime last_pump_ = 0;
  std::size_t dev_credit_ = 0;  ///< per-pump device-queue allowance

  static constexpr std::size_t kSentLogCap = 4096;

  kern::TimerList transmit_timer_;
  kern::TimerList retrans_timer_;
  kern::TimerList ka_timer_;
  kern::TimerList join_batch_timer_;
  kern::TimerList fec_adapt_timer_;
  kern::TimerList alloc_retry_timer_;
  /// Current backoff period; 0 until an allocation is refused, reset to
  /// 0 by the next success.
  kern::Jiffies alloc_retry_period_ = 0;
  kern::Jiffies ka_period_;
  sim::SimTime last_forward_send_ = 0;
};

}  // namespace hrmc::proto
