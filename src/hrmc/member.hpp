// Group-membership state at the sender.
//
// The paper (§3, "Membership Maintenance"): membership is kept "in the
// form of a doubly linked list as well as a hashed list of all the
// receivers", and per receiver the sender stores only the unicast IP
// address and the next sequence number that receiver is expecting —
// refreshed by every NAK, rate request, and UPDATE that arrives. We keep
// the same structure: an intrusive doubly-linked list threading all
// members (for full scans at buffer-release time) plus hash chaining by
// address (for O(1) feedback processing).
//
// Million-receiver extension: the table is additionally *sharded by
// subtree* (the /16 prefix of the member address, which the simulated
// topology assigns per router subtree). Each shard keeps its own cached
// (min next_expected, multiplicity) pair, so the release-safety minimum
// is the min over at most kShardCount shard caches — O(shards), never
// O(members) — and a departure storm invalidates only the shards it
// touches. Members also carry a `multiplicity`: an aggregated record
// (a local repairer or a modeled receiver population) counts as that
// many leaves without that many table entries.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "kern/seq.hpp"
#include "net/addr.hpp"
#include "sim/time.hpp"

namespace hrmc::proto {

/// Per-receiver record (struct mc_member in the driver).
struct McMember {
  net::Addr addr = 0;
  /// Next byte this receiver expects, as most recently reported. The
  /// sender knows the receiver holds everything before this. Mutate
  /// only through MemberTable::advance() / set_position() — the table
  /// keeps cached per-shard minima over this field that direct writes
  /// would corrupt.
  kern::Seq next_expected = 0;
  /// Leaves this record stands for: 1 for an ordinary receiver, >1 for
  /// an aggregating repairer or modeled population. next_expected is
  /// then the *minimum* over the represented leaves.
  std::uint32_t multiplicity = 1;
  /// True once any feedback has arrived from this receiver; before that
  /// `next_expected` is only an optimistic initial value.
  bool heard_from = false;
  sim::SimTime last_heard = 0;
  /// Last time a PROBE was unicast to this member (probe pacing).
  sim::SimTime last_probed = -1;
  /// True while a probe is outstanding (sent, not yet answered). This is
  /// the authoritative "probe in flight" flag: probe_seq == 0 is a valid
  /// gate position once the stream wraps, so it cannot double as one.
  bool probe_pending = false;
  /// Sequence the outstanding probe asked about (meaningful only while
  /// probe_pending).
  kern::Seq probe_seq = 0;
  /// Consecutive probes re-sent without any answer; resets to 0 the
  /// moment the outstanding probe is answered. Reaching
  /// Config::max_probe_retries declares the member dead.
  int probe_retries = 0;

  // Intrusive links.
  McMember* next = nullptr;        ///< doubly linked list of all members
  McMember* prev = nullptr;
  McMember* hash_next = nullptr;   ///< hash chain
  McMember* shard_next = nullptr;  ///< per-subtree shard list
  McMember* shard_prev = nullptr;
  std::uint8_t shard = 0;          ///< owning shard index
};

/// RMC_HTABLE_SIZE in the driver.
inline constexpr std::size_t kHashTableSize = 64;

/// Subtree shards for the release-minimum cache. 64 keeps the release
/// check a fixed small scan while still separating the topology's
/// per-group /16 subtrees (hash-distributed, so unrelated subtrees only
/// share a shard incidentally).
inline constexpr std::size_t kShardCount = 64;

class MemberTable {
 public:
  MemberTable() = default;
  ~MemberTable();
  MemberTable(const MemberTable&) = delete;
  MemberTable& operator=(const MemberTable&) = delete;

  /// Adds a member (add_member in the driver). Returns the record; if the
  /// address is already present, returns the existing record untouched.
  McMember* add(net::Addr addr, kern::Seq initial_expected);

  /// Removes a member (rm_member). Returns true if it was present.
  bool remove(net::Addr addr);

  /// O(1) lookup by receiver address.
  [[nodiscard]] McMember* find(net::Addr addr);
  [[nodiscard]] const McMember* find(net::Addr addr) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Leaves represented: Σ multiplicity over all records.
  [[nodiscard]] std::uint64_t total_weight() const { return total_weight_; }

  /// Visits every member in list order; the visitor may not add/remove.
  void for_each(const std::function<void(McMember&)>& fn);
  void for_each(const std::function<void(const McMember&)>& fn) const;

  /// Raises `m->next_expected` to `reported` (monotonic: a stale or
  /// equal report is a no-op). Returns true if it advanced.
  bool advance(McMember* m, kern::Seq reported);

  /// Moves `m->next_expected` to `seq` in either direction, keeping the
  /// shard cache coherent. Regression is legitimate only for aggregated
  /// records: a repairer's subtree minimum drops when a laggard child
  /// registers under it. Returns true if the position changed.
  bool set_position(McMember* m, kern::Seq seq);

  /// Updates the leaf count an aggregated record stands for.
  void set_multiplicity(McMember* m, std::uint32_t multiplicity);

  /// Smallest next_expected over all members, i.e. the stream position
  /// the slowest (as far as the sender knows) receiver has reached.
  /// Returns `fallback` when the table is empty. O(shards) per query:
  /// each shard serves its cached (min, count) pair; a shard rescans
  /// only when the last member *at* its minimum advances or leaves —
  /// i.e. when that subtree's slowest receiver moves, not per query.
  [[nodiscard]] kern::Seq min_next_expected(kern::Seq fallback) const;

  /// True if every member is known to have received all bytes before
  /// `seq` (the release-safety predicate of §3, "Probe Messages").
  [[nodiscard]] bool all_have(kern::Seq seq) const;

  /// Shard rescans taken / members visited by them, for the sublinearity
  /// bound in tests: rescan_work stays O(members + advances), far below
  /// the O(members * packets) of the uncached scan.
  [[nodiscard]] std::uint64_t min_rescans() const { return min_rescans_; }
  [[nodiscard]] std::uint64_t min_rescan_work() const {
    return min_rescan_work_;
  }

  /// Bumped by every add/remove; lets callers cache membership-derived
  /// sets (the sender's lacking list) and rebuild only on change.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Subtree shard an address lands in (public for tests/benches).
  static std::size_t shard_of(net::Addr addr) {
    // The /16 prefix is the router subtree in the simulated topology;
    // Knuth multiplicative hash spreads prefixes over the shards.
    return (static_cast<std::uint32_t>(addr >> 16) * 2654435761u) >> 26 &
           (kShardCount - 1);
  }

 private:
  struct Shard {
    McMember* head = nullptr;
    std::size_t size = 0;
    // Cached minimum: valid means cached_min is the exact shard minimum
    // and min_count members of this shard currently sit at it.
    mutable kern::Seq cached_min = 0;
    mutable std::size_t min_count = 0;
    mutable bool min_valid = false;
  };

  static std::size_t bucket(net::Addr addr) {
    // Knuth multiplicative hash; low bits of addr are the host number.
    return (addr * 2654435761u) >> 26 & (kHashTableSize - 1);
  }

  void rescan_shard(const Shard& s) const;

  McMember* head_ = nullptr;  ///< doubly linked list of all members
  McMember* hash_[kHashTableSize] = {};
  Shard shards_[kShardCount];
  std::size_t size_ = 0;
  std::uint64_t total_weight_ = 0;
  std::uint64_t version_ = 0;

  mutable std::uint64_t min_rescans_ = 0;
  mutable std::uint64_t min_rescan_work_ = 0;
};

}  // namespace hrmc::proto
