// Protocol tuning knobs.
//
// Defaults reproduce the configuration described in the paper; the
// constants the paper does not pin down are documented in DESIGN.md §5.
#pragma once

#include <cstdint>

#include "kern/jiffies.hpp"
#include "kern/seq.hpp"
#include "sim/time.hpp"

namespace hrmc::proto {

/// Reliability mode: the original RMC protocol (pure NAK, unconditional
/// buffer release, NAK_ERR on unsatisfiable requests) or the H-RMC hybrid
/// (membership + UPDATE + PROBE, release gated on complete information).
enum class Mode {
  kRmc,
  kHrmc,
};

/// What the sender does with a member that stops answering PROBEs (the
/// paper never addresses this: its release gate waits on *every* member,
/// so one silently crashed receiver stalls the window for everyone).
enum class EvictionPolicy {
  /// Paper-faithful: keep probing (with backoff) and never advance the
  /// window past data the dead member is still owed.
  kStall,
  /// Drop the member from the table after max_probe_retries unanswered
  /// probes; the window frees and the survivors proceed. A receiver that
  /// was merely partitioned can re-JOIN and resync.
  kEvict,
  /// Keep the member but stop gating releases on it: data it is owed
  /// releases unconditionally, exactly as baseline RMC would, and a
  /// late NAK for it earns a NAK_ERR.
  kRmcFallback,
};

struct Config {
  Mode mode = Mode::kHrmc;

  // --- Buffers (the independent variable of most figures) ---
  std::size_t sndbuf = 256 * 1024;  ///< send-side kernel buffer, bytes
  std::size_t rcvbuf = 256 * 1024;  ///< receive-side kernel buffer, bytes

  // --- Segmentation ---
  /// Data bytes per DATA packet: 1500 MTU - 20 IP - 20 H-RMC.
  std::size_t mss = 1460;

  // --- Window-based flow control (§2) ---
  /// Minimum number of RTTs a data packet stays buffered after its most
  /// recent transmission before it may be released (paper: 10).
  int minbuf_rtts = 10;

  /// Receive-window headroom horizon for warning-region rate requests
  /// (paper: 4 RTTs).
  int warnbuf_rtts = 4;

  /// Receive-window occupancy fractions where the warning / critical
  /// regions begin (paper defines the regions, not the fractions).
  double warn_fraction = 0.50;
  double crit_fraction = 0.90;

  // --- Rate-based flow control ---
  /// Floor / restart transmission rate in bytes per second.
  std::uint32_t min_rate = 16 * 1024;
  /// Rate cap in bytes per second. Deliberately far above any simulated
  /// link: the paper's sender is capped by buffers and feedback, not by
  /// knowledge of link speed (this is what exposes NIC drops in Fig 13).
  std::uint32_t max_rate = 125'000'000;
  /// Jiffies between urgent-stop resumption checks; forward transmission
  /// halts for 2 RTTs after an URG rate request (paper §2).
  int urgent_stop_rtts = 2;

  // --- Timers ---
  /// Initial update period (paper: 50 jiffies = 0.5 s).
  kern::Jiffies update_period_init = 50;
  /// Dynamic update-period bounds (paper: ±1 jiffy per period, linear).
  kern::Jiffies update_period_min = 2;
  kern::Jiffies update_period_max = 200;
  /// Fixed update period when false (the paper's "original design").
  bool dynamic_update_timer = true;

  /// Keepalive: exponential backoff from 2 jiffies up to 2 s (paper caps
  /// at 2 s).
  kern::Jiffies keepalive_init = 2;
  kern::Jiffies keepalive_max = 200;

  // --- RTT estimation ---
  /// One jiffy: optimistic, so the first buffer-release attempts happen
  /// early and the resulting PROBE responses seed the estimator with
  /// real samples (a pessimistic initial value never gets corrected on a
  /// loss-free network, freezing the protocol in 10×100 ms holds).
  sim::SimTime initial_rtt = sim::milliseconds(10);
  sim::SimTime min_rtt_clamp = sim::microseconds(200);

  // --- NAK handling ---
  /// Receiver NAK suppression: a pending NAK is not re-sent until this
  /// many RTTs have elapsed (documented choice; paper says "appropriate
  /// intervals").
  double nak_resend_rtts = 1.5;
  /// Sender collapses duplicate retransmission requests arriving within
  /// this fraction of an RTT of a prior retransmission of the same data.
  double retrans_dedup_rtts = 0.5;
  /// Rate is halved at most once per RTT regardless of how many NAKs /
  /// warnings arrive within it (standard multiplicative-decrease rule).
  double rate_cut_holdoff_rtts = 1.0;

  // --- Probing ---
  /// Minimum spacing between PROBEs to the same receiver.
  double probe_interval_rtts = 1.0;
  /// Cap on unicast PROBEs emitted per release attempt (one scheduler
  /// event). A cold 10k-member table owes 10k probes; without the cap
  /// they leave as one 10k-packet burst in a single jiffy. Deferred
  /// members are picked up by the next release attempt via a rotating
  /// cursor, so every member is still probed within O(lacking / cap)
  /// rounds with the existing retry backoff intact. 0 disables the cap.
  std::size_t max_probes_per_round = 128;

  // --- Failure detection and recovery (robustness extension) ---
  /// Policy once a member exhausts its probe-retry budget.
  EvictionPolicy eviction_policy = EvictionPolicy::kStall;
  /// Consecutive unanswered PROBEs before a member is declared dead.
  int max_probe_retries = 8;
  /// Probe-spacing growth per unanswered retry. 1.0 = fixed spacing,
  /// which is exactly the pre-extension behavior (the default, so
  /// fault-free runs are unchanged); 2.0 = classic exponential backoff.
  double probe_backoff = 1.0;
  /// Cap on the backoff exponent (bounds both the spacing and pow()).
  int probe_backoff_cap = 6;

  // --- Dynamic-network resilience (robustness extension; off by default,
  // so fault-free runs are bit-identical to the unextended protocol) ---
  /// Flash-crowd admission batching: when more than this many JOINs land
  /// within one jiffy of each other, the sender stops unicasting a
  /// JOIN_RESPONSE per JOIN and instead multicasts a single response on
  /// the next jiffy — a 10k-JOIN storm inside one RTT costs one O(1)
  /// table insert per JOIN plus one control packet total. 0 disables.
  std::size_t join_batch_threshold = 0;
  /// Receiver stalled-data watchdog: if no DATA / FEC / KEEPALIVE has
  /// arrived for this long mid-stream, the receiver assumes its branch of
  /// the tree was repaired around it (link flap, route reconvergence) and
  /// re-grafts: re-JOINs the group at the IGMP layer and re-sends a
  /// normal JOIN so the sender refreshes its record. 0 disables.
  sim::SimTime data_stall_timeout = 0;

  // --- Million-receiver scaling (hierarchical repair + SRM suppression;
  // off by default, so flat-topology runs are bit-identical) ---
  /// SRM-style NAK suppression: a fresh hole's first NAK is delayed by a
  /// uniform random backoff in [0, nak_backoff_rtts * srtt]; a NAK for
  /// an overlapping range overheard from another group member (receivers
  /// multicast a copy of each NAK into their subtree) re-defers it, so
  /// a shared upstream loss costs one NAK per subtree, not one per leaf.
  bool nak_suppression = false;
  /// Backoff window width, in smoothed RTTs.
  double nak_backoff_rtts = 1.0;
  /// Root seed for the receiver-local suppression RNG (drawn only while
  /// nak_suppression is on; per-receiver substreams are derived from it
  /// and the receiver address, so runs stay deterministic).
  std::uint64_t feedback_seed = 0;

  /// Local-repairer payload cache, in packets (most recently received
  /// DATA payloads kept for answering child NAKs). Bounds repairer
  /// memory; older losses fall through to the sender as forwarded NAKs.
  std::size_t repair_cache_packets = 256;
  /// Byte bound on the same cache, applied alongside the packet bound
  /// (LRU eviction from the front). 0 = packet bound only (the default,
  /// so existing runs are unchanged).
  std::size_t repair_cache_bytes = 0;
  /// A registered child silent for this long is dropped from the
  /// repairer's aggregate (its leaves stop counting toward the subtree
  /// multiplicity; the sender's own tombstone machinery handles the
  /// membership record).
  sim::SimTime repair_child_timeout = sim::seconds(5);
  /// Child-side failover: after this many NAK re-sends of the same range
  /// without progress through the repairer, the child re-homes to the
  /// sender (and re-JOINs there). Guards against a crashed repairer.
  int repair_failover_naks = 3;

  // --- Optional extensions (§6 future work; off by default) ---
  /// (1) Early probes: probe receivers when a packet is within this many
  /// RTTs of its release time instead of at release time, avoiding
  /// stop-and-wait with small buffers. 0 disables.
  int early_probe_rtts = 0;
  /// (2) Multicast the probe instead of unicasting when more than this
  /// many receivers need probing. 0 disables.
  std::size_t mcast_probe_threshold = 0;
  /// (4) Forward error correction for lossy (wireless-like) paths: the
  /// sender multicasts `r` GF(256) Reed–Solomon parity packets after
  /// every group of `fec_group` data packets (a group is cut short —
  /// and its parity flushed over the bytes actually covered — when a
  /// sub-MSS packet or end-of-stream interrupts it, so transfer tails
  /// and short transfers are protected too). Parity row 0 of the codec
  /// is the plain XOR, so r = 1 is bit-compatible with the original
  /// single-XOR scheme. A receiver missing up to `r` packets of a group
  /// reconstructs them locally from cached siblings and parities,
  /// without a NAK round trip; only groups whose losses exceed the
  /// parity budget fall back to NAKs (DESIGN.md §15). 0 disables.
  std::size_t fec_group = 0;
  /// Receiver-side payload cache for reconstruction, in FEC groups.
  std::size_t fec_cache_groups = 4;
  /// Parity packets per group when adaptation is off, and the floor the
  /// adaptive controller never goes below. Clamped to fec::kMaxParity.
  std::size_t fec_parity_min = 1;
  /// Ceiling for the adaptive parity rate (<= fec::kMaxParity).
  std::size_t fec_parity_max = 1;
  /// Adaptation epoch: every this often the sender re-targets the
  /// parity rate from the loss it observes on the feedback channel
  /// (NAK volume per data packet, plus AGG_UPDATE subtree-minimum lag).
  /// Moves are damped to one step per epoch, and decreases additionally
  /// wait fec_hysteresis_epochs of consecutive under-target epochs.
  /// 0 disables adaptation (fixed r = fec_parity_min).
  sim::SimTime fec_adapt_interval = 0;
  /// Consecutive quiet epochs before the parity rate steps down.
  int fec_hysteresis_epochs = 2;

  // --- Memory-pressure robustness (off unless the harness installs a
  // kern::MemAccountant on the host; see DESIGN.md §16) ---
  /// Sender alloc-retry backoff: after a refused payload allocation the
  /// sender re-kicks the application from a timer whose period doubles
  /// from alloc_retry_init up to alloc_retry_max jiffies, resetting on
  /// the first successful allocation (capped exponential backoff, like
  /// the kernel's __GFP_RETRY paths).
  kern::Jiffies alloc_retry_init = 1;
  kern::Jiffies alloc_retry_max = 64;

  /// Initial sequence number of every stream (both endpoints assume it;
  /// a production protocol would carry it in JOIN_RESPONSE). Configurable
  /// so tests can start a stream just below the 2^32 wrap.
  static constexpr kern::Seq kInitialSeq = 1;
  kern::Seq initial_seq = kInitialSeq;
};

}  // namespace hrmc::proto
