#include "hrmc/receiver.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <string>

#include "hrmc/repairer.hpp"

namespace hrmc::proto {

using kern::Seq;
using kern::seq_after;
using kern::seq_after_eq;
using kern::seq_before;
using kern::seq_before_eq;
using kern::seq_diff;
using kern::seq_max;
using kern::seq_min;

namespace {
constexpr int kMaxJoinTries = 20;
constexpr kern::Jiffies kJoinRetryJiffies = 50;  // 0.5 s
// LEAVE retries never give up (capped exponential backoff instead): a
// departure lost to a blackout window would otherwise leave a ghost
// member stalling the sender's window forever under kStall.
constexpr int kLeaveBackoffCap = 4;  // 50 << 4 jiffies = 8 s between tries
// Re-home retry cadence for a departing repairer: wait for the
// children's detach acks (~one subtree RTT) between multicast LEAVE
// rounds, with a ~1 s total budget before leaving anyway — the residual
// orphan risk is bounded by the sender's release hold time.
constexpr kern::Jiffies kRehomeRetryJiffies = 5;  // 50 ms
constexpr int kRehomeTriesMax = 20;
}  // namespace

HrmcReceiver::HrmcReceiver(net::Host& host, const Config& cfg,
                           net::Endpoint group, net::Addr sender_hint)
    : host_(host),
      cfg_(cfg),
      group_(group),
      sender_addr_(sender_hint),
      rtt_(cfg.initial_rtt, cfg.min_rtt_clamp),
      nak_timer_(host.scheduler(), [this] { nak_timer_fire(); }),
      update_timer_(host.scheduler(), [this] { update_timer_fire(); }),
      join_timer_(host.scheduler(), [this] { join_timer_fire(); }),
      update_period_(cfg.update_period_init),
      feedback_rng_(sim::substream_seed(
          sim::substream_seed(cfg.feedback_seed, "nak-backoff"),
          std::to_string(host.addr()))) {
  rcv_wnd_ = rcv_nxt_ = cfg_.initial_seq;
  fec_anchor_ = cfg_.initial_seq;
}

HrmcReceiver::~HrmcReceiver() {
  host_.unregister_transport(kIpProtoHrmc);
}

void HrmcReceiver::open() {
  host_.register_transport(kIpProtoHrmc, this);
  host_.join_group(group_.addr);
  if (sender_addr_ != 0) send_join();
}

void HrmcReceiver::open_resync() {
  host_.register_transport(kIpProtoHrmc, this);
  host_.join_group(group_.addr);
  resync_pending_ = true;
  if (sender_addr_ != 0) send_join();
  // Sender unknown: the resync JOIN goes out from rx() when the first
  // multicast packet reveals its address, exactly as after restart().
}

void HrmcReceiver::close() {
  if (join_state_ == JoinState::kLeaving || join_state_ == JoinState::kLeft) {
    return;
  }
  // A repairer must not orphan its subtree: its clean LEAVE removes the
  // only sender-side record gating the children's positions, so a
  // laggard child's bytes could be released before its NAK-failover
  // re-registers it. Re-home the children first — a subtree-scoped
  // multicast LEAVE tells them to fail over to the sender now — and
  // defer our own leave until they detach (each acks with a unicast
  // LEAVE) or a bounded retry budget runs out.
  if (repair_ != nullptr && repair_->child_count() > 0 &&
      sender_addr_ != 0 && rehome_tries_ < kRehomeTriesMax) {
    ++rehome_tries_;
    emit_to(group_.addr, PacketType::kLeave, report_position(), 0, 0);
    join_timer_.mod_timer_in(kRehomeRetryJiffies);
    return;
  }
  trace_.emit(trace::EventKind::kLeave, rcv_nxt_, rcv_nxt_, host_.addr());
  host_.leave_group(group_.addr);
  if (sender_addr_ != 0) {
    join_state_ = JoinState::kLeaving;
    leave_tries_ = 0;
    send_leave();
  } else {
    join_state_ = JoinState::kLeft;
  }
  update_timer_.del_timer();
  nak_timer_.del_timer();
}

void HrmcReceiver::stop() {
  nak_timer_.del_timer();
  update_timer_.del_timer();
  join_timer_.del_timer();
  if (repair_) repair_->stop();
}

// --------------------------------------------------------------------
// Hierarchical repair role wiring
// --------------------------------------------------------------------

void HrmcReceiver::enable_repairer() {
  if (!repair_) repair_ = std::make_unique<RepairAgent>(*this);
}

void HrmcReceiver::set_repair_parent(net::Addr parent) {
  repair_parent_ = parent;
  repair_failed_over_ = false;
}

Seq HrmcReceiver::report_position() const {
  if (!repair_) return rcv_nxt_;
  return repair_->subtree_min(rcv_nxt_);
}

// --------------------------------------------------------------------
// Crash / restart (fault injection)
// --------------------------------------------------------------------

void HrmcReceiver::crash() {
  if (crashed_) return;
  crashed_ = true;
  stop();
  receive_queue_.clear();
  mem_uncharge(kern::MemComponent::kReassembly, ooo_bytes_);
  out_of_order_queue_.clear();
  ooo_bytes_ = 0;
  nak_list_.clear();
  mem_uncharge_fec_caches();
  fec_cache_.clear();
  fec_parity_cache_.clear();
  fec_fail_noted_ = false;
  fin_seq_.reset();
  complete_reported_ = false;
  resync_pending_ = false;
  join_state_ = JoinState::kIdle;
  join_tries_ = 0;
  last_data_at_ = -1;
  interarrival_ = 0;
  // Repairer role: the child table and payload cache are volatile (the
  // children re-register via their own recovery); a prior failover away
  // from a dead parent is forgotten — the restart resync re-homes to
  // the configured parent, failing over again only if it stays dead.
  if (repair_) repair_->clear();
  repair_failed_over_ = false;
  // rcv_nxt_/rcv_wnd_ stay as stale markers until restart() resyncs;
  // nothing reads them while crashed_ (rx() drops everything).
}

void HrmcReceiver::restart() {
  if (!crashed_) return;
  crashed_ = false;
  resync_pending_ = true;
  update_period_ = cfg_.update_period_init;
  probe_seen_this_period_ = false;
  // Multicast subscription: the crash never sent an IGMP leave, so the
  // router kept forwarding; re-join is idempotent but covers a restart
  // after an explicit close().
  host_.join_group(group_.addr);
  if (sender_addr_ != 0) send_join();
  // If the sender is unknown (we crashed before its first packet), the
  // resync JOIN goes out from rx() when a packet reveals its address.
}

// --------------------------------------------------------------------
// Application interface (hrmc_recvmsg)
// --------------------------------------------------------------------

std::size_t HrmcReceiver::recv(std::span<std::uint8_t> out) {
  std::size_t copied = 0;
  while (copied < out.size() && !receive_queue_.empty()) {
    const kern::SkBuffPtr& front = receive_queue_.front();
    const std::size_t take =
        std::min(out.size() - copied, front->size());
    std::memcpy(out.data() + copied, front->data(), take);
    copied += take;
    if (take == front->size()) {
      receive_queue_.pop_front();
    } else {
      // Partial read: consume from the front of the segment. Adjust the
      // queue's byte accounting by re-inserting the trimmed buffer.
      kern::SkBuffPtr seg = receive_queue_.pop_front();
      seg->pull(take);
      receive_queue_.push_front(std::move(seg));
    }
  }
  rcv_wnd_ += static_cast<Seq>(copied);
  stats_.bytes_delivered += copied;
  return copied;
}

// --------------------------------------------------------------------
// Packet reception
// --------------------------------------------------------------------

void HrmcReceiver::rx(kern::SkBuffPtr skb) {
  // A crashed host cannot process anything (the simulated host already
  // drops at its boundary; this guards direct calls in tests).
  if (crashed_) return;
  auto h = read_header(*skb);
  if (!h || h->dport != group_.port) {
    stats_.bad_packets++;
    return;
  }
  const net::Addr from = skb->saddr;
  const bool unicast_to_me = skb->daddr == host_.addr();
  // Learn the sender's unicast address from its first packet; the JOIN
  // goes out "in response to the first data packet" (§2). Peer feedback
  // (child traffic homed to a repairer, or a subtree-multicast NAK copy
  // under suppression) originates at another *receiver* and must never
  // be mistaken for the sender.
  const bool peer_feedback =
      h->type == PacketType::kNak || h->type == PacketType::kUpdate ||
      h->type == PacketType::kAggUpdate || h->type == PacketType::kJoin ||
      h->type == PacketType::kLeave || h->type == PacketType::kControl;
  if (sender_addr_ == 0 && !peer_feedback && !net::is_multicast(from)) {
    sender_addr_ = from;
  }
  last_activity_at_ = host_.scheduler().now();
  if (resync_pending_) {
    // Post-restart limbo: rcv_nxt_ is a stale pre-crash value, so
    // processing DATA / KEEPALIVE / PROBE against it would emit
    // garbage feedback (worse: a stale UPDATE could re-stall the
    // sender's window). Only the JOIN_RESPONSE that re-anchors the
    // stream gets through.
    if (join_state_ == JoinState::kIdle && sender_addr_ != 0) {
      send_join();
    } else if (join_state_ == JoinState::kJoining && sender_addr_ != 0 &&
               host_.scheduler().now() - join_sent_at_ >= rtt_.rto()) {
      stats_.join_fast_retries++;
      send_join();
    }
    if (h->type != PacketType::kJoinResponse) return;
    process_join_response(*h);
    return;
  }
  if (join_state_ == JoinState::kLeaving || join_state_ == JoinState::kLeft) {
    // After close() this receiver is a ghost: answering a probe or
    // emitting an UPDATE would resurrect its membership at the sender
    // (refresh_member adopts feedback from unknown receivers) and
    // re-stall the window on a member that will never advance again.
    // Only the LEAVE handshake completion gets through.
    if (h->type == PacketType::kLeaveResponse) process_leave_response(*h);
    return;
  }
  if (join_state_ == JoinState::kIdle && sender_addr_ != 0 &&
      h->type == PacketType::kData) {
    send_join();
  } else if (join_state_ == JoinState::kJoining && sender_addr_ != 0 &&
             h->type == PacketType::kData &&
             host_.scheduler().now() - join_sent_at_ >= rtt_.rto()) {
    // DATA is flowing but the handshake is not: our JOIN or its
    // response was lost. The 0.5 s retry timer is slower than a short
    // transfer — the sender would run the whole stream against an
    // empty member table, release unconditionally (RMC-style), and
    // answer our eventual NAK with NAK_ERR. Data arrival is proof the
    // path works, so re-JOIN after an RTO instead of waiting it out.
    stats_.join_fast_retries++;
    send_join();
  }

  switch (h->type) {
    case PacketType::kData: process_data(*h, std::move(skb)); break;
    case PacketType::kFec: process_fec(*h, std::move(skb)); break;
    case PacketType::kProbe: process_probe(*h); break;
    case PacketType::kKeepalive: process_keepalive(*h); break;
    case PacketType::kJoinResponse: process_join_response(*h); break;
    case PacketType::kLeaveResponse: process_leave_response(*h); break;
    case PacketType::kNakErr: process_nak_err(*h); break;
    case PacketType::kNak:
      if (unicast_to_me && repair_) {
        // A child's NAK homed to us as its subtree repairer.
        repair_->handle_nak(*h, from);
      } else if (!unicast_to_me && cfg_.nak_suppression &&
                 from != host_.addr()) {
        // A peer's NAK overheard on the subtree multicast (SRM).
        process_peer_nak(*h, from);
      }
      break;
    case PacketType::kUpdate:
      if (unicast_to_me && repair_) {
        repair_->handle_update(*h, from, /*aggregated=*/false);
      } else {
        stats_.bad_packets++;
      }
      break;
    case PacketType::kAggUpdate:
      // A nested repairer reporting its whole subtree to us.
      if (unicast_to_me && repair_) {
        repair_->handle_update(*h, from, /*aggregated=*/true);
      } else {
        stats_.bad_packets++;
      }
      break;
    case PacketType::kJoin:
      if (unicast_to_me && repair_) {
        repair_->handle_join(*h, from);
      } else {
        stats_.bad_packets++;
      }
      break;
    case PacketType::kLeave:
      if (unicast_to_me && repair_) {
        repair_->handle_leave(*h, from);
      } else if (!unicast_to_me && from == repair_parent_ &&
                 from != host_.addr()) {
        // Subtree-scoped LEAVE from our repairer: it is departing and
        // re-homing us. Fail over to the sender immediately and ack
        // with a unicast detach LEAVE so it can count us out and
        // proceed with its own departure.
        if (!repair_failed_over_) {
          repair_failed_over_ = true;
          stats_.repair_failovers++;
        }
        emit_to(repair_parent_, PacketType::kLeave, rcv_nxt_, 0, 0);
        if (join_state_ == JoinState::kJoined ||
            join_state_ == JoinState::kJoining) {
          send_join();
        }
      } else if (unicast_to_me || from != host_.addr()) {
        // Our own multicast echo is not malformed traffic.
        stats_.bad_packets++;
      }
      break;
    case PacketType::kControl:
      if (unicast_to_me && repair_) {
        repair_->handle_control(*h, from);
      } else {
        stats_.bad_packets++;
      }
      break;
    default:
      stats_.bad_packets++;
      break;
  }
}

void HrmcReceiver::process_data(const Header& h, kern::SkBuffPtr skb) {
  if (skb->size() != h.length) {
    stats_.bad_packets++;
    return;
  }
  stats_.data_packets_received++;
  stats_.data_bytes_received += h.length;
  last_adv_rate_ = h.rate;
  const sim::SimTime now = host_.scheduler().now();
  if (last_data_at_ >= 0) {
    const sim::SimTime gap = now - last_data_at_;
    interarrival_ =
        interarrival_ == 0 ? gap : interarrival_ + (gap - interarrival_) / 8;
  }
  last_data_at_ = now;

  // A squeeze window can push the ledger over the effective budget
  // without any new charge (DESIGN.md §16): shed cached state before
  // taking on more.
  mem_relieve_pressure();

  Seq begin = h.seq;
  const Seq end = h.seq + h.length;
  if (h.fin) fin_seq_ = end;

  // FEC extension: remember data payloads so a later parity packet can
  // reconstruct lost siblings. Sub-MSS payloads matter too: the tail
  // shard of a truncated group is short, and decode needs its bytes.
  if (cfg_.fec_group > 0 && h.length > 0) {
    fec_cache_store(begin, skb->bytes());
  }

  // Repairer role: every arriving DATA packet (duplicates included —
  // a retransmission we no longer need may be exactly what a child is
  // missing) feeds the local repair cache before any trimming below
  // mutates the buffer. clone() is O(1) copy-on-write.
  if (repair_) repair_->cache_data(h, skb);

  // Entirely old data: duplicate (a retransmission we no longer need).
  if (seq_before_eq(end, rcv_nxt_)) {
    stats_.duplicate_packets++;
    return;
  }

  // R4 check (Figure 2): data beyond the receive window cannot be
  // buffered at all. The distance is signed modular arithmetic: a
  // negative value means `end` is so far ahead of the window (> 2^31)
  // that it wrapped — garbage sequence numbers must not slip past the
  // bound and be buffered at a fabricated position.
  const std::int32_t ahead = seq_diff(rcv_wnd_, end);
  if (ahead < 0 || ahead > static_cast<std::int32_t>(cfg_.rcvbuf)) {
    stats_.window_overflow_drops++;
    return;
  }
  // Buffer-occupancy check: out-of-order and queued data consume real
  // receive-buffer memory; a full buffer cannot accept even in-order
  // data (the packet will be recovered via NAK once space frees).
  if (occupancy() + h.length > cfg_.rcvbuf) {
    stats_.window_overflow_drops++;
    return;
  }

  // Trim the already-received prefix.
  if (seq_before(begin, rcv_nxt_)) {
    skb->pull(static_cast<std::size_t>(seq_diff(begin, rcv_nxt_)));
    begin = rcv_nxt_;
  }

  if (begin == rcv_nxt_) {
    // In-order: splice straight into the stream.
    nak_list_.fill(begin, end);
    receive_queue_.push_back(std::move(skb));
    rcv_nxt_ = end;
    drain_out_of_order();
    after_stream_advance();
  } else {
    // Gap: everything between rcv_nxt_ and this segment that is not
    // already buffered is newly missing.
    stats_.out_of_order_packets++;
    insert_out_of_order(begin, end, std::move(skb));
    nak_holes_up_to(begin);
  }

  check_flow_control(h.rate);
}

void HrmcReceiver::insert_out_of_order(Seq begin, Seq end,
                                       kern::SkBuffPtr skb) {
  // Trim against existing segments, then insert sorted. Overlaps are
  // rare (retransmission races), so trimming to the uncovered prefix is
  // sufficient: any still-missing tail will be NAKed again.
  //
  // Locate the first segment with end > begin by scanning from the
  // *tail*: packets overwhelmingly arrive in sequence order, so a new
  // segment almost always sorts after everything already buffered and
  // the backward scan stops immediately — O(1) in the common case where
  // a forward scan from begin() is O(queue).
  auto it = out_of_order_queue_.end();
  while (it != out_of_order_queue_.begin() &&
         seq_after(std::prev(it)->end, begin)) {
    --it;
  }
  if (it != out_of_order_queue_.end()) {
    if (seq_before_eq(it->begin, begin)) {
      // Existing segment covers our start.
      if (seq_after_eq(it->end, end)) {
        stats_.duplicate_packets++;
        return;  // fully covered
      }
      const auto overlap = static_cast<std::size_t>(seq_diff(begin, it->end));
      skb->pull(overlap);
      begin = it->end;
      ++it;
    }
    if (it != out_of_order_queue_.end() && seq_before(it->begin, end)) {
      // Our tail overlaps the next segment: keep only the prefix.
      const auto keep = static_cast<std::size_t>(seq_diff(begin, it->begin));
      skb->trim(keep);
      // (end shrinks to it->begin)
      return insert_trimmed(begin, it->begin, std::move(skb), it);
    }
  }
  insert_trimmed(begin, end, std::move(skb), it);
}

void HrmcReceiver::insert_trimmed(Seq begin, Seq end, kern::SkBuffPtr skb,
                                  std::vector<OooSeg>::iterator at) {
  if (!seq_before(begin, end)) return;
  const auto len = static_cast<std::size_t>(seq_diff(begin, end));
  // Fallible allocation (DESIGN.md §16): a refused reassembly buffer is
  // indistinguishable from losing the packet on the wire — the hole
  // stays on the NAK clock and is re-fetched once memory frees.
  if (!mem_charge(kern::MemComponent::kReassembly, len)) return;
  trace_.emit(trace::EventKind::kOooInsert, begin, end, ooo_bytes_);
  ooo_bytes_ += len;
  nak_list_.fill(begin, end);
  out_of_order_queue_.insert(at, OooSeg{begin, end, std::move(skb)});
}

void HrmcReceiver::drain_out_of_order() {
  auto it = out_of_order_queue_.begin();
  while (it != out_of_order_queue_.end() &&
         seq_before_eq(it->begin, rcv_nxt_)) {
    const auto len = static_cast<std::size_t>(seq_diff(it->begin, it->end));
    ooo_bytes_ -= len;
    mem_uncharge(kern::MemComponent::kReassembly, len);
    if (seq_after(it->end, rcv_nxt_)) {
      const auto overlap =
          static_cast<std::size_t>(seq_diff(it->begin, rcv_nxt_));
      it->skb->pull(overlap);
      receive_queue_.push_back(std::move(it->skb));
      rcv_nxt_ = it->end;
    }
    ++it;
  }
  out_of_order_queue_.erase(out_of_order_queue_.begin(), it);
}

void HrmcReceiver::nak_holes_up_to(Seq upto) {
  const sim::SimTime now = host_.scheduler().now();
  Seq cursor = rcv_nxt_;
  std::vector<NakRange> fresh;
  for (const OooSeg& seg : out_of_order_queue_) {
    if (seq_after_eq(seg.begin, upto)) break;
    if (seq_before(cursor, seg.begin)) {
      auto f = nak_list_.add_gap(cursor, seg.begin, now);
      fresh.insert(fresh.end(), f.begin(), f.end());
    }
    cursor = seq_max(cursor, seg.end);
  }
  if (seq_before(cursor, upto)) {
    auto f = nak_list_.add_gap(cursor, upto, now);
    fresh.insert(fresh.end(), f.begin(), f.end());
  }
  if (fresh.empty() && seq_before(rcv_nxt_, upto)) {
    // A hole existed but every byte of it is already pending: local NAK
    // suppression at work.
    stats_.naks_suppressed++;
    trace_.emit(trace::EventKind::kNakSuppress, rcv_nxt_, upto, 0);
  }
  // With FEC active and the parity due soon, give it one interval to
  // repair the hole locally before spending a NAK round trip on it
  // (probe-solicited NAKs are never deferred: the sender is waiting).
  const bool defer = fec_wait_worthwhile() && !answering_probe_;
  // SRM-style suppression: instead of NAKing a fresh hole immediately,
  // wait a random backoff — if a peer's NAK for the same range (or the
  // retransmission it provokes) arrives first, ours is cancelled
  // (probe-solicited NAKs still go out at once: the sender is waiting).
  const bool backoff = cfg_.nak_suppression && !answering_probe_;
  for (const NakRange& r : fresh) {
    if (backoff) {
      nak_list_.defer_unsent(r.from, r.to, now + suppression_backoff());
    } else if (!defer) {
      send_nak(r);
    }
  }
  rearm_nak_timer();
}

sim::SimTime HrmcReceiver::suppression_backoff() {
  const double window =
      cfg_.nak_backoff_rtts *
      static_cast<double>(std::max<sim::SimTime>(rtt_.srtt(), kern::kJiffy));
  return static_cast<sim::SimTime>(feedback_rng_.uniform(0.0, window));
}

void HrmcReceiver::process_peer_nak(const Header& h, net::Addr from) {
  (void)from;
  if (h.length == 0) return;
  const Seq nak_from = h.rate;
  const Seq nak_to = h.rate + h.length;
  // The peer's NAK will provoke a repair that we will overhear too:
  // push any of our own pending NAKs overlapping the range out past one
  // NAK interval (plus a fresh backoff so the survivors re-desynchronize).
  const sim::SimTime until =
      host_.scheduler().now() + nak_interval() + suppression_backoff();
  const std::size_t deferred = nak_list_.defer(nak_from, nak_to, until);
  if (deferred > 0) {
    stats_.naks_peer_suppressed += deferred;
    trace_.emit(trace::EventKind::kNakPeerSuppress, rcv_nxt_, rcv_nxt_,
                deferred);
    rearm_nak_timer();
  }
}

void HrmcReceiver::after_stream_advance() {
  nak_list_.ack_through(rcv_nxt_);
  rearm_nak_timer();
  if (complete() && !complete_reported_) {
    complete_reported_ = true;
    if (on_complete) on_complete();
  }
  if (on_readable && !receive_queue_.empty()) on_readable();
}

// --------------------------------------------------------------------
// Flow control: the three rules of §2
// --------------------------------------------------------------------

void HrmcReceiver::check_flow_control(std::uint32_t advertised_rate) {
  const double occ = static_cast<double>(occupancy());
  const double buf = static_cast<double>(cfg_.rcvbuf);
  const int region = occ < cfg_.warn_fraction * buf   ? 0
                     : occ < cfg_.crit_fraction * buf ? 1
                                                      : 2;
  if (region != fc_region_) {
    trace_.emit(trace::EventKind::kRegion, rcv_nxt_, rcv_nxt_,
                static_cast<std::uint64_t>(region),
                static_cast<std::uint32_t>(fc_region_));
    fc_region_ = region;
  }
  if (region == 0) {
    return;  // rule 1: safe region, no action
  }
  const double rtt_s = sim::to_seconds(rtt_.srtt());
  const double empty = buf - occ;
  if (region == 1) {
    // Rule 2: warning region. Request a lower rate if what the sender
    // may emit over the next WARNBUF RTTs exceeds the remaining space.
    const double incoming =
        static_cast<double>(advertised_rate) * cfg_.warnbuf_rtts * rtt_s;
    if (incoming > empty) {
      const double suggested =
          empty / (static_cast<double>(cfg_.warnbuf_rtts) *
                   std::max(rtt_s, 1e-6));
      send_control(static_cast<std::uint32_t>(
                       std::max(suggested, 1.0)),
                   /*urgent=*/false);
    }
    return;
  }
  // Rule 3: critical region — stop the sender for two RTTs.
  send_control(cfg_.min_rate, /*urgent=*/true);
}

// --------------------------------------------------------------------
// FEC extension (§6 future work (4))
// --------------------------------------------------------------------

void HrmcReceiver::fec_cache_store(Seq begin,
                                   std::span<const std::uint8_t> payload) {
  // Arrival order ~= sequence order; refreshing duplicates is pointless.
  for (const FecCacheEntry& e : fec_cache_) {
    if (e.begin == begin) return;
  }
  // Fallible allocation: an uncacheable shard only costs FEC its chance
  // to decode this group — ARQ still recovers (fec_note_decode_fail).
  if (!mem_charge(kern::MemComponent::kFecData, payload.size())) return;
  fec_cache_.push_back(
      FecCacheEntry{begin, {payload.begin(), payload.end()}});
  const std::size_t cap =
      std::max<std::size_t>(1, cfg_.fec_cache_groups * cfg_.fec_group);
  while (fec_cache_.size() > cap) {
    mem_uncharge(kern::MemComponent::kFecData,
                 fec_cache_.front().bytes.size());
    fec_cache_.pop_front();
  }
}

const HrmcReceiver::FecCacheEntry* HrmcReceiver::fec_cache_find(
    Seq begin) const {
  for (auto it = fec_cache_.rbegin(); it != fec_cache_.rend(); ++it) {
    if (it->begin == begin) return &*it;
  }
  return nullptr;
}

bool HrmcReceiver::holds_bytes(Seq begin, Seq end) const {
  if (seq_before_eq(end, rcv_nxt_)) return true;  // already in the stream
  for (const OooSeg& seg : out_of_order_queue_) {
    if (seq_before_eq(seg.begin, begin) && seq_after_eq(seg.end, end)) {
      return true;
    }
  }
  return false;
}

void HrmcReceiver::process_fec(const Header& h, kern::SkBuffPtr skb) {
  stats_.fec_packets_received++;
  if (cfg_.fec_group == 0 || h.length == 0 || skb->size() != h.length) {
    return;
  }
  mem_relieve_pressure();
  // The wire `rate` is the exact byte span covered: k full shards, or
  // k-1 full plus a short tail when the group was cut short at a
  // sub-MSS packet or end of stream.
  const std::size_t k = (h.rate + h.length - 1) / h.length;
  if (k == 0 || k > fec::kMaxGroup) return;  // sanity bound
  const std::size_t parity_index = h.tries == 0 ? 0 : h.tries - 1;
  if (parity_index >= fec::kMaxParity) return;
  const Seq span_end = h.seq + h.rate;
  if (seq_before_eq(span_end, rcv_nxt_)) return;  // group fully delivered
  // Group straddles a resync anchor: its pre-anchor packets were lost
  // with the crash, yet holds_bytes() vacuously reports them held
  // (end <= rcv_nxt_), so the missing-packet census below would lie.
  // Discard the group; ARQ recovers the post-anchor packets.
  if (seq_before(h.seq, fec_anchor_) && seq_after(span_end, fec_anchor_)) {
    stats_.fec_stale_groups++;
    return;
  }
  fec_parity_store(h.seq, h.rate, static_cast<std::uint8_t>(parity_index),
                   skb->bytes());
  fec_try_decode(h.seq, h.rate, h.length);
}

void HrmcReceiver::fec_parity_store(Seq begin, std::uint32_t span,
                                    std::uint8_t index,
                                    std::span<const std::uint8_t> payload) {
  for (const FecParityEntry& e : fec_parity_cache_) {
    if (e.begin == begin && e.index == index) return;  // duplicate row
  }
  if (!mem_charge(kern::MemComponent::kFecParity, payload.size())) return;
  fec_parity_cache_.push_back(
      FecParityEntry{begin, span, index, {payload.begin(), payload.end()}});
  const std::size_t cap =
      std::max<std::size_t>(1, cfg_.fec_cache_groups) * fec::kMaxParity;
  while (fec_parity_cache_.size() > cap) {
    mem_uncharge(kern::MemComponent::kFecParity,
                 fec_parity_cache_.front().bytes.size());
    fec_parity_cache_.pop_front();
  }
}

void HrmcReceiver::fec_note_decode_fail(Seq begin, Seq span_end,
                                        std::size_t erasures,
                                        std::size_t held) {
  if (fec_fail_noted_ && fec_fail_group_ == begin) return;
  fec_fail_noted_ = true;
  fec_fail_group_ = begin;
  stats_.fec_decode_failures++;
  trace_.emit(trace::EventKind::kFecDecodeFail, begin, span_end, erasures,
              static_cast<std::uint32_t>(held));
}

void HrmcReceiver::fec_try_decode(Seq begin, std::uint32_t span,
                                  std::uint32_t shard_len) {
  const std::size_t k = (span + shard_len - 1) / shard_len;
  const Seq span_end = begin + span;
  // Census: which of the k shards are missing from the stream and the
  // out-of-order queue. The tail shard may be shorter than shard_len.
  const auto shard_bytes = [&](std::size_t i) -> std::uint32_t {
    return i + 1 < k ? shard_len
                     : span - static_cast<std::uint32_t>(k - 1) * shard_len;
  };
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < k; ++i) {
    const Seq b = begin + static_cast<Seq>(i) * shard_len;
    if (!holds_bytes(b, b + shard_bytes(i))) missing.push_back(i);
  }
  if (missing.empty()) return;

  // Parity rows held for this exact group.
  std::vector<fec::ParityShard> parities;
  for (const FecParityEntry& e : fec_parity_cache_) {
    if (e.begin == begin && e.span == span && e.bytes.size() == shard_len) {
      parities.push_back(fec::ParityShard{e.index, e.bytes.data()});
    }
  }
  if (missing.size() > parities.size()) {
    // More erasures than parity rows in hand. With r > 1 a sibling row
    // may still be in flight, so this is not terminal — but if no
    // further row arrives, ARQ recovers on the normal NAK clock; note
    // the budget overrun once for the trace / stats.
    fec_note_decode_fail(begin, span_end, missing.size(), parities.size());
    return;
  }

  // Gather the present shards' bytes, zero-padded to shard_len.
  std::vector<std::vector<std::uint8_t>> padded(k);
  std::vector<const std::uint8_t*> shards(k, nullptr);
  std::size_t m = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (m < missing.size() && missing[m] == i) {
      ++m;
      continue;  // erasure: decode reconstructs it
    }
    const Seq b = begin + static_cast<Seq>(i) * shard_len;
    const FecCacheEntry* e = fec_cache_find(b);
    if (e == nullptr || e->bytes.size() != shard_bytes(i)) {
      // The stream holds this shard but its payload aged out of the
      // bounded cache (or arrived pre-FEC): the group is undecodable.
      fec_note_decode_fail(begin, span_end, missing.size(),
                           parities.size());
      return;
    }
    padded[i].assign(shard_len, 0);
    std::memcpy(padded[i].data(), e->bytes.data(), e->bytes.size());
    shards[i] = padded[i].data();
  }

  std::vector<std::vector<std::uint8_t>> out;
  if (!fec::decode(k, shard_len, shards, parities, out)) {
    fec_note_decode_fail(begin, span_end, missing.size(), parities.size());
    return;
  }
  if (fec_fail_noted_ && fec_fail_group_ == begin) fec_fail_noted_ = false;

  // Splice the reconstructed shards in ascending position order.
  for (std::size_t a = 0; a < missing.size(); ++a) {
    const std::size_t i = missing[a];
    const Seq b = begin + static_cast<Seq>(i) * shard_len;
    const std::uint32_t len = shard_bytes(i);
    kern::SkBuffPtr rebuilt = kern::SkBuff::alloc(len, 64);
    std::memcpy(rebuilt->put(len), out[a].data(), len);
    stats_.fec_recoveries++;
    trace_.emit(trace::EventKind::kFecRepair, b, b + len, missing.size());
    fec_cache_store(b, rebuilt->bytes());
    splice_reconstructed(b, std::move(rebuilt));
  }
}

void HrmcReceiver::splice_reconstructed(Seq begin, kern::SkBuffPtr skb) {
  const Seq end = begin + static_cast<Seq>(skb->size());
  // Repairer role: a reconstructed packet is repair currency like any
  // arriving DATA — a child missing it can be answered locally instead
  // of forwarding its NAK upstream. Feed the cache before any trimming
  // below mutates the buffer.
  if (repair_ && skb->size() > 0) {
    Header rh;
    rh.seq = begin;
    rh.length = static_cast<std::uint32_t>(skb->size());
    rh.type = PacketType::kData;
    rh.tries = 2;
    rh.fin = fin_seq_.has_value() && *fin_seq_ == end;
    repair_->cache_data(rh, skb);
  }
  if (occupancy() + skb->size() > cfg_.rcvbuf) return;  // no room
  if (seq_before(begin, rcv_nxt_)) {
    if (seq_before_eq(end, rcv_nxt_)) return;
    skb->pull(static_cast<std::size_t>(seq_diff(begin, rcv_nxt_)));
    begin = rcv_nxt_;
  }
  if (begin == rcv_nxt_) {
    nak_list_.fill(begin, end);
    receive_queue_.push_back(std::move(skb));
    rcv_nxt_ = end;
    drain_out_of_order();
    after_stream_advance();
  } else {
    insert_out_of_order(begin, end, std::move(skb));
  }
}

// --------------------------------------------------------------------
// Memory-pressure robustness (DESIGN.md §16)
// --------------------------------------------------------------------

bool HrmcReceiver::mem_charge(kern::MemComponent c, std::size_t bytes) {
  kern::MemAccountant* mem = host_.mem_accountant();
  if (mem == nullptr || bytes == 0) return true;
  if (mem->try_charge(host_.addr(), c, bytes)) return true;
  stats_.alloc_fails++;
  trace_.emit(trace::EventKind::kAllocFail, rcv_nxt_, rcv_nxt_,
              mem->live(host_.addr()), static_cast<std::uint32_t>(c));
  return false;
}

void HrmcReceiver::mem_uncharge(kern::MemComponent c, std::size_t bytes) {
  if (bytes == 0) return;
  if (kern::MemAccountant* mem = host_.mem_accountant()) {
    mem->uncharge(host_.addr(), c, bytes);
  }
}

void HrmcReceiver::mem_uncharge_fec_caches() {
  for (const FecCacheEntry& e : fec_cache_) {
    mem_uncharge(kern::MemComponent::kFecData, e.bytes.size());
  }
  for (const FecParityEntry& e : fec_parity_cache_) {
    mem_uncharge(kern::MemComponent::kFecParity, e.bytes.size());
  }
}

void HrmcReceiver::mem_relieve_pressure() {
  kern::MemAccountant* mem = host_.mem_accountant();
  if (mem == nullptr) return;
  const std::uint32_t self = host_.addr();
  // Drain to a couple of MTUs *below* the line, never flush to it: a
  // ledger pinned at the budget makes the NIC refuse every data frame,
  // and refused frames can never trigger the pass that would unpin it.
  const std::uint64_t slack = kern::kMemEvictHeadroomBytes;
  if (mem->overage(self, slack) == 0) return;
  // Cheapest first: cached FEC rows are pure optimization — dropping
  // one costs at worst a NAK round trip the protocol already knows how
  // to pay. Parity before data: a dropped parity row loses one repair
  // opportunity, a dropped data shard can spoil its whole group.
  while (mem->overage(self, slack) > 0 && !fec_parity_cache_.empty()) {
    mem_uncharge(kern::MemComponent::kFecParity,
                 fec_parity_cache_.front().bytes.size());
    fec_parity_cache_.pop_front();
    stats_.fec_evictions++;
    trace_.emit(trace::EventKind::kCacheEvict, rcv_nxt_, rcv_nxt_,
                mem->live(self),
                static_cast<std::uint32_t>(kern::MemComponent::kFecParity));
  }
  while (mem->overage(self, slack) > 0 && !fec_cache_.empty()) {
    mem_uncharge(kern::MemComponent::kFecData,
                 fec_cache_.front().bytes.size());
    fec_cache_.pop_front();
    stats_.fec_evictions++;
    trace_.emit(trace::EventKind::kCacheEvict, rcv_nxt_, rcv_nxt_,
                mem->live(self),
                static_cast<std::uint32_t>(kern::MemComponent::kFecData));
  }
  // Still over: give back reassembly state, farthest-from-delivery
  // first (the bytes the stream needs last). Evicted ranges go straight
  // back on the NAK list — eviction degrades to *loss*, recovered on
  // the normal NAK clock, never to a hole the protocol forgot.
  const sim::SimTime now = host_.scheduler().now();
  bool evicted_ooo = false;
  while (mem->overage(self, slack) > 0 && !out_of_order_queue_.empty()) {
    OooSeg seg = std::move(out_of_order_queue_.back());
    out_of_order_queue_.pop_back();
    const auto len = static_cast<std::size_t>(seq_diff(seg.begin, seg.end));
    ooo_bytes_ -= len;
    mem_uncharge(kern::MemComponent::kReassembly, len);
    stats_.ooo_evictions++;
    trace_.emit(trace::EventKind::kCacheEvict, seg.begin, seg.end,
                mem->live(self),
                static_cast<std::uint32_t>(kern::MemComponent::kReassembly));
    nak_list_.add_gap(seg.begin, seg.end, now);
    evicted_ooo = true;
  }
  if (evicted_ooo) rearm_nak_timer();
}

// --------------------------------------------------------------------
// Probes, keepalives, control responses
// --------------------------------------------------------------------

void HrmcReceiver::process_probe(const Header& h) {
  stats_.probes_received++;
  probe_seen_this_period_ = true;
  answering_probe_ = true;  // outgoing UPDATE/NAKs carry the URG mark
  if (repair_) {
    // A probed repairer answers for its whole subtree: one solicited
    // AGG_UPDATE carries the subtree minimum, and if the repairer is
    // itself behind the probed position it NAKs its own holes too.
    repair_->send_aggregate(/*solicited=*/true);
    if (seq_before(rcv_nxt_, h.seq)) nak_holes_up_to(h.seq);
  } else if (seq_after_eq(rcv_nxt_, h.seq)) {
    send_update();
  } else {
    nak_holes_up_to(h.seq);
  }
  answering_probe_ = false;
}

void HrmcReceiver::process_keepalive(const Header& h) {
  stats_.keepalives_received++;
  if (h.fin) fin_seq_ = h.seq;
  if (seq_after(h.seq, rcv_nxt_)) {
    // The keepalive names data we never saw: the tail of a burst was
    // lost (§2, "NAK-Based Reliability").
    nak_holes_up_to(h.seq);
  }
  if (complete() && !complete_reported_) {
    complete_reported_ = true;
    if (on_complete) on_complete();
  }
}

void HrmcReceiver::process_join_response(const Header& h) {
  if (join_state_ == JoinState::kJoining) {
    join_state_ = JoinState::kJoined;
    if (resync_pending_) {
      // Crash-restart resync: re-anchor the stream at the sender's
      // current position (JOIN_RESPONSE carries snd_nxt). History
      // before it is abandoned — late-join semantics, not recovery.
      rcv_wnd_ = rcv_nxt_ = h.seq;
      // Restarting mid-FEC-group: anything cached belongs to the
      // abandoned pre-crash stream position, and a parity group that
      // straddles the new anchor can never be trusted (its pre-anchor
      // packets were lost with the crash).
      fec_anchor_ = h.seq;
      mem_uncharge_fec_caches();
      fec_cache_.clear();
      fec_parity_cache_.clear();
      fec_fail_noted_ = false;
      resync_pending_ = false;
      ++resyncs_;
      trace_.emit(trace::EventKind::kResync, rcv_nxt_, rcv_nxt_,
                  host_.addr());
    }
    trace_.emit(trace::EventKind::kJoined, rcv_nxt_, rcv_nxt_, host_.addr(),
                0,
                repair_parent_ != 0 && !repair_failed_over_
                    ? trace::kFlagAggregated
                    : 0);
    rtt_.sample(host_.scheduler().now() - join_sent_at_,
                /*from_retransmit=*/join_tries_ > 1);
    // Reset the retry budget: a long-lived connection on a flapping
    // network re-JOINs many times (stall watchdog), and each handshake
    // deserves the full budget, not the dregs of every earlier one.
    join_tries_ = 0;
    join_timer_.del_timer();
    // The Update Generator runs for the life of the H-RMC connection.
    if (cfg_.mode == Mode::kHrmc) {
      update_timer_.mod_timer_in(update_period_);
    }
  }
}

void HrmcReceiver::process_leave_response(const Header& h) {
  (void)h;
  if (join_state_ == JoinState::kLeaving) {
    join_state_ = JoinState::kLeft;
    join_timer_.del_timer();
  }
}

void HrmcReceiver::process_nak_err(const Header& h) {
  stats_.nak_errs_received++;
  stream_error_ = true;
  // The sender can no longer supply [h.seq, h.seq + h.length): give up on
  // those bytes so the stream (and the application, now informed via
  // stream_error()) can move past the hole.
  const Seq hole_end = h.seq + h.length;
  nak_list_.fill(h.seq, hole_end);
  if (seq_after(hole_end, rcv_nxt_) && seq_before_eq(h.seq, rcv_nxt_)) {
    const auto skipped =
        static_cast<std::uint32_t>(seq_diff(rcv_nxt_, hole_end));
    bytes_skipped_ += skipped;
    rcv_nxt_ = hole_end;
    // The skipped bytes will never be read: advance the consumed
    // boundary past them so window accounting stays aligned.
    rcv_wnd_ += skipped;
    drain_out_of_order();
    after_stream_advance();
  }
  rearm_nak_timer();
}

// --------------------------------------------------------------------
// Feedback emission
// --------------------------------------------------------------------

void HrmcReceiver::send_nak(const NakRange& r) {
  // Repairer failover: a range re-sent past the failover budget means
  // the repair parent is not answering (crashed, partitioned, or left).
  // Re-home all feedback to the sender and re-register there; sticky
  // until crash-restart, so a flapping parent cannot bounce us.
  if (repair_parent_ != 0 && !repair_failed_over_ && sender_addr_ != 0 &&
      r.sends > cfg_.repair_failover_naks) {
    repair_failed_over_ = true;
    stats_.repair_failovers++;
    send_join();
  }
  stats_.naks_sent++;
  trace_.emit(trace::EventKind::kNakEmit, r.from, r.to, rcv_nxt_, 0,
              answering_probe_ ? trace::kFlagSolicited : 0);
  // NAK: seq = next expected (member-state refresh), rate field = start
  // of the missing range, length = its size (wire.hpp). URG marks a
  // probe-solicited NAK. A repairer reports its subtree minimum, never
  // its own position (see report_position()).
  const auto len = static_cast<std::uint32_t>(seq_diff(r.from, r.to));
  emit(PacketType::kNak, report_position(), r.from, len, answering_probe_);
  if (cfg_.nak_suppression) {
    // SRM: a subtree-scoped multicast copy lets peers missing the same
    // range suppress their own duplicates. Receiver-originated multicast
    // never grafts upward, so the copy stays inside the subtree.
    emit_to(group_.addr, PacketType::kNak, report_position(), r.from, len,
            answering_probe_);
  }
}

void HrmcReceiver::send_update() {
  stats_.updates_sent++;
  trace_.emit(trace::EventKind::kUpdate, rcv_nxt_, rcv_nxt_, occupancy(), 0,
              answering_probe_ ? trace::kFlagSolicited : 0);
  emit(PacketType::kUpdate, rcv_nxt_, 0, 0, answering_probe_);
  if (repair_parent_ != 0 && repair_failed_over_) {
    // Mirror the periodic report to the abandoned repair parent: if it
    // is alive, a stale child entry from before the failover would
    // otherwise freeze its subtree minimum forever (children never
    // expire under kStall) and deadlock the sender's release gate.
    emit_to(repair_parent_, PacketType::kUpdate, rcv_nxt_, 0, 0,
            answering_probe_);
  }
}

void HrmcReceiver::send_control(std::uint32_t requested_rate, bool urgent) {
  stats_.rate_requests_sent++;
  if (urgent) stats_.urgent_requests_sent++;
  trace_.emit(trace::EventKind::kRateRequest, rcv_nxt_, rcv_nxt_,
              requested_rate, urgent ? 1 : 0);
  // CONTROL refreshes our membership record like any feedback, so a
  // repairer must report the subtree minimum here too — its own
  // position would re-anchor the sender's record past a laggard child
  // and open the release gate over bytes that child still needs.
  emit(PacketType::kControl, report_position(), requested_rate, 0, urgent);
}

void HrmcReceiver::send_join() {
  // A JOIN handshake that keeps timing out against a repair parent
  // means the parent is dead or unreachable before we ever registered:
  // fail over to the sender before burning the whole retry budget.
  // Checked on every attempt — not only on the 0.5 s retry timer —
  // because the RTO-paced fast retries in rx() can spend the entire
  // failover budget between two timer ticks while the sender, gating
  // its releases on nobody, runs the whole stream past us.
  if (join_state_ == JoinState::kJoining && repair_parent_ != 0 &&
      !repair_failed_over_ && sender_addr_ != 0 &&
      join_tries_ >= cfg_.repair_failover_naks) {
    repair_failed_over_ = true;
    stats_.repair_failovers++;
  }
  join_state_ = JoinState::kJoining;
  join_sent_at_ = host_.scheduler().now();
  ++join_tries_;
  if (resync_pending_) {
    trace_.emit(trace::EventKind::kResyncJoin, rcv_nxt_, rcv_nxt_,
                host_.addr());
  }
  // URG on a JOIN marks a crash-restart resync: the sender must anchor
  // this member at its current position, not at our stale rcv_nxt_.
  // A non-URG (re-)JOIN claims the subtree minimum, not our own
  // position: the record it anchors stands for every child below us.
  emit(PacketType::kJoin, report_position(), 0, 0, /*urg=*/resync_pending_);
  join_timer_.mod_timer_in(kJoinRetryJiffies);
}

void HrmcReceiver::send_leave() {
  ++leave_tries_;
  emit(PacketType::kLeave, rcv_nxt_, 0, 0);
  if (repair_parent_ != 0 && repair_failed_over_) {
    // Mirror the LEAVE to the abandoned repair parent, the complement
    // of the send_update mirror: a failed-over child that completes
    // and departs before its first mirrored UPDATE would otherwise
    // leave a frozen entry in the parent's child table — and under
    // kStall (children never expire) that freezes the subtree minimum,
    // deadlocking the sender's release gate on a ghost.
    emit_to(repair_parent_, PacketType::kLeave, rcv_nxt_, 0, 0);
  }
  const int shift = std::min(leave_tries_ - 1, kLeaveBackoffCap);
  join_timer_.mod_timer_in(kJoinRetryJiffies << shift);
}

void HrmcReceiver::forward_child_nak(Seq from, Seq to) {
  if (!seq_before(from, to)) return;
  stats_.naks_forwarded++;
  trace_.emit(trace::EventKind::kNakForward, from, to, rcv_nxt_);
  // Forwarded upward as our own NAK: seq carries the subtree minimum so
  // the sender's record for this repairer never outruns a laggard leaf.
  emit(PacketType::kNak, report_position(), from,
       static_cast<std::uint32_t>(seq_diff(from, to)), answering_probe_);
}

void HrmcReceiver::emit(PacketType type, Seq seq, std::uint32_t rate,
                        std::uint32_t length, bool urg) {
  const net::Addr target = feedback_target();
  if (target == 0) return;  // nowhere to send feedback yet
  emit_to(target, type, seq, rate, length, urg);
}

void HrmcReceiver::emit_to(net::Addr daddr, PacketType type, Seq seq,
                           std::uint32_t rate, std::uint32_t length,
                           bool urg) {
  kern::SkBuffPtr skb = kern::SkBuff::alloc(0, Header::kSize + 44);
  Header h;
  h.sport = group_.port;
  h.dport = group_.port;
  h.seq = seq;
  h.rate = rate;
  h.length = length;
  h.tries = 1;
  h.type = type;
  h.urg = urg;
  write_header(*skb, h);
  skb->daddr = daddr;
  skb->protocol = kIpProtoHrmc;
  host_.send(std::move(skb));
}

// --------------------------------------------------------------------
// Timers
// --------------------------------------------------------------------

void HrmcReceiver::nak_timer_fire() {
  // Timer-driven shrinker pass: when the ledger is pinned at the
  // budget the NIC refuses every data frame, so the arrival-driven
  // relieve calls in process_data/process_fec never run — only the
  // timers can break that cycle (DESIGN.md §16).
  mem_relieve_pressure();
  const sim::SimTime now = host_.scheduler().now();
  for (const NakRange& r : nak_list_.due(now, nak_interval())) {
    send_nak(r);
  }
  rearm_nak_timer();
}

void HrmcReceiver::rearm_nak_timer() {
  if (nak_list_.empty()) {
    nak_timer_.del_timer();
    return;
  }
  const sim::SimTime next = nak_list_.next_due(nak_interval());
  const kern::Jiffies j = std::max<kern::Jiffies>(
      1, kern::to_jiffies(next) - nak_timer_.now_jiffies());
  nak_timer_.mod_timer_in(j);
}

void HrmcReceiver::maybe_stall_rejoin(sim::SimTime now) {
  if (cfg_.data_stall_timeout <= 0 || crashed_ || resync_pending_ ||
      complete() || join_state_ != JoinState::kJoined) {
    return;
  }
  if (last_activity_at_ < 0 ||
      now - last_activity_at_ < cfg_.data_stall_timeout) {
    return;
  }
  if (last_stall_rejoin_ >= 0 &&
      now - last_stall_rejoin_ < cfg_.data_stall_timeout) {
    return;  // one re-graft per silence window; give it time to work
  }
  last_stall_rejoin_ = now;
  stats_.stall_rejoins++;
  trace_.emit(trace::EventKind::kRejoin, rcv_nxt_, rcv_nxt_, host_.addr());
  // A repaired path (link flap healed, routes reconverged) may have been
  // rebuilt without our branch of the multicast tree. Re-graft at the
  // IGMP layer (idempotent) and re-send a *normal* JOIN: unlike the URG
  // resync, our state is intact — history stays NAKable and the stream
  // resumes where it left off.
  host_.join_group(group_.addr);
  send_join();
}

void HrmcReceiver::update_timer_fire() {
  mem_relieve_pressure();  // arrival-independent shrinker pass, as above
  maybe_stall_rejoin(host_.scheduler().now());
  if (repair_) {
    // The repairer's periodic report is the aggregate, never its own
    // position alone: one packet per subtree replaces one per leaf.
    repair_->send_aggregate(/*solicited=*/false);
  } else {
    send_update();
  }
  if (cfg_.dynamic_update_timer) {
    // §3 "Dynamic Update Timers": probes mean the sender is starved for
    // information — speed up; silence means updates suffice — back off.
    const kern::Jiffies before = update_period_;
    if (probe_seen_this_period_) {
      update_period_ = std::max<kern::Jiffies>(cfg_.update_period_min,
                                               update_period_ - 1);
    } else {
      update_period_ = std::min<kern::Jiffies>(cfg_.update_period_max,
                                               update_period_ + 1);
    }
    if (update_period_ != before) {
      trace_.emit(trace::EventKind::kUpdatePeriod, rcv_nxt_, rcv_nxt_,
                  static_cast<std::uint64_t>(update_period_),
                  static_cast<std::uint32_t>(before));
    }
  }
  probe_seen_this_period_ = false;
  update_timer_.mod_timer_in(update_period_);
}

void HrmcReceiver::join_timer_fire() {
  // Deferred repairer leave (see close()): retry until the children
  // have detached or the budget is spent, then leave for real.
  if (rehome_tries_ > 0 && join_state_ == JoinState::kJoined) {
    close();
    return;
  }
  if (join_state_ == JoinState::kJoining && join_tries_ < kMaxJoinTries) {
    send_join();
  } else if (join_state_ == JoinState::kLeaving) {
    // Keep trying: a reconvergence blackout can outlast any fixed retry
    // budget, and a LEAVE that never lands strands a ghost member at
    // the sender. The backoff in send_leave keeps persistence cheap.
    send_leave();
  }
}

}  // namespace hrmc::proto
