// Round-trip-time estimation per Karn & Partridge (reference [18] of the
// paper): smoothed RTT with mean-deviation variance, and the Karn rule —
// never take a sample from data that has been retransmitted, since the
// response cannot be attributed to a particular transmission.
//
// RMC/H-RMC track the RTT "to the most distant receiver": every piece of
// receiver feedback (NAK arrival relative to the data's send time, PROBE
// responses) is a sample, and the estimator follows the slow tail because
// distant receivers keep feeding it large samples.
#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace hrmc::proto {

class RttEstimator {
 public:
  explicit RttEstimator(sim::SimTime initial, sim::SimTime min_clamp)
      : srtt_(initial), rttvar_(initial / 2), min_clamp_(min_clamp) {}

  /// Feeds one sample. `from_retransmit` applies the Karn rule: the
  /// sample is discarded because its attribution is ambiguous.
  void sample(sim::SimTime rtt, bool from_retransmit = false) {
    if (from_retransmit) return;
    rtt = std::max(rtt, min_clamp_);
    if (!seeded_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      seeded_ = true;
      return;
    }
    // RFC 6298 coefficients (alpha = 1/8, beta = 1/4), integer form.
    const sim::SimTime err = rtt - srtt_;
    srtt_ += err / 8;
    rttvar_ += ((err < 0 ? -err : err) - rttvar_) / 4;
    srtt_ = std::max(srtt_, min_clamp_);
  }

  [[nodiscard]] sim::SimTime srtt() const { return srtt_; }
  [[nodiscard]] sim::SimTime rttvar() const { return rttvar_; }

  /// Retransmission-timeout-style bound: srtt + 4·rttvar.
  [[nodiscard]] sim::SimTime rto() const { return srtt_ + 4 * rttvar_; }

  [[nodiscard]] bool seeded() const { return seeded_; }

 private:
  sim::SimTime srtt_;
  sim::SimTime rttvar_;
  sim::SimTime min_clamp_;
  bool seeded_ = false;
};

}  // namespace hrmc::proto
