#include "hrmc/nak_list.hpp"

#include <algorithm>

namespace hrmc::proto {

using kern::Seq;
using kern::seq_after;
using kern::seq_before;
using kern::seq_before_eq;
using kern::seq_max;
using kern::seq_min;

std::vector<NakRange> NakList::add_gap(Seq from, Seq to, sim::SimTime now) {
  std::vector<NakRange> fresh;
  if (!seq_before(from, to)) return fresh;

  // Walk existing ranges, emitting the parts of [from, to) not already
  // tracked. Existing ranges keep their suppression state.
  Seq cursor = from;
  std::vector<NakRange> merged;
  merged.reserve(ranges_.size() + 2);
  for (const NakRange& r : ranges_) {
    if (seq_before(cursor, to) && seq_before(cursor, r.from)) {
      const Seq piece_end = seq_min(to, r.from);
      if (seq_before(cursor, piece_end)) {
        fresh.push_back(NakRange{cursor, piece_end, now, 1});
      }
    }
    if (seq_before(cursor, r.to)) cursor = seq_max(cursor, r.to);
    merged.push_back(r);
  }
  if (seq_before(cursor, to)) {
    fresh.push_back(NakRange{cursor, to, now, 1});
  }
  if (fresh.empty()) return fresh;

  // Insert the fresh pieces and restore sorted order.
  for (const NakRange& r : fresh) merged.push_back(r);
  std::sort(merged.begin(), merged.end(),
            [](const NakRange& a, const NakRange& b) {
              return seq_before(a.from, b.from);
            });
  ranges_ = std::move(merged);
  return fresh;
}

void NakList::fill(Seq from, Seq to) {
  if (!seq_before(from, to)) return;
  std::vector<NakRange> out;
  out.reserve(ranges_.size() + 1);
  for (const NakRange& r : ranges_) {
    // No overlap: keep whole.
    if (seq_before_eq(r.to, from) || seq_before_eq(to, r.from)) {
      out.push_back(r);
      continue;
    }
    // Left remainder.
    if (seq_before(r.from, from)) {
      NakRange left = r;
      left.to = from;
      out.push_back(left);
    }
    // Right remainder.
    if (seq_before(to, r.to)) {
      NakRange right = r;
      right.from = to;
      out.push_back(right);
    }
  }
  ranges_ = std::move(out);
}

void NakList::ack_through(Seq seq) {
  std::vector<NakRange> out;
  out.reserve(ranges_.size());
  for (const NakRange& r : ranges_) {
    if (seq_before_eq(r.to, seq)) continue;  // fully satisfied
    NakRange keep = r;
    if (seq_before(keep.from, seq)) keep.from = seq;
    out.push_back(keep);
  }
  ranges_ = std::move(out);
}

std::size_t NakList::defer(Seq from, Seq to, sim::SimTime until) {
  std::size_t deferred = 0;
  for (NakRange& r : ranges_) {
    if (seq_before_eq(r.to, from) || seq_before_eq(to, r.from)) continue;
    if (until > r.not_before) r.not_before = until;
    ++deferred;
  }
  return deferred;
}

void NakList::defer_unsent(Seq from, Seq to, sim::SimTime until) {
  for (NakRange& r : ranges_) {
    if (seq_before_eq(r.to, from) || seq_before_eq(to, r.from)) continue;
    r.sends = 0;
    r.last_sent = 0;
    if (until > r.not_before) r.not_before = until;
  }
}

namespace {

sim::SimTime range_ready_at(const NakRange& r, sim::SimTime interval) {
  // An unsent (backoff-deferred) range is due exactly at its deferral
  // deadline; a sent one waits out the re-send interval as well.
  if (r.sends == 0) return r.not_before;
  return std::max(r.last_sent + interval, r.not_before);
}

}  // namespace

std::vector<NakRange> NakList::due(sim::SimTime now, sim::SimTime interval) {
  std::vector<NakRange> result;
  for (NakRange& r : ranges_) {
    if (now >= range_ready_at(r, interval)) {
      r.last_sent = now;
      ++r.sends;
      result.push_back(r);
    }
  }
  return result;
}

sim::SimTime NakList::next_due(sim::SimTime interval) const {
  sim::SimTime earliest = sim::kTimeInfinity;
  for (const NakRange& r : ranges_) {
    earliest = std::min(earliest, range_ready_at(r, interval));
  }
  return earliest;
}

}  // namespace hrmc::proto
