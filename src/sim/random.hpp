// Deterministic random-number streams.
//
// Every stochastic element of the simulation (router loss, NIC loss, disk
// jitter, application pacing) draws from its own named stream derived from
// the scenario seed, so adding a new consumer of randomness never perturbs
// the draws seen by existing ones — a prerequisite for meaningful A/B
// comparisons between protocol variants on "the same" network weather.
#pragma once

#include <cstdint>
#include <string_view>

namespace hrmc::sim {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
/// Seeded through SplitMix64 so that any 64-bit seed yields a good state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  // Satisfies UniformRandomBitGenerator so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Position-sensitive hash of the internal state: two streams seeded
  /// alike that consumed the same number of draws have equal digests,
  /// and any divergence in draw history shows up here. The harness
  /// folds every component's digest into RunResult::rng_digest to prove
  /// serial and sharded executions left each PRNG in the same place.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::uint64_t s_[4] = {};
};

/// Order-sensitive accumulator for folding many digests into one
/// (SplitMix64 over the running value xor the contribution), so a
/// matching fold implies every component matched in sequence.
std::uint64_t digest_mix(std::uint64_t acc, std::uint64_t v);

/// Derives an independent substream seed from a root seed and a label,
/// e.g. `substream_seed(seed, "router:0/loss")`. FNV-1a over the label
/// mixed with the root through SplitMix64.
std::uint64_t substream_seed(std::uint64_t root, std::string_view label);

}  // namespace hrmc::sim
