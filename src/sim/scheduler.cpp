#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace hrmc::sim {

EventHandle Scheduler::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Scheduler::schedule_at: time " +
                           format_time(when) + " is in the past (now " +
                           format_time(now_) + ")");
  }
  auto alive = std::make_shared<bool>(true);
  EventHandle handle{std::weak_ptr<bool>(alive)};
  queue_.push(Entry{when, next_seq_++, std::move(fn), std::move(alive)});
  return handle;
}

bool Scheduler::step(SimTime horizon) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.when > horizon) return false;
    // Pop by move: priority_queue::top() is const, so steal via const_cast
    // of the known-mutable container element, then pop. This is the
    // standard idiom to avoid copying the std::function.
    Entry entry = std::move(const_cast<Entry&>(top));
    queue_.pop();
    if (!*entry.alive) continue;  // cancelled tombstone
    assert(entry.when >= now_);
    now_ = entry.when;
    *entry.alive = false;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run_until(SimTime horizon) {
  std::uint64_t n = 0;
  while (step(horizon)) ++n;
  if (horizon != kTimeInfinity && now_ < horizon) {
    // Anything left in the queue lies beyond the horizon; idle time
    // passes up to it.
    now_ = horizon;
  }
  return n;
}

std::uint64_t Scheduler::run_while(const std::function<bool()>& keep_going,
                                   SimTime horizon) {
  std::uint64_t n = 0;
  while (keep_going() && step(horizon)) ++n;
  return n;
}

}  // namespace hrmc::sim
