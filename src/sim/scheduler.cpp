#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hrmc::sim {

namespace detail {

std::uint32_t SchedulerCore::acquire_slot() {
  if (free_head != kNoSlot) {
    const std::uint32_t idx = free_head;
    free_head = slots[idx].next_free;
    slots[idx].next_free = kNoSlot;
    return idx;
  }
  slots.emplace_back();
  return static_cast<std::uint32_t>(slots.size() - 1);
}

void SchedulerCore::free_slot(std::uint32_t idx) {
  slots[idx].next_free = free_head;
  free_head = idx;
}

bool SchedulerCore::cancel(std::uint32_t slot_idx, std::uint32_t gen) {
  Slot& s = slots[slot_idx];
  if (!s.armed || s.gen != gen) return false;
  s.armed = false;
  ++s.gen;       // invalidates the queue entry and any copied handles
  s.fn.reset();  // release captured resources (packets, refs) now
  free_slot(slot_idx);
  ++tombstones;
  // Lazy sweep: once cancelled entries outnumber live ones the heap is
  // mostly dead weight — rebuild it without them. Amortized O(1) per
  // cancel; pop order is unchanged because (when, seq) totally orders
  // live entries regardless of heap layout. The count floor keeps tiny
  // queues from paying a rebuild per cancel: below it, pops retire the
  // tombstones for free.
  if (tombstones >= kCompactMinTombstones && tombstones * 2 > heap.size()) {
    compact();
  }
  return true;
}

void SchedulerCore::compact() {
  heap.erase(std::remove_if(heap.begin(), heap.end(),
                            [this](const Entry& e) { return !live(e); }),
             heap.end());
  std::make_heap(heap.begin(), heap.end(), later);
  tombstones = 0;
  ++compactions;
}

SimTime SchedulerCore::next_event_time() {
  while (!heap.empty()) {
    const Entry& top = heap.front();
    if (live(top)) return top.when;
    std::pop_heap(heap.begin(), heap.end(), later);
    heap.pop_back();
    assert(tombstones > 0);
    --tombstones;
  }
  return kTimeInfinity;
}

}  // namespace detail

void Scheduler::throw_past(SimTime when) const {
  throw std::logic_error("Scheduler::schedule_at: time " + format_time(when) +
                         " is in the past (now " + format_time(core_->now) +
                         ")");
}

bool Scheduler::step(SimTime horizon) {
  detail::SchedulerCore& c = *core_;
  while (!c.heap.empty()) {
    const detail::SchedulerCore::Entry top = c.heap.front();
    if (top.when > horizon) return false;
    std::pop_heap(c.heap.begin(), c.heap.end(),
                  detail::SchedulerCore::later);
    c.heap.pop_back();
    if (!c.live(top)) {  // cancelled tombstone
      assert(c.tombstones > 0);
      --c.tombstones;
      continue;
    }
    assert(top.when >= c.now);
    c.now = top.when;
    detail::SchedulerCore::Slot& s = c.slots[top.slot];
    // Retire the slot *before* invoking: a cancel() from inside the
    // callback (or on a stale handle) sees a bumped generation and
    // no-ops; the slot is kept off the free list until the callback —
    // which may itself schedule events — has finished running out of it.
    s.armed = false;
    ++s.gen;
    ++c.executed;
    s.fn();
    s.fn.reset();
    c.free_slot(top.slot);
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run_until(SimTime horizon) {
  std::uint64_t n = 0;
  while (step(horizon)) ++n;
  if (horizon != kTimeInfinity && core_->now < horizon) {
    // Anything left in the queue lies beyond the horizon; idle time
    // passes up to it.
    core_->now = horizon;
  }
  return n;
}

std::uint64_t Scheduler::run_while(const std::function<bool()>& keep_going,
                                   SimTime horizon) {
  std::uint64_t n = 0;
  while (keep_going() && step(horizon)) ++n;
  return n;
}

}  // namespace hrmc::sim
