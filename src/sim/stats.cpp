#include "sim/stats.hpp"

#include <cassert>
#include <cmath>

namespace hrmc::sim {

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets + 2, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++counts_.front();
  } else if (x >= hi_) {
    ++counts_.back();
  } else {
    const auto idx = static_cast<std::size_t>((x - lo_) / width_);
    ++counts_[1 + std::min(idx, counts_.size() - 3)];
  }
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) {
      if (i == 0) return lo_;
      if (i == counts_.size() - 1) return hi_;
      return lo_ + (static_cast<double>(i - 1) + 0.5) * width_;
    }
  }
  return hi_;
}

}  // namespace hrmc::sim
