#include "sim/time.hpp"

#include <cstdio>

namespace hrmc::sim {

std::string format_time(SimTime t) {
  char buf[64];
  if (t == kTimeInfinity) return "+inf";
  const char* sign = t < 0 ? "-" : "";
  const std::int64_t a = t < 0 ? -t : t;
  if (a >= kSecond) {
    std::snprintf(buf, sizeof buf, "%s%.6fs", sign,
                  static_cast<double>(a) / static_cast<double>(kSecond));
  } else if (a >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fms", sign,
                  static_cast<double>(a) / static_cast<double>(kMillisecond));
  } else if (a >= kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fus", sign,
                  static_cast<double>(a) / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buf, sizeof buf, "%s%lldns", sign,
                  static_cast<long long>(a));
  }
  return buf;
}

}  // namespace hrmc::sim
