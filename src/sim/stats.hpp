// Online statistics used by the experiment harness and protocol counters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace hrmc::sim {

/// Welford online mean/variance plus min/max. O(1) memory.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  void reset() { *this = OnlineStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-resolution histogram over [lo, hi) with under/overflow buckets.
/// Supports exact-ish percentiles (bucket midpoint interpolation).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] double percentile(double p) const;  // p in [0, 100]
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return counts_;
  }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;  // [under, b0..bN-1, over]
  std::uint64_t total_ = 0;
};

/// A named bag of monotone counters; protocol stacks expose one of these
/// so the harness can diff counts across a run without the protocol
/// knowing anything about experiments.
class CounterSet {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) {
    counters_[name] += by;
  }
  [[nodiscard]] std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const {
    return counters_;
  }
  void reset() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace hrmc::sim
