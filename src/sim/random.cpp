#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace hrmc::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // A state of all zeros is the one invalid xoshiro state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::uint64_t substream_seed(std::uint64_t root, std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  std::uint64_t x = root ^ h;
  return splitmix64(x);
}

std::uint64_t Rng::digest() const {
  std::uint64_t acc = 0x6d5f4e3d2c1b0a99ULL;
  for (std::uint64_t s : s_) {
    std::uint64_t x = acc ^ s;
    acc = splitmix64(x);
  }
  return acc;
}

std::uint64_t digest_mix(std::uint64_t acc, std::uint64_t v) {
  std::uint64_t x = acc ^ v;
  return splitmix64(x);
}

}  // namespace hrmc::sim
