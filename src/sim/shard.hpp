// Conservative parallel discrete-event engine: several Schedulers (one
// per *domain*) advanced in lockstep epochs.
//
// The model is classic conservative PDES (YAWNS-style windows): if every
// cross-domain effect generated at time t arrives at its destination no
// earlier than t + L — L is the *lookahead*, here the service time of
// the smallest packet on the slowest cross-domain trunk — then all
// events in the window [E, E + L) are causally independent across
// domains and may run concurrently. At the window's end every domain
// stops at a barrier, staged cross-domain handoffs are spliced into
// their destination queues, and the next window starts at the earliest
// event anywhere (windows skip idle gaps, so an epoch is only as short
// as the traffic makes it).
//
// Determinism is by construction, at any thread count:
//  - Within a domain, its Scheduler's (when, seq) order is untouched;
//    which OS thread runs the domain never matters because domains
//    share no mutable state inside a window.
//  - Handoffs are staged per (src, dst) pair by the one thread that
//    owns src that epoch (lock-free), and spliced at the barrier in a
//    fixed order (src ascending, first-touch dst order, FIFO within a
//    pair), so destination sequence numbers are reproducible.
//  - Control posts (multicast grafts — zero-latency cross-domain state
//    changes) are deferred to the barrier and applied serially in the
//    same fixed order, quantizing them to the epoch boundary.
//
// Consequently a run at 8 threads is bit-identical — same event order
// per domain, same PRNG draws, same trace records — to the same run at
// 1 thread. "Serial" for comparison purposes *is* the 1-thread
// execution of this engine; the legacy single-Scheduler path remains
// byte-for-byte what it was before this engine existed (it differs from
// the sharded schedule only in how same-timestamp events in *different*
// domains interleave, which no protocol invariant observes).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace hrmc::sim {

class ShardEngine {
 public:
  struct Stats {
    std::uint64_t epochs = 0;         ///< barrier windows executed
    std::uint64_t handoffs = 0;       ///< cross-domain packet posts
    std::uint64_t handoff_bytes = 0;  ///< wire bytes those posts carried
    std::uint64_t control_posts = 0;  ///< boundary-applied control ops
  };

  /// `lookahead` must be positive: it is the guaranteed minimum latency
  /// of every cross-domain effect, and the epoch window width.
  ShardEngine(std::size_t domains, SimTime lookahead);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  [[nodiscard]] std::size_t domain_count() const { return domains_.size(); }
  [[nodiscard]] Scheduler& domain(std::size_t d) { return *domains_[d]; }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  /// Stages `fn` to run in domain `dst` at absolute time `when`. Called
  /// from domain `src`'s events (its owning thread this epoch); spliced
  /// into dst's queue at the next barrier. `when` must honor the
  /// lookahead — at least the current window's end — or the engine
  /// throws: a violation means the topology's cross-domain latency
  /// bound is wrong, and silently accepting it would corrupt causality.
  /// Outside run() (setup/teardown, single-threaded) it schedules
  /// directly.
  void post(std::size_t src, std::size_t dst, SimTime when,
            std::size_t wire_bytes, std::function<void()> fn);

  /// Stages `fn` to run serially at the next epoch barrier — for
  /// cross-domain state changes with no modeled latency (IGMP-style
  /// grafts). Applied in (src ascending, FIFO) order. Outside run() it
  /// executes immediately.
  void post_control(std::size_t src, std::function<void()> fn);

  /// Runs all domains until no events remain anywhere, `done()` holds
  /// at a barrier, or every next event lies beyond `horizon`. `done`
  /// may be empty. `threads` >= 1 is the worker count (clamped to the
  /// domain count); the result is identical for every value. Returns
  /// the number of events executed by this call.
  std::uint64_t run(const std::function<bool()>& done, SimTime horizon,
                    unsigned threads);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Events executed, summed over domains.
  [[nodiscard]] std::uint64_t executed() const;
  /// Tombstone sweeps, summed over domains.
  [[nodiscard]] std::uint64_t compactions() const;

 private:
  struct Handoff {
    SimTime when = 0;
    std::uint32_t bytes = 0;
    std::function<void()> fn;
  };

  void flush_mailboxes();
  void apply_controls();
  /// Claims domains off `active_` until none remain (work stealing:
  /// domain cost varies with traffic, so static striping would idle the
  /// fast workers at the tail of every epoch).
  void run_claimed(SimTime until, std::size_t worker);
  void worker_loop(std::size_t worker);

  std::vector<std::unique_ptr<Scheduler>> domains_;
  SimTime lookahead_;

  // Mailboxes: staged_[src * D + dst] is appended only by src's owner
  // thread during an epoch and drained only at the barrier; dirty_[src]
  // lists the dst indexes src touched, in first-touch order, so the
  // flush walks exactly the non-empty pairs.
  std::vector<std::vector<Handoff>> staged_;
  std::vector<std::vector<std::size_t>> dirty_;
  std::vector<std::vector<std::function<void()>>> controls_;

  Stats stats_;
  bool running_ = false;
  SimTime window_end_ = 0;  ///< current epoch's end (posts must be >= this)

  // Epoch barrier: the coordinator bumps epoch_ to release workers and
  // waits for arrived_; workers claim domains via claim_. All worker
  // visibility (active_, window_end_) is ordered by the epoch_
  // release/acquire pair.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<unsigned> arrived_{0};
  std::atomic<std::size_t> claim_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::uint32_t> active_;
  std::vector<std::exception_ptr> worker_errors_;
};

}  // namespace hrmc::sim
