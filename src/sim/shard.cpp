#include "sim/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace hrmc::sim {

namespace {

/// Bounded spin before yielding: on a loaded (or single-core) machine
/// the other side may not be running at all, and burning the timeslice
/// spinning would stall it further. ~100 relaxed loads cover the
/// uncontended case; after that, hand the core back.
class SpinWait {
 public:
  void pause() {
    if (++spins_ < 128) return;
    std::this_thread::yield();
  }

 private:
  unsigned spins_ = 0;
};

}  // namespace

ShardEngine::ShardEngine(std::size_t domains, SimTime lookahead)
    : lookahead_(lookahead) {
  if (domains == 0) {
    throw std::invalid_argument("ShardEngine: need at least one domain");
  }
  if (lookahead <= 0) {
    throw std::invalid_argument("ShardEngine: lookahead must be positive");
  }
  domains_.reserve(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    domains_.push_back(std::make_unique<Scheduler>());
  }
  staged_.resize(domains * domains);
  dirty_.resize(domains);
  controls_.resize(domains);
}

ShardEngine::~ShardEngine() = default;

void ShardEngine::post(std::size_t src, std::size_t dst, SimTime when,
                       std::size_t wire_bytes, std::function<void()> fn) {
  if (!running_) {
    // Setup/teardown: single-threaded, no window in flight.
    domains_[dst]->schedule_at(when, std::move(fn));
    return;
  }
  if (when < window_end_) {
    throw std::logic_error(
        "ShardEngine::post: handoff at " + format_time(when) +
        " violates the lookahead window ending at " +
        format_time(window_end_) +
        " — a cross-domain link is faster than the declared minimum");
  }
  auto& box = staged_[src * domains_.size() + dst];
  if (box.empty()) dirty_[src].push_back(dst);
  box.push_back({when, static_cast<std::uint32_t>(wire_bytes),
                 std::move(fn)});
}

void ShardEngine::post_control(std::size_t src, std::function<void()> fn) {
  if (!running_) {
    fn();
    return;
  }
  controls_[src].push_back(std::move(fn));
}

void ShardEngine::flush_mailboxes() {
  const std::size_t d = domains_.size();
  for (std::size_t src = 0; src < d; ++src) {
    if (dirty_[src].empty()) continue;
    for (std::size_t dst : dirty_[src]) {
      auto& box = staged_[src * d + dst];
      for (Handoff& h : box) {
        ++stats_.handoffs;
        stats_.handoff_bytes += h.bytes;
        domains_[dst]->schedule_at(h.when, std::move(h.fn));
      }
      box.clear();
    }
    dirty_[src].clear();
  }
}

void ShardEngine::apply_controls() {
  for (auto& queue : controls_) {
    for (auto& fn : queue) {
      ++stats_.control_posts;
      fn();
    }
    queue.clear();
  }
}

void ShardEngine::run_claimed(SimTime until, std::size_t worker) {
  for (;;) {
    const std::size_t k = claim_.fetch_add(1, std::memory_order_relaxed);
    if (k >= active_.size()) return;
    try {
      domains_[active_[k]]->run_until(until);
    } catch (...) {
      worker_errors_[worker] = std::current_exception();
      return;
    }
  }
}

void ShardEngine::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    SpinWait spin;
    std::uint64_t e;
    while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
      spin.pause();
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    seen = e;
    run_claimed(window_end_ - 1, worker);
    arrived_.fetch_add(1, std::memory_order_release);
  }
}

std::uint64_t ShardEngine::run(const std::function<bool()>& done,
                               SimTime horizon, unsigned threads) {
  const std::size_t d = domains_.size();
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, threads), d));
  const std::uint64_t executed_before = executed();

  running_ = true;
  stop_.store(false, std::memory_order_relaxed);
  epoch_.store(0, std::memory_order_relaxed);
  worker_errors_.assign(workers, nullptr);

  std::vector<std::thread> pool;
  pool.reserve(workers > 0 ? workers - 1 : 0);
  for (unsigned w = 1; w < workers; ++w) {
    pool.emplace_back([this, w] { worker_loop(w); });
  }
  const auto join_pool = [&] {
    if (pool.empty()) return;
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);  // wake to exit
    for (std::thread& t : pool) t.join();
    pool.clear();
  };

  try {
    for (;;) {
      // --- Serial phase (coordinator only, between windows). ---
      flush_mailboxes();
      apply_controls();

      if (done && done()) break;

      SimTime next = kTimeInfinity;
      for (auto& dom : domains_) {
        next = std::min(next, dom->next_event_time());
      }
      if (next == kTimeInfinity || next > horizon) break;

      // Window [next, next + L), clipped so no event beyond `horizon`
      // runs — the same cut run_while() makes in the serial harness.
      window_end_ = next + lookahead_;
      if (horizon != kTimeInfinity && window_end_ > horizon) {
        window_end_ = horizon + 1;
      }

      active_.clear();
      for (std::uint32_t i = 0; i < d; ++i) {
        if (domains_[i]->next_event_time() < window_end_) {
          active_.push_back(i);
        }
      }
      ++stats_.epochs;

      // --- Parallel phase. ---
      claim_.store(0, std::memory_order_relaxed);
      if (pool.empty()) {
        run_claimed(window_end_ - 1, 0);
      } else {
        arrived_.store(0, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        run_claimed(window_end_ - 1, 0);
        SpinWait spin;
        while (arrived_.load(std::memory_order_acquire) != workers - 1) {
          spin.pause();
        }
      }
      for (const std::exception_ptr& err : worker_errors_) {
        if (err) std::rethrow_exception(err);
      }
    }
  } catch (...) {
    join_pool();
    running_ = false;
    throw;
  }

  join_pool();
  running_ = false;
  return executed() - executed_before;
}

std::uint64_t ShardEngine::executed() const {
  std::uint64_t total = 0;
  for (const auto& dom : domains_) total += dom->executed();
  return total;
}

std::uint64_t ShardEngine::compactions() const {
  std::uint64_t total = 0;
  for (const auto& dom : domains_) total += dom->compactions();
  return total;
}

}  // namespace hrmc::sim
