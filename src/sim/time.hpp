// Virtual time for the discrete-event engine.
//
// All simulation time is kept as a signed 64-bit count of nanoseconds.
// 2^63 ns is ~292 years, far beyond any experiment horizon, and integer
// time keeps every run exactly reproducible (no floating-point drift in
// the event ordering).
#pragma once

#include <cstdint>
#include <string>

namespace hrmc::sim {

/// Absolute virtual time or a duration, in nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Largest representable time; used as an "infinitely far" horizon.
inline constexpr SimTime kTimeInfinity = INT64_MAX;

constexpr SimTime nanoseconds(std::int64_t n) { return n; }
constexpr SimTime microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr SimTime milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr SimTime seconds(std::int64_t n) { return n * kSecond; }

/// Converts a (possibly fractional) number of seconds to SimTime,
/// rounding to the nearest nanosecond.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + 0.5);
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Time a serializer needs to emit `bytes` at `bits_per_second`.
/// Rounds up so back-to-back packets never overlap on a link.
constexpr SimTime transmission_time(std::int64_t bytes, double bits_per_second) {
  const double secs = static_cast<double>(bytes) * 8.0 / bits_per_second;
  return static_cast<SimTime>(secs * static_cast<double>(kSecond)) + 1;
}

/// Human-readable rendering, e.g. "1.250ms", for traces and error text.
std::string format_time(SimTime t);

}  // namespace hrmc::sim
