// Deterministic discrete-event scheduler.
//
// This is the engine underneath every experiment in the repository: hosts,
// NICs and routers are all expressed as events scheduled here (the paper
// used CSIM processes; we use an event queue, which gives identical
// modelling power plus cross-platform determinism).
//
// Ordering guarantee: events fire in nondecreasing time, and events with
// equal timestamps fire in the order they were scheduled (FIFO tie-break
// via a monotone sequence number). This makes every run a pure function
// of (scenario, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace hrmc::sim {

class Scheduler;

/// Cancellation handle for a scheduled event. Handles are cheap to copy;
/// cancelling an already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call at any time.
  void cancel() {
    if (auto p = alive_.lock()) *p = false;
  }

  /// True if the event is still queued and will fire.
  [[nodiscard]] bool pending() const {
    auto p = alive_.lock();
    return p && *p;
  }

 private:
  friend class Scheduler;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (must be >= now()).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after the current time.
  EventHandle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or `horizon` is passed.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon = kTimeInfinity);

  /// Runs events while `keep_going()` is true (checked between events),
  /// bounded by `horizon`. Returns the number of events executed.
  std::uint64_t run_while(const std::function<bool()>& keep_going,
                          SimTime horizon = kTimeInfinity);

  /// Executes at most one event. Returns false if the queue was empty or
  /// the next event lies beyond `horizon` (time does not advance then).
  bool step(SimTime horizon = kTimeInfinity);

  /// Number of events currently queued (including cancelled tombstones).
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime when = 0;
    std::uint64_t seq = 0;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace hrmc::sim
