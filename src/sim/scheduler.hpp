// Deterministic discrete-event scheduler.
//
// This is the engine underneath every experiment in the repository: hosts,
// NICs and routers are all expressed as events scheduled here (the paper
// used CSIM processes; we use an event queue, which gives identical
// modelling power plus cross-platform determinism).
//
// Ordering guarantee: events fire in nondecreasing time, and events with
// equal timestamps fire in the order they were scheduled (FIFO tie-break
// via a monotone sequence number). This makes every run a pure function
// of (scenario, seed).
//
// Storage: callbacks live in a slab of recycled slots (a deque, so slots
// never move), and the priority queue holds 24-byte POD entries that
// reference slots by (index, generation). Cancellation bumps the slot's
// generation — the queue entry becomes a tombstone that is skipped when
// popped, or swept early by lazy compaction once tombstones exceed half
// the queue *and* an absolute floor (so small queues never pay a
// rebuild; sweeps are counted in compactions() for the bench).
// In steady state schedule_after() allocates nothing: slots
// are reused, the heap vector's capacity is reused, and callbacks whose
// captures fit 64 bytes are stored inline in the slot (larger ones fall
// back to the heap).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace hrmc::sim {

class Scheduler;

namespace detail {

/// Type-erased move-constructed callable with inline storage sized for
/// the simulator's event lambdas (a couple of pointers plus an
/// SkBuffPtr). Unlike std::function it is neither copyable nor movable
/// — it is constructed in a slab slot, invoked there, and destroyed
/// there — which is exactly what lets it skip the allocation
/// std::function would do for captures beyond ~16 bytes.
class EventFn {
 public:
  EventFn() = default;
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    reset();
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      heap_ = new Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { delete static_cast<Fn*>(p); };
    }
  }

  void reset() {
    if (invoke_ == nullptr) return;
    destroy_(target());
    invoke_ = nullptr;
    destroy_ = nullptr;
    heap_ = nullptr;
  }

  void operator()() { invoke_(target()); }

  [[nodiscard]] bool has_value() const { return invoke_ != nullptr; }

 private:
  static constexpr std::size_t kInlineBytes = 64;

  void* target() { return heap_ != nullptr ? heap_ : inline_; }

  alignas(std::max_align_t) unsigned char inline_[kInlineBytes];
  void* heap_ = nullptr;  ///< set when the callable exceeds inline_
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// Scheduler internals shared with EventHandles so a handle outliving
/// its Scheduler degrades to a no-op instead of dangling. One core per
/// *scheduler*, not per event, kept alive by an intrusive refcount
/// (the Scheduler plus every live handle). The count is deliberately
/// non-atomic: a simulation cell is single-threaded by construction —
/// the same invariant the kern::SkBuff block pool relies on — and
/// handles never cross cells, so the atomic RMWs a shared_ptr would
/// issue per handle copy/cancel are pure overhead on this hot path.
struct SchedulerCore {
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;  ///< bumped on fire/cancel; stale entries skip
    std::uint32_t next_free = kNoSlot;
    bool armed = false;  ///< an un-fired, un-cancelled queue entry exists
  };

  /// Heap entry: plain data, 24 bytes; the callable stays in its slot.
  struct Entry {
    SimTime when = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for equal timestamps
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  /// Compaction trigger: tombstones must both outnumber live entries
  /// and reach this floor. Without the floor a tiny queue (2 events,
  /// 1 cancel) would pay a full O(n) rebuild on nearly every cancel;
  /// with it, small queues let pops retire tombstones for free and the
  /// sweep runs only when it reclaims meaningful memory.
  static constexpr std::size_t kCompactMinTombstones = 64;

  std::deque<Slot> slots;  // deque: growth never moves existing slots
  std::uint32_t free_head = kNoSlot;
  std::vector<Entry> heap;  // min-heap by (when, seq) via std::*_heap
  std::size_t tombstones = 0;
  SimTime now = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t executed = 0;
  std::uint64_t compactions = 0;  ///< lazy sweeps run (wasted-work stat)
  std::uint32_t refs = 1;  ///< owning Scheduler + live EventHandles
  bool dead = false;       ///< the owning Scheduler was destroyed

  static bool later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  std::uint32_t acquire_slot();
  void free_slot(std::uint32_t idx);

  [[nodiscard]] bool live(const Entry& e) const {
    const Slot& s = slots[e.slot];
    return s.armed && s.gen == e.gen;
  }

  bool cancel(std::uint32_t slot, std::uint32_t gen);

  /// Removes every tombstone from the heap and re-heapifies. O(n);
  /// amortized O(1) per cancel since it only runs after n/2 of them
  /// (and never below kCompactMinTombstones of them).
  void compact();

  /// Time of the earliest live entry (kTimeInfinity when none). Pops
  /// any tombstones sitting on top — the same work step() would do —
  /// so peeking never changes what runs or in what order.
  [[nodiscard]] SimTime next_event_time();
};

inline void core_ref(SchedulerCore* c) {
  if (c != nullptr) ++c->refs;
}

inline void core_unref(SchedulerCore* c) {
  if (c != nullptr && --c->refs == 0) delete c;
}

}  // namespace detail

/// Cancellation handle for a scheduled event. Handles are cheap to copy;
/// cancelling an already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(const EventHandle& other)
      : core_(other.core_), slot_(other.slot_), gen_(other.gen_) {
    detail::core_ref(core_);
  }
  EventHandle(EventHandle&& other) noexcept
      : core_(other.core_), slot_(other.slot_), gen_(other.gen_) {
    other.core_ = nullptr;
  }
  EventHandle& operator=(const EventHandle& other) {
    detail::core_ref(other.core_);
    detail::core_unref(core_);
    core_ = other.core_;
    slot_ = other.slot_;
    gen_ = other.gen_;
    return *this;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    std::swap(core_, other.core_);
    slot_ = other.slot_;
    gen_ = other.gen_;
    return *this;
  }
  ~EventHandle() { detail::core_unref(core_); }

  /// Prevents the event from firing (and releases its captures
  /// immediately). Safe to call at any time, including after the
  /// scheduler itself is gone.
  void cancel() {
    if (core_ != nullptr && !core_->dead) core_->cancel(slot_, gen_);
  }

  /// True if the event is still queued and will fire.
  [[nodiscard]] bool pending() const {
    return core_ != nullptr && !core_->dead && core_->slots[slot_].armed &&
           core_->slots[slot_].gen == gen_;
  }

 private:
  friend class Scheduler;
  EventHandle(detail::SchedulerCore* core, std::uint32_t slot,
              std::uint32_t gen)
      : core_(core), slot_(slot), gen_(gen) {
    detail::core_ref(core_);
  }

  detail::SchedulerCore* core_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  Scheduler() : core_(new detail::SchedulerCore()) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler() {
    core_->dead = true;  // outstanding handles turn inert
    detail::core_unref(core_);
  }

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return core_->now; }

  /// Schedules `fn` to run at absolute time `when` (must be >= now()).
  /// Accepts any callable; in steady state this allocates nothing (see
  /// file comment).
  template <typename F>
  EventHandle schedule_at(SimTime when, F&& fn) {
    detail::SchedulerCore& c = *core_;
    if (when < c.now) throw_past(when);
    const std::uint32_t slot = c.acquire_slot();
    detail::SchedulerCore::Slot& s = c.slots[slot];
    s.fn.emplace(std::forward<F>(fn));
    s.armed = true;
    c.heap.push_back({when, c.next_seq++, slot, s.gen});
    std::push_heap(c.heap.begin(), c.heap.end(), detail::SchedulerCore::later);
    return EventHandle{core_, slot, s.gen};
  }

  /// Schedules `fn` to run `delay` after the current time.
  template <typename F>
  EventHandle schedule_after(SimTime delay, F&& fn) {
    return schedule_at(core_->now + delay, std::forward<F>(fn));
  }

  /// Runs events until the queue is empty or `horizon` is passed.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon = kTimeInfinity);

  /// Runs events while `keep_going()` is true (checked between events),
  /// bounded by `horizon`. Returns the number of events executed.
  std::uint64_t run_while(const std::function<bool()>& keep_going,
                          SimTime horizon = kTimeInfinity);

  /// Executes at most one event. Returns false if the queue was empty or
  /// the next event lies beyond `horizon` (time does not advance then).
  bool step(SimTime horizon = kTimeInfinity);

  /// Number of *live* (non-cancelled) events currently queued.
  [[nodiscard]] std::size_t queued() const {
    return core_->heap.size() - core_->tombstones;
  }

  /// Cancelled entries still occupying the queue, awaiting pop or
  /// compaction. Observability only; they never fire.
  [[nodiscard]] std::size_t tombstones() const { return core_->tombstones; }

  /// Lazy tombstone sweeps run so far — the "wasted work" counter the
  /// bench reports next to events/sec.
  [[nodiscard]] std::uint64_t compactions() const {
    return core_->compactions;
  }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const { return core_->executed; }

  /// Timestamp of the next live event, kTimeInfinity when the queue is
  /// empty. The sharded engine uses this to pick each epoch window.
  [[nodiscard]] SimTime next_event_time() { return core_->next_event_time(); }

 private:
  [[noreturn]] void throw_past(SimTime when) const;

  detail::SchedulerCore* core_;
};

}  // namespace hrmc::sim
