#include "baseline/minitcp.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>

namespace hrmc::baseline {

using kern::Seq;
using kern::seq_after;
using kern::seq_after_eq;
using kern::seq_before;
using kern::seq_before_eq;
using kern::seq_diff;
using kern::seq_max;
using proto::Header;
using proto::PacketType;

// --------------------------------------------------------------------
// Sender
// --------------------------------------------------------------------

MiniTcpSender::MiniTcpSender(net::Host& host, const MiniTcpConfig& cfg,
                             net::Port local_port, net::Endpoint peer)
    : host_(host),
      cfg_(cfg),
      local_port_(local_port),
      peer_(peer),
      cwnd_(cfg.init_cwnd_segments * cfg.mss),
      ssthresh_(cfg.sndbuf),
      rtt_(cfg.initial_rtt, sim::microseconds(100)),
      rto_timer_(host.scheduler(), [this] { rto_fire(); }) {
  snd_una_ = snd_nxt_ = cfg_.initial_seq;
  host_.register_transport(kIpProtoMiniTcp, this);
}

MiniTcpSender::~MiniTcpSender() {
  host_.unregister_transport(kIpProtoMiniTcp);
}

void MiniTcpSender::stop() { rto_timer_.del_timer(); }

std::size_t MiniTcpSender::send(std::span<const std::uint8_t> data) {
  if (fin_closed_) return 0;
  std::size_t accepted = 0;
  while (accepted < data.size() && queued_bytes_ < cfg_.sndbuf) {
    const std::size_t take = std::min(
        {data.size() - accepted, cfg_.mss, cfg_.sndbuf - queued_bytes_});
    Segment seg;
    seg.seq_begin = snd_nxt_;
    seg.seq_end = snd_nxt_ + static_cast<Seq>(take);
    seg.payload = kern::SkBuff::alloc(take, Header::kSize + 44);
    std::memcpy(seg.payload->put(take), data.data() + accepted, take);
    segments_.push_back(std::move(seg));
    snd_nxt_ += static_cast<Seq>(take);
    queued_bytes_ += take;
    accepted += take;
  }
  if (accepted > 0) pump();
  return accepted;
}

void MiniTcpSender::close() {
  if (fin_closed_) return;
  fin_closed_ = true;
  if (!segments_.empty() && !segments_.back().sent) {
    segments_.back().fin = true;
    return;
  }
  // Everything already left (possibly already acknowledged): the FIN
  // needs its own reliable, retransmittable segment.
  Segment fin;
  fin.seq_begin = snd_nxt_;
  fin.seq_end = snd_nxt_;
  fin.payload = kern::SkBuff::alloc(0, Header::kSize + 44);
  fin.fin = true;
  segments_.push_back(std::move(fin));
  pump();
}

void MiniTcpSender::pump() {
  while (first_unsent_ < segments_.size()) {
    Segment& seg = segments_[first_unsent_];
    const std::size_t in_flight =
        static_cast<std::size_t>(seq_diff(snd_una_, seg.seq_begin));
    const std::size_t len =
        static_cast<std::size_t>(seq_diff(seg.seq_begin, seg.seq_end));
    if (in_flight + len > cwnd_) break;
    if (seg.tries > 0) {
      stats_.retransmissions++;  // go-back-N resend after a timeout
    } else {
      stats_.data_packets_sent++;
      stats_.bytes_sent += len;
    }
    transmit(seg);
    seg.sent = true;
    ++first_unsent_;
  }
  arm_rto();
}

void MiniTcpSender::transmit(Segment& seg) {
  kern::SkBuffPtr skb = seg.payload->clone();
  Header h;
  h.sport = local_port_;
  h.dport = peer_.port;
  h.seq = seg.seq_begin;
  h.length = static_cast<std::uint32_t>(skb->size());
  if (seg.tries < 255) ++seg.tries;
  h.tries = seg.tries;
  h.type = PacketType::kData;
  h.fin = seg.fin;
  proto::write_header(*skb, h);
  skb->daddr = peer_.addr;
  skb->protocol = kIpProtoMiniTcp;
  seg.last_sent = host_.scheduler().now();
  seg.sent = true;
  host_.send(std::move(skb));
}

void MiniTcpSender::rx(kern::SkBuffPtr skb) {
  auto h = proto::read_header(*skb);
  if (!h || h->dport != local_port_) return;
  if (h->type != PacketType::kUpdate) return;
  on_ack(h->seq, h->fin);
}

void MiniTcpSender::on_ack(Seq ack, bool fin_echo) {
  stats_.acks_received++;
  // A bare FIN (zero-length segment) cannot advance the cumulative ack;
  // it is acknowledged by an ack that echoes the FIN flag (the receiver
  // sets it once the whole stream, including the FIN, is in hand).
  if (fin_echo && !segments_.empty() && segments_.front().fin &&
      segments_.front().seq_begin == segments_.front().seq_end &&
      segments_.front().sent &&
      seq_after_eq(ack, segments_.front().seq_end)) {
    segments_.pop_front();
    if (first_unsent_ > 0) --first_unsent_;
    if (segments_.empty() && fin_closed_ && !finished_reported_) {
      finished_reported_ = true;
      rto_timer_.del_timer();
      if (on_finished) on_finished();
    }
  }
  if (seq_after(ack, snd_una_)) {
    // New data acknowledged.
    dupacks_ = 0;
    rto_backoff_factor_ = 1;
    bool freed = false;
    while (!segments_.empty() &&
           seq_before_eq(segments_.front().seq_end, ack)) {
      Segment& seg = segments_.front();
      if (seg.fin && seg.seq_begin == seg.seq_end) {
        // A bare FIN sits exactly at the cumulative ack; only an ack
        // that echoes the FIN flag (handled above) retires it.
        break;
      }
      if (seg.tries == 1) {
        rtt_.sample(host_.scheduler().now() - seg.last_sent);
      }
      queued_bytes_ -=
          static_cast<std::size_t>(seq_diff(seg.seq_begin, seg.seq_end));
      segments_.pop_front();
      if (first_unsent_ > 0) --first_unsent_;
      freed = true;
    }
    snd_una_ = ack;
    // Window growth: slow start below ssthresh, else linear.
    if (cwnd_ < ssthresh_) {
      cwnd_ += cfg_.mss;
    } else {
      cwnd_ += std::max<std::size_t>(1, cfg_.mss * cfg_.mss / cwnd_);
    }
    pump();
    if (freed && on_writable) on_writable();
    if (fin_closed_ && segments_.empty() && !finished_reported_) {
      finished_reported_ = true;
      rto_timer_.del_timer();
      if (on_finished) on_finished();
    }
  } else if (ack == snd_una_ && !segments_.empty()) {
    if (++dupacks_ == 3) {
      // Fast retransmit + multiplicative decrease.
      stats_.fast_retransmits++;
      stats_.retransmissions++;
      ssthresh_ = std::max(cwnd_ / 2, 2 * cfg_.mss);
      cwnd_ = ssthresh_;
      transmit(segments_.front());
      dupacks_ = 0;
    }
  }
  arm_rto();
}

void MiniTcpSender::arm_rto() {
  if (segments_.empty() || !segments_.front().sent) {
    rto_timer_.del_timer();
    return;
  }
  const sim::SimTime rto =
      std::max(cfg_.min_rto, rtt_.rto()) * rto_backoff_factor_;
  rto_timer_.mod_timer_in(
      std::max<kern::Jiffies>(1, kern::to_jiffies(rto)));
}

void MiniTcpSender::rto_fire() {
  if (segments_.empty() || !segments_.front().sent) return;
  stats_.timeouts++;
  ssthresh_ = std::max(cwnd_ / 2, 2 * cfg_.mss);
  cwnd_ = cfg_.mss;
  rto_backoff_factor_ = std::min<sim::SimTime>(rto_backoff_factor_ * 2, 64);
  // Tahoe-style go-back-N: roll snd_nxt back to snd_una; everything
  // unacknowledged will be resent under the collapsed window as ACKs
  // reopen it (a front-segment-only resend recovers one hole per backed-
  // off RTO and grinds multi-loss windows to a halt).
  first_unsent_ = 0;
  pump();
}

// --------------------------------------------------------------------
// Receiver
// --------------------------------------------------------------------

MiniTcpReceiver::MiniTcpReceiver(net::Host& host, const MiniTcpConfig& cfg,
                                 net::Port local_port)
    : host_(host), cfg_(cfg), local_port_(local_port) {
  rcv_nxt_ = cfg_.initial_seq;
  host_.register_transport(kIpProtoMiniTcp, this);
}

MiniTcpReceiver::~MiniTcpReceiver() {
  host_.unregister_transport(kIpProtoMiniTcp);
}

std::size_t MiniTcpReceiver::recv(std::span<std::uint8_t> out) {
  std::size_t copied = 0;
  while (copied < out.size() && !receive_queue_.empty()) {
    const kern::SkBuffPtr& front = receive_queue_.front();
    const std::size_t take = std::min(out.size() - copied, front->size());
    std::memcpy(out.data() + copied, front->data(), take);
    copied += take;
    if (take == front->size()) {
      receive_queue_.pop_front();
    } else {
      kern::SkBuffPtr seg = receive_queue_.pop_front();
      seg->pull(take);
      receive_queue_.push_front(std::move(seg));
    }
  }
  stats_.bytes_delivered += copied;
  return copied;
}

void MiniTcpReceiver::rx(kern::SkBuffPtr skb) {
  auto h = proto::read_header(*skb);
  if (!h || h->dport != local_port_) return;
  if (h->type != PacketType::kData) return;
  peer_ = net::Endpoint{skb->saddr, h->sport};

  Seq begin = h->seq;
  const Seq end = h->seq + h->length;
  if (h->fin) fin_seq_ = end;

  if (seq_before_eq(end, rcv_nxt_) ||
      receive_queue_.bytes() + ooo_bytes_ + h->length > cfg_.rcvbuf) {
    send_ack();
    return;
  }
  if (seq_before(begin, rcv_nxt_)) {
    skb->pull(static_cast<std::size_t>(seq_diff(begin, rcv_nxt_)));
    begin = rcv_nxt_;
  }

  if (begin == rcv_nxt_) {
    receive_queue_.push_back(std::move(skb));
    rcv_nxt_ = end;
    // Drain contiguous out-of-order segments.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && seq_before_eq(it->begin, rcv_nxt_)) {
      ooo_bytes_ -= static_cast<std::size_t>(seq_diff(it->begin, it->end));
      if (seq_after(it->end, rcv_nxt_)) {
        it->skb->pull(static_cast<std::size_t>(seq_diff(it->begin, rcv_nxt_)));
        receive_queue_.push_back(std::move(it->skb));
        rcv_nxt_ = it->end;
      }
      ++it;
    }
    out_of_order_.erase(out_of_order_.begin(), it);
    if (on_readable) on_readable();
    if (complete() && !complete_reported_) {
      complete_reported_ = true;
      if (on_complete) on_complete();
    }
  } else {
    // Out of order: store unless a stored segment already covers it.
    // The insertion point is found by scanning from the *tail* — within
    // a loss episode the segments behind the hole still arrive in
    // order, so new segments nearly always sort after everything
    // buffered and the backward scan is O(1). Only the last segment
    // starting at or before `begin` can cover us (any earlier candidate
    // would itself have been covered on insert and rejected).
    auto pos = out_of_order_.end();
    while (pos != out_of_order_.begin() &&
           seq_after(std::prev(pos)->begin, begin)) {
      --pos;
    }
    const bool covered = pos != out_of_order_.begin() &&
                         seq_after_eq(std::prev(pos)->end, end);
    if (!covered) {
      ooo_bytes_ += static_cast<std::size_t>(seq_diff(begin, end));
      out_of_order_.insert(pos, OooSeg{begin, end, std::move(skb)});
    }
  }
  send_ack();
}

void MiniTcpReceiver::send_ack() {
  if (peer_.addr == 0) return;
  stats_.acks_sent++;
  kern::SkBuffPtr skb = kern::SkBuff::alloc(0, Header::kSize + 44);
  Header h;
  h.sport = local_port_;
  h.dport = peer_.port;
  h.seq = rcv_nxt_;
  h.type = PacketType::kUpdate;  // UPDATE doubles as the cumulative ACK
  h.fin = complete();            // echo: the FIN (and everything) arrived
  h.tries = 1;
  proto::write_header(*skb, h);
  skb->daddr = peer_.addr;
  skb->protocol = kIpProtoMiniTcp;
  host_.send(std::move(skb));
}

}  // namespace hrmc::baseline
