// Minimal TCP-like unicast reliable stream ("mini-TCP").
//
// The paper's conclusions compare H-RMC's throughput to TCP's. This
// baseline provides a like-for-like comparator over the same simulated
// hosts and network: cumulative ACKs, a congestion window with slow
// start / congestion avoidance, fast retransmit on triple duplicate
// ACKs, and an RTO with exponential backoff. It reuses the H-RMC header
// codec (DATA segments; UPDATE packets double as cumulative ACKs) and
// registers under IP protocol 6.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "hrmc/rtt.hpp"
#include "hrmc/wire.hpp"
#include "kern/timer.hpp"
#include "net/host.hpp"

namespace hrmc::baseline {

inline constexpr std::uint8_t kIpProtoMiniTcp = 6;

struct MiniTcpConfig {
  std::size_t sndbuf = 256 * 1024;
  std::size_t rcvbuf = 256 * 1024;
  std::size_t mss = 1460;
  std::size_t init_cwnd_segments = 2;
  sim::SimTime initial_rtt = sim::milliseconds(100);
  sim::SimTime min_rto = sim::milliseconds(20);
  static constexpr kern::Seq kInitialSeq = 1;
  /// First sequence number of the stream. Both ends must agree (there
  /// is no SYN exchange). Tests set this near 2^32 to exercise the
  /// modular-arithmetic paths across the sequence wrap.
  kern::Seq initial_seq = kInitialSeq;
};

struct MiniTcpStats {
  std::uint64_t data_packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t bytes_delivered = 0;
};

class MiniTcpSender final : public net::Transport {
 public:
  MiniTcpSender(net::Host& host, const MiniTcpConfig& cfg,
                net::Port local_port, net::Endpoint peer);
  ~MiniTcpSender() override;

  std::size_t send(std::span<const std::uint8_t> data);
  void close();
  [[nodiscard]] bool finished() const {
    return fin_closed_ && segments_.empty();
  }
  [[nodiscard]] std::size_t free_space() const {
    return cfg_.sndbuf - queued_bytes_;
  }

  std::function<void()> on_writable;
  std::function<void()> on_finished;

  [[nodiscard]] const MiniTcpStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t cwnd() const { return cwnd_; }

  void rx(kern::SkBuffPtr skb) override;
  void stop();

 private:
  struct Segment {
    kern::Seq seq_begin = 0;
    kern::Seq seq_end = 0;
    kern::SkBuffPtr payload;
    sim::SimTime last_sent = 0;
    std::uint8_t tries = 0;
    bool sent = false;
    bool fin = false;
  };

  void pump();
  void transmit(Segment& seg);
  void on_ack(kern::Seq ack, bool fin_echo);
  void rto_fire();
  void arm_rto();

  net::Host& host_;
  MiniTcpConfig cfg_;
  net::Port local_port_;
  net::Endpoint peer_;

  std::deque<Segment> segments_;
  std::size_t first_unsent_ = 0;
  std::size_t queued_bytes_ = 0;
  kern::Seq snd_una_ = MiniTcpConfig::kInitialSeq;
  kern::Seq snd_nxt_ = MiniTcpConfig::kInitialSeq;
  bool fin_closed_ = false;
  bool finished_reported_ = false;

  std::size_t cwnd_;
  std::size_t ssthresh_;
  int dupacks_ = 0;
  kern::Seq last_ack_ = 0;

  proto::RttEstimator rtt_;
  sim::SimTime rto_backoff_factor_ = 1;
  kern::TimerList rto_timer_;
  MiniTcpStats stats_;
};

class MiniTcpReceiver final : public net::Transport {
 public:
  MiniTcpReceiver(net::Host& host, const MiniTcpConfig& cfg,
                  net::Port local_port);
  ~MiniTcpReceiver() override;

  std::size_t recv(std::span<std::uint8_t> out);
  [[nodiscard]] std::size_t available() const {
    return receive_queue_.bytes();
  }
  [[nodiscard]] bool complete() const {
    return fin_seq_.has_value() && rcv_nxt_ == *fin_seq_;
  }
  [[nodiscard]] bool eof() const { return complete() && available() == 0; }

  std::function<void()> on_readable;
  std::function<void()> on_complete;

  [[nodiscard]] const MiniTcpStats& stats() const { return stats_; }
  [[nodiscard]] kern::Seq rcv_nxt() const { return rcv_nxt_; }

  void rx(kern::SkBuffPtr skb) override;

 private:
  struct OooSeg {
    kern::Seq begin = 0;
    kern::Seq end = 0;
    kern::SkBuffPtr skb;
  };

  void send_ack();

  net::Host& host_;
  MiniTcpConfig cfg_;
  net::Port local_port_;
  net::Endpoint peer_{};  // learned from the first segment

  kern::Seq rcv_nxt_ = MiniTcpConfig::kInitialSeq;
  kern::SkBuffQueue receive_queue_;
  std::vector<OooSeg> out_of_order_;
  std::size_t ooo_bytes_ = 0;
  std::optional<kern::Seq> fin_seq_;
  bool complete_reported_ = false;
  MiniTcpStats stats_;
};

}  // namespace hrmc::baseline
