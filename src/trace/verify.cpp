#include "trace/verify.hpp"

#include <algorithm>
#include <unordered_map>

#include "kern/jiffies.hpp"
#include "kern/seq.hpp"

namespace hrmc::trace {

using kern::Seq;
using kern::seq_after;
using kern::seq_after_eq;
using kern::seq_before;
using kern::seq_before_eq;
using kern::seq_diff;
using kern::seq_max;
using kern::seq_min;

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kNone: return "none";
    case EventKind::kSend: return "send";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kRelease: return "release";
    case EventKind::kProbe: return "probe";
    case EventKind::kRateCut: return "rate_cut";
    case EventKind::kUrgentStop: return "urgent_stop";
    case EventKind::kStallOpen: return "stall_open";
    case EventKind::kStallClose: return "stall_close";
    case EventKind::kEvict: return "evict";
    case EventKind::kDeadRelease: return "dead_release";
    case EventKind::kNakErr: return "nak_err";
    case EventKind::kJoined: return "joined";
    case EventKind::kResyncJoin: return "resync_join";
    case EventKind::kResync: return "resync";
    case EventKind::kRejoin: return "rejoin";
    case EventKind::kLeave: return "leave";
    case EventKind::kAggUpdate: return "agg_update";
    case EventKind::kNakPeerSuppress: return "nak_peer_suppress";
    case EventKind::kRepairTx: return "repair_tx";
    case EventKind::kNakForward: return "nak_forward";
    case EventKind::kFecRepair: return "fec_repair";
    case EventKind::kFecDecodeFail: return "fec_decode_fail";
    case EventKind::kNakEmit: return "nak";
    case EventKind::kNakSuppress: return "nak_suppress";
    case EventKind::kUpdate: return "update";
    case EventKind::kRateRequest: return "rate_request";
    case EventKind::kUpdatePeriod: return "update_period";
    case EventKind::kOooInsert: return "ooo_insert";
    case EventKind::kRegion: return "region";
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDrop: return "drop";
    case EventKind::kDeviceFull: return "device_full";
    case EventKind::kCorrupt: return "corrupt";
    case EventKind::kAllocFail: return "alloc_fail";
    case EventKind::kCacheEvict: return "cache_evict";
    case EventKind::kDown: return "down";
    case EventKind::kUp: return "up";
  }
  return "?";
}

namespace {

/// Per-receiver view for the release-safety invariant.
struct RcvState {
  bool armed = false;   ///< kJoined seen: participates in the gate
  bool exempt = false;  ///< crashed / evicted / dead-released
  /// Joined a local repairer (kFlagAggregated): release safety for this
  /// host is carried by its repairer's AGG_UPDATE subtree minimum.
  bool aggregated = false;
  Seq high = 0;         ///< highest rcv_nxt this receiver ever reported
};

/// An unanswered NAK range.
struct PendingNak {
  std::uint16_t host = 0;
  Seq from = 0;
  Seq to = 0;
  sim::SimTime first_emit = 0;
};

class Verifier {
 public:
  Verifier(const VerifyOptions& opt, VerifyResult& res)
      : opt_(opt), res_(res) {}

  void run(const std::vector<TraceRecord>& records) {
    for (const TraceRecord& r : records) step(r);
    if (!records.empty()) finish(records.back().t);
  }

 private:
  void violate(const TraceRecord& r, const std::string& what) {
    res_.ok = false;
    ++res_.violation_count;
    if (res_.violations.size() < opt_.max_violations) {
      res_.violations.push_back(
          "t=" + std::to_string(r.t) + " host=" + std::to_string(r.host) +
          " " + kind_name(r.kind) + ": " + what);
    }
  }

  // --- receiver bookkeeping shared by invariants 1 and 2 ---

  RcvState& rcv(std::uint16_t host) { return receivers_[host]; }

  void note_coverage(const TraceRecord& r, Seq reported) {
    RcvState& s = rcv(r.host);
    if (!s.armed) return;  // pre-JOIN feedback cannot arm the gate
    if (seq_after(reported, s.high)) s.high = reported;
    clear_naks_below(r.host, reported);
  }

  // --- invariant 2 helpers ---

  void add_pending_nak(const TraceRecord& r) {
    Seq from = r.seq_begin;
    Seq to = r.seq_end;
    sim::SimTime first = r.t;
    // Merge with overlapping/adjacent pendings from the same receiver
    // (NAK re-sends keep the original deadline).
    for (std::size_t i = pending_.size(); i-- > 0;) {
      const PendingNak& p = pending_[i];
      if (p.host != r.host) continue;
      if (seq_before(to, p.from) || seq_before(p.to, from)) continue;
      from = seq_min(from, p.from);
      to = seq_max(to, p.to);
      first = std::min(first, p.first_emit);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    pending_.push_back(PendingNak{r.host, from, to, first});
    ++res_.naks_checked;
  }

  /// The sender answered [from, to) (retransmission is multicast, and a
  /// NAK_ERR means the data is gone for everyone): every overlapping
  /// pending range, for every receiver, is checked against the bound
  /// and trimmed.
  void answer_naks(const TraceRecord& r, Seq from, Seq to) {
    std::vector<PendingNak> keep;
    keep.reserve(pending_.size());
    for (PendingNak& p : pending_) {
      if (seq_before_eq(to, p.from) || seq_before_eq(p.to, from)) {
        keep.push_back(p);
        continue;
      }
      if (r.t - p.first_emit > opt_.nak_answer_bound) {
        violate(r, "NAK from host " + std::to_string(p.host) + " for [" +
                       std::to_string(p.from) + "," + std::to_string(p.to) +
                       ") answered " +
                       std::to_string(r.t - p.first_emit) +
                       " ns after first emission (bound " +
                       std::to_string(opt_.nak_answer_bound) + ")");
      }
      // Unanswered remnants on either side keep the original deadline.
      if (seq_before(p.from, from)) {
        keep.push_back(PendingNak{p.host, p.from, from, p.first_emit});
      }
      if (seq_before(to, p.to)) {
        keep.push_back(PendingNak{p.host, to, p.to, p.first_emit});
      }
    }
    pending_ = std::move(keep);
  }

  /// Receiver `host` holds everything below `reported`.
  void clear_naks_below(std::uint16_t host, Seq reported) {
    for (std::size_t i = pending_.size(); i-- > 0;) {
      PendingNak& p = pending_[i];
      if (p.host != host) continue;
      if (seq_before_eq(reported, p.from)) continue;
      if (seq_before(p.from, reported)) p.from = seq_min(reported, p.to);
      if (!seq_before(p.from, p.to)) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  /// Receiver buffered [from, to): any pending hole it covers is moot.
  void fill_naks(std::uint16_t host, Seq from, Seq to) {
    std::vector<PendingNak> extra;
    for (std::size_t i = pending_.size(); i-- > 0;) {
      PendingNak& p = pending_[i];
      if (p.host != host) continue;
      if (seq_before_eq(to, p.from) || seq_before_eq(p.to, from)) continue;
      PendingNak left{p.host, p.from, seq_min(from, p.to), p.first_emit};
      PendingNak right{p.host, seq_max(to, p.from), p.to, p.first_emit};
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      if (seq_before(left.from, left.to)) extra.push_back(left);
      if (seq_before(right.from, right.to)) extra.push_back(right);
    }
    pending_.insert(pending_.end(), extra.begin(), extra.end());
  }

  void drop_naks(std::uint16_t host) {
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [host](const PendingNak& p) {
                                    return p.host == host;
                                  }),
                   pending_.end());
  }

  // --- invariant 3 helpers ---

  static double burst_cap(double rate) {
    // One pump's worth at full budget (dt capped at a jiffy) on top of
    // a full inter-pump accrual, plus the sub-MSS carry and per-packet
    // rounding. Anything past this is genuinely above the advertisement.
    return 2.0 * rate * sim::to_seconds(kern::kJiffy) + 8.0 * 1500.0;
  }

  void account_send(const TraceRecord& r) {
    ++res_.sends_checked;
    const double adv = static_cast<double>(r.value);
    const double bytes =
        static_cast<double>(seq_diff(r.seq_begin, r.seq_end));
    if (!bucket_primed_) {
      bucket_primed_ = true;
      tokens_ = burst_cap(adv);
    } else {
      const double dt = sim::to_seconds(r.t - last_send_t_);
      const double accrue_rate = std::max(last_adv_, adv);
      tokens_ = std::min(tokens_ + accrue_rate * dt,
                         burst_cap(std::max(last_adv_, adv)));
    }
    last_send_t_ = r.t;
    last_adv_ = adv;
    tokens_ -= bytes;
    if (tokens_ < -1e-6) {
      violate(r, "sent " + std::to_string(static_cast<std::int64_t>(bytes)) +
                     " bytes with only " +
                     std::to_string(static_cast<std::int64_t>(tokens_ + bytes)) +
                     " byte-tokens at advertised rate " +
                     std::to_string(static_cast<std::uint64_t>(adv)));
      tokens_ = 0;  // report once per excursion, not per packet
    }
    if (r.kind == EventKind::kSend && r.t < stop_until_) {
      violate(r, "new data sent at t=" + std::to_string(r.t) +
                     " during urgent stop (until " +
                     std::to_string(stop_until_) + ")");
    }
  }

  // --- event dispatch ---

  void step(const TraceRecord& r) {
    switch (r.kind) {
      case EventKind::kJoined: {
        RcvState& s = rcv(r.host);
        s.armed = true;
        s.exempt = false;
        // Aggregated child (joined a local repairer): its position
        // reaches the sender only through the repairer's AGG_UPDATE
        // subtree minimum, so release safety is judged against that
        // aggregate, not this host's own reports. A later flat re-JOIN
        // (failover to the sender) re-arms it as a direct member.
        s.aggregated = (r.flags & kFlagAggregated) != 0;
        s.high = r.seq_begin;
        addr_to_host_[r.value] = r.host;
        break;
      }
      case EventKind::kResync: {
        RcvState& s = rcv(r.host);
        s.exempt = false;
        s.high = r.seq_begin;
        if (opt_.check_nak) drop_naks(r.host);
        break;
      }
      case EventKind::kResyncJoin:
        // Between restart and re-anchor the receiver's reports are
        // stale; the kJoined/kResync that follows re-arms it.
        rcv(r.host).exempt = true;
        break;
      case EventKind::kLeave:
        // Clean departure (churn): the receiver stops reporting and
        // stops re-sending NAKs, so it can no longer gate releases or
        // hold the sender to the NAK-answer bound.
        rcv(r.host).exempt = true;
        if (opt_.check_nak) drop_naks(r.host);
        break;
      case EventKind::kUpdate:
      case EventKind::kRateRequest:
      case EventKind::kNakSuppress:
      case EventKind::kNakPeerSuppress:
        note_coverage(r, r.seq_begin);
        break;
      case EventKind::kAggUpdate:
        // Aggregated subtree UPDATE: seq_begin is the *minimum* over the
        // represented leaves, so raising the emitter's high-water with it
        // is conservative — release safety is judged against subtree
        // minima, never against a leaf the aggregate outran.
        note_coverage(r, r.seq_begin);
        break;
      case EventKind::kNakEmit:
      case EventKind::kNakForward:
        // A forwarded child NAK binds the sender exactly like a leaf NAK:
        // the repairer could not serve it locally, so only the sender's
        // (multicast) retransmission can answer it.
        note_coverage(r, static_cast<Seq>(r.value));
        if (opt_.check_nak) add_pending_nak(r);
        break;
      case EventKind::kOooInsert:
        if (opt_.check_nak) fill_naks(r.host, r.seq_begin, r.seq_end);
        break;
      case EventKind::kFecRepair:
        // A parity reconstruction buffers the missing packet exactly
        // like an arriving retransmission would: any pending NAK it
        // covers is moot, and release safety sees the position advance
        // through the receiver's ordinary coverage reports.
        if (opt_.check_nak) fill_naks(r.host, r.seq_begin, r.seq_end);
        break;
      case EventKind::kFecDecodeFail:
        // Informational: the group falls back to the NAK path, whose
        // own kNakEmit/kRetransmit records carry the obligations.
        break;
      case EventKind::kDown:
        if (is_receiver_host(r.host)) {
          rcv(r.host).exempt = true;
          if (opt_.check_nak) drop_naks(r.host);
        }
        break;
      case EventKind::kUp:
        // A link flap loses no receiver state, so the pre-down high
        // water is still valid — re-arm. A crash-restart re-exempts
        // itself right after: its kResyncJoin follows this kUp, and only
        // the kResync re-anchor re-arms it for real.
        if (is_receiver_host(r.host)) rcv(r.host).exempt = false;
        break;
      case EventKind::kEvict:
      case EventKind::kDeadRelease: {
        auto it = addr_to_host_.find(r.value);
        if (it != addr_to_host_.end()) rcv(it->second).exempt = true;
        break;
      }
      case EventKind::kRetransmit:
        if (opt_.check_nak) answer_naks(r, r.seq_begin, r.seq_end);
        if (opt_.check_rate) account_send(r);
        break;
      case EventKind::kRepairTx:
        // A local repair answers the child's pending NAK but spends no
        // sender-rate tokens: the repairer's unicast re-send never
        // crosses the sender's paced uplink.
        if (opt_.check_nak) answer_naks(r, r.seq_begin, r.seq_end);
        break;
      case EventKind::kNakErr:
        if (opt_.check_nak) answer_naks(r, r.seq_begin, r.seq_end);
        break;
      case EventKind::kSend:
        if (opt_.check_rate) account_send(r);
        break;
      case EventKind::kAllocFail:
      case EventKind::kCacheEvict:
        // Budget safety (invariant 4): the record's value field is the
        // emitting host's ledger live bytes at/after the event.
        if (opt_.check_mem && opt_.mem_budget > 0) {
          ++res_.mem_checked;
          if (r.value > opt_.mem_budget) {
            violate(r, "ledger live " + std::to_string(r.value) +
                           " bytes exceeds the per-host budget " +
                           std::to_string(opt_.mem_budget) +
                           " (component " + std::to_string(r.aux) + ")");
          }
        }
        break;
      case EventKind::kUrgentStop:
        stop_until_ =
            std::max(stop_until_, static_cast<sim::SimTime>(r.value));
        break;
      case EventKind::kRelease:
        if (opt_.check_release) {
          ++res_.releases_checked;
          for (const auto& [host, s] : receivers_) {
            if (!s.armed || s.exempt || s.aggregated) continue;
            if (seq_before(s.high, r.seq_end)) {
              violate(r, "released through " + std::to_string(r.seq_end) +
                             " but host " + std::to_string(host) +
                             " only reported " + std::to_string(s.high));
            }
          }
        }
        break;
      default:
        break;
    }
  }

  void finish(sim::SimTime end) {
    if (!opt_.check_nak) return;
    for (const PendingNak& p : pending_) {
      if (end - p.first_emit > opt_.nak_answer_bound) {
        res_.ok = false;
        ++res_.violation_count;
        if (res_.violations.size() < opt_.max_violations) {
          res_.violations.push_back(
              "trace end: NAK from host " + std::to_string(p.host) +
              " for [" + std::to_string(p.from) + "," +
              std::to_string(p.to) + ") first emitted at t=" +
              std::to_string(p.first_emit) + " never answered");
        }
      }
    }
  }

  const VerifyOptions& opt_;
  VerifyResult& res_;

  std::unordered_map<std::uint16_t, RcvState> receivers_;
  std::unordered_map<std::uint64_t, std::uint16_t> addr_to_host_;
  std::vector<PendingNak> pending_;

  bool bucket_primed_ = false;
  double tokens_ = 0;
  double last_adv_ = 0;
  sim::SimTime last_send_t_ = 0;
  sim::SimTime stop_until_ = 0;
};

}  // namespace

VerifyResult verify(const std::vector<TraceRecord>& records,
                    const VerifyOptions& opt) {
  VerifyResult res;
  Verifier v(opt, res);
  v.run(records);
  return res;
}

}  // namespace hrmc::trace
