// Time-series sampler: the per-interval curves behind Fig 11/13-style
// feedback-over-time plots. Runs as a periodic scheduler event; each
// tick it calls a caller-supplied provider that reads (never mutates)
// protocol state, so adding a sampler to a run cannot change the run's
// protocol behaviour — only its event count.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace hrmc::trace {

/// One sample of the quantities the paper plots over time. Counters
/// (naks_received, ...) are cumulative-as-of-t; per-interval activity is
/// the difference of consecutive samples.
struct SamplePoint {
  sim::SimTime t = 0;
  double rate_bps = 0;            ///< sender's advertised rate (bytes/s)
  double send_window_bytes = 0;   ///< send-buffer occupancy
  double recv_occupancy_bytes = 0;  ///< max over receivers
  double recv_region = 0;           ///< worst flow-control region (0/1/2)
  double nak_list_ranges = 0;       ///< pending NAK ranges, all receivers
  double update_period_jiffies = 0; ///< max over receivers
  double stalled = 0;               ///< 1 while the release gate is stalled
  // Cumulative feedback counters at the sender.
  double naks_received = 0;
  double rate_requests_received = 0;
  double updates_received = 0;
  double retransmissions = 0;
};

class Sampler {
 public:
  using Provider = std::function<SamplePoint()>;

  /// Samples every `period` once start()ed; the provider fills every
  /// field except `t`, which the sampler stamps itself.
  Sampler(sim::Scheduler& sched, sim::SimTime period, Provider provider)
      : sched_(&sched), period_(period), provider_(std::move(provider)) {}

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;
  ~Sampler() { stop(); }

  /// Takes an immediate sample, then one every period until stop().
  void start() {
    if (running_) return;
    running_ = true;
    fire();
  }

  void stop() {
    running_ = false;
    pending_.cancel();
  }

  [[nodiscard]] const std::vector<SamplePoint>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::vector<SamplePoint> take() { return std::move(samples_); }

 private:
  void fire() {
    if (!running_) return;
    SamplePoint p = provider_();
    p.t = sched_->now();
    samples_.push_back(p);
    pending_ = sched_->schedule_after(period_, [this] { fire(); });
  }

  sim::Scheduler* sched_;
  sim::SimTime period_;
  Provider provider_;
  sim::EventHandle pending_;
  std::vector<SamplePoint> samples_;
  bool running_ = false;
};

}  // namespace hrmc::trace
