// Protocol event tracer: the observability layer under every
// time-resolved figure (§5 of the paper is *all* time series) and under
// the trace-based invariant checker (trace/verify.hpp).
//
// Design constraints, in order:
//  - Emission must be cheap enough to leave on during benches: one
//    32-byte POD store into a preallocated ring, no allocation, no
//    formatting, no clock syscalls (time comes from the simulator).
//  - It must compile out entirely (HRMC_TRACING=0): call sites keep
//    their shape but TraceSink::emit becomes an empty constexpr inline,
//    so the hot-path gate (`micro_core` vs BENCH_baseline.json) is
//    unaffected by the instrumentation's existence.
//  - Records must be self-describing enough to replay: every record
//    carries (time, host, kind, seq range, value, aux), and the host-id
//    convention below is shared by the harness, the verifier, and
//    tools/check_trace.py.
//
// The ring overwrites its *oldest* records when full (like the kernel's
// ftrace ring buffer), counting the overwritten records in dropped() so
// a truncated trace is detectable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "kern/seq.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

#ifndef HRMC_TRACING
#define HRMC_TRACING 1
#endif

namespace hrmc::trace {

/// True when trace points are compiled in. Tests that need a populated
/// ring skip themselves when the build has tracing compiled out.
inline constexpr bool kEnabled = HRMC_TRACING != 0;

/// What happened. Grouped by emitting layer; values are stable wire
/// numbers (the JSONL dump and check_trace.py key off the names).
enum class EventKind : std::uint8_t {
  kNone = 0,

  // Sender (proto::HrmcSender).
  kSend = 1,        ///< first transmission; [seq range), value = adv rate
  kRetransmit = 2,  ///< retransmission;     [seq range), value = adv rate
  kRelease = 3,     ///< head released;      [seq range), value = queued bytes
  kProbe = 4,       ///< probe round; seq = release gate, value = #lacking
  kRateCut = 5,     ///< multiplicative decrease; value = new, aux = old rate
  kUrgentStop = 6,  ///< urgent stop; value = stop-until (ns), aux = new rate
  kStallOpen = 7,   ///< release gate blocked past hold; seq = gate
  kStallClose = 8,  ///< gate unblocked (or shutdown); value = stall ns
  kEvict = 9,       ///< dead member dropped; value = member addr
  kDeadRelease = 10,  ///< kRmcFallback released over dead members
  kNakErr = 11,     ///< NAK_ERR sent; [seq range) unsatisfiable

  // Receiver (proto::HrmcReceiver).
  kJoined = 20,     ///< JOIN_RESPONSE accepted; seq = rcv_nxt, value = addr
  kResyncJoin = 21, ///< URG JOIN sent after crash-restart; value = addr
  kResync = 22,     ///< re-anchored at sender position; seq = new rcv_nxt
  kNakEmit = 23,    ///< NAK sent; [missing range), value = rcv_nxt
  kNakSuppress = 24,  ///< hole already pending, no NAK; seq = rcv_nxt
  kUpdate = 25,       ///< UPDATE sent; seq = rcv_nxt, value = occupancy
  kRateRequest = 26,  ///< CONTROL sent; seq = rcv_nxt, value = req rate
  kUpdatePeriod = 27, ///< period changed; value = new, aux = old (jiffies)
  kOooInsert = 28,    ///< out-of-order segment buffered; [seq range)
  kRegion = 29,       ///< flow-control region change; value = 0/1/2
  kRejoin = 30,       ///< stalled-data re-JOIN sent; seq = rcv_nxt
  kLeave = 31,        ///< clean close()/LEAVE; seq = rcv_nxt, value = addr

  // Hierarchical repair / SRM suppression (repairer role + children).
  kAggUpdate = 32,  ///< subtree UPDATE sent; seq = subtree min, value = count
  kNakPeerSuppress = 33,  ///< NAK deferred on overheard peer NAK; seq = rcv_nxt
  kRepairTx = 34,   ///< repairer answered a child NAK; [seq range) re-sent
  kNakForward = 35, ///< repairer forwarded a child NAK up; [missing range),
                    ///< value = repairer rcv_nxt

  // FEC extension (adaptive Reed–Solomon parity).
  kFecRepair = 36,  ///< packet rebuilt from parity; [seq range) of the
                    ///< reconstructed packet, value = erasures in group
  kFecDecodeFail = 37,  ///< group losses exceeded the parity budget (or a
                        ///< needed sibling was evicted); [group span),
                        ///< value = erasure count, aux = parities held

  // Network (net::Router / net::Nic).
  kEnqueue = 40,     ///< router egress enqueue; value = wire size
  kDrop = 41,        ///< packet dropped; value = wire size, aux = reason
  kDeviceFull = 42,  ///< tx ring / egress queue full; aux = queue len
  kCorrupt = 43,     ///< packet corrupted in flight; value = wire size

  // Memory pressure (kern::MemAccountant consumers). value = the
  // emitting host's ledger live bytes at/after the event — the budget
  // invariant (trace::verify --mem) checks value <= budget on both.
  kAllocFail = 44,   ///< fallible allocation refused; [seq range) if any,
                     ///< aux = kern::MemComponent
  kCacheEvict = 45,  ///< cache entry evicted under pressure; [seq range)
                     ///< evicted, aux = kern::MemComponent

  // Fault layer (net::FaultInjector).
  kDown = 50,  ///< target went down; aux = FaultKind
  kUp = 51,    ///< target came back; aux = FaultKind
};

/// Reason codes for kDrop / kDeviceFull (aux field).
enum class DropReason : std::uint32_t {
  kNone = 0,
  kLoss = 1,        ///< Bernoulli loss draw
  kBurstLoss = 2,   ///< Gilbert–Elliott burst
  kQueueFull = 3,   ///< egress queue / tx ring at capacity
  kTtl = 4,
  kDown = 5,        ///< router partitioned / host crashed
  kLinkDown = 6,
  kNoRoute = 7,     ///< no unicast route / empty multicast fan-out
  kOverrun = 8,     ///< NIC card FIFO overrun model
  kControlLoss = 9, ///< control-plane-only loss (chaos disturbance)
  kWireless = 10,   ///< 802.11-style correlated fade (WirelessLoss)
  kReconverging = 11,  ///< blackholed while the router recomputes routes
  kNoMem = 12,         ///< rx admission refused by the memory accountant
};

/// Stable name for a kind (JSONL dump / debugging). "?" when unknown.
const char* kind_name(EventKind k);

/// One trace record: 32 bytes, trivially copyable, written by value
/// into the ring. Field meaning depends on `kind` (see EventKind docs).
struct TraceRecord {
  sim::SimTime t = 0;          ///< simulation time of the event
  std::uint64_t value = 0;     ///< kind-specific payload
  kern::Seq seq_begin = 0;     ///< start of the affected range (or point)
  kern::Seq seq_end = 0;       ///< one past the end (== begin for points)
  std::uint32_t aux = 0;       ///< kind-specific secondary payload
  std::uint16_t host = 0;      ///< emitting entity (host-id convention)
  EventKind kind = EventKind::kNone;
  std::uint8_t flags = 0;      ///< bit 0: solicited / URG-marked
};
static_assert(sizeof(TraceRecord) == 32, "trace records are 32-byte POD");
static_assert(std::is_trivially_copyable_v<TraceRecord>);

constexpr std::uint8_t kFlagSolicited = 1;
/// On kJoined: the host joined a local repairer, not the sender — its
/// feedback is aggregated into the repairer's subtree AGG_UPDATEs, so
/// release safety is judged against the subtree minimum, never against
/// this host's own (repairer-directed) reports.
constexpr std::uint8_t kFlagAggregated = 2;

// Host-id convention (shared with harness::run_transfer, trace::verify
// and tools/check_trace.py): the sender is 0, receiver i is 1+i,
// routers and NICs live in their own ranges well above any receiver
// count a scenario uses.
inline constexpr std::uint16_t kSenderHost = 0;
constexpr std::uint16_t receiver_host(std::size_t i) {
  return static_cast<std::uint16_t>(1 + i);
}
inline constexpr std::uint16_t kBackboneHost = 900;
constexpr std::uint16_t router_host(std::size_t g) {
  return static_cast<std::uint16_t>(1000 + g);
}
constexpr std::uint16_t nic_host(std::size_t i) {  // 0 = sender's NIC
  return static_cast<std::uint16_t>(2000 + i);
}
constexpr bool is_receiver_host(std::uint16_t h) {
  return h >= 1 && h < kBackboneHost;
}

/// Fixed-capacity ring of TraceRecords. When full, push() overwrites
/// the oldest record and counts it in dropped(). Single-threaded (one
/// ring per simulation cell, like the skb pool and the scheduler).
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 1 << 16)
      : cap_(capacity == 0 ? 1 : capacity) {
    buf_.reserve(cap_ < 4096 ? cap_ : 4096);
  }

  void push(const TraceRecord& r) {
    if (buf_.size() < cap_) {
      buf_.push_back(r);
      return;
    }
    buf_[head_] = r;
    if (++head_ == cap_) head_ = 0;
    ++dropped_;
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  /// Oldest records overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Snapshot in time order (oldest surviving record first).
  [[nodiscard]] std::vector<TraceRecord> records() const {
    std::vector<TraceRecord> out;
    out.reserve(buf_.size());
    out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(head_),
               buf_.end());
    out.insert(out.end(), buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    return out;
  }

  void clear() {
    buf_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;  ///< index of the oldest record once full
  std::uint64_t dropped_ = 0;
  std::vector<TraceRecord> buf_;
};

/// What a traced component holds: the ring, the clock, and its own host
/// id. Copyable by value; a default-constructed (or null-ring) sink is
/// inert. With HRMC_TRACING=0 the whole thing collapses to an empty
/// struct whose emit() the compiler deletes — call sites are identical
/// in both builds.
class TraceSink {
 public:
  TraceSink() = default;

#if HRMC_TRACING
  TraceSink(TraceRing* ring, sim::Scheduler* sched, std::uint16_t host)
      : ring_(ring), sched_(sched), host_(host) {}

  [[nodiscard]] bool active() const { return ring_ != nullptr; }

  void emit(EventKind kind, kern::Seq seq_begin, kern::Seq seq_end,
            std::uint64_t value, std::uint32_t aux = 0,
            std::uint8_t flags = 0) const {
    emit_as(host_, kind, seq_begin, seq_end, value, aux, flags);
  }

  /// Emission with an explicit host id — for components (the fault
  /// injector) that report events on behalf of many entities.
  void emit_as(std::uint16_t host, EventKind kind, kern::Seq seq_begin,
               kern::Seq seq_end, std::uint64_t value, std::uint32_t aux = 0,
               std::uint8_t flags = 0) const {
    if (ring_ == nullptr) return;
    TraceRecord r;
    r.t = sched_->now();
    r.value = value;
    r.seq_begin = seq_begin;
    r.seq_end = seq_end;
    r.aux = aux;
    r.host = host;
    r.kind = kind;
    r.flags = flags;
    ring_->push(r);
  }

 private:
  TraceRing* ring_ = nullptr;
  sim::Scheduler* sched_ = nullptr;
  std::uint16_t host_ = 0;
#else
  TraceSink(TraceRing*, sim::Scheduler*, std::uint16_t) {}

  [[nodiscard]] static constexpr bool active() { return false; }

  constexpr void emit(EventKind, kern::Seq, kern::Seq, std::uint64_t,
                      std::uint32_t = 0, std::uint8_t = 0) const {}
  constexpr void emit_as(std::uint16_t, EventKind, kern::Seq, kern::Seq,
                         std::uint64_t, std::uint32_t = 0,
                         std::uint8_t = 0) const {}
#endif
};

}  // namespace hrmc::trace
