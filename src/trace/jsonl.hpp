// JSONL rendering of a trace: one object per line, kinds as stable
// names, so `examples/trace_dump | tools/check_trace.py` works without
// a shared binary format.
#pragma once

#include <ostream>
#include <vector>

#include "trace/trace.hpp"

namespace hrmc::trace {

/// Writes one JSON object per record:
///   {"t":12340000,"host":1,"kind":"nak","seq_begin":1460,
///    "seq_end":2920,"value":1460,"aux":0,"flags":0}
void write_jsonl(std::ostream& os, const std::vector<TraceRecord>& records);

}  // namespace hrmc::trace
