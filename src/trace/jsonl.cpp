#include "trace/jsonl.hpp"

namespace hrmc::trace {

void write_jsonl(std::ostream& os, const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) {
    os << "{\"t\":" << r.t << ",\"host\":" << r.host << ",\"kind\":\""
       << kind_name(r.kind) << "\",\"seq_begin\":" << r.seq_begin
       << ",\"seq_end\":" << r.seq_end << ",\"value\":" << r.value
       << ",\"aux\":" << r.aux << ",\"flags\":" << unsigned{r.flags}
       << "}\n";
  }
}

}  // namespace hrmc::trace
