// Trace-based invariant checker: replays a run's trace and asserts the
// protocol promises the paper states, instead of trusting end-of-run
// counters. Three invariants:
//
//  1. Release safety (§3, "Probe Messages"): the sender never releases
//     a byte before every armed, live member reported covering it. The
//     checker tracks each receiver's reported high-water (from its own
//     kJoined/kUpdate/kNakEmit/kRateRequest emissions — a superset of
//     what reached the sender, and every report precedes the release in
//     trace-time, so sender knowledge ⊆ checker knowledge and the check
//     is sound). Crash (kDown until kResync), eviction (kEvict until a
//     new kJoined) and kRmcFallback dead-member releases exempt a
//     receiver from the gate, matching the protocol's own semantics.
//
//  2. NAKs answered within a bound: every kNakEmit range is cleared by
//     an overlapping sender kRetransmit/kNakErr (or mooted by the
//     receiver's own coverage advancing past it, or the receiver going
//     down) within `nak_answer_bound` of its first emission.
//
//  3. Rate conformance: a token bucket fed at the advertised rate (the
//     value field of kSend/kRetransmit) never goes negative beyond the
//     pacing slack (one jiffy's burst plus carry), and no *new* data is
//     sent while an urgent stop (kUrgentStop's stop-until) is in force
//     — the §2 rule 3 contract, and the regression net for the
//     zero-srtt urgent-stop bug fixed in this PR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace hrmc::trace {

struct VerifyOptions {
  /// Check invariant 1. Turn off for Mode::kRmc (release is
  /// unconditional by design) and for kRmcFallback scenarios where the
  /// trace may be truncated (a dropped kDeadRelease would false-fail).
  bool check_release = true;
  bool check_nak = true;
  bool check_rate = true;
  /// Invariant 4, budget safety (DESIGN.md §16): every kAllocFail /
  /// kCacheEvict record carries the emitting host's ledger live bytes
  /// in its value field; none may exceed mem_budget. The accountant
  /// enforces this by construction (try_charge refuses rather than
  /// overshoot), so a violation means a consumer bypassed try_charge
  /// or forgot an uncharge. mem_budget == 0 skips the check.
  bool check_mem = true;
  std::uint64_t mem_budget = 0;
  /// Invariant 2's answer deadline, first NAK emission to sender
  /// response. Generous by default: it is a liveness floor, not a
  /// latency SLO.
  sim::SimTime nak_answer_bound = sim::seconds(2);
  /// Stop collecting violation strings past this many (the counters
  /// keep counting).
  std::size_t max_violations = 32;
};

struct VerifyResult {
  bool ok = true;
  std::uint64_t violation_count = 0;
  std::vector<std::string> violations;  ///< first max_violations, rendered

  // Work done, so a "pass" on an empty trace is distinguishable from a
  // pass that actually checked something.
  std::uint64_t releases_checked = 0;
  std::uint64_t naks_checked = 0;
  std::uint64_t sends_checked = 0;
  std::uint64_t mem_checked = 0;  ///< kAllocFail/kCacheEvict records seen
};

/// Replays `records` (must be in time order, as TraceRing::records()
/// returns them) and checks the invariants enabled in `opt`.
VerifyResult verify(const std::vector<TraceRecord>& records,
                    const VerifyOptions& opt = {});

}  // namespace hrmc::trace
