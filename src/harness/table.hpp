// Plain-text table printer for bench output: every fig* binary prints
// the same rows/series the paper plots, as aligned columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hrmc::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds one row; cells render via to_string-style formatting done by
  /// the caller (keep them short).
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with a header rule and right-aligned numeric-looking cells.
  void print(std::ostream& os) const;

  /// Comma-separated dump (for plotting).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string fmt(double v, int digits = 2);

}  // namespace hrmc::harness
