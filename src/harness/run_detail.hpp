// Internals shared by the two run_transfer implementations (the legacy
// single-Scheduler path in scenario.cpp and the sharded-engine path in
// shard_run.cpp). Anything that must agree bit-for-bit between the two
// — the group endpoint, the control classifier, the receiver-stats
// accumulation, and above all the RNG digest fold order — lives here so
// it cannot drift.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "hrmc/modeled.hpp"
#include "hrmc/receiver.hpp"
#include "hrmc/wire.hpp"

namespace hrmc::harness::detail {

inline constexpr net::Addr kGroupAddr = net::make_addr(224, 5, 5, 5);
inline constexpr net::Port kGroupPort = 7500;

/// Control-plane classifier for chaos control-loss faults: everything
/// except the payload-bearing types (DATA, FEC) is control. Undecodable
/// packets are not control — they die at the checksum either way.
inline bool is_control_packet(const kern::SkBuff& skb) {
  const auto h = proto::peek_header(skb);
  return h && h->type != proto::PacketType::kData &&
         h->type != proto::PacketType::kFec;
}

/// RunResult::rng_digest: end-state of every RNG stream in the run,
/// folded in a fixed component order (network elements in topology
/// order, then per-slot protocol endpoints, then the apps). The order
/// is part of the replay-identity contract — two runs agree on the
/// digest iff every component's stream advanced identically.
inline std::uint64_t fold_run_digest(
    net::Topology& topo,
    const std::vector<std::unique_ptr<proto::HrmcReceiver>>& rcv_socks,
    const std::vector<std::unique_ptr<proto::ModeledReceiver>>& modeled_socks,
    const std::vector<std::unique_ptr<app::SinkApp>>& sinks,
    const app::SourceApp& source) {
  std::uint64_t acc = 0x48524d43u;  // 'HRMC'
  acc = sim::digest_mix(acc, topo.backbone().rng_digest());
  for (std::size_t g = 0; g < topo.group_count(); ++g) {
    acc = sim::digest_mix(acc, topo.group_router(g).rng_digest());
  }
  acc = sim::digest_mix(acc, topo.sender_nic().rng_digest());
  for (std::size_t i = 0; i < topo.receiver_count(); ++i) {
    acc = sim::digest_mix(acc, topo.receiver_nic(i).rng_digest());
  }
  for (std::size_t i = 0; i < rcv_socks.size(); ++i) {
    acc = sim::digest_mix(acc, rcv_socks[i]
                                   ? rcv_socks[i]->rng_digest()
                                   : modeled_socks[i]->rng_digest());
    if (sinks[i]) acc = sim::digest_mix(acc, sinks[i]->rng_digest());
  }
  return sim::digest_mix(acc, source.rng_digest());
}

/// Adds one receiver slot's stats to the run totals (and the per-slot
/// vector). Field list must match proto::ReceiverStats.
inline void accumulate_receiver_stats(RunResult& res,
                                      const proto::ReceiverStats& rs) {
  res.per_receiver.push_back(rs);
  auto& t = res.receivers_total;
  t.data_packets_received += rs.data_packets_received;
  t.data_bytes_received += rs.data_bytes_received;
  t.duplicate_packets += rs.duplicate_packets;
  t.out_of_order_packets += rs.out_of_order_packets;
  t.window_overflow_drops += rs.window_overflow_drops;
  t.naks_sent += rs.naks_sent;
  t.naks_suppressed += rs.naks_suppressed;
  t.naks_peer_suppressed += rs.naks_peer_suppressed;
  t.naks_forwarded += rs.naks_forwarded;
  t.rate_requests_sent += rs.rate_requests_sent;
  t.urgent_requests_sent += rs.urgent_requests_sent;
  t.updates_sent += rs.updates_sent;
  t.agg_updates_sent += rs.agg_updates_sent;
  t.repairs_served += rs.repairs_served;
  t.repair_failovers += rs.repair_failovers;
  t.probes_received += rs.probes_received;
  t.keepalives_received += rs.keepalives_received;
  t.nak_errs_received += rs.nak_errs_received;
  t.bytes_delivered += rs.bytes_delivered;
  t.bad_packets += rs.bad_packets;
  t.join_fast_retries += rs.join_fast_retries;
  t.fec_packets_received += rs.fec_packets_received;
  t.fec_recoveries += rs.fec_recoveries;
  t.fec_stale_groups += rs.fec_stale_groups;
  t.fec_decode_failures += rs.fec_decode_failures;
  t.stall_rejoins += rs.stall_rejoins;
  t.alloc_fails += rs.alloc_fails;
  t.ooo_evictions += rs.ooo_evictions;
  t.fec_evictions += rs.fec_evictions;
  t.repair_cache_evictions += rs.repair_cache_evictions;
}

}  // namespace hrmc::harness::detail
