// Experiment harness: declarative scenarios mapped onto the simulator.
//
// A Scenario is (network, protocol config, workload); run_transfer()
// wires up one H-RMC sender plus one receiver per topology host, runs
// the file transfer to completion, and returns every statistic the
// paper's figures are built from.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "app/apps.hpp"
#include "hrmc/config.hpp"
#include "hrmc/stats.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"
#include "trace/sampler.hpp"
#include "trace/trace.hpp"

namespace hrmc::harness {

struct Workload {
  std::uint64_t file_bytes = 10 * 1024 * 1024;
  bool disk_source = false;  ///< disk-to-disk test when both set
  bool disk_sink = false;
  /// Application read-rate cap in bits/s; 0 = always ready. The paper's
  /// simulated application consumes at a rate that does not scale with
  /// the network (§5.2) — 64 Mbps reproduces the 100 Mbps-era mismatch.
  double sink_read_rate_bps = 0.0;
  std::size_t chunk = 64 * 1024;
  app::DiskConfig disk;
};

/// Observability knobs for a run. `enabled` attaches one shared
/// TraceRing to every traced component (sender, receivers, routers,
/// NICs, fault injector) using the trace.hpp host-id convention;
/// `sample_period > 0` additionally runs a time-series Sampler over the
/// live protocol state. Neither changes protocol behaviour: trace
/// emission is a passive store and the sampler only reads.
struct TraceOptions {
  bool enabled = false;
  std::size_t ring_capacity = 1 << 18;  ///< records (32 B each)
  sim::SimTime sample_period = 0;       ///< 0 = no time series
};

/// Membership churn: one receiver joining or leaving the *running*
/// stream. A join opens the receiver at `at` via the URG resync path
/// (late-join semantics: it anchors at the sender's current position
/// and completes the tail); a leave calls close() at `at` (clean LEAVE
/// handshake — contrast with crash faults, which just go silent).
struct ChurnEvent {
  sim::SimTime at = 0;
  std::size_t receiver = 0;
  bool join = false;  ///< true = late join, false = leave
};

/// Hierarchical repair (million-receiver scaling extension): designate
/// one receiver per router subtree as the local repairer. Its siblings
/// send feedback to it instead of the sender; it answers their NAKs
/// from a local packet cache and collapses their UPDATEs into one
/// AGG_UPDATE per subtree.
struct HierarchyOptions {
  bool enabled = false;
  /// Explicit repairer slots. Empty = the first receiver of each
  /// topology group (its group-mates become its children).
  std::vector<std::size_t> repairers;
};

/// Replace one receiver slot with a ModeledReceiver: a statistical
/// stand-in for `population` leaves behind that slot's subtree, each
/// independently losing packets at `leaf_loss` on top of the simulated
/// network's own drops. Modeled slots have no sink application; run
/// completion uses ModeledReceiver::complete() instead.
struct ModeledGroup {
  std::size_t receiver = 0;
  std::uint32_t population = 1000;
  double leaf_loss = 0.0;
};

/// Multi-core sharded execution (sim::ShardEngine): the topology is cut
/// into conservative-time domains — the sender/backbone in domain 0,
/// each group's router subtree in its own domain — advanced in lockstep
/// epochs whose width is the trunk's minimum packet service time. The
/// result is bit-identical at every thread count (same per-domain event
/// order, PRNG draws, trace records); "serial" for comparison purposes
/// is this engine at threads = 1. The legacy single-Scheduler path
/// (enabled = false) stays byte-for-byte what it always was; it can
/// differ from the sharded schedule only in how same-timestamp events
/// in different domains interleave. Incompatible with
/// TraceOptions::sample_period (the Sampler reads live cross-domain
/// state mid-window) — run_transfer throws on that combination.
struct ShardOptions {
  bool enabled = false;
  /// Worker threads; 0 = the harness thread budget's leftover share
  /// (composes with ParallelRunner under HRMC_BENCH_THREADS).
  unsigned threads = 0;
  /// Cap on domain count, including the sender's domain 0; groups wrap
  /// round-robin over domains 1..max_domains-1. 0 = one domain per
  /// group. Values <= 1 collapse everything into domain 0 (still runs
  /// through the engine, epochs and all — useful for overhead tests).
  std::size_t max_domains = 0;
};

struct Scenario {
  std::string name = "scenario";
  net::TopologyConfig topo;
  proto::Config proto;
  Workload workload;
  sim::SimTime time_limit = sim::seconds(3600);
  /// Sender start offset; receivers open (and JOIN) at t = 0.
  sim::SimTime sender_start = sim::milliseconds(100);
  std::uint64_t seed = 1;
  /// Injected failures (crashes, flaps, partitions, burst loss,
  /// trunk flaps, wireless fades). Empty by default; an empty plan adds
  /// no events and no RNG draws, so fault-free runs are bit-identical
  /// with or without this field.
  net::FaultPlan faults;
  /// Membership churn plan (empty = all receivers open at t = 0 and
  /// stay — bit-identical to runs predating this field). A receiver
  /// with a join event does not open at t = 0; a receiver with a leave
  /// event is no longer expected to complete the stream.
  std::vector<ChurnEvent> churn;
  /// Local-repairer hierarchy (off = flat feedback, bit-identical to
  /// runs predating this field).
  HierarchyOptions hierarchy;
  /// Modeled receiver populations (empty = every slot is a real
  /// receiver — bit-identical to runs predating this field).
  std::vector<ModeledGroup> modeled;
  /// Per-host memory budget in bytes (kern::MemAccountant, DESIGN.md
  /// §16). 0 = no budget; an accountant is still installed when the
  /// fault plan contains mem-pressure / alloc-fail windows (they need
  /// one to act on). 0 with a mem-fault-free plan installs nothing —
  /// bit-identical to runs predating this field. Legacy engine only:
  /// the accountant is not sharding-aware, so sc.shard.enabled ignores
  /// it.
  std::uint64_t mem_budget = 0;
  TraceOptions trace;
  /// Sharded multi-core execution (off = legacy single scheduler,
  /// bit-identical to runs predating this field).
  ShardOptions shard;
};

struct RunResult {
  bool completed = false;  ///< every receiver got the stream in time
  bool sender_finished = false;
  sim::SimTime elapsed = 0;  ///< sender start -> last receiver complete
  double throughput_mbps = 0.0;
  bool verify_ok = true;
  bool any_stream_error = false;

  proto::SenderStats sender;
  proto::ReceiverStats receivers_total;  ///< summed over receivers
  std::vector<proto::ReceiverStats> per_receiver;

  std::uint64_t sender_nic_tx_drops = 0;
  std::uint64_t router_loss_drops = 0;

  // Million-receiver scaling metrics.
  std::uint64_t modeled_leaves = 0;       ///< Σ population over modeled slots
  std::uint64_t member_min_rescans = 0;   ///< shard-minimum cache misses
  std::uint64_t member_min_rescan_work = 0;  ///< members walked by rescans

  // Degradation metrics (fault scenarios). A "survivor" is a receiver
  // the fault plan never crashed, or crashed and later restarted.
  int survivor_count = 0;
  int survivors_completed = 0;
  std::uint64_t evicted_count = 0;  ///< members evicted by the sender
  sim::SimTime stall_time = 0;      ///< window time blocked past hold

  // Memory-pressure robustness (DESIGN.md §16). Zero unless a
  // kern::MemAccountant was installed (Scenario::mem_budget or mem
  // fault windows); the skbuff gauges are always live.
  std::uint64_t mem_peak_bytes = 0;   ///< highest single-host ledger seen
  std::uint64_t mem_alloc_fails = 0;  ///< accountant refusals, all hosts
  std::uint64_t mem_cache_evictions = 0;  ///< ooo + fec + repair evictions
  std::uint64_t skb_live_bytes_end = 0;   ///< skbuff bytes still referenced
  std::uint64_t skb_peak_bytes = 0;       ///< skbuff high-water mark (run)

  // Observability output (TraceOptions). Empty unless enabled.
  std::vector<trace::TraceRecord> trace_records;  ///< time-ordered
  std::uint64_t trace_dropped = 0;  ///< oldest records the ring overwrote
  std::vector<trace::SamplePoint> samples;

  // Engine-level replay identity. events_executed and rng_digest
  // together pin a run's full schedule: the digest folds the end-state
  // of every RNG stream in the simulation (routers, NICs, receivers,
  // modeled populations, disk models) in a fixed component order, so
  // two runs that agree on both executed the same draws in the same
  // per-component order. The differential battery compares these — and
  // the trace rings — between serial and sharded executions.
  std::uint64_t events_executed = 0;
  std::uint64_t sched_compactions = 0;  ///< tombstone sweeps (all domains)
  std::uint64_t rng_digest = 0;

  // Sharded-engine accounting (zero on the legacy path).
  std::size_t shard_domains = 0;
  std::uint64_t shard_epochs = 0;
  std::uint64_t shard_handoffs = 0;
  std::uint64_t shard_handoff_bytes = 0;
  std::uint64_t shard_control_posts = 0;

  /// Fig 3 metric, percent.
  [[nodiscard]] double complete_info_pct() const {
    return sender.release_decisions == 0
               ? 100.0
               : 100.0 * static_cast<double>(
                             sender.releases_with_complete_info) /
                     static_cast<double>(sender.release_decisions);
  }
};

/// Runs one multicast file transfer described by `sc`.
RunResult run_transfer(const Scenario& sc);

namespace detail {
/// Sharded-engine implementation behind run_transfer (dispatched when
/// sc.shard.enabled). Exposed for the engine's own tests.
RunResult run_transfer_sharded(const Scenario& sc);
}  // namespace detail

// --- Scenario builders -------------------------------------------------

/// All receivers on one LAN-like group A network: the experimental
/// testbed of §5.1 (1-3 receivers, 10/100 Mbps Ethernet).
Scenario lan_scenario(int receivers, double network_bps,
                      std::size_t kernel_buf, const Workload& wl,
                      std::uint64_t seed);

/// The simulation study's Tests 1-5 (Fig 14b) with `n` receivers spread
/// over characteristic groups A/B/C.
Scenario test_case_scenario(int test_case, int n, double network_bps,
                            std::size_t kernel_buf, const Workload& wl,
                            std::uint64_t seed);

/// The buffer sizes swept in every figure (bytes).
std::vector<std::size_t> buffer_sweep();           ///< 64K .. 1024K
std::vector<std::size_t> buffer_sweep_extended();  ///< 64K .. 4096K (Fig 13)

/// Pretty size label ("256K").
std::string buf_label(std::size_t bytes);

}  // namespace hrmc::harness
