// Shared thread-budget accounting for everything in the harness that
// spawns worker threads: the ParallelRunner sweep pool and the sharded
// simulation engine (sim::ShardEngine, via the scenario layer).
//
// The budget itself comes from one place — HRMC_BENCH_THREADS if set
// (a value of 1 forces serial execution, e.g. for timing a baseline),
// otherwise std::thread::hardware_concurrency() — so a CI runner or a
// user pins the whole process's parallelism with a single knob.
//
// ThreadLease is how consumers compose instead of multiplying: each
// pool takes a lease for the threads it is about to spawn, and a lease
// that does not insist on an exact count (want == 0) is granted only
// what the budget has left over other live leases. A sweep running
// sharded cells therefore splits the budget (outer pool x inner
// engines never oversubscribes), while an explicit request — a bench
// measuring 4-thread speedup, a test pinning determinism at 2 — is
// granted exactly, because measuring a thread count is the point.
#pragma once

namespace hrmc::harness {

/// Process-wide thread budget: HRMC_BENCH_THREADS if set (>= 1),
/// otherwise hardware_concurrency() (>= 1). Re-read on every call so
/// tests can adjust the environment.
[[nodiscard]] unsigned thread_budget();

/// RAII claim against the budget.
class ThreadLease {
 public:
  /// `want != 0`: granted exactly `want` (explicit requests are never
  /// clipped — benches measuring a specific thread count rely on it).
  /// `want == 0`: granted the budget minus threads other live leases
  /// hold, floored at 1 so progress is always possible.
  explicit ThreadLease(unsigned want = 0);
  ~ThreadLease();

  ThreadLease(const ThreadLease&) = delete;
  ThreadLease& operator=(const ThreadLease&) = delete;

  /// Threads this lease holds.
  [[nodiscard]] unsigned count() const { return count_; }

 private:
  unsigned count_;
};

}  // namespace hrmc::harness
