#include "harness/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <sstream>

#include "harness/parallel.hpp"
#include "sim/random.hpp"
#include "trace/verify.hpp"

namespace hrmc::harness {

namespace {

using net::FaultEvent;
using net::FaultKind;

// --- Generation ------------------------------------------------------

/// Recovery partner of a fault kind (nullopt when the kind has none in
/// the direction asked). Every generated fault carries its partner so
/// scenarios stay survivable; the shrinker removes pairs together so a
/// candidate never turns a recoverable fault into an unrecoverable one
/// (which would change the failure being minimized).
std::optional<FaultKind> partner_of(FaultKind k) {
  switch (k) {
    case FaultKind::kReceiverCrash: return FaultKind::kReceiverRestart;
    case FaultKind::kReceiverRestart: return FaultKind::kReceiverCrash;
    case FaultKind::kLinkDown: return FaultKind::kLinkUp;
    case FaultKind::kLinkUp: return FaultKind::kLinkDown;
    case FaultKind::kPartition: return FaultKind::kHeal;
    case FaultKind::kHeal: return FaultKind::kPartition;
    case FaultKind::kBurstLossStart: return FaultKind::kBurstLossStop;
    case FaultKind::kBurstLossStop: return FaultKind::kBurstLossStart;
    case FaultKind::kReorderStart: return FaultKind::kReorderStop;
    case FaultKind::kReorderStop: return FaultKind::kReorderStart;
    case FaultKind::kDuplicateStart: return FaultKind::kDuplicateStop;
    case FaultKind::kDuplicateStop: return FaultKind::kDuplicateStart;
    case FaultKind::kCorruptStart: return FaultKind::kCorruptStop;
    case FaultKind::kCorruptStop: return FaultKind::kCorruptStart;
    case FaultKind::kControlLossStart: return FaultKind::kControlLossStop;
    case FaultKind::kControlLossStop: return FaultKind::kControlLossStart;
    case FaultKind::kJitterStart: return FaultKind::kJitterStop;
    case FaultKind::kJitterStop: return FaultKind::kJitterStart;
    case FaultKind::kTrunkDown: return FaultKind::kTrunkUp;
    case FaultKind::kTrunkUp: return FaultKind::kTrunkDown;
    case FaultKind::kWirelessStart: return FaultKind::kWirelessStop;
    case FaultKind::kWirelessStop: return FaultKind::kWirelessStart;
    case FaultKind::kMemPressureStart: return FaultKind::kMemPressureStop;
    case FaultKind::kMemPressureStop: return FaultKind::kMemPressureStart;
    case FaultKind::kAllocFailStart: return FaultKind::kAllocFailStop;
    case FaultKind::kAllocFailStop: return FaultKind::kAllocFailStart;
  }
  return std::nullopt;
}

[[nodiscard]] bool receiver_scoped(FaultKind k) {
  return k == FaultKind::kReceiverCrash || k == FaultKind::kReceiverRestart ||
         k == FaultKind::kLinkDown || k == FaultKind::kLinkUp;
}

FaultEvent make_fault(FaultKind kind, sim::SimTime at, std::size_t target) {
  FaultEvent ev;
  ev.kind = kind;
  ev.at = at;
  ev.target = target;
  return ev;
}

}  // namespace

ChaosSpec generate_spec(std::uint64_t seed) {
  sim::Rng rng(sim::substream_seed(seed, "chaos/gen"));
  ChaosSpec s;
  s.seed = seed;
  s.network_bps = rng.chance(0.5) ? 10e6 : 100e6;
  s.file_bytes = (16u * 1024) << rng.uniform_int(0, 3);  // 16K .. 128K
  s.kernel_buf = (64u * 1024) << rng.uniform_int(0, 2);  // 64K .. 256K

  const int ngroups = rng.chance(0.35) ? 2 : 1;
  for (int g = 0; g < ngroups; ++g) {
    s.group_kind.push_back(static_cast<int>(rng.uniform_int(0, 2)));
    s.group_receivers.push_back(static_cast<int>(1 + rng.uniform_int(0, 2)));
  }
  const auto receivers = static_cast<std::int64_t>(s.receiver_count());

  // Fault pairs: each is an onset plus its recovery, so every scenario
  // is survivable by construction (an unrecoverable scenario would make
  // the oracle test the generator, not the protocol).
  const int npairs = static_cast<int>(rng.uniform_int(0, 4));
  bool lossy_faults = false;  // faults that can silence probe traffic
  bool path_faults = false;   // faults that break a multicast path
  for (int i = 0; i < npairs; ++i) {
    const auto cat = rng.uniform_int(0, 10);
    // Chaos transfers complete in ~100-400 ms of sim time (short files,
    // slow-start dominated), so onsets land across the join phase and
    // the whole transfer, and blackouts are long enough to bite but
    // short enough that recovery happens on-stream, not after it.
    const sim::SimTime t0 = sim::milliseconds(50 + rng.uniform_int(0, 300));
    const sim::SimTime t1 = t0 + sim::milliseconds(20 + rng.uniform_int(0, 180));
    const auto rcv = static_cast<std::size_t>(
        rng.uniform_int(0, receivers - 1));
    const auto grp =
        static_cast<std::size_t>(rng.uniform_int(0, ngroups - 1));
    switch (cat) {
      case 0: {
        s.faults.push_back(make_fault(FaultKind::kReceiverCrash, t0, rcv));
        s.faults.push_back(make_fault(FaultKind::kReceiverRestart, t1, rcv));
        lossy_faults = true;
        break;
      }
      case 1: {
        s.faults.push_back(make_fault(FaultKind::kLinkDown, t0, rcv));
        s.faults.push_back(make_fault(FaultKind::kLinkUp, t1, rcv));
        lossy_faults = true;
        break;
      }
      case 2: {
        s.faults.push_back(make_fault(FaultKind::kPartition, t0, grp));
        s.faults.push_back(make_fault(FaultKind::kHeal, t1, grp));
        lossy_faults = true;
        break;
      }
      case 3: {
        FaultEvent ev = make_fault(FaultKind::kBurstLossStart, t0, grp);
        ev.ge.p_good_bad = rng.uniform(0.001, 0.05);
        ev.ge.p_bad_good = rng.uniform(0.1, 0.5);
        ev.ge.loss_bad = rng.uniform(0.5, 1.0);
        s.faults.push_back(ev);
        s.faults.push_back(make_fault(FaultKind::kBurstLossStop, t1, grp));
        lossy_faults = true;
        break;
      }
      case 4: {
        FaultEvent ev = make_fault(FaultKind::kReorderStart, t0, grp);
        ev.disturb.reorder_prob = rng.uniform(0.05, 0.5);
        ev.disturb.reorder_hold =
            sim::milliseconds(1 + rng.uniform_int(0, 19));
        s.faults.push_back(ev);
        s.faults.push_back(make_fault(FaultKind::kReorderStop, t1, grp));
        break;
      }
      case 5: {
        FaultEvent ev = make_fault(FaultKind::kDuplicateStart, t0, grp);
        ev.disturb.dup_prob = rng.uniform(0.05, 0.3);
        s.faults.push_back(ev);
        s.faults.push_back(make_fault(FaultKind::kDuplicateStop, t1, grp));
        break;
      }
      case 6: {
        FaultEvent ev = make_fault(FaultKind::kCorruptStart, t0, grp);
        ev.disturb.corrupt_prob = rng.uniform(0.01, 0.2);
        s.faults.push_back(ev);
        s.faults.push_back(make_fault(FaultKind::kCorruptStop, t1, grp));
        lossy_faults = true;  // a corrupted probe/update is a lost one
        break;
      }
      case 7: {
        FaultEvent ev = make_fault(FaultKind::kControlLossStart, t0, grp);
        ev.disturb.control_loss_prob = rng.uniform(0.1, 0.4);
        s.faults.push_back(ev);
        s.faults.push_back(
            make_fault(FaultKind::kControlLossStop, t1, grp));
        lossy_faults = true;
        break;
      }
      case 8: {
        FaultEvent ev = make_fault(FaultKind::kJitterStart, t0, grp);
        ev.disturb.jitter = sim::milliseconds(1 + rng.uniform_int(0, 19));
        s.faults.push_back(ev);
        s.faults.push_back(make_fault(FaultKind::kJitterStop, t1, grp));
        break;
      }
      case 9: {
        // Trunk flap: the whole group loses its path to the backbone,
        // and routes take a reconvergence window to settle after it
        // heals (packets blackholed at the router meanwhile).
        s.faults.push_back(make_fault(FaultKind::kTrunkDown, t0, grp));
        FaultEvent up = make_fault(FaultKind::kTrunkUp, t1, grp);
        up.delay = sim::milliseconds(rng.uniform_int(0, 40));
        s.faults.push_back(up);
        lossy_faults = true;
        path_faults = true;
        break;
      }
      default: {
        // 802.11-style fade window: correlated burst loss with
        // SNR-like periodic modulation of the fade-entry probability.
        FaultEvent ev = make_fault(FaultKind::kWirelessStart, t0, grp);
        ev.wireless.p_good_bad = rng.uniform(0.002, 0.03);
        ev.wireless.mean_burst = rng.uniform(2.0, 8.0);
        ev.wireless.loss_bad = rng.uniform(0.5, 1.0);
        ev.wireless.snr_depth = rng.uniform(0.0, 0.8);
        ev.wireless.snr_period =
            sim::milliseconds(100 + rng.uniform_int(0, 900));
        s.faults.push_back(ev);
        s.faults.push_back(make_fault(FaultKind::kWirelessStop, t1, grp));
        lossy_faults = true;
        break;
      }
    }
  }

  // Hierarchical repair: only meaningful when some repairer would have
  // children, i.e. a group with at least two receivers.
  bool any_multi_group = false;
  for (int n : s.group_receivers) any_multi_group |= n >= 2;
  if (any_multi_group && rng.chance(0.35)) {
    s.hierarchy = true;
    // Sometimes kill a repairer mid-stream (paired with a restart, like
    // every crash): its children must fail over to the sender and the
    // subtree must still deliver the full stream.
    if (rng.chance(0.5)) {
      std::size_t first_of_group = 0;
      const auto victim_group =
          static_cast<std::size_t>(rng.uniform_int(0, ngroups - 1));
      for (std::size_t g = 0; g < victim_group; ++g) {
        first_of_group += static_cast<std::size_t>(s.group_receivers[g]);
      }
      const sim::SimTime t0 =
          sim::milliseconds(60 + rng.uniform_int(0, 250));
      const sim::SimTime t1 =
          t0 + sim::milliseconds(40 + rng.uniform_int(0, 200));
      s.faults.push_back(
          make_fault(FaultKind::kReceiverCrash, t0, first_of_group));
      s.faults.push_back(
          make_fault(FaultKind::kReceiverRestart, t1, first_of_group));
      lossy_faults = true;
    }
  }

  // Membership churn: late joins (URG resync to the live stream) and
  // clean leaves, at most one event per receiver so the per-receiver
  // open/close schedule stays unambiguous.
  const int nchurn = static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < nchurn; ++i) {
    ChurnEvent ev;
    ev.receiver =
        static_cast<std::size_t>(rng.uniform_int(0, receivers - 1));
    ev.join = rng.chance(0.5);
    ev.at = sim::milliseconds(ev.join ? 20 + rng.uniform_int(0, 280)
                                      : 50 + rng.uniform_int(0, 350));
    bool dup = false;
    for (const ChurnEvent& c : s.churn) {
      if (c.receiver == ev.receiver) dup = true;
    }
    if (!dup) s.churn.push_back(ev);
  }
  // A churned receiver has its own open/close timeline; crashing or
  // flapping the same receiver would entangle the two schedules into
  // scenarios no protocol could be expected to survive (e.g. crash
  // before a late join). Keep receiver-scoped faults off churned nodes.
  if (!s.churn.empty()) {
    std::erase_if(s.faults, [&s](const FaultEvent& ev) {
      if (!receiver_scoped(ev.kind)) return false;
      for (const ChurnEvent& c : s.churn) {
        if (c.receiver == ev.target) return true;
      }
      return false;
    });
  }

  // Path-breaking faults: arm the receivers' stalled-data watchdog so
  // the re-graft path is exercised whenever the tree is repaired.
  if (path_faults) {
    s.data_stall_timeout = sim::milliseconds(200 + rng.uniform_int(0, 800));
  }
  // Flash-crowd admission batching: the t=0 JOIN burst (every receiver
  // opens at once) plus churn joins exercise the multicast-response
  // path under a low threshold.
  if (rng.chance(0.3)) {
    s.join_batch_threshold = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  }

  // Faults that can silence a member's feedback for a while force the
  // paper-faithful stall policy: under kEvict a generated partition
  // could legitimately evict a member mid-blackout, and the resulting
  // NAK_ERR would read as an oracle failure. Pure reorder/duplicate/
  // jitter never destroy packets, so any policy must survive them.
  // Hierarchy forces kStall too (see ChaosSpec::hierarchy).
  if (lossy_faults || s.hierarchy) {
    s.eviction = proto::EvictionPolicy::kStall;
  } else {
    switch (rng.uniform_int(0, 3)) {
      case 2: s.eviction = proto::EvictionPolicy::kEvict; break;
      case 3: s.eviction = proto::EvictionPolicy::kRmcFallback; break;
      default: s.eviction = proto::EvictionPolicy::kStall; break;
    }
  }
  return s;
}

ChaosSpec generate_mem_spec(std::uint64_t seed) {
  // Appends to the base spec from a *separate* RNG substream, so the
  // base generator's draw sequence — and with it every pinned chaos
  // seed in tests and CI — stays bit-identical to pre-§16 builds.
  ChaosSpec s = generate_spec(seed);
  sim::Rng rng(sim::substream_seed(seed, "chaos/mem"));
  // Budget sized so steady-state occupancy (send window + reassembly +
  // caches) fits the full budget with headroom: only the squeeze /
  // alloc-fail windows below bite, and they are paired — survivable by
  // construction, like every other generated fault.
  s.mem_budget =
      static_cast<std::uint64_t>(s.kernel_buf) * 4 + (512u * 1024);
  const sim::SimTime t0 = sim::milliseconds(50 + rng.uniform_int(0, 250));
  const sim::SimTime t1 = t0 + sim::milliseconds(30 + rng.uniform_int(0, 200));
  FaultEvent squeeze = make_fault(FaultKind::kMemPressureStart, t0, 0);
  squeeze.mem_fraction = rng.uniform(0.4, 0.9);
  s.faults.push_back(squeeze);
  s.faults.push_back(make_fault(FaultKind::kMemPressureStop, t1, 0));
  if (rng.chance(0.5)) {
    const sim::SimTime a0 = sim::milliseconds(50 + rng.uniform_int(0, 250));
    const sim::SimTime a1 =
        a0 + sim::milliseconds(30 + rng.uniform_int(0, 200));
    FaultEvent af = make_fault(FaultKind::kAllocFailStart, a0, 0);
    af.alloc_fail_prob = rng.uniform(0.02, 0.15);
    s.faults.push_back(af);
    s.faults.push_back(make_fault(FaultKind::kAllocFailStop, a1, 0));
  }
  s.eviction = proto::EvictionPolicy::kStall;
  return s;
}

ChaosSpec generate_soak_spec(std::uint64_t seed) {
  sim::Rng rng(sim::substream_seed(seed, "chaos/soak"));
  ChaosSpec s;
  s.seed = seed;
  s.network_bps = rng.chance(0.5) ? 10e6 : 100e6;
  s.file_bytes = (1024u * 1024) << rng.uniform_int(0, 2);  // 1M .. 4M
  s.kernel_buf = (128u * 1024) << rng.uniform_int(0, 2);   // 128K .. 512K
  s.eviction = proto::EvictionPolicy::kStall;
  s.time_limit = sim::seconds(900);
  s.data_stall_timeout = sim::milliseconds(500 + rng.uniform_int(0, 1500));
  s.join_batch_threshold = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));

  const int ngroups = rng.chance(0.5) ? 2 : 1;
  for (int g = 0; g < ngroups; ++g) {
    s.group_kind.push_back(static_cast<int>(rng.uniform_int(0, 2)));
    s.group_receivers.push_back(static_cast<int>(2 + rng.uniform_int(0, 2)));
  }
  const auto receivers = static_cast<std::int64_t>(s.receiver_count());

  // Trunk-flap train: repeated down/up with a reconvergence window,
  // spread across the whole (slowed-down) transfer. Long blackouts are
  // event-sparse, so they buy sim-hours cheaply.
  const int nflaps = 2 + static_cast<int>(rng.uniform_int(0, 3));
  sim::SimTime t = sim::seconds(1 + rng.uniform_int(0, 3));
  for (int k = 0; k < nflaps; ++k) {
    const auto grp =
        static_cast<std::size_t>(rng.uniform_int(0, ngroups - 1));
    const sim::SimTime down =
        sim::milliseconds(500 + rng.uniform_int(0, 4500));
    s.faults.push_back(make_fault(FaultKind::kTrunkDown, t, grp));
    FaultEvent up = make_fault(FaultKind::kTrunkUp, t + down, grp);
    up.delay = sim::milliseconds(rng.uniform_int(0, 80));
    s.faults.push_back(up);
    t += down + sim::seconds(3 + rng.uniform_int(0, 9));
  }
  // Receiver link flaps.
  const int nlink = static_cast<int>(rng.uniform_int(0, 2));
  for (int k = 0; k < nlink; ++k) {
    const auto rcv =
        static_cast<std::size_t>(rng.uniform_int(0, receivers - 1));
    const sim::SimTime t0 = sim::seconds(2 + rng.uniform_int(0, 20));
    const sim::SimTime dur =
        sim::milliseconds(200 + rng.uniform_int(0, 2800));
    s.faults.push_back(make_fault(FaultKind::kLinkDown, t0, rcv));
    s.faults.push_back(make_fault(FaultKind::kLinkUp, t0 + dur, rcv));
  }
  // Wireless fade windows.
  const int nfade = 1 + static_cast<int>(rng.uniform_int(0, 1));
  for (int k = 0; k < nfade; ++k) {
    const auto grp =
        static_cast<std::size_t>(rng.uniform_int(0, ngroups - 1));
    const sim::SimTime t0 = sim::seconds(1 + rng.uniform_int(0, 15));
    const sim::SimTime dur = sim::seconds(3 + rng.uniform_int(0, 12));
    FaultEvent ev = make_fault(FaultKind::kWirelessStart, t0, grp);
    ev.wireless.p_good_bad = rng.uniform(0.002, 0.02);
    ev.wireless.mean_burst = rng.uniform(2.0, 6.0);
    ev.wireless.loss_bad = rng.uniform(0.5, 0.9);
    ev.wireless.snr_depth = rng.uniform(0.2, 0.8);
    ev.wireless.snr_period = sim::milliseconds(200 + rng.uniform_int(0, 1800));
    s.faults.push_back(ev);
    s.faults.push_back(make_fault(FaultKind::kWirelessStop, t0 + dur, grp));
  }
  // Membership churn spread across the run.
  const int nchurn = 1 + static_cast<int>(rng.uniform_int(0, 3));
  for (int k = 0; k < nchurn; ++k) {
    ChurnEvent ev;
    ev.receiver =
        static_cast<std::size_t>(rng.uniform_int(0, receivers - 1));
    ev.join = rng.chance(0.5);
    ev.at = sim::seconds(1 + rng.uniform_int(0, 25));
    bool dup = false;
    for (const ChurnEvent& c : s.churn) {
      if (c.receiver == ev.receiver) dup = true;
    }
    if (!dup) s.churn.push_back(ev);
  }
  // Same rule as generate_spec: receiver-scoped faults stay off
  // churned receivers.
  std::erase_if(s.faults, [&s](const FaultEvent& ev) {
    if (!receiver_scoped(ev.kind)) return false;
    for (const ChurnEvent& c : s.churn) {
      if (c.receiver == ev.target) return true;
    }
    return false;
  });
  return s;
}

Scenario to_scenario(const ChaosSpec& spec) {
  Scenario sc;
  sc.name = "chaos-" + std::to_string(spec.seed);
  sc.topo.network_bps = spec.network_bps;
  sc.topo.seed = sim::substream_seed(spec.seed, "topo");
  for (std::size_t g = 0; g < spec.group_kind.size(); ++g) {
    const int n = spec.group_receivers[g];
    switch (spec.group_kind[g]) {
      case 0: sc.topo.groups.push_back(net::group_a(n)); break;
      case 1: sc.topo.groups.push_back(net::group_b(n)); break;
      default: sc.topo.groups.push_back(net::group_c(n)); break;
    }
  }
  sc.proto.sndbuf = spec.kernel_buf;
  sc.proto.rcvbuf = spec.kernel_buf;
  sc.proto.eviction_policy = spec.eviction;
  sc.proto.data_stall_timeout = spec.data_stall_timeout;
  sc.proto.join_batch_threshold = spec.join_batch_threshold;
  sc.workload.file_bytes = spec.file_bytes;
  sc.time_limit = spec.time_limit;
  sc.seed = spec.seed;
  sc.faults.events = spec.faults;
  sc.churn = spec.churn;
  sc.hierarchy.enabled = spec.hierarchy;
  sc.mem_budget = spec.mem_budget;
  sc.trace.enabled = true;
  return sc;
}

ChaosVerdict judge_result(const ChaosSpec& spec, const RunResult& res) {
  ChaosVerdict v;
  const auto fail = [&v](std::string why) {
    if (v.ok) {
      v.ok = false;
      v.failure = std::move(why);
    }
  };
  if (!res.sender_finished) {
    fail("sender did not finish within the deadline (window-stall "
         "deadlock?)");
  }
  if (res.survivors_completed != res.survivor_count) {
    fail(std::to_string(res.survivor_count - res.survivors_completed) +
         " of " + std::to_string(res.survivor_count) +
         " surviving receivers missing stream bytes");
  }
  if (res.any_stream_error) fail("receiver reported a stream error");
  if (!res.verify_ok) fail("delivered byte pattern failed verification");
  if (spec.mem_budget > 0 && res.mem_peak_bytes > spec.mem_budget) {
    fail("memory budget exceeded: peak " +
         std::to_string(res.mem_peak_bytes) + " > budget " +
         std::to_string(spec.mem_budget));
  }
  if (res.trace_dropped == 0) {
    trace::VerifyOptions opt;
    // Release safety is undefined under kRmcFallback by design
    // (dead-member releases are deliberate); see trace/verify.hpp.
    opt.check_release =
        spec.eviction != proto::EvictionPolicy::kRmcFallback;
    // Chaos scenarios legitimately delay NAK service (control loss,
    // reorder holds, blackouts up to ~5 s); the bound stays a liveness
    // floor, not a latency SLO.
    opt.nak_answer_bound = sim::seconds(15);
    // Invariant 4 (budget safety): every kAllocFail / kCacheEvict
    // record's ledger-live value must stay within the per-host budget.
    opt.mem_budget = spec.mem_budget;
    const trace::VerifyResult tv = trace::verify(res.trace_records, opt);
    if (!tv.ok) {
      fail("trace invariant violated: " +
           (tv.violations.empty() ? std::string("(no detail)")
                                  : tv.violations.front()));
    }
  }
  return v;
}

ChaosVerdict judge(const ChaosSpec& spec) {
  try {
    return judge_result(spec, run_transfer(to_scenario(spec)));
  } catch (const std::exception& e) {
    ChaosVerdict v;
    v.ok = false;
    v.failure = std::string("simulation threw: ") + e.what();
    return v;
  }
}

std::vector<ChaosOutcome> sweep(std::uint64_t start, int count,
                                unsigned threads, bool mem) {
  std::vector<ChaosSpec> specs;
  std::vector<Scenario> cells;
  specs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = start + static_cast<std::uint64_t>(i);
    specs.push_back(mem ? generate_mem_spec(seed) : generate_spec(seed));
    cells.push_back(to_scenario(specs.back()));
  }
  std::vector<ChaosOutcome> out(specs.size());
  try {
    const ParallelRunner runner(threads);
    const std::vector<RunResult> results = runner.run_all(cells);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      out[i].seed = specs[i].seed;
      out[i].verdict = judge_result(specs[i], results[i]);
    }
  } catch (const std::exception&) {
    // A cell threw (run_all rethrows after the pool drains): fall back
    // to serial judging, which attributes the exception to its seed.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      out[i].seed = specs[i].seed;
      out[i].verdict = judge(specs[i]);
    }
  }
  return out;
}

// --- Serialization ---------------------------------------------------

namespace {

constexpr char kMagic[] = "hrmc-chaos-repro v1";

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string serialize_spec(const ChaosSpec& spec) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "seed " << spec.seed << "\n";
  os << "network_bps " << fmt_double(spec.network_bps) << "\n";
  os << "file_bytes " << spec.file_bytes << "\n";
  os << "kernel_buf " << spec.kernel_buf << "\n";
  os << "eviction " << static_cast<int>(spec.eviction) << "\n";
  os << "time_limit " << spec.time_limit << "\n";
  os << "data_stall_timeout " << spec.data_stall_timeout << "\n";
  os << "join_batch_threshold " << spec.join_batch_threshold << "\n";
  // Emitted only when set: repro files without hierarchy stay readable
  // by parsers predating the field (which reject unknown keys).
  if (spec.hierarchy) os << "hierarchy 1\n";
  if (spec.mem_budget > 0) os << "mem_budget " << spec.mem_budget << "\n";
  for (std::size_t g = 0; g < spec.group_kind.size(); ++g) {
    os << "group " << spec.group_kind[g] << " " << spec.group_receivers[g]
       << "\n";
  }
  for (const FaultEvent& ev : spec.faults) {
    os << "fault " << static_cast<int>(ev.kind) << " " << ev.at << " "
       << ev.target << " " << fmt_double(ev.ge.p_good_bad) << " "
       << fmt_double(ev.ge.p_bad_good) << " " << fmt_double(ev.ge.loss_good)
       << " " << fmt_double(ev.ge.loss_bad) << " "
       << fmt_double(ev.disturb.reorder_prob) << " "
       << ev.disturb.reorder_hold << " " << fmt_double(ev.disturb.dup_prob)
       << " " << fmt_double(ev.disturb.corrupt_prob) << " "
       << fmt_double(ev.disturb.control_loss_prob) << " "
       << ev.disturb.jitter << " " << ev.delay << " "
       << fmt_double(ev.wireless.p_good_bad) << " "
       << fmt_double(ev.wireless.mean_burst) << " "
       << fmt_double(ev.wireless.loss_good) << " "
       << fmt_double(ev.wireless.loss_bad) << " "
       << fmt_double(ev.wireless.snr_depth) << " " << ev.wireless.snr_period
       << " " << fmt_double(ev.wireless.snr_phase) << " "
       << fmt_double(ev.mem_fraction) << " "
       << fmt_double(ev.alloc_fail_prob) << "\n";
  }
  for (const ChurnEvent& ev : spec.churn) {
    os << "churn " << ev.at << " " << ev.receiver << " " << (ev.join ? 1 : 0)
       << "\n";
  }
  return os.str();
}

std::optional<ChaosSpec> parse_spec(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kMagic) return std::nullopt;
  ChaosSpec s;
  s.group_kind.clear();
  s.group_receivers.clear();
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "seed") {
      ls >> s.seed;
    } else if (key == "network_bps") {
      ls >> s.network_bps;
    } else if (key == "file_bytes") {
      ls >> s.file_bytes;
    } else if (key == "kernel_buf") {
      ls >> s.kernel_buf;
    } else if (key == "eviction") {
      int e = 0;
      ls >> e;
      if (e < 0 || e > 2) return std::nullopt;
      s.eviction = static_cast<proto::EvictionPolicy>(e);
    } else if (key == "time_limit") {
      ls >> s.time_limit;
    } else if (key == "data_stall_timeout") {
      ls >> s.data_stall_timeout;
    } else if (key == "join_batch_threshold") {
      ls >> s.join_batch_threshold;
    } else if (key == "mem_budget") {
      ls >> s.mem_budget;
    } else if (key == "hierarchy") {
      int h = 0;
      ls >> h;
      if (ls.fail() || (h != 0 && h != 1)) return std::nullopt;
      s.hierarchy = h == 1;
    } else if (key == "churn") {
      ChurnEvent ev;
      int join = 0;
      ls >> ev.at >> ev.receiver >> join;
      if (ls.fail() || (join != 0 && join != 1)) return std::nullopt;
      ev.join = join == 1;
      s.churn.push_back(ev);
    } else if (key == "group") {
      int kind = 0, n = 0;
      ls >> kind >> n;
      if (ls.fail() || kind < 0 || kind > 2 || n < 1) return std::nullopt;
      s.group_kind.push_back(kind);
      s.group_receivers.push_back(n);
    } else if (key == "fault") {
      int kind = 0;
      FaultEvent ev;
      ls >> kind >> ev.at >> ev.target >> ev.ge.p_good_bad >>
          ev.ge.p_bad_good >> ev.ge.loss_good >> ev.ge.loss_bad >>
          ev.disturb.reorder_prob >> ev.disturb.reorder_hold >>
          ev.disturb.dup_prob >> ev.disturb.corrupt_prob >>
          ev.disturb.control_loss_prob >> ev.disturb.jitter;
      if (ls.fail() || kind < 0 ||
          kind > static_cast<int>(FaultKind::kAllocFailStop)) {
        return std::nullopt;
      }
      // Extension tail (reconvergence delay + wireless profile), absent
      // in repros written before those axes existed: all-or-nothing —
      // a fault line either stops at the jitter field or carries the
      // full tail.
      if (ls >> ev.delay) {
        ls >> ev.wireless.p_good_bad >> ev.wireless.mean_burst >>
            ev.wireless.loss_good >> ev.wireless.loss_bad >>
            ev.wireless.snr_depth >> ev.wireless.snr_period >>
            ev.wireless.snr_phase;
        if (ls.fail()) return std::nullopt;
        // Second extension tail (memory-pressure axes): same
        // all-or-nothing rule, nested — a line carrying it must carry
        // both fields.
        if (ls >> ev.mem_fraction) {
          ls >> ev.alloc_fail_prob;
          if (ls.fail()) return std::nullopt;
        } else {
          ls.clear();
        }
      } else {
        ls.clear();
      }
      ev.kind = static_cast<FaultKind>(kind);
      s.faults.push_back(ev);
    } else {
      return std::nullopt;  // unknown key: refuse to half-parse a repro
    }
    if (ls.fail()) return std::nullopt;
  }
  if (s.group_kind.empty()) return std::nullopt;
  return s;
}

// --- Shrinking -------------------------------------------------------

namespace {

/// Removes fault event `i` and, if it has a recovery partner targeting
/// the same entity, the partner too.
void remove_fault_pair(ChaosSpec& s, std::size_t i) {
  const FaultEvent removed = s.faults[i];
  s.faults.erase(s.faults.begin() + static_cast<std::ptrdiff_t>(i));
  const auto partner = partner_of(removed.kind);
  if (!partner) return;
  for (std::size_t j = 0; j < s.faults.size(); ++j) {
    if (s.faults[j].kind == *partner &&
        s.faults[j].target == removed.target) {
      s.faults.erase(s.faults.begin() + static_cast<std::ptrdiff_t>(j));
      return;
    }
  }
}

/// Drops the last receiver (from the last group; empty groups are
/// erased) and every fault event whose target the smaller topology no
/// longer has — a config-sanitized spec never trips FaultInjector's
/// arm-time validation, so a shrink failure is always a protocol
/// failure, never a typo'd scenario.
bool drop_last_receiver(ChaosSpec& s) {
  if (s.receiver_count() <= 1) return false;
  s.group_receivers.back() -= 1;
  if (s.group_receivers.back() == 0) {
    s.group_receivers.pop_back();
    s.group_kind.pop_back();
  }
  const std::size_t receivers = s.receiver_count();
  const std::size_t groups = s.group_kind.size();
  std::erase_if(s.faults, [&](const FaultEvent& ev) {
    return ev.target >= (receiver_scoped(ev.kind) ? receivers : groups);
  });
  std::erase_if(s.churn, [&](const ChurnEvent& ev) {
    return ev.receiver >= receivers;
  });
  return true;
}

/// Index of the recovery event paired with onset `i` (same target,
/// partner kind, not earlier in time); nullopt when `i` is not an onset
/// or its partner is gone.
std::optional<std::size_t> partner_index(const ChaosSpec& s, std::size_t i) {
  const auto partner = partner_of(s.faults[i].kind);
  if (!partner) return std::nullopt;
  for (std::size_t j = 0; j < s.faults.size(); ++j) {
    if (j == i) continue;
    if (s.faults[j].kind == *partner &&
        s.faults[j].target == s.faults[i].target &&
        s.faults[j].at >= s.faults[i].at) {
      return j;
    }
  }
  return std::nullopt;
}

}  // namespace

ChaosSpec shrink(const ChaosSpec& failing, int max_runs) {
  ChaosSpec best = failing;
  int runs = 0;
  const auto still_fails = [&](const ChaosSpec& cand) {
    if (runs >= max_runs) return false;
    ++runs;
    return !judge(cand).ok;
  };
  bool progress = true;
  while (progress && runs < max_runs) {
    progress = false;
    // Pass 1: drop fault events, recovery pairs together.
    for (std::size_t i = 0; i < best.faults.size() && runs < max_runs;) {
      ChaosSpec cand = best;
      remove_fault_pair(cand, i);
      if (still_fails(cand)) {
        best = std::move(cand);
        progress = true;  // same index now names the next event
      } else {
        ++i;
      }
    }
    // Pass 1b: minimize surviving fault windows — walk each pair's
    // start/stop toward each other (halving the interval), keeping a
    // candidate only while the oracle still fails. A repro that trips
    // on a 400 ms blackout often still trips at 50 ms, and the tight
    // window localizes the bug in the timeline.
    for (std::size_t i = 0; i < best.faults.size() && runs < max_runs;
         ++i) {
      const auto j = partner_index(best, i);
      if (!j) continue;
      while (runs < max_runs) {
        const sim::SimTime window = best.faults[*j].at - best.faults[i].at;
        if (window < sim::milliseconds(2)) break;
        ChaosSpec cand = best;
        cand.faults[*j].at = best.faults[i].at + window / 2;
        if (still_fails(cand)) {  // pull the recovery earlier
          best = std::move(cand);
          progress = true;
          continue;
        }
        cand = best;
        cand.faults[i].at = best.faults[*j].at - window / 2;
        if (still_fails(cand)) {  // push the onset later
          best = std::move(cand);
          progress = true;
          continue;
        }
        break;
      }
    }
    // Pass 1c: drop churn events one at a time.
    for (std::size_t i = 0; i < best.churn.size() && runs < max_runs;) {
      ChaosSpec cand = best;
      cand.churn.erase(cand.churn.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(cand)) {
        best = std::move(cand);
        progress = true;
      } else {
        ++i;
      }
    }
    // Pass 1d: drop the repair hierarchy — a repro that still fails
    // with flat feedback localizes the bug outside the repairer.
    if (best.hierarchy && runs < max_runs) {
      ChaosSpec cand = best;
      cand.hierarchy = false;
      if (still_fails(cand)) {
        best = std::move(cand);
        progress = true;
      }
    }
    // Pass 2: shrink the stream.
    while (best.file_bytes > 4096 && runs < max_runs) {
      ChaosSpec cand = best;
      cand.file_bytes /= 2;
      if (!still_fails(cand)) break;
      best = std::move(cand);
      progress = true;
    }
    // Pass 3: shrink the topology.
    while (runs < max_runs) {
      ChaosSpec cand = best;
      if (!drop_last_receiver(cand)) break;
      if (!still_fails(cand)) break;
      best = std::move(cand);
      progress = true;
    }
  }
  return best;
}

}  // namespace hrmc::harness
