#include "harness/scenario.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "harness/run_detail.hpp"
#include "hrmc/modeled.hpp"
#include "hrmc/receiver.hpp"
#include "hrmc/sender.hpp"
#include "hrmc/wire.hpp"
#include "kern/mem.hpp"
#include "kern/skbuff.hpp"
#include "sim/scheduler.hpp"

namespace hrmc::harness {

using detail::is_control_packet;
using detail::kGroupAddr;
using detail::kGroupPort;

RunResult run_transfer(const Scenario& sc) {
  if (sc.shard.enabled) return detail::run_transfer_sharded(sc);
  sim::Scheduler sched;
  net::Topology topo(sched, sc.topo);

  const net::Endpoint group{kGroupAddr, kGroupPort};

  kern::skbuff_peak_reset();  // per-run gauge window (RunResult)

  // Memory accountant (DESIGN.md §16): installed only when the scenario
  // sets a budget or the fault plan arms mem windows, so every other
  // run is bit-identical to one that never heard of it. The failure
  // RNG is a named substream and is NOT folded into rng_digest — a mem
  // chaos run must replay against the same protocol schedule digest.
  bool plan_has_mem_faults = false;
  for (const net::FaultEvent& ev : sc.faults.events) {
    if (ev.kind == net::FaultKind::kMemPressureStart ||
        ev.kind == net::FaultKind::kAllocFailStart) {
      plan_has_mem_faults = true;
      break;
    }
  }
  std::unique_ptr<kern::MemAccountant> mem;
  if (sc.mem_budget > 0 || plan_has_mem_faults) {
    mem = std::make_unique<kern::MemAccountant>(
        sc.mem_budget, sim::substream_seed(sc.seed, "mem"));
    topo.sender().set_mem_accountant(mem.get());
    topo.sender().nic()->set_mem_admission(mem.get(), topo.sender().addr());
    for (std::size_t i = 0; i < topo.receiver_count(); ++i) {
      topo.receiver(i).set_mem_accountant(mem.get());
      topo.receiver_nic(i).set_mem_admission(mem.get(),
                                             topo.receiver(i).addr());
    }
  }

  // Observability: one shared ring; each component gets a sink stamped
  // with its host id (the trace.hpp convention).
  std::unique_ptr<trace::TraceRing> ring;
  if (sc.trace.enabled) {
    ring = std::make_unique<trace::TraceRing>(sc.trace.ring_capacity);
    topo.backbone().set_trace(
        trace::TraceSink(ring.get(), &sched, trace::kBackboneHost));
    for (std::size_t g = 0; g < topo.group_count(); ++g) {
      topo.group_router(g).set_trace(
          trace::TraceSink(ring.get(), &sched, trace::router_host(g)));
    }
    topo.sender().nic()->set_trace(
        trace::TraceSink(ring.get(), &sched, trace::nic_host(0)));
    for (std::size_t i = 0; i < topo.receiver_count(); ++i) {
      topo.receiver_nic(i).set_trace(
          trace::TraceSink(ring.get(), &sched, trace::nic_host(1 + i)));
    }
  }

  // Which receivers does the fault plan ever crash, and which are
  // expected to hold the complete stream at the end (never crashed, or
  // crashed but restarted afterwards — a restarted receiver resyncs
  // from the current position, so it completes the *tail*, which is
  // what stream_complete() tracks; byte-pattern verification is
  // disabled for it since the skipped history would fail the check).
  std::vector<bool> crashed_ever(topo.receiver_count(), false);
  std::vector<bool> expect_complete(topo.receiver_count(), true);
  {
    std::vector<net::FaultEvent> evs = sc.faults.events;
    std::stable_sort(evs.begin(), evs.end(),
                     [](const net::FaultEvent& a, const net::FaultEvent& b) {
                       return a.at < b.at;
                     });
    for (const net::FaultEvent& ev : evs) {
      if (ev.target >= crashed_ever.size()) continue;
      if (ev.kind == net::FaultKind::kReceiverCrash) {
        crashed_ever[ev.target] = true;
        expect_complete[ev.target] = false;
      } else if (ev.kind == net::FaultKind::kReceiverRestart) {
        expect_complete[ev.target] = true;
      }
    }
  }

  // Membership churn: per-receiver open/close schedule. A late joiner
  // resyncs to the live position, so (like crash-restart) the skipped
  // history makes byte-pattern verification meaningless for it; a clean
  // leaver's delivered prefix is still fully verifiable.
  std::vector<sim::SimTime> join_at(topo.receiver_count(), -1);
  std::vector<sim::SimTime> leave_at(topo.receiver_count(), -1);
  for (const ChurnEvent& ev : sc.churn) {
    if (ev.receiver >= topo.receiver_count()) continue;
    if (ev.join) {
      join_at[ev.receiver] = ev.at;
    } else {
      leave_at[ev.receiver] = ev.at;
      expect_complete[ev.receiver] = false;
    }
  }

  // Which slots are modeled populations rather than real receivers.
  std::vector<const ModeledGroup*> modeled_of(topo.receiver_count(), nullptr);
  for (const ModeledGroup& mg : sc.modeled) {
    if (mg.receiver < modeled_of.size()) modeled_of[mg.receiver] = &mg;
  }

  // Hierarchical repair: pick one repairer per router subtree (topology
  // group) and point its group-mates' feedback at it. Roles must be
  // assigned before open() — a receiver's very first JOIN already goes
  // to its feedback target, and a child that joined the sender directly
  // would leave behind a member record the sender can never retire
  // (its later LEAVE/UPDATEs go to the repairer). Modeled slots stay
  // flat — a population already stands for a whole subtree and reports
  // its own aggregate.
  std::vector<std::size_t> repairer_of_group(topo.group_count(),
                                             topo.receiver_count());
  // A late joiner (join_at >= 0) must never be elected repairer: its
  // group-mates' JOINs would target a socket that does not exist yet,
  // and until it opens the sender gates releases on nobody in the
  // subtree — the whole stream can be released past a healthy child
  // that was simply wired to a parent the scenario hadn't born yet.
  if (sc.hierarchy.enabled) {
    if (!sc.hierarchy.repairers.empty()) {
      for (std::size_t r : sc.hierarchy.repairers) {
        if (r >= topo.receiver_count() || modeled_of[r] || join_at[r] >= 0) {
          continue;
        }
        repairer_of_group[topo.receiver_group(r)] = r;
      }
    } else {
      for (std::size_t i = 0; i < topo.receiver_count(); ++i) {
        if (modeled_of[i] || join_at[i] >= 0) continue;
        std::size_t& slot = repairer_of_group[topo.receiver_group(i)];
        if (slot == topo.receiver_count()) slot = i;
      }
    }
  }

  // Receivers and their applications. Vectors are indexed by receiver
  // slot; a modeled slot holds nullptr in rcv_socks/sinks and its
  // population in modeled_socks instead.
  std::vector<std::unique_ptr<proto::HrmcReceiver>> rcv_socks;
  std::vector<std::unique_ptr<proto::ModeledReceiver>> modeled_socks;
  std::vector<std::unique_ptr<app::SinkApp>> sinks;
  std::vector<sim::SimTime> modeled_complete_at(topo.receiver_count(), -1);
  for (std::size_t i = 0; i < topo.receiver_count(); ++i) {
    if (const ModeledGroup* mg = modeled_of[i]) {
      auto pop = std::make_unique<proto::ModeledReceiver>(
          topo.receiver(i), sc.proto, group, mg->population, mg->leaf_loss,
          topo.sender().addr());
      if (ring) {
        pop->set_trace(
            trace::TraceSink(ring.get(), &sched, trace::receiver_host(i)));
      }
      pop->on_complete = [&sched, &modeled_complete_at, i] {
        modeled_complete_at[i] = sched.now();
      };
      pop->open();
      rcv_socks.push_back(nullptr);
      sinks.push_back(nullptr);
      modeled_socks.push_back(std::move(pop));
      continue;
    }
    auto sock = std::make_unique<proto::HrmcReceiver>(
        topo.receiver(i), sc.proto, group, topo.sender().addr());
    if (ring) {
      sock->set_trace(
          trace::TraceSink(ring.get(), &sched, trace::receiver_host(i)));
    }
    if (sc.hierarchy.enabled) {
      const std::size_t rep = repairer_of_group[topo.receiver_group(i)];
      if (rep == i) {
        sock->enable_repairer();
      } else if (rep < topo.receiver_count()) {
        sock->set_repair_parent(topo.receiver(rep).addr());
      }
    }
    app::SinkApp::Options opt;
    opt.chunk = sc.workload.chunk;
    opt.read_rate_bps = sc.workload.sink_read_rate_bps;
    opt.verify = !crashed_ever[i] && join_at[i] < 0;
    if (sc.workload.disk_sink) opt.disk = sc.workload.disk;
    opt.seed = sim::substream_seed(sc.seed, "sink:" + std::to_string(i));
    sinks.push_back(std::make_unique<app::SinkApp>(*sock, sched, opt));
    proto::HrmcReceiver* raw = sock.get();
    if (join_at[i] >= 0) {
      sched.schedule_at(join_at[i], [raw] { raw->open_resync(); });
    } else {
      sock->open();
    }
    if (leave_at[i] >= 0) {
      sched.schedule_at(leave_at[i], [raw] { raw->close(); });
    }
    rcv_socks.push_back(std::move(sock));
    modeled_socks.push_back(nullptr);
  }

  // Fault injection. Constructed only for a non-empty plan so that
  // fault-free runs are bit-identical to runs predating the injector.
  std::unique_ptr<net::FaultInjector> injector;
  if (!sc.faults.empty()) {
    injector = std::make_unique<net::FaultInjector>(sched, topo, sc.faults,
                                                    sc.seed);
    injector->on_receiver_crash = [&rcv_socks](std::size_t i) {
      if (i < rcv_socks.size() && rcv_socks[i]) rcv_socks[i]->crash();
    };
    injector->on_receiver_restart = [&rcv_socks](std::size_t i) {
      if (i < rcv_socks.size() && rcv_socks[i]) rcv_socks[i]->restart();
    };
    injector->control_classifier = &is_control_packet;
    if (mem) injector->set_mem_accountant(mem.get());
    if (ring) {
      injector->set_trace(trace::TraceSink(ring.get(), &sched, 0));
    }
    injector->arm();
  }

  // Sender and its application.
  proto::HrmcSender snd(topo.sender(), sc.proto, kGroupPort, group);
  if (ring) {
    snd.set_trace(
        trace::TraceSink(ring.get(), &sched, trace::kSenderHost));
  }
  app::SourceApp::Options sopt;
  sopt.total_bytes = sc.workload.file_bytes;
  sopt.chunk = sc.workload.chunk;
  if (sc.workload.disk_source) sopt.disk = sc.workload.disk;
  sopt.seed = sim::substream_seed(sc.seed, "source");
  app::SourceApp source(snd, sched, sopt);

  sched.schedule_at(sc.sender_start, [&source] { source.start(); });

  const auto slot_complete = [&](std::size_t i) {
    return sinks[i] ? sinks[i]->stream_complete()
                    : modeled_socks[i]->complete();
  };
  const auto all_receivers_complete = [&] {
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      if (!slot_complete(i)) return false;
    }
    return true;
  };
  // Run until every receiver we *expect* to finish has finished (a
  // receiver crashed without restart never will — waiting on it would
  // just spin to the time limit) and the sender released everything.
  const auto survivors_complete = [&] {
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      if (expect_complete[i] && !slot_complete(i)) return false;
    }
    return true;
  };
  const auto done = [&] {
    return survivors_complete() && snd.finished();
  };

  // Time-series sampler: reads (never mutates) protocol state, so its
  // presence changes only the executed-event count, not the run.
  std::unique_ptr<trace::Sampler> sampler;
  if (sc.trace.enabled && sc.trace.sample_period > 0) {
    sampler = std::make_unique<trace::Sampler>(
        sched, sc.trace.sample_period, [&snd, &rcv_socks] {
          trace::SamplePoint p;
          p.rate_bps = snd.current_rate();
          p.send_window_bytes = static_cast<double>(snd.queued_bytes());
          p.stalled = snd.window_stalled() ? 1 : 0;
          p.naks_received = static_cast<double>(snd.stats().naks_received);
          p.rate_requests_received =
              static_cast<double>(snd.stats().rate_requests_received);
          p.updates_received =
              static_cast<double>(snd.stats().updates_received);
          p.retransmissions =
              static_cast<double>(snd.stats().retransmissions);
          for (const auto& r : rcv_socks) {
            if (!r) continue;
            p.recv_occupancy_bytes = std::max(
                p.recv_occupancy_bytes, static_cast<double>(r->occupancy()));
            p.recv_region = std::max(
                p.recv_region, static_cast<double>(r->flow_region()));
            p.nak_list_ranges += static_cast<double>(r->nak_backlog());
            p.update_period_jiffies =
                std::max(p.update_period_jiffies,
                         static_cast<double>(r->update_period()));
          }
          return p;
        });
    sampler->start();
  }

  sched.run_while([&] { return !done(); }, sc.time_limit);

  // Quiesce every timer before reading stats: stop() also closes a
  // stall interval still open at shutdown, so the stats counter agrees
  // with window_stall_time() even for a run that ends mid-stall.
  if (sampler) sampler->stop();
  snd.stop();
  for (auto& r : rcv_socks) {
    if (r) r->stop();
  }
  for (auto& m : modeled_socks) {
    if (m) m->stop();
  }

  RunResult res;
  res.completed = all_receivers_complete();
  res.sender_finished = snd.finished();
  res.stall_time = snd.window_stall_time();
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    if (!expect_complete[i]) continue;
    ++res.survivor_count;
    if (slot_complete(i)) ++res.survivors_completed;
  }

  sim::SimTime last_complete = sc.sender_start;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    if (sinks[i]) {
      if (sinks[i]->stream_complete()) {
        last_complete = std::max(last_complete, sinks[i]->complete_at());
      }
    } else if (modeled_complete_at[i] >= 0) {
      last_complete = std::max(last_complete, modeled_complete_at[i]);
    }
  }
  res.elapsed = last_complete - sc.sender_start;
  if (res.completed && res.elapsed > 0) {
    res.throughput_mbps = static_cast<double>(sc.workload.file_bytes) * 8.0 /
                          sim::to_seconds(res.elapsed) / 1e6;
  }

  res.sender = snd.stats();
  res.evicted_count = res.sender.members_evicted;
  res.member_min_rescans = snd.members().min_rescans();
  res.member_min_rescan_work = snd.members().min_rescan_work();
  for (std::size_t i = 0; i < rcv_socks.size(); ++i) {
    if (rcv_socks[i]) {
      detail::accumulate_receiver_stats(res, rcv_socks[i]->stats());
      if (rcv_socks[i]->stream_error()) res.any_stream_error = true;
      if (sinks[i]->verify_failed()) res.verify_ok = false;
    } else {
      detail::accumulate_receiver_stats(res, modeled_socks[i]->stats());
      res.modeled_leaves += modeled_socks[i]->population();
    }
  }

  if (mem) {
    res.mem_peak_bytes = mem->peak_any_host();
    res.mem_alloc_fails = mem->counters().alloc_fails;
  }
  res.mem_cache_evictions = res.receivers_total.ooo_evictions +
                            res.receivers_total.fec_evictions +
                            res.receivers_total.repair_cache_evictions;
  res.skb_live_bytes_end = kern::skbuff_stats().live_bytes;
  res.skb_peak_bytes = kern::skbuff_stats().peak_bytes;

  res.events_executed = sched.executed();
  res.sched_compactions = sched.compactions();
  res.rng_digest =
      detail::fold_run_digest(topo, rcv_socks, modeled_socks, sinks, source);

  res.sender_nic_tx_drops =
      topo.sender().nic()->counters().get("tx_ring_drops");
  res.router_loss_drops = topo.backbone().counters().get("loss_drops");
  for (std::size_t g = 0; g < sc.topo.groups.size(); ++g) {
    res.router_loss_drops +=
        topo.group_router(g).counters().get("loss_drops");
  }

  if (ring) {
    res.trace_records = ring->records();
    res.trace_dropped = ring->dropped();
  }
  if (sampler) res.samples = sampler->take();
  return res;
}

Scenario lan_scenario(int receivers, double network_bps,
                      std::size_t kernel_buf, const Workload& wl,
                      std::uint64_t seed) {
  Scenario sc;
  sc.name = "lan";
  sc.topo.network_bps = network_bps;
  sc.topo.seed = sim::substream_seed(seed, "topo");
  sc.topo.groups = {net::group_a(receivers)};
  sc.proto.sndbuf = kernel_buf;
  sc.proto.rcvbuf = kernel_buf;
  sc.workload = wl;
  sc.seed = seed;
  return sc;
}

Scenario test_case_scenario(int test_case, int n, double network_bps,
                            std::size_t kernel_buf, const Workload& wl,
                            std::uint64_t seed) {
  Scenario sc;
  sc.name = "test" + std::to_string(test_case);
  sc.topo.network_bps = network_bps;
  sc.topo.seed = sim::substream_seed(seed, "topo");
  switch (test_case) {
    case 1: sc.topo.groups = {net::group_a(n)}; break;
    case 2: sc.topo.groups = {net::group_b(n)}; break;
    case 3: sc.topo.groups = {net::group_c(n)}; break;
    case 4:
      sc.topo.groups = {net::group_b(n * 8 / 10),
                        net::group_c(n - n * 8 / 10)};
      break;
    case 5:
      sc.topo.groups = {net::group_b(n * 2 / 10),
                        net::group_c(n - n * 2 / 10)};
      break;
    default:
      throw std::invalid_argument("test_case must be 1..5 (Fig 14b)");
  }
  sc.proto.sndbuf = kernel_buf;
  sc.proto.rcvbuf = kernel_buf;
  sc.workload = wl;
  sc.seed = seed;
  return sc;
}

std::vector<std::size_t> buffer_sweep() {
  return {64u << 10, 128u << 10, 256u << 10, 512u << 10, 1024u << 10};
}

std::vector<std::size_t> buffer_sweep_extended() {
  return {64u << 10,  128u << 10,  256u << 10, 512u << 10,
          1024u << 10, 2048u << 10, 4096u << 10};
}

std::string buf_label(std::size_t bytes) {
  return std::to_string(bytes >> 10) + "K";
}

}  // namespace hrmc::harness
