// Sharded run_transfer: the scenario of scenario.cpp executed on the
// conservative-time multi-core engine (sim::ShardEngine).
//
// The cut follows the topology's natural seams: the sender host, its
// NIC and the backbone router form domain 0; each receiver group's
// whole router subtree (router, NICs, hosts, protocol endpoints, sink
// apps, fault events) lands in the domain the group is mapped to. The
// only cross-domain edges are the backbone<->group-router trunks, so
// the engine's lookahead is the trunk's minimum packet service time.
//
// Everything observable is kept per-domain while the engine runs —
// trace rings, fault injectors, app schedulers — and merged only after
// it stops, so no worker ever touches another domain's state inside a
// window. That is both the thread-safety argument (components are
// written for one thread; skb refcounts are non-atomic) and the
// determinism argument (the merge orders are fixed, independent of
// thread count).
#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "harness/run_detail.hpp"
#include "harness/scenario.hpp"
#include "harness/thread_budget.hpp"
#include "hrmc/modeled.hpp"
#include "hrmc/receiver.hpp"
#include "hrmc/sender.hpp"
#include "hrmc/wire.hpp"
#include "kern/skbuff.hpp"
#include "sim/shard.hpp"

namespace hrmc::harness::detail {

namespace {

/// Domain index each fault event must fire in: the domain owning every
/// component the event touches (see fault.cpp — receiver-scoped kinds
/// touch the receiver's host/NIC, group-scoped kinds the group's router
/// or its NICs; nothing touches two domains).
std::size_t fault_domain(const net::FaultEvent& ev, net::Topology& topo) {
  switch (ev.kind) {
    case net::FaultKind::kReceiverCrash:
    case net::FaultKind::kReceiverRestart:
    case net::FaultKind::kLinkDown:
    case net::FaultKind::kLinkUp:
      return ev.target < topo.receiver_count()
                 ? topo.receiver_domain(ev.target)
                 : 0;
    default:
      return ev.target < topo.group_count() ? topo.group_domain(ev.target)
                                            : 0;
  }
}

}  // namespace

RunResult run_transfer_sharded(const Scenario& sc) {
  if (sc.trace.enabled && sc.trace.sample_period > 0) {
    // The Sampler reads live sender *and* receiver state on a period —
    // a cross-domain read mid-window, which sharding forbids.
    throw std::invalid_argument(
        "run_transfer: TraceOptions::sample_period is incompatible with "
        "sharded execution");
  }

  // Domain map: 0 = sender + backbone; groups round-robin over the
  // rest. max_domains <= 1 collapses everything into domain 0 (the
  // engine still runs, epochs and all — pure-overhead configuration).
  const std::size_t groups = sc.topo.groups.size();
  std::size_t domains = groups + 1;
  if (sc.shard.max_domains != 0) {
    domains = std::min(domains, sc.shard.max_domains);
  }
  std::vector<std::size_t> group_domain(groups, 0);
  if (domains > 1) {
    for (std::size_t g = 0; g < groups; ++g) {
      group_domain[g] = 1 + g % (domains - 1);
    }
  }

  // Lookahead: the trunk service time of the smallest packet that can
  // cross a domain boundary (a bare header on the wire). Must match
  // Topology::cross_domain_lookahead — asserted right after build.
  const std::size_t min_wire =
      proto::Header::kSize + kern::SkBuff::kLowerLayerBytes;
  sim::ShardEngine engine(
      domains, sim::transmission_time(static_cast<std::int64_t>(min_wire),
                                      sc.topo.network_bps));
  net::Topology topo(engine, sc.topo, group_domain);
  if (engine.lookahead() != topo.cross_domain_lookahead(min_wire)) {
    throw std::logic_error("run_transfer: lookahead disagrees with topology");
  }

  const net::Endpoint group{kGroupAddr, kGroupPort};
  const auto dom_sched = [&engine, &topo](std::size_t slot) -> sim::Scheduler& {
    return engine.domain(topo.receiver_domain(slot));
  };

  // Observability: one ring *per domain* (a ring append is a write, so
  // sharing one would race); merged by timestamp after the run. Each
  // component's sink pairs its domain's ring with its domain's clock.
  std::vector<std::unique_ptr<trace::TraceRing>> rings;
  if (sc.trace.enabled) {
    for (std::size_t d = 0; d < domains; ++d) {
      rings.push_back(
          std::make_unique<trace::TraceRing>(sc.trace.ring_capacity));
    }
    topo.backbone().set_trace(trace::TraceSink(
        rings[0].get(), &engine.domain(0), trace::kBackboneHost));
    for (std::size_t g = 0; g < topo.group_count(); ++g) {
      topo.group_router(g).set_trace(
          trace::TraceSink(rings[group_domain[g]].get(),
                           &engine.domain(group_domain[g]),
                           trace::router_host(g)));
    }
    topo.sender().nic()->set_trace(
        trace::TraceSink(rings[0].get(), &engine.domain(0),
                         trace::nic_host(0)));
    for (std::size_t i = 0; i < topo.receiver_count(); ++i) {
      topo.receiver_nic(i).set_trace(
          trace::TraceSink(rings[topo.receiver_domain(i)].get(),
                           &dom_sched(i), trace::nic_host(1 + i)));
    }
  }

  // Crash/churn bookkeeping — identical to the legacy path (it reads
  // the whole plan, not the per-domain splits).
  std::vector<bool> crashed_ever(topo.receiver_count(), false);
  std::vector<bool> expect_complete(topo.receiver_count(), true);
  {
    std::vector<net::FaultEvent> evs = sc.faults.events;
    std::stable_sort(evs.begin(), evs.end(),
                     [](const net::FaultEvent& a, const net::FaultEvent& b) {
                       return a.at < b.at;
                     });
    for (const net::FaultEvent& ev : evs) {
      if (ev.target >= crashed_ever.size()) continue;
      if (ev.kind == net::FaultKind::kReceiverCrash) {
        crashed_ever[ev.target] = true;
        expect_complete[ev.target] = false;
      } else if (ev.kind == net::FaultKind::kReceiverRestart) {
        expect_complete[ev.target] = true;
      }
    }
  }

  std::vector<sim::SimTime> join_at(topo.receiver_count(), -1);
  std::vector<sim::SimTime> leave_at(topo.receiver_count(), -1);
  for (const ChurnEvent& ev : sc.churn) {
    if (ev.receiver >= topo.receiver_count()) continue;
    if (ev.join) {
      join_at[ev.receiver] = ev.at;
    } else {
      leave_at[ev.receiver] = ev.at;
      expect_complete[ev.receiver] = false;
    }
  }

  std::vector<const ModeledGroup*> modeled_of(topo.receiver_count(), nullptr);
  for (const ModeledGroup& mg : sc.modeled) {
    if (mg.receiver < modeled_of.size()) modeled_of[mg.receiver] = &mg;
  }

  std::vector<std::size_t> repairer_of_group(topo.group_count(),
                                             topo.receiver_count());
  if (sc.hierarchy.enabled) {
    if (!sc.hierarchy.repairers.empty()) {
      for (std::size_t r : sc.hierarchy.repairers) {
        if (r >= topo.receiver_count() || modeled_of[r]) continue;
        repairer_of_group[topo.receiver_group(r)] = r;
      }
    } else {
      for (std::size_t i = 0; i < topo.receiver_count(); ++i) {
        if (modeled_of[i]) continue;
        std::size_t& slot = repairer_of_group[topo.receiver_group(i)];
        if (slot == topo.receiver_count()) slot = i;
      }
    }
  }

  // Receivers and their applications — each built on (and scheduling
  // churn through) its own domain's clock.
  std::vector<std::unique_ptr<proto::HrmcReceiver>> rcv_socks;
  std::vector<std::unique_ptr<proto::ModeledReceiver>> modeled_socks;
  std::vector<std::unique_ptr<app::SinkApp>> sinks;
  std::vector<sim::SimTime> modeled_complete_at(topo.receiver_count(), -1);
  for (std::size_t i = 0; i < topo.receiver_count(); ++i) {
    sim::Scheduler& dsched = dom_sched(i);
    if (const ModeledGroup* mg = modeled_of[i]) {
      auto pop = std::make_unique<proto::ModeledReceiver>(
          topo.receiver(i), sc.proto, group, mg->population, mg->leaf_loss,
          topo.sender().addr());
      if (!rings.empty()) {
        pop->set_trace(trace::TraceSink(rings[topo.receiver_domain(i)].get(),
                                        &dsched, trace::receiver_host(i)));
      }
      pop->on_complete = [&dsched, &modeled_complete_at, i] {
        modeled_complete_at[i] = dsched.now();
      };
      pop->open();
      rcv_socks.push_back(nullptr);
      sinks.push_back(nullptr);
      modeled_socks.push_back(std::move(pop));
      continue;
    }
    auto sock = std::make_unique<proto::HrmcReceiver>(
        topo.receiver(i), sc.proto, group, topo.sender().addr());
    if (!rings.empty()) {
      sock->set_trace(trace::TraceSink(rings[topo.receiver_domain(i)].get(),
                                       &dsched, trace::receiver_host(i)));
    }
    if (sc.hierarchy.enabled) {
      const std::size_t rep = repairer_of_group[topo.receiver_group(i)];
      if (rep == i) {
        sock->enable_repairer();
      } else if (rep < topo.receiver_count()) {
        sock->set_repair_parent(topo.receiver(rep).addr());
      }
    }
    app::SinkApp::Options opt;
    opt.chunk = sc.workload.chunk;
    opt.read_rate_bps = sc.workload.sink_read_rate_bps;
    opt.verify = !crashed_ever[i] && join_at[i] < 0;
    if (sc.workload.disk_sink) opt.disk = sc.workload.disk;
    opt.seed = sim::substream_seed(sc.seed, "sink:" + std::to_string(i));
    sinks.push_back(std::make_unique<app::SinkApp>(*sock, dsched, opt));
    proto::HrmcReceiver* raw = sock.get();
    if (join_at[i] >= 0) {
      dsched.schedule_at(join_at[i], [raw] { raw->open_resync(); });
    } else {
      sock->open();
    }
    if (leave_at[i] >= 0) {
      dsched.schedule_at(leave_at[i], [raw] { raw->close(); });
    }
    rcv_socks.push_back(std::move(sock));
    modeled_socks.push_back(nullptr);
  }

  // Fault injection: the plan is split by the domain each event fires
  // in, one injector per domain that has any. Substream seeds derive
  // from (sc.seed, component name) exactly as in the one-injector
  // legacy path, so the split never changes a draw.
  std::vector<std::unique_ptr<net::FaultInjector>> injectors;
  if (!sc.faults.empty()) {
    std::vector<net::FaultPlan> plans(domains);
    for (const net::FaultEvent& ev : sc.faults.events) {
      plans[fault_domain(ev, topo)].events.push_back(ev);
    }
    for (std::size_t d = 0; d < domains; ++d) {
      if (plans[d].empty()) continue;
      auto inj = std::make_unique<net::FaultInjector>(
          engine.domain(d), topo, std::move(plans[d]), sc.seed);
      inj->on_receiver_crash = [&rcv_socks](std::size_t i) {
        if (i < rcv_socks.size() && rcv_socks[i]) rcv_socks[i]->crash();
      };
      inj->on_receiver_restart = [&rcv_socks](std::size_t i) {
        if (i < rcv_socks.size() && rcv_socks[i]) rcv_socks[i]->restart();
      };
      inj->control_classifier = &is_control_packet;
      if (!rings.empty()) {
        inj->set_trace(trace::TraceSink(rings[d].get(), &engine.domain(d), 0));
      }
      inj->arm();
      injectors.push_back(std::move(inj));
    }
  }

  // Sender and its application: domain 0.
  proto::HrmcSender snd(topo.sender(), sc.proto, kGroupPort, group);
  if (!rings.empty()) {
    snd.set_trace(trace::TraceSink(rings[0].get(), &engine.domain(0),
                                   trace::kSenderHost));
  }
  app::SourceApp::Options sopt;
  sopt.total_bytes = sc.workload.file_bytes;
  sopt.chunk = sc.workload.chunk;
  if (sc.workload.disk_source) sopt.disk = sc.workload.disk;
  sopt.seed = sim::substream_seed(sc.seed, "source");
  app::SourceApp source(snd, engine.domain(0), sopt);

  engine.domain(0).schedule_at(sc.sender_start, [&source] { source.start(); });

  const auto slot_complete = [&](std::size_t i) {
    return sinks[i] ? sinks[i]->stream_complete()
                    : modeled_socks[i]->complete();
  };
  const auto all_receivers_complete = [&] {
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      if (!slot_complete(i)) return false;
    }
    return true;
  };
  const auto survivors_complete = [&] {
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      if (expect_complete[i] && !slot_complete(i)) return false;
    }
    return true;
  };
  // Evaluated only at epoch barriers, where every domain is quiescent —
  // the one place a cross-domain read is safe (and deterministic: the
  // barrier schedule itself is thread-count independent).
  const auto done = [&] { return survivors_complete() && snd.finished(); };

  // Thread count: an explicit request is honored exactly (benches
  // measuring a specific count depend on that); 0 takes the harness
  // budget's leftover share, composing with any ParallelRunner above
  // us. The lease pins the claim for the engine's whole run.
  ThreadLease lease(sc.shard.threads);

  engine.run(done, sc.time_limit, lease.count());

  snd.stop();
  for (auto& r : rcv_socks) {
    if (r) r->stop();
  }
  for (auto& m : modeled_socks) {
    if (m) m->stop();
  }

  RunResult res;
  res.completed = all_receivers_complete();
  res.sender_finished = snd.finished();
  res.stall_time = snd.window_stall_time();
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    if (!expect_complete[i]) continue;
    ++res.survivor_count;
    if (slot_complete(i)) ++res.survivors_completed;
  }

  sim::SimTime last_complete = sc.sender_start;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    if (sinks[i]) {
      if (sinks[i]->stream_complete()) {
        last_complete = std::max(last_complete, sinks[i]->complete_at());
      }
    } else if (modeled_complete_at[i] >= 0) {
      last_complete = std::max(last_complete, modeled_complete_at[i]);
    }
  }
  res.elapsed = last_complete - sc.sender_start;
  if (res.completed && res.elapsed > 0) {
    res.throughput_mbps = static_cast<double>(sc.workload.file_bytes) * 8.0 /
                          sim::to_seconds(res.elapsed) / 1e6;
  }

  res.sender = snd.stats();
  res.evicted_count = res.sender.members_evicted;
  res.member_min_rescans = snd.members().min_rescans();
  res.member_min_rescan_work = snd.members().min_rescan_work();
  for (std::size_t i = 0; i < rcv_socks.size(); ++i) {
    if (rcv_socks[i]) {
      accumulate_receiver_stats(res, rcv_socks[i]->stats());
      if (rcv_socks[i]->stream_error()) res.any_stream_error = true;
      if (sinks[i]->verify_failed()) res.verify_ok = false;
    } else {
      accumulate_receiver_stats(res, modeled_socks[i]->stats());
      res.modeled_leaves += modeled_socks[i]->population();
    }
  }

  res.sender_nic_tx_drops =
      topo.sender().nic()->counters().get("tx_ring_drops");
  res.router_loss_drops = topo.backbone().counters().get("loss_drops");
  for (std::size_t g = 0; g < sc.topo.groups.size(); ++g) {
    res.router_loss_drops +=
        topo.group_router(g).counters().get("loss_drops");
  }

  if (!rings.empty()) {
    // Merge by timestamp; stable_sort keeps each domain's internal
    // order and breaks cross-domain ties by domain index — both fixed,
    // so the merged stream is identical at every thread count.
    for (const auto& ring : rings) {
      const std::vector<trace::TraceRecord> recs = ring->records();
      res.trace_records.insert(res.trace_records.end(), recs.begin(),
                               recs.end());
      res.trace_dropped += ring->dropped();
    }
    std::stable_sort(
        res.trace_records.begin(), res.trace_records.end(),
        [](const trace::TraceRecord& a, const trace::TraceRecord& b) {
          return a.t < b.t;
        });
  }

  res.events_executed = engine.executed();
  res.sched_compactions = engine.compactions();
  res.rng_digest =
      fold_run_digest(topo, rcv_socks, modeled_socks, sinks, source);
  res.shard_domains = engine.domain_count();
  res.shard_epochs = engine.stats().epochs;
  res.shard_handoffs = engine.stats().handoffs;
  res.shard_handoff_bytes = engine.stats().handoff_bytes;
  res.shard_control_posts = engine.stats().control_posts;
  return res;
}

}  // namespace hrmc::harness::detail
