#include "harness/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "harness/thread_budget.hpp"

namespace hrmc::harness {

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(threads != 0 ? threads : thread_budget()) {}

std::vector<RunResult> ParallelRunner::run_all(
    const std::vector<Scenario>& cells) const {
  std::vector<RunResult> results(cells.size());
  if (cells.empty()) return results;

  // The lease pins our share of the process budget while the pool is
  // live, so sharded cells running under this sweep see the claim and
  // size their engines from the leftover instead of oversubscribing.
  ThreadLease lease(threads_);
  const unsigned workers =
      std::min<std::size_t>(lease.count(), cells.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      results[i] = run_transfer(cells[i]);
    }
    return results;
  }

  // Dynamic work stealing off a shared index: cells vary widely in cost
  // (a 40 MB / 64K-buffer cell runs ~10x a 10 MB / 1M one), so static
  // striping would leave workers idle at the tail of a sweep.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(cells.size());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= cells.size()) return;
        try {
          results[i] = run_transfer(cells[i]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace hrmc::harness
