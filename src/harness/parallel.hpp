// Parallel sweep execution for the bench harness.
//
// Every figure/ablation in the repository is a grid of independent
// (Scenario, seed) cells; nothing couples one cell's simulation to
// another. ParallelRunner exploits that: it fans the cells out across a
// thread pool while preserving bit-for-bit determinism per cell —
// run_transfer() is a pure function of its Scenario (each run owns its
// Scheduler and derives every RNG stream from the scenario seed, and
// the kern::SkBuff block pool is per-thread), so a cell computes the
// same RunResult regardless of which worker executes it or in what
// order. Results come back in input order; a parallel sweep prints the
// exact bytes the serial sweep would.
#pragma once

#include <cstddef>
#include <vector>

#include "harness/scenario.hpp"

namespace hrmc::harness {

class ParallelRunner {
 public:
  /// `threads == 0` resolves the worker count from the shared harness
  /// budget (thread_budget(): HRMC_BENCH_THREADS if set — 1 forces
  /// serial execution, e.g. for timing a baseline — otherwise
  /// hardware_concurrency()). A nonzero count is taken as-is. While
  /// run_all() is live the pool holds a ThreadLease, so sharded-engine
  /// runs dispatched from inside a sweep compose against the same
  /// budget instead of multiplying with it.
  explicit ParallelRunner(unsigned threads = 0);

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Runs run_transfer() on every cell; results in input order. The
  /// first exception thrown by any cell (in input order) is rethrown
  /// after all workers finish.
  [[nodiscard]] std::vector<RunResult> run_all(
      const std::vector<Scenario>& cells) const;

 private:
  unsigned threads_;
};

}  // namespace hrmc::harness
