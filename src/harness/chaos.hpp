// Deterministic chaos engine: an automated adversary for the protocol.
//
// The pipeline (DESIGN.md §11):
//
//   seed → generate_spec → to_scenario → run_transfer → judge (oracle)
//                                                         │ fail
//                                                 shrink ─┘
//                                                         │
//                                           serialize_spec → repro file
//
// A ChaosSpec is the *serializable* unit: a compact description of one
// randomized adversarial scenario — topology shape, traffic shape, and
// a FaultPlan of crashes, flaps, partitions, burst loss, and the
// disturbance kinds (reorder / duplicate / corrupt / control-loss /
// jitter). Everything downstream of the spec is deterministic:
// to_scenario() is a pure function and run_transfer() derives all
// randomness from the scenario seed, so the same spec always produces
// the same RunResult, bit for bit — which is what makes a shrunk repro
// file replayable.
//
// The reliability oracle (judge) asserts the paper's central claim
// under adversarial conditions: every receiver expected to survive
// delivers the full byte stream in order, the sender terminates within
// the scenario deadline (no window-stall deadlock), no receiver
// observes a stream error, and the run's trace passes trace::verify
// with zero violations.
//
// Scenario generation is *survivable by construction*: every crash is
// paired with a restart, every link-down with a link-up, every
// partition with a heal, and every disturbance with a stop — so an
// oracle failure is a protocol bug, never a scenario that merely asked
// the impossible. Connectivity faults force EvictionPolicy::kStall
// (probing pauses the window rather than evicting a member that a
// generated partition silenced; eviction behavior has its own
// deterministic tests).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "net/fault.hpp"

namespace hrmc::harness {

/// Serializable description of one chaos scenario.
struct ChaosSpec {
  std::uint64_t seed = 1;  ///< scenario RNG root (run_transfer seed)
  double network_bps = 10e6;
  std::uint64_t file_bytes = 64 * 1024;
  std::size_t kernel_buf = 256 * 1024;
  proto::EvictionPolicy eviction = proto::EvictionPolicy::kStall;
  sim::SimTime time_limit = sim::seconds(120);
  /// Characteristic-group kind per group: 0 = A, 1 = B, 2 = C
  /// (net::group_a/b/c delay and loss presets).
  std::vector<int> group_kind;
  std::vector<int> group_receivers;  ///< same length as group_kind
  std::vector<net::FaultEvent> faults;
  /// Membership churn plan (late joins / clean leaves mid-stream).
  std::vector<ChurnEvent> churn;
  /// Receiver stalled-data watchdog (Config::data_stall_timeout);
  /// enabled by the generator when the plan contains path-breaking
  /// faults so re-grafting after a repaired flap is exercised.
  sim::SimTime data_stall_timeout = 0;
  /// Flash-crowd admission batching (Config::join_batch_threshold).
  std::size_t join_batch_threshold = 0;
  /// Hierarchical repair: the first receiver of every group becomes its
  /// subtree's local repairer (Scenario::hierarchy defaults). Forces
  /// kStall: a dead or crashed repairer silences its children's
  /// feedback until failover, and eviction during that window would
  /// make the oracle test the generator, not the protocol.
  bool hierarchy = false;
  /// Per-host memory budget in bytes (Scenario::mem_budget). Set by the
  /// generator alongside mem-pressure / alloc-fail fault pairs; 0 keeps
  /// the run accountant-free unless the plan itself contains mem fault
  /// windows. Generated budgets are survivable by construction: the
  /// full budget covers steady-state occupancy (send window + reassembly
  /// + caches) with headroom, and only the paired squeeze window shrinks
  /// the *effective* budget — so an oracle failure under memory pressure
  /// is a degradation bug, never a scenario that asked the impossible.
  std::uint64_t mem_budget = 0;

  [[nodiscard]] std::size_t receiver_count() const {
    std::size_t n = 0;
    for (int r : group_receivers) n += static_cast<std::size_t>(r);
    return n;
  }
};

/// Oracle verdict for one run.
struct ChaosVerdict {
  bool ok = true;
  std::string failure;  ///< first violated property, human-readable
};

/// Outcome of one judged scenario in a sweep.
struct ChaosOutcome {
  std::uint64_t seed = 0;
  ChaosVerdict verdict;
};

/// Deterministically generates the scenario for `seed`. Same seed, same
/// spec — always.
ChaosSpec generate_spec(std::uint64_t seed);

/// Generates one long "moving network" segment for the soak driver
/// (examples/soak): a multi-megabyte stream over a topology subjected
/// to trunk-flap trains with route reconvergence, receiver link flaps,
/// wireless fade windows, and membership churn — survivable by
/// construction, like generate_spec, but stretched over tens of sim
/// seconds so accumulated segments add up to hours-equivalent sim time
/// cheaply (long blackouts are event-sparse).
ChaosSpec generate_soak_spec(std::uint64_t seed);

/// generate_spec plus a deterministically appended memory-pressure
/// regime (chaos --mem): a per-host budget, one guaranteed squeeze
/// window, and an optional alloc-fail window — so every seed in a mem
/// sweep actually exercises the DESIGN.md §16 degradation paths instead
/// of the ~2-in-13 category odds of the base generator. Forces
/// EvictionPolicy::kStall: pressure-driven evictions silence feedback
/// like loss does, and an eviction-policy NAK_ERR would make the oracle
/// test the generator, not the protocol.
ChaosSpec generate_mem_spec(std::uint64_t seed);

/// Pure mapping onto the experiment harness. Trace capture is enabled
/// (the oracle needs it for trace::verify).
Scenario to_scenario(const ChaosSpec& spec);

/// Applies the reliability oracle to a finished run.
ChaosVerdict judge_result(const ChaosSpec& spec, const RunResult& res);

/// Runs the spec's scenario and judges it. Exceptions from the
/// simulator are caught and reported as oracle failures — a crash is
/// exactly what chaos hunts.
ChaosVerdict judge(const ChaosSpec& spec);

/// Sweeps seeds [start, start + count) through the oracle on a thread
/// pool (ParallelRunner semantics: bit-identical per cell, results in
/// input order). `mem` swaps the generator for generate_mem_spec.
std::vector<ChaosOutcome> sweep(std::uint64_t start, int count,
                                unsigned threads = 0, bool mem = false);

/// Self-contained text form ("hrmc-chaos-repro v1"). Doubles are
/// printed round-trip exact, so parse(serialize(s)) replays the same
/// simulation bit for bit.
std::string serialize_spec(const ChaosSpec& spec);

/// Parses a repro file's contents. nullopt on malformed input.
std::optional<ChaosSpec> parse_spec(const std::string& text);

/// Greedily minimizes a failing spec: drop fault events (recovery pairs
/// stay paired), shrink the stream, drop receivers — re-running after
/// each candidate edit and keeping it only while the oracle still
/// fails. `max_runs` bounds the re-run budget. Returns the smallest
/// still-failing spec found (at worst, the input).
ChaosSpec shrink(const ChaosSpec& failing, int max_runs = 200);

}  // namespace hrmc::harness
