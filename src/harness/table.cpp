#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace hrmc::harness {

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "  ";
      // First column left-aligned (labels), the rest right-aligned.
      if (c == 0) {
        os << cell << std::string(width[c] - cell.size(), ' ');
      } else {
        os << std::string(width[c] - cell.size(), ' ') << cell;
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 2 * width.size();
  for (auto w : width) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace hrmc::harness
