#include "harness/thread_budget.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace hrmc::harness {

namespace {

/// Threads currently held by live leases, across the whole process.
std::atomic<unsigned> g_in_use{0};

}  // namespace

unsigned thread_budget() {
  if (const char* env = std::getenv("HRMC_BENCH_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

ThreadLease::ThreadLease(unsigned want) : count_(want) {
  if (count_ == 0) {
    // Leftover-share grant: claim optimistically, retry on contention.
    const unsigned budget = thread_budget();
    unsigned used = g_in_use.load(std::memory_order_relaxed);
    for (;;) {
      const unsigned grant = budget > used ? budget - used : 1;
      if (g_in_use.compare_exchange_weak(used, used + grant,
                                         std::memory_order_relaxed)) {
        count_ = grant;
        return;
      }
    }
  }
  g_in_use.fetch_add(count_, std::memory_order_relaxed);
}

ThreadLease::~ThreadLease() {
  g_in_use.fetch_sub(count_, std::memory_order_relaxed);
}

}  // namespace hrmc::harness
